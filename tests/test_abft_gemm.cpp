// Tests for checksum-protected matrix multiplication: exactness of the
// result, checksum invariants, and mid-multiplication rank recovery.

#include <gtest/gtest.h>

#include "abft/abft_gemm.hpp"
#include "abft/blas.hpp"

namespace {

using namespace abftc;
using abft::AbftGemm;
using abft::Matrix;
using abft::ProcessGrid;

Matrix reference_product(const Matrix& a, const Matrix& b) {
  Matrix c = Matrix::zeros(a.rows(), b.cols());
  abft::gemm(1.0, a.view(), abft::Trans::No, b.view(), abft::Trans::No, 0.0,
             c.view());
  return c;
}

TEST(AbftGemm, FaultFreeProductIsExact) {
  common::Rng rng(3);
  const Matrix a = Matrix::random(48, 32, rng);
  const Matrix b = Matrix::random(32, 48, rng);
  AbftGemm mm(a, b, 8, ProcessGrid{2, 3});
  const Matrix c = mm.multiply();
  EXPECT_LT(abft::max_abs_diff(c, reference_product(a, b)), 1e-12);
  EXPECT_LT(mm.result_checksum_residual(), 1e-10);
}

class AbftGemmFaultTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AbftGemmFaultTest, RecoversMidMultiplication) {
  const auto [step, rank] = GetParam();
  common::Rng rng(11);
  const Matrix a = Matrix::random(48, 40, rng);  // 5 inner block steps
  const Matrix b = Matrix::random(40, 48, rng);
  AbftGemm mm(a, b, 8, ProcessGrid{2, 3});
  const Matrix c = mm.multiply(abft::InjectedFault{step, rank});
  EXPECT_GT(mm.recovery().blocks_recovered, 0u);
  EXPECT_LT(abft::max_abs_diff(c, reference_product(a, b)), 1e-10)
      << "fault at step " << step << " rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(
    StepsAndRanks, AbftGemmFaultTest,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 5u),
                       ::testing::Values(0u, 1u, 4u, 5u)));

TEST(AbftGemm, RecoveryTimeIsRecorded) {
  common::Rng rng(5);
  const Matrix a = Matrix::random(32, 32, rng);
  const Matrix b = Matrix::random(32, 32, rng);
  AbftGemm mm(a, b, 8, ProcessGrid{2, 2});
  (void)mm.multiply(abft::InjectedFault{2, 1});
  EXPECT_EQ(mm.recovery().recoveries, 3u);  // A, B and C reconstructions
  EXPECT_GE(mm.recovery().seconds, 0.0);
}

TEST(AbftGemm, RejectsMismatchedShapes) {
  common::Rng rng(9);
  EXPECT_THROW(AbftGemm(Matrix::random(16, 16, rng),
                        Matrix::random(24, 16, rng), 8, ProcessGrid{2, 2}),
               common::precondition_error);
}

TEST(AbftGemm, RejectsGridMisalignment) {
  common::Rng rng(9);
  // 3 row blocks not a multiple of prows=2.
  EXPECT_THROW(AbftGemm(Matrix::random(24, 16, rng),
                        Matrix::random(16, 32, rng), 8, ProcessGrid{2, 2}),
               common::precondition_error);
}

}  // namespace

// Tests for the executable checkpoint substrate: regions, dirty tracking,
// the Full/Entry/Exit/Incremental taxonomy and split-checkpoint semantics.

#include <gtest/gtest.h>

#include <array>

#include "ckpt/image.hpp"
#include "common/error.hpp"

namespace {

using namespace abftc;
using namespace abftc::ckpt;

struct Fixture {
  std::array<double, 8> lib{1, 2, 3, 4, 5, 6, 7, 8};
  std::array<double, 4> rem{10, 20, 30, 40};
  MemoryImage image;
  RegionId lib_id, rem_id;

  Fixture() {
    lib_id = image.add_region("lib", std::span<double>(lib),
                              RegionClass::Library);
    rem_id = image.add_region("rem", std::span<double>(rem),
                              RegionClass::Remainder);
  }
};

TEST(MemoryImage, TracksSizesAndRho) {
  Fixture f;
  EXPECT_EQ(f.image.region_count(), 2u);
  EXPECT_EQ(f.image.total_bytes(), 12 * sizeof(double));
  EXPECT_EQ(f.image.class_bytes(RegionClass::Library), 8 * sizeof(double));
  EXPECT_NEAR(f.image.rho(), 8.0 / 12.0, 1e-12);
}

TEST(MemoryImage, DirtyTracking) {
  Fixture f;
  EXPECT_EQ(f.image.dirty_bytes(), f.image.total_bytes());  // new = dirty
  f.image.clear_dirty_all();
  EXPECT_EQ(f.image.dirty_bytes(), 0u);
  f.image.mark_dirty(f.rem_id);
  EXPECT_EQ(f.image.dirty_bytes(), 4 * sizeof(double));
  (void)f.image.mutable_bytes(f.lib_id);  // mutable access marks dirty
  EXPECT_EQ(f.image.dirty_bytes(), f.image.total_bytes());
}

TEST(MemoryImage, RejectsDuplicatesAndEmpty) {
  Fixture f;
  std::array<double, 2> more{};
  EXPECT_THROW(f.image.add_region("lib", std::span<double>(more),
                                  RegionClass::Library),
               common::precondition_error);
  EXPECT_THROW(f.image.add_region("", std::span<double>(more),
                                  RegionClass::Library),
               common::precondition_error);
  EXPECT_THROW((void)f.image.info(99), common::precondition_error);
}

TEST(CheckpointStore, FullRoundTrip) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 1.0);
  f.lib[0] = -1;
  f.rem[3] = -1;
  const auto report = store.restore_latest(f.image);
  EXPECT_DOUBLE_EQ(f.lib[0], 1.0);
  EXPECT_DOUBLE_EQ(f.rem[3], 40.0);
  EXPECT_EQ(report.bytes_restored, f.image.total_bytes());
  EXPECT_DOUBLE_EQ(report.from_when, 1.0);
}

TEST(CheckpointStore, SplitCheckpointRestoresBothHalves) {
  Fixture f;
  CheckpointStore store;
  const auto entry = store.take_entry(f.image, 1.0);  // rem = {10,20,30,40}
  // The library call mutates the library dataset.
  f.lib[2] = 333.0;
  store.take_exit(f.image, 2.0, entry);
  // Crash later: everything scrambles.
  f.lib.fill(-7);
  f.rem.fill(-7);
  const auto report = store.restore_latest(f.image);
  EXPECT_DOUBLE_EQ(f.lib[2], 333.0);  // exit state of the library data
  EXPECT_DOUBLE_EQ(f.rem[1], 20.0);   // entry state of the remainder
  EXPECT_EQ(report.applied.size(), 2u);
}

TEST(CheckpointStore, ExitRequiresMatchingEntry) {
  Fixture f;
  CheckpointStore store;
  const auto full = store.take_full(f.image, 1.0);
  EXPECT_THROW(store.take_exit(f.image, 2.0, full),
               common::precondition_error);
  EXPECT_THROW(store.take_exit(f.image, 2.0, 999),
               common::precondition_error);
}

TEST(CheckpointStore, EntryAloneIsNotARestorePoint) {
  Fixture f;
  CheckpointStore store;
  EXPECT_FALSE(store.has_restore_point());
  store.take_entry(f.image, 1.0);
  EXPECT_FALSE(store.has_restore_point());
  EXPECT_THROW(store.restore_latest(f.image), common::precondition_error);
}

TEST(CheckpointStore, RestoreRemainderLeavesLibraryUntouched) {
  Fixture f;
  CheckpointStore store;
  store.take_entry(f.image, 1.0);
  f.rem.fill(-1);
  f.lib[5] = 555.0;  // live ABFT-reconstructed state must survive
  const auto report = store.restore_remainder(f.image);
  EXPECT_DOUBLE_EQ(f.rem[0], 10.0);
  EXPECT_DOUBLE_EQ(f.lib[5], 555.0);
  EXPECT_EQ(report.bytes_restored, 4 * sizeof(double));
}

TEST(CheckpointStore, IncrementalAppliesOnTopOfFull) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 1.0);
  f.rem[0] = 99.0;
  f.image.mark_dirty(f.rem_id);
  f.image.clear_dirty_all();
  f.image.mark_dirty(f.rem_id);  // only rem is dirty
  store.take_incremental(f.image, 2.0);
  f.rem.fill(-1);
  f.lib.fill(-1);
  const auto report = store.restore_latest(f.image);
  EXPECT_DOUBLE_EQ(f.rem[0], 99.0);   // from the incremental
  EXPECT_DOUBLE_EQ(f.lib[0], 1.0);    // from the full base
  EXPECT_DOUBLE_EQ(report.from_when, 2.0);
}

TEST(CheckpointStore, IncrementalRequiresFullBase) {
  Fixture f;
  CheckpointStore store;
  EXPECT_THROW(store.take_incremental(f.image, 1.0),
               common::precondition_error);
}

TEST(CheckpointStore, IncrementalSavesOnlyDirtyBytes) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 1.0);  // clears dirty
  f.image.mark_dirty(f.rem_id);
  const auto id = store.take_incremental(f.image, 2.0);
  EXPECT_EQ(store.record(id).bytes, 4 * sizeof(double));
}

TEST(CheckpointStore, NewerSplitBeatsOlderFull) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 1.0);
  f.rem[0] = 77.0;
  const auto entry = store.take_entry(f.image, 2.0);
  f.lib[0] = 88.0;
  store.take_exit(f.image, 3.0, entry);
  f.rem.fill(0);
  f.lib.fill(0);
  store.restore_latest(f.image);
  EXPECT_DOUBLE_EQ(f.rem[0], 77.0);
  EXPECT_DOUBLE_EQ(f.lib[0], 88.0);
}

TEST(CheckpointStore, CompactDropsObsoleteSnapshots) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 1.0);
  store.take_full(f.image, 2.0);
  const auto entry = store.take_entry(f.image, 3.0);
  store.take_exit(f.image, 4.0, entry);
  EXPECT_EQ(store.count(), 4u);
  store.compact();
  EXPECT_EQ(store.count(), 2u);  // the entry+exit pair survives
  f.rem.fill(0);
  f.lib.fill(0);
  EXPECT_NO_THROW(store.restore_latest(f.image));
}

TEST(CheckpointStore, TimestampsMustBeMonotone) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 5.0);
  EXPECT_THROW(store.take_full(f.image, 4.0), common::precondition_error);
}

TEST(CheckpointStore, StoredBytesAccounting) {
  Fixture f;
  CheckpointStore store;
  store.take_full(f.image, 1.0);
  EXPECT_EQ(store.stored_bytes(), f.image.total_bytes());
  store.take_entry(f.image, 2.0);
  EXPECT_EQ(store.stored_bytes(),
            f.image.total_bytes() + 4 * sizeof(double));
}

}  // namespace

// Tests for the weak-scaling scenario generator (Section V-C) and the
// storage-model bridge.

#include <gtest/gtest.h>

#include "ckpt/storage.hpp"
#include "common/time_units.hpp"
#include "core/protocol_models.hpp"
#include "core/scaling.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;

TEST(ScaleFactor, Laws) {
  EXPECT_DOUBLE_EQ(scale_factor(ScalingLaw::Constant, 100.0), 1.0);
  EXPECT_DOUBLE_EQ(scale_factor(ScalingLaw::Sqrt, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(scale_factor(ScalingLaw::Linear, 100.0), 100.0);
  EXPECT_THROW(scale_factor(ScalingLaw::Sqrt, 0.0),
               common::precondition_error);
}

TEST(Scaling, Figure9AlphaAnchorsMatchPaper) {
  const auto cfg = figure9_config();
  EXPECT_NEAR(alpha_at(cfg, 1e3), 0.55, 0.01);
  EXPECT_NEAR(alpha_at(cfg, 1e4), 0.80, 1e-9);
  EXPECT_NEAR(alpha_at(cfg, 1e5), 0.92, 0.01);
  EXPECT_NEAR(alpha_at(cfg, 1e6), 0.975, 0.002);
}

TEST(Scaling, Figure8AlphaIsConstant) {
  const auto cfg = figure8_config();
  for (const double n : {1e3, 1e4, 1e5, 1e6})
    EXPECT_NEAR(alpha_at(cfg, n), 0.8, 1e-9);
}

TEST(Scaling, AnchorsAtBaseNodes) {
  for (const auto& cfg :
       {figure8_config(), figure9_config(), figure10_config()}) {
    const auto s = scenario_at(cfg, cfg.base_nodes);
    EXPECT_DOUBLE_EQ(s.ckpt.full_cost, cfg.base_ckpt);
    EXPECT_DOUBLE_EQ(s.platform.mtbf, cfg.base_mtbf);
    EXPECT_NEAR(s.epoch.alpha, 0.8, 1e-9);
  }
}

TEST(Scaling, MtbfShrinksAndCkptGrows) {
  const auto cfg = figure8_config();
  const auto small = scenario_at(cfg, 1e3);
  const auto large = scenario_at(cfg, 1e6);
  EXPECT_GT(small.platform.mtbf, large.platform.mtbf);
  EXPECT_LT(small.ckpt.full_cost, large.ckpt.full_cost);
}

TEST(Scaling, Figure10CkptConstant) {
  const auto cfg = figure10_config();
  EXPECT_DOUBLE_EQ(scenario_at(cfg, 1e3).ckpt.full_cost,
                   scenario_at(cfg, 1e6).ckpt.full_cost);
}

TEST(Scaling, NodeSweepIsLogSpacedAndCoversRange) {
  const auto sweep = default_node_sweep();
  ASSERT_GE(sweep.size(), 4u);
  EXPECT_DOUBLE_EQ(sweep.front(), 1000.0);
  EXPECT_DOUBLE_EQ(sweep.back(), 1e6);
  for (std::size_t i = 1; i < sweep.size(); ++i)
    EXPECT_GT(sweep[i], sweep[i - 1]);
}

TEST(Scaling, LiteralConfigDivergesAtScale) {
  // The paper's literal Section V-C reading: every protocol collapses once
  // µ < C + R + D (documented deviation, EXPERIMENTS.md).
  const auto cfg = figure8_literal_config();
  const auto s = scenario_at(cfg, 1e6);
  EXPECT_TRUE(evaluate_pure(s).diverged);
  EXPECT_TRUE(evaluate_bi(s).diverged);
}

TEST(Scaling, CrossoverNearHundredThousandNodes) {
  // The headline Figure 8 claim.
  const auto cfg = figure8_config();
  const ModelOptions no_guard{.safeguard = false};
  const auto waste = [&](Protocol p, double n) {
    return evaluate(p, scenario_at(cfg, n), no_guard).waste();
  };
  // Composite worse (ABFT overhead) at 10k, better at 1M.
  EXPECT_GT(waste(Protocol::AbftPeriodicCkpt, 1e4),
            waste(Protocol::PurePeriodicCkpt, 1e4));
  EXPECT_LT(waste(Protocol::AbftPeriodicCkpt, 1e6),
            waste(Protocol::PurePeriodicCkpt, 1e6) * 0.5);
}

TEST(StorageModels, RemotePfsBottlenecksOnAggregate) {
  const auto pfs = ckpt::remote_pfs(1e9);  // 1 GB/s total
  // 1 TB over 100 nodes or 1000 nodes: same aggregate time.
  EXPECT_NEAR(pfs.write_time(1e12, 100), pfs.write_time(1e12, 1000), 1e-9);
  // Doubling the data doubles the time.
  EXPECT_NEAR(pfs.write_time(2e12, 100) / pfs.write_time(1e12, 100), 2.0,
              0.01);
}

TEST(StorageModels, BuddyScalesWithNodes) {
  const auto buddy = ckpt::buddy_store(1e9);  // 1 GB/s per link
  // Constant per-node data -> constant time regardless of node count.
  EXPECT_NEAR(buddy.write_time(1e9 * 100, 100),
              buddy.write_time(1e9 * 1000, 1000), 1e-9);
}

TEST(StorageModels, ReadSpeedupAffectsRecovery) {
  auto m = ckpt::remote_pfs(1e9);
  m.read_speedup = 2.0;
  EXPECT_NEAR(m.read_time(1e12, 10),
              m.latency + (m.write_time(1e12, 10) - m.latency) / 2.0, 1e-9);
}

TEST(StorageModels, BridgeProducesModelParams) {
  const auto buddy = ckpt::buddy_store(10e9, 0.0);  // 10 GB/s links
  const auto p = ckpt_from_storage(buddy, 64e9, 10000, 0.8);  // 64 GB/node
  EXPECT_NEAR(p.full_cost, 6.4, 1e-9);
  EXPECT_DOUBLE_EQ(p.rho, 0.8);
  EXPECT_NEAR(p.library_cost(), 0.8 * p.full_cost, 1e-12);
}

TEST(StorageModels, Validation) {
  ckpt::StorageModel bad;
  EXPECT_THROW(bad.validate(), common::precondition_error);
  EXPECT_THROW(ckpt::remote_pfs(-1.0), common::precondition_error);
  const auto pfs = ckpt::remote_pfs(1e9);
  EXPECT_THROW((void)pfs.write_time(-1.0, 10), common::precondition_error);
  EXPECT_THROW((void)pfs.write_time(1.0, 0), common::precondition_error);
}

TEST(Scaling, ConfigValidation) {
  auto cfg = figure8_config();
  cfg.epochs = 0;
  EXPECT_THROW(scenario_at(cfg, 1e4), common::precondition_error);
  cfg = figure8_config();
  cfg.base_library = cfg.base_general = 0.0;
  EXPECT_THROW(scenario_at(cfg, 1e4), common::precondition_error);
  cfg = figure8_config();
  EXPECT_THROW(scenario_at(cfg, -5), common::precondition_error);
}

}  // namespace

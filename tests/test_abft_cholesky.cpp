// Tests for the ABFT-protected Cholesky factorization.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

#include "abft/abft_cholesky.hpp"
#include "abft/blas.hpp"

namespace {

using namespace abftc;
using abft::AbftCholesky;
using abft::Matrix;
using abft::ProcessGrid;

Matrix spd(std::size_t n, std::uint64_t seed = 5) {
  common::Rng rng(seed);
  return Matrix::spd(n, rng);
}

TEST(AbftCholesky, MatchesPlainFactorization) {
  const std::size_t n = 96, nb = 8;
  const Matrix a = spd(n);
  Matrix plain = a;
  abft::plain_blocked_cholesky(plain, nb);

  AbftCholesky chol(a, nb, ProcessGrid{2, 3});
  chol.factor();
  // Compare lower triangles (the ABFT variant mirrors the upper part).
  double max_diff = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j)
      max_diff = std::max(max_diff, std::fabs(chol.factor_matrix()(i, j) -
                                              plain(i, j)));
  EXPECT_LT(max_diff, 1e-9);
}

TEST(AbftCholesky, ReconstructsProduct) {
  const Matrix a = spd(64);
  AbftCholesky chol(a, 8, ProcessGrid{2, 2});
  chol.factor();
  EXPECT_LT(abft::relative_error(chol.reconstruct_product(), a), 1e-12);
}

TEST(AbftCholesky, ChecksumInvariantHolds) {
  AbftCholesky chol(spd(80), 8, ProcessGrid{2, 2});
  chol.factor();
  EXPECT_LT(chol.checksum_residual(), 1e-6);
}

TEST(AbftCholesky, SolvesSpdSystems) {
  const std::size_t n = 64;
  const Matrix a = spd(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i)
    x_true[i] = std::sin(static_cast<double>(i));
  std::vector<double> b;
  abft::gemv(a.view(), x_true, b);

  AbftCholesky chol(a, 8, ProcessGrid{2, 2});
  chol.factor();
  const auto x = abft::cholesky_solve(chol.factor_matrix(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

class AbftCholeskyFaultTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AbftCholeskyFaultTest, RecoversAtAnyStep) {
  const auto [step, rank] = GetParam();
  const std::size_t n = 96, nb = 8;
  const Matrix a = spd(n);
  AbftCholesky chol(a, nb, ProcessGrid{2, 3});
  chol.factor({{step, rank}});
  EXPECT_GT(chol.recovery().blocks_recovered, 0u);
  EXPECT_LT(abft::relative_error(chol.reconstruct_product(), a), 1e-9)
      << "step " << step << " rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(
    StepsAndRanks, AbftCholeskyFaultTest,
    ::testing::Combine(::testing::Values(0u, 2u, 6u, 12u),
                       ::testing::Values(1u, 3u, 5u)));

TEST(AbftCholesky, TwoFaultsAcrossSteps) {
  const Matrix a = spd(96);
  AbftCholesky chol(a, 8, ProcessGrid{2, 3});
  chol.factor({{1, 0}, {9, 5}});
  EXPECT_LT(abft::relative_error(chol.reconstruct_product(), a), 1e-9);
}

TEST(AbftCholesky, SameGridColumnSimultaneousIsUnrecoverable) {
  const Matrix a = spd(96);
  AbftCholesky chol(a, 8, ProcessGrid{2, 3});
  EXPECT_THROW(chol.factor({{4, 0}, {4, 3}}), abft::unrecoverable_error);
}

TEST(AbftCholesky, RejectsNonSpd) {
  Matrix a(16, 16, 0.0);
  for (std::size_t i = 0; i < 16; ++i) a(i, i) = -1.0;
  AbftCholesky chol(a, 8, ProcessGrid{1, 1});
  EXPECT_THROW(chol.factor(), common::invariant_error);
}

TEST(AbftCholesky, RejectsBadBlocking) {
  EXPECT_THROW(AbftCholesky(spd(30), 8, ProcessGrid{2, 2}),
               common::precondition_error);
}

}  // namespace

// Tests for the checkpoint I/O subsystem: backend conformance
// (memory/file/mmap through one parameterized suite), the CkptWriter
// async pipeline (bitwise-equal to the serial reference, all checkpoint
// kinds, split restore composition across a backend reopen), integrity
// rejection (corrupted payload, truncated file, torn snapshot), the
// MeasuredStorage calibrator, the --storage resolver, and the
// CheckpointStore's parallel copy/CRC loops (worker-count invariance).

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/io/backend.hpp"
#include "ckpt/io/calibrate.hpp"
#include "ckpt/io/faulting.hpp"
#include "ckpt/io/log_backend.hpp"
#include "ckpt/io/uring.hpp"
#include "ckpt/io/writer.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"
#include "core/measured_storage.hpp"

namespace {

using namespace abftc;
using namespace abftc::ckpt;
using namespace abftc::ckpt::io;
namespace fs = std::filesystem;

// --- helpers ----------------------------------------------------------------

/// Fresh per-test scratch directory under $TMPDIR (so CI can point the
/// whole suite at tmpfs or a real disk; older gtest TempDir() ignores it).
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    std::string leaf = std::string("abftc_io_") + info->test_suite_name() +
                       "_" + info->name();
    // Parameterized test names contain '/', which is a path separator.
    std::replace(leaf.begin(), leaf.end(), '/', '_');
    const char* env = std::getenv("TMPDIR");
    const fs::path base = (env != nullptr && *env != '\0')
                              ? fs::path(env)
                              : fs::path(::testing::TempDir());
    path_ = base / leaf;
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const noexcept { return path_; }

 private:
  fs::path path_;
};

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned seed) {
  std::vector<std::byte> out(n);
  std::mt19937 rng(seed);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xFF);
  return out;
}

/// Option tail for log-backend specs, overridable from the environment so
/// CI can re-run the shared suites with io_uring submission enabled
/// (ABFTC_LOG_SPEC_OPTS="shards=4&uring=1"); defaults to the pwrite path.
/// Tests doing byte-offset surgery on segment files pin their own options.
std::string log_spec_options() {
  const char* opts = std::getenv("ABFTC_LOG_SPEC_OPTS");
  return (opts != nullptr && *opts != '\0') ? opts : "shards=4";
}

SnapshotBlob sample_blob(CkptId id, std::size_t bytes_a, std::size_t bytes_b) {
  SnapshotBlob blob;
  blob.meta.id = id;
  blob.meta.kind = CkptKind::Full;
  blob.meta.when = static_cast<double>(id);
  blob.meta.bytes = bytes_a + bytes_b;
  const std::pair<RegionId, std::size_t> layout[] = {{0, bytes_a},
                                                     {1, bytes_b}};
  for (const auto& [region, bytes] : layout) {
    RegionBlob r;
    r.region = region;
    r.payload = pattern_bytes(bytes, static_cast<unsigned>(id * 7 + region));
    r.crc = common::crc32(std::span(r.payload));
    blob.regions.push_back(std::move(r));
  }
  return blob;
}

/// An image over caller-owned buffers: one LIBRARY + one REMAINDER region.
struct ImageFixture {
  std::vector<std::byte> lib, rem;
  MemoryImage image;

  explicit ImageFixture(std::size_t lib_bytes = 300000,
                        std::size_t rem_bytes = 120000)
      : lib(pattern_bytes(lib_bytes, 1)), rem(pattern_bytes(rem_bytes, 2)) {
    image.add_region("lib", std::span(lib), RegionClass::Library);
    image.add_region("rem", std::span(rem), RegionClass::Remainder);
  }
};

// --- backend conformance (same suite for memory / file / mmap) --------------

class BackendConformance : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::string spec() const {
    const std::string kind = GetParam();
    if (kind == "memory") return "memory";
    if (kind == "file") return "file:" + (tmp_.path() / "store").string();
    if (kind == "log")
      return "log:" + (tmp_.path() / "store").string() + "?" +
             log_spec_options();
    return "mmap:" + (tmp_.path() / "arena.ckpt").string() + "?mb=8";
  }
  TempDir tmp_;
};

TEST_P(BackendConformance, RoundTripsSnapshots) {
  const auto backend = make_backend(spec());
  EXPECT_EQ(backend->name(), std::string(GetParam()));
  const SnapshotBlob blob = sample_blob(1, 70000, 30000);
  backend->write_snapshot(blob);

  const SnapshotBlob back = backend->read_snapshot(1);
  EXPECT_EQ(back.meta.id, blob.meta.id);
  EXPECT_EQ(back.meta.kind, blob.meta.kind);
  EXPECT_DOUBLE_EQ(back.meta.when, blob.meta.when);
  EXPECT_EQ(back.meta.bytes, blob.meta.bytes);
  ASSERT_EQ(back.regions.size(), blob.regions.size());
  for (std::size_t i = 0; i < back.regions.size(); ++i) {
    EXPECT_EQ(back.regions[i].region, blob.regions[i].region);
    EXPECT_EQ(back.regions[i].crc, blob.regions[i].crc);
    EXPECT_EQ(back.regions[i].payload, blob.regions[i].payload);
  }
  EXPECT_NO_THROW(back.verify());
}

TEST_P(BackendConformance, ListsInCommitOrderAndDrops) {
  const auto backend = make_backend(spec());
  backend->write_snapshot(sample_blob(3, 1000, 500));
  backend->write_snapshot(sample_blob(1, 2000, 100));
  backend->write_snapshot(sample_blob(2, 300, 300));

  auto metas = backend->list();
  ASSERT_EQ(metas.size(), 3u);
  EXPECT_EQ(metas[0].id, 3u);  // commit order, not id order
  EXPECT_EQ(metas[1].id, 1u);
  EXPECT_EQ(metas[2].id, 2u);

  backend->drop(1);
  metas = backend->list();
  ASSERT_EQ(metas.size(), 2u);
  EXPECT_EQ(metas[0].id, 3u);
  EXPECT_EQ(metas[1].id, 2u);
  EXPECT_THROW((void)backend->read_snapshot(1), io_error);
  EXPECT_THROW(backend->drop(1), io_error);
}

TEST_P(BackendConformance, RejectsUnknownIdsAndDuplicates) {
  const auto backend = make_backend(spec());
  EXPECT_THROW((void)backend->read_snapshot(42), io_error);
  backend->write_snapshot(sample_blob(7, 100, 100));
  EXPECT_THROW(backend->write_snapshot(sample_blob(7, 100, 100)),
               common::precondition_error);
}

TEST_P(BackendConformance, StreamingSessionMatchesBlobWrite) {
  const auto backend = make_backend(spec());
  const SnapshotBlob blob = sample_blob(5, 50000, 20000);
  auto session = backend->begin_snapshot(
      blob.meta, {blob.regions[0].region, blob.regions[1].region},
      {blob.regions[0].payload.size(), blob.regions[1].payload.size()});
  // Append in deliberately awkward chunk sizes.
  for (const RegionBlob& r : blob.regions) {
    std::span<const std::byte> rest(r.payload);
    while (!rest.empty()) {
      const std::size_t take = std::min<std::size_t>(rest.size(), 7777);
      session->append(rest.first(take));
      rest = rest.subspan(take);
    }
  }
  session->commit({blob.regions[0].crc, blob.regions[1].crc});

  const SnapshotBlob back = backend->read_snapshot(5);
  EXPECT_EQ(back.regions[0].payload, blob.regions[0].payload);
  EXPECT_EQ(back.regions[1].payload, blob.regions[1].payload);
  EXPECT_NO_THROW(back.verify());
}

TEST_P(BackendConformance, AbandonedSessionLeavesNoSnapshot) {
  const auto backend = make_backend(spec());
  {
    auto session = backend->begin_snapshot(
        SnapshotMeta{9, CkptKind::Full, 1.0, 0, 1000}, {0}, {1000});
    const auto junk = pattern_bytes(500, 3);
    session->append(std::span(junk));
    // destroyed uncommitted
  }
  EXPECT_TRUE(backend->list().empty());
  EXPECT_THROW((void)backend->read_snapshot(9), io_error);
  // The backend remains fully usable afterwards.
  backend->write_snapshot(sample_blob(9, 100, 100));
  EXPECT_EQ(backend->list().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BackendConformance,
    ::testing::Values("memory", "file", "mmap", "log"),
    [](const auto& info) { return std::string(info.param); });

// --- persistence across reopen (file + mmap) --------------------------------

TEST(FileBackendPersistence, SurvivesReopen) {
  TempDir tmp;
  const std::string spec = "file:" + (tmp.path() / "store").string();
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 5000, 2000));
    backend->write_snapshot(sample_blob(2, 100, 900));
  }
  const auto reopened = make_backend(spec);
  ASSERT_EQ(reopened->list().size(), 2u);
  const SnapshotBlob back = reopened->read_snapshot(1);
  EXPECT_NO_THROW(back.verify());
  EXPECT_EQ(back.meta.bytes, 7000u);
}

TEST(MmapBackendPersistence, SurvivesReopenAndReclaimsWhenEmpty) {
  TempDir tmp;
  const std::string spec =
      "mmap:" + (tmp.path() / "arena.ckpt").string() + "?mb=8";
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 5000, 2000));
  }
  const auto reopened = make_backend(spec);
  ASSERT_EQ(reopened->list().size(), 1u);
  EXPECT_NO_THROW(reopened->read_snapshot(1).verify());

  auto* arena = dynamic_cast<MmapBackend*>(reopened.get());
  ASSERT_NE(arena, nullptr);
  const std::size_t free_before = arena->free_bytes();
  reopened->drop(1);
  EXPECT_GT(arena->free_bytes(), free_before);  // cursor rewound when empty
}

TEST(MmapBackend, DropOfNewestRewindsCursorDespiteHistory) {
  // Write/restore/drop cycles (the calibrator, rotating protection points)
  // must not leak arena space even when older snapshots stay live.
  TempDir tmp;
  const auto backend =
      make_backend("mmap:" + (tmp.path() / "arena.ckpt").string() + "?mb=8");
  backend->write_snapshot(sample_blob(1, 4000, 1000));  // long-lived history
  auto* arena = dynamic_cast<MmapBackend*>(backend.get());
  ASSERT_NE(arena, nullptr);
  const std::size_t free_baseline = arena->free_bytes();
  for (CkptId id = 2; id < 40; ++id) {
    backend->write_snapshot(sample_blob(id, 50000, 10000));
    backend->drop(id);
    ASSERT_EQ(arena->free_bytes(), free_baseline) << "cycle " << id;
  }
  EXPECT_NO_THROW(backend->read_snapshot(1).verify());
}

TEST(MmapBackend, ReclaimsTornReservationOnReopen) {
  TempDir tmp;
  const fs::path arena = tmp.path() / "arena.ckpt";
  const std::string spec = "mmap:" + arena.string() + "?mb=8";
  std::size_t free_after_commit = 0;
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 1000, 500));
    free_after_commit =
        dynamic_cast<MmapBackend*>(backend.get())->free_bytes();
  }
  {
    // Simulate a crash mid-session: a reserved-but-uncommitted slot and an
    // advanced bump cursor reach the file (MAP_SHARED) without a commit.
    std::fstream io(arena, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(io.good());
    const std::uint32_t one = 1;
    io.seekp(40 + 64);  // slot 1's `used` flag (header is 40 B, slots 64 B)
    io.write(reinterpret_cast<const char*>(&one), 4);
    std::uint64_t cursor = 0;
    io.seekg(24);  // header.data_cursor
    io.read(reinterpret_cast<char*>(&cursor), 8);
    cursor += 1 << 20;
    io.seekp(24);
    io.write(reinterpret_cast<const char*>(&cursor), 8);
  }
  const auto backend = make_backend(spec);
  ASSERT_EQ(backend->list().size(), 1u);  // the committed snapshot survives
  EXPECT_EQ(dynamic_cast<MmapBackend*>(backend.get())->free_bytes(),
            free_after_commit);  // the torn reservation was reclaimed
  EXPECT_NO_THROW(backend->write_snapshot(sample_blob(2, 100, 100)));
}

TEST(MmapBackend, ReclaimsCommittedSlotWithTornGeometryOnReopen) {
  // A SIGKILLed committer can leave a slot whose `committed` flag reached
  // the file while the rest of the record did not (the flag is stored last,
  // but page writeback order is not guaranteed across a crash). Such a slot
  // is flagged live yet describes no snapshot inside the arena — open()
  // must treat it as torn, not serve it.
  TempDir tmp;
  const fs::path arena = tmp.path() / "arena.ckpt";
  const std::string spec = "mmap:" + arena.string() + "?mb=8";
  std::size_t free_after_commit = 0;
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 1000, 500));
    free_after_commit =
        dynamic_cast<MmapBackend*>(backend.get())->free_bytes();
  }
  {
    // Fabricate slot 1 by hand: used = committed = 1, id = 77, but with an
    // offset outside the arena and seq = 0 (never issued). Header is 40 B,
    // slots are 64 B: {used u32, committed u32, id u64, kind u32,
    // region_count u32, when f64, entry_link u64, bytes u64, offset u64,
    // seq u64}.
    std::fstream io(arena, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(io.good());
    const std::uint64_t slot1 = 40 + 64;
    const std::uint32_t one = 1;
    io.seekp(static_cast<std::streamoff>(slot1));
    io.write(reinterpret_cast<const char*>(&one), 4);  // used
    io.write(reinterpret_cast<const char*>(&one), 4);  // committed
    const std::uint64_t id = 77;
    io.write(reinterpret_cast<const char*>(&id), 8);
    const std::uint64_t garbage_offset = 1ull << 40;  // far past capacity
    io.seekp(static_cast<std::streamoff>(slot1 + 48));
    io.write(reinterpret_cast<const char*>(&garbage_offset), 8);
  }
  const auto backend = make_backend(spec);
  ASSERT_EQ(backend->list().size(), 1u);  // only the real snapshot is live
  EXPECT_EQ(backend->list()[0].id, 1u);
  EXPECT_THROW((void)backend->read_snapshot(77), io_error);
  EXPECT_EQ(dynamic_cast<MmapBackend*>(backend.get())->free_bytes(),
            free_after_commit);  // the phantom slot holds no arena bytes
  EXPECT_NO_THROW(backend->write_snapshot(sample_blob(2, 100, 100)));
}

TEST(MmapBackend, ReportsArenaExhaustion) {
  TempDir tmp;
  const auto backend =
      make_backend("mmap:" + (tmp.path() / "tiny.ckpt").string() + "?mb=1");
  // ~1 MiB arena minus header: a 2 MiB snapshot cannot fit.
  SnapshotBlob blob = sample_blob(1, 1 << 21, 1024);
  EXPECT_THROW(backend->write_snapshot(blob), io_error);
  EXPECT_TRUE(backend->list().empty());
}

// --- CkptWriter: pipeline correctness & taxonomy ----------------------------

class WriterRoundTrip : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::string spec() const {
    const std::string kind = GetParam();
    if (kind == "memory") return "memory";
    if (kind == "file") return "file:" + (tmp_.path() / "store").string();
    if (kind == "log")
      return "log:" + (tmp_.path() / "store").string() + "?" +
             log_spec_options();
    return "mmap:" + (tmp_.path() / "arena.ckpt").string() + "?mb=16";
  }
  TempDir tmp_;
};

TEST_P(WriterRoundTrip, FullAndIncrementalRestore) {
  const auto backend = make_backend(spec());
  WriterOptions opts;
  opts.chunk_bytes = 64 * 1024;  // several chunks per region
  CkptWriter writer(*backend, opts);
  ImageFixture f;

  writer.take_full(f.image, 1.0);
  f.rem[0] = std::byte{0xAA};
  f.image.mark_dirty(1);
  writer.take_incremental(f.image, 2.0);

  // Scramble and restore: incremental on top of the full base.
  const auto lib_orig = f.lib, rem_orig = f.rem;
  std::fill(f.lib.begin(), f.lib.end(), std::byte{0xFF});
  std::fill(f.rem.begin(), f.rem.end(), std::byte{0xFF});
  const auto report = writer.restore_latest(f.image);
  EXPECT_EQ(f.lib, lib_orig);
  EXPECT_EQ(f.rem, rem_orig);
  EXPECT_DOUBLE_EQ(report.from_when, 2.0);
  EXPECT_EQ(report.applied.size(), 2u);
}

TEST_P(WriterRoundTrip, SplitEntryExitComposition) {
  const auto backend = make_backend(spec());
  CkptWriter writer(*backend, WriterOptions{.chunk_bytes = 64 * 1024});
  ImageFixture f;

  const CkptId entry = writer.take_entry(f.image, 1.0);
  f.lib[7] = std::byte{0x55};  // the library call mutates its dataset
  writer.take_exit(f.image, 2.0, entry);

  const auto lib_at_exit = f.lib, rem_at_entry = f.rem;
  std::fill(f.lib.begin(), f.lib.end(), std::byte{0});
  std::fill(f.rem.begin(), f.rem.end(), std::byte{0});
  const auto report = writer.restore_latest(f.image);
  EXPECT_EQ(f.lib, lib_at_exit);
  EXPECT_EQ(f.rem, rem_at_entry);
  EXPECT_EQ(report.applied.size(), 2u);
  EXPECT_EQ(report.bytes_restored, f.image.total_bytes());
}

TEST_P(WriterRoundTrip, AsyncAndSerialProduceIdenticalSnapshots) {
  const auto backend = make_backend(spec());
  ImageFixture f;
  {
    CkptWriter serial(*backend,
                      WriterOptions{.chunk_bytes = 64 * 1024, .async = false});
    serial.take_full(f.image, 1.0);
  }
  {
    CkptWriter async(*backend,
                     WriterOptions{.chunk_bytes = 64 * 1024, .async = true});
    async.take_full(f.image, 2.0);
  }
  const auto metas = backend->list();
  ASSERT_EQ(metas.size(), 2u);
  const SnapshotBlob a = backend->read_snapshot(metas[0].id);
  const SnapshotBlob b = backend->read_snapshot(metas[1].id);
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t i = 0; i < a.regions.size(); ++i) {
    EXPECT_EQ(a.regions[i].crc, b.regions[i].crc) << "region " << i;
    EXPECT_EQ(a.regions[i].payload, b.regions[i].payload) << "region " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, WriterRoundTrip,
    ::testing::Values("memory", "file", "mmap", "log"),
    [](const auto& info) { return std::string(info.param); });

TEST(CkptWriter, ExitValidatesCoverageAndEntryKind) {
  MemoryBackend backend;
  CkptWriter writer(backend);
  ImageFixture f;
  const CkptId full = writer.take_full(f.image, 1.0);
  EXPECT_THROW(writer.take_exit(f.image, 2.0, full),
               common::precondition_error);
  EXPECT_THROW(writer.take_exit(f.image, 2.0, 999),
               common::precondition_error);
  EXPECT_THROW(writer.take_incremental(f.image, 0.5),  // when decreasing
               common::precondition_error);
}

TEST(CkptWriter, EmptyIncrementalMatchesStoreSemantics) {
  // An Incremental with nothing dirty records an empty snapshot and keeps
  // restoring cleanly — CheckpointStore parity.
  MemoryBackend backend;
  CkptWriter writer(backend);
  ImageFixture f;
  writer.take_full(f.image, 1.0);
  writer.take_incremental(f.image, 2.0);  // nothing dirty
  EXPECT_EQ(backend.list().back().bytes, 0u);

  const auto lib_orig = f.lib;
  std::fill(f.lib.begin(), f.lib.end(), std::byte{0});
  const auto report = writer.restore_latest(f.image);
  EXPECT_EQ(f.lib, lib_orig);
  EXPECT_DOUBLE_EQ(report.from_when, 2.0);
  EXPECT_EQ(report.applied.size(), 2u);
}

TEST(CkptWriter, EntryAloneIsNotARestorePoint) {
  MemoryBackend backend;
  CkptWriter writer(backend);
  ImageFixture f;
  EXPECT_FALSE(writer.has_restore_point());
  writer.take_entry(f.image, 1.0);
  EXPECT_FALSE(writer.has_restore_point());
  EXPECT_THROW(writer.restore_latest(f.image), common::precondition_error);
}

TEST(CkptWriter, SplitSurvivesBackendReopen) {
  // Entry+Exit written through one FileBackend instance, restored through a
  // fresh one — the composition works from persistent state alone.
  TempDir tmp;
  const std::string spec = "file:" + (tmp.path() / "store").string();
  ImageFixture f;
  std::vector<std::byte> lib_at_exit, rem_at_entry;
  {
    const auto backend = make_backend(spec);
    CkptWriter writer(*backend, WriterOptions{.chunk_bytes = 32 * 1024});
    const CkptId entry = writer.take_entry(f.image, 1.0);
    f.lib[11] = std::byte{0x77};
    writer.take_exit(f.image, 2.0, entry);
    lib_at_exit = f.lib;
    rem_at_entry = f.rem;
  }
  std::fill(f.lib.begin(), f.lib.end(), std::byte{0});
  std::fill(f.rem.begin(), f.rem.end(), std::byte{0});

  const auto backend = make_backend(spec);
  CkptWriter writer(*backend);
  ASSERT_TRUE(writer.has_restore_point());
  writer.restore_latest(f.image);
  EXPECT_EQ(f.lib, lib_at_exit);
  EXPECT_EQ(f.rem, rem_at_entry);
  // Ids continue after the reopened history.
  const CkptId next = writer.take_full(f.image, 3.0);
  EXPECT_EQ(next, 3u);
}

// --- integrity rejection ----------------------------------------------------

/// Flip one payload byte of the snapshot file on disk.
void corrupt_snapshot_file(const fs::path& store, CkptId id) {
  const fs::path file = store / ("snap_" + std::to_string(id) + ".ckpt");
  ASSERT_TRUE(fs::exists(file));
  std::fstream io(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(io.good());
  io.seekp(-1, std::ios::end);  // last payload byte
  const auto pos = io.tellp();
  io.seekg(pos);
  char b = 0;
  io.read(&b, 1);
  b = static_cast<char>(b ^ 0x01);
  io.seekp(pos);
  io.write(&b, 1);
}

TEST(LatestRestorable, SkipsCorruptNewestAndFallsBack) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  const std::string spec = "file:" + store.string();
  {
    const auto backend = make_backend(spec);
    EXPECT_FALSE(latest_restorable(*backend).has_value());  // empty store
    backend->write_snapshot(sample_blob(1, 4000, 1000));
    backend->write_snapshot(sample_blob(2, 4000, 1000));
    const auto best = latest_restorable(*backend);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->meta.id, 2u);  // newest wins while it verifies
  }
  corrupt_snapshot_file(store, 2);
  const auto backend = make_backend(spec);
  const auto best = latest_restorable(*backend);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->meta.id, 1u);  // falls back past the corrupt newest
  EXPECT_NO_THROW(best->verify());
}

TEST(FileBackendIntegrity, CorruptedPayloadFailsRestore) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  const std::string spec = "file:" + store.string();
  ImageFixture f;
  {
    const auto backend = make_backend(spec);
    CkptWriter writer(*backend);
    writer.take_full(f.image, 1.0);
  }
  corrupt_snapshot_file(store, 1);

  const auto backend = make_backend(spec);
  CkptWriter writer(*backend);
  const auto lib_before = f.lib;
  EXPECT_THROW(writer.restore_latest(f.image), io_error);
  // Verify-then-apply: the image was not half-restored.
  EXPECT_EQ(f.lib, lib_before);
}

TEST(FileBackendIntegrity, TruncatedFileIsRejected) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  const std::string spec = "file:" + store.string();
  ImageFixture f;
  {
    const auto backend = make_backend(spec);
    CkptWriter writer(*backend);
    writer.take_full(f.image, 1.0);
  }
  const fs::path file = store / "snap_1.ckpt";
  fs::resize_file(file, fs::file_size(file) - 1000);

  const auto backend = make_backend(spec);
  EXPECT_THROW((void)backend->read_snapshot(1), io_error);
  CkptWriter writer(*backend);
  EXPECT_THROW(writer.restore_latest(f.image), io_error);
}

TEST(FileBackendIntegrity, TornSnapshotIsRejected) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  const std::string spec = "file:" + store.string();
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 4000, 1000));
  }
  // Recreate the exact state a crash between the payload write and the
  // commit record leaves behind: committed = 0 (offset 12) with a *valid*
  // header CRC (the phase-1 header is written with its own CRC), so the
  // torn check — not the header-corruption check — must fire.
  std::fstream io(store / "snap_1.ckpt",
                  std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(io.good());
  std::array<char, 72> header{};
  io.read(header.data(), header.size());
  std::memset(header.data() + 12, 0, 4);  // committed = 0
  const std::uint32_t crc = common::crc32(
      std::span(reinterpret_cast<const std::byte*>(header.data()), 64));
  std::memcpy(header.data() + 64, &crc, 4);  // header_crc over bytes [0,64)
  io.seekp(0);
  io.write(header.data(), header.size());
  io.close();

  const auto backend = make_backend(spec);
  try {
    (void)backend->read_snapshot(1);
    FAIL() << "torn snapshot was accepted";
  } catch (const io_error& e) {
    EXPECT_NE(std::string(e.what()).find("torn"), std::string::npos)
        << "wrong rejection path: " << e.what();
  }
}

TEST(MmapBackendIntegrity, CorruptedArenaPayloadFailsRestore) {
  TempDir tmp;
  const fs::path arena = tmp.path() / "arena.ckpt";
  const std::string spec = "mmap:" + arena.string() + "?mb=8";
  ImageFixture f;
  {
    const auto backend = make_backend(spec);
    CkptWriter writer(*backend);
    writer.take_full(f.image, 1.0);
  }
  {
    // Flip a byte in the data area (past header + slot table).
    std::fstream io(arena, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(io.good());
    io.seekp(64 * 1024);
    char b = 0;
    io.seekg(64 * 1024);
    io.read(&b, 1);
    b = static_cast<char>(b ^ 0x80);
    io.seekp(64 * 1024);
    io.write(&b, 1);
  }
  const auto backend = make_backend(spec);
  CkptWriter writer(*backend);
  EXPECT_THROW(writer.restore_latest(f.image), io_error);
}

// --- log backend ------------------------------------------------------------

TEST(LogBackendPersistence, SurvivesReopenAcrossShards) {
  TempDir tmp;
  const std::string spec =
      "log:" + (tmp.path() / "store").string() + "?" + log_spec_options();
  {
    const auto backend = make_backend(spec);
    for (CkptId id = 1; id <= 9; ++id)
      backend->write_snapshot(sample_blob(id, 3000 + id * 100, 1000));
  }
  const auto reopened = make_backend(spec);
  const auto metas = reopened->list();
  ASSERT_EQ(metas.size(), 9u);
  for (CkptId id = 1; id <= 9; ++id) {
    const SnapshotBlob back = reopened->read_snapshot(id);
    EXPECT_NO_THROW(back.verify());
    EXPECT_EQ(back.meta.bytes, 4000u + id * 100);
  }
  // list() preserves commit (sequence) order across the reopen.
  for (std::size_t i = 0; i < metas.size(); ++i)
    EXPECT_EQ(metas[i].id, i + 1);
}

TEST(LogBackendPersistence, TombstoneSurvivesReopen) {
  TempDir tmp;
  const std::string spec =
      "log:" + (tmp.path() / "store").string() + "?shards=2";
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 4000, 1000));
    backend->write_snapshot(sample_blob(2, 4000, 1000));
    backend->drop(1);
  }
  const auto reopened = make_backend(spec);
  ASSERT_EQ(reopened->list().size(), 1u);
  EXPECT_EQ(reopened->list()[0].id, 2u);
  EXPECT_THROW((void)reopened->read_snapshot(1), io_error);
}

TEST(LogBackendRecovery, TruncatesExactlyTheTornSuffix) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  // One shard, so both records and the torn garbage share a segment.
  const std::string spec = "log:" + store.string() + "?shards=1";
  std::uintmax_t committed_bytes = 0;
  fs::path wal;
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 4000, 1000));
    backend->write_snapshot(sample_blob(2, 2000, 500));
    for (const auto& entry : fs::directory_iterator(store))
      if (entry.path().filename().string().starts_with("wal_"))
        wal = entry.path();
    ASSERT_FALSE(wal.empty());
    committed_bytes = fs::file_size(wal);
  }
  // A crashed committer's half-written record: framing never completes.
  {
    std::ofstream io(wal, std::ios::binary | std::ios::app);
    const std::vector<char> garbage(1000, 0x5C);
    io.write(garbage.data(), static_cast<std::streamsize>(garbage.size()));
  }
  const auto reopened = make_backend(spec);
  ASSERT_EQ(reopened->list().size(), 2u);
  EXPECT_NO_THROW(reopened->read_snapshot(1).verify());
  EXPECT_NO_THROW(reopened->read_snapshot(2).verify());
  // The suffix — and only the suffix — was cut back.
  EXPECT_EQ(fs::file_size(wal), committed_bytes);
}

TEST(LogBackendRecovery, CorruptTailRecordIsDiscardedAsTorn) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  const std::string spec = "log:" + store.string() + "?shards=1";
  std::uintmax_t after_first = 0;
  fs::path wal;
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 4000, 1000));
    for (const auto& entry : fs::directory_iterator(store))
      if (entry.path().filename().string().starts_with("wal_"))
        wal = entry.path();
    ASSERT_FALSE(wal.empty());
    after_first = fs::file_size(wal);
    backend->write_snapshot(sample_blob(2, 2000, 500));
  }
  // Flip one payload byte of the *tail* record: its commit was never
  // acknowledged as far as recovery can tell, so it is torn, not corrupt.
  {
    std::fstream io(wal, std::ios::in | std::ios::out | std::ios::binary);
    const auto pos =
        static_cast<std::streamoff>(after_first) + 72 + 2 * 24 + 8 + 100;
    char b = 0;
    io.seekg(pos);
    io.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    io.seekp(pos);
    io.write(&b, 1);
  }
  const auto reopened = make_backend(spec);
  ASSERT_EQ(reopened->list().size(), 1u);
  EXPECT_EQ(reopened->list()[0].id, 1u);
  EXPECT_NO_THROW(reopened->read_snapshot(1).verify());
  EXPECT_EQ(fs::file_size(wal), after_first);
}

TEST(LogBackendRecovery, MidFileCorruptionKeptButRejectedAtVerify) {
  TempDir tmp;
  const fs::path store = tmp.path() / "store";
  const std::string spec = "log:" + store.string() + "?shards=1";
  fs::path wal;
  {
    const auto backend = make_backend(spec);
    backend->write_snapshot(sample_blob(1, 4000, 1000));
    backend->write_snapshot(sample_blob(2, 2000, 500));
    for (const auto& entry : fs::directory_iterator(store))
      if (entry.path().filename().string().starts_with("wal_"))
        wal = entry.path();
  }
  // Flip a payload byte of the *first* record: mid-file, so its commit was
  // acknowledged — recovery keeps it and verify() rejects it.
  {
    std::fstream io(wal, std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff pos = 32 + 72 + 2 * 24 + 8 + 100;
    char b = 0;
    io.seekg(pos);
    io.read(&b, 1);
    b = static_cast<char>(b ^ 0x01);
    io.seekp(pos);
    io.write(&b, 1);
  }
  const auto reopened = make_backend(spec);
  ASSERT_EQ(reopened->list().size(), 2u);
  EXPECT_THROW(reopened->read_snapshot(1).verify(), io_error);
  const auto best = latest_restorable(*reopened);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->meta.id, 2u);
}

TEST(LogBackendFaults, TornPayloadFallsBackAndFailedCommitLeavesNothing) {
  TempDir tmp;
  LogBackend inner((tmp.path() / "store").string(),
                   LogBackend::Options{.shards = 2});
  inner.open();
  FaultingBackend faulty(
      inner, {{1, WriteFault::TornPayload}, {2, WriteFault::FailedCommit}});
  faulty.open();

  faulty.write_snapshot(sample_blob(1, 4000, 1000));  // clean
  faulty.write_snapshot(sample_blob(2, 4000, 1000));  // torn payload
  EXPECT_THROW(faulty.write_snapshot(sample_blob(3, 4000, 1000)), io_error);
  EXPECT_EQ(faulty.faults_fired(), 2u);

  ASSERT_EQ(inner.list().size(), 2u);  // the failed commit never landed
  EXPECT_THROW(inner.read_snapshot(2).verify(), io_error);
  const auto best = latest_restorable(inner);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->meta.id, 1u);  // falls back past the torn newest
  // The store stays writable after both fault shapes.
  faulty.write_snapshot(sample_blob(4, 100, 100));
  EXPECT_EQ(inner.list().size(), 3u);
}

TEST(LogBackendCompaction, FoldsChainToBitwiseEqualRestore) {
  TempDir tmp;
  LogBackend backend((tmp.path() / "store").string(),
                     LogBackend::Options{.shards = 2});
  backend.open();
  CkptWriter writer(backend, WriterOptions{.chunk_bytes = 64 * 1024});
  ImageFixture f;

  writer.take_full(f.image, 1.0);
  for (int k = 0; k < 4; ++k) {
    f.rem[static_cast<std::size_t>(k) * 11] = static_cast<std::byte>(0xB0 + k);
    f.image.mark_dirty(1);
    writer.take_incremental(f.image, 2.0 + k);
  }
  const auto lib_orig = f.lib, rem_orig = f.rem;
  const std::uint64_t before_live = backend.live_bytes();
  ASSERT_EQ(backend.list().size(), 5u);

  const CompactionStats stats = backend.compact_now();
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_EQ(stats.records_folded, 5u);
  EXPECT_GE(stats.segments_deleted, 1u);
  EXPECT_GT(stats.bytes_reclaimed, 0u);

  // The chain collapsed to one Full under the newest member's identity.
  const auto metas = backend.list();
  ASSERT_EQ(metas.size(), 1u);
  EXPECT_EQ(metas[0].kind, CkptKind::Full);
  EXPECT_DOUBLE_EQ(metas[0].when, 5.0);
  EXPECT_LT(backend.live_bytes(), before_live);

  // Restore from the folded record is bitwise-equal to the chain replay.
  std::fill(f.lib.begin(), f.lib.end(), std::byte{0xFF});
  std::fill(f.rem.begin(), f.rem.end(), std::byte{0xFF});
  const auto report = writer.restore_latest(f.image);
  EXPECT_EQ(f.lib, lib_orig);
  EXPECT_EQ(f.rem, rem_orig);
  EXPECT_DOUBLE_EQ(report.from_when, 5.0);

  // And the folded store survives a reopen.
  LogBackend reopened((tmp.path() / "store").string(),
                      LogBackend::Options{.shards = 2});
  reopened.open();
  ASSERT_EQ(reopened.list().size(), 1u);
  EXPECT_NO_THROW(reopened.read_snapshot(metas[0].id).verify());
}

TEST(LogBackendCompaction, BoundsLiveBytesUnderDropChurn) {
  TempDir tmp;
  LogBackend backend((tmp.path() / "store").string(),
                     LogBackend::Options{.shards = 2});
  backend.open();
  // A ckpt_every-style campaign: keep the newest full, drop the old one.
  for (CkptId id = 1; id <= 20; ++id) {
    backend.write_snapshot(sample_blob(id, 8000, 2000));
    if (id > 1) backend.drop(id - 1);
  }
  (void)backend.compact_now();
  ASSERT_EQ(backend.list().size(), 1u);
  // Segment bytes on disk stay within small-change of one live snapshot
  // (frozen segment + at most per-shard headers), not twenty of them.
  EXPECT_LT(backend.segment_bytes(), 3 * backend.live_bytes() + 4096);
  EXPECT_NO_THROW(backend.read_snapshot(20).verify());
}

TEST(LogBackendCompaction, RacingCommitterLosesNoCommittedSnapshot) {
  TempDir tmp;
  common::Executor executor(2);
  LogBackend::Options opts;
  opts.shards = 4;
  opts.compact_every = 6;  // background passes mid-storm
  opts.executor = &executor;
  LogBackend backend((tmp.path() / "store").string(), opts);
  backend.open();

  constexpr int kThreads = 4, kEach = 12;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int c = 0; c < kEach; ++c) {
        const auto id = static_cast<CkptId>(t * kEach + c + 1);
        backend.write_snapshot(sample_blob(id, 3000, 800));
        // Interleave reads with the compactor's relocations. The read may
        // find the record already dropped — every snapshot here is a Full,
        // so a racing pass supersedes older ones — but a record that is
        // still present must read back intact; any other io_error (torn
        // frame, CRC mismatch) is a genuine loss.
        try {
          backend.read_snapshot(id).verify();
        } catch (const io_error& e) {
          EXPECT_NE(std::string(e.what()).find("unknown snapshot id"),
                    std::string::npos)
              << e.what();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  backend.wait_for_compaction();
  (void)backend.compact_now();

  // Compaction may drop superseded records but must keep a restorable
  // newest; every record it kept must verify.
  const auto best = latest_restorable(backend);
  ASSERT_TRUE(best.has_value());
  for (const SnapshotMeta& m : backend.list())
    EXPECT_NO_THROW(backend.read_snapshot(m.id).verify());
  EXPECT_GE(backend.compaction_stats().passes, 1u);
}

TEST(CompactionPlan, FoldsFullPlusIncrementalsAndDropsOlder) {
  using compact::LiveRecord;
  const auto rec = [](std::uint64_t seq, CkptId id, CkptKind kind,
                      bool verified, CkptId link = 0) {
    LiveRecord r;
    r.seq = seq;
    r.meta.id = id;
    r.meta.kind = kind;
    r.meta.entry_link = link;
    r.verified = verified;
    return r;
  };
  const auto plan = compact::plan_compaction({
      rec(1, 10, CkptKind::Full, true),
      rec(2, 11, CkptKind::Incremental, true),
      rec(3, 12, CkptKind::Full, true),
      rec(4, 13, CkptKind::Incremental, true),
      rec(5, 14, CkptKind::Incremental, true),
  });
  EXPECT_EQ(plan.fold, (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_EQ(plan.drop, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_TRUE(plan.carry.empty());
}

TEST(CompactionPlan, ConservativeWhenDamagedOrMixed) {
  using compact::LiveRecord;
  const auto rec = [](std::uint64_t seq, CkptId id, CkptKind kind,
                      bool verified, CkptId link = 0) {
    LiveRecord r;
    r.seq = seq;
    r.meta.id = id;
    r.meta.kind = kind;
    r.meta.entry_link = link;
    r.verified = verified;
    return r;
  };
  // An unverified chain member: nothing folds, nothing restorable-looking
  // is dropped (the damaged chain disqualifies its Full as a base, so the
  // older verified Full is the protection point and survives).
  auto plan = compact::plan_compaction({
      rec(1, 10, CkptKind::Full, true),
      rec(2, 12, CkptKind::Full, true),
      rec(3, 13, CkptKind::Incremental, false),
  });
  EXPECT_TRUE(plan.fold.empty());
  EXPECT_TRUE(plan.drop.empty());
  EXPECT_EQ(plan.carry.size(), 3u);

  // Nothing verifies at all: carry everything, drop nothing.
  plan = compact::plan_compaction({
      rec(1, 10, CkptKind::Full, false),
      rec(2, 11, CkptKind::Incremental, false),
  });
  EXPECT_EQ(plan.carry.size(), 2u);
  EXPECT_TRUE(plan.drop.empty());

  // An Exit base keeps its (older) Entry, drops the rest.
  plan = compact::plan_compaction({
      rec(1, 10, CkptKind::Full, true),
      rec(2, 20, CkptKind::Entry, true),
      rec(3, 21, CkptKind::Exit, true, 20),
  });
  EXPECT_TRUE(plan.fold.empty());
  EXPECT_EQ(plan.drop, (std::vector<std::uint64_t>{1}));
  EXPECT_EQ(plan.carry, (std::vector<std::uint64_t>{2, 3}));
}

TEST(LogBackendUring, RoundTripsWhenKernelSupportsIt) {
  if (!UringQueue::supported())
    GTEST_SKIP() << "io_uring unavailable in this kernel/container";
  TempDir tmp;
  const std::string spec =
      "log:" + (tmp.path() / "store").string() + "?shards=2&uring=1";
  const auto backend = make_backend(spec);
  auto* log = dynamic_cast<LogBackend*>(backend.get());
  ASSERT_NE(log, nullptr);
  EXPECT_TRUE(log->uring_active());
  for (CkptId id = 1; id <= 4; ++id)
    backend->write_snapshot(sample_blob(id, 60000, 20000));
  for (CkptId id = 1; id <= 4; ++id)
    EXPECT_NO_THROW(backend->read_snapshot(id).verify());
  // The uring-written store reopens fine without uring.
  LogBackend plain((tmp.path() / "store").string(),
                   LogBackend::Options{.shards = 2});
  plain.open();
  EXPECT_EQ(plain.list().size(), 4u);
}

TEST(UringQueue, WritesLandAtTheirOffsets) {
  if (!UringQueue::supported())
    GTEST_SKIP() << "io_uring unavailable in this kernel/container";
  TempDir tmp;
  const fs::path file = tmp.path() / "uring.bin";
  const int fd = ::open(file.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  const auto a = pattern_bytes(3000, 7), b = pattern_bytes(5000, 8);
  {
    UringQueue queue(4);
    queue.submit_pwrite(fd, a.data(), a.size(), 0);
    queue.submit_pwrite(fd, b.data(), b.size(), a.size());
    queue.drain();
    EXPECT_EQ(queue.in_flight(), 0u);
  }
  ::close(fd);
  std::ifstream in(file, std::ios::binary);
  std::vector<char> back(a.size() + b.size());
  in.read(back.data(), static_cast<std::streamsize>(back.size()));
  ASSERT_EQ(static_cast<std::size_t>(in.gcount()), back.size());
  EXPECT_EQ(std::memcmp(back.data(), a.data(), a.size()), 0);
  EXPECT_EQ(std::memcmp(back.data() + a.size(), b.data(), b.size()), 0);
}

// --- calibrator -------------------------------------------------------------

TEST(Calibrator, FitsBandwidthWithinTwoXOfMeasured) {
  MemoryBackend backend;
  CalibrationOptions opts;
  opts.sizes = {1u << 20, 4u << 20, 16u << 20};
  opts.reps = 3;
  const Calibration cal = calibrate_backend(backend, opts);

  // The backend is left empty and the model is well-formed.
  EXPECT_TRUE(backend.list().empty());
  EXPECT_GT(cal.write_bandwidth, 0.0);
  ASSERT_EQ(cal.points.size(), 3u);
  EXPECT_EQ(cal.model.name, "measured:memory");

  // Fitted bandwidth within 2x of the raw throughput of the largest
  // measurement (the fit smooths latency out, so they differ but must
  // agree to a factor of two).
  const auto& big = cal.points.back();
  const double measured =
      static_cast<double>(big.bytes) / big.write_seconds;
  EXPECT_GT(cal.write_bandwidth, measured / 2.0);
  EXPECT_LT(cal.write_bandwidth, measured * 2.0);

  // And the model's write_time prediction is within 2x of the measurement.
  const double predicted = cal.model.write_time(
      static_cast<double>(big.bytes), 1);
  EXPECT_GT(predicted, big.write_seconds / 2.0);
  EXPECT_LT(predicted, big.write_seconds * 2.0);
}

TEST(Calibrator, WorksOnABackendWithExistingHistory) {
  // Calibration timestamps must start past the backend's history, and the
  // history must survive the calibration run.
  MemoryBackend backend;
  ImageFixture f(4096, 4096);
  {
    CkptWriter writer(backend);
    writer.take_full(f.image, 100.0);
  }
  CalibrationOptions opts;
  opts.sizes = {1u << 16};
  opts.reps = 1;
  EXPECT_NO_THROW((void)calibrate_backend(backend, opts));
  ASSERT_EQ(backend.list().size(), 1u);
  EXPECT_DOUBLE_EQ(backend.list()[0].when, 100.0);
}

// --- the --storage resolver --------------------------------------------------

TEST(StorageResolver, ResolvesAnalyticSchemes) {
  auto& resolver = core::StorageResolver::instance();
  const auto pfs = resolver.resolve("pfs:0.5");
  EXPECT_EQ(pfs.name, "remote-pfs");
  EXPECT_DOUBLE_EQ(pfs.aggregate_bandwidth, 0.5 * 1024 * 1024 * 1024);
  const auto buddy = resolver.resolve("buddy:2,0.25");
  EXPECT_EQ(buddy.name, "buddy");
  EXPECT_DOUBLE_EQ(buddy.latency, 0.25);
  EXPECT_THROW((void)resolver.resolve("warp-drive:1"),
               common::precondition_error);
}

TEST(StorageResolver, RejectsMalformedSpecs) {
  auto& resolver = core::StorageResolver::instance();
  EXPECT_THROW((void)resolver.resolve("pfs:abc"), common::precondition_error);
  EXPECT_THROW((void)resolver.resolve("pfs:1,0.5,junk"),
               common::precondition_error);
  EXPECT_THROW((void)resolver.resolve("pfs:1.5garbage"),
               common::precondition_error);
  EXPECT_THROW((void)make_backend("mmap:/tmp/x?mb=abc"),
               common::precondition_error);
  EXPECT_THROW((void)make_backend("mmap:/tmp/x?mb=4x"),
               common::precondition_error);
  EXPECT_THROW((void)make_backend("file:"), common::precondition_error);
}

TEST(StorageResolver, CalibratesMeasuredBackends) {
  TempDir tmp;
  auto& resolver = core::StorageResolver::instance();
  const auto model =
      resolver.resolve("file:" + (tmp.path() / "store").string());
  EXPECT_EQ(model.name, "measured:file");
  EXPECT_GT(model.node_bandwidth, 0.0);
  // A measured local device is per-node storage: constant write time per
  // node count — the Fig 10 scalable regime.
  const double t1 = model.write_time(1e6, 1);
  const double t2 = model.write_time(2e6, 2);
  EXPECT_NEAR(t1, t2, 1e-9);
}

// --- CheckpointStore parallel loops -----------------------------------------

TEST(CheckpointStoreParallel, BitwiseIdenticalAcrossWorkerCounts) {
  // Regions > 256 KiB so the copy/CRC loops actually chunk.
  struct Result {
    std::vector<std::byte> lib, rem;
    std::size_t bytes = 0;
  };
  std::vector<Result> results;
  for (const unsigned workers : {1u, 2u, 4u}) {
    ImageFixture f(1 << 20, 600000);
    CheckpointStore store;
    store.set_threads(workers);
    store.take_full(f.image, 1.0);
    f.lib[123] = std::byte{0x5A};
    f.image.mark_dirty(0);
    store.take_incremental(f.image, 2.0);
    std::fill(f.lib.begin(), f.lib.end(), std::byte{0});
    std::fill(f.rem.begin(), f.rem.end(), std::byte{0});
    const auto report = store.restore_latest(f.image);
    results.push_back({f.lib, f.rem, report.bytes_restored});
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].lib, results[0].lib);
    EXPECT_EQ(results[i].rem, results[0].rem);
    EXPECT_EQ(results[i].bytes, results[0].bytes);
  }
}

TEST(CheckpointStoreParallel, ChunkedCrcMatchesOneShot) {
  // The fold the store and the writer both use (common::Crc32Chunks over
  // independently computed per-chunk CRCs) must equal the plain crc32 of
  // the whole buffer, for any chunk size.
  const auto buf = pattern_bytes((1 << 20) + 12345, 42);
  const std::uint32_t whole = common::crc32(std::span(buf));
  for (const std::size_t chunk : {64u * 1024u, 256u * 1024u, 1u << 20}) {
    common::Crc32Chunks fold;
    for (std::size_t lo = 0; lo < buf.size(); lo += chunk) {
      const auto piece =
          std::span(buf).subspan(lo, std::min(chunk, buf.size() - lo));
      fold.add(common::crc32(piece), piece.size());
    }
    EXPECT_EQ(fold.value(), whole) << "chunk=" << chunk;
  }
}

}  // namespace

// Tests for the distributed fault-injection runtime: mailbox framing
// (seq/CRC protocol), campaign enumeration and deterministic sharding, the
// FaultingBackend write decorator, and the forked Launcher end to end —
// clean runs vs the serial AbftLu reference, SIGKILL + respawn + restore
// replay determinism, bit-flip reconstruction, torn-checkpoint fallback,
// and a mini campaign in which every cell recovers.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <set>
#include <thread>
#include <vector>

#include "abft/abft_lu.hpp"
#include "abft/checksum.hpp"
#include "abft/grid.hpp"
#include "abft/matrix.hpp"
#include "ckpt/io/backend.hpp"
#include "ckpt/io/faulting.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "dist/campaign.hpp"
#include "dist/channel.hpp"
#include "dist/fault.hpp"
#include "dist/launcher.hpp"

namespace {

using namespace abftc;
using namespace abftc::dist;

// --- mailbox framing --------------------------------------------------------

TEST(Mailbox, RoundTripsFrames) {
  Mailbox mb;
  reset(mb);
  std::uint64_t last_seen = 0;

  EXPECT_FALSE(try_recv(mb, last_seen).has_value());  // nothing posted yet

  post(mb, MsgType::Panel, 3, 7);
  const auto msg = try_recv(mb, last_seen);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::Panel);
  EXPECT_EQ(msg->args[0], 3u);
  EXPECT_EQ(msg->args[1], 7u);
  EXPECT_EQ(last_seen, 1u);
  EXPECT_FALSE(try_recv(mb, last_seen).has_value());  // consumed exactly once

  post(mb, MsgType::Done, 3);
  ASSERT_TRUE(try_recv(mb, last_seen).has_value());
  EXPECT_EQ(last_seen, 2u);
}

TEST(Mailbox, RejectsCorruptFrames) {
  Mailbox mb;
  reset(mb);
  std::uint64_t last_seen = 0;
  post(mb, MsgType::Update, 5);
  mb.args[0] = 6;  // payload corrupted after the CRC was computed
  EXPECT_THROW((void)try_recv(mb, last_seen), dist_error);
}

TEST(Mailbox, BlockingRecvTimesOut) {
  Mailbox mb;
  reset(mb);
  std::uint64_t last_seen = 0;
  EXPECT_FALSE(recv(mb, last_seen, 0.01).has_value());
}

TEST(Mailbox, DelayedPostIsReceivedWellBeforeDeadline) {
  Mailbox mb;
  reset(mb);
  std::uint64_t last_seen = 0;
  std::thread poster([&mb] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    post(mb, MsgType::Done, 9);
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto msg = recv(mb, last_seen, 5.0);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  poster.join();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MsgType::Done);
  EXPECT_EQ(msg->args[0], 9u);
  // The poll backoff caps at 1 ms, so a frame posted ~20 ms in is noticed
  // within a few naps — nowhere near the 5 s deadline.
  EXPECT_LT(waited, 1.0);
}

// --- campaign enumeration ---------------------------------------------------

TEST(CampaignSpec, ParsesAndRoundTrips) {
  const auto spec = CampaignSpec::parse("steps:2-5,ranks:0-3,kinds:kill+torn");
  EXPECT_EQ(spec.step_lo, 2u);
  EXPECT_EQ(spec.step_hi, 5u);
  EXPECT_EQ(spec.rank_lo, 0u);
  EXPECT_EQ(spec.rank_hi, 3u);
  ASSERT_EQ(spec.kinds.size(), 2u);
  EXPECT_EQ(spec.kinds[0], FaultKind::Kill);
  EXPECT_EQ(spec.kinds[1], FaultKind::Torn);
  EXPECT_EQ(spec.cell_count(), 4u * 4u * 2u);

  const auto again = CampaignSpec::parse(spec.to_spec());
  EXPECT_EQ(again.to_spec(), spec.to_spec());

  // Single-value ranges and reordered keys are accepted.
  const auto single = CampaignSpec::parse("kinds:flip,steps:3,ranks:1");
  EXPECT_EQ(single.cell_count(), 1u);
  EXPECT_EQ(single.cell(0).step, 3u);
  EXPECT_EQ(single.cell(0).rank, 1u);
  EXPECT_EQ(single.cell(0).kind, FaultKind::Flip);
}

TEST(CampaignSpec, RejectsMalformedSpecs) {
  EXPECT_THROW((void)CampaignSpec::parse(""), common::precondition_error);
  EXPECT_THROW((void)CampaignSpec::parse("steps:0-1,ranks:0"),
               common::precondition_error);  // kinds missing
  EXPECT_THROW((void)CampaignSpec::parse("steps:5-2,ranks:0,kinds:kill"),
               common::precondition_error);  // inverted range
  EXPECT_THROW((void)CampaignSpec::parse("steps:0,ranks:0,kinds:melt"),
               common::precondition_error);  // unknown kind
}

TEST(CampaignSpec, EnumeratesRowMajorAndShardsPartition) {
  const auto spec =
      CampaignSpec::parse("steps:1-3,ranks:0-1,kinds:kill+flip+torn");
  ASSERT_EQ(spec.cell_count(), 18u);

  // Row-major: step-major, then rank, then kind.
  EXPECT_EQ(spec.cell(0).step, 1u);
  EXPECT_EQ(spec.cell(0).rank, 0u);
  EXPECT_EQ(spec.cell(0).kind, FaultKind::Kill);
  EXPECT_EQ(spec.cell(2).kind, FaultKind::Torn);
  EXPECT_EQ(spec.cell(3).rank, 1u);
  EXPECT_EQ(spec.cell(6).step, 2u);
  for (std::size_t i = 0; i < spec.cell_count(); ++i)
    EXPECT_EQ(spec.cell(i).index, i);

  // Shards partition [0, cell_count()): every index exactly once.
  std::set<std::size_t> seen;
  for (std::size_t shard = 0; shard < 4; ++shard)
    for (const std::size_t i : spec.shard_indices(shard, 4)) {
      EXPECT_EQ(i % 4, shard);
      EXPECT_TRUE(seen.insert(i).second) << "index " << i << " duplicated";
    }
  EXPECT_EQ(seen.size(), spec.cell_count());
}

TEST(CampaignSpec, ParsesHangAndFlip2AndRoundTrips) {
  const auto spec = CampaignSpec::parse("steps:0-1,ranks:0,kinds:hang+flip2");
  ASSERT_EQ(spec.kinds.size(), 2u);
  EXPECT_EQ(spec.kinds[0], FaultKind::Hang);
  EXPECT_EQ(spec.kinds[1], FaultKind::Flip2);
  EXPECT_EQ(CampaignSpec::parse(spec.to_spec()).to_spec(), spec.to_spec());
  EXPECT_EQ(to_string(FaultKind::Hang), "hang");
  EXPECT_EQ(to_string(FaultKind::Flip2), "flip2");
}

TEST(CampaignSpec, CellSeedsAreDeterministicAndDistinct) {
  EXPECT_EQ(cell_seed(42, 7), cell_seed(42, 7));
  EXPECT_NE(cell_seed(42, 7), cell_seed(42, 8));
  EXPECT_NE(cell_seed(42, 7), cell_seed(43, 7));
}

// --- FaultingBackend --------------------------------------------------------

ckpt::io::SnapshotBlob tiny_blob(ckpt::CkptId id) {
  ckpt::io::SnapshotBlob blob;
  blob.meta.id = id;
  blob.meta.kind = ckpt::CkptKind::Full;
  blob.meta.when = static_cast<double>(id);
  ckpt::io::RegionBlob r;
  r.region = 0;
  r.payload.assign(256, std::byte{0x5A});
  r.crc = common::crc32(std::span(r.payload));
  blob.meta.bytes = r.payload.size();
  blob.regions.push_back(std::move(r));
  return blob;
}

TEST(FaultingBackend, TornPayloadCommitsCorruptBytes) {
  const auto inner = ckpt::io::make_backend("memory");
  ckpt::io::FaultingBackend faulting(
      *inner, {{1, ckpt::io::WriteFault::TornPayload}});

  faulting.write_snapshot(tiny_blob(1));  // write 0: clean
  faulting.write_snapshot(tiny_blob(2));  // write 1: torn
  EXPECT_EQ(faulting.writes_started(), 2u);
  EXPECT_EQ(faulting.faults_fired(), 1u);

  // The torn snapshot committed — it is visible — but its payload fails
  // verification, which is exactly what the restore path must survive.
  ASSERT_EQ(faulting.list().size(), 2u);
  EXPECT_NO_THROW(faulting.read_snapshot(1).verify());
  EXPECT_THROW(faulting.read_snapshot(2).verify(), ckpt::io::io_error);

  // latest_restorable walks past the torn newest to the older clean one.
  const auto best = ckpt::io::latest_restorable(faulting);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->meta.id, 1u);
}

TEST(FaultingBackend, FailedCommitLeavesNoSnapshot) {
  const auto inner = ckpt::io::make_backend("memory");
  ckpt::io::FaultingBackend faulting(
      *inner, {{0, ckpt::io::WriteFault::FailedCommit}});

  EXPECT_THROW(faulting.write_snapshot(tiny_blob(1)), ckpt::io::io_error);
  EXPECT_TRUE(faulting.list().empty());
  EXPECT_TRUE(inner->list().empty());

  // The backend keeps working for later, unfaulted writes.
  EXPECT_NO_THROW(faulting.write_snapshot(tiny_blob(2)));
  EXPECT_EQ(faulting.list().size(), 1u);
}

// --- blind localization -----------------------------------------------------

// Hand-built states for locate_corruption: a random matrix with nothing
// frozen, so the active pair is the row-group (weighted) checksums of A and
// the frozen pair is all zeros.

struct LocalizationFixture {
  static constexpr std::size_t n = 48, nb = 8, group = 3;  // 6 block rows
  abft::Matrix a, active, wactive, frozen, wfrozen;

  LocalizationFixture() {
    common::Rng rng(123);
    a = abft::Matrix::diag_dominant(n, rng);
    active = abft::row_group_checksums(a, nb, group);
    wactive = abft::row_group_weighted_checksums(a, nb, group);
    frozen = abft::Matrix::zeros(active.rows(), n);
    wfrozen = abft::Matrix::zeros(active.rows(), n);
  }

  [[nodiscard]] Localization locate() const {
    return locate_corruption(a.view(), active.view(), frozen.view(),
                             wactive.view(), wfrozen.view(), nb, group, 0);
  }
};

TEST(LocateCorruption, CleanStateNamesNothing) {
  const LocalizationFixture fx;
  const Localization loc = fx.locate();
  EXPECT_FALSE(loc.ambiguous);
  EXPECT_TRUE(loc.sites.empty());
}

TEST(LocateCorruption, NamesASingleCorruptedElementExactly) {
  LocalizationFixture fx;
  // Block row 4 is position 1 (0-based) of group 1, so the weighted
  // residual is 2× the unweighted one in that column.
  fx.a(4 * fx.nb + 3, 17) += 0.5;
  const Localization loc = fx.locate();
  EXPECT_FALSE(loc.ambiguous);
  ASSERT_EQ(loc.sites.size(), 1u);
  EXPECT_EQ(loc.sites[0], (FaultSite{4, 17 / fx.nb, 4 * fx.nb + 3, 17}));
}

TEST(LocateCorruption, TwoBlocksYieldTwoSitesForTheLadderToRefuse) {
  LocalizationFixture fx;
  // Damage in two different blocks: each residual column still resolves
  // cleanly, but the ladder's one-block test must reject reconstruction.
  fx.a(0 * fx.nb + 2, 5) += 0.25;
  fx.a(4 * fx.nb + 6, 30) += 0.125;
  const Localization loc = fx.locate();
  EXPECT_FALSE(loc.ambiguous);
  ASSERT_EQ(loc.sites.size(), 2u);
  EXPECT_EQ(loc.sites[0], (FaultSite{0, 5 / fx.nb, 0 * fx.nb + 2, 5}));
  EXPECT_EQ(loc.sites[1], (FaultSite{4, 30 / fx.nb, 4 * fx.nb + 6, 30}));
}

TEST(LocateCorruption, NonIntegralRatioIsAmbiguous) {
  LocalizationFixture fx;
  // Two deltas in one residual column (same group, same row offset, same
  // column): r2/r1 = (1·0.5 + 3·0.3)/(0.5 + 0.3) = 1.75 — no single site.
  fx.a(3 * fx.nb + 3, 17) += 0.5;
  fx.a(5 * fx.nb + 3, 17) += 0.3;
  const Localization loc = fx.locate();
  EXPECT_TRUE(loc.ambiguous);
  EXPECT_TRUE(loc.sites.empty());
}

TEST(LocateCorruption, CancellingDeltasLeaveWeightedOnlyResidual) {
  LocalizationFixture fx;
  // The sum relation cancels exactly; only the weighted one fires.
  fx.a(3 * fx.nb + 1, 9) += 0.5;
  fx.a(4 * fx.nb + 1, 9) -= 0.5;
  const Localization loc = fx.locate();
  EXPECT_TRUE(loc.ambiguous);
  EXPECT_TRUE(loc.sites.empty());
}

// --- the forked runtime -----------------------------------------------------

DistConfig small_config() {
  DistConfig cfg;
  cfg.n = 96;
  cfg.nb = 16;
  cfg.ranks = 2;
  cfg.group = 3;
  cfg.ckpt_every = 2;
  cfg.seed = 0x5EEDull;
  return cfg;
}

TEST(DistLauncher, CleanRunMatchesSerialAbftLu) {
  const DistConfig cfg = small_config();
  const auto backend = ckpt::io::make_backend("memory");
  Launcher launcher(cfg, *backend);
  const RunReport report = launcher.run();

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.restores, 0u);
  EXPECT_EQ(report.respawns, 0u);
  EXPECT_EQ(report.reconstructions, 0u);
  EXPECT_LT(report.residual, 1e-8);
  EXPECT_EQ(report.step_seconds.size(), launcher.block_steps());
  EXPECT_EQ(report.checkpoints,
            (launcher.block_steps() + cfg.ckpt_every - 1) / cfg.ckpt_every);

  // The panel-cyclic two-phase schedule computes the same factorization the
  // serial dual-accumulator AbftLu does.
  common::Rng rng(cfg.seed);
  abft::AbftLu serial(abft::Matrix::diag_dominant(cfg.n, rng), cfg.nb,
                      abft::ProcessGrid{cfg.group, 1});
  serial.factor();
  EXPECT_LT(abft::relative_error(launcher.lu(), serial.lu()), 1e-12);
}

TEST(DistLauncher, RepeatRunsAreBitwiseIdentical) {
  const DistConfig cfg = small_config();
  const auto b1 = ckpt::io::make_backend("memory");
  const auto b2 = ckpt::io::make_backend("memory");
  Launcher first(cfg, *b1), second(cfg, *b2);
  (void)first.run();
  (void)second.run();
  EXPECT_EQ(abft::max_abs_diff(first.lu(), second.lu()), 0.0);
}

TEST(DistLauncher, RunsOnceOnly) {
  const auto backend = ckpt::io::make_backend("memory");
  Launcher launcher(small_config(), *backend);
  (void)launcher.run();
  EXPECT_THROW((void)launcher.run(), common::precondition_error);
}

TEST(DistLauncher, KillRecoversByRestoreAndReplay) {
  const DistConfig cfg = small_config();
  const auto clean_backend = ckpt::io::make_backend("memory");
  Launcher clean(cfg, *clean_backend);
  (void)clean.run();

  const auto backend = ckpt::io::make_backend("memory");
  Launcher injected(cfg, *backend);
  const RunReport report = injected.run({{FaultKind::Kill, 3, 1}});

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.restores, 1u);
  EXPECT_EQ(report.respawns, 1u);
  EXPECT_EQ(report.reconstructions, 0u);
  ASSERT_EQ(report.restored_to_steps.size(), 1u);
  // Step 3 with ckpt_every=2: the covering boundary is step 2.
  EXPECT_EQ(report.restored_to_steps[0], 2u);
  EXPECT_LT(report.residual, 1e-8);

  // Deterministic replay: the recovered run is bitwise the uninjected one.
  EXPECT_EQ(abft::max_abs_diff(injected.lu(), clean.lu()), 0.0);
}

TEST(DistLauncher, FlipRecoversByChecksumReconstruction) {
  const DistConfig cfg = small_config();
  const auto clean_backend = ckpt::io::make_backend("memory");
  Launcher clean(cfg, *clean_backend);
  (void)clean.run();

  const auto backend = ckpt::io::make_backend("memory");
  Launcher injected(cfg, *backend);
  const RunReport report = injected.run({{FaultKind::Flip, 2, 1}});

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.reconstructions, 1u);  // no process died
  EXPECT_EQ(report.restores, 0u);
  EXPECT_EQ(report.respawns, 0u);
  EXPECT_LT(report.residual, 1e-8);
  // Reconstruction is accumulator algebra, not bit replay: the factors agree
  // to rounding, not bitwise.
  EXPECT_LT(abft::relative_error(injected.lu(), clean.lu()), 1e-8);
}

TEST(DistLauncher, WeightedAccumulatorsMatchSerialReference) {
  const DistConfig cfg = small_config();
  const auto backend = ckpt::io::make_backend("memory");
  Launcher launcher(cfg, *backend);
  (void)launcher.run();

  common::Rng rng(cfg.seed);
  abft::AbftLu serial(abft::Matrix::diag_dominant(cfg.n, rng), cfg.nb,
                      abft::ProcessGrid{cfg.group, 1});
  serial.factor();

  // The weighted pair rides through the identical per-element operations as
  // the sum pair, so the dist copies track the serial reference to rounding
  // (after the full factorization everything is frozen and the active
  // accumulators hold only drained noise).
  EXPECT_LT(abft::max_abs_diff(launcher.weighted_frozen_cs(),
                               serial.weighted_frozen_cs()),
            1e-8);
  EXPECT_LT(abft::max_abs_diff(launcher.weighted_active_cs(),
                               serial.weighted_active_cs()),
            1e-8);
}

TEST(DistLauncher, WeightedAccumulatorsAreBitwiseAcrossRankCounts) {
  const DistConfig cfg = small_config();
  DistConfig cfg3 = cfg;
  cfg3.ranks = 3;
  const auto b1 = ckpt::io::make_backend("memory");
  const auto b2 = ckpt::io::make_backend("memory");
  Launcher two(cfg, *b1), three(cfg3, *b2);
  (void)two.run();
  (void)three.run();
  // Column ownership moves work between ranks but never changes any
  // per-element expression, so the factors AND both weighted accumulators
  // are bitwise identical.
  EXPECT_EQ(abft::max_abs_diff(two.lu(), three.lu()), 0.0);
  EXPECT_EQ(abft::max_abs_diff(two.weighted_active_cs(),
                               three.weighted_active_cs()),
            0.0);
  EXPECT_EQ(abft::max_abs_diff(two.weighted_frozen_cs(),
                               three.weighted_frozen_cs()),
            0.0);
}

TEST(DistLauncher, BlindFlipIsLocatedAndReconstructed) {
  DistConfig cfg = small_config();
  cfg.blind = true;  // verify at every boundary; no injection-timing hints
  const auto clean_backend = ckpt::io::make_backend("memory");
  Launcher clean(cfg, *clean_backend);
  (void)clean.run();

  const auto backend = ckpt::io::make_backend("memory");
  Launcher injected(cfg, *backend);
  const RunReport report = injected.run({{FaultKind::Flip, 2, 1}});

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.reconstructions, 1u);
  EXPECT_EQ(report.restores, 0u);
  EXPECT_EQ(report.escalations, 0u);
  EXPECT_GE(report.locates, 1u);
  EXPECT_GT(report.locate_seconds, 0.0);
  EXPECT_GT(report.check_seconds, 0.0);
  // Localization derived the injector's exact site from the residual ratio.
  ASSERT_EQ(report.injected.size(), 1u);
  ASSERT_EQ(report.located.size(), 1u);
  EXPECT_EQ(report.located[0], report.injected[0]);
  EXPECT_LT(report.residual, 1e-8);
  EXPECT_LT(abft::relative_error(injected.lu(), clean.lu()), 1e-8);
}

TEST(DistLauncher, HangIsKilledAtTheDeadlineAndRecovered) {
  DistConfig cfg = small_config();
  cfg.step_timeout_s = 0.5;  // the hang deadline; a real step is ~ms
  const auto clean_backend = ckpt::io::make_backend("memory");
  Launcher clean(cfg, *clean_backend);
  (void)clean.run();

  const auto backend = ckpt::io::make_backend("memory");
  Launcher injected(cfg, *backend);
  const RunReport report = injected.run({{FaultKind::Hang, 3, 1}});

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.hangs, 1u);
  EXPECT_GT(report.hang_wait_seconds, 0.2);
  EXPECT_EQ(report.respawns, 1u);
  EXPECT_EQ(report.restores, 1u);
  EXPECT_EQ(report.reconstructions, 0u);
  ASSERT_EQ(report.restored_to_steps.size(), 1u);
  EXPECT_EQ(report.restored_to_steps[0], 2u);  // covering boundary of step 3
  EXPECT_LT(report.residual, 1e-8);
  // Post-SIGKILL recovery is the death path: deterministic bitwise replay.
  EXPECT_EQ(abft::max_abs_diff(injected.lu(), clean.lu()), 0.0);
}

TEST(DistLauncher, Flip2EscalatesPastReconstruction) {
  const DistConfig cfg = small_config();
  const auto clean_backend = ckpt::io::make_backend("memory");
  Launcher clean(cfg, *clean_backend);
  (void)clean.run();

  const auto backend = ckpt::io::make_backend("memory");
  Launcher injected(cfg, *backend);
  const RunReport report = injected.run({{FaultKind::Flip2, 2, 1}});

  EXPECT_TRUE(report.completed);
  // Two corrupted block rows in one group: localization names both sites,
  // the one-block test fails, and the ladder MUST climb to a restore —
  // single-block reconstruction provably cannot repair this.
  EXPECT_EQ(report.reconstructions, 0u);
  EXPECT_EQ(report.escalations, 1u);
  EXPECT_EQ(report.restores, 1u);
  EXPECT_EQ(report.respawns, 0u);  // nobody died; the arena was re-seeded
  ASSERT_EQ(report.injected.size(), 2u);
  EXPECT_NE(report.injected[0].block_row, report.injected[1].block_row);
  EXPECT_EQ(report.injected[0].block_col, report.injected[1].block_col);
  // Both sites were still localized exactly before the ladder escalated.
  auto by_site = [](const FaultSite& a, const FaultSite& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  };
  std::vector<FaultSite> want = report.injected, got = report.located;
  std::sort(want.begin(), want.end(), by_site);
  std::sort(got.begin(), got.end(), by_site);
  EXPECT_EQ(got, want);
  EXPECT_LT(report.residual, 1e-8);
  EXPECT_EQ(abft::max_abs_diff(injected.lu(), clean.lu()), 0.0);
}

TEST(DistLauncher, TornCheckpointFallsBackToOlderSnapshot) {
  const DistConfig cfg = small_config();
  const auto clean_backend = ckpt::io::make_backend("memory");
  Launcher clean(cfg, *clean_backend);
  (void)clean.run();

  // Tear the write covering step 4 (boundary 4 = write index 2), then kill
  // rank 0 at step 4: the restore must skip the torn snapshot and fall back
  // to boundary 2, replaying two extra steps.
  const auto inner = ckpt::io::make_backend("memory");
  ckpt::io::FaultingBackend faulting(
      *inner, {{4 / cfg.ckpt_every, ckpt::io::WriteFault::TornPayload}});
  Launcher injected(cfg, faulting);
  const RunReport report = injected.run({{FaultKind::Torn, 4, 0}});

  EXPECT_TRUE(report.completed);
  EXPECT_EQ(faulting.faults_fired(), 1u);
  EXPECT_EQ(report.restores, 1u);
  EXPECT_EQ(report.respawns, 1u);
  ASSERT_EQ(report.restored_to_steps.size(), 1u);
  EXPECT_EQ(report.restored_to_steps[0], 2u);  // fell back past boundary 4
  EXPECT_LT(report.residual, 1e-8);
  EXPECT_EQ(abft::max_abs_diff(injected.lu(), clean.lu()), 0.0);
}

TEST(DistCampaign, MiniCampaignRecoversEveryCell) {
  DistConfig cfg = small_config();
  cfg.n = 48;  // 3 block steps: 3 × 2 ranks × 3 kinds = 18 cells
  const auto spec =
      CampaignSpec::parse("steps:0-2,ranks:0-1,kinds:kill+flip+torn");

  const CampaignReport report = run_campaign(cfg, spec);
  ASSERT_EQ(report.cells.size(), spec.cell_count());

  std::set<std::size_t> indices;
  for (const CellOutcome& c : report.cells) {
    EXPECT_TRUE(c.recovered) << "cell " << c.cell.index << " ("
                             << to_string(c.cell.kind) << " step "
                             << c.cell.step << " rank " << c.cell.rank << ")";
    EXPECT_TRUE(indices.insert(c.cell.index).second);
    EXPECT_GT(c.measured_seconds, 0.0);
    EXPECT_GT(c.predicted_seconds, 0.0);
  }
  EXPECT_EQ(indices.size(), spec.cell_count());
  EXPECT_EQ(report.unrecovered, 0u);
  EXPECT_GT(report.calib.t_clean, 0.0);
  EXPECT_EQ(report.calib.step_seconds.size(), cfg.n / cfg.nb);
}

TEST(DistCampaign, BlindMiniCampaignLocalizesAndEscalatesEveryCell) {
  DistConfig cfg = small_config();
  cfg.n = 48;  // 3 block steps: 3 × 2 ranks × 3 kinds = 18 cells
  const auto spec =
      CampaignSpec::parse("steps:0-2,ranks:0-1,kinds:flip+hang+flip2");
  CampaignOptions options;
  options.blind = true;

  const CampaignReport report = run_campaign(cfg, spec, options);
  ASSERT_EQ(report.cells.size(), spec.cell_count());
  EXPECT_EQ(report.unrecovered, 0u);
  EXPECT_GT(report.calib.locate_s, 0.0);
  EXPECT_GE(report.calib.hang_timeout_s, 0.25);

  for (const CellOutcome& c : report.cells) {
    EXPECT_TRUE(c.recovered) << "cell " << c.cell.index << " ("
                             << to_string(c.cell.kind) << " step "
                             << c.cell.step << " rank " << c.cell.rank << ")";
    // No cell ever saw its injection coordinates; a derived localization
    // that disagreed with the injector's ground truth would show up here.
    EXPECT_TRUE(c.site_match) << "cell " << c.cell.index;
    switch (c.cell.kind) {
      case FaultKind::Flip:
        EXPECT_EQ(c.reconstructions, 1u);
        EXPECT_EQ(c.escalations, 0u);
        EXPECT_GT(c.locate_seconds, 0.0);
        EXPECT_EQ(c.injected.size(), 1u);
        break;
      case FaultKind::Flip2:
        EXPECT_EQ(c.reconstructions, 0u);
        EXPECT_EQ(c.escalations, 1u);
        EXPECT_GE(c.restores, 1u);
        EXPECT_EQ(c.injected.size(), 2u);
        break;
      case FaultKind::Hang:
        EXPECT_EQ(c.hangs, 1u);
        EXPECT_GT(c.hang_wait_seconds, 0.0);
        EXPECT_GE(c.respawns, 1u);
        break;
      default:
        FAIL() << "unexpected kind in this campaign";
    }
  }
}

TEST(DistCampaign, LogStorageRecoversEveryCellWithCompaction) {
  DistConfig cfg = small_config();
  cfg.n = 48;
  const auto spec =
      CampaignSpec::parse("steps:0-2,ranks:0-1,kinds:kill+torn");

  // Durable sharded-log store with background compaction racing the
  // campaign's checkpoint traffic; storage_for splices ".cellN" before the
  // '?' so cells never share a directory.
  const char* env = std::getenv("TMPDIR");
  const std::filesystem::path base =
      (env != nullptr && *env != '\0') ? std::filesystem::path(env)
                                       : std::filesystem::temp_directory_path();
  const std::filesystem::path store = base / "abftc_dist_log_campaign";
  std::filesystem::remove_all(store);
  CampaignOptions options;
  options.storage = "log:" + store.string() + "?shards=2&compact=4";

  const CampaignReport report = run_campaign(cfg, spec, options);
  ASSERT_EQ(report.cells.size(), spec.cell_count());
  for (const CellOutcome& c : report.cells)
    EXPECT_TRUE(c.recovered) << "cell " << c.cell.index << " ("
                             << to_string(c.cell.kind) << " step "
                             << c.cell.step << " rank " << c.cell.rank << ")";
  EXPECT_EQ(report.unrecovered, 0u);
  std::filesystem::remove_all(store);
}

TEST(DistCampaign, ShardsCoverTheCampaignExactlyOnce) {
  DistConfig cfg = small_config();
  cfg.n = 48;
  const auto spec = CampaignSpec::parse("steps:0-2,ranks:0-1,kinds:kill");

  std::set<std::size_t> indices;
  for (std::size_t shard = 0; shard < 2; ++shard) {
    CampaignOptions options;
    options.shard = shard;
    options.nshards = 2;
    const CampaignReport report = run_campaign(cfg, spec, options);
    EXPECT_EQ(report.unrecovered, 0u);
    for (const CellOutcome& c : report.cells)
      EXPECT_TRUE(indices.insert(c.cell.index).second);
  }
  EXPECT_EQ(indices.size(), spec.cell_count());
}

}  // namespace

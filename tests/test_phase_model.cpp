// Tests for the Section IV phase primitives: equations (1)-(11) are checked
// against hand-computed values, limits and the exact numeric optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/time_units.hpp"
#include "core/phase_model.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;
using common::hours;
using common::minutes;

TEST(PeriodicPhase, MatchesEquationTen) {
  // T_ff = W/(P−C)·P, t_lost = D+R+P/2, T_final = T_ff/(1−t_lost/µ).
  const double work = 100000, period = 2000, c = 300, r = 400, d = 60,
               mu = 20000;
  const auto out = periodic_phase(work, period, c, r, d, mu);
  const double t_ff = work / (period - c) * period;
  const double t_lost = d + r + period / 2;
  EXPECT_DOUBLE_EQ(out.t_ff, t_ff);
  EXPECT_DOUBLE_EQ(out.t_lost, t_lost);
  EXPECT_DOUBLE_EQ(out.t_final, t_ff / (1.0 - t_lost / mu));
  EXPECT_NEAR(out.waste(), 1.0 - work / out.t_final, 1e-15);
  EXPECT_FALSE(out.diverged);
}

TEST(PeriodicPhase, NoFailureLimit) {
  // µ → ∞: only the checkpoint overhead remains: waste → C/P.
  const auto out = periodic_phase(1e6, 1000, 100, 100, 10, 1e18);
  EXPECT_NEAR(out.waste(), 100.0 / 1000.0, 1e-9);
}

TEST(PeriodicPhase, DivergesWhenLossExceedsMtbf) {
  const auto out = periodic_phase(1000, 500, 100, 400, 100, 700);
  EXPECT_TRUE(out.diverged);
  EXPECT_EQ(out.waste(), 1.0);
}

TEST(PeriodicPhase, RejectsPeriodBelowCheckpoint) {
  EXPECT_THROW(periodic_phase(100, 50, 60, 0, 0, 1000),
               common::precondition_error);
}

TEST(SingleSegmentPhase, MatchesEquationNine) {
  const double work = 500, ckpt = 120, r = 600, d = 60, mu = 7200;
  const auto out = single_segment_phase(work, ckpt, r, d, mu);
  const double t_ff = work + ckpt;
  const double t_lost = d + r + t_ff / 2;
  EXPECT_DOUBLE_EQ(out.t_ff, t_ff);
  EXPECT_DOUBLE_EQ(out.t_final, t_ff / (1.0 - t_lost / mu));
}

TEST(SingleSegmentPhase, ZeroWorkStillPaysCheckpoint) {
  const auto out = single_segment_phase(0.0, 120, 600, 60, 1e9);
  EXPECT_DOUBLE_EQ(out.t_ff, 120.0);
}

TEST(AbftPhase, MatchesEquationsTwoAndEight) {
  const double tl = 10000, phi = 1.03, cl = 480, rl = 120, recons = 2, d = 60,
               mu = 7200;
  const auto out = abft_phase(tl, phi, cl, rl, recons, d, mu);
  const double t_ff = phi * tl + cl;
  const double t_lost = d + rl + recons;
  EXPECT_DOUBLE_EQ(out.t_ff, t_ff);
  EXPECT_DOUBLE_EQ(out.t_lost, t_lost);
  EXPECT_DOUBLE_EQ(out.t_final, t_ff / (1.0 - t_lost / mu));
}

TEST(AbftPhase, LostTimeIndependentOfPhaseLength) {
  // ABFT loses no work: t_lost must not change with T_L.
  const auto small = abft_phase(10, 1.03, 0, 120, 2, 60, 7200);
  const auto large = abft_phase(1e7, 1.03, 0, 120, 2, 60, 7200);
  EXPECT_DOUBLE_EQ(small.t_lost, large.t_lost);
}

TEST(AbftPhase, WasteTendsToPhiOverheadAtLargeMtbf) {
  const auto out = abft_phase(1e6, 1.03, 0.0, 120, 2, 60, 1e18);
  EXPECT_NEAR(out.waste(), 1.0 - 1.0 / 1.03, 1e-9);
}

TEST(OptimalPeriod, FirstOrderMatchesEquationEleven) {
  const double c = 600, mu = 7200, d = 60, r = 600;
  const auto p = optimal_period_first_order(c, mu, d, r);
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, std::sqrt(2.0 * c * (mu - d - r)));
}

TEST(OptimalPeriod, NoPeriodWhenMtbfTooSmall) {
  EXPECT_FALSE(optimal_period_first_order(600, 500, 60, 600).has_value());
  EXPECT_FALSE(optimal_period_exact(600, 500, 60, 600).has_value());
}

TEST(OptimalPeriod, ClampsAboveCheckpointCost) {
  // √(2C(µ−D−R)) < C when µ−D−R < C/2.
  const auto p = optimal_period_first_order(1000, 1400, 0, 1000);
  ASSERT_TRUE(p.has_value());
  EXPECT_GT(*p, 1000.0);
}

TEST(OptimalPeriod, ExactIsNoWorseThanFirstOrder) {
  for (const double mu : {hours(1), hours(2), hours(12), hours(100)}) {
    const double c = minutes(10), r = minutes(10), d = minutes(1);
    const auto p1 = optimal_period_first_order(c, mu, d, r);
    const auto p2 = optimal_period_exact(c, mu, d, r);
    ASSERT_TRUE(p1 && p2);
    const auto w1 = periodic_phase(1e6, *p1, c, r, d, mu);
    const auto w2 = periodic_phase(1e6, *p2, c, r, d, mu);
    EXPECT_LE(w2.t_final, w1.t_final * (1.0 + 1e-9)) << "mu = " << mu;
  }
}

TEST(OptimalPeriod, ExactAgreesWithFirstOrderAtLargeMtbf) {
  const double c = 600, r = 600, d = 60, mu = 3.6e6;  // µ = 1000 h
  const auto p1 = optimal_period_first_order(c, mu, d, r);
  const auto p2 = optimal_period_exact(c, mu, d, r);
  ASSERT_TRUE(p1 && p2);
  EXPECT_NEAR(*p2 / *p1, 1.0, 0.02);  // first-order is asymptotically exact
}

TEST(OptimalPeriod, ExactBeatsNeighbouringPeriods) {
  const double c = 600, r = 600, d = 60, mu = 7200;
  const auto p = optimal_period_exact(c, mu, d, r);
  ASSERT_TRUE(p.has_value());
  const auto at = [&](double period) {
    return periodic_phase(1e6, period, c, r, d, mu).t_final;
  };
  EXPECT_LE(at(*p), at(*p * 0.9));
  EXPECT_LE(at(*p), at(*p * 1.1));
}

TEST(PhaseOutcome, AccumulationAddsTimes) {
  PhaseOutcome a = single_segment_phase(100, 10, 5, 1, 1e6);
  const PhaseOutcome b = single_segment_phase(200, 20, 5, 1, 1e6);
  const double t = a.t_final + b.t_final;
  a += b;
  EXPECT_DOUBLE_EQ(a.t_final, t);
  EXPECT_DOUBLE_EQ(a.work, 300.0);
}

TEST(PhaseOutcome, ExpectedFailuresScalesWithTime) {
  const auto out = periodic_phase(1e6, 2000, 300, 400, 60, 20000);
  EXPECT_NEAR(out.expected_failures(20000), out.t_final / 20000, 1e-12);
}

}  // namespace

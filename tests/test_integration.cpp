// Integration tests: the full stack working together — real ABFT kernels
// under the live composite runtime with split checkpoints, exactly like the
// example applications (but small and assertion-checked).

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "abft/abft_cholesky.hpp"
#include "abft/abft_lu.hpp"
#include "abft/blas.hpp"
#include "core/runtime.hpp"

namespace {

using namespace abftc;
using abft::Matrix;
using abft::ProcessGrid;

/// A miniature heat-style implicit stepper, run twice (clean vs faults).
std::vector<double> run_stepper(bool with_faults) {
  const std::size_t n = 48, nb = 8;  // 6 block steps on a 2x3 grid
  const ProcessGrid grid{2, 3};

  std::vector<double> state(n, 1.0), rhs(n, 0.0), solution(n, 1.0);
  ckpt::MemoryImage image;
  const auto rid_state = image.add_region("state", std::span<double>(state),
                                          ckpt::RegionClass::Remainder);
  const auto rid_rhs = image.add_region("rhs", std::span<double>(rhs),
                                        ckpt::RegionClass::Remainder);
  const auto rid_sol = image.add_region("solution",
                                        std::span<double>(solution),
                                        ckpt::RegionClass::Library);
  core::CompositeRuntime rt(image);

  common::Rng rng(99);
  const Matrix base = Matrix::spd(n, rng);

  for (int step = 0; step < 4; ++step) {
    rt.run_general_phase(
        [&] {
          std::copy(solution.begin(), solution.end(), state.begin());
          for (std::size_t i = 0; i < n; ++i)
            rhs[i] = state[i] + 0.1 * std::sin(static_cast<double>(i + step));
          image.mark_dirty(rid_state);
          image.mark_dirty(rid_rhs);
        },
        with_faults && step == 1 ? 1 : 0);

    rt.run_library_phase([&](const std::function<void()>& on_recovery) {
      std::vector<abft::AbftCholesky::Fault> faults;
      if (with_faults && step == 2) faults.push_back({3, 4});
      abft::AbftCholesky chol(base, nb, grid);
      chol.factor(faults);
      if (!faults.empty()) on_recovery();
      const auto x = abft::cholesky_solve(chol.factor_matrix(), rhs);
      std::copy(x.begin(), x.end(), solution.begin());
      image.mark_dirty(rid_sol);
    });
  }
  return solution;
}

TEST(Integration, FaultsAreTransparentToTheApplication) {
  const auto clean = run_stepper(false);
  const auto faulty = run_stepper(true);
  ASSERT_EQ(clean.size(), faulty.size());
  for (std::size_t i = 0; i < clean.size(); ++i)
    EXPECT_NEAR(clean[i], faulty[i], 1e-10);
}

TEST(Integration, LuEpochSweepSurvivesRotatingRankKills) {
  // An LU-based frequency-sweep miniature (radar_cross_section.cpp shape):
  // kill a different rank at a different step each epoch.
  const std::size_t n = 48, nb = 8;
  const ProcessGrid grid{2, 3};
  common::Rng rng(7);

  for (std::size_t epoch = 0; epoch < 6; ++epoch) {
    const Matrix a = Matrix::diag_dominant(n, rng);
    abft::AbftLu lu(a, nb, grid);
    lu.factor({{epoch % (n / nb + 1), epoch % grid.size()}});
    EXPECT_LT(abft::relative_error(lu.reconstruct_product(), a), 1e-9)
        << "epoch " << epoch;
  }
}

TEST(Integration, CompositeRuntimeSurvivesBackToBackFailures) {
  std::array<double, 8> rem{};
  std::array<double, 8> lib{};
  ckpt::MemoryImage image;
  image.add_region("rem", std::span<double>(rem),
                   ckpt::RegionClass::Remainder);
  image.add_region("lib", std::span<double>(lib), ckpt::RegionClass::Library);
  core::CompositeRuntime rt(image);

  int counter = 0;
  rt.run_general_phase(
      [&] {
        ++counter;
        rem[0] = 5.0;
      },
      /*failures_before_success=*/3);
  EXPECT_EQ(counter, 4);
  EXPECT_EQ(rt.stats().rollbacks, 3u);
  EXPECT_DOUBLE_EQ(rem[0], 5.0);
}

TEST(Integration, SplitCheckpointChainAcrossManyEpochs) {
  // After k epochs the store must be able to restore the state of the
  // latest completed split checkpoint, even after compaction.
  std::array<double, 4> rem{};
  std::array<double, 4> lib{};
  ckpt::MemoryImage image;
  image.add_region("rem", std::span<double>(rem),
                   ckpt::RegionClass::Remainder);
  image.add_region("lib", std::span<double>(lib), ckpt::RegionClass::Library);
  core::CompositeRuntime rt(image);

  for (int epoch = 0; epoch < 8; ++epoch) {
    rt.run_general_phase([&] { rem[0] = epoch; });
    rt.run_library_phase(
        [&](const std::function<void()>&) { lib[0] = epoch * 10.0; });
    rt.store().compact();
  }
  rem.fill(-1);
  lib.fill(-1);
  rt.store().restore_latest(image);
  EXPECT_DOUBLE_EQ(rem[0], 7.0);
  EXPECT_DOUBLE_EQ(lib[0], 70.0);
}

}  // namespace

// Tests for the block-group checksum encodings, the grid, the mini-BLAS and
// the Matrix utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

#include "abft/blas.hpp"
#include "abft/checksum.hpp"

namespace {

using namespace abftc;
using namespace abftc::abft;

TEST(Grid, BlockCyclicOwnership) {
  const ProcessGrid g{2, 3};
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.rank_of_block(0, 0), 0u);
  EXPECT_EQ(g.rank_of_block(0, 1), 1u);
  EXPECT_EQ(g.rank_of_block(1, 0), 3u);
  EXPECT_EQ(g.rank_of_block(2, 3), 0u);  // wraps both ways
  EXPECT_EQ(g.grid_row(4), 1u);
  EXPECT_EQ(g.grid_col(4), 1u);
}

TEST(Grid, BlocksOfRankEnumeratesFootprint) {
  const ProcessGrid g{2, 2};
  const auto blocks = blocks_of_rank(g, 3, 4, 4);  // rank (1,1)
  EXPECT_EQ(blocks.size(), 4u);
  for (const auto& [bi, bj] : blocks) {
    EXPECT_EQ(bi % 2, 1u);
    EXPECT_EQ(bj % 2, 1u);
  }
  EXPECT_THROW(blocks_of_rank(g, 9, 4, 4), common::precondition_error);
}

TEST(Checksum, RowGroupSumsAreExact) {
  common::Rng rng(1);
  const Matrix a = Matrix::random(32, 16, rng);
  const Matrix cs = row_group_checksums(a, 8, 2);  // 4 block rows, 2 groups
  ASSERT_EQ(cs.rows(), 16u);
  for (std::size_t j = 0; j < 16; ++j) {
    EXPECT_NEAR(cs(0, j), a(0, j) + a(8, j), 1e-12);
    EXPECT_NEAR(cs(8, j), a(16, j) + a(24, j), 1e-12);
  }
  EXPECT_LT(row_checksum_residual(a, cs, 8, 2), 1e-12);
}

TEST(Checksum, ColGroupSumsAreExact) {
  common::Rng rng(2);
  const Matrix a = Matrix::random(16, 32, rng);
  const Matrix cs = col_group_checksums(a, 8, 2);
  ASSERT_EQ(cs.cols(), 16u);
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_NEAR(cs(i, 0), a(i, 0) + a(i, 8), 1e-12);
  EXPECT_LT(col_checksum_residual(a, cs, 8, 2), 1e-12);
}

TEST(Checksum, KillAndRecoverRoundTrip) {
  common::Rng rng(3);
  const ProcessGrid g{2, 2};
  Matrix a = Matrix::random(32, 32, rng);
  const Matrix original = a;
  const Matrix cs = row_group_checksums(a, 8, g.prows);
  kill_rank_blocks(a, 8, g, 1);
  EXPECT_TRUE(has_nan(a.view()));
  const auto stats = recover_rank_from_row_checksums(a, cs, 8, g.prows, g, 1);
  EXPECT_EQ(stats.blocks_recovered, 4u);
  EXPECT_LT(max_abs_diff(a, original), 1e-12);
}

TEST(Checksum, ColumnRecoveryRoundTrip) {
  common::Rng rng(4);
  const ProcessGrid g{2, 2};
  Matrix a = Matrix::random(32, 32, rng);
  const Matrix original = a;
  const Matrix cs = col_group_checksums(a, 8, g.pcols);
  kill_rank_blocks(a, 8, g, 2);
  const auto stats = recover_rank_from_col_checksums(a, cs, 8, g.pcols, g, 2);
  EXPECT_EQ(stats.blocks_recovered, 4u);
  EXPECT_LT(max_abs_diff(a, original), 1e-12);
}

TEST(Checksum, DoubleKillSameGroupUnrecoverable) {
  common::Rng rng(5);
  const ProcessGrid g{2, 2};
  Matrix a = Matrix::random(32, 32, rng);
  const Matrix cs = row_group_checksums(a, 8, g.prows);
  kill_rank_blocks(a, 8, g, 0);  // (0,0)
  kill_rank_blocks(a, 8, g, 2);  // (1,0): same grid column -> same groups
  EXPECT_THROW(recover_rank_from_row_checksums(a, cs, 8, g.prows, g, 0),
               unrecoverable_error);
}

TEST(Checksum, GroupCountValidation) {
  EXPECT_EQ(group_count(12, 3), 4u);
  EXPECT_THROW(group_count(10, 3), common::precondition_error);
  EXPECT_THROW(group_count(8, 0), common::precondition_error);
}

TEST(Matrix, GeneratorsHaveDocumentedProperties) {
  common::Rng rng(6);
  const Matrix dd = Matrix::diag_dominant(24, rng);
  for (std::size_t i = 0; i < 24; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < 24; ++j)
      if (i != j) off += std::fabs(dd(i, j));
    EXPECT_GT(dd(i, i), off);
  }
  const Matrix s = Matrix::spd(16, rng);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 16; ++j)
      EXPECT_DOUBLE_EQ(s(i, j), s(j, i));
}

TEST(Matrix, ViewsShareStorage) {
  Matrix m(8, 8, 1.0);
  auto block = m.block(2, 2, 3, 3);
  block(0, 0) = 42.0;
  EXPECT_DOUBLE_EQ(m(2, 2), 42.0);
  EXPECT_THROW((void)m.block(6, 6, 4, 4), common::precondition_error);
}

TEST(Blas, GemmMatchesNaiveAllTransposes) {
  common::Rng rng(7);
  const Matrix a = Matrix::random(5, 7, rng);
  const Matrix b = Matrix::random(7, 4, rng);
  Matrix c(5, 4, 0.0);
  gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0, c.view());
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 7; ++k) s += a(i, k) * b(k, j);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
  // A·Bᵀ
  const Matrix bt = Matrix::random(4, 7, rng);
  Matrix c2(5, 4, 0.0);
  gemm(1.0, a.view(), Trans::No, bt.view(), Trans::Yes, 0.0, c2.view());
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 7; ++k) s += a(i, k) * bt(j, k);
      EXPECT_NEAR(c2(i, j), s, 1e-12);
    }
  // Aᵀ·B
  const Matrix at = Matrix::random(7, 5, rng);
  Matrix c3(5, 4, 0.0);
  gemm(1.0, at.view(), Trans::Yes, b.view(), Trans::No, 0.0, c3.view());
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 7; ++k) s += at(k, i) * b(k, j);
      EXPECT_NEAR(c3(i, j), s, 1e-12);
    }
}

TEST(Blas, GemmBetaScalesExistingContent) {
  common::Rng rng(8);
  const Matrix a = Matrix::random(3, 3, rng);
  const Matrix b = Matrix::random(3, 3, rng);
  Matrix c(3, 3, 1.0);
  gemm(0.0, a.view(), Trans::No, b.view(), Trans::No, 2.0, c.view());
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(c(i, j), 2.0);
}

TEST(Blas, TrsmRightUpperSolves) {
  common::Rng rng(9);
  Matrix u(4, 4, 0.0);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = i; j < 4; ++j)
      u(i, j) = (i == j) ? 2.0 + static_cast<double>(i) : rng.uniform(-1, 1);
  const Matrix x_true = Matrix::random(3, 4, rng);
  Matrix b(3, 4, 0.0);
  gemm(1.0, x_true.view(), Trans::No, u.view(), Trans::No, 0.0, b.view());
  trsm_right_upper(u.view(), b.view());
  EXPECT_LT(max_abs_diff(b, x_true), 1e-10);
}

TEST(Blas, TrsmLeftLowerUnitSolves) {
  common::Rng rng(10);
  Matrix l = Matrix::identity(4);
  for (std::size_t i = 1; i < 4; ++i)
    for (std::size_t j = 0; j < i; ++j) l(i, j) = rng.uniform(-1, 1);
  const Matrix x_true = Matrix::random(4, 3, rng);
  Matrix b(4, 3, 0.0);
  gemm(1.0, l.view(), Trans::No, x_true.view(), Trans::No, 0.0, b.view());
  trsm_left_lower_unit(l.view(), b.view());
  EXPECT_LT(max_abs_diff(b, x_true), 1e-10);
}

TEST(Blas, Getf2FactorsSmallSystems) {
  common::Rng rng(11);
  const Matrix a = Matrix::diag_dominant(8, rng);
  Matrix lu = a;
  getf2_nopiv(lu.view());
  // Rebuild and compare.
  Matrix prod(8, 8, 0.0);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j) {
      double s = (i <= j) ? lu(i, j) : 0.0;
      for (std::size_t p = 0; p < std::min(i, j + 1); ++p)
        s += lu(i, p) * lu(p, j);
      prod(i, j) = s;
    }
  EXPECT_LT(max_abs_diff(prod, a), 1e-10);
}

TEST(Blas, Geqr2ProducesOrthonormalReflectors) {
  common::Rng rng(12);
  Matrix a = Matrix::random(8, 4, rng);
  const Matrix a0 = a;
  std::vector<double> tau;
  geqr2(a.view(), tau);
  ASSERT_EQ(tau.size(), 4u);
  // Applying the reflectors to the original columns reproduces R.
  Matrix check = a0;
  apply_reflectors_left(a.view(), tau, check.view());
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = j + 1; i < 8; ++i)
      EXPECT_NEAR(check(i, j), 0.0, 1e-10);
}

TEST(Blas, SolversRejectBadShapes) {
  Matrix a(4, 4, 1.0);
  std::vector<double> b(3, 0.0);
  EXPECT_THROW((void)lu_solve(a, b), common::precondition_error);
  EXPECT_THROW((void)cholesky_solve(a, b), common::precondition_error);
}

}  // namespace

// Property tests: monotonicity and dominance guarantees of the waste models
// that hold across the whole parameter space (not just at the paper's
// operating points). A violation of any of these would mean the model
// recommends a protocol for the wrong reason.

#include <gtest/gtest.h>

#include <cmath>

#include "common/time_units.hpp"
#include "core/protocol_models.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;
using common::hours;
using common::minutes;

class ProtocolSweep : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolSweep, WasteNonIncreasingInMtbf) {
  const Protocol p = GetParam();
  for (const double alpha : {0.0, 0.4, 0.8, 1.0}) {
    double prev = 1.1;
    for (const double mtbf_min : {40.0, 60.0, 90.0, 150.0, 300.0, 1000.0}) {
      const double w =
          evaluate(p, figure7_scenario(minutes(mtbf_min), alpha)).waste();
      EXPECT_LE(w, prev + 1e-9)
          << to_string(p) << " alpha=" << alpha << " mtbf=" << mtbf_min;
      prev = w;
    }
  }
}

TEST_P(ProtocolSweep, WasteNonDecreasingInCheckpointCost) {
  const Protocol p = GetParam();
  double prev = -1.0;
  for (const double c_min : {1.0, 5.0, 10.0, 20.0, 40.0}) {
    auto s = figure7_scenario(hours(2), 0.7);
    s.ckpt.full_cost = minutes(c_min);
    s.ckpt.full_recovery = minutes(c_min);
    const double w = evaluate(p, s).waste();
    EXPECT_GE(w, prev - 1e-9) << to_string(p) << " C=" << c_min << "min";
    prev = w;
  }
}

TEST_P(ProtocolSweep, WasteNonDecreasingInDowntime) {
  const Protocol p = GetParam();
  double prev = -1.0;
  for (const double d : {0.0, 30.0, 120.0, 600.0}) {
    auto s = figure7_scenario(hours(2), 0.7);
    s.platform.downtime = d;
    const double w = evaluate(p, s).waste();
    EXPECT_GE(w, prev - 1e-9) << to_string(p) << " D=" << d;
    prev = w;
  }
}

TEST_P(ProtocolSweep, WasteInUnitIntervalAcrossGrid) {
  const Protocol p = GetParam();
  for (double alpha = 0.0; alpha <= 1.0; alpha += 0.125)
    for (const double mtbf_min : {30.0, 75.0, 200.0, 2000.0})
      for (const double rho : {0.1, 0.5, 0.9}) {
        auto s = figure7_scenario(minutes(mtbf_min), alpha);
        s.ckpt.rho = rho;
        const double w = evaluate(p, s).waste();
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
        EXPECT_TRUE(std::isfinite(w));
      }
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolSweep,
                         ::testing::Values(Protocol::PurePeriodicCkpt,
                                           Protocol::BiPeriodicCkpt,
                                           Protocol::AbftPeriodicCkpt),
                         [](const auto& info) {
                           return std::string(to_string(info.param) ==
                                                      "ABFT&PeriodicCkpt"
                                                  ? "Composite"
                                                  : to_string(info.param));
                         });

TEST(ModelDominance, BiNeverWorseThanPure) {
  // Incremental checkpointing can only shrink checkpoints; Eq. 13/14 and
  // the stream mode must both respect dominance.
  for (double alpha = 0.0; alpha <= 1.0; alpha += 0.1)
    for (const double mtbf_min : {45.0, 90.0, 180.0, 720.0})
      for (const double rho : {0.2, 0.6, 0.9}) {
        auto s = figure7_scenario(minutes(mtbf_min), alpha);
        s.ckpt.rho = rho;
        EXPECT_LE(evaluate_bi(s).waste(),
                  evaluate_pure(s).waste() + 1e-9)
            << "alpha=" << alpha << " mtbf=" << mtbf_min << " rho=" << rho;
      }
}

TEST(ModelDominance, SafeguardedCompositeNeverWorseThanBi) {
  // The safeguard's contract: fall back to BiPeriodicCkpt whenever ABFT
  // would not pay off, so the guarded composite is min(ABFT, Bi) — up to
  // the model's own granularity.
  for (double alpha = 0.1; alpha <= 1.0; alpha += 0.2)
    for (const double mtbf_min : {60.0, 120.0, 480.0}) {
      const auto s = figure7_scenario(minutes(mtbf_min), alpha);
      EXPECT_LE(evaluate_composite(s, {.safeguard = true}).waste(),
                evaluate_bi(s).waste() + 1e-9)
          << "alpha=" << alpha << " mtbf=" << mtbf_min;
    }
}

TEST(ModelDominance, CompositeWasteNonDecreasingInPhi) {
  double prev = -1.0;
  for (const double phi : {1.0, 1.02, 1.05, 1.2, 1.5}) {
    auto s = figure7_scenario(hours(2), 0.8);
    s.abft.phi = phi;
    const double w = evaluate_composite(s, {.safeguard = false}).waste();
    EXPECT_GE(w, prev - 1e-9) << "phi=" << phi;
    prev = w;
  }
}

TEST(ModelDominance, CompositeWasteNonDecreasingInRecons) {
  double prev = -1.0;
  for (const double recons : {0.0, 2.0, 60.0, 600.0, 3600.0}) {
    auto s = figure7_scenario(hours(2), 0.8);
    s.abft.recons = recons;
    const double w = evaluate_composite(s, {.safeguard = false}).waste();
    EXPECT_GE(w, prev - 1e-9) << "recons=" << recons;
    prev = w;
  }
}

TEST(ModelDominance, MoreEpochsSameWastePerEpochProtocols) {
  // Waste is an intensive quantity: replicating identical epochs must not
  // change it (the model multiplies times, not rates).
  for (const auto p : {Protocol::BiPeriodicCkpt, Protocol::AbftPeriodicCkpt}) {
    auto s1 = figure7_scenario(hours(2), 0.8);
    auto s8 = s1;
    s8.epochs = 8;
    EXPECT_NEAR(evaluate(p, s1).waste(), evaluate(p, s8).waste(), 1e-12)
        << to_string(p);
  }
}

TEST(ModelDominance, ExactPeriodOptionNeverHurts) {
  for (const double mtbf_min : {30.0, 60.0, 120.0, 480.0}) {
    const auto s = figure7_scenario(minutes(mtbf_min), 0.5);
    EXPECT_LE(evaluate_pure(s, {.exact_period = true}).waste(),
              evaluate_pure(s, {.exact_period = false}).waste() + 1e-9);
  }
}

}  // namespace

// E6: the paper's qualitative evaluation claims (Section V), asserted
// directly so a regression in any model/simulator component that would
// change a published conclusion fails the suite.

#include <gtest/gtest.h>

#include <cmath>

#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"
#include "core/scaling.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;
using common::minutes;

constexpr ModelOptions kNoSafeguard{.safeguard = false};

// --- Figure 7 claims -------------------------------------------------------

TEST(Fig7Claims, PureWasteIsAFunctionOfMtbfOnly) {
  for (const double mtbf_min : {60.0, 120.0, 240.0}) {
    const double w0 =
        evaluate_pure(figure7_scenario(minutes(mtbf_min), 0.0)).waste();
    for (double alpha = 0.1; alpha <= 1.0; alpha += 0.1)
      EXPECT_NEAR(
          evaluate_pure(figure7_scenario(minutes(mtbf_min), alpha)).waste(),
          w0, 1e-9);
  }
}

TEST(Fig7Claims, BiWasteMinimalAtAlphaOne) {
  double prev = 1.0;
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double w = evaluate_bi(figure7_scenario(minutes(120), alpha)).waste();
    EXPECT_LE(w, prev + 1e-9) << alpha;
    prev = w;
  }
}

TEST(Fig7Claims, CompositeBenefitVisibleAtHalfAlpha) {
  // "When 50% of the time is spent in the LIBRARY routine, the benefit,
  // compared to PurePeriodicCkpt, but also compared to BiPeriodicCkpt, is
  // already visible."
  const auto s = figure7_scenario(minutes(120), 0.5);
  const double comp = evaluate_composite(s).waste();
  EXPECT_LT(comp, evaluate_bi(s).waste() - 0.02);
  EXPECT_LT(comp, evaluate_pure(s).waste() - 0.02);
}

TEST(Fig7Claims, CompositeTendsToPhiOverheadAtAlphaOne) {
  // "the overhead tends to reach the overhead induced by the slowdown
  // factor of ABFT (phi = 1.03, hence 3% overhead)" — at large MTBF.
  const double w =
      evaluate_composite(figure7_scenario(minutes(240 * 60), 1.0)).waste();
  EXPECT_NEAR(w, 1.0 - 1.0 / 1.03, 0.005);
}

TEST(Fig7Claims, ModelSimGapSmallAndLargestAtSmallMtbf) {
  // |WASTE_simul − WASTE_model| ≤ 0.12 at MTBF = 60 min, < 0.05 at 240 min.
  MonteCarloOptions mc;
  mc.replicates = 300;
  for (const auto protocol :
       {Protocol::PurePeriodicCkpt, Protocol::AbftPeriodicCkpt}) {
    const auto s60 = figure7_scenario(minutes(60), 0.6);
    const auto s240 = figure7_scenario(minutes(240), 0.6);
    const double gap60 = std::fabs(
        monte_carlo(protocol, s60, {}, mc).waste.mean() -
        evaluate(protocol, s60).waste());
    const double gap240 = std::fabs(
        monte_carlo(protocol, s240, {}, mc).waste.mean() -
        evaluate(protocol, s240).waste());
    EXPECT_LT(gap60, 0.12);
    EXPECT_LT(gap240, 0.05);
    EXPECT_LT(gap240, gap60 + 0.01);
  }
}

// --- Figure 8 claims -------------------------------------------------------

TEST(Fig8Claims, CompositeWorseBelowCrossoverBetterAbove) {
  const auto cfg = figure8_config();
  const auto waste = [&](Protocol p, double nodes) {
    return evaluate(p, scenario_at(cfg, nodes), kNoSafeguard).waste();
  };
  // "Up to approximately 100,000 nodes, the fault-free overhead of ABFT
  // negatively impacts the waste."
  EXPECT_GT(waste(Protocol::AbftPeriodicCkpt, 1e3),
            waste(Protocol::PurePeriodicCkpt, 1e3));
  EXPECT_GT(waste(Protocol::AbftPeriodicCkpt, 1e4),
            waste(Protocol::PurePeriodicCkpt, 1e4));
  // Beyond the crossover the composite scales better.
  EXPECT_LT(waste(Protocol::AbftPeriodicCkpt, 3e5),
            waste(Protocol::PurePeriodicCkpt, 3e5));
  EXPECT_LT(waste(Protocol::AbftPeriodicCkpt, 1e6),
            0.5 * waste(Protocol::PurePeriodicCkpt, 1e6));
}

TEST(Fig8Claims, PeriodicProtocolsSufferMoreFailures) {
  const auto cfg = figure8_config();
  const auto s = scenario_at(cfg, 1e6);
  const double mu = s.platform.mtbf;
  const auto flt = [&](Protocol p) {
    return evaluate(p, s, kNoSafeguard).expected_failures(mu);
  };
  EXPECT_GT(flt(Protocol::PurePeriodicCkpt),
            flt(Protocol::AbftPeriodicCkpt));
  EXPECT_GT(flt(Protocol::BiPeriodicCkpt), flt(Protocol::AbftPeriodicCkpt));
}

TEST(Fig8Claims, BiTracksPureClosely) {
  // "both approaches perform similarly with respect to the number of nodes"
  const auto cfg = figure8_config();
  for (const double nodes : {1e3, 1e4, 1e5, 1e6}) {
    const auto s = scenario_at(cfg, nodes);
    const double pure = evaluate_pure(s).waste();
    const double bi = evaluate_bi(s).waste();
    EXPECT_LE(bi, pure + 1e-9);
    EXPECT_GT(bi, pure - 0.05);
  }
}

// --- Figure 9 claims -------------------------------------------------------

TEST(Fig9Claims, AlphaGrowsWithNodesAndMatchesLabels) {
  const auto cfg = figure9_config();
  EXPECT_NEAR(alpha_at(cfg, 1e3), 0.55, 0.01);
  EXPECT_NEAR(alpha_at(cfg, 1e6), 0.975, 0.002);
}

TEST(Fig9Claims, FewerFailuresThanFig8) {
  const auto s8 = scenario_at(figure8_config(), 1e6);
  const auto s9 = scenario_at(figure9_config(), 1e6);
  EXPECT_LT(evaluate_pure(s9).expected_failures(s9.platform.mtbf),
            evaluate_pure(s8).expected_failures(s8.platform.mtbf));
}

TEST(Fig9Claims, CompositeAdvantageGrowsWithScale) {
  const auto cfg = figure9_config();
  const auto advantage = [&](double nodes) {
    const auto s = scenario_at(cfg, nodes);
    return evaluate_pure(s).waste() -
           evaluate_composite(s, kNoSafeguard).waste();
  };
  EXPECT_GT(advantage(1e6), advantage(1e5));
  EXPECT_GT(advantage(1e5), advantage(1e4));
}

// --- Figure 10 claims ------------------------------------------------------

TEST(Fig10Claims, PeriodicProtocolsStayBelow15PercentAt1M) {
  const auto s = scenario_at(figure10_config(), 1e6);
  EXPECT_LT(evaluate_pure(s).waste(), 0.15);
  EXPECT_LT(evaluate_bi(s).waste(), 0.15);
}

TEST(Fig10Claims, CompositeWasteNearlyConstantInScale) {
  // "the ABFT technique ... appears to present a waste that is almost
  // constant when the number of nodes increases."
  const auto cfg = figure10_config();
  double lo = 1.0, hi = 0.0;
  for (const double nodes : {3.2e4, 1e5, 3.2e5, 1e6}) {
    const double w =
        evaluate_composite(scenario_at(cfg, nodes), kNoSafeguard).waste();
    lo = std::min(lo, w);
    hi = std::max(hi, w);
  }
  EXPECT_LT(hi - lo, 0.03);
}

TEST(Fig10Claims, CompositeStillWinsAt1M) {
  const auto s = scenario_at(figure10_config(), 1e6);
  EXPECT_LT(evaluate_composite(s, kNoSafeguard).waste(),
            evaluate_pure(s).waste());
}

TEST(Fig10Claims, SixSecondCheckpointsMatchComposite) {
  // "To reach comparable performance, we must reduce checkpointing overhead
  // by a factor of 10 and use C = R = 6s."
  auto cfg = figure10_config();
  const double comp =
      evaluate_composite(scenario_at(cfg, 1e6), kNoSafeguard).waste();
  cfg.base_ckpt = 6.0;
  const double pure6 = evaluate_pure(scenario_at(cfg, 1e6)).waste();
  EXPECT_NEAR(pure6, comp, 0.02);
}

// --- literal-text sanity (documented deviation) ---------------------------

TEST(LiteralConfig, DivergesExactlyWhereDocumented) {
  const auto cfg = figure8_literal_config();
  EXPECT_FALSE(evaluate_pure(scenario_at(cfg, 1e4)).diverged);
  EXPECT_TRUE(evaluate_pure(scenario_at(cfg, 1e6)).diverged);
}

}  // namespace

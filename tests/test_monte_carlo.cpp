// Tests for the Monte-Carlo harness: reproducibility, thread invariance,
// convergence, and the alternative failure distributions.

#include <gtest/gtest.h>

#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;
using common::minutes;

TEST(MonteCarlo, ReproducibleAcrossThreadCounts) {
  const auto s = figure7_scenario(minutes(120), 0.8);
  MonteCarloOptions a;
  a.replicates = 64;
  a.threads = 1;
  MonteCarloOptions b = a;
  b.threads = 4;
  const auto ra = monte_carlo(Protocol::AbftPeriodicCkpt, s, {}, a);
  const auto rb = monte_carlo(Protocol::AbftPeriodicCkpt, s, {}, b);
  // Replicates own their streams, so even the merge order cannot change
  // the mean (up to fp association in the merge, which is deterministic
  // per chunking; compare loosely).
  EXPECT_NEAR(ra.waste.mean(), rb.waste.mean(), 1e-12);
  EXPECT_EQ(ra.waste.count(), rb.waste.count());
}

TEST(MonteCarlo, SeedChangesResults) {
  const auto s = figure7_scenario(minutes(120), 0.8);
  MonteCarloOptions a;
  a.replicates = 32;
  MonteCarloOptions b = a;
  b.seed = 777;
  const auto ra = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, a);
  const auto rb = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, b);
  EXPECT_NE(ra.waste.mean(), rb.waste.mean());
}

TEST(MonteCarlo, CiShrinksWithReplicates) {
  const auto s = figure7_scenario(minutes(90), 0.5);
  MonteCarloOptions small;
  small.replicates = 50;
  MonteCarloOptions large;
  large.replicates = 800;
  const auto rs = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, small);
  const auto rl = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, large);
  EXPECT_LT(rl.waste.ci95_halfwidth(), rs.waste.ci95_halfwidth());
}

TEST(MonteCarlo, FailureCountsTrackMtbf) {
  MonteCarloOptions mc;
  mc.replicates = 100;
  const auto fast =
      monte_carlo(Protocol::PurePeriodicCkpt,
                  figure7_scenario(minutes(60), 0.5), {}, mc);
  const auto slow =
      monte_carlo(Protocol::PurePeriodicCkpt,
                  figure7_scenario(minutes(240), 0.5), {}, mc);
  EXPECT_GT(fast.failures.mean(), 2.0 * slow.failures.mean());
}

TEST(MonteCarlo, PerNodeExponentialMatchesAggregate) {
  auto s = figure7_scenario(minutes(120), 0.6);
  s.platform.nodes = 100;  // per-node MTBF = 100 × platform MTBF
  MonteCarloOptions agg;
  agg.replicates = 400;
  MonteCarloOptions per = agg;
  per.per_node = true;
  const auto ra = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, agg);
  const auto rp = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, per);
  // Statistically identical (superposition of Poisson processes).
  EXPECT_NEAR(ra.waste.mean(), rp.waste.mean(),
              3.0 * (ra.waste.ci95_halfwidth() + rp.waste.ci95_halfwidth()));
}

TEST(MonteCarlo, WeibullBurstsHurtRollbackMoreThanAbft) {
  const auto s = figure7_scenario(minutes(60), 0.9);
  MonteCarloOptions exp_mc;
  exp_mc.replicates = 300;
  MonteCarloOptions wei_mc = exp_mc;
  wei_mc.distribution = FailureDistribution::Weibull;
  wei_mc.weibull_shape = 0.7;

  const double pure_exp =
      monte_carlo(Protocol::PurePeriodicCkpt, s, {}, exp_mc).waste.mean();
  const double pure_wei =
      monte_carlo(Protocol::PurePeriodicCkpt, s, {}, wei_mc).waste.mean();
  const double abft_exp =
      monte_carlo(Protocol::AbftPeriodicCkpt, s, {}, exp_mc).waste.mean();
  const double abft_wei =
      monte_carlo(Protocol::AbftPeriodicCkpt, s, {}, wei_mc).waste.mean();

  // The composite keeps its advantage under bursty failures.
  EXPECT_LT(abft_wei, pure_wei);
  // And its degradation is smaller than the rollback protocol's.
  EXPECT_LT(abft_wei - abft_exp, pure_wei - pure_exp + 0.05);
}

TEST(MonteCarlo, LogNormalRuns) {
  const auto s = figure7_scenario(minutes(120), 0.5);
  MonteCarloOptions mc;
  mc.replicates = 50;
  mc.distribution = FailureDistribution::LogNormal;
  const auto r = monte_carlo(Protocol::BiPeriodicCkpt, s, {}, mc);
  EXPECT_TRUE(r.plan_valid);
  EXPECT_GT(r.waste.mean(), 0.0);
  EXPECT_LT(r.waste.mean(), 1.0);
}

TEST(MonteCarlo, InvalidPlanReported) {
  auto s = figure7_scenario(minutes(15), 0.0);
  s.ckpt.full_cost = minutes(30);
  s.ckpt.full_recovery = minutes(30);
  MonteCarloOptions mc;
  mc.replicates = 4;
  const auto r = monte_carlo(Protocol::PurePeriodicCkpt, s, {}, mc);
  EXPECT_FALSE(r.plan_valid);
  EXPECT_EQ(r.waste.count(), 0u);
}

TEST(MonteCarlo, RejectsZeroReplicates) {
  const auto s = figure7_scenario(minutes(120), 0.5);
  MonteCarloOptions mc;
  mc.replicates = 0;
  EXPECT_THROW(monte_carlo(Protocol::PurePeriodicCkpt, s, {}, mc),
               common::precondition_error);
}

}  // namespace

// Tests for the deterministic RNG and its distribution samplers.

#include <gtest/gtest.h>

#include <cmath>

#include "common/crc32.hpp"
#include "common/rng.hpp"

namespace {

using abftc::common::crc32;
using abftc::common::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndStable) {
  const Rng base(7);
  Rng s0 = base.split(0);
  Rng s1 = base.split(1);
  Rng s0b = base.split(0);
  EXPECT_EQ(s0(), s0b());  // same stream id -> same sequence
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (s0() == s1());
  EXPECT_LT(same, 3);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01OpenLowNeverZero) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform01_open_low(), 0.0);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, BelowIsBoundedAndCoversRange) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) {
    const auto v = rng.below(7);
    ASSERT_LT(v, 7u);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (const int c : counts) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  const double mean = 123.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
}

TEST(Rng, ExponentialMemorylessQuantile) {
  // Median of Exp(mean) is mean*ln 2.
  Rng rng(17);
  const double mean = 50.0;
  int below = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    below += rng.exponential(mean) < mean * std::numbers::ln2;
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.01);
}

TEST(Rng, WeibullMeanMatches) {
  Rng rng(19);
  const double shape = 0.7, scale = 100.0;
  const double expect = scale * std::tgamma(1.0 + 1.0 / shape);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.weibull(shape, scale);
  EXPECT_NEAR(sum / n, expect, expect * 0.03);
}

TEST(Rng, LogNormalMeanMatches) {
  Rng rng(23);
  // exp(mu + sigma^2/2) is the mean.
  const double mu = 1.0, sigma = 0.5;
  const double expect = std::exp(mu + 0.5 * sigma * sigma);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(mu, sigma);
  EXPECT_NEAR(sum / n, expect, expect * 0.03);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / n - mean * mean), 3.0, 0.05);
}

TEST(Crc32, KnownVector) {
  const char* s = "123456789";
  const auto bytes = std::as_bytes(std::span(s, 9));
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);  // the classic check value
}

TEST(Crc32, SeedChainsIncrementally) {
  const char* s = "hello world";
  const auto all = std::as_bytes(std::span(s, 11));
  const auto head = std::as_bytes(std::span(s, 5));
  const auto tail = std::as_bytes(std::span(s + 5, 6));
  EXPECT_EQ(crc32(all), crc32(tail, crc32(head)));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64, std::byte{0xA5});
  const auto before = crc32(data);
  data[17] ^= std::byte{0x04};
  EXPECT_NE(before, crc32(data));
}

}  // namespace

// Tests for the protocol simulators: plan derivation, exactness in the
// fault-free limit, agreement with the analytical model (the Figure 7
// validation as a parameterized property), and reproducibility.

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <cmath>

#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"
#include "core/simulate.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;
using common::hours;
using common::minutes;

TEST(Plan, PureUsesOnePeriodNoTail) {
  const auto s = figure7_scenario(hours(2), 0.5);
  const auto plan = make_plan(Protocol::PurePeriodicCkpt, s);
  EXPECT_TRUE(plan.valid);
  EXPECT_TRUE(plan.general_periodic);
  EXPECT_DOUBLE_EQ(plan.general_tail, 0.0);
  EXPECT_FALSE(plan.abft_active);
}

TEST(Plan, CompositeDisablesPeriodicInsideLibrary) {
  const auto s = figure7_scenario(hours(2), 0.8);
  const auto plan = make_plan(Protocol::AbftPeriodicCkpt, s);
  EXPECT_TRUE(plan.abft_active);
  EXPECT_FALSE(plan.library_periodic);
  EXPECT_DOUBLE_EQ(plan.library_tail, s.ckpt.library_cost());
}

TEST(Plan, CompositeEntryCheckpointIsRemainderWhenShortGeneral) {
  // T_G = 0.001 × 1 week ≈ 10 min, well below P_opt ≈ 47 min.
  auto s = figure7_scenario(hours(2), 0.999);
  const auto plan = make_plan(Protocol::AbftPeriodicCkpt, s);
  EXPECT_FALSE(plan.general_periodic);
  EXPECT_DOUBLE_EQ(plan.general_tail, s.ckpt.remainder_cost());
}

TEST(Plan, SafeguardFallbackMatchesBiPlan) {
  auto s = figure7_scenario(hours(2), 0.8);
  s.epoch.duration = minutes(10);
  s.epochs = 1008;
  const auto comp = make_plan(Protocol::AbftPeriodicCkpt, s, {});
  const auto bi = make_plan(Protocol::BiPeriodicCkpt, s, {});
  EXPECT_FALSE(comp.abft_active);
  EXPECT_EQ(comp.bi_stream, bi.bi_stream);
  EXPECT_DOUBLE_EQ(comp.stream_ckpt, bi.stream_ckpt);
  EXPECT_EQ(comp.protocol, Protocol::AbftPeriodicCkpt);
}

TEST(Plan, MirrorsModelDecisions) {
  for (const double alpha : {0.0, 0.3, 0.8, 1.0})
    for (const double mtbf_min : {60.0, 120.0, 240.0}) {
      const auto s = figure7_scenario(minutes(mtbf_min), alpha);
      for (const auto p :
           {Protocol::PurePeriodicCkpt, Protocol::BiPeriodicCkpt,
            Protocol::AbftPeriodicCkpt}) {
        const auto m = evaluate(p, s);
        const auto plan = make_plan(p, s);
        EXPECT_EQ(plan.abft_active, m.abft_active);
        if (plan.general_periodic)
          EXPECT_DOUBLE_EQ(plan.period_general, m.period_general);
      }
    }
}

TEST(Simulate, FaultFreeRunMatchesModelExactly) {
  // With an (effectively) infinite MTBF the simulator must reproduce the
  // model's fault-free time T_ff to rounding.
  for (const double alpha : {0.0, 0.4, 0.8, 1.0}) {
    auto s = figure7_scenario(hours(2), alpha);
    const auto plans_for = [&](Protocol p) { return make_plan(p, s); };
    auto huge = s;
    huge.platform.mtbf = 1e18;
    for (const auto p : {Protocol::PurePeriodicCkpt, Protocol::BiPeriodicCkpt,
                         Protocol::AbftPeriodicCkpt}) {
      const auto m = evaluate(p, s);  // periods chosen at the real MTBF
      auto plan = plans_for(p);
      sim::AggregateFailureClock clock(
          std::make_unique<sim::ExponentialArrivals>(huge.platform.mtbf),
          common::Rng(1));
      const auto r = simulate_run(s, plan, clock);
      // The model assumes an integer number of periods; the simulator packs
      // a possibly-short final chunk, so allow one period of slack.
      EXPECT_NEAR(r.t_final, m.t_ff,
                  std::max(1.0, m.period_general + m.period_library))
          << to_string(p) << " alpha=" << alpha;
      EXPECT_EQ(r.failures, 0u);
      EXPECT_DOUBLE_EQ(r.breakdown.lost, 0.0);
    }
  }
}

TEST(Simulate, SameSeedSameResult) {
  const auto s = figure7_scenario(minutes(90), 0.7);
  const auto plan = make_plan(Protocol::AbftPeriodicCkpt, s);
  const auto a = simulate_run(s, plan, 1234);
  const auto b = simulate_run(s, plan, 1234);
  EXPECT_DOUBLE_EQ(a.t_final, b.t_final);
  EXPECT_EQ(a.failures, b.failures);
  const auto c = simulate_run(s, plan, 99);
  EXPECT_NE(a.t_final, c.t_final);
}

TEST(Simulate, BreakdownIdentityUnderFailures) {
  const auto s = figure7_scenario(minutes(60), 0.8);
  for (const auto p : {Protocol::PurePeriodicCkpt, Protocol::BiPeriodicCkpt,
                       Protocol::AbftPeriodicCkpt}) {
    const auto plan = make_plan(p, s);
    const auto r = simulate_run(s, plan, 7);
    EXPECT_NEAR(r.breakdown.total(), r.t_final, 1e-6 * r.t_final)
        << to_string(p);
    EXPECT_NEAR(r.breakdown.useful, r.work, 1e-6) << to_string(p);
    EXPECT_GT(r.failures, 0u);
  }
}

TEST(Simulate, AbftLosesNoWorkToRollback) {
  // At alpha = 1 the composite never rolls back: lost time stays 0 except
  // possibly partial exit-checkpoint I/O.
  const auto s = figure7_scenario(minutes(60), 1.0);
  const auto plan = make_plan(Protocol::AbftPeriodicCkpt, s);
  const auto r = simulate_run(s, plan, 21);
  EXPECT_LE(r.breakdown.lost, s.ckpt.library_cost());
  EXPECT_GT(r.failures, 0u);
}

TEST(Simulate, InvalidPlanRejected) {
  auto s = figure7_scenario(minutes(15), 0.0);
  s.ckpt.full_cost = minutes(20);
  s.ckpt.full_recovery = minutes(20);
  const auto plan = make_plan(Protocol::PurePeriodicCkpt, s);
  EXPECT_FALSE(plan.valid);
  EXPECT_THROW((void)simulate_run(s, plan, 1), common::precondition_error);
}

// --- Figure 7 validation as a property ------------------------------------

struct GridPoint {
  double mtbf_min;
  double alpha;
  Protocol protocol;
};

class SimVsModel : public ::testing::TestWithParam<GridPoint> {};

TEST_P(SimVsModel, AgreesWithinPaperTolerance) {
  const auto [mtbf_min, alpha, protocol] = GetParam();
  const auto s = figure7_scenario(minutes(mtbf_min), alpha);
  const auto model = evaluate(protocol, s);
  MonteCarloOptions mc;
  mc.replicates = 300;
  const auto sim = monte_carlo(protocol, s, {}, mc);
  const double diff = std::fabs(sim.waste.mean() - model.waste());
  // Paper, Section V-A: the gap peaks at ~0.12 at the smallest MTBF and
  // "quickly decreases to below 5%".
  const double tolerance = mtbf_min <= 60.0 ? 0.12 : 0.05;
  EXPECT_LT(diff, tolerance)
      << to_string(protocol) << " mtbf=" << mtbf_min << " alpha=" << alpha
      << " model=" << model.waste() << " sim=" << sim.waste.mean();
}

INSTANTIATE_TEST_SUITE_P(
    Fig7Grid, SimVsModel,
    ::testing::Values(
        GridPoint{60, 0.0, Protocol::PurePeriodicCkpt},
        GridPoint{60, 0.5, Protocol::PurePeriodicCkpt},
        GridPoint{120, 0.5, Protocol::PurePeriodicCkpt},
        GridPoint{240, 0.8, Protocol::PurePeriodicCkpt},
        GridPoint{60, 0.5, Protocol::BiPeriodicCkpt},
        GridPoint{120, 0.8, Protocol::BiPeriodicCkpt},
        GridPoint{240, 1.0, Protocol::BiPeriodicCkpt},
        GridPoint{60, 0.5, Protocol::AbftPeriodicCkpt},
        GridPoint{60, 0.9, Protocol::AbftPeriodicCkpt},
        GridPoint{120, 0.8, Protocol::AbftPeriodicCkpt},
        GridPoint{240, 0.2, Protocol::AbftPeriodicCkpt},
        GridPoint{240, 1.0, Protocol::AbftPeriodicCkpt}));

}  // namespace

// Tests for the ABFT-protected Householder QR factorization.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

#include "abft/abft_qr.hpp"
#include "abft/blas.hpp"

namespace {

using namespace abftc;
using abft::AbftQr;
using abft::Matrix;
using abft::ProcessGrid;

Matrix rnd(std::size_t n, std::uint64_t seed = 9) {
  common::Rng rng(seed);
  return Matrix::random(n, n, rng);
}

/// ||upper-triangle mismatch of QᵀA vs R|| and the below-diagonal residue.
void expect_qr_valid(const AbftQr& qr, const Matrix& a, double tol) {
  const Matrix qta = qr.apply_q_transpose(a);
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      if (i <= j) {
        EXPECT_NEAR(qta(i, j), qr.qr()(i, j), tol) << i << "," << j;
      } else {
        EXPECT_NEAR(qta(i, j), 0.0, tol) << i << "," << j;
      }
    }
}

TEST(AbftQr, FactorsAndReproducesR) {
  const std::size_t n = 64, nb = 8;
  const Matrix a = rnd(n);
  AbftQr qr(a, nb, ProcessGrid{2, 2});
  qr.factor();
  expect_qr_valid(qr, a, 1e-10);
}

TEST(AbftQr, QIsOrthogonal) {
  const std::size_t n = 48, nb = 8;
  const Matrix a = rnd(n);
  AbftQr qr(a, nb, ProcessGrid{2, 3});
  qr.factor();
  // Q·Qᵀ·x == x for a probe matrix.
  const Matrix probe = rnd(n, 31);
  const Matrix round_trip = qr.apply_q(qr.apply_q_transpose(probe));
  EXPECT_LT(abft::max_abs_diff(round_trip, probe), 1e-10);
}

TEST(AbftQr, ChecksumInvariantHolds) {
  AbftQr qr(rnd(64), 8, ProcessGrid{2, 2});
  qr.factor();
  EXPECT_LT(qr.checksum_residual(), 1e-10);
}

class AbftQrFaultTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AbftQrFaultTest, RecoversAtAnyStep) {
  const auto [step, rank] = GetParam();
  const std::size_t n = 96, nb = 8;  // 12 block cols, grid 2x3
  const Matrix a = rnd(n);
  AbftQr qr(a, nb, ProcessGrid{2, 3});
  qr.factor({{step, rank}});
  EXPECT_GT(qr.recovery().blocks_recovered, 0u);
  expect_qr_valid(qr, a, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    StepsAndRanks, AbftQrFaultTest,
    ::testing::Combine(::testing::Values(0u, 3u, 7u, 12u),
                       ::testing::Values(0u, 2u, 4u)));

TEST(AbftQr, SameGridRowSimultaneousIsUnrecoverable) {
  // Column-checksum protection: ranks sharing a grid ROW kill both members
  // of a (column-group, row) pair.
  const Matrix a = rnd(96);
  AbftQr qr(a, 8, ProcessGrid{2, 3});
  // Ranks 0 = (0,0) and 1 = (0,1) share grid row 0.
  EXPECT_THROW(qr.factor({{5, 0}, {5, 1}}), abft::unrecoverable_error);
}

TEST(AbftQr, SameGridColumnSimultaneousRecovers) {
  const Matrix a = rnd(96);
  AbftQr qr(a, 8, ProcessGrid{2, 3});
  // Ranks 0 = (0,0) and 3 = (1,0) share a grid column: fine for column
  // checksums (the transpose of the LU case).
  qr.factor({{5, 0}, {5, 3}});
  expect_qr_valid(qr, a, 1e-8);
}

// --- Compact-WY blocked kernel path ----------------------------------------

TEST(AbftQr, BlockedPolicyMatchesNaiveResiduals) {
  const std::size_t n = 128, nb = 16;
  const Matrix a = rnd(n);
  abft::KernelPolicyGuard naive_guard(
      {abft::KernelPath::naive, 1});
  AbftQr qr_naive(a, nb, ProcessGrid{2, 2});
  qr_naive.factor();
  expect_qr_valid(qr_naive, a, 1e-10);
  EXPECT_LT(qr_naive.checksum_residual(), 1e-10);

  abft::KernelPolicyGuard blocked_guard(
      {abft::KernelPath::blocked, 2});
  AbftQr qr_blocked(a, nb, ProcessGrid{2, 2});
  qr_blocked.factor();
  expect_qr_valid(qr_blocked, a, 1e-10);
  EXPECT_LT(qr_blocked.checksum_residual(), 1e-10);

  // The two paths agree on the compact factor to rounding.
  EXPECT_LT(abft::max_abs_diff(qr_naive.qr(), qr_blocked.qr()), 1e-9);
}

TEST(AbftQr, BlockedPolicyBitwiseInvariantAcrossWorkerCounts) {
  const std::size_t n = 128, nb = 16;
  const Matrix a = rnd(n);
  Matrix factors[3];
  int idx = 0;
  for (const unsigned workers : {1u, 2u, 4u}) {
    abft::KernelPolicyGuard guard({abft::KernelPath::blocked, workers});
    AbftQr qr(a, nb, ProcessGrid{2, 2});
    qr.factor();
    factors[idx++] = qr.qr();
  }
  EXPECT_EQ(abft::max_abs_diff(factors[0], factors[1]), 0.0);
  EXPECT_EQ(abft::max_abs_diff(factors[0], factors[2]), 0.0);
}

TEST(AbftQr, BlockedPolicyRecoversFromRankKill) {
  // Rank-kill reconstruction after blocked-path factorization steps: the
  // checksum columns must have been carried exactly by the compact-WY
  // application for the subtraction-based reconstruction to work.
  const std::size_t n = 96, nb = 8;
  const Matrix a = rnd(n);
  abft::KernelPolicyGuard guard({abft::KernelPath::blocked, 2});
  for (const std::size_t step : {0u, 5u, 12u}) {
    AbftQr qr(a, nb, ProcessGrid{2, 3});
    qr.factor({{step, 2}});
    EXPECT_GT(qr.recovery().blocks_recovered, 0u) << "step=" << step;
    expect_qr_valid(qr, a, 1e-8);
    EXPECT_LT(qr.checksum_residual(), 1e-8) << "step=" << step;
  }
}

TEST(AbftQr, ApplyQRoundTripUnderBlockedPolicy) {
  // apply_q routes through the reverse compact-WY applicator; Q·Qᵀ·x == x
  // checks it against apply_q_transpose's forward applicator.
  const std::size_t n = 96, nb = 16;
  const Matrix a = rnd(n);
  abft::KernelPolicyGuard guard({abft::KernelPath::blocked, 2});
  AbftQr qr(a, nb, ProcessGrid{2, 3});
  qr.factor();
  const Matrix probe = rnd(n, 77);
  const Matrix round_trip = qr.apply_q(qr.apply_q_transpose(probe));
  EXPECT_LT(abft::max_abs_diff(round_trip, probe), 1e-10);
}

// The cached per-panel compact-WY operators must be invisible in the
// results: applying Q / Qᵀ through the cache (populated at factor time)
// has to agree bitwise with the rebuild path, which re-derives V/T from
// the stored factors on every application — the pre-cache behavior,
// reachable via drop_wy_cache().
TEST(AbftQr, CachedWyBitwiseMatchesRebuiltApplication) {
  const std::size_t n = 96, nb = 16;
  const Matrix a = rnd(n, 77);
  const Matrix probe = rnd(n, 78);
  abft::KernelPolicyGuard guard({abft::KernelPath::blocked, 2});

  AbftQr cached(a, nb, ProcessGrid{2, 2});
  cached.factor();
  AbftQr rebuilt(a, nb, ProcessGrid{2, 2});
  rebuilt.factor();
  // Same input, same policy: both factorizations are bitwise identical.
  EXPECT_EQ(abft::max_abs_diff(cached.qr(), rebuilt.qr()), 0.0);
  rebuilt.drop_wy_cache();

  EXPECT_EQ(abft::max_abs_diff(cached.apply_q_transpose(probe),
                               rebuilt.apply_q_transpose(probe)),
            0.0);
  EXPECT_EQ(
      abft::max_abs_diff(cached.apply_q(probe), rebuilt.apply_q(probe)),
      0.0);
}

// After a recovery rewrote a frozen block column, the invalidated cache
// entry must make the instance behave exactly like the rebuild path again
// (the reconstructed V differs from the original, so a stale cache would
// silently apply pre-fault reflectors).
TEST(AbftQr, RecoveryInvalidatedCacheMatchesRebuild) {
  const std::size_t n = 96, nb = 16;
  const Matrix a = rnd(n, 79);
  const Matrix probe = rnd(n, 80);
  abft::KernelPolicyGuard guard({abft::KernelPath::blocked, 2});

  const std::vector<AbftQr::Fault> faults = {{4, 1}};
  AbftQr faulted(a, nb, ProcessGrid{2, 2});
  faulted.factor(faults);
  AbftQr faulted_nocache(a, nb, ProcessGrid{2, 2});
  faulted_nocache.factor(faults);
  faulted_nocache.drop_wy_cache();

  EXPECT_EQ(abft::max_abs_diff(faulted.apply_q_transpose(probe),
                               faulted_nocache.apply_q_transpose(probe)),
            0.0);
  EXPECT_EQ(abft::max_abs_diff(faulted.apply_q(probe),
                               faulted_nocache.apply_q(probe)),
            0.0);
}

TEST(AbftQr, RejectsGridMisalignment) {
  // 96/8 = 12 block cols; pcols = 5 does not divide 12.
  EXPECT_THROW(AbftQr(rnd(96), 8, ProcessGrid{2, 5}),
               common::precondition_error);
}

}  // namespace

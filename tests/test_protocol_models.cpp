// Tests for the three protocol waste models (Sections IV-B/IV-C), including
// the claims the paper makes about their qualitative behaviour.

#include <gtest/gtest.h>

#include "common/time_units.hpp"
#include "core/protocol_models.hpp"

namespace {

using namespace abftc;
using namespace abftc::core;
using common::hours;
using common::minutes;
using common::weeks;

TEST(PureModel, WasteIndependentOfAlpha) {
  for (const double mtbf : {hours(1), hours(2), hours(4)}) {
    const double w0 = evaluate_pure(figure7_scenario(mtbf, 0.0)).waste();
    for (const double alpha : {0.2, 0.5, 0.8, 1.0}) {
      EXPECT_NEAR(evaluate_pure(figure7_scenario(mtbf, alpha)).waste(), w0,
                  1e-12);
    }
  }
}

TEST(PureModel, WasteDecreasesWithMtbf) {
  double prev = 1.0;
  for (const double mtbf_min : {60.0, 90.0, 120.0, 180.0, 240.0}) {
    const double w =
        evaluate_pure(figure7_scenario(minutes(mtbf_min), 0.5)).waste();
    EXPECT_LT(w, prev);
    prev = w;
  }
}

TEST(PureModel, UsesYoungDalyPeriod) {
  const auto s = figure7_scenario(hours(2), 0.5);
  const auto m = evaluate_pure(s);
  const auto p = optimal_period_first_order(
      s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
      s.ckpt.full_recovery);
  EXPECT_DOUBLE_EQ(m.period_general, *p);
}

TEST(PureModel, FreeCheckpointLimit) {
  auto s = figure7_scenario(hours(2), 0.5);
  s.ckpt.full_cost = 0.0;
  s.ckpt.full_recovery = 0.0;
  const auto m = evaluate_pure(s);
  // Only downtime remains: waste = D/(µ) to first order.
  EXPECT_NEAR(m.waste(), s.platform.downtime / s.platform.mtbf, 1e-3);
}

TEST(BiModel, EqualsPureWhenAlphaZero) {
  const auto s = figure7_scenario(hours(2), 0.0);
  EXPECT_NEAR(evaluate_bi(s).waste(), evaluate_pure(s).waste(), 1e-12);
}

TEST(BiModel, LongPhasesUseEquationThirteenFourteen) {
  const auto s = figure7_scenario(hours(2), 0.5);  // 3.5-day phases: long
  const auto m = evaluate_bi(s);
  EXPECT_FALSE(m.bi_stream);
  // Library period follows Eq. (14) with C_L = ρC.
  const auto pl = optimal_period_first_order(
      s.ckpt.library_cost(), s.platform.mtbf, s.platform.downtime,
      s.ckpt.full_recovery);
  EXPECT_DOUBLE_EQ(m.period_library, *pl);
  EXPECT_GT(m.period_general, m.period_library);  // C > C_L
}

TEST(BiModel, BetterThanPureForPositiveAlpha) {
  for (const double alpha : {0.3, 0.5, 0.8, 1.0}) {
    const auto s = figure7_scenario(hours(2), alpha);
    EXPECT_LT(evaluate_bi(s).waste(), evaluate_pure(s).waste())
        << "alpha = " << alpha;
  }
}

TEST(BiModel, GainGrowsWithAlpha) {
  double prev_gain = -1.0;
  for (const double alpha : {0.2, 0.5, 0.8, 1.0}) {
    const auto s = figure7_scenario(hours(2), alpha);
    const double gain =
        evaluate_pure(s).waste() - evaluate_bi(s).waste();
    EXPECT_GT(gain, prev_gain) << "alpha = " << alpha;
    prev_gain = gain;
  }
}

TEST(BiModel, ShortPhasesUseAveragedStream) {
  auto s = figure7_scenario(hours(2), 0.8);
  s.epoch.duration = minutes(30);  // phases far below the optimal period
  s.epochs = 336;
  const auto m = evaluate_bi(s);
  EXPECT_TRUE(m.bi_stream);
  const double avg = 0.2 * s.ckpt.full_cost + 0.8 * s.ckpt.library_cost();
  EXPECT_DOUBLE_EQ(m.stream_ckpt, avg);
  // Still cheaper than pure (whose checkpoints always cost C).
  EXPECT_LT(m.waste(), evaluate_pure(s).waste());
}

TEST(CompositeModel, TendsToAbftOverheadAtAlphaOne) {
  const auto s = figure7_scenario(hours(1000), 1.0);
  const auto m = evaluate_composite(s);
  EXPECT_TRUE(m.abft_active);
  EXPECT_NEAR(m.waste(), 1.0 - 1.0 / s.abft.phi, 2e-3);
}

TEST(CompositeModel, EqualsPureishAtAlphaZero) {
  const auto s = figure7_scenario(hours(2), 0.0);
  const auto c = evaluate_composite(s);
  EXPECT_FALSE(c.abft_active);
  EXPECT_NEAR(c.waste(), evaluate_pure(s).waste(), 1e-6);
}

TEST(CompositeModel, BeatsBothAtHighAlphaSmallMtbf) {
  const auto s = figure7_scenario(minutes(60), 0.8);
  const double comp = evaluate_composite(s).waste();
  EXPECT_LT(comp, evaluate_pure(s).waste());
  EXPECT_LT(comp, evaluate_bi(s).waste());
}

TEST(CompositeModel, LibraryPhaseHasNoPeriod) {
  const auto m = evaluate_composite(figure7_scenario(hours(2), 0.8));
  EXPECT_TRUE(m.abft_active);
  EXPECT_EQ(m.period_library, 0.0);  // periodic ckpt disabled under ABFT
}

TEST(CompositeModel, SafeguardFallsBackToBi) {
  auto s = figure7_scenario(hours(2), 0.8);
  s.epoch.duration = minutes(10);  // tiny library calls
  s.epochs = 1008;
  const auto guarded = evaluate_composite(s, {.safeguard = true});
  EXPECT_FALSE(guarded.abft_active);
  EXPECT_NEAR(guarded.waste(), evaluate_bi(s).waste(), 1e-12);
  const auto always = evaluate_composite(s, {.safeguard = false});
  EXPECT_TRUE(always.abft_active);
  EXPECT_GT(always.waste(), guarded.waste());  // forced ckpts dominate
}

TEST(CompositeModel, GeneralPhaseEntryCheckpointWhenShort) {
  // With T_G below the optimal period the phase is one segment closed by
  // the C_L̄ entry checkpoint: t_ff = T_G + C_L̄ (Eq. 9). At α = 0.999,
  // T_G ≈ 10 min while P_opt ≈ 47 min.
  auto s = figure7_scenario(hours(2), 0.999);
  const auto m = evaluate_composite(s);
  const double tg = s.epoch.general();
  ASSERT_LT(tg, m.period_general);
  EXPECT_DOUBLE_EQ(m.general.t_ff, tg + s.ckpt.remainder_cost());
}

TEST(CompositeModel, AbftRecoveryCostMatchesEquationEight) {
  const auto s = figure7_scenario(hours(2), 0.8);
  const auto m = evaluate_composite(s);
  EXPECT_DOUBLE_EQ(m.library.t_lost, s.platform.downtime +
                                         s.ckpt.remainder_recovery() +
                                         s.abft.recons);
}

TEST(AllModels, WasteWithinUnitInterval) {
  for (const double mtbf_min : {60.0, 120.0, 240.0})
    for (const double alpha : {0.0, 0.3, 0.7, 1.0})
      for (const auto p :
           {Protocol::PurePeriodicCkpt, Protocol::BiPeriodicCkpt,
            Protocol::AbftPeriodicCkpt}) {
        const double w =
            evaluate(p, figure7_scenario(minutes(mtbf_min), alpha)).waste();
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
      }
}

TEST(AllModels, DivergedRegimeReportsUnitWaste) {
  ScenarioParams s = figure7_scenario(minutes(15), 0.5);
  // µ = 15 min < D + R = 11 min leaves no feasible period, and segments
  // diverge too.
  s.ckpt.full_cost = minutes(20);
  s.ckpt.full_recovery = minutes(20);
  const auto pure = evaluate_pure(s);
  EXPECT_TRUE(pure.diverged);
  EXPECT_EQ(pure.waste(), 1.0);
  // The composite survives: ABFT recovery is much cheaper than µ.
  const auto comp = evaluate_composite(s);
  EXPECT_TRUE(comp.abft_active);
}

TEST(AllModels, ToStringNames) {
  EXPECT_EQ(to_string(Protocol::PurePeriodicCkpt), "PurePeriodicCkpt");
  EXPECT_EQ(to_string(Protocol::BiPeriodicCkpt), "BiPeriodicCkpt");
  EXPECT_EQ(to_string(Protocol::AbftPeriodicCkpt), "ABFT&PeriodicCkpt");
}

TEST(AllModels, ValidationRejectsNonsense) {
  ScenarioParams s = figure7_scenario(hours(2), 0.5);
  s.abft.phi = 0.5;
  EXPECT_THROW(evaluate_composite(s), common::precondition_error);
  s = figure7_scenario(hours(2), 0.5);
  s.epoch.alpha = 1.5;
  EXPECT_THROW(evaluate_pure(s), common::precondition_error);
  s = figure7_scenario(hours(2), 0.5);
  s.platform.mtbf = -1;
  EXPECT_THROW(evaluate_bi(s), common::precondition_error);
}

}  // namespace

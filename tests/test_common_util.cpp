// Tests for tables, CLI parsing, time units, parallel_for and error macros.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"

namespace {

using namespace abftc::common;

TEST(TimeUnits, Conversions) {
  EXPECT_DOUBLE_EQ(minutes(10), 600.0);
  EXPECT_DOUBLE_EQ(hours(2), 7200.0);
  EXPECT_DOUBLE_EQ(days(1), 86400.0);
  EXPECT_DOUBLE_EQ(weeks(1), 604800.0);
}

TEST(TimeUnits, FormatAdaptsUnits) {
  EXPECT_EQ(format_duration(0.0005), "500us");
  EXPECT_EQ(format_duration(0.25), "250ms");
  EXPECT_EQ(format_duration(90.0), "90s");
  EXPECT_EQ(format_duration(600.0), "10min");
  EXPECT_EQ(format_duration(7200.0), "2h");
  EXPECT_EQ(format_duration(604800.0), "7d");
  EXPECT_EQ(format_duration(2 * 604800.0), "2w");
}

TEST(Table, AlignsAndCounts) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row_values({1.5, 2.25, 1e6});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
  EXPECT_THROW(Table({}), precondition_error);
}

TEST(Table, GridPrintsAxes) {
  std::ostringstream os;
  print_grid(os, "demo", "x", {1.0, 2.0}, "y", {0.5, 0.7},
             {{0.1, 0.2}, {0.3, 0.4}});
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("0.300"), std::string::npos);
}

TEST(Table, GridValidatesShape) {
  std::ostringstream os;
  EXPECT_THROW(
      print_grid(os, "demo", "x", {1.0, 2.0}, "y", {0.5}, {{0.1}}),
      precondition_error);
}

TEST(Fmt, Helpers) {
  EXPECT_EQ(fmt_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.1234, 1), "12.3%");
}

TEST(Cli, ParsesAllForms) {
  // NB: a bare switch followed by a positional token would swallow it as a
  // value, so bare switches go last (documented parser behaviour).
  const char* argv[] = {"prog",       "--alpha=0.5", "--reps", "100",
                        "positional", "--switch",    nullptr};
  ArgParser args(6, argv);
  EXPECT_DOUBLE_EQ(args.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(args.get_int("reps", 0), 100);
  EXPECT_TRUE(args.get_bool("switch", false));
  EXPECT_FALSE(args.get_bool("absent", false));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=off", nullptr};
  ArgParser args(4, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_FALSE(args.get_bool("c", true));
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--x=abc", nullptr};
  ArgParser args(2, argv);
  EXPECT_THROW((void)args.get_double("x", 0.0), precondition_error);
  EXPECT_THROW((void)args.get_int("x", 0), precondition_error);
}

TEST(Cli, ParsesListValues) {
  const char* argv[] = {"prog", "--alpha=0.0,0.45,0.8", "--name=a,b",
                        "--solo=1.5", nullptr};
  ArgParser args(4, argv);
  const auto alphas = args.get_double_list("alpha", {});
  ASSERT_EQ(alphas.size(), 3u);
  EXPECT_DOUBLE_EQ(alphas[0], 0.0);
  EXPECT_DOUBLE_EQ(alphas[1], 0.45);
  EXPECT_DOUBLE_EQ(alphas[2], 0.8);
  EXPECT_EQ(args.get_list("name", {}),
            (std::vector<std::string>{"a", "b"}));
  // A single value (no comma) is a one-element list.
  const auto solo = args.get_double_list("solo", {});
  ASSERT_EQ(solo.size(), 1u);
  EXPECT_DOUBLE_EQ(solo[0], 1.5);
  // Absent flag -> default.
  const auto def = args.get_double_list("absent", {1.0, 2.0});
  ASSERT_EQ(def.size(), 2u);
  EXPECT_DOUBLE_EQ(def[1], 2.0);
}

TEST(Cli, RejectsMalformedLists) {
  const char* argv[] = {"prog", "--a=1,,2", "--b=1,x", "--c=", nullptr};
  ArgParser args(4, argv);
  EXPECT_THROW((void)args.get_list("a"), precondition_error);
  EXPECT_THROW((void)args.get_double_list("b"), precondition_error);
  EXPECT_THROW((void)args.get_list("c"), precondition_error);
}

TEST(KeyValues, ParsesStructuredSpecs) {
  const auto items = parse_key_values("steps:0-12,ranks:0-3,direct");
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].key, "steps");
  EXPECT_EQ(items[0].value, "0-12");
  EXPECT_EQ(items[1].key, "ranks");
  EXPECT_EQ(items[1].value, "0-3");
  EXPECT_EQ(items[2].key, "direct");  // bare switch: empty value
  EXPECT_EQ(items[2].value, "");

  // Custom separators (the --storage option syntax).
  const auto opts = parse_key_values("mb=16&sync=1", '&', '=');
  ASSERT_EQ(opts.size(), 2u);
  EXPECT_EQ(opts[0].key, "mb");
  EXPECT_EQ(opts[0].value, "16");

  // Duplicates are kept in order; find_key_value returns the first.
  const auto dup = parse_key_values("k:1,k:2");
  ASSERT_EQ(dup.size(), 2u);
  EXPECT_EQ(find_key_value(dup, "k"), "1");
  EXPECT_EQ(find_key_value(dup, "absent"), std::nullopt);
}

TEST(KeyValues, RejectsEmptyItemsAndKeys) {
  EXPECT_THROW((void)parse_key_values(""), precondition_error);
  EXPECT_THROW((void)parse_key_values("a:1,,b:2"), precondition_error);
  EXPECT_THROW((void)parse_key_values(":1"), precondition_error);
}

TEST(Cli, ParsesKeyValueFlags) {
  const char* argv[] = {"prog", "--campaign=steps:0-5,kinds:kill", "--bad=",
                        nullptr};
  ArgParser args(3, argv);
  const auto items = args.get_key_values("campaign");
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].key, "steps");
  EXPECT_EQ(items[0].value, "0-5");
  EXPECT_EQ(items[1].key, "kinds");
  EXPECT_EQ(items[1].value, "kill");

  // Absent flag -> default; present-but-empty flag is malformed.
  const auto def = args.get_key_values("absent", {{"k", "v"}});
  ASSERT_EQ(def.size(), 1u);
  EXPECT_EQ(def[0].key, "k");
  EXPECT_THROW((void)args.get_key_values("bad"), precondition_error);
}

TEST(Cli, WarnsOnUnknownFlags) {
  const char* argv[] = {"prog", "--reps=3", "--typo-flag=1", "--other",
                        nullptr};
  ArgParser args(4, argv);
  EXPECT_EQ(args.get_int("reps", 0), 3);
  const auto unknown = args.unknown();
  ASSERT_EQ(unknown.size(), 2u);  // typo-flag and other were never read
  EXPECT_EQ(unknown[0], "other");
  EXPECT_EQ(unknown[1], "typo-flag");
  std::ostringstream os;
  EXPECT_EQ(args.warn_unknown(os), 2u);
  EXPECT_NE(os.str().find("warning: unknown flag --typo-flag (ignored)"),
            std::string::npos);
  // Reading a flag (even via has()) marks it known.
  EXPECT_TRUE(args.has("other"));
  EXPECT_EQ(args.unknown(), std::vector<std::string>{"typo-flag"});
}

TEST(ParallelFor, ComputesAllIndices) {
  std::vector<std::atomic<int>> hits(257);
  parallel_for(257, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialAndParallelAgree) {
  std::atomic<long long> sum{0};
  parallel_for(1000, [&](std::size_t i) { sum += static_cast<long long>(i); },
               1);
  const long long serial = sum.exchange(0);
  parallel_for(1000, [&](std::size_t i) { sum += static_cast<long long>(i); },
               8);
  EXPECT_EQ(serial, sum.load());
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallel_for(
          100,
          [](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; }, 4);
}

std::atomic<int> g_free_fn_hits{0};
void free_fn_body(std::size_t) { g_free_fn_hits.fetch_add(1); }

TEST(ParallelFor, AcceptsPlainFunctions) {
  g_free_fn_hits = 0;
  parallel_for(64, free_fn_body, 4);
  EXPECT_EQ(g_free_fn_hits.load(), 64);
}

// Contract since the persistent executor: the first exception stops the
// loop — remaining chunks are abandoned, not attempted. Serially that means
// nothing past the throwing index runs; in parallel some in-flight chunks
// may still finish, but never the full index space.
TEST(ParallelFor, ShortCircuitsAfterFirstException) {
  std::atomic<int> hits{0};
  EXPECT_THROW(
      parallel_for(
          100,
          [&](std::size_t i) {
            if (i == 37) throw std::runtime_error("boom");
            hits.fetch_add(1);
          },
          1),
      std::runtime_error);
  EXPECT_EQ(hits.load(), 37) << "serial: indices past the throw must not run";

  // Index 0 lives in the first chunk claimed, so the stop flag is raised
  // almost immediately; the index space is far too large for the other
  // participants to drain it inside that window.
  constexpr int kBig = 100000;
  for (const Dispatch dispatch :
       {Dispatch::Pool, Dispatch::Spawn}) {
    hits = 0;
    EXPECT_THROW(
        parallel_for(
            kBig,
            [&](std::size_t i) {
              if (i == 0) throw std::runtime_error("boom");
              hits.fetch_add(1);
            },
            4, dispatch),
        std::runtime_error);
    EXPECT_LT(hits.load(), kBig - 1) << "parallel: loop must short-circuit";
  }
}

TEST(ErrorMacros, CarryContext) {
  try {
    ABFTC_REQUIRE(1 == 2, "custom message");
    FAIL() << "should have thrown";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message"), std::string::npos);
  }
  EXPECT_THROW(ABFTC_CHECK(false, "invariant"), invariant_error);
}

}  // namespace

// Tests for the ABFT-protected LU factorization: numerical correctness,
// checksum invariants at every step boundary, and recovery from injected
// rank failures at arbitrary points of the factorization.

#include <gtest/gtest.h>

#include "abft/abft_lu.hpp"
#include "abft/blas.hpp"

namespace {

using namespace abftc;
using abft::AbftLu;
using abft::Matrix;
using abft::ProcessGrid;

Matrix test_matrix(std::size_t n, std::uint64_t seed = 7) {
  common::Rng rng(seed);
  return Matrix::diag_dominant(n, rng);
}

TEST(AbftLu, FactorsWithoutFaultsMatchesPlainLu) {
  const std::size_t n = 96, nb = 8;
  Matrix a = test_matrix(n);
  Matrix plain = a;
  abft::plain_blocked_lu(plain, nb);

  AbftLu lu(a, nb, ProcessGrid{2, 3});
  lu.factor();
  EXPECT_LT(abft::max_abs_diff(lu.lu(), plain), 1e-9);
}

TEST(AbftLu, ProductReconstructionMatchesInput) {
  const std::size_t n = 64, nb = 8;
  const Matrix a = test_matrix(n);
  AbftLu lu(a, nb, ProcessGrid{2, 2});
  lu.factor();
  EXPECT_LT(abft::relative_error(lu.reconstruct_product(), a), 1e-12);
}

TEST(AbftLu, ChecksumInvariantHoldsAfterFactorization) {
  AbftLu lu(test_matrix(80), 8, ProcessGrid{2, 2});
  lu.factor();
  // Residual scales with the magnitude of the factors; diag-dominant test
  // matrices keep entries O(n), so 1e-6 is ~12 digits of agreement.
  EXPECT_LT(lu.checksum_residual(), 1e-6);
}

TEST(AbftLu, WeightedAccumulatorsTrackTheFactorization) {
  const std::size_t n = 80, nb = 8, prows = 2;
  AbftLu lu(test_matrix(n), nb, ProcessGrid{prows, 2});
  lu.factor();
  // checksum_residual() already gates all four relations; additionally pin
  // the weighted pair's endpoint state: with everything frozen, the frozen
  // accumulator equals the position-weighted checksums recomputed from the
  // final factors (same addition order → bitwise), and the active one has
  // been drained to rounding noise.
  const Matrix expect =
      abft::row_group_weighted_checksums(lu.lu(), nb, prows);
  EXPECT_EQ(abft::max_abs_diff(lu.weighted_frozen_cs(), expect), 0.0);
  EXPECT_LT(lu.weighted_active_cs().max_abs(), 1e-6);
}

TEST(AbftLu, SolvesLinearSystems) {
  const std::size_t n = 64;
  const Matrix a = test_matrix(n);
  std::vector<double> x_true(n);
  for (std::size_t i = 0; i < n; ++i)
    x_true[i] = static_cast<double>(i % 13) - 6.0;
  std::vector<double> b;
  abft::gemv(a.view(), x_true, b);

  AbftLu lu(a, 8, ProcessGrid{2, 2});
  lu.factor();
  const auto x = abft::lu_solve(lu.lu(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

// --- fault injection -------------------------------------------------------

class AbftLuFaultTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AbftLuFaultTest, RecoversFromRankLossAtAnyStep) {
  const auto [step, rank] = GetParam();
  const std::size_t n = 96, nb = 8;  // 12 block steps, grid 2x3 = 6 ranks
  const Matrix a = test_matrix(n);

  AbftLu lu(a, nb, ProcessGrid{2, 3});
  lu.factor({{step, rank}});
  EXPECT_GT(lu.recovery().blocks_recovered, 0u);
  EXPECT_LT(abft::relative_error(lu.reconstruct_product(), a), 1e-9)
      << "fault at step " << step << ", rank " << rank;
}

INSTANTIATE_TEST_SUITE_P(
    StepsAndRanks, AbftLuFaultTest,
    ::testing::Combine(::testing::Values(0u, 1u, 3u, 6u, 11u, 12u),
                       ::testing::Values(0u, 2u, 5u)));

TEST(AbftLu, RecoversFromTwoFaultsAtDifferentSteps) {
  const std::size_t n = 96, nb = 8;
  const Matrix a = test_matrix(n);
  AbftLu lu(a, nb, ProcessGrid{2, 3});
  lu.factor({{2, 1}, {7, 4}});
  EXPECT_EQ(lu.recovery().recoveries, 2u);
  EXPECT_LT(abft::relative_error(lu.reconstruct_product(), a), 1e-9);
}

TEST(AbftLu, SimultaneousFaultsOnSameGridColumnAreUnrecoverable) {
  const std::size_t n = 96, nb = 8;
  const Matrix a = test_matrix(n);
  AbftLu lu(a, nb, ProcessGrid{2, 3});
  // Ranks 0 = (0,0) and 3 = (1,0) sit in the same grid column: for every
  // column block ≡ 0 (mod 3), both members of each row group are lost, so
  // the single row checksum cannot determine either block.
  EXPECT_THROW(lu.factor({{3, 0}, {3, 3}}), abft::unrecoverable_error);
}

TEST(AbftLu, SimultaneousFaultsOnSameGridRowRecover) {
  const std::size_t n = 96, nb = 8;
  const Matrix a = test_matrix(n);
  AbftLu lu(a, nb, ProcessGrid{2, 3});
  // Ranks 0 = (0,0) and 1 = (0,1) share a grid row but never a
  // (row-group, column) pair: every lost block has its group partner alive.
  lu.factor({{3, 0}, {3, 1}});
  EXPECT_LT(abft::relative_error(lu.reconstruct_product(), a), 1e-9);
}

TEST(AbftLu, SimultaneousFaultsOnDistinctRowsAndColumnsRecover) {
  const std::size_t n = 96, nb = 8;
  const Matrix a = test_matrix(n);
  AbftLu lu(a, nb, ProcessGrid{2, 3});
  // Rank 0 = (0,0), rank 4 = (1,1): no shared row group, recoverable.
  lu.factor({{5, 0}, {5, 4}});
  EXPECT_LT(abft::relative_error(lu.reconstruct_product(), a), 1e-9);
}

TEST(AbftLu, RecoveryCountsMatchRankFootprint) {
  const std::size_t n = 96, nb = 8;  // 12x12 blocks, grid 2x3
  const Matrix a = test_matrix(n);
  AbftLu lu(a, nb, ProcessGrid{2, 3});
  lu.factor({{4, 3}});
  // Rank 3 owns (12/2)·(12/3) = 24 blocks.
  EXPECT_EQ(lu.recovery().blocks_recovered, 24u);
  EXPECT_EQ(lu.recovery().values_recovered, 24u * nb * nb);
}

TEST(AbftLu, OverheadFractionIsOneOverGridRows) {
  AbftLu lu(test_matrix(32), 8, ProcessGrid{4, 1});
  EXPECT_DOUBLE_EQ(lu.overhead_fraction(), 0.25);
}

TEST(AbftLu, RejectsMisalignedDimensions) {
  common::Rng rng(1);
  EXPECT_THROW(AbftLu(Matrix::diag_dominant(30, rng), 8, ProcessGrid{2, 2}),
               common::precondition_error);
  // 40/8 = 5 block rows is not a multiple of prows=2.
  EXPECT_THROW(AbftLu(Matrix::diag_dominant(40, rng), 8, ProcessGrid{2, 2}),
               common::precondition_error);
}

TEST(AbftLu, ZeroPivotIsReported) {
  Matrix a(16, 16, 0.0);  // singular
  AbftLu lu(a, 8, ProcessGrid{1, 1});
  EXPECT_THROW(lu.factor(), common::invariant_error);
}

}  // namespace

// Tests for the unified experiment engine: sweep grids (cardinality, exact
// endpoints), the evaluator registry, result sinks, thread-count invariance
// of the streamed output, and model-vs-sim agreement on the paper's
// Figure 7 operating point.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>

#include "common/json.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"

namespace {

using namespace abftc;
using core::Axis;
using core::AxisField;
using core::Combine;
using core::Metric;
using core::ScenarioSweep;

// ---- Sweep grids -----------------------------------------------------------

TEST(Sweep, CartesianCardinalityAndOrder) {
  ScenarioSweep sweep;
  sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  sweep.axes = {Axis::values("alpha", AxisField::Alpha, {0.0, 0.5, 1.0}),
                Axis::values("rho", AxisField::Rho, {0.1, 0.9})};
  EXPECT_EQ(sweep.cells(), 6u);

  // Row-major: the last axis varies fastest.
  EXPECT_EQ(sweep.coords(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(sweep.coords(1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sweep.coords(2), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(sweep.coords(5), (std::vector<std::size_t>{2, 1}));

  const auto s = sweep.scenario(3);  // alpha index 1, rho index 1
  EXPECT_DOUBLE_EQ(s.epoch.alpha, 0.5);
  EXPECT_DOUBLE_EQ(s.ckpt.rho, 0.9);
}

TEST(Sweep, ZipCardinalityAndMismatchRejection) {
  ScenarioSweep sweep;
  sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  sweep.combine = Combine::Zip;
  sweep.axes = {Axis::values("alpha", AxisField::Alpha, {0.2, 0.8}),
                Axis::values("rho", AxisField::Rho, {0.5, 0.9})};
  EXPECT_EQ(sweep.cells(), 2u);
  const auto s1 = sweep.scenario(1);
  EXPECT_DOUBLE_EQ(s1.epoch.alpha, 0.8);
  EXPECT_DOUBLE_EQ(s1.ckpt.rho, 0.9);

  sweep.axes[1] = Axis::values("rho", AxisField::Rho, {0.5, 0.7, 0.9});
  EXPECT_THROW((void)sweep.cells(), common::precondition_error);
}

TEST(Sweep, NoAxesMeansSingleBaseCell) {
  ScenarioSweep sweep;
  sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  EXPECT_EQ(sweep.cells(), 1u);
  EXPECT_DOUBLE_EQ(sweep.scenario(0).epoch.alpha, 0.5);
}

TEST(Sweep, StepAxisHitsEndpointsExactly) {
  // The drift-prone bench loop `for (a = 0; a <= 1 + 1e-9; a += 0.1)` ends
  // at 0.9999999999999999; the index-based axis must end at 1.0 exactly.
  const auto axis = Axis::step("alpha", AxisField::Alpha, 0.0, 1.0, 0.1);
  ASSERT_EQ(axis.size(), 11u);
  EXPECT_EQ(axis.grid.front(), 0.0);
  EXPECT_EQ(axis.grid.back(), 1.0);
  EXPECT_EQ(axis.grid[5], 0.5);

  const auto mtbf = Axis::step("mtbf", AxisField::Mtbf, 60.0, 240.0, 20.0);
  ASSERT_EQ(mtbf.size(), 10u);
  EXPECT_EQ(mtbf.grid.front(), 60.0);
  EXPECT_EQ(mtbf.grid[1], 80.0);
  EXPECT_EQ(mtbf.grid.back(), 240.0);

  // Non-dividing step: 60, 150, 240 (cells that fit below hi).
  const auto coarse = Axis::step("mtbf", AxisField::Mtbf, 60.0, 250.0, 90.0);
  ASSERT_EQ(coarse.size(), 3u);
  EXPECT_EQ(coarse.grid.back(), 240.0);
}

TEST(Sweep, LinspaceAndLogspaceEndpointsExact) {
  const auto lin = Axis::linspace("phi", AxisField::Phi, 1.0, 1.6, 7);
  ASSERT_EQ(lin.size(), 7u);
  EXPECT_EQ(lin.grid.front(), 1.0);
  EXPECT_EQ(lin.grid.back(), 1.6);

  const auto log = Axis::logspace("nodes", AxisField::Nodes, 1e3, 1e6, 4);
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log.grid.front(), 1e3);   // exact, not exp(log(1e3))
  EXPECT_EQ(log.grid.back(), 1e6);
  EXPECT_NEAR(log.grid[1], 1e4, 1e-8);
  EXPECT_NEAR(log.grid[2], 1e5, 1e-7);
}

TEST(Sweep, FieldBindingsApply) {
  ScenarioSweep sweep;
  sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  sweep.axes = {Axis::values("C", AxisField::CkptCost, {300.0})};
  const auto s = sweep.scenario(0);
  EXPECT_DOUBLE_EQ(s.ckpt.full_cost, 300.0);     // C = R moves both
  EXPECT_DOUBLE_EQ(s.ckpt.full_recovery, 300.0);

  sweep.axes = {Axis::custom("mtbf_min", {90.0},
                             [](core::ScenarioParams& p, double m) {
                               p.platform.mtbf = common::minutes(m);
                             })};
  EXPECT_DOUBLE_EQ(sweep.scenario(0).platform.mtbf, 5400.0);
}

// ---- Registry --------------------------------------------------------------

TEST(Registry, BuiltinsAndLookupByName) {
  auto& reg = core::EvaluatorRegistry::instance();
  ASSERT_NE(reg.find("model"), nullptr);
  ASSERT_NE(reg.find("sim"), nullptr);
  EXPECT_EQ(reg.find("model")->name(), "model");
  EXPECT_EQ(reg.find("no-such-evaluator"), nullptr);
  EXPECT_THROW((void)reg.at("no-such-evaluator"), common::precondition_error);
}

class ConstantEvaluator final : public core::Evaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "constant";
  }
  [[nodiscard]] core::EvalResult evaluate(
      core::Protocol, const core::ScenarioParams&,
      const core::EvalContext&) const override {
    core::EvalResult r;
    r.waste = 0.25;
    r.t_final = 42.0;
    return r;
  }
};

TEST(Registry, CustomEvaluatorPlugsIntoExperiments) {
  core::EvaluatorRegistry::instance().add(
      std::make_unique<ConstantEvaluator>());
  ASSERT_NE(core::EvaluatorRegistry::instance().find("constant"), nullptr);

  core::ExperimentSpec spec;
  spec.name = "custom";
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  spec.sweep.axes = {Axis::values("rho", AxisField::Rho, {0.2, 0.8})};
  spec.series = {{"c_pure", core::Protocol::PurePeriodicCkpt, "constant",
                  {}, {}}};
  const auto result = core::Experiment(std::move(spec)).run();
  ASSERT_EQ(result.cells.size(), 2u);
  EXPECT_DOUBLE_EQ(result.cells[1].series[0].waste, 0.25);
  EXPECT_DOUBLE_EQ(result.cells[1].series[0].t_final, 42.0);
}

// ---- Engine + sinks --------------------------------------------------------

core::ExperimentSpec small_fig7_spec(unsigned threads) {
  core::ExperimentSpec spec;
  spec.name = "fig7_smoke";
  spec.threads = threads;
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.0);
  spec.sweep.axes = {
      Axis::step("alpha", AxisField::Alpha, 0.0, 1.0, 0.5),
      Axis::custom("mtbf_min", core::step_grid(60.0, 240.0, 90.0),
                   [](core::ScenarioParams& s, double m) {
                     s.platform.mtbf = common::minutes(m);
                   })};
  core::MonteCarloOptions mc;
  mc.replicates = 50;
  spec.series = core::cross_series(
      {core::Protocol::PurePeriodicCkpt, core::Protocol::AbftPeriodicCkpt},
      {"model", "sim"}, {}, mc);
  return spec;
}

TEST(Experiment, JsonOutputInvariantUnderThreadCount) {
  std::string outputs[2];
  const unsigned thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    std::ostringstream os;
    core::JsonSink sink(os);
    core::Experiment experiment(small_fig7_spec(thread_counts[i]));
    experiment.add_sink(sink);
    (void)experiment.run();
    outputs[i] = os.str();
  }
  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1]) << "sink rows must be bitwise identical "
                                       "for any grid thread count";
  EXPECT_NE(outputs[0].find("\"bench\": \"fig7_smoke\""), std::string::npos);
  EXPECT_NE(outputs[0].find("\"model_pure.waste\""), std::string::npos);
}

TEST(Experiment, ResultsInvariantUnderThreadCount) {
  const auto r1 = core::Experiment(small_fig7_spec(1)).run();
  const auto r4 = core::Experiment(small_fig7_spec(4)).run();
  ASSERT_EQ(r1.cells.size(), r4.cells.size());
  for (std::size_t c = 0; c < r1.cells.size(); ++c)
    for (std::size_t s = 0; s < r1.cells[c].series.size(); ++s) {
      // Bitwise equality, not tolerance: replicate streams come from
      // Rng::split keyed on the replicate index, never on the scheduling.
      EXPECT_EQ(r1.cells[c].series[s].waste, r4.cells[c].series[s].waste);
      EXPECT_EQ(r1.cells[c].series[s].t_final, r4.cells[c].series[s].t_final);
    }
}

TEST(Experiment, GridAndColumnHelpers) {
  const auto result = core::Experiment(small_fig7_spec(1)).run();
  const std::size_t si = result.series_index("model_pure");
  const auto grid = result.grid(si, Metric::Waste);
  ASSERT_EQ(grid.size(), 3u);      // alpha axis
  ASSERT_EQ(grid[0].size(), 3u);   // mtbf axis
  const auto flat = result.column(si, Metric::Waste);
  ASSERT_EQ(flat.size(), 9u);
  EXPECT_EQ(grid[1][2], flat[1 * 3 + 2]);
  // PurePeriodicCkpt waste is independent of alpha (paper, Fig 7a).
  EXPECT_DOUBLE_EQ(grid[0][0], grid[2][0]);
  EXPECT_THROW((void)result.series_index("nope"), common::precondition_error);
}

TEST(Experiment, TableAndCsvSinksEmitAllRows) {
  std::ostringstream table_os, csv_os;
  core::TableSink table(table_os);
  core::CsvSink csv(csv_os);
  core::Experiment experiment(small_fig7_spec(1));
  experiment.add_sink(table).add_sink(csv);
  (void)experiment.run();

  const std::string t = table_os.str();
  EXPECT_NE(t.find("alpha"), std::string::npos);
  EXPECT_NE(t.find("sim_abft.waste"), std::string::npos);

  // CSV: header + one line per grid cell.
  const std::string c = csv_os.str();
  std::size_t lines = 0;
  for (const char ch : c) lines += ch == '\n';
  EXPECT_EQ(lines, 1u + 9u);
  EXPECT_EQ(c.rfind("alpha,mtbf_min,model_pure.waste", 0), 0u);
}

TEST(Experiment, RowFlushModeIsByteIdentical) {
  // Row-level flush is how the sweep service streams rows live; it must
  // never change the bytes, only when they reach the stream.
  std::ostringstream json_buf, json_flush, csv_buf, csv_flush;
  for (const bool flush : {false, true}) {
    core::JsonSink json(flush ? json_flush : json_buf);
    core::CsvSink csv(flush ? csv_flush : csv_buf);
    json.set_row_flush(flush);
    csv.set_row_flush(flush);
    core::Experiment experiment(small_fig7_spec(2));
    experiment.add_sink(json).add_sink(csv);
    (void)experiment.run();
  }
  EXPECT_FALSE(json_buf.str().empty());
  EXPECT_EQ(json_buf.str(), json_flush.str());
  EXPECT_EQ(csv_buf.str(), csv_flush.str());
}

TEST(Experiment, ConcurrentRunsShareRegistrySafely) {
  // The service runs many tenants' cells at once; the registry contract
  // (experiment.hpp) says concurrent Experiment::run calls are safe as
  // long as registration happened first. Run several experiments from
  // plain threads (TSan covers this test in CI) and require each output
  // to be bitwise-equal to a solo run of the same spec.
  std::string solo;
  {
    std::ostringstream os;
    core::JsonSink sink(os);
    core::Experiment experiment(small_fig7_spec(2));
    experiment.add_sink(sink);
    (void)experiment.run();
    solo = os.str();
  }
  constexpr int kRunners = 4;
  std::string outputs[kRunners];
  {
    std::vector<std::thread> runners;
    runners.reserve(kRunners);
    for (int r = 0; r < kRunners; ++r)
      runners.emplace_back([&, r] {
        std::ostringstream os;
        core::JsonSink sink(os);
        core::Experiment experiment(small_fig7_spec(2));
        experiment.add_sink(sink);
        (void)experiment.run();
        outputs[r] = os.str();
      });
    for (std::thread& t : runners) t.join();
  }
  for (const std::string& out : outputs) EXPECT_EQ(out, solo);
}

TEST(Experiment, QuantileColumnsAreOptIn) {
  // Default spec: no tail-metric columns — existing artifacts unchanged.
  std::ostringstream default_os;
  {
    core::JsonSink sink(default_os);
    core::Experiment experiment(small_fig7_spec(1));
    experiment.add_sink(sink);
    (void)experiment.run();
  }
  EXPECT_EQ(default_os.str().find("waste_p50"), std::string::npos);
  EXPECT_EQ(default_os.str().find("waste_hist"), std::string::npos);

  core::ExperimentSpec spec = small_fig7_spec(1);
  spec.emit_quantiles = true;
  spec.quantile_hist_bins = 4;
  std::ostringstream os;
  core::JsonSink sink(os);
  core::Experiment experiment(std::move(spec));
  experiment.add_sink(sink);
  const auto result = experiment.run();

  const std::string json = os.str();
  EXPECT_NE(json.find("\"sim_pure.waste_p50\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_pure.waste_hist_3\""), std::string::npos);
  // Model series carry the columns but no sample: rendered as null.
  EXPECT_NE(json.find("\"model_pure.waste_p50\": null"), std::string::npos);

  const auto& sim = result.cells[0].series[result.series_index("sim_pure")];
  EXPECT_TRUE(std::isfinite(sim.waste_p50));
  EXPECT_LE(sim.waste_p50, sim.waste_p95);
  EXPECT_LE(sim.waste_p95, sim.waste_p99);
  ASSERT_EQ(sim.waste_hist.size(), 4u);
  double mass = 0.0;
  for (const double f : sim.waste_hist) mass += f;
  EXPECT_NEAR(mass, 1.0, 1e-12);

  const auto& model =
      result.cells[0].series[result.series_index("model_pure")];
  EXPECT_TRUE(std::isnan(model.waste_p50));
  EXPECT_TRUE(model.waste_hist.empty());
}

TEST(Experiment, QuantileJsonInvariantUnderThreadCount) {
  std::string outputs[2];
  const unsigned thread_counts[2] = {1, 4};
  for (int i = 0; i < 2; ++i) {
    core::ExperimentSpec spec = small_fig7_spec(thread_counts[i]);
    spec.emit_quantiles = true;
    std::ostringstream os;
    core::JsonSink sink(os);
    core::Experiment experiment(std::move(spec));
    experiment.add_sink(sink);
    (void)experiment.run();
    outputs[i] = os.str();
  }
  EXPECT_FALSE(outputs[0].empty());
  EXPECT_EQ(outputs[0], outputs[1])
      << "quantiles are computed from the replicate-ordered sample and must "
         "not depend on the worker count";
}

TEST(Experiment, ModelMatchesSimOnFigure7DefaultCell) {
  // Figure 7 operating point: MTBF = 2 h, alpha = 0.8. The paper reports
  // |WASTE_simul - WASTE_model| < 0.05 away from the smallest-MTBF column.
  core::ExperimentSpec spec;
  spec.name = "parity";
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.8);
  core::MonteCarloOptions mc;
  mc.replicates = 300;
  spec.series = core::cross_series(
      {core::Protocol::PurePeriodicCkpt, core::Protocol::BiPeriodicCkpt,
       core::Protocol::AbftPeriodicCkpt},
      {"model", "sim"}, {}, mc);
  const auto result = core::Experiment(std::move(spec)).run();
  ASSERT_EQ(result.cells.size(), 1u);
  for (const char* key : {"pure", "bi", "abft"}) {
    const auto& m = result.cells[0].series[result.series_index(
        std::string("model_") + key)];
    const auto& s = result.cells[0].series[result.series_index(
        std::string("sim_") + key)];
    ASSERT_TRUE(m.valid);
    ASSERT_TRUE(s.valid);
    EXPECT_NEAR(m.waste, s.waste, 0.05) << key;
  }
}

TEST(Experiment, RejectsUnknownEvaluatorAndEmptySeries) {
  core::ExperimentSpec spec;
  spec.name = "bad";
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  EXPECT_THROW(core::Experiment{spec}, common::precondition_error);
  spec.series = {{"x", core::Protocol::PurePeriodicCkpt, "bogus", {}, {}}};
  EXPECT_THROW(core::Experiment{spec}, common::precondition_error);
}

// ---- JSON writer -----------------------------------------------------------

TEST(JsonWriter, EscapesAndRoundTrips) {
  std::ostringstream os;
  common::JsonWriter json(os);
  json.begin_object();
  json.kv("name", "a\"b\\c\nd");
  json.kv("pi", 3.141592653589793);
  json.kv("neg", -1);
  json.kv("flag", true);
  json.key("nan").value(std::nan(""));
  json.key("list").begin_array().value(1.5).value("x").null().end_array();
  json.end_object();
  EXPECT_TRUE(json.complete());

  const std::string out = os.str();
  EXPECT_NE(out.find("\"a\\\"b\\\\c\\nd\""), std::string::npos);
  // Shortest round-trip formatting, not %.6g.
  EXPECT_NE(out.find("3.141592653589793"), std::string::npos);
  EXPECT_NE(out.find("\"nan\": null"), std::string::npos);
  EXPECT_NE(out.find("\"flag\": true"), std::string::npos);
}

TEST(JsonWriter, RejectsValueWithoutKeyInObject) {
  std::ostringstream os;
  common::JsonWriter json(os);
  json.begin_object();
  EXPECT_THROW(json.value(1.0), common::precondition_error);
  EXPECT_THROW(json.end_array(), common::precondition_error);
}

}  // namespace

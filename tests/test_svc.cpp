// Tests for the streaming sweep service: the request grammar (parse +
// structured rejection), spec -> ExperimentSpec translation, the bounded
// admission queue, the multi-tenant service core (byte-identity of served
// rows vs the batch engine, backpressure, cancellation, drain-on-shutdown,
// tenant fault isolation), and the socket server end to end (framed
// streaming, error responses that keep the connection alive, oversized
// lines, a concurrent multi-client soak, and the drop-directory queue).

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "common/time_units.hpp"
#include "core/experiment.hpp"
#include "svc/net.hpp"
#include "svc/protocol.hpp"
#include "svc/queue.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"

namespace {

using namespace abftc;
namespace fs = std::filesystem;

// ---- Grammar ---------------------------------------------------------------

std::string reject_code(const std::string& line) {
  try {
    (void)svc::parse_request_line(line);
  } catch (const svc::svc_error& e) {
    return e.code();
  }
  return "";
}

TEST(SvcProtocol, ParsesFullSpecLine) {
  const svc::RequestSpec req = svc::parse_request_line(
      "sweep name=fig7ish proto=pure,abft evaluator=model "
      "axis=alpha:0.0-1.0:11 axis=mtbf:3600-14400:4 reps=50 seed=7 "
      "sink=csv quantiles=1 bins=5");
  EXPECT_EQ(req.name, "fig7ish");
  ASSERT_EQ(req.protocols.size(), 2u);
  EXPECT_EQ(req.protocols[0], core::Protocol::PurePeriodicCkpt);
  EXPECT_EQ(req.protocols[1], core::Protocol::AbftPeriodicCkpt);
  EXPECT_EQ(req.evaluators, std::vector<std::string>{"model"});
  EXPECT_EQ(req.cells(), 44u);
  EXPECT_EQ(req.reps, 50u);
  EXPECT_EQ(req.seed, 7u);
  EXPECT_EQ(req.sink, svc::SinkKind::Csv);
  EXPECT_TRUE(req.emit_quantiles);
  EXPECT_EQ(req.quantile_hist_bins, 5u);

  const core::ExperimentSpec spec = svc::to_experiment_spec(req);
  EXPECT_EQ(spec.name, "fig7ish");
  EXPECT_EQ(spec.sweep.cells(), 44u);
  ASSERT_EQ(spec.series.size(), 2u);
  EXPECT_EQ(spec.series[0].label, "model_pure");
  EXPECT_NO_THROW(spec.validate());
}

TEST(SvcProtocol, DefaultsAndWhitespaceTolerance) {
  const svc::RequestSpec req =
      svc::parse_request_line("  sweep \t proto=abft   axis=alpha:0.2,0.8  ");
  EXPECT_EQ(req.name, "sweep");
  EXPECT_EQ(req.evaluators, std::vector<std::string>{"model"});
  EXPECT_EQ(req.cells(), 2u);
  EXPECT_EQ(req.sink, svc::SinkKind::Json);
}

TEST(SvcProtocol, ValueAxisAndBaseOverrides) {
  const svc::RequestSpec req = svc::parse_request_line(
      "sweep proto=pure axis=rho:0.1,0.5,0.9 mtbf=7200 nodes=2 alpha=0.25");
  EXPECT_EQ(req.cells(), 3u);
  EXPECT_DOUBLE_EQ(req.sweep.base.platform.mtbf, 7200.0);
  EXPECT_EQ(req.sweep.base.platform.nodes, 2u);
  EXPECT_DOUBLE_EQ(req.sweep.base.epoch.alpha, 0.25);
  const auto s = req.sweep.scenario(2);
  EXPECT_DOUBLE_EQ(s.ckpt.rho, 0.9);
}

TEST(SvcProtocol, StructuredRejections) {
  EXPECT_EQ(reject_code(""), "bad-verb");
  EXPECT_EQ(reject_code("frobnicate proto=abft"), "bad-verb");
  EXPECT_EQ(reject_code("sweep proto=xyz"), "unknown-protocol");
  EXPECT_EQ(reject_code("sweep evaluator=nope"), "unknown-evaluator");
  EXPECT_EQ(reject_code("sweep nonsense=1"), "unknown-key");
  EXPECT_EQ(reject_code("sweep axis=alpha"), "bad-axis");
  EXPECT_EQ(reject_code("sweep axis=bogusfield:0-1:3"), "bad-axis");
  EXPECT_EQ(reject_code("sweep axis=alpha:0.0-1.0:0"), "bad-number");
  EXPECT_EQ(reject_code("sweep reps=many"), "bad-number");
  EXPECT_EQ(reject_code("sweep sink=xml"), "bad-sink");
  EXPECT_EQ(reject_code("sweep name=../etc"), "bad-name");
  EXPECT_EQ(reject_code("sweep proto=abft proto=pure"), "duplicate-key");
  EXPECT_EQ(reject_code("sweep proto=abft,abft"), "duplicate-series");
  EXPECT_EQ(reject_code("sweep axis=nodes:1-1000:1000 axis=mtbf:1-1000:1000"),
            "too-many-cells");
  // A rejected spec never partially succeeds: same line minus the bad key
  // parses fine.
  EXPECT_EQ(reject_code("sweep proto=abft axis=alpha:0.1-0.9:3"), "");
}

// ---- Bounded queue ---------------------------------------------------------

TEST(SvcQueue, BackpressureAndDrainSemantics) {
  svc::BoundedQueue<int> q(2);
  using Push = svc::BoundedQueue<int>::Push;
  EXPECT_EQ(q.try_push(1), Push::Ok);
  EXPECT_EQ(q.try_push(2), Push::Ok);
  EXPECT_EQ(q.try_push(3), Push::Full);
  EXPECT_EQ(q.size(), 2u);

  q.close();
  EXPECT_EQ(q.try_push(4), Push::Closed);

  // Drain semantics: queued items remain poppable after close.
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.pop(out));
}

TEST(SvcQueue, PopBlocksUntilPushOrClose) {
  svc::BoundedQueue<int> q(4);
  int out = 0;
  std::thread popper([&] { EXPECT_TRUE(q.pop(out)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.try_push(42), svc::BoundedQueue<int>::Push::Ok);
  popper.join();
  EXPECT_EQ(out, 42);
}

// ---- Service core ----------------------------------------------------------

std::string batch_reference(const std::string& line) {
  const svc::RequestSpec req = svc::parse_request_line(line);
  std::ostringstream os;
  const auto sink = svc::make_sink(req.sink, os, /*row_flush=*/false);
  core::Experiment experiment(svc::to_experiment_spec(req));
  experiment.add_sink(*sink);
  (void)experiment.run();
  return os.str();
}

TEST(SvcService, ServedBytesEqualBatchBytes) {
  const std::string lines[] = {
      "sweep proto=abft evaluator=model axis=alpha:0.1-0.9:5",
      "sweep name=csvone proto=pure,bi,abft evaluator=model "
      "axis=mtbf:3600-14400:4 sink=csv",
      "sweep proto=bi evaluator=sim reps=40 axis=alpha:0.2,0.6 seed=11",
  };
  svc::SweepService service({.queue_cap = 8, .batch_max = 4, .threads = 4});
  std::ostringstream streams[3];
  svc::RequestHandle handles[3];
  for (int i = 0; i < 3; ++i) {
    const svc::RequestSpec req = svc::parse_request_line(lines[i]);
    handles[i] =
        service.submit(req, svc::make_sink(req.sink, streams[i], true));
  }
  for (int i = 0; i < 3; ++i) {
    const svc::RequestMetrics& m = handles[i].wait();
    EXPECT_FALSE(m.failed) << m.error_message;
    EXPECT_FALSE(m.cancelled);
    EXPECT_EQ(m.cells_run, m.cells);
    EXPECT_EQ(m.rows_flushed, m.cells);
    EXPECT_EQ(streams[i].str(), batch_reference(lines[i]))
        << "served rows must be bitwise-identical to the batch engine";
  }
  const svc::ServiceTotals totals = service.totals();
  EXPECT_EQ(totals.admitted, 3u);
  EXPECT_EQ(totals.completed, 3u);
  // cells counts grid cells (series share a cell): 5 + 4 + 2.
  EXPECT_EQ(totals.cells_evaluated, 5u + 4u + 2u);
}

/// Evaluator that blocks until released — lets tests wedge the coordinator
/// to observe backpressure and cancellation deterministically. The registry
/// owns it; tests keep a raw pointer (registered evaluators live for the
/// process lifetime).
class GateEvaluator final : public core::Evaluator {
 public:
  explicit GateEvaluator(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return name_;
  }

  [[nodiscard]] core::EvalResult evaluate(
      core::Protocol, const core::ScenarioParams& s,
      const core::EvalContext&) const override {
    {
      std::unique_lock lock(mu_);
      ++entered_;
      entered_cv_.notify_all();
      released_cv_.wait(lock, [&] { return released_; });
    }
    core::EvalResult r;
    r.waste = s.epoch.alpha;
    r.t_final = 1.0;
    r.valid = true;
    return r;
  }

  void wait_entered() const {
    std::unique_lock lock(mu_);
    entered_cv_.wait(lock, [&] { return entered_ > 0; });
  }
  void release() const {
    std::lock_guard lock(mu_);
    released_ = true;
    released_cv_.notify_all();
  }

 private:
  std::string name_;
  mutable std::mutex mu_;
  mutable std::condition_variable entered_cv_;
  mutable std::condition_variable released_cv_;
  mutable int entered_ = 0;
  mutable bool released_ = false;
};

const GateEvaluator* register_gate(const std::string& name) {
  auto owned = std::make_unique<GateEvaluator>(name);
  const GateEvaluator* gate = owned.get();
  core::EvaluatorRegistry::instance().add(std::move(owned));
  return gate;
}

TEST(SvcService, QueueFullRejectsWithStructuredError) {
  const GateEvaluator* gate = register_gate("test-gate-bp");
  {
    svc::SweepService service({.queue_cap = 1, .batch_max = 1, .threads = 2});
    const svc::RequestSpec req = svc::parse_request_line(
        "sweep proto=pure evaluator=test-gate-bp axis=alpha:0.1,0.9");
    auto sink = [] {
      static std::ostringstream os[4];
      static int n = 0;
      return svc::make_sink(svc::SinkKind::Json, os[n++], true);
    };
    // First request occupies the coordinator (gate blocks), second fills
    // the queue, third must bounce.
    svc::RequestHandle running = service.submit(req, sink());
    gate->wait_entered();
    svc::RequestHandle queued = service.submit(req, sink());
    try {
      (void)service.submit(req, sink());
      FAIL() << "expected queue-full";
    } catch (const svc::svc_error& e) {
      EXPECT_EQ(e.code(), "queue-full");
    }
    EXPECT_EQ(service.totals().rejected_full, 1u);
    gate->release();
    EXPECT_FALSE(running.wait().failed);
    EXPECT_FALSE(queued.wait().failed);
  }
}

TEST(SvcService, CancellationStopsRemainingCells) {
  const GateEvaluator* gate = register_gate("test-gate-cancel");
  svc::SweepService service({.queue_cap = 4, .batch_max = 1, .threads = 1});
  const svc::RequestSpec req = svc::parse_request_line(
      "sweep proto=pure evaluator=test-gate-cancel axis=alpha:0.0-1.0:64");
  std::ostringstream os;
  svc::RequestHandle handle =
      service.submit(req, svc::make_sink(svc::SinkKind::Json, os, true));
  gate->wait_entered();
  handle.cancel();
  gate->release();
  const svc::RequestMetrics& m = handle.wait();
  EXPECT_TRUE(m.cancelled);
  EXPECT_LT(m.cells_run, m.cells);
  EXPECT_EQ(service.totals().cancelled, 1u);
}

TEST(SvcService, DrainFinishesAdmittedThenRejects) {
  svc::SweepService service({.queue_cap = 8, .batch_max = 4, .threads = 2});
  const std::string line =
      "sweep proto=abft evaluator=model axis=alpha:0.1-0.9:7";
  const svc::RequestSpec req = svc::parse_request_line(line);
  std::ostringstream streams[3];
  svc::RequestHandle handles[3];
  for (int i = 0; i < 3; ++i)
    handles[i] =
        service.submit(req, svc::make_sink(svc::SinkKind::Json, streams[i], true));
  service.drain_and_stop();
  // Every admitted request finished, none dropped, bytes intact.
  const std::string want = batch_reference(line);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(handles[i].finished());
    EXPECT_EQ(handles[i].wait().rows_flushed, req.cells());
    EXPECT_EQ(streams[i].str(), want);
  }
  // Post-drain submissions are structured rejections.
  try {
    (void)service.submit(req,
                         svc::make_sink(svc::SinkKind::Json, streams[0], true));
    FAIL() << "expected shutting-down";
  } catch (const svc::svc_error& e) {
    EXPECT_EQ(e.code(), "shutting-down");
  }
}

TEST(SvcService, TenantFailureIsIsolated) {
  class ThrowingEvaluator final : public core::Evaluator {
   public:
    [[nodiscard]] std::string_view name() const noexcept override {
      return "test-throw";
    }
    [[nodiscard]] core::EvalResult evaluate(
        core::Protocol, const core::ScenarioParams&,
        const core::EvalContext&) const override {
      throw std::runtime_error("intentional test failure");
    }
  };
  core::EvaluatorRegistry::instance().add(
      std::make_unique<ThrowingEvaluator>());
  svc::SweepService service({.queue_cap = 8, .batch_max = 4, .threads = 2});
  const std::string good_line =
      "sweep proto=abft evaluator=model axis=alpha:0.1-0.9:5";
  const svc::RequestSpec bad = svc::parse_request_line(
      "sweep proto=pure evaluator=test-throw axis=alpha:0.1,0.9");
  const svc::RequestSpec good = svc::parse_request_line(good_line);
  std::ostringstream bad_os, good_os;
  // Same batch: the failing tenant must not poison its neighbour.
  svc::RequestHandle bad_h =
      service.submit(bad, svc::make_sink(svc::SinkKind::Json, bad_os, true));
  svc::RequestHandle good_h =
      service.submit(good, svc::make_sink(svc::SinkKind::Json, good_os, true));
  const svc::RequestMetrics& bm = bad_h.wait();
  EXPECT_TRUE(bm.failed);
  EXPECT_EQ(bm.error_code, "evaluate-error");
  const svc::RequestMetrics& gm = good_h.wait();
  EXPECT_FALSE(gm.failed) << gm.error_message;
  EXPECT_EQ(good_os.str(), batch_reference(good_line));
}

// ---- Socket server end to end ----------------------------------------------

struct Frame {
  std::string payload;   ///< concatenated data frames
  std::string trailer;   ///< trailer JSON (empty if none)
  std::string error;     ///< err line (empty if none)
  bool ended = false;
};

/// Drive one spec line over an established connection, collecting frames.
Frame roundtrip(int fd, const std::string& line) {
  Frame f;
  EXPECT_TRUE(svc::write_line(fd, line));
  svc::LineReader reader(fd);
  std::string resp;
  while (true) {
    if (reader.read_line(resp) != svc::LineReader::Status::Ok) break;
    if (resp.rfind("data ", 0) == 0) {
      const std::size_t len = std::stoull(resp.substr(5));
      EXPECT_EQ(reader.read_exact(len, f.payload),
                svc::LineReader::Status::Ok);
    } else if (resp.rfind("trailer ", 0) == 0) {
      f.trailer = resp.substr(8);
    } else if (resp.rfind("end", 0) == 0) {
      f.ended = true;
      break;
    } else if (resp.rfind("err", 0) == 0) {
      f.error = resp;
      break;
    } else {
      EXPECT_EQ(resp.rfind("ok", 0), 0u) << "unexpected: " << resp;
    }
  }
  return f;
}

std::string test_socket_path(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("abftc_svc_") + tag + "_" +
           std::to_string(::getpid()) + ".sock"))
      .string();
}

TEST(SvcServer, StreamsFramesAndSurvivesBadRequests) {
  svc::ServerConfig cfg;
  cfg.unix_path = test_socket_path("basic");
  cfg.service = {.queue_cap = 8, .batch_max = 4, .threads = 2};
  svc::SweepServer server(cfg);
  server.start();

  const svc::Fd fd = svc::connect_unix(cfg.unix_path);
  const std::string line =
      "sweep proto=abft evaluator=model axis=alpha:0.1-0.9:5";

  // A malformed request returns a structured error and the connection
  // survives to serve the next one.
  Frame bad = roundtrip(fd.get(), "sweep proto=frob");
  EXPECT_NE(bad.error.find("err code=unknown-protocol"), std::string::npos);
  EXPECT_FALSE(bad.ended);

  Frame good = roundtrip(fd.get(), line);
  EXPECT_TRUE(good.ended);
  EXPECT_TRUE(good.error.empty());
  EXPECT_EQ(good.payload, batch_reference(line));
  EXPECT_NE(good.trailer.find("\"cells\":5"), std::string::npos);
  EXPECT_NE(good.trailer.find("\"rows_flushed\":5"), std::string::npos);

  // An oversized line is consumed, rejected, and the connection survives.
  std::string huge = "sweep name=";
  huge.append(svc::kMaxLineBytes, 'x');
  Frame long_line = roundtrip(fd.get(), huge);
  EXPECT_NE(long_line.error.find("err code=line-too-long"),
            std::string::npos);
  Frame after = roundtrip(fd.get(), line);
  EXPECT_TRUE(after.ended);
  EXPECT_EQ(after.payload, good.payload);

  server.stop();
  const svc::ServiceTotals totals = server.totals();
  EXPECT_EQ(totals.completed, 2u);
  EXPECT_EQ(totals.failed, 0u);
}

TEST(SvcServer, TcpListenerAndStatsCommand) {
  svc::ServerConfig cfg;
  cfg.tcp_port = 0;  // ephemeral loopback
  cfg.service = {.queue_cap = 8, .batch_max = 2, .threads = 2};
  svc::SweepServer server(cfg);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  const svc::Fd fd = svc::connect_tcp("127.0.0.1", server.tcp_port());
  svc::LineReader reader(fd.get());
  std::string resp;
  ASSERT_TRUE(svc::write_line(fd.get(), "ping"));
  ASSERT_EQ(reader.read_line(resp), svc::LineReader::Status::Ok);
  EXPECT_EQ(resp, "ok pong");
  ASSERT_TRUE(svc::write_line(fd.get(), "stats"));
  ASSERT_EQ(reader.read_line(resp), svc::LineReader::Status::Ok);
  EXPECT_EQ(resp.rfind("ok {\"admitted\":", 0), 0u);

  const std::string line =
      "sweep proto=pure,bi evaluator=model axis=mtbf:3600-7200:3 sink=csv";
  Frame f = roundtrip(fd.get(), line);
  EXPECT_TRUE(f.ended);
  EXPECT_EQ(f.payload, batch_reference(line));
  server.stop();
}

TEST(SvcServer, ConcurrentClientsGetExactBatchBytes) {
  svc::ServerConfig cfg;
  cfg.unix_path = test_socket_path("soak");
  cfg.service = {.queue_cap = 16, .batch_max = 4, .threads = 4};
  svc::SweepServer server(cfg);
  server.start();

  // Mixed shapes/sinks/evaluators so batches coalesce unlike tenants.
  const std::string lines[] = {
      "sweep name=a proto=abft evaluator=model axis=alpha:0.0-1.0:9",
      "sweep name=b proto=pure,bi,abft evaluator=model "
      "axis=mtbf:3600-14400:5 sink=csv",
      "sweep name=c proto=bi evaluator=sim reps=30 axis=alpha:0.2,0.5,0.8",
      "sweep name=d proto=abft evaluator=model axis=rho:0.1-0.9:6 "
      "axis=alpha:0.25,0.75",
  };
  constexpr int kClients = 4;
  constexpr int kRounds = 3;
  std::string streamed[kClients][kRounds];
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      const svc::Fd fd = svc::connect_unix(cfg.unix_path);
      for (int r = 0; r < kRounds; ++r) {
        Frame f = roundtrip(fd.get(), lines[c]);
        EXPECT_TRUE(f.ended) << f.error;
        streamed[c][r] = std::move(f.payload);
      }
    });
  for (std::thread& t : clients) t.join();
  server.stop();

  for (int c = 0; c < kClients; ++c) {
    const std::string want = batch_reference(lines[c]);
    for (int r = 0; r < kRounds; ++r)
      EXPECT_EQ(streamed[c][r], want)
          << "client " << c << " round " << r
          << ": served bytes must equal the batch engine's, every row "
             "exactly once, regardless of concurrent tenants";
  }
  const svc::ServiceTotals totals = server.totals();
  EXPECT_EQ(totals.completed, kClients * kRounds);
  EXPECT_EQ(totals.failed, 0u);
  EXPECT_EQ(totals.cancelled, 0u);
}

TEST(SvcServer, DisconnectCancelsInFlightRequest) {
  const GateEvaluator* gate = register_gate("test-gate-disc");
  svc::ServerConfig cfg;
  cfg.unix_path = test_socket_path("disc");
  cfg.service = {.queue_cap = 4, .batch_max = 1, .threads = 1};
  svc::SweepServer server(cfg);
  server.start();
  {
    const svc::Fd fd = svc::connect_unix(cfg.unix_path);
    ASSERT_TRUE(svc::write_line(
        fd.get(),
        "sweep proto=pure evaluator=test-gate-disc axis=alpha:0.0-1.0:64"));
    gate->wait_entered();
  }  // client vanishes mid-request
  // The connection thread polls peer_closed every ~50 ms while the gate
  // holds the only worker; give it time to observe the disconnect and
  // cancel before the remaining 63 cells become runnable.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  gate->release();
  server.stop();
  const svc::ServiceTotals totals = server.totals();
  EXPECT_EQ(totals.cancelled, 1u);
  EXPECT_LT(totals.cells_evaluated, 64u);
}

TEST(SvcServer, DropDirectoryServesReqFiles) {
  svc::ServerConfig cfg;
  cfg.queue_dir = (fs::temp_directory_path() /
                   ("abftc_svc_queue_" + std::to_string(::getpid())))
                      .string();
  cfg.service = {.queue_cap = 8, .batch_max = 2, .threads = 2};
  cfg.poll_ms = 20;
  fs::remove_all(cfg.queue_dir);
  svc::SweepServer server(cfg);
  server.start();

  const std::string line =
      "sweep proto=abft evaluator=model axis=alpha:0.1-0.9:4 sink=csv";
  {
    std::ofstream req(fs::path(cfg.queue_dir) / "job1.req");
    req << line << '\n';
  }
  {
    std::ofstream req(fs::path(cfg.queue_dir) / "job2.req");
    req << "sweep proto=frob\n";
  }
  // Give the scanner (poll_ms = 20) time to claim both files; stop() then
  // drains whatever was claimed before returning.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  server.stop();

  std::ifstream out(fs::path(cfg.queue_dir) / "job1.out", std::ios::binary);
  ASSERT_TRUE(out.good());
  std::stringstream payload;
  payload << out.rdbuf();
  EXPECT_EQ(payload.str(), batch_reference(line));
  std::ifstream trailer(fs::path(cfg.queue_dir) / "job1.trailer.json");
  ASSERT_TRUE(trailer.good());
  std::string tline;
  std::getline(trailer, tline);
  EXPECT_NE(tline.find("\"cells\":4"), std::string::npos);

  std::ifstream err(fs::path(cfg.queue_dir) / "job2.err");
  ASSERT_TRUE(err.good());
  std::string eline;
  std::getline(err, eline);
  EXPECT_NE(eline.find("err code=unknown-protocol"), std::string::npos);
  EXPECT_FALSE(fs::exists(fs::path(cfg.queue_dir) / "job2.out"));
  fs::remove_all(cfg.queue_dir);
}

}  // namespace

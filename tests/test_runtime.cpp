// Tests for the live composite runtime (the executable Figure 2 protocol).

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

#include <array>
#include <numeric>

#include "core/runtime.hpp"

namespace {

using namespace abftc;
using core::CompositeRuntime;

struct App {
  std::array<double, 16> data{};     // REMAINDER
  std::array<double, 32> library{};  // LIBRARY
  ckpt::MemoryImage image;
  ckpt::RegionId data_id, lib_id;

  App() {
    std::iota(data.begin(), data.end(), 0.0);
    std::iota(library.begin(), library.end(), 100.0);
    data_id = image.add_region("data", std::span<double>(data),
                               ckpt::RegionClass::Remainder);
    lib_id = image.add_region("library", std::span<double>(library),
                              ckpt::RegionClass::Library);
  }
};

TEST(CompositeRuntime, TakesInitialFullCheckpoint) {
  App app;
  CompositeRuntime rt(app.image);
  EXPECT_EQ(rt.stats().full_checkpoints, 1u);
  EXPECT_TRUE(rt.store().has_restore_point());
}

TEST(CompositeRuntime, GeneralPhaseRunsWork) {
  App app;
  CompositeRuntime rt(app.image);
  rt.run_general_phase([&] { app.data[0] = 42.0; });
  EXPECT_DOUBLE_EQ(app.data[0], 42.0);
  EXPECT_EQ(rt.stats().rollbacks, 0u);
}

TEST(CompositeRuntime, GeneralFailureRollsBackAndReexecutes) {
  App app;
  CompositeRuntime rt(app.image);
  int executions = 0;
  rt.run_general_phase(
      [&] {
        ++executions;
        app.data[3] += 1.0;  // must not double-apply across retries
        app.image.mark_dirty(app.data_id);
      },
      /*failures_before_success=*/2);
  EXPECT_EQ(executions, 3);
  EXPECT_EQ(rt.stats().rollbacks, 2u);
  EXPECT_DOUBLE_EQ(app.data[3], 3.0 + 1.0);  // initial value 3 plus one +1
}

TEST(CompositeRuntime, LibraryPhaseTakesSplitCheckpoint) {
  App app;
  CompositeRuntime rt(app.image);
  rt.run_library_phase([&](const std::function<void()>&) {
    app.library[0] = -1.0;
    app.image.mark_dirty(app.lib_id);
  });
  EXPECT_EQ(rt.stats().entry_checkpoints, 1u);
  EXPECT_EQ(rt.stats().exit_checkpoints, 1u);
  // After the split checkpoint, a scramble must restore the -1.
  for (auto& d : app.data) d = -99.0;
  for (auto& l : app.library) l = -99.0;
  rt.store().restore_latest(app.image);
  EXPECT_DOUBLE_EQ(app.library[0], -1.0);
  EXPECT_DOUBLE_EQ(app.data[1], 1.0);
}

TEST(CompositeRuntime, AbftRecoveryRestoresRemainderOnly) {
  App app;
  CompositeRuntime rt(app.image);
  rt.run_library_phase([&](const std::function<void()>& on_recovery) {
    // The "kernel" updates library data, then a failure strikes: the
    // remainder is clobbered (node loss) and the kernel reconstructs its
    // own data; on_recovery must bring the remainder back.
    app.library[7] = 777.0;
    for (auto& d : app.data) d = -5.0;
    on_recovery();
    EXPECT_DOUBLE_EQ(app.data[4], 4.0);      // restored from entry ckpt
    EXPECT_DOUBLE_EQ(app.library[7], 777.0);  // left to the ABFT kernel
  });
  EXPECT_EQ(rt.stats().abft_recoveries, 1u);
  EXPECT_EQ(rt.stats().remainder_restores, 1u);
}

TEST(CompositeRuntime, PeriodicCheckpointAdvancesRestorePoint) {
  App app;
  CompositeRuntime rt(app.image);
  app.data[0] = 11.0;
  app.image.mark_dirty(app.data_id);
  rt.periodic_checkpoint();
  app.data[0] = 22.0;
  rt.run_general_phase([&] { app.data[1] = 1.0; },
                       /*failures_before_success=*/1);
  // Rollback went to the periodic checkpoint (data[0] == 11), then work
  // re-ran.
  EXPECT_DOUBLE_EQ(app.data[0], 11.0);
  EXPECT_DOUBLE_EQ(app.data[1], 1.0);
}

TEST(CompositeRuntime, SequenceOfEpochsKeepsStateConsistent) {
  App app;
  CompositeRuntime rt(app.image);
  for (int epoch = 0; epoch < 4; ++epoch) {
    rt.run_general_phase(
        [&] {
          app.data[0] += 1.0;
          app.image.mark_dirty(app.data_id);
        },
        epoch == 2 ? 1 : 0);
    rt.run_library_phase([&](const std::function<void()>& on_recovery) {
      app.library[0] = app.data[0] * 10.0;
      app.image.mark_dirty(app.lib_id);
      if (epoch == 3) on_recovery();
    });
  }
  EXPECT_DOUBLE_EQ(app.data[0], 4.0);
  EXPECT_DOUBLE_EQ(app.library[0], 40.0);
  EXPECT_EQ(rt.stats().entry_checkpoints, 4u);
  EXPECT_EQ(rt.stats().exit_checkpoints, 4u);
  EXPECT_EQ(rt.stats().rollbacks, 1u);
  EXPECT_EQ(rt.stats().abft_recoveries, 1u);
}

TEST(CompositeRuntime, RejectsNullWork) {
  App app;
  CompositeRuntime rt(app.image);
  EXPECT_THROW(rt.run_general_phase(nullptr), common::precondition_error);
  EXPECT_THROW(rt.run_library_phase(nullptr), common::precondition_error);
}

TEST(CompositeRuntime, RequiresRegisteredRegions) {
  ckpt::MemoryImage empty;
  EXPECT_THROW(CompositeRuntime rt(empty), common::precondition_error);
}

}  // namespace

// Tests for the streaming statistics used by the Monte-Carlo harness.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using abftc::common::Histogram;
using abftc::common::RunningStats;
using abftc::common::Sample;

TEST(RunningStats, MatchesNaiveComputation) {
  RunningStats s;
  const double xs[] = {1.0, 2.5, -3.0, 7.25, 0.0, 4.5};
  double sum = 0.0;
  for (const double x : xs) {
    s.add(x);
    sum += x;
  }
  const double mean = sum / 6.0;
  double var = 0.0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= 5.0;
  EXPECT_EQ(s.count(), 6u);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.25);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  abftc::common::Rng rng(1);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  abftc::common::Rng rng(2);
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) small.add(rng.uniform01());
  for (int i = 0; i < 10000; ++i) large.add(rng.uniform01());
  EXPECT_LT(large.ci95_halfwidth(), small.ci95_halfwidth());
  EXPECT_NEAR(large.ci95_halfwidth(),
              1.959964 * large.stddev() / std::sqrt(10000.0), 1e-12);
}

TEST(Sample, QuantilesOfKnownSet) {
  Sample s;
  for (const double x : {5.0, 1.0, 3.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_NEAR(s.quantile(0.1), 1.4, 1e-12);  // interpolated
}

TEST(Sample, RejectsMisuse) {
  Sample s;
  EXPECT_THROW((void)s.quantile(0.5), abftc::common::precondition_error);
  s.add(1.0);
  EXPECT_THROW((void)s.quantile(1.5), abftc::common::precondition_error);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_high(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), abftc::common::precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), abftc::common::precondition_error);
}

}  // namespace

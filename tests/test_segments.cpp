// Tests for the restartable-segment simulation primitives, including the
// bucket-accounting identity (every simulated second lands in exactly one
// bucket) as a parameterized property.

#include <gtest/gtest.h>

#include "common/error.hpp"

#include <memory>

#include "sim/failures.hpp"
#include "sim/segments.hpp"

namespace {

using namespace abftc;
using namespace abftc::sim;

/// A scripted clock for deterministic tests.
class ScriptedClock final : public FailureClock {
 public:
  explicit ScriptedClock(std::vector<double> failures)
      : failures_(std::move(failures)) {}
  double next_after(double t) override {
    for (const double f : failures_)
      if (f > t) return f;
    return 1e300;  // no more failures
  }

 private:
  std::vector<double> failures_;
};

SimState make_state(FailureClock& clock) {
  SimState st;
  st.clock = &clock;
  return st;
}

TEST(Attempt, CompletesWithoutFailure) {
  ScriptedClock clock({1000.0});
  auto st = make_state(clock);
  const auto a = attempt(st, 100.0);
  EXPECT_TRUE(a.completed);
  EXPECT_DOUBLE_EQ(a.elapsed, 100.0);
  EXPECT_DOUBLE_EQ(st.now, 100.0);
  EXPECT_EQ(st.failures, 0u);
}

TEST(Attempt, StopsAtFailureInstant) {
  ScriptedClock clock({40.0});
  auto st = make_state(clock);
  const auto a = attempt(st, 100.0);
  EXPECT_FALSE(a.completed);
  EXPECT_DOUBLE_EQ(a.elapsed, 40.0);
  EXPECT_DOUBLE_EQ(st.now, 40.0);
  EXPECT_EQ(st.failures, 1u);
}

TEST(Attempt, ZeroDurationNeverFails) {
  ScriptedClock clock({0.5});
  auto st = make_state(clock);
  const auto a = attempt(st, 0.0);
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(st.failures, 0u);
}

TEST(Attempt, BoundaryFailureDoesNotInterrupt) {
  // Failure exactly at the end of the span: the span completes.
  ScriptedClock clock({100.0});
  auto st = make_state(clock);
  const auto a = attempt(st, 100.0);
  EXPECT_TRUE(a.completed);
}

TEST(Recover, RestartsOnNestedFailures) {
  // Failures at 5 and 12 interrupt downtime(10)+recovery(10) twice.
  ScriptedClock clock({5.0, 12.0});
  auto st = make_state(clock);
  recover(st, 10.0, 10.0);
  // Timeline: [0,5) downtime (failed), [5,12) downtime again: 5+7?  No —
  // downtime restarts at 5, would finish at 15, but fails at 12; restarts,
  // finishes at 22; recovery [22,32).
  EXPECT_DOUBLE_EQ(st.now, 32.0);
  EXPECT_EQ(st.failures, 2u);
  EXPECT_DOUBLE_EQ(st.acc.downtime, 5.0 + 7.0 + 10.0);
  EXPECT_DOUBLE_EQ(st.acc.recovery, 10.0);
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(RunSegment, NoFailureAccounting) {
  ScriptedClock clock({1e9});
  auto st = make_state(clock);
  run_segment(st, 500.0, 50.0, 100.0, 10.0);
  EXPECT_DOUBLE_EQ(st.now, 550.0);
  EXPECT_DOUBLE_EQ(st.acc.useful, 500.0);
  EXPECT_DOUBLE_EQ(st.acc.ckpt, 50.0);
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(RunSegment, FailureRestartsFromScratch) {
  // Segment of 100 + ckpt 10; failure at t=60 loses 60s of work.
  ScriptedClock clock({60.0});
  auto st = make_state(clock);
  run_segment(st, 100.0, 10.0, 20.0, 5.0);
  // 60 lost + 5 down + 20 recover + 100 work + 10 ckpt = 195.
  EXPECT_DOUBLE_EQ(st.now, 195.0);
  EXPECT_DOUBLE_EQ(st.acc.lost, 60.0);
  EXPECT_DOUBLE_EQ(st.acc.useful, 100.0);
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(RunSegment, FailureDuringTrailingCheckpointLosesWork) {
  ScriptedClock clock({105.0});
  auto st = make_state(clock);
  run_segment(st, 100.0, 10.0, 20.0, 5.0);
  // Work [0,100), ckpt fails at 105: lose 100 work + 5 partial ckpt.
  EXPECT_DOUBLE_EQ(st.acc.lost, 105.0);
  EXPECT_DOUBLE_EQ(st.now, 105.0 + 5.0 + 20.0 + 110.0);
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(RunPeriodicStream, CommitsPerPeriod) {
  // Two periods of (90 work + 10 ckpt); failure at t=150 (inside period 2)
  // loses only period 2's progress.
  ScriptedClock clock({150.0});
  auto st = make_state(clock);
  run_periodic_stream(st, 180.0, 100.0, 10.0, 10.0, 20.0, 5.0);
  // Period 1: [0,100) committed. Period 2 work [100,150) fails: 50 lost,
  // down 5, recover 20 -> 175, redo [175,265), ckpt [265,275).
  EXPECT_DOUBLE_EQ(st.now, 275.0);
  EXPECT_DOUBLE_EQ(st.acc.useful, 180.0);
  EXPECT_DOUBLE_EQ(st.acc.lost, 50.0);
  EXPECT_DOUBLE_EQ(st.acc.ckpt, 20.0);
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(RunPeriodicStream, TailCheckpointDiffers) {
  ScriptedClock clock({1e9});
  auto st = make_state(clock);
  // 150 work in periods of 100 (90 work each): chunks 90 + 60; tail ckpt 0.
  run_periodic_stream(st, 150.0, 100.0, 10.0, 0.0, 20.0, 5.0);
  EXPECT_DOUBLE_EQ(st.acc.ckpt, 10.0);  // only the intermediate one
  EXPECT_DOUBLE_EQ(st.now, 160.0);
}

TEST(RunAbftPhase, NoWorkIsLostOnFailure) {
  // φ = 2: 100 useful = 200 protected seconds. Failure at t=50.
  ScriptedClock clock({50.0});
  auto st = make_state(clock);
  run_abft_phase(st, 100.0, 2.0, 0.0, 30.0, 10.0, 5.0);
  // [0,50) protected compute survives; recovery 5+30+10; remaining 150.
  EXPECT_DOUBLE_EQ(st.now, 50.0 + 45.0 + 150.0);
  EXPECT_DOUBLE_EQ(st.acc.useful, 100.0);
  EXPECT_DOUBLE_EQ(st.acc.abft_overhead, 100.0);
  EXPECT_DOUBLE_EQ(st.acc.recons, 10.0);
  EXPECT_DOUBLE_EQ(st.acc.lost, 0.0);  // the ABFT guarantee
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(RunAbftPhase, ExitCheckpointRetriesAfterFailure) {
  // Work [0,100); exit ckpt 20 fails at 110; recovery 5+0+0; retry ckpt.
  ScriptedClock clock({110.0});
  auto st = make_state(clock);
  run_abft_phase(st, 100.0, 1.0, 20.0, 0.0, 0.0, 5.0);
  EXPECT_DOUBLE_EQ(st.now, 110.0 + 5.0 + 20.0);
  EXPECT_DOUBLE_EQ(st.acc.lost, 10.0);  // the partial checkpoint I/O
  EXPECT_DOUBLE_EQ(st.acc.ckpt, 20.0);
  EXPECT_DOUBLE_EQ(st.acc.total(), st.now);
}

TEST(SafetyValve, ThrowsInsteadOfLoopingForever) {
  // Failures every 1s but the segment needs 100s: impossible.
  AggregateFailureClock clock(std::make_unique<ExponentialArrivals>(1.0),
                              common::Rng(3));
  auto st = make_state(clock);
  st.max_failures = 1000;
  EXPECT_THROW(run_segment(st, 100.0, 0.0, 1.0, 1.0),
               common::invariant_error);
}

// --- accounting identity as a property over random regimes ---------------

class AccountingIdentity
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(AccountingIdentity, TotalEqualsClock) {
  const auto [mtbf, seed] = GetParam();
  AggregateFailureClock clock(std::make_unique<ExponentialArrivals>(mtbf),
                              common::Rng(seed));
  SimState st;
  st.clock = &clock;
  run_periodic_stream(st, 5000.0, 300.0, 30.0, 10.0, 50.0, 5.0);
  run_abft_phase(st, 2000.0, 1.03, 40.0, 10.0, 2.0, 5.0);
  run_segment(st, 200.0, 25.0, 50.0, 5.0);
  EXPECT_NEAR(st.acc.total(), st.now, 1e-6 * st.now);
  EXPECT_NEAR(st.acc.useful, 7200.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, AccountingIdentity,
    ::testing::Combine(::testing::Values(200.0, 1000.0, 10000.0, 1e8),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

}  // namespace

// Tests for the DES engine, the event queue, and the event-driven periodic
// executor's exact equivalence with the segment-walk implementation.

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hpp"
#include "sim/des_periodic.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"

namespace {

using namespace abftc;
using namespace abftc::sim;

TEST(EventQueue, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(2); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(3); });  // same time, later insert
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel reports failure
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const auto early = q.schedule(1.0, [] {});
  q.schedule(5.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, RejectsNullAndEmptyMisuse) {
  EventQueue q;
  EXPECT_THROW(q.schedule(0.0, nullptr), common::precondition_error);
  EXPECT_THROW((void)q.next_time(), common::precondition_error);
  EXPECT_THROW((void)q.pop(), common::precondition_error);
}

TEST(Engine, AdvancesClockThroughEvents) {
  Engine e;
  std::vector<double> times;
  e.at(3.0, [&] { times.push_back(e.now()); });
  e.in(1.0, [&] { times.push_back(e.now()); });
  const auto fired = e.run();
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0}));
  EXPECT_DOUBLE_EQ(e.now(), 3.0);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) e.in(1.0, tick);
  };
  e.in(1.0, tick);
  e.run();
  EXPECT_EQ(count, 5);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
}

TEST(Engine, RunUntilStopsAtHorizon) {
  Engine e;
  int count = 0;
  e.at(1.0, [&] { ++count; });
  e.at(10.0, [&] { ++count; });
  e.run_until(5.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_TRUE(e.pending());
}

TEST(Engine, StopHaltsProcessing) {
  Engine e;
  int count = 0;
  e.at(1.0, [&] {
    ++count;
    e.stop();
  });
  e.at(2.0, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 1);
}

TEST(Engine, RejectsPastScheduling) {
  Engine e;
  e.at(5.0, [] {});
  e.run();
  EXPECT_THROW(e.at(1.0, [] {}), common::precondition_error);
  EXPECT_THROW(e.in(-1.0, [] {}), common::precondition_error);
}

// --- DES executor equivalence ---------------------------------------------

class DesEquivalence
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(DesEquivalence, MatchesSegmentWalkBitExactly) {
  const auto [mtbf, seed] = GetParam();
  const double work = 20000, period = 700, ckpt = 70, tail = 35,
               recovery = 120, downtime = 10;

  AggregateFailureClock c1(std::make_unique<ExponentialArrivals>(mtbf),
                           common::Rng(seed));
  SimState s1;
  s1.clock = &c1;
  run_periodic_stream(s1, work, period, ckpt, tail, recovery, downtime);

  AggregateFailureClock c2(std::make_unique<ExponentialArrivals>(mtbf),
                           common::Rng(seed));
  SimState s2;
  s2.clock = &c2;
  Engine engine;
  des_periodic_stream(engine, s2, work, period, ckpt, tail, recovery,
                      downtime);

  EXPECT_DOUBLE_EQ(s1.now, s2.now);
  EXPECT_EQ(s1.failures, s2.failures);
  EXPECT_DOUBLE_EQ(s1.acc.useful, s2.acc.useful);
  EXPECT_DOUBLE_EQ(s1.acc.ckpt, s2.acc.ckpt);
  EXPECT_DOUBLE_EQ(s1.acc.lost, s2.acc.lost);
  EXPECT_DOUBLE_EQ(s1.acc.downtime, s2.acc.downtime);
  EXPECT_DOUBLE_EQ(s1.acc.recovery, s2.acc.recovery);
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, DesEquivalence,
    ::testing::Combine(::testing::Values(500.0, 2000.0, 50000.0),
                       ::testing::Values(1u, 2u, 3u, 42u)));

TEST(DesPeriodic, FaultFreeTimeExact) {
  AggregateFailureClock clock(std::make_unique<ExponentialArrivals>(1e15),
                              common::Rng(1));
  SimState st;
  st.clock = &clock;
  Engine engine;
  // 3 chunks of 90 + 2 intermediate ckpts of 10 + tail of 5.
  des_periodic_stream(engine, st, 270.0, 100.0, 10.0, 5.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(st.now, 270.0 + 2 * 10.0 + 5.0);
}

}  // namespace

// Tests for the failure arrival processes (Section V-A).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/stats.hpp"
#include "common/error.hpp"
#include "sim/failures.hpp"

namespace {

using namespace abftc;
using namespace abftc::sim;

TEST(InterArrival, ExponentialMean) {
  ExponentialArrivals d(100.0);
  common::Rng rng(1);
  common::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(d.sample(rng));
  EXPECT_NEAR(s.mean(), 100.0, 2.0);
  EXPECT_DOUBLE_EQ(d.mean(), 100.0);
}

TEST(InterArrival, WeibullFromMeanHitsMean) {
  const auto d = WeibullArrivals::from_mean(0.7, 250.0);
  EXPECT_NEAR(d.mean(), 250.0, 1e-9);
  common::Rng rng(2);
  common::RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(d.sample(rng));
  EXPECT_NEAR(s.mean(), 250.0, 7.0);
}

TEST(InterArrival, LogNormalMeanAndCv) {
  LogNormalArrivals d(100.0, 1.5);
  common::Rng rng(3);
  common::RunningStats s;
  for (int i = 0; i < 400000; ++i) s.add(d.sample(rng));
  EXPECT_NEAR(s.mean(), 100.0, 3.0);
  EXPECT_NEAR(s.stddev() / s.mean(), 1.5, 0.1);
}

TEST(InterArrival, RejectsBadParameters) {
  EXPECT_THROW(ExponentialArrivals(0.0), common::precondition_error);
  EXPECT_THROW(WeibullArrivals(0.0, 1.0), common::precondition_error);
  EXPECT_THROW(LogNormalArrivals(1.0, 0.0), common::precondition_error);
}

TEST(AggregateClock, StrictlyIncreasingAndMonotoneQueries) {
  AggregateFailureClock clock(std::make_unique<ExponentialArrivals>(50.0),
                              common::Rng(7));
  double t = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double f = clock.next_after(t);
    EXPECT_GT(f, t);
    // Re-querying with the same t must return the same instant.
    EXPECT_DOUBLE_EQ(clock.next_after(t), f);
    t = f;
  }
}

TEST(AggregateClock, QueryWithoutAdvanceDoesNotConsume) {
  AggregateFailureClock clock(std::make_unique<ExponentialArrivals>(50.0),
                              common::Rng(7));
  const double f1 = clock.next_after(0.0);
  const double f2 = clock.next_after(0.0);
  const double f3 = clock.next_after(f1 / 2.0);
  EXPECT_DOUBLE_EQ(f1, f2);
  EXPECT_DOUBLE_EQ(f1, f3);
}

TEST(AggregateClock, FailureRateMatchesMtbf) {
  const double mtbf = 100.0;
  AggregateFailureClock clock(std::make_unique<ExponentialArrivals>(mtbf),
                              common::Rng(9));
  double t = 0.0;
  int count = 0;
  const double horizon = 1e6;
  while (true) {
    t = clock.next_after(t);
    if (t > horizon) break;
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count), horizon / mtbf,
              3.0 * std::sqrt(horizon / mtbf));
}

TEST(NodeClock, AggregateOfExponentialsMatchesPlatformMtbf) {
  // N nodes of MTBF N·µ aggregate to a platform MTBF of µ.
  const std::size_t nodes = 64;
  const double platform_mtbf = 40.0;
  NodeFailureClock clock(
      std::make_unique<ExponentialArrivals>(platform_mtbf * nodes), nodes,
      common::Rng(11));
  double t = 0.0;
  int count = 0;
  const double horizon = 2e5;
  while (true) {
    t = clock.next_after(t);
    if (t > horizon) break;
    t += 1e-9;
    ++count;
  }
  const double expect = horizon / platform_mtbf;
  EXPECT_NEAR(static_cast<double>(count), expect, 4.0 * std::sqrt(expect));
}

TEST(NodeClock, ReportsFailingNode) {
  const std::size_t nodes = 8;
  NodeFailureClock clock(std::make_unique<ExponentialArrivals>(100.0), nodes,
                         common::Rng(13));
  std::vector<int> hits(nodes, 0);
  double t = 0.0;
  for (int i = 0; i < 4000; ++i) {
    const auto f = clock.next_failure_after(t);
    ASSERT_LT(f.node, nodes);
    ++hits[f.node];
    t = f.time;
  }
  for (const int h : hits) EXPECT_GT(h, 300);  // all nodes fail sometimes
}

TEST(NodeClock, RejectsZeroNodes) {
  EXPECT_THROW(NodeFailureClock(std::make_unique<ExponentialArrivals>(1.0), 0,
                                common::Rng(1)),
               common::precondition_error);
}

}  // namespace

// Tests for the kernel-policy dispatch layer: blocked-vs-naive numerical
// equivalence for gemm/trsm/getrf/potrf/geqr2 (random sizes including
// non-multiples of the register tile), determinism of the parallel checksum
// builders across thread counts, and slice-by-8 crc32 against the classic
// bytewise formulation.

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "abft/blas.hpp"
#include "abft/checksum.hpp"
#include "abft/kernels.hpp"
#include "common/crc32.hpp"
#include "common/executor.hpp"
#include "common/topology.hpp"

namespace {

using namespace abftc;
using abft::ConstMatrixView;
using abft::KernelPath;
using abft::KernelPolicy;
using abft::KernelPolicyGuard;
using abft::Matrix;
using abft::MatrixView;
using abft::Trans;

constexpr double kTol = 1e-10;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  common::Rng rng(seed);
  return Matrix::random(r, c, rng);
}

// --- GEMM -------------------------------------------------------------------

class BlockedGemmSizes
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t,
                                                 std::size_t>> {};

TEST_P(BlockedGemmSizes, MatchesNaiveAllTransVariants) {
  const auto [m, n, k] = GetParam();
  const Matrix a = random_matrix(m, k, 101 + m);
  const Matrix at = random_matrix(k, m, 103 + m);
  const Matrix b = random_matrix(k, n, 107 + n);
  const Matrix bt = random_matrix(n, k, 109 + n);

  const struct {
    const Matrix& a;
    Trans ta;
    const Matrix& b;
    Trans tb;
  } cases[] = {{a, Trans::No, b, Trans::No},
               {a, Trans::No, bt, Trans::Yes},
               {at, Trans::Yes, b, Trans::No},
               {at, Trans::Yes, bt, Trans::Yes}};

  for (const auto& cse : cases) {
    Matrix c_naive = random_matrix(m, n, 997);
    Matrix c_blocked = c_naive;
    abft::naive_gemm(1.25, cse.a.view(), cse.ta, cse.b.view(), cse.tb, -0.5,
                     c_naive.view());
    abft::blocked_gemm(1.25, cse.a.view(), cse.ta, cse.b.view(), cse.tb, -0.5,
                       c_blocked.view(), 1);
    EXPECT_LT(abft::max_abs_diff(c_naive, c_blocked), kTol)
        << "m=" << m << " n=" << n << " k=" << k
        << " ta=" << (cse.ta == Trans::Yes) << " tb=" << (cse.tb == Trans::Yes);
  }
}

// Sizes straddle the register tile (8×16 / 6×8), the cache blocks
// (mc=96–128, kc=192–256) and plenty of non-multiples of any of them.
INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockedGemmSizes,
    ::testing::Values(std::make_tuple(1u, 1u, 1u), std::make_tuple(5u, 3u, 7u),
                      std::make_tuple(17u, 33u, 9u),
                      std::make_tuple(64u, 64u, 64u),
                      std::make_tuple(97u, 101u, 53u),
                      std::make_tuple(129u, 65u, 200u),
                      std::make_tuple(200u, 257u, 131u)));

TEST(BlockedGemm, MatchesNaiveOnStridedSubviews) {
  // Views with ld > cols: operate on interior blocks of larger matrices.
  const Matrix big_a = random_matrix(200, 180, 7);
  const Matrix big_b = random_matrix(180, 220, 8);
  Matrix big_c1 = random_matrix(210, 240, 9);
  Matrix big_c2 = big_c1;
  ConstMatrixView av = big_a.block(3, 5, 150, 140);
  ConstMatrixView bv = big_b.block(11, 2, 140, 170);
  abft::naive_gemm(1.0, av, Trans::No, bv, Trans::No, 1.0,
                   big_c1.block(4, 6, 150, 170));
  abft::blocked_gemm(1.0, av, Trans::No, bv, Trans::No, 1.0,
                     big_c2.block(4, 6, 150, 170), 1);
  EXPECT_LT(abft::max_abs_diff(big_c1, big_c2), kTol);
}

// The β-scale is fused into the first kc pass of the blocked path (no
// standalone C sweep). k > kc forces multiple kc passes, so this also pins
// that only the first pass scales.
TEST(BlockedGemm, FusedBetaMatchesNaiveAcrossKcPasses) {
  const std::size_t m = 129, n = 65, k = 520;  // ≥ 2 kc passes on every ISA
  const Matrix a = random_matrix(m, k, 301);
  const Matrix b = random_matrix(k, n, 302);
  for (const double beta : {0.0, 1.0, -0.5, 0.75, 2.0}) {
    Matrix c_naive = random_matrix(m, n, 303);
    Matrix c_blocked = c_naive;
    abft::naive_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, beta,
                     c_naive.view());
    abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, beta,
                       c_blocked.view(), 1);
    EXPECT_LT(abft::max_abs_diff(c_naive, c_blocked), kTol) << "beta=" << beta;
  }
}

TEST(BlockedGemm, FusedBetaDegenerateShapesStillScaleC) {
  // alpha == 0 and k == 0 run no packed pass; the β-scale must still land.
  Matrix c = random_matrix(40, 40, 304);
  Matrix expect = c;
  for (std::size_t i = 0; i < 40; ++i)
    for (std::size_t j = 0; j < 40; ++j) expect(i, j) *= 0.25;
  const Matrix a = random_matrix(40, 8, 305);
  const Matrix b = random_matrix(8, 40, 306);
  abft::blocked_gemm(0.0, a.view(), Trans::No, b.view(), Trans::No, 0.25,
                     c.view(), 1);
  EXPECT_EQ(abft::max_abs_diff(expect, c), 0.0);

  Matrix c0 = random_matrix(40, 40, 307);
  const double dummy = 0.0;
  const ConstMatrixView empty_a(&dummy, 40, 0, 0);  // k == 0
  const ConstMatrixView empty_b(&dummy, 0, 40, 40);
  abft::blocked_gemm(1.0, empty_a, Trans::No, empty_b, Trans::No, 0.0,
                     c0.view(), 1);
  EXPECT_EQ(c0.max_abs(), 0.0);
}

TEST(BlockedGemm, BetaZeroOverwritesNaNPoisonedCOnBothPaths) {
  // BLAS semantics: β == 0 never reads C, so a NaN-poisoned output block
  // (the wiped-block marker) is overwritten identically on both paths —
  // the result cannot depend on the size-based dispatch cutover.
  Matrix c_naive = random_matrix(64, 64, 320);
  c_naive(3, 5) = std::numeric_limits<double>::quiet_NaN();
  Matrix c_blocked = c_naive;
  const Matrix a = random_matrix(64, 64, 321);
  const Matrix b = random_matrix(64, 64, 322);
  abft::naive_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0,
                   c_naive.view());
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0,
                     c_blocked.view(), 1);
  EXPECT_FALSE(abft::has_nan(c_naive.view()));
  EXPECT_FALSE(abft::has_nan(c_blocked.view()));
  EXPECT_LT(abft::max_abs_diff(c_naive, c_blocked), kTol);
}

TEST(BlockedGemm, FusedBetaDeterministicAcrossThreadCounts) {
  const Matrix a = random_matrix(150, 300, 311);
  const Matrix b = random_matrix(300, 140, 312);
  const Matrix c0 = random_matrix(150, 140, 313);
  Matrix c1 = c0, c4 = c0;
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.7,
                     c1.view(), 1);
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.7,
                     c4.view(), 4);
  EXPECT_EQ(abft::max_abs_diff(c1, c4), 0.0);
}

TEST(BlockedGemm, DeterministicAcrossThreadCounts) {
  const Matrix a = random_matrix(257, 193, 21);
  const Matrix b = random_matrix(193, 201, 22);
  Matrix c1(257, 201, 0.0);
  Matrix c2(257, 201, 0.0);
  Matrix c8(257, 201, 0.0);
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0,
                     c1.view(), 1);
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0,
                     c2.view(), 2);
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.0,
                     c8.view(), 8);
  EXPECT_EQ(abft::max_abs_diff(c1, c2), 0.0);
  EXPECT_EQ(abft::max_abs_diff(c1, c8), 0.0);
}

// NUMA placement must never change results: run the same GEMM with pinning
// off, then with pinning on under a fake two-node topology (so the per-node
// B-replication path executes even on single-node CI), at several thread
// counts — all bitwise identical.
TEST(BlockedGemm, NumaPinnedBitwiseIdenticalToUnpinned) {
  const Matrix a = random_matrix(200, 260, 411);
  const Matrix b = random_matrix(260, 180, 412);
  const Matrix c0 = random_matrix(200, 180, 413);

  Matrix reference = c0;
  abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.3,
                     reference.view(), 2);

  // Fake two nodes aliasing CPU 0 so the multi-node path runs anywhere.
  std::vector<common::NumaNode> nodes(2);
  nodes[0].id = 0;
  nodes[0].cpus = {0};
  nodes[1].id = 1;
  nodes[1].cpus = {0};
  common::Topology::set_system_for_testing(
      std::make_shared<const common::Topology>(
          common::Topology::from_nodes(std::move(nodes))));

  {
    KernelPolicy p;
    p.path = KernelPath::blocked;
    p.numa_pin = true;
    KernelPolicyGuard guard(p);
    EXPECT_TRUE(common::Executor::global().worker_pinning());
    for (const unsigned threads : {1u, 2u, 4u}) {
      Matrix c = c0;
      abft::blocked_gemm(1.0, a.view(), Trans::No, b.view(), Trans::No, 0.3,
                         c.view(), threads);
      EXPECT_EQ(abft::max_abs_diff(reference, c), 0.0)
          << "threads=" << threads;
    }
  }
  common::Topology::set_system_for_testing(nullptr);
  EXPECT_FALSE(common::Executor::global().worker_pinning());
}

TEST(KernelPolicy, DispatchCutoffAndGuard) {
  const KernelPolicy saved = abft::kernel_policy();
  {
    KernelPolicyGuard guard({KernelPath::blocked, 4});
    EXPECT_TRUE(abft::gemm_uses_blocked_path(64, 64, 64));
    EXPECT_FALSE(abft::gemm_uses_blocked_path(8, 8, 8));
    EXPECT_EQ(abft::kernel_policy().threads, 4u);
    {
      KernelPolicyGuard inner({KernelPath::naive, 1});
      EXPECT_FALSE(abft::gemm_uses_blocked_path(512, 512, 512));
    }
    EXPECT_TRUE(abft::gemm_uses_blocked_path(512, 512, 512));
  }
  EXPECT_EQ(abft::kernel_policy().path, saved.path);
  EXPECT_EQ(abft::kernel_policy().threads, saved.threads);
}

// --- Triangular solves ------------------------------------------------------

// A well-conditioned lower-triangular factor (diagonally dominant).
Matrix lower_factor(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  Matrix l = Matrix::diag_dominant(n, rng);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  return l;
}

Matrix upper_factor(std::size_t n, std::uint64_t seed) {
  common::Rng rng(seed);
  Matrix u = Matrix::diag_dominant(n, rng);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) u(i, j) = 0.0;
  return u;
}

TEST(BlockedTrsm, RightUpperMatchesNaive) {
  const std::size_t n = 192;  // above the blocked cutoff
  const Matrix u = upper_factor(n, 31);
  const Matrix b0 = random_matrix(150, n, 32);  // row count off the tile
  Matrix b_naive = b0;
  Matrix b_blocked = b0;
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    abft::trsm_right_upper(u.view(), b_naive.view());
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    abft::trsm_right_upper(u.view(), b_blocked.view());
  }
  EXPECT_LT(abft::max_abs_diff(b_naive, b_blocked), kTol);
}

TEST(BlockedTrsm, LeftLowerUnitMatchesNaive) {
  const std::size_t n = 200;
  // The diagonal is implicitly 1, so keep the strict lower part small: with
  // O(1) entries forward substitution amplifies like ∏(1+|l|) and absolute
  // comparison of the two paths becomes meaningless.
  Matrix l = lower_factor(n, 41);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) l(i, j) /= static_cast<double>(n);
  const Matrix b0 = random_matrix(n, 137, 42);
  Matrix b_naive = b0;
  Matrix b_blocked = b0;
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    abft::trsm_left_lower_unit(l.view(), b_naive.view());
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    abft::trsm_left_lower_unit(l.view(), b_blocked.view());
  }
  EXPECT_LT(abft::max_abs_diff(b_naive, b_blocked), kTol);
}

TEST(BlockedTrsm, RightLowerTransMatchesNaive) {
  const std::size_t n = 160;
  const Matrix l = lower_factor(n, 51);
  const Matrix b0 = random_matrix(143, n, 52);
  Matrix b_naive = b0;
  Matrix b_blocked = b0;
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    abft::trsm_right_lower_trans(l.view(), b_naive.view());
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    abft::trsm_right_lower_trans(l.view(), b_blocked.view());
  }
  EXPECT_LT(abft::max_abs_diff(b_naive, b_blocked), kTol);
}

// --- Factorizations ---------------------------------------------------------

TEST(BlockedFactor, GetrfMatchesNaive) {
  for (const std::size_t n : {150u, 193u, 256u}) {
    common::Rng rng(61 + n);
    const Matrix a0 = Matrix::diag_dominant(n, rng);
    Matrix a_naive = a0;
    Matrix a_blocked = a0;
    {
      KernelPolicyGuard guard({KernelPath::naive, 1});
      abft::getf2_nopiv(a_naive.view());
    }
    {
      KernelPolicyGuard guard({KernelPath::blocked, 1});
      abft::getf2_nopiv(a_blocked.view());
    }
    EXPECT_LT(abft::max_abs_diff(a_naive, a_blocked), kTol) << "n=" << n;
  }
}

TEST(BlockedFactor, PotrfMatchesNaiveAndLeavesUpperUntouched) {
  for (const std::size_t n : {150u, 193u, 256u}) {
    common::Rng rng(71 + n);
    Matrix a0 = Matrix::spd(n, rng);
    // Sentinel the strict upper triangle: the lower-Cholesky contract says
    // it is never written.
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) a0(i, j) = 1e99 + double(i + j);
    Matrix a_naive = a0;
    Matrix a_blocked = a0;
    {
      KernelPolicyGuard guard({KernelPath::naive, 1});
      abft::potf2_lower(a_naive.view());
    }
    {
      KernelPolicyGuard guard({KernelPath::blocked, 1});
      abft::potf2_lower(a_blocked.view());
    }
    EXPECT_LT(abft::max_abs_diff(a_naive, a_blocked), kTol) << "n=" << n;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        ASSERT_EQ(a_blocked(i, j), a0(i, j)) << "upper entry written";
  }
}

TEST(BlockedFactor, Geqr2AgreesAcrossPolicies) {
  // geqr2's panel math is policy-independent; this pins that contract (and
  // the reflector application it feeds) under both paths.
  const Matrix a0 = random_matrix(120, 45, 81);
  Matrix a_naive = a0;
  Matrix a_blocked = a0;
  std::vector<double> tau_naive, tau_blocked;
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    abft::geqr2(a_naive.view(), tau_naive);
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 2});
    abft::geqr2(a_blocked.view(), tau_blocked);
  }
  EXPECT_LT(abft::max_abs_diff(a_naive, a_blocked), kTol);
  ASSERT_EQ(tau_naive.size(), tau_blocked.size());
  for (std::size_t j = 0; j < tau_naive.size(); ++j)
    EXPECT_NEAR(tau_naive[j], tau_blocked[j], kTol);

  Matrix c_naive = random_matrix(120, 30, 82);
  Matrix c_blocked = c_naive;
  abft::apply_reflectors_left(a_naive.view(), tau_naive, c_naive.view());
  abft::apply_reflectors_left(a_blocked.view(), tau_blocked,
                              c_blocked.view());
  EXPECT_LT(abft::max_abs_diff(c_naive, c_blocked), kTol);
}

// --- Compact-WY blocked reflector application -------------------------------

// Factor a random m×k panel with geqr2, returning the compact panel + taus.
std::pair<Matrix, std::vector<double>> qr_panel(std::size_t m, std::size_t k,
                                                std::uint64_t seed) {
  Matrix p = random_matrix(m, k, seed);
  std::vector<double> tau;
  abft::geqr2(p.view(), tau);
  return {std::move(p), std::move(tau)};
}

TEST(CompactWy, BlockedApplyMatchesReferenceOnTallPanel) {
  const auto [p, tau] = qr_panel(300, 24, 401);
  const Matrix c0 = random_matrix(300, 150, 402);
  Matrix c_ref = c0, c_blk = c0;
  abft::apply_reflectors_left_reference(p.view(), tau, c_ref.view());
  abft::apply_reflectors_blocked_left(p.view(), tau, c_blk.view());
  EXPECT_LT(abft::max_abs_diff(c_ref, c_blk), kTol);
}

TEST(CompactWy, HandlesTauZeroColumns) {
  // Columns that start all-zero stay zero under every reflector (H·0 = 0),
  // so geqr2 emits tau == 0 for them; the T factor must drop them exactly.
  Matrix a = random_matrix(120, 16, 403);
  for (std::size_t i = 0; i < 120; ++i) a(i, 3) = a(i, 10) = 0.0;
  std::vector<double> tau;
  abft::geqr2(a.view(), tau);
  ASSERT_EQ(tau[3], 0.0);
  ASSERT_EQ(tau[10], 0.0);
  const Matrix c0 = random_matrix(120, 70, 404);
  Matrix c_ref = c0, c_blk = c0;
  abft::apply_reflectors_left_reference(a.view(), tau, c_ref.view());
  abft::apply_reflectors_blocked_left(a.view(), tau, c_blk.view());
  EXPECT_LT(abft::max_abs_diff(c_ref, c_blk), kTol);
}

TEST(CompactWy, NonMultipleOfTileSizes) {
  // k, m, n all off the register tile and the panel width.
  const std::tuple<std::size_t, std::size_t, std::size_t> shapes[] = {
      {97, 5, 33}, {65, 13, 129}, {200, 31, 77}};
  for (const auto& [m, k, n] : shapes) {
    const auto [p, tau] = qr_panel(m, k, 405 + m);
    const Matrix c0 = random_matrix(m, n, 406 + n);
    Matrix c_ref = c0, c_blk = c0;
    abft::apply_reflectors_left_reference(p.view(), tau, c_ref.view());
    abft::apply_reflectors_blocked_left(p.view(), tau, c_blk.view());
    EXPECT_LT(abft::max_abs_diff(c_ref, c_blk), kTol)
        << "m=" << m << " k=" << k << " n=" << n;
  }
}

TEST(CompactWy, StridedViews) {
  // Panel and target live inside larger matrices (ld > cols), the layout
  // every AbftQr trailing/checksum application uses.
  Matrix big = random_matrix(260, 240, 407);
  Matrix pan = big;
  MatrixView panel = pan.block(20, 10, 220, 18);
  std::vector<double> tau;
  abft::geqr2(panel, tau);
  Matrix tgt_ref = random_matrix(260, 200, 408);
  Matrix tgt_blk = tgt_ref;
  abft::apply_reflectors_left_reference(panel, tau,
                                        tgt_ref.block(20, 30, 220, 120));
  abft::apply_reflectors_blocked_left(panel, tau,
                                      tgt_blk.block(20, 30, 220, 120));
  EXPECT_LT(abft::max_abs_diff(tgt_ref, tgt_blk), kTol);
}

TEST(CompactWy, BitwiseDeterministicAcrossWorkerCounts) {
  const auto [p, tau] = qr_panel(320, 32, 409);
  const Matrix c0 = random_matrix(320, 256, 410);
  Matrix c1 = c0, c2 = c0, c4 = c0;
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    abft::apply_reflectors_blocked_left(p.view(), tau, c1.view());
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 2});
    abft::apply_reflectors_blocked_left(p.view(), tau, c2.view());
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 4});
    abft::apply_reflectors_blocked_left(p.view(), tau, c4.view());
  }
  EXPECT_EQ(abft::max_abs_diff(c1, c2), 0.0);
  EXPECT_EQ(abft::max_abs_diff(c1, c4), 0.0);
}

TEST(CompactWy, ReverseApplyMatchesSequentialReverse) {
  const auto [p, tau] = qr_panel(200, 16, 411);
  const Matrix c0 = random_matrix(200, 90, 412);
  Matrix c_ref = c0, c_blk = c0;
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    abft::apply_reflectors_left_reverse(p.view(), tau, c_ref.view());
  }
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    abft::apply_reflectors_left_reverse(p.view(), tau, c_blk.view());
  }
  EXPECT_LT(abft::max_abs_diff(c_ref, c_blk), kTol);
  // Reverse-of-forward is the identity up to rounding (the H_j are
  // involutions): a strong cross-check that both orders are consistent.
  Matrix round_trip = c0;
  abft::apply_reflectors_left(p.view(), tau, round_trip.view());
  abft::apply_reflectors_left_reverse(p.view(), tau, round_trip.view());
  EXPECT_LT(abft::max_abs_diff(round_trip, c0), 1e-9);
}

TEST(CompactWy, FormTReproducesProductOfReflectors) {
  // I − V·T·Vᵀ applied to the identity must equal H_0·…·H_{k-1} column by
  // column (the reverse-order application of the reference loops).
  const std::size_t m = 60, k = 12;
  const auto [p, tau] = qr_panel(m, k, 413);
  Matrix t(k, k, 0.0);
  abft::form_t(p.view(), tau, t.view());
  // Upper triangular with tau on the diagonal.
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(t(j, j), tau[j], kTol);
    for (std::size_t i = j + 1; i < k; ++i) EXPECT_EQ(t(i, j), 0.0);
  }
  Matrix wy = Matrix::identity(m);
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    abft::apply_reflectors_left_reverse(p.view(), tau, wy.view());
  }
  Matrix seq = Matrix::identity(m);
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    abft::apply_reflectors_left_reverse(p.view(), tau, seq.view());
  }
  EXPECT_LT(abft::max_abs_diff(wy, seq), kTol);
}

TEST(CompactWy, DispatchCutover) {
  {
    KernelPolicyGuard guard({KernelPath::blocked, 1});
    EXPECT_TRUE(abft::qr_apply_uses_blocked_path(512, 512, 16));
    EXPECT_FALSE(abft::qr_apply_uses_blocked_path(512, 512, 1));  // k == 1
    EXPECT_FALSE(abft::qr_apply_uses_blocked_path(16, 8, 4));  // tiny target
  }
  {
    KernelPolicyGuard guard({KernelPath::naive, 1});
    EXPECT_FALSE(abft::qr_apply_uses_blocked_path(512, 512, 16));
  }
}

// --- Parallel checksums -----------------------------------------------------

TEST(ParallelChecksums, BitwiseDeterministicAcrossThreadCounts) {
  const Matrix a = random_matrix(96, 128, 91);
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    KernelPolicyGuard guard({KernelPath::blocked, threads});
    const Matrix row_cs = abft::row_group_checksums(a, 16, 2);
    const Matrix col_cs = abft::col_group_checksums(a, 16, 4);
    KernelPolicyGuard serial({KernelPath::blocked, 1});
    EXPECT_EQ(abft::max_abs_diff(row_cs, abft::row_group_checksums(a, 16, 2)),
              0.0)
        << "threads=" << threads;
    EXPECT_EQ(abft::max_abs_diff(col_cs, abft::col_group_checksums(a, 16, 4)),
              0.0)
        << "threads=" << threads;
  }
}

// --- CRC-32 -----------------------------------------------------------------

std::uint32_t bytewise_crc32(std::span<const std::byte> data,
                             std::uint32_t seed) {
  // The classic one-table formulation the slice-by-8 kernel must match.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : data)
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::byte> as_bytes_vec(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

TEST(Crc32, KnownVectors) {
  const auto check = as_bytes_vec("123456789");
  EXPECT_EQ(common::crc32(check), 0xCBF43926u);  // IEEE 802.3 check value
  EXPECT_EQ(common::crc32({}), 0x00000000u);
  const auto a = as_bytes_vec("a");
  EXPECT_EQ(common::crc32(a), 0xE8B7BE43u);
}

TEST(Crc32, MatchesBytewiseOnRandomBuffers) {
  common::Rng rng(123);
  for (const std::size_t len : {1u, 7u, 8u, 9u, 63u, 64u, 1000u, 4097u}) {
    std::vector<std::byte> buf(len);
    for (auto& b : buf) b = static_cast<std::byte>(rng() & 0xFF);
    EXPECT_EQ(common::crc32(buf), bytewise_crc32(buf, 0)) << "len=" << len;
  }
}

TEST(Crc32, IncrementalChainingMatchesWholeBuffer) {
  common::Rng rng(321);
  std::vector<std::byte> buf(777);
  for (auto& b : buf) b = static_cast<std::byte>(rng() & 0xFF);
  const std::uint32_t whole = common::crc32(buf);
  for (const std::size_t split : {1u, 3u, 8u, 100u, 776u}) {
    const std::uint32_t first =
        common::crc32(std::span(buf).first(split));
    const std::uint32_t chained =
        common::crc32(std::span(buf).subspan(split), first);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32, StreamingAccumulatorMatchesOneShot) {
  // Chunked == one-shot on the known vectors, for any chunking.
  const auto check = as_bytes_vec("123456789");
  for (const std::size_t chunk : {1u, 2u, 4u, 9u}) {
    common::Crc32 acc;
    for (std::size_t lo = 0; lo < check.size(); lo += chunk)
      acc.update(std::span(check).subspan(
          lo, std::min<std::size_t>(chunk, check.size() - lo)));
    EXPECT_EQ(acc.value(), 0xCBF43926u) << "chunk=" << chunk;
  }
  common::Crc32 empty;
  EXPECT_EQ(empty.value(), 0x00000000u);
  empty.update({});
  EXPECT_EQ(empty.value(), 0x00000000u);

  common::Crc32 reused;
  reused.update(std::span(check));
  reused.reset();
  const auto a = as_bytes_vec("a");
  reused.update(std::span(a));
  EXPECT_EQ(reused.value(), 0xE8B7BE43u);
}

TEST(Crc32, CombineMatchesConcatenation) {
  common::Rng rng(99);
  std::vector<std::byte> buf(5000);
  for (auto& b : buf) b = static_cast<std::byte>(rng() & 0xFF);
  const std::uint32_t whole = common::crc32(buf);
  for (const std::size_t split : {0u, 1u, 8u, 1024u, 4999u, 5000u}) {
    const std::uint32_t a = common::crc32(std::span(buf).first(split));
    const std::uint32_t b = common::crc32(std::span(buf).subspan(split));
    EXPECT_EQ(common::crc32_combine(a, b, buf.size() - split), whole)
        << "split=" << split;
  }
  // Degenerate: appending nothing is the identity.
  EXPECT_EQ(common::crc32_combine(0x12345678u, 0x0u, 0), 0x12345678u);
}

}  // namespace

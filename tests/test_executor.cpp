// Tests for the persistent executor: pool reuse across many epochs, lazy
// worker start, nested-parallelism arbitration (no deadlock, no
// oversubscription), the exception rethrow/short-circuit contract,
// submit()/ScopedArena, the work-stealing schedule (deque semantics, steal
// races, nesting and exceptions from stolen chunks, scheduler counters,
// NUMA pinning), and the determinism guarantees the rest of the repo leans
// on — group checksums and a small Experiment sweep must be bitwise
// identical across worker counts and across pool/spawn/serial dispatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "abft/checksum.hpp"
#include "abft/kernels.hpp"
#include "common/deque.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "common/time_units.hpp"
#include "common/topology.hpp"
#include "core/experiment.hpp"
#include "core/params.hpp"

namespace {

using namespace abftc;
using common::Dispatch;
using common::Executor;
using common::parallel_for;

// Runs first (default gtest ordering is declaration order): nothing in this
// binary has touched the pool yet, so no worker may exist — the pool starts
// lazily, on demand, not at static-init time.
TEST(Executor, StartsLazilyAndGrowsOnDemand) {
  EXPECT_EQ(Executor::global().spawned_helpers(), 0u)
      << "workers must not exist before the first parallel loop";

  // A serial loop must not start workers either.
  parallel_for(100, [](std::size_t) {}, 1);
  EXPECT_EQ(Executor::global().spawned_helpers(), 0u);

  std::atomic<int> hits{0};
  parallel_for(100, [&](std::size_t) { hits.fetch_add(1); }, 3);
  EXPECT_EQ(hits.load(), 100);
  EXPECT_EQ(Executor::global().spawned_helpers(), 2u)
      << "a 3-way loop needs exactly two helpers";

  // Growth is monotonic: a wider request adds workers, a narrower one
  // does not retire them.
  parallel_for(100, [&](std::size_t) {}, 5);
  EXPECT_EQ(Executor::global().spawned_helpers(), 4u);
  parallel_for(100, [&](std::size_t) {}, 2);
  EXPECT_EQ(Executor::global().spawned_helpers(), 4u);
}

TEST(Executor, ReusableAcrossManyEpochs) {
  // The regime the pool exists for: many small loops in sequence, varying
  // widths, one process-lifetime worker set. 300 epochs × up to 4 workers
  // would have been ~900 thread spawns under the old dispatcher.
  for (int epoch = 0; epoch < 300; ++epoch) {
    std::atomic<long long> sum{0};
    const std::size_t n = 64 + static_cast<std::size_t>(epoch % 37);
    parallel_for(
        n, [&](std::size_t i) { sum += static_cast<long long>(i); },
        1 + epoch % 4);
    EXPECT_EQ(sum.load(), static_cast<long long>(n * (n - 1) / 2));
  }
  EXPECT_LE(Executor::global().spawned_helpers(), 4u);
}

TEST(Executor, NestedLoopIsBoundedAndDeadlockFree) {
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<long long> inner_total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        EXPECT_GE(Executor::nesting_depth(), 1u);
        const int now = concurrent.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        // The nested loop may only borrow workers that are idle right now
        // (none, while the outer loop occupies the pool) and must never
        // grow the pool — so it completes, with the caller guaranteed to
        // make progress itself, and total concurrency stays bounded.
        parallel_for(
            64,
            [&](std::size_t i) {
              inner_total += static_cast<long long>(i);
            },
            4);
        concurrent.fetch_sub(1);
      },
      4);
  EXPECT_EQ(inner_total.load(), 8LL * (64 * 63 / 2));
  EXPECT_LE(peak.load(), 4) << "outer loop must bound outer concurrency";
  EXPECT_LE(Executor::global().spawned_helpers(), 4u)
      << "nested loops must not grow the pool";
  EXPECT_EQ(Executor::nesting_depth(), 0u);
}

TEST(Executor, RethrowsFirstExceptionWithMessage) {
  for (const Dispatch dispatch : {Dispatch::Pool, Dispatch::Spawn}) {
    try {
      parallel_for(
          1000,
          [](std::size_t i) {
            if (i == 0) throw std::runtime_error("boom");
          },
          4, dispatch);
      FAIL() << "exception must propagate";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "boom");
    }
  }
}

TEST(Executor, SubmitReturnsValuesAndPropagatesErrors) {
  auto ok = Executor::global().submit([] { return 6 * 7; });
  EXPECT_EQ(ok.get(), 42);

  auto bad = Executor::global().submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW((void)bad.get(), std::runtime_error);

  // Tasks run inside the pool's depth accounting, so loops they issue
  // follow the bounded-share nesting rules (idle workers may help, the
  // pool never grows, the task's thread always makes progress itself).
  auto nested = Executor::global().submit([] {
    std::atomic<long long> sum{0};
    parallel_for(100, [&](std::size_t i) { sum += static_cast<long long>(i); },
                 4);
    return sum.load();
  });
  EXPECT_EQ(nested.get(), 100LL * 99 / 2);
}

TEST(Executor, ScopedArenaWaitsForAllTasks) {
  std::atomic<int> done{0};
  {
    Executor::ScopedArena arena(Executor::global());
    for (int t = 0; t < 16; ++t)
      arena.submit([&done] { done.fetch_add(1); });
    arena.wait();
    EXPECT_EQ(done.load(), 16);
    EXPECT_EQ(arena.pending(), 0u);
  }

  Executor::ScopedArena failing(Executor::global());
  failing.submit([] { throw std::runtime_error("arena task"); });
  failing.submit([&done] { done.fetch_add(1); });
  EXPECT_THROW(failing.wait(), std::runtime_error);
  EXPECT_EQ(done.load(), 17) << "a failing task must not cancel its peers";
}

TEST(Executor, IsolatedInstanceHasItsOwnWorkers) {
  Executor isolated(2);
  EXPECT_EQ(isolated.max_helpers(), 2u);
  EXPECT_EQ(isolated.spawned_helpers(), 0u);

  std::atomic<int> hits{0};
  isolated.parallel_for(1000, [&](std::size_t) { hits.fetch_add(1); }, 8);
  EXPECT_EQ(hits.load(), 1000);
  EXPECT_LE(isolated.spawned_helpers(), 2u)
      << "an isolated executor must respect its own cap";
  // Destruction joins the isolated workers without touching the global pool.
}

TEST(Executor, TopLevelLoopGrowsPoolToFullBudget) {
  // A 3-cell grid with a 16-thread budget can only queue 2 helper jobs, but
  // the pool must still grow to the full budget (clamped by the cap) so the
  // cells' nested loops have parked workers to borrow.
  Executor ex(8);
  std::atomic<long long> total{0};
  ex.parallel_for(
      3,
      [&](std::size_t) {
        EXPECT_GE(Executor::nesting_depth(), 1u);
        ex.parallel_for(
            200, [&](std::size_t i) { total += static_cast<long long>(i); },
            4);
      },
      16);
  EXPECT_EQ(total.load(), 3LL * (200 * 199 / 2));
  EXPECT_EQ(ex.spawned_helpers(), 8u)
      << "pool must grow to the requested budget, not the helper-job count";
}

TEST(Executor, EffectiveThreadsIsCachedAndStable) {
  const unsigned hw = common::hardware_workers();
  EXPECT_GE(hw, 1u);
  EXPECT_EQ(common::effective_threads(0), hw);
  EXPECT_EQ(common::effective_threads(0), hw);  // second call: cached value
  EXPECT_EQ(common::effective_threads(7), 7u);
  EXPECT_EQ(abft::resolved_threads(abft::KernelPolicy{}), hw);
  EXPECT_EQ(
      abft::resolved_threads(abft::KernelPolicy{abft::KernelPath::blocked, 3}),
      3u);
}

// ---- Determinism across worker counts and dispatch modes -------------------

TEST(ExecutorDeterminism, GroupChecksumsBitwiseInvariant) {
  common::Rng rng(42);
  const abft::Matrix a = abft::Matrix::random(96, 96, rng);
  const std::size_t nb = 8, group = 3;

  abft::KernelPolicyGuard serial_guard(
      {abft::KernelPath::blocked, 1, Dispatch::Pool});
  const abft::Matrix row_ref = abft::row_group_checksums(a, nb, group);
  const abft::Matrix col_ref = abft::col_group_checksums(a, nb, group);

  for (const unsigned threads : {2u, 4u}) {
    for (const Dispatch dispatch : {Dispatch::Pool, Dispatch::Spawn}) {
      abft::KernelPolicyGuard guard(
          {abft::KernelPath::blocked, threads, dispatch});
      EXPECT_EQ(max_abs_diff(abft::row_group_checksums(a, nb, group), row_ref),
                0.0)
          << "threads=" << threads;
      EXPECT_EQ(max_abs_diff(abft::col_group_checksums(a, nb, group), col_ref),
                0.0)
          << "threads=" << threads;
    }
  }
}

TEST(ExecutorDeterminism, BlockedGemmBitwiseInvariant) {
  common::Rng rng(7);
  const abft::Matrix a = abft::Matrix::random(128, 96, rng);
  const abft::Matrix b = abft::Matrix::random(96, 112, rng);

  abft::Matrix ref(128, 112, 0.0);
  abft::blocked_gemm(1.0, a.view(), abft::Trans::No, b.view(), abft::Trans::No,
                     0.0, ref.view(), 1);

  for (const unsigned threads : {2u, 4u}) {
    for (const Dispatch dispatch : {Dispatch::Pool, Dispatch::Spawn}) {
      abft::Matrix c(128, 112, 0.0);
      abft::blocked_gemm(1.0, a.view(), abft::Trans::No, b.view(),
                         abft::Trans::No, 0.0, c.view(), threads, dispatch);
      EXPECT_EQ(max_abs_diff(c, ref), 0.0)
          << "threads=" << threads << " dispatch="
          << (dispatch == Dispatch::Pool ? "pool" : "spawn");
    }
  }
}

core::ExperimentSpec mini_sweep_spec(unsigned threads) {
  core::ExperimentSpec spec;
  spec.name = "executor_smoke";
  spec.threads = threads;
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.0);
  spec.sweep.axes = {core::Axis::step("alpha", core::AxisField::Alpha, 0.0,
                                      1.0, 0.5)};
  core::MonteCarloOptions mc;
  mc.replicates = 40;
  spec.series = core::cross_series({core::Protocol::PurePeriodicCkpt,
                                    core::Protocol::AbftPeriodicCkpt},
                                   {"model", "sim"}, {}, mc);
  return spec;
}

std::string sweep_json(unsigned threads) {
  std::ostringstream os;
  core::JsonSink sink(os);
  core::Experiment experiment(mini_sweep_spec(threads));
  experiment.add_sink(sink);
  (void)experiment.run();
  return os.str();
}

TEST(ExecutorDeterminism, ExperimentSweepBitwisePoolVsSerial) {
  const std::string serial = sweep_json(1);  // serial grid, no pool
  EXPECT_FALSE(serial.empty());
  for (const unsigned threads : {2u, 4u})
    EXPECT_EQ(sweep_json(threads), serial)
        << "sweep JSON must be byte-identical at threads=" << threads;
}

// ---- Work-stealing schedule (PR 6) -----------------------------------------

TEST(WsDeque, OwnerPushPopIsLifoAndBounded) {
  common::WsDeque<int> dq(3);  // rounds up to the next power of two
  EXPECT_EQ(dq.capacity(), 4u);
  EXPECT_FALSE(dq.pop().has_value());
  EXPECT_FALSE(dq.steal().has_value());

  for (int v = 0; v < 4; ++v) EXPECT_TRUE(dq.push(v));
  EXPECT_FALSE(dq.push(99)) << "push must report full, never grow or block";
  EXPECT_EQ(dq.approx_size(), 4u);

  for (int v = 3; v >= 0; --v) {
    const auto got = dq.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, v) << "owner pops newest-first (LIFO bottom)";
  }
  EXPECT_FALSE(dq.pop().has_value());

  // Slots recycle after a drain, and a thief takes the oldest element.
  EXPECT_TRUE(dq.push(7));
  EXPECT_TRUE(dq.push(8));
  const auto stolen = dq.steal();
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(*stolen, 7) << "thief takes the top (FIFO) end";
  const auto popped = dq.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 8);
}

TEST(WsDeque, ConcurrentStealsLoseNothingAndDuplicateNothing) {
  // Hammer the owner/thief race, including the one-element pop-vs-steal CAS
  // duel: a small array forces constant wraparound and keeps the deque near
  // the interesting (nearly empty / full) states. Every pushed value must be
  // extracted by exactly one thread. This is also the TSan workout for the
  // deque's memory-order discipline.
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  common::WsDeque<int> dq(64);
  std::vector<std::vector<int>> taken(kThieves + 1);
  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t)
    thieves.emplace_back([&dq, &done, out = &taken[t + 1]] {
      while (!done.load(std::memory_order_acquire) || dq.approx_size() > 0)
        if (const auto v = dq.steal()) out->push_back(*v);
    });

  for (int v = 0; v < kItems; ++v) {
    while (!dq.push(v))
      if (const auto got = dq.pop()) taken[0].push_back(*got);
    if (v % 3 == 0)
      if (const auto got = dq.pop()) taken[0].push_back(*got);
  }
  while (const auto got = dq.pop()) taken[0].push_back(*got);
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::vector<int> seen;
  for (const auto& vec : taken) seen.insert(seen.end(), vec.begin(), vec.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kItems))
      << "lost or duplicated elements under concurrent steals";
  std::sort(seen.begin(), seen.end());
  for (int v = 0; v < kItems; ++v)
    ASSERT_EQ(seen[static_cast<std::size_t>(v)], v);
}

TEST(ExecutorStealing, DynamicLoopRunsEveryIndexOnceAndBitwiseInvariant) {
  constexpr std::size_t kN = 4097;  // non-power-of-two, many steal units
  std::vector<double> ref(kN);
  for (std::size_t i = 0; i < kN; ++i)
    ref[i] = std::sqrt(static_cast<double>(i) + 1.0) * 1.25;

  for (const unsigned threads : {1u, 2u, 4u}) {
    std::vector<std::atomic<int>> hits(kN);
    std::vector<double> out(kN, -1.0);
    common::parallel_for_dynamic(
        kN,
        [&](std::size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
          out[i] = std::sqrt(static_cast<double>(i) + 1.0) * 1.25;
        },
        threads);
    for (std::size_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at threads=" << threads;
    EXPECT_EQ(out, ref) << "stealing may reorder claims, never change values "
                           "(threads=" << threads << ")";
  }

  // An explicit grain of one index per steal unit still covers everything.
  std::atomic<long long> sum{0};
  common::parallel_for_dynamic(
      97, [&](std::size_t i) { sum += static_cast<long long>(i); }, 4, 1);
  EXPECT_EQ(sum.load(), 97LL * 96 / 2);
}

TEST(ExecutorStealing, NestedLoopInsideStolenChunkIsBoundedAndComplete) {
  // grain=1 makes every outer index its own steal unit, so some outer bodies
  // run on thieves; the static loop nested inside each must still follow the
  // arbitration rules (borrow idle workers only, never grow the pool, always
  // progress on the calling worker).
  std::atomic<long long> inner_total{0};
  common::parallel_for_dynamic(
      16,
      [&](std::size_t) {
        EXPECT_GE(Executor::nesting_depth(), 1u);
        parallel_for(
            64, [&](std::size_t i) { inner_total += static_cast<long long>(i); },
            4);
      },
      4, 1);
  EXPECT_EQ(inner_total.load(), 16LL * (64 * 63 / 2));
  EXPECT_LE(Executor::global().spawned_helpers(), 4u)
      << "nested loops under the stealing schedule must not grow the pool";
  EXPECT_EQ(Executor::nesting_depth(), 0u);

  // The inverse nesting (dynamic inside static) must hold the same bounds.
  std::atomic<long long> dyn_total{0};
  parallel_for(
      8,
      [&](std::size_t) {
        common::parallel_for_dynamic(
            32, [&](std::size_t i) { dyn_total += static_cast<long long>(i); },
            4);
      },
      4);
  EXPECT_EQ(dyn_total.load(), 8LL * (32 * 31 / 2));
  EXPECT_LE(Executor::global().spawned_helpers(), 4u);
}

TEST(ExecutorStealing, RethrowsFirstExceptionFromStolenChunk) {
  // grain=1 spreads the indices across deques, so the throwing index is
  // frequently executed by a thief — the error must still surface on the
  // calling thread, and the remaining chunks must be abandoned, not wedged.
  try {
    common::parallel_for_dynamic(
        2048,
        [](std::size_t i) {
          if (i == 1500) throw std::runtime_error("stolen boom");
        },
        4, 1);
    FAIL() << "exception from a dynamic-loop chunk must propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "stolen boom");
  }

  // The pool survives the failed loop.
  std::atomic<int> hits{0};
  common::parallel_for_dynamic(
      100, [&](std::size_t) { hits.fetch_add(1); }, 4);
  EXPECT_EQ(hits.load(), 100);
}

TEST(ExecutorStealing, StatsCountersAdvanceAndRowsSumToTotal) {
  const common::ExecutorStats before = Executor::global().stats();
  std::atomic<long long> sum{0};
  common::parallel_for_dynamic(
      1024, [&](std::size_t i) { sum += static_cast<long long>(i); }, 4, 8);
  EXPECT_EQ(sum.load(), 1024LL * 1023 / 2);

  const common::ExecutorStats after = Executor::global().stats();
  EXPECT_GT(after.total.chunks_claimed, before.total.chunks_claimed)
      << "a dynamic loop must claim chunks";
  EXPECT_GE(after.total.tasks_stolen, before.total.tasks_stolen);
  EXPECT_GE(after.total.parks, before.total.parks);
  EXPECT_GE(after.total.unparks, before.total.unparks);

  common::ExecutorCounters rows = after.callers;
  for (const common::ExecutorCounters& w : after.per_worker) {
    rows.chunks_claimed += w.chunks_claimed;
    rows.tasks_stolen += w.tasks_stolen;
    rows.steal_failures += w.steal_failures;
    rows.parks += w.parks;
    rows.unparks += w.unparks;
  }
  EXPECT_EQ(rows.chunks_claimed, after.total.chunks_claimed);
  EXPECT_EQ(rows.tasks_stolen, after.total.tasks_stolen);
  EXPECT_EQ(rows.steal_failures, after.total.steal_failures);
  EXPECT_EQ(rows.parks, after.total.parks);
  EXPECT_EQ(rows.unparks, after.total.unparks);
}

TEST(ExecutorStealing, StatsDeltaSubtractsSnapshots) {
  const common::ExecutorStats before = Executor::global().stats();
  std::atomic<long long> sum{0};
  common::parallel_for_dynamic(
      512, [&](std::size_t i) { sum += static_cast<long long>(i); }, 4, 8);
  const common::ExecutorStats after = Executor::global().stats();

  const common::ExecutorStats delta = after - before;
  EXPECT_EQ(delta.total.chunks_claimed,
            after.total.chunks_claimed - before.total.chunks_claimed);
  EXPECT_EQ(delta.total.tasks_stolen,
            after.total.tasks_stolen - before.total.tasks_stolen);
  EXPECT_EQ(delta.callers.chunks_claimed,
            after.callers.chunks_claimed - before.callers.chunks_claimed);
  EXPECT_GT(delta.total.chunks_claimed, 0u)
      << "the loop between the snapshots claimed chunks";
  ASSERT_EQ(delta.per_worker.size(), after.per_worker.size());
  for (std::size_t i = 0; i < delta.per_worker.size(); ++i) {
    const common::ExecutorCounters expect =
        i < before.per_worker.size()
            ? after.per_worker[i] - before.per_worker[i]
            : after.per_worker[i];  // worker born between the snapshots
    EXPECT_EQ(delta.per_worker[i].chunks_claimed, expect.chunks_claimed);
    EXPECT_EQ(delta.per_worker[i].tasks_stolen, expect.tasks_stolen);
    EXPECT_EQ(delta.per_worker[i].steal_failures, expect.steal_failures);
    EXPECT_EQ(delta.per_worker[i].parks, expect.parks);
    EXPECT_EQ(delta.per_worker[i].unparks, expect.unparks);
  }

  // Self-delta is identically zero.
  const common::ExecutorCounters zero = after.total - after.total;
  EXPECT_EQ(zero.chunks_claimed, 0u);
  EXPECT_EQ(zero.tasks_stolen, 0u);
  EXPECT_EQ(zero.steal_failures, 0u);
  EXPECT_EQ(zero.parks, 0u);
  EXPECT_EQ(zero.unparks, 0u);
}

TEST(ExecutorStealing, WorkerPinningTogglesAndNeverChangesResults) {
  // Fake 2-node topology aliasing CPU 0 so the round-robin pinning path runs
  // on this machine regardless of its real socket count.
  common::NumaNode n0, n1;
  n0.id = 0;
  n0.cpus = {0};
  n1.id = 1;
  n1.cpus = {0};
  common::Topology::set_system_for_testing(std::make_shared<common::Topology>(
      common::Topology::from_nodes({n0, n1})));

  EXPECT_FALSE(Executor::global().worker_pinning());
  Executor::global().set_worker_pinning(true);
  EXPECT_TRUE(Executor::global().worker_pinning());

  std::vector<double> ref(512);
  for (std::size_t i = 0; i < ref.size(); ++i)
    ref[i] = std::sqrt(static_cast<double>(i) + 0.5);
  std::vector<double> out(ref.size(), 0.0);
  common::parallel_for_dynamic(
      out.size(),
      [&](std::size_t i) {
        out[i] = std::sqrt(static_cast<double>(i) + 0.5);
        EXPECT_LT(Executor::current_numa_node(), 2u);
      },
      4);
  EXPECT_EQ(out, ref);

  Executor::global().set_worker_pinning(false);
  EXPECT_FALSE(Executor::global().worker_pinning());
  common::Topology::set_system_for_testing(nullptr);

  // Unpinned again: the same loop still lands every index.
  std::fill(out.begin(), out.end(), 0.0);
  common::parallel_for_dynamic(
      out.size(),
      [&](std::size_t i) { out[i] = std::sqrt(static_cast<double>(i) + 0.5); },
      4);
  EXPECT_EQ(out, ref);
}

TEST(ExecutorDeterminism, ExperimentReportsResolvedWorkerCount) {
  auto spec = mini_sweep_spec(3);
  const auto result = core::Experiment(spec).run();
  EXPECT_EQ(result.resolved_threads, 3u);

  // Metadata is opt-in so default artifacts stay byte-identical across
  // worker counts; enabling it stamps the resolved count into the JSON.
  EXPECT_EQ(sweep_json(3).find("\"threads\""), std::string::npos);
  spec.emit_thread_meta = true;
  std::ostringstream os;
  core::JsonSink sink(os);
  core::Experiment experiment(std::move(spec));
  experiment.add_sink(sink);
  (void)experiment.run();
  EXPECT_NE(os.str().find("\"threads\": 3"), std::string::npos);
}

}  // namespace

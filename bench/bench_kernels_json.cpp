/// \file bench_kernels_json.cpp
/// Dependency-free GFLOP/s probe for the kernel layer: times naive vs
/// blocked GEMM (and the blocked path at several thread counts), plus
/// reference-loop vs compact-WY blocked Householder QR (with the φ overhead
/// ratio of the ABFT-protected variant), and emits BENCH_kernels.json — the
/// perf-trajectory artifact CI tracks across PRs.
///
///   bench_kernels_json [sizes…] --reps=3 --threads=0 --out=BENCH_kernels.json
///
/// Sizes default to 256 and 512. Each (size, path, threads) cell reports the
/// best of `reps` runs plus the max-abs deviation of the blocked result from
/// the naive one. QR cells are emitted for sizes divisible by the QR panel
/// width (32); the ABFT φ cell additionally needs the block count to fit the
/// 4×2 process grid. `--threads` caps the swept thread counts (0 = up to the
/// hardware concurrency); the artifact carries the active KernelPolicy
/// (path, requested and resolved worker count, dispatch) as metadata.

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "abft/abft_qr.hpp"
#include "abft/blas.hpp"
#include "abft/kernels.hpp"
#include "common/cli.hpp"
#include "common/executor.hpp"
#include "common/json.hpp"

using namespace abftc;
using abft::Matrix;

namespace {

struct Cell {
  std::size_t n = 0;
  std::string path;
  unsigned threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  double max_abs_diff_vs_naive = 0.0;
};

struct QrCell {
  std::size_t n = 0;
  std::string path;  // "reference" or "blocked"
  unsigned threads = 1;
  double seconds = 0.0;
  double gflops = 0.0;
  double speedup_vs_reference = 0.0;
  double max_abs_diff_vs_reference = 0.0;
  double abft_seconds = 0.0;  ///< AbftQr::factor under the same path (0 = n/a)
  double phi_abft = 0.0;      ///< abft_seconds / seconds
};

// QR bench fixtures: panel width and the process grid for the ABFT variant
// (pcols = 2 → one checksum column group per two block columns).
constexpr std::size_t kQrNb = 32;
const abft::ProcessGrid kQrGrid{4, 2};

double time_best(int reps, const std::function<void()>& run) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const double dt = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best = std::min(best, dt);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string out_path = args.get_string("out", "BENCH_kernels.json");
  const unsigned max_threads =
      static_cast<unsigned>(args.get_int("threads", 0));
  args.warn_unknown(std::cerr);

  std::vector<std::size_t> sizes;
  for (const std::string& p : args.positional()) {
    // std::stoul wraps negatives, so validate the digits ourselves.
    const bool digits_only =
        !p.empty() && p.find_first_not_of("0123456789") == std::string::npos;
    std::size_t n = 0;
    if (digits_only) {
      try {
        n = static_cast<std::size_t>(std::stoul(p));
      } catch (const std::exception&) {
        n = 0;  // out of range
      }
    }
    if (n == 0 || n > 100000) {
      std::cerr << "error: matrix size must be a positive integer (≤ 100000), "
                   "got '"
                << p << "'\n";
      return 2;
    }
    sizes.push_back(n);
  }
  if (sizes.empty()) sizes = {256, 512};

  const unsigned hw = common::effective_threads(0);
  const unsigned sweep_cap = max_threads == 0 ? hw : max_threads;
  std::vector<unsigned> thread_counts{1};
  for (unsigned t = 2; t <= sweep_cap; t *= 2) thread_counts.push_back(t);

  std::vector<Cell> cells;
  for (const std::size_t n : sizes) {
    common::Rng rng(5);
    const Matrix a = Matrix::random(n, n, rng);
    const Matrix b = Matrix::random(n, n, rng);
    const double flops = 2.0 * static_cast<double>(n) * n * n;

    Matrix c_naive(n, n, 0.0);
    Cell naive{n, "naive", 1, 0.0, 0.0, 0.0};
    naive.seconds = time_best(reps, [&] {
      abft::naive_gemm(1.0, a.view(), abft::Trans::No, b.view(),
                       abft::Trans::No, 0.0, c_naive.view());
    });
    naive.gflops = flops / naive.seconds / 1e9;
    cells.push_back(naive);

    for (const unsigned t : thread_counts) {
      Matrix c_blocked(n, n, 0.0);
      Cell blocked{n, "blocked", t, 0.0, 0.0, 0.0};
      blocked.seconds = time_best(reps, [&] {
        abft::blocked_gemm(1.0, a.view(), abft::Trans::No, b.view(),
                           abft::Trans::No, 0.0, c_blocked.view(), t);
      });
      blocked.gflops = flops / blocked.seconds / 1e9;
      blocked.max_abs_diff_vs_naive = abft::max_abs_diff(c_blocked, c_naive);
      cells.push_back(blocked);
    }
  }

  // Compact-WY blocked QR vs the reference reflector loops. QR flops are
  // the standard 4/3·n³ Householder count; the ABFT cell times the full
  // protected factorization (checksum columns included) to ground φ_qr.
  std::vector<QrCell> qr_cells;
  for (const std::size_t n : sizes) {
    if (n % kQrNb != 0) continue;
    common::Rng rng(17);
    const Matrix a0 = Matrix::random(n, n, rng);
    const double flops = 4.0 / 3.0 * static_cast<double>(n) * n * n;
    const bool abft_fits = (n / kQrNb) % kQrGrid.pcols == 0;

    Matrix qr_ref = a0;
    QrCell ref{n, "reference", 1};
    {
      const abft::KernelPolicyGuard guard({abft::KernelPath::naive, 1});
      ref.seconds = time_best(reps, [&] {
        qr_ref = a0;
        abft::plain_blocked_qr(qr_ref, kQrNb);
      });
      ref.gflops = flops / ref.seconds / 1e9;
      ref.speedup_vs_reference = 1.0;
      if (abft_fits) {
        ref.abft_seconds = time_best(reps, [&] {
          abft::AbftQr qr(a0, kQrNb, kQrGrid);
          qr.factor();
        });
        ref.phi_abft = ref.abft_seconds / ref.seconds;
      }
    }
    qr_cells.push_back(ref);

    for (const unsigned t : thread_counts) {
      Matrix qr_blk = a0;
      QrCell blocked{n, "blocked", t};
      const abft::KernelPolicyGuard guard({abft::KernelPath::blocked, t});
      blocked.seconds = time_best(reps, [&] {
        qr_blk = a0;
        abft::plain_blocked_qr(qr_blk, kQrNb);
      });
      blocked.gflops = flops / blocked.seconds / 1e9;
      blocked.speedup_vs_reference = ref.seconds / blocked.seconds;
      blocked.max_abs_diff_vs_reference = abft::max_abs_diff(qr_blk, qr_ref);
      if (abft_fits) {
        blocked.abft_seconds = time_best(reps, [&] {
          abft::AbftQr qr(a0, kQrNb, kQrGrid);
          qr.factor();
        });
        blocked.phi_abft = blocked.abft_seconds / blocked.seconds;
      }
      qr_cells.push_back(blocked);
    }
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open '" << out_path << "' for writing\n";
    return 2;
  }
  const abft::KernelPolicy& policy = abft::kernel_policy();
  common::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "abft_kernels_gemm");
  json.kv("hardware_threads", hw);
  json.key("policy").begin_object();
  json.kv("path", policy.path == abft::KernelPath::blocked ? "blocked"
                                                           : "naive");
  json.kv("threads", policy.threads);
  json.kv("resolved_threads", abft::resolved_threads(policy));
  json.kv("dispatch",
          policy.dispatch == common::Dispatch::Pool ? "pool" : "spawn");
  json.end_object();
  json.key("results").begin_array();
  for (const Cell& c : cells) {
    json.begin_object();
    json.kv("n", c.n);
    json.kv("path", c.path);
    json.kv("threads", c.threads);
    json.kv("seconds", c.seconds);
    json.kv("gflops", c.gflops);
    json.kv("max_abs_diff_vs_naive", c.max_abs_diff_vs_naive);
    json.end_object();
  }
  json.end_array();
  json.key("qr").begin_array();
  for (const QrCell& c : qr_cells) {
    json.begin_object();
    json.kv("n", c.n);
    json.kv("path", c.path);
    json.kv("threads", c.threads);
    json.kv("seconds", c.seconds);
    json.kv("gflops", c.gflops);
    json.kv("speedup_vs_reference", c.speedup_vs_reference);
    json.kv("max_abs_diff_vs_reference", c.max_abs_diff_vs_reference);
    json.kv("abft_seconds", c.abft_seconds);
    json.kv("phi_abft", c.phi_abft);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  for (const Cell& c : cells)
    std::cout << "n=" << c.n << " path=" << c.path << " threads=" << c.threads
              << " time=" << c.seconds << "s gflops=" << c.gflops
              << " maxdiff=" << c.max_abs_diff_vs_naive << "\n";
  for (const QrCell& c : qr_cells)
    std::cout << "qr n=" << c.n << " path=" << c.path
              << " threads=" << c.threads << " time=" << c.seconds
              << "s gflops=" << c.gflops
              << " speedup=" << c.speedup_vs_reference
              << " phi_abft=" << c.phi_abft << "\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

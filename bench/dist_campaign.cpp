/// \file dist_campaign.cpp
/// Driver for distributed fault-injection campaigns: real forked ranks,
/// real SIGKILLs, real torn checkpoint writes — measured survival compared
/// against the model-predicted completion time per injection cell.
///
///   dist_campaign --campaign=steps:0-5,ranks:0-3,kinds:kill+flip+torn+hang
///                 --ranks=4 --n=192 --nb=32 --group=3 --ckpt-every=2
///                 --storage=mmap:/dev/shm/abftc_campaign?mb=16
///                 --seed=3405676766 --shard=0/1 --blind=1 --json
///
/// `--blind=1` runs every cell blind: the launcher verifies the checksum
/// invariant at every step boundary and localizes corruption from the
/// weighted/unweighted residual ratio — injection sites never reach its
/// recovery paths (each cell record carries injected vs located
/// coordinates and a site_match flag to prove it).
///
/// Every cell must recover (unrecovered == 0 is the hard gate); the
/// measured/predicted ratio per cell is reported for the CI band check.
/// `--shard=K/M` runs cells with index % M == K — shards of the same seed
/// merge by concatenation. `--sweep` additionally runs a small scenario
/// sweep through the experiment engine with the "dist" evaluator next to
/// the analytical model, demonstrating measured-vs-model waste.
///
/// The JSON artifact (BENCH_dist_campaign.json with bare --json) carries
/// the config, calibration constants, one record per cell, and the
/// aggregate gates.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"
#include "core/params.hpp"
#include "dist/campaign.hpp"

using namespace abftc;

namespace {

void emit_json(const std::string& path, const dist::CampaignReport& report) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot open " << path << " for writing\n";
    std::exit(2);
  }
  common::JsonWriter json(os);
  json.begin_object();
  json.kv("bench", "dist_campaign");
  json.key("config");
  json.begin_object();
  json.kv("n", report.config.n);
  json.kv("nb", report.config.nb);
  json.kv("ranks", report.config.ranks);
  json.kv("group", report.config.group);
  json.kv("ckpt_every", report.config.ckpt_every);
  json.kv("seed", report.config.seed);
  json.kv("storage", report.options.storage);
  json.kv("campaign", report.spec.to_spec());
  json.kv("shard", report.options.shard);
  json.kv("nshards", report.options.nshards);
  json.kv("blind", report.options.blind);
  json.kv("hardware_threads",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.end_object();
  json.key("calibration");
  json.begin_object();
  json.kv("clean_seconds", report.calib.t_clean);
  json.kv("restore_seconds", report.calib.restore_s);
  json.kv("check_seconds", report.calib.check_s);
  json.kv("recons_seconds", report.calib.recons_s);
  json.kv("locate_seconds", report.calib.locate_s);
  json.kv("hang_timeout_seconds", report.calib.hang_timeout_s);
  json.key("step_seconds");
  json.begin_array();
  for (const double s : report.calib.step_seconds) json.value(s);
  json.end_array();
  json.end_object();
  json.key("cells");
  json.begin_array();
  for (const dist::CellOutcome& c : report.cells) {
    json.begin_object();
    json.kv("index", c.cell.index);
    json.kv("step", c.cell.step);
    json.kv("rank", c.cell.rank);
    json.kv("kind", dist::to_string(c.cell.kind));
    json.kv("recovered", c.recovered);
    json.kv("measured_seconds", c.measured_seconds);
    json.kv("predicted_seconds", c.predicted_seconds);
    json.kv("ratio", c.ratio);
    json.kv("residual", c.residual);
    json.kv("factor_error", c.factor_error);
    json.kv("restores", c.restores);
    json.kv("reconstructions", c.reconstructions);
    json.kv("respawns", c.respawns);
    json.kv("escalations", c.escalations);
    json.kv("hangs", c.hangs);
    // Per-rung timing breakdown of the recovery this cell actually took.
    json.kv("check_seconds", c.check_seconds);
    json.kv("locate_seconds", c.locate_seconds);
    json.kv("recons_seconds", c.recons_seconds);
    json.kv("restore_seconds", c.restore_seconds);
    json.kv("hang_wait_seconds", c.hang_wait_seconds);
    json.kv("site_match", c.site_match);
    const auto sites = [&](const char* key,
                           const std::vector<dist::FaultSite>& list) {
      json.key(key);
      json.begin_array();
      for (const dist::FaultSite& s : list) {
        json.begin_object();
        json.kv("block_row", s.block_row);
        json.kv("block_col", s.block_col);
        json.kv("row", s.row);
        json.kv("col", s.col);
        json.end_object();
      }
      json.end_array();
    };
    sites("injected", c.injected);
    sites("located", c.located);
    json.end_object();
  }
  json.end_array();
  json.kv("cells_run", report.cells.size());
  json.kv("unrecovered", report.unrecovered);
  json.kv("mean_ratio", report.mean_ratio);
  json.kv("max_ratio", report.max_ratio);
  json.end_object();
}

void run_sweep_demo(const dist::DistConfig& cfg, const std::string& storage,
                    std::uint64_t seed) {
  dist::register_dist_evaluator();
  dist::DistEvalOptions& opts = dist::dist_eval_options();
  opts.n = cfg.n;
  opts.nb = cfg.nb;
  opts.ranks = cfg.ranks;
  opts.group = cfg.group;
  opts.ckpt_every = cfg.ckpt_every;
  opts.storage = storage.rfind("memory", 0) == 0 ? storage : "memory";

  core::MonteCarloOptions mc;
  mc.seed = seed;

  core::ExperimentSpec spec;
  spec.name = "dist_sweep";
  spec.threads = 1;  // the dist evaluator forks; keep the grid serial
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.5);
  spec.sweep.axes = {core::Axis::step("alpha", core::AxisField::Alpha, 0.0,
                                      1.0, 0.5)};
  spec.series = core::cross_series(core::all_protocols(), {"model", "dist"},
                                   {}, mc);

  core::Experiment experiment(std::move(spec));
  core::TableSink table(std::cout);
  experiment.add_sink(table);
  std::cout << "\n# measured (dist) vs analytical (model) waste — "
               "miniature scenarios\n";
  (void)experiment.run();
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  dist::DistConfig cfg;
  cfg.n = static_cast<std::size_t>(args.get_int("n", 192));
  cfg.nb = static_cast<std::size_t>(args.get_int("nb", 32));
  cfg.ranks = static_cast<std::size_t>(args.get_int("ranks", 4));
  cfg.group = static_cast<std::size_t>(args.get_int("group", 3));
  cfg.ckpt_every =
      static_cast<std::size_t>(args.get_int("ckpt-every", 2));
  cfg.seed = core::seed_from_args(args);

  const std::size_t nbk = cfg.n / cfg.nb;
  const std::string default_campaign =
      "steps:0-" + std::to_string(nbk - 1) + ",ranks:0-" +
      std::to_string(cfg.ranks - 1) + ",kinds:kill+flip+torn";
  const dist::CampaignSpec spec =
      dist::CampaignSpec::parse(args.get_string("campaign", default_campaign));

  dist::CampaignOptions options;
  options.storage = args.get_string("storage", "memory");
  {
    const std::string shard = args.get_string("shard", "0/1");
    const auto slash = shard.find('/');
    if (slash == std::string::npos) {
      std::cerr << "error: --shard expects K/M\n";
      return 2;
    }
    options.shard = static_cast<std::size_t>(std::stoull(shard.substr(0, slash)));
    options.nshards =
        static_cast<std::size_t>(std::stoull(shard.substr(slash + 1)));
  }
  options.blind = args.get_bool("blind", false);
  const bool want_json = args.has("json");
  std::string json_path = args.get_string("json", "");
  if (want_json && json_path.empty()) json_path = "BENCH_dist_campaign.json";
  const bool sweep = args.get_bool("sweep", false);
  args.warn_unknown(std::cerr);

  std::cout << "# dist campaign — " << spec.to_spec() << " (shard "
            << options.shard << "/" << options.nshards << ", "
            << spec.cell_count() << " cells total), n=" << cfg.n
            << " nb=" << cfg.nb << " ranks=" << cfg.ranks
            << " ckpt_every=" << cfg.ckpt_every << " storage="
            << options.storage << " seed=" << cfg.seed
            << (options.blind ? " blind" : "") << "\n";

  const dist::CampaignReport report = dist::run_campaign(cfg, spec, options);

  std::cout << "clean run: " << report.calib.t_clean * 1e3 << " ms over "
            << report.calib.step_seconds.size() << " steps; restore "
            << report.calib.restore_s * 1e3 << " ms, check "
            << report.calib.check_s * 1e3 << " ms, recons "
            << report.calib.recons_s * 1e3 << " ms, locate "
            << report.calib.locate_s * 1e3 << " ms, hang deadline "
            << report.calib.hang_timeout_s * 1e3 << " ms\n\n";
  std::cout << "index step rank kind  recovered measured[ms] predicted[ms] "
               "ratio  restores recons respawns escal hangs sites\n";
  for (const dist::CellOutcome& c : report.cells) {
    // "sites" compares derived localization to the injector's ground truth;
    // cells that inject no corruption trivially match.
    std::printf("%5zu %4zu %4zu %-5s %-9s %12.3f %13.3f %6.2f %9zu %6zu %8zu "
                "%5zu %5zu %s\n",
                c.cell.index, c.cell.step, c.cell.rank,
                std::string(dist::to_string(c.cell.kind)).c_str(),
                c.recovered ? "yes" : "NO", c.measured_seconds * 1e3,
                c.predicted_seconds * 1e3, c.ratio, c.restores,
                c.reconstructions, c.respawns, c.escalations, c.hangs,
                c.site_match ? "match" : "MISS");
  }
  std::cout << "\ncells=" << report.cells.size()
            << " unrecovered=" << report.unrecovered
            << " mean_ratio=" << report.mean_ratio
            << " max_ratio=" << report.max_ratio << "\n";

  if (want_json) {
    emit_json(json_path, report);
    std::cout << "wrote " << json_path << "\n";
  }
  if (sweep) run_sweep_demo(cfg, options.storage, cfg.seed);

  return report.unrecovered == 0 ? 0 : 1;
}

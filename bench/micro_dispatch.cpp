/// \file micro_dispatch.cpp
/// Dispatch-latency microbenchmark for the parallel substrate: how much a
/// `parallel_for` call costs beyond its body, spawn-per-call threads vs the
/// persistent pool. This is the number the executor exists to shrink — the
/// blocked factorizations issue many small GEMMs whose loop bodies are only
/// a few microseconds, so per-call thread spawn/join used to dominate.
///
///   micro_dispatch --iters=1000 --reps=500 --threads=4
///                  --out=BENCH_dispatch.json
///
/// Two loop bodies are timed: `empty` (pure dispatch cost; the body is an
/// indirect no-op call) and `tiny_gemm` (a 16x16x16 GEMM per index, the
/// small-kernel regime of blocked trailing updates). For each body the
/// serial per-call time (threads = 1) is subtracted from the parallel
/// per-call time to isolate the dispatch overhead, and the artifact reports
/// `spawn_over_pool_empty` — the factor by which the pool beats
/// spawn-per-call on empty loops (CI asserts >= 5).
///
/// Loop-shape profiler (PR 6): two irregular index spaces compare the
/// shared-cursor schedule against work-stealing —
///   `skewed`  — a heavy cluster at the tail of the index space holding
///               ~2/3 of the total work, sized to land in the static
///               schedule's final chunk (the worst case for the cursor:
///               one worker drags the cluster alone while the rest idle).
///               CI asserts `stealing_over_cursor_skewed` >= 1.3 at 4
///               workers on multi-core runners.
///   `bursty`  — heavy clusters strewn through the index space; the greedy
///               cursor handles this shape reasonably, so the ratio is
///               reported but not gated (expected ~1).
/// The executor's scheduler counters (chunks claimed, steals, steal
/// failures, park/unpark) accumulated over the stealing runs are emitted
/// under `steal_counters`.

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/executor.hpp"
#include "common/json.hpp"

using namespace abftc;

namespace {

constexpr std::size_t kTiny = 16;  // tiny-GEMM dimension

struct Result {
  std::string body;
  std::string dispatch;  // "serial", "pool", "spawn"
  unsigned threads = 1;
  double per_call_seconds = 0.0;
  double overhead_seconds = 0.0;  // per-call minus the serial reference
};

/// Mean seconds per parallel_for call over `reps` repetitions.
template <typename Fn>
double time_calls(int reps, std::size_t iters, Fn&& body, unsigned threads,
                  common::Dispatch dispatch) {
  // Warm-up: first pool call pays lazy worker creation; first spawn call
  // pays nothing special but keeps the two paths symmetric.
  common::parallel_for(iters, body, threads, dispatch);
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r)
    common::parallel_for(iters, body, threads, dispatch);
  const double total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return total / reps;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t iters =
      static_cast<std::size_t>(args.get_int("iters", 1000));
  const int reps = static_cast<int>(args.get_int("reps", 500));
  const unsigned threads =
      static_cast<unsigned>(args.get_int("threads", 4));
  const std::string out_path = args.get_string("out", "BENCH_dispatch.json");
  args.warn_unknown(std::cerr);

  // Loop bodies. The tiny-GEMM body writes its result into a per-index slot,
  // so the work cannot be elided and the loop stays race-free.
  const auto empty_body = [](std::size_t) {};
  std::vector<double> a(kTiny * kTiny), b(kTiny * kTiny), sink(iters);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = 1.0 + static_cast<double>(i % 7);
    b[i] = 2.0 - static_cast<double>(i % 5);
  }
  const auto gemm_body = [&](std::size_t idx) {
    double c[kTiny * kTiny] = {};
    for (std::size_t i = 0; i < kTiny; ++i)
      for (std::size_t p = 0; p < kTiny; ++p) {
        const double aip = a[i * kTiny + p];
        for (std::size_t j = 0; j < kTiny; ++j)
          c[i * kTiny + j] += aip * b[p * kTiny + j];
      }
    sink[idx] = c[0] + c[kTiny * kTiny - 1];
  };

  std::vector<Result> results;
  double spawn_overhead_empty = 0.0, pool_overhead_empty = 0.0;
  const auto bench_body = [&](const std::string& name, const auto& body) {
    const double serial =
        time_calls(reps, iters, body, 1, common::Dispatch::Pool);
    results.push_back({name, "serial", 1, serial, 0.0});
    for (const common::Dispatch dispatch :
         {common::Dispatch::Spawn, common::Dispatch::Pool}) {
      const bool pool = dispatch == common::Dispatch::Pool;
      const double per_call = time_calls(reps, iters, body, threads, dispatch);
      const double overhead = per_call > serial ? per_call - serial : 0.0;
      results.push_back(
          {name, pool ? "pool" : "spawn", threads, per_call, overhead});
      if (name == "empty")
        (pool ? pool_overhead_empty : spawn_overhead_empty) = overhead;
    }
  };
  bench_body("empty", empty_body);
  bench_body("tiny_gemm", gemm_body);

  // The acceptance ratio: clamp the pool denominator at 1 ns so a
  // within-noise pool overhead reads as a large, finite speedup.
  const double ratio =
      spawn_overhead_empty / std::max(pool_overhead_empty, 1e-9);

  // ---- Loop-shape profiler: cursor vs stealing on irregular loops ----------
  constexpr std::size_t kShapeN = 4096;
  std::vector<double> shape_sink(kShapeN);
  // A compute kernel whose cost scales with `units`; the result feeds the
  // per-index sink so the work cannot be elided.
  const auto burn = [](std::size_t units) {
    double x = 1.0000001;
    for (std::size_t u = 0; u < units * 50; ++u) x = x * 1.0000001 + 1e-12;
    return x;
  };
  // Tail cluster: the last n/32 indices cost 64x a light index (~2/3 of the
  // total work), which is exactly the static schedule's final chunk at 4
  // workers (chunk = n / (threads·8)).
  const auto skewed_body = [&](std::size_t i) {
    shape_sink[i] = burn(i >= kShapeN - kShapeN / 32 ? 64 : 1);
  };
  // Scattered clusters: every fourth 32-index block is 32x heavy.
  const auto bursty_body = [&](std::size_t i) {
    shape_sink[i] = burn((i / 32) % 4 == 0 ? 32 : 1);
  };
  const int shape_reps = std::max(1, reps / 10);
  const auto time_shape = [&](const auto& body, bool stealing) {
    const auto run = [&] {
      if (stealing)
        common::parallel_for_dynamic(kShapeN, body, threads);
      else
        common::parallel_for(kShapeN, body, threads);
    };
    run();  // warm-up
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < shape_reps; ++r) run();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count() /
           shape_reps;
  };

  const common::ExecutorStats before = common::Executor::global().stats();
  double shape_ratios[2] = {0.0, 0.0};
  const struct {
    const char* name;
    const std::function<void(std::size_t)> body;
  } shapes[2] = {{"skewed", skewed_body}, {"bursty", bursty_body}};
  for (int si = 0; si < 2; ++si) {
    const double cursor = time_shape(shapes[si].body, false);
    const double stealing = time_shape(shapes[si].body, true);
    shape_ratios[si] = cursor / std::max(stealing, 1e-9);
    results.push_back({shapes[si].name, "cursor", threads, cursor, 0.0});
    results.push_back({shapes[si].name, "stealing", threads, stealing, 0.0});
  }
  const common::ExecutorCounters shape_delta =
      (common::Executor::global().stats() - before).total;

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open '" << out_path << "' for writing\n";
    return 2;
  }
  common::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "dispatch_latency");
  json.kv("iters", iters);
  json.kv("reps", reps);
  json.kv("threads", threads);
  json.kv("resolved_threads", common::effective_threads(threads));
  json.kv("hardware_threads", common::hardware_workers());
  json.kv("spawn_over_pool_empty", ratio);
  json.kv("stealing_over_cursor_skewed", shape_ratios[0]);
  json.kv("stealing_over_cursor_bursty", shape_ratios[1]);
  json.key("steal_counters").begin_object();
  json.kv("chunks_claimed", shape_delta.chunks_claimed);
  json.kv("tasks_stolen", shape_delta.tasks_stolen);
  json.kv("steal_failures", shape_delta.steal_failures);
  json.kv("parks", shape_delta.parks);
  json.kv("unparks", shape_delta.unparks);
  json.end_object();
  json.key("results").begin_array();
  for (const Result& r : results) {
    json.begin_object();
    json.kv("body", r.body);
    json.kv("dispatch", r.dispatch);
    json.kv("threads", r.threads);
    json.kv("per_call_us", r.per_call_seconds * 1e6);
    json.kv("overhead_us", r.overhead_seconds * 1e6);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  for (const Result& r : results)
    std::cout << r.body << " dispatch=" << r.dispatch
              << " threads=" << r.threads
              << " per_call=" << r.per_call_seconds * 1e6 << "us"
              << " overhead=" << r.overhead_seconds * 1e6 << "us\n";
  std::cout << "pool beats spawn on empty loops by " << ratio
            << "x; stealing beats cursor on the skewed shape by "
            << shape_ratios[0] << "x (bursty: " << shape_ratios[1]
            << "x); wrote " << out_path << "\n";
  return 0;
}

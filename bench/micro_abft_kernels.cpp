/// \file micro_abft_kernels.cpp
/// google-benchmark microbenches grounding the paper's protection constants
/// in real arithmetic (E7/E8):
///   * φ — ABFT vs plain kernel runtime ratio (paper uses 1.03; ours is
///     ≈ 1 + 1/P plus bookkeeping on a P×Q grid),
///   * Recons_ABFT — checksum reconstruction time after a rank kill.

#include <benchmark/benchmark.h>

#include "abft/abft_cholesky.hpp"
#include "abft/abft_gemm.hpp"
#include "abft/abft_lu.hpp"
#include "abft/abft_qr.hpp"
#include "abft/blas.hpp"
#include "abft/kernels.hpp"

using namespace abftc;
using abft::Matrix;
using abft::ProcessGrid;

namespace {

constexpr std::size_t kNb = 16;
const ProcessGrid kGrid{4, 2};  // phi ≈ 1 + 1/4 for row-checksum kernels

Matrix dd_matrix(std::size_t n) {
  common::Rng rng(21);
  return Matrix::diag_dominant(n, rng);
}

void BM_PlainLu(benchmark::State& state) {
  const auto a0 = dd_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Matrix a = a0;
    abft::plain_blocked_lu(a, kNb);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_PlainLu)->Arg(128)->Arg(256);

void BM_AbftLu(benchmark::State& state) {
  const auto a0 = dd_matrix(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    abft::AbftLu lu(a0, kNb, kGrid);
    lu.factor();
    benchmark::DoNotOptimize(lu.lu());
  }
}
BENCHMARK(BM_AbftLu)->Arg(128)->Arg(256);

void BM_AbftLuWithFailure(benchmark::State& state) {
  const auto a0 = dd_matrix(static_cast<std::size_t>(state.range(0)));
  const std::size_t mid = a0.rows() / kNb / 2;
  for (auto _ : state) {
    abft::AbftLu lu(a0, kNb, kGrid);
    lu.factor({{mid, 3}});
    benchmark::DoNotOptimize(lu.recovery().seconds);
  }
}
BENCHMARK(BM_AbftLuWithFailure)->Arg(128)->Arg(256);

void BM_LuReconsOnly(benchmark::State& state) {
  // Isolates Recons_ABFT: factor once, then measure recover_rank via the
  // public fault path at the last boundary (all rows frozen).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const auto a0 = dd_matrix(n);
  for (auto _ : state) {
    state.PauseTiming();
    abft::AbftLu lu(a0, kNb, kGrid);
    lu.factor();
    state.ResumeTiming();
    abft::AbftLu lu2(a0, kNb, kGrid);
    lu2.factor({{n / kNb, 5}});  // kill + reconstruct after the last step
    benchmark::DoNotOptimize(lu2.recovery().blocks_recovered);
  }
}
BENCHMARK(BM_LuReconsOnly)->Arg(128);

void BM_PlainGemm(benchmark::State& state) {
  common::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n, 0.0);
  for (auto _ : state) {
    abft::gemm(1.0, a.view(), abft::Trans::No, b.view(), abft::Trans::No, 0.0,
               c.view());
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_PlainGemm)->Arg(128)->Arg(256);

// A/B the two kernel paths directly (bypassing the policy dispatcher):
// these ratios ground the φ overhead constant in realistic kernel speed.
void BM_GemmNaivePath(benchmark::State& state) {
  common::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n, 0.0);
  for (auto _ : state) {
    abft::naive_gemm(1.0, a.view(), abft::Trans::No, b.view(), abft::Trans::No,
                     0.0, c.view());
    benchmark::DoNotOptimize(c);
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(n) * double(n) * double(n) * double(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmNaivePath)->Arg(256)->Arg(512);

void BM_GemmBlockedPath(benchmark::State& state) {
  common::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  Matrix c(n, n, 0.0);
  for (auto _ : state) {
    abft::blocked_gemm(1.0, a.view(), abft::Trans::No, b.view(),
                       abft::Trans::No, 0.0, c.view(), threads);
    benchmark::DoNotOptimize(c);
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * double(n) * double(n) * double(n) * double(state.iterations()) /
          1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmBlockedPath)
    ->Args({256, 1})
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4});

void BM_AbftLuKernelPath(benchmark::State& state) {
  // The full protected factorization under each kernel path: shows the
  // end-to-end win of routing the trailing updates through the fast GEMM.
  const auto a0 = dd_matrix(256);
  const abft::KernelPolicyGuard guard(
      {state.range(0) == 0 ? abft::KernelPath::naive
                           : abft::KernelPath::blocked,
       1});
  for (auto _ : state) {
    abft::AbftLu lu(a0, kNb, kGrid);
    lu.factor();
    benchmark::DoNotOptimize(lu.lu());
  }
}
BENCHMARK(BM_AbftLuKernelPath)->Arg(0)->Arg(1);

void BM_AbftGemm(benchmark::State& state) {
  common::Rng rng(5);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  for (auto _ : state) {
    abft::AbftGemm mm(a, b, kNb, kGrid);
    benchmark::DoNotOptimize(mm.multiply());
  }
}
BENCHMARK(BM_AbftGemm)->Arg(128)->Arg(256);

void BM_PlainCholesky(benchmark::State& state) {
  common::Rng rng(13);
  const Matrix a0 = Matrix::spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    Matrix a = a0;
    abft::plain_blocked_cholesky(a, kNb);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_PlainCholesky)->Arg(128);

void BM_AbftCholesky(benchmark::State& state) {
  common::Rng rng(13);
  const Matrix a0 = Matrix::spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    abft::AbftCholesky ch(a0, kNb, kGrid);
    ch.factor();
    benchmark::DoNotOptimize(ch.factor_matrix());
  }
}
BENCHMARK(BM_AbftCholesky)->Arg(128);

void BM_AbftQr(benchmark::State& state) {
  common::Rng rng(17);
  const Matrix a0 =
      Matrix::random(static_cast<std::size_t>(state.range(0)),
                     static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    abft::AbftQr qr(a0, kNb, kGrid);
    qr.factor();
    benchmark::DoNotOptimize(qr.qr());
  }
}
BENCHMARK(BM_AbftQr)->Arg(128);

// Reference reflector loops vs the compact-WY blocked application, on the
// unprotected factorization: the QR analog of BM_GemmNaivePath/BlockedPath.
void BM_PlainQrKernelPath(benchmark::State& state) {
  common::Rng rng(17);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a0 = Matrix::random(n, n, rng);
  const abft::KernelPolicyGuard guard(
      {state.range(1) == 0 ? abft::KernelPath::naive
                           : abft::KernelPath::blocked,
       1});
  for (auto _ : state) {
    Matrix a = a0;
    abft::plain_blocked_qr(a, 32);
    benchmark::DoNotOptimize(a);
  }
  state.counters["GFLOP/s"] = benchmark::Counter(
      4.0 / 3.0 * double(n) * double(n) * double(n) *
          double(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PlainQrKernelPath)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1});

// The protected factorization under each path: the φ_qr ratio against
// BM_PlainQrKernelPath grounds the paper's ABFT overhead constant for QR the
// way BM_AbftLuKernelPath does for LU.
void BM_AbftQrKernelPath(benchmark::State& state) {
  common::Rng rng(17);
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a0 = Matrix::random(n, n, rng);
  const abft::KernelPolicyGuard guard(
      {state.range(1) == 0 ? abft::KernelPath::naive
                           : abft::KernelPath::blocked,
       1});
  for (auto _ : state) {
    abft::AbftQr qr(a0, 32, kGrid);
    qr.factor();
    benchmark::DoNotOptimize(qr.qr());
  }
}
BENCHMARK(BM_AbftQrKernelPath)->Args({256, 0})->Args({256, 1});

}  // namespace

BENCHMARK_MAIN();

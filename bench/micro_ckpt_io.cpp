/// \file micro_ckpt_io.cpp
/// Checkpoint I/O microbenchmark: commit latency and restore bandwidth per
/// storage backend (memory / file / mmap / log) at several image sizes,
/// comparing the serial copy→CRC→write reference against the CkptWriter
/// pipeline that overlaps the CRC with backend writes.
///
///   micro_ckpt_io --backends=memory,file,mmap,log --sizes-mb=2,8,32
///                 --reps=4 --dir=/tmp/abftc_ckpt_io --chunk-kb=1024
///                 --committers=1,2,4,8 --out=BENCH_ckpt_io.json
///
/// Per (backend, size) the artifact reports best-of-reps serial and async
/// commit times, the speedup `serial_ms / async_ms`, and restore bandwidth;
/// `best_async_speedup` is the maximum speedup observed (CI gates it — the
/// pipeline must beat write-then-CRC somewhere — and skips the gate on
/// single-core runners where there is no second core to hide the CRC on).
///
/// A second scenario measures the *commit storm*: per (backend, committer
/// count) a fresh store takes `committers` concurrent writer threads, each
/// committing several fixed-size snapshots; the `committer_scaling` block
/// reports aggregate commit throughput per cell. Backends that don't
/// support concurrent committers are serialized on a mutex — their flat
/// (or falling) curve against the log backend's rising one is the point of
/// the comparison, and CI gates log ≥ 2× file at 4 committers.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/image.hpp"
#include "ckpt/io/backend.hpp"
#include "ckpt/io/writer.hpp"
#include "common/cli.hpp"
#include "common/crc32.hpp"
#include "common/executor.hpp"
#include "common/json.hpp"

using namespace abftc;
namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct Row {
  std::string backend;
  std::size_t bytes = 0;
  double serial_s = 0.0;
  double async_s = 0.0;
  double restore_s = 0.0;
};

std::string backend_spec(const std::string& kind, const std::string& dir,
                         std::size_t largest_bytes) {
  if (kind == "memory") return "memory";
  if (kind == "file") return "file:" + dir + "/file_store";
  if (kind == "mmap") {
    // Arena sized to hold the largest image with table/alignment headroom.
    const std::size_t mb = std::max<std::size_t>(8, (largest_bytes >> 20) + 4);
    return "mmap:" + dir + "/arena.ckpt?mb=" + std::to_string(mb);
  }
  if (kind == "log") return "log:" + dir + "/log_store?shards=8";
  std::cerr << "error: unknown backend '" << kind
            << "' (known: memory, file, mmap, log)\n";
  std::exit(2);
}

struct ScalingRow {
  std::string backend;
  int committers = 0;
  double wall_s = 0.0;        ///< best-of-reps round wall time
  double commit_MBps = 0.0;   ///< aggregate across all committers
};

/// One commit-storm cell: `committers` threads, each committing `per_thread`
/// snapshots of `bytes` against a fresh store. The mmap arena must hold the
/// whole round, so cells get their own store directory, removed afterwards.
ScalingRow committer_cell(const std::string& kind, const std::string& dir,
                          int committers, int per_thread, std::size_t bytes,
                          int reps, std::span<const std::byte> payload) {
  ScalingRow row;
  row.backend = kind;
  row.committers = committers;
  row.wall_s = std::numeric_limits<double>::infinity();

  ckpt::io::SnapshotBlob proto;
  proto.meta.kind = ckpt::CkptKind::Full;
  proto.meta.bytes = bytes;
  ckpt::io::RegionBlob region;
  region.region = 1;
  region.crc = common::crc32(payload.subspan(0, bytes));
  region.payload.assign(payload.begin(), payload.begin() + bytes);
  proto.regions.push_back(std::move(region));

  const std::string store = dir + "/cscale_" + kind;
  const std::size_t total = bytes * committers * per_thread;
  for (int rep = 0; rep < reps; ++rep) {
    fs::remove_all(store);
    fs::create_directories(store);
    const std::size_t mb = std::max<std::size_t>(8, (total >> 20) + 8);
    auto backend = ckpt::io::make_backend(
        kind == "mmap" ? "mmap:" + store + "/arena.ckpt?mb=" +
                             std::to_string(mb)
                       : backend_spec(kind, store, total));
    const bool concurrent = backend->concurrent_committers();
    std::mutex serial;
    std::vector<std::thread> threads;
    threads.reserve(committers);
    const auto t0 = Clock::now();
    for (int t = 0; t < committers; ++t) {
      threads.emplace_back([&, t] {
        ckpt::io::SnapshotBlob blob = proto;
        for (int c = 0; c < per_thread; ++c) {
          blob.meta.id =
              static_cast<ckpt::CkptId>(t * per_thread + c + 1);
          blob.meta.when = static_cast<double>(blob.meta.id);
          if (concurrent) {
            backend->write_snapshot(blob);
          } else {
            std::lock_guard lock(serial);
            backend->write_snapshot(blob);
          }
        }
      });
    }
    for (std::thread& th : threads) th.join();
    row.wall_s = std::min(row.wall_s, seconds_since(t0));
    backend.reset();
    fs::remove_all(store);
  }
  row.commit_MBps =
      (static_cast<double>(total) / (1024.0 * 1024.0)) / row.wall_s;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const auto backends =
      args.get_list("backends", {"memory", "file", "mmap", "log"});
  const auto sizes_mb = args.get_double_list("sizes-mb", {2, 8, 32});
  const auto committer_counts =
      args.get_double_list("committers", {1, 2, 4, 8});
  const double commit_mb = args.get_double("commit-mb", 4.0);
  const int reps = static_cast<int>(args.get_int("reps", 4));
  const std::string dir =
      args.get_string("dir", (fs::temp_directory_path() / "abftc_ckpt_io")
                                 .string());
  const std::size_t chunk_bytes =
      static_cast<std::size_t>(args.get_int("chunk-kb", 1024)) * 1024;
  const std::string out_path = args.get_string("out", "BENCH_ckpt_io.json");
  args.warn_unknown(std::cerr);

  fs::create_directories(dir);
  std::size_t largest = 0;
  for (const double mb : sizes_mb)
    largest = std::max(largest,
                       static_cast<std::size_t>(mb * 1024.0 * 1024.0));

  // Scratch image data: 70% LIBRARY + 30% REMAINDER, non-trivial bytes so
  // neither the CRC nor compression-happy filesystems can shortcut.
  std::vector<std::byte> lib(largest * 7 / 10), rem(largest - lib.size());
  for (std::size_t i = 0; i < lib.size(); ++i)
    lib[i] = static_cast<std::byte>((i * 2654435761u) >> 13);
  for (std::size_t i = 0; i < rem.size(); ++i)
    rem[i] = static_cast<std::byte>((i * 40503u) >> 7);

  std::vector<Row> rows;
  double best_speedup = 0.0;
  for (const std::string& kind : backends) {
    auto backend = ckpt::io::make_backend(backend_spec(kind, dir, largest));
    double when = 1.0;
    for (const double mb : sizes_mb) {
      const auto bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
      Row row;
      row.backend = kind;
      row.bytes = bytes;
      row.serial_s = std::numeric_limits<double>::infinity();
      row.async_s = std::numeric_limits<double>::infinity();
      row.restore_s = std::numeric_limits<double>::infinity();

      for (const bool async : {false, true}) {
        ckpt::io::WriterOptions opts;
        opts.chunk_bytes = chunk_bytes;
        opts.async = async;
        ckpt::io::CkptWriter writer(*backend, opts);
        for (int rep = 0; rep < reps; ++rep) {
          ckpt::MemoryImage image;
          image.add_region("lib", std::span(lib.data(), bytes * 7 / 10),
                           ckpt::RegionClass::Library);
          image.add_region("rem",
                           std::span(rem.data(), bytes - bytes * 7 / 10),
                           ckpt::RegionClass::Remainder);
          auto t0 = Clock::now();
          const ckpt::CkptId id = writer.take_full(image, when);
          const double commit = seconds_since(t0);
          (async ? row.async_s : row.serial_s) =
              std::min(async ? row.async_s : row.serial_s, commit);
          when += 1.0;

          t0 = Clock::now();
          (void)writer.restore_latest(image);
          row.restore_s = std::min(row.restore_s, seconds_since(t0));
          backend->drop(id);
        }
      }
      best_speedup = std::max(best_speedup, row.serial_s / row.async_s);
      rows.push_back(row);
    }
  }

  // Commit-storm scenario: fixed snapshot size, varying committer count.
  const auto commit_bytes =
      static_cast<std::size_t>(commit_mb * 1024.0 * 1024.0);
  std::vector<std::byte> storm(commit_bytes);
  for (std::size_t i = 0; i < storm.size(); ++i)
    storm[i] = static_cast<std::byte>((i * 2246822519u) >> 11);
  std::vector<ScalingRow> scaling;
  for (const std::string& kind : backends)
    for (const double c : committer_counts)
      scaling.push_back(committer_cell(kind, dir, static_cast<int>(c), 3,
                                       commit_bytes, reps,
                                       std::span(storm)));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "error: cannot open '" << out_path << "' for writing\n";
    return 2;
  }
  common::JsonWriter json(out);
  json.begin_object();
  json.kv("bench", "ckpt_io");
  json.kv("chunk_bytes", chunk_bytes);
  json.kv("reps", reps);
  json.kv("hardware_threads", common::hardware_workers());
  json.kv("best_async_speedup", best_speedup);
  json.key("results").begin_array();
  for (const Row& r : rows) {
    const auto mbytes = static_cast<double>(r.bytes) / (1024.0 * 1024.0);
    json.begin_object();
    json.kv("backend", r.backend);
    json.kv("bytes", r.bytes);
    json.kv("serial_ms", r.serial_s * 1e3);
    json.kv("async_ms", r.async_s * 1e3);
    json.kv("async_speedup", r.serial_s / r.async_s);
    json.kv("commit_MBps", mbytes / r.async_s);
    json.kv("restore_MBps", mbytes / r.restore_s);
    json.end_object();
  }
  json.end_array();
  json.kv("commit_mb", commit_mb);
  json.key("committer_scaling").begin_array();
  for (const ScalingRow& r : scaling) {
    json.begin_object();
    json.kv("backend", r.backend);
    json.kv("committers", r.committers);
    json.kv("wall_s", r.wall_s);
    json.kv("commit_MBps", r.commit_MBps);
    json.end_object();
  }
  json.end_array();
  json.end_object();

  for (const Row& r : rows)
    std::cout << r.backend << " " << r.bytes / (1024 * 1024) << "MiB"
              << " serial=" << r.serial_s * 1e3 << "ms"
              << " async=" << r.async_s * 1e3 << "ms"
              << " speedup=" << r.serial_s / r.async_s
              << " restore=" << (static_cast<double>(r.bytes) / (1024.0 * 1024.0)) / r.restore_s
              << "MB/s\n";
  for (const ScalingRow& r : scaling)
    std::cout << r.backend << " committers=" << r.committers
              << " wall=" << r.wall_s * 1e3 << "ms"
              << " aggregate=" << r.commit_MBps << "MB/s\n";
  std::cout << "best async-over-serial speedup " << best_speedup
            << "x; wrote " << out_path << "\n";
  return 0;
}

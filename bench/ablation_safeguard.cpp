/// \file ablation_safeguard.cpp
/// Ablation E9: the §III-B safeguard. The composite protocol forces partial
/// checkpoints around every library call, so when a call is *short* relative
/// to the optimal checkpoint interval, ABFT protection costs more than it
/// saves. The safeguard compares the projected ABFT-protected duration
/// (φ·T_L) against P_opt and falls back to periodic checkpointing.
///
/// This bench sweeps the library-call duration and prints the composite
/// waste with the safeguard on and off, against the BiPeriodicCkpt and
/// PurePeriodicCkpt references — showing the safeguard tracking
/// min(ABFT, periodic) as the paper intends.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/protocol_models.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double mtbf_min = args.get_double("mtbf-min", 120.0);

  // One day of work split into epochs whose library share has a fixed
  // ratio but a varying absolute duration.
  std::cout << "# Ablation: safeguard vs library-call duration "
               "(MTBF = " << mtbf_min << " min, C=R=10min, rho=0.8, "
               "phi=1.03, alpha=0.8)\n\n";

  common::Table table({"T_L per call", "phi*T_L vs P_opt", "ABFT on?",
                       "composite(safeguard)", "composite(always-ABFT)",
                       "BiPeriodic", "Pure"});

  for (const double tl_min :
       {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 360.0, 1440.0}) {
    core::ScenarioParams s =
        core::figure7_scenario(common::minutes(mtbf_min), 0.8);
    // Keep a one-week run but re-chunk it into epochs with T_L = tl_min.
    const double epoch = common::minutes(tl_min) / 0.8;
    s.epoch.duration = epoch;
    s.epochs = static_cast<std::size_t>(common::weeks(1) / epoch);
    s.validate();

    const auto guarded = core::evaluate_composite(s, {.safeguard = true});
    const auto always = core::evaluate_composite(s, {.safeguard = false});
    const auto bi = core::evaluate_bi(s);
    const auto pure = core::evaluate_pure(s);
    const auto p_opt = core::optimal_period_first_order(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);

    table.add_row(
        {common::format_duration(common::minutes(tl_min)),
         common::fmt_fixed(s.abft.phi * s.epoch.library() /
                               p_opt.value_or(1.0),
                           2),
         guarded.abft_active ? "yes" : "no",
         common::fmt_fixed(guarded.waste(), 4),
         common::fmt_fixed(always.waste(), 4),
         common::fmt_fixed(bi.waste(), 4), common::fmt_fixed(pure.waste(), 4)});
  }
  table.print(std::cout);
  std::cout << "\nReading: with short calls the always-ABFT column pays the "
               "forced per-call checkpoints; the safeguard column falls back "
               "to (bi-)periodic checkpointing and only engages ABFT once "
               "phi*T_L reaches the optimal interval.\n";
  return 0;
}

/// \file ablation_safeguard.cpp
/// Ablation E9: the §III-B safeguard. The composite protocol forces partial
/// checkpoints around every library call, so when a call is *short* relative
/// to the optimal checkpoint interval, ABFT protection costs more than it
/// saves. The safeguard compares the projected ABFT-protected duration
/// (φ·T_L) against P_opt and falls back to periodic checkpointing.
///
/// This bench sweeps the library-call duration and prints the composite
/// waste with the safeguard on and off, against the BiPeriodicCkpt and
/// PurePeriodicCkpt references — showing the safeguard tracking
/// min(ABFT, periodic) as the paper intends.
///
/// Flags: --mtbf-min=120 --tl-min=1,5,15,30,60,120,360,1440 --json[=PATH]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"
#include "core/phase_model.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double mtbf_min = args.get_double("mtbf-min", 120.0);
  const std::vector<double> tl_mins = args.get_double_list(
      "tl-min", {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 360.0, 1440.0});
  const auto json_sink =
      core::json_sink_from_args(args, "ablation_safeguard");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  // One day of work split into epochs whose library share has a fixed
  // ratio but a varying absolute duration.
  std::cout << "# Ablation: safeguard vs library-call duration "
               "(MTBF = " << mtbf_min << " min, C=R=10min, rho=0.8, "
               "phi=1.03, alpha=0.8)\n\n";

  core::ExperimentSpec spec;
  spec.name = "ablation_safeguard";
  spec.sweep.axes = {core::Axis::custom(
      "tl_min", tl_mins, [mtbf_min](core::ScenarioParams& s, double tl) {
        s = core::figure7_scenario(common::minutes(mtbf_min), 0.8);
        // Keep a one-week run but re-chunk it into epochs with T_L = tl min.
        const double epoch = common::minutes(tl) / 0.8;
        s.epoch.duration = epoch;
        s.epochs = static_cast<std::size_t>(common::weeks(1) / epoch);
      })};
  spec.series = {
      {"model_guarded", core::Protocol::AbftPeriodicCkpt, "model",
       {.safeguard = true}, {}},
      {"model_always", core::Protocol::AbftPeriodicCkpt, "model",
       {.safeguard = false}, {}},
      {"model_bi", core::Protocol::BiPeriodicCkpt, "model", {}, {}},
      {"model_pure", core::Protocol::PurePeriodicCkpt, "model", {}, {}},
  };
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  common::Table table({"T_L per call", "phi*T_L vs P_opt", "ABFT on?",
                       "composite(safeguard)", "composite(always-ABFT)",
                       "BiPeriodic", "Pure"});
  for (const auto& cell : result.cells) {
    const auto s = result.sweep.scenario(cell.index);
    const auto& guarded = cell.series[result.series_index("model_guarded")];
    const auto& always = cell.series[result.series_index("model_always")];
    const auto& bi = cell.series[result.series_index("model_bi")];
    const auto& pure = cell.series[result.series_index("model_pure")];
    const auto p_opt = core::optimal_period_first_order(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);

    table.add_row(
        {common::format_duration(common::minutes(cell.axis_values[0])),
         common::fmt_fixed(s.abft.phi * s.epoch.library() /
                               p_opt.value_or(1.0),
                           2),
         guarded.abft_active ? "yes" : "no",
         common::fmt_fixed(guarded.waste, 4),
         common::fmt_fixed(always.waste, 4),
         common::fmt_fixed(bi.waste, 4), common::fmt_fixed(pure.waste, 4)});
  }
  table.print(std::cout);
  std::cout << "\nReading: with short calls the always-ABFT column pays the "
               "forced per-call checkpoints; the safeguard column falls back "
               "to (bi-)periodic checkpointing and only engages ABFT once "
               "phi*T_L reaches the optimal interval.\n";
  return 0;
}

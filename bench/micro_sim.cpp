/// \file micro_sim.cpp
/// google-benchmark microbenches for the simulator substrate (E12): they
/// quantify the "1000 executions per grid cell" methodology of Section V-A.

#include <benchmark/benchmark.h>

#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"
#include "core/simulate.hpp"
#include "sim/des_periodic.hpp"

using namespace abftc;

namespace {

core::ScenarioParams scenario(double mtbf_min) {
  return core::figure7_scenario(common::minutes(mtbf_min), 0.8);
}

void BM_SimulateRun(benchmark::State& state) {
  const auto s = scenario(static_cast<double>(state.range(0)));
  const auto plan =
      core::make_plan(core::Protocol::AbftPeriodicCkpt, s, {});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::simulate_run(s, plan, seed++));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SimulateRun)->Arg(60)->Arg(120)->Arg(240);

void BM_MonteCarlo1000(benchmark::State& state) {
  const auto s = scenario(120);
  core::MonteCarloOptions mc;
  mc.replicates = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::monte_carlo(core::Protocol::PurePeriodicCkpt, s, {}, mc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_MonteCarlo1000)->Unit(benchmark::kMillisecond);

void BM_FailureClockAggregate(benchmark::State& state) {
  sim::AggregateFailureClock clock(
      std::make_unique<sim::ExponentialArrivals>(3600.0), common::Rng(7));
  double t = 0.0;
  for (auto _ : state) {
    t = clock.next_after(t) + 1.0;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FailureClockAggregate);

void BM_FailureClockPerNode(benchmark::State& state) {
  sim::NodeFailureClock clock(
      std::make_unique<sim::ExponentialArrivals>(3600.0 * 1e4),
      static_cast<std::size_t>(state.range(0)), common::Rng(7));
  double t = 0.0;
  for (auto _ : state) {
    t = clock.next_after(t) + 1.0;
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FailureClockPerNode)->Arg(100)->Arg(10000);

void BM_DesPeriodicStream(benchmark::State& state) {
  for (auto _ : state) {
    sim::AggregateFailureClock clock(
        std::make_unique<sim::ExponentialArrivals>(7200.0), common::Rng(9));
    sim::Engine engine;
    sim::SimState st;
    st.clock = &clock;
    sim::des_periodic_stream(engine, st, common::days(7), 2800.0, 600.0, 0.0,
                             600.0, 60.0);
    benchmark::DoNotOptimize(st.now);
  }
}
BENCHMARK(BM_DesPeriodicStream);

}  // namespace

BENCHMARK_MAIN();

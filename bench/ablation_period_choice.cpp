/// \file ablation_period_choice.cpp
/// E14: how much does the first-order Young/Daly period (Eq. 11) give away
/// versus the exact numeric optimum of the Eq. 10 fixed point? The paper
/// (end of Section IV-B3) warns the closed form "only holds when µ is large
/// in front of the other parameters" — this bench quantifies the gap across
/// the MTBF range, including the small-µ regime where √(2C(µ−D−R)) drops
/// below C and must be clamped.
///
/// Flags: --alpha=0.8 --reps=200 --mtbf-min=25,40,60,120,240,1440
///        --json[=PATH]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"
#include "core/phase_model.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double alpha = args.get_double("alpha", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 200));
  const std::vector<double> mtbfs_min = args.get_double_list(
      "mtbf-min", {25.0, 40.0, 60.0, 120.0, 240.0, 1440.0});
  const auto json_sink =
      core::json_sink_from_args(args, "ablation_period_choice");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::cout << "# Period-selection ablation: Young/Daly (Eq. 11) vs exact "
               "numeric optimum (alpha = " << alpha << ")\n\n";

  core::MonteCarloOptions mc;
  mc.replicates = reps;

  core::ExperimentSpec spec;
  spec.name = "ablation_period_choice";
  spec.sweep.base = core::figure7_scenario(common::minutes(120), alpha);
  spec.sweep.axes = {core::Axis::custom(
      "mtbf_min", mtbfs_min, [](core::ScenarioParams& s, double m) {
        s.platform.mtbf = common::minutes(m);
      })};
  spec.series = {
      {"model_yd", core::Protocol::PurePeriodicCkpt, "model",
       {.exact_period = false}, {}},
      {"model_exact", core::Protocol::PurePeriodicCkpt, "model",
       {.exact_period = true}, {}},
      {"sim_yd", core::Protocol::PurePeriodicCkpt, "sim", {}, mc},
  };
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  common::Table table({"MTBF", "P Young/Daly", "P exact",
                       "waste Pure (YD)", "waste Pure (exact)",
                       "sim Pure (YD)", "delta"});
  for (const auto& cell : result.cells) {
    const double mtbf_min = cell.axis_values[0];
    const auto s = result.sweep.scenario(cell.index);
    const auto p_yd = core::optimal_period_first_order(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);
    const auto p_ex = core::optimal_period_exact(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);
    if (!p_yd || !p_ex) {
      table.add_row({common::fmt(mtbf_min, 4) + "min", "none", "none",
                     "1.0000", "1.0000", "n/a", "-"});
      continue;
    }
    const auto& m_yd = cell.series[result.series_index("model_yd")];
    const auto& m_ex = cell.series[result.series_index("model_exact")];
    const auto& sim = cell.series[result.series_index("sim_yd")];
    table.add_row({common::fmt(mtbf_min, 4) + "min",
                   common::format_duration(*p_yd),
                   common::format_duration(*p_ex),
                   common::fmt_fixed(m_yd.waste, 4),
                   common::fmt_fixed(m_ex.waste, 4),
                   common::fmt_fixed(sim.waste, 4),
                   common::fmt_fixed(m_yd.waste - m_ex.waste, 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the zero deltas confirm that Eq. 11 is the *exact*\n"
         "minimizer of the Eq. 10 fixed point (differentiating X gives\n"
         "P = sqrt(2C(mu-D-R)) with no further approximation) — the\n"
         "'first-order' caveat of Section IV-B3 is about Eq. 10 itself,\n"
         "not the period choice. That model-level conservatism is visible\n"
         "in the 'sim' column: at small MTBF the simulated waste sits\n"
         "below the model because the model charges every failure a full\n"
         "D + R + P/2 regardless of where it strikes.\n";
  return 0;
}

/// \file ablation_period_choice.cpp
/// E14: how much does the first-order Young/Daly period (Eq. 11) give away
/// versus the exact numeric optimum of the Eq. 10 fixed point? The paper
/// (end of Section IV-B3) warns the closed form "only holds when µ is large
/// in front of the other parameters" — this bench quantifies the gap across
/// the MTBF range, including the small-µ regime where √(2C(µ−D−R)) drops
/// below C and must be clamped.
///
/// Flags: --alpha=0.8 --reps=200

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"
#include "core/phase_model.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double alpha = args.get_double("alpha", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 200));

  std::cout << "# Period-selection ablation: Young/Daly (Eq. 11) vs exact "
               "numeric optimum (alpha = " << alpha << ")\n\n";

  common::Table table({"MTBF", "P Young/Daly", "P exact",
                       "waste Pure (YD)", "waste Pure (exact)",
                       "sim Pure (YD)", "delta"});
  for (const double mtbf_min :
       {25.0, 40.0, 60.0, 120.0, 240.0, 1440.0}) {
    const auto s = core::figure7_scenario(common::minutes(mtbf_min), alpha);
    const auto p_yd = core::optimal_period_first_order(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);
    const auto p_ex = core::optimal_period_exact(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);
    if (!p_yd || !p_ex) {
      table.add_row({common::fmt(mtbf_min, 4) + "min", "none", "none",
                     "1.0000", "1.0000", "n/a", "-"});
      continue;
    }
    const auto m_yd = core::evaluate_pure(s, {.exact_period = false});
    const auto m_ex = core::evaluate_pure(s, {.exact_period = true});
    core::MonteCarloOptions mc;
    mc.replicates = reps;
    const auto sim =
        core::monte_carlo(core::Protocol::PurePeriodicCkpt, s, {}, mc);
    table.add_row({common::fmt(mtbf_min, 4) + "min",
                   common::format_duration(*p_yd),
                   common::format_duration(*p_ex),
                   common::fmt_fixed(m_yd.waste(), 4),
                   common::fmt_fixed(m_ex.waste(), 4),
                   common::fmt_fixed(sim.waste.mean(), 4),
                   common::fmt_fixed(m_yd.waste() - m_ex.waste(), 4)});
  }
  table.print(std::cout);

  std::cout
      << "\nReading: the zero deltas confirm that Eq. 11 is the *exact*\n"
         "minimizer of the Eq. 10 fixed point (differentiating X gives\n"
         "P = sqrt(2C(mu-D-R)) with no further approximation) — the\n"
         "'first-order' caveat of Section IV-B3 is about Eq. 10 itself,\n"
         "not the period choice. That model-level conservatism is visible\n"
         "in the 'sim' column: at small MTBF the simulated waste sits\n"
         "below the model because the model charges every failure a full\n"
         "D + R + P/2 regardless of where it strikes.\n";
  return 0;
}

/// \file ablation_incremental.cpp
/// Ablation E10: how much does incremental checkpointing (BiPeriodicCkpt)
/// buy over PurePeriodicCkpt as a function of ρ (the fraction of memory the
/// library phase touches)? §IV-C predicts the library-phase checkpoint cost
/// shrinks to ρ·C while recovery stays at R — so the gain saturates and
/// never approaches the composite's.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"
#include "core/protocol_models.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double mtbf_min = args.get_double("mtbf-min", 120.0);
  const double alpha = args.get_double("alpha", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 200));

  std::cout << "# Ablation: incremental checkpointing benefit vs rho "
               "(MTBF = " << mtbf_min << " min, alpha = " << alpha << ")\n\n";

  common::Table table({"rho", "Pure", "Bi (model)", "Bi (sim)", "ABFT&",
                       "Bi gain over Pure", "ABFT& gain over Pure"});
  for (const double rho : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0}) {
    auto s = core::figure7_scenario(common::minutes(mtbf_min), alpha);
    s.ckpt.rho = rho;
    const auto pure = core::evaluate_pure(s);
    const auto bi = core::evaluate_bi(s);
    const auto comp = core::evaluate_composite(s);
    core::MonteCarloOptions mc;
    mc.replicates = reps;
    const auto bi_sim =
        core::monte_carlo(core::Protocol::BiPeriodicCkpt, s, {}, mc);
    table.add_row({common::fmt_fixed(rho, 2),
                   common::fmt_fixed(pure.waste(), 4),
                   common::fmt_fixed(bi.waste(), 4),
                   common::fmt_fixed(bi_sim.waste.mean(), 4),
                   common::fmt_fixed(comp.waste(), 4),
                   common::fmt_percent(pure.waste() - bi.waste(), 2),
                   common::fmt_percent(pure.waste() - comp.waste(), 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: smaller library checkpoints help linearly in rho "
               "(paper: ~20% cheaper checkpoints 80% of the time), while the "
               "composite also removes rollbacks and periodic checkpoints "
               "from the library phase entirely.\n";
  return 0;
}

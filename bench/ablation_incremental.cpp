/// \file ablation_incremental.cpp
/// Ablation E10: how much does incremental checkpointing (BiPeriodicCkpt)
/// buy over PurePeriodicCkpt as a function of ρ (the fraction of memory the
/// library phase touches)? §IV-C predicts the library-phase checkpoint cost
/// shrinks to ρ·C while recovery stays at R — so the gain saturates and
/// never approaches the composite's.
///
/// Flags: --mtbf-min=120 --alpha=0.8 --reps=200
///        --rho=0.0,0.2,0.4,0.6,0.8,0.95,1.0 --json[=PATH]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double mtbf_min = args.get_double("mtbf-min", 120.0);
  const double alpha = args.get_double("alpha", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 200));
  const std::vector<double> rhos =
      args.get_double_list("rho", {0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 1.0});
  const auto json_sink =
      core::json_sink_from_args(args, "ablation_incremental");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::cout << "# Ablation: incremental checkpointing benefit vs rho "
               "(MTBF = " << mtbf_min << " min, alpha = " << alpha << ")\n\n";

  core::MonteCarloOptions mc;
  mc.replicates = reps;

  core::ExperimentSpec spec;
  spec.name = "ablation_incremental";
  spec.sweep.base = core::figure7_scenario(common::minutes(mtbf_min), alpha);
  spec.sweep.axes = {core::Axis::values("rho", core::AxisField::Rho, rhos)};
  spec.series = {
      {"model_pure", core::Protocol::PurePeriodicCkpt, "model", {}, {}},
      {"model_bi", core::Protocol::BiPeriodicCkpt, "model", {}, {}},
      {"model_abft", core::Protocol::AbftPeriodicCkpt, "model", {}, {}},
      {"sim_bi", core::Protocol::BiPeriodicCkpt, "sim", {}, mc},
  };
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  common::Table table({"rho", "Pure", "Bi (model)", "Bi (sim)", "ABFT&",
                       "Bi gain over Pure", "ABFT& gain over Pure"});
  for (const auto& cell : result.cells) {
    const double pure = cell.series[result.series_index("model_pure")].waste;
    const double bi = cell.series[result.series_index("model_bi")].waste;
    const double comp = cell.series[result.series_index("model_abft")].waste;
    const double bi_sim = cell.series[result.series_index("sim_bi")].waste;
    table.add_row({common::fmt_fixed(cell.axis_values[0], 2),
                   common::fmt_fixed(pure, 4), common::fmt_fixed(bi, 4),
                   common::fmt_fixed(bi_sim, 4), common::fmt_fixed(comp, 4),
                   common::fmt_percent(pure - bi, 2),
                   common::fmt_percent(pure - comp, 2)});
  }
  table.print(std::cout);
  std::cout << "\nReading: smaller library checkpoints help linearly in rho "
               "(paper: ~20% cheaper checkpoints 80% of the time), while the "
               "composite also removes rollbacks and periodic checkpoints "
               "from the library phase entirely.\n";
  return 0;
}

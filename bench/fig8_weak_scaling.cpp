/// \file fig8_weak_scaling.cpp
/// Reproduces Figure 8: weak scaling with a fixed α = 0.8 — waste and
/// expected failure count of the three protocols as the platform grows from
/// 1k to 1M nodes, with both phases scaling as O(n³) (completion time
/// ∝ √nodes), the MTBF shrinking and the checkpoint cost growing with the
/// machine. Following Section V-C the curves are produced by the *model*
/// ("we (confidently) use only the model in this scalability study");
/// pass --sim to add Monte-Carlo spot checks.
///
/// The calibration of the scaling laws (and why the literal text's
/// parameters cannot reproduce the published curves) is in EXPERIMENTS.md;
/// pass --literal to print the literal-text configuration and watch every
/// protocol diverge beyond ~300k nodes.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/monte_carlo.hpp"
#include "core/scaling.hpp"

using namespace abftc;

// The published Figs 8-10 run ABFT at every scale (the text's safeguard
// would collapse the composite onto BiPeriodicCkpt below the crossover --
// see EXPERIMENTS.md), so these benches disable it.
static constexpr core::ModelOptions kNoSafeguard{.safeguard = false};

namespace {

void run_sweep(const core::WeakScalingConfig& cfg, bool with_sim,
               std::size_t reps) {
  common::Table table({"nodes", "alpha", "C=R[s]", "MTBF[s]",
                       "waste Pure", "waste Bi", "waste ABFT&", "flt Pure",
                       "flt Bi", "flt ABFT&"});
  const core::Protocol ps[] = {core::Protocol::PurePeriodicCkpt,
                               core::Protocol::BiPeriodicCkpt,
                               core::Protocol::AbftPeriodicCkpt};
  for (const double nodes : core::default_node_sweep()) {
    const auto s = core::scenario_at(cfg, nodes);
    std::vector<std::string> row{
        common::fmt(nodes, 6), common::fmt_fixed(s.epoch.alpha, 3),
        common::fmt(s.ckpt.full_cost, 4), common::fmt(s.platform.mtbf, 5)};
    std::vector<std::string> faults;
    for (const auto p : ps) {
      const auto m = core::evaluate(p, s, kNoSafeguard);
      row.push_back(m.diverged ? "1.000(div)"
                               : common::fmt_fixed(m.waste(), 3));
      faults.push_back(m.diverged
                           ? "inf"
                           : common::fmt_fixed(
                                 m.expected_failures(s.platform.mtbf), 1));
    }
    for (auto& f : faults) row.push_back(std::move(f));
    table.add_row(std::move(row));

    if (with_sim) {
      std::vector<std::string> sim_row{"  (sim)", "", "", ""};
      for (const auto p : ps) {
        core::MonteCarloOptions mc;
        mc.replicates = reps;
        const auto r = core::monte_carlo(p, s, kNoSafeguard, mc);
        sim_row.push_back(r.plan_valid ? common::fmt_fixed(r.waste.mean(), 3)
                                       : "n/a");
      }
      for (const auto p : ps) {
        core::MonteCarloOptions mc;
        mc.replicates = reps;
        const auto r = core::monte_carlo(p, s, kNoSafeguard, mc);
        sim_row.push_back(r.plan_valid
                              ? common::fmt_fixed(r.failures.mean(), 1)
                              : "n/a");
      }
      table.add_row(std::move(sim_row));
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const bool with_sim = args.get_bool("sim", false);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 100));

  std::cout << "# Figure 8 — weak scaling, fixed alpha = 0.8 "
               "(1000 epochs, both phases O(n^3))\n\n";
  run_sweep(core::figure8_config(), with_sim, reps);

  std::cout << "\nShape checks (paper, Section V-C):\n"
               "  * below ~100k nodes the ABFT fault-free overhead makes the "
               "composite slightly worse;\n"
               "  * the crossover sits near 100k nodes;\n"
               "  * at 1M nodes the composite's waste is well below both "
               "periodic protocols;\n"
               "  * the periodic protocols suffer more failures (their "
               "executions run longer).\n";

  if (args.get_bool("literal", false)) {
    std::cout << "\n# Literal Section V-C text parameters (epoch = 1 min at "
                 "10k nodes, C ∝ x, MTBF ∝ 1/x):\n"
                 "# every protocol hits waste = 1 once µ < C + R + D — the "
                 "published curves cannot come from these numbers.\n\n";
    run_sweep(core::figure8_literal_config(), false, 0);
  }
  return 0;
}

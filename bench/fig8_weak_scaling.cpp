/// \file fig8_weak_scaling.cpp
/// Reproduces Figure 8: weak scaling with a fixed α = 0.8 — waste and
/// expected failure count of the three protocols as the platform grows from
/// 1k to 1M nodes, with both phases scaling as O(n³) (completion time
/// ∝ √nodes), the MTBF shrinking and the checkpoint cost growing with the
/// machine. Following Section V-C the curves are produced by the *model*
/// ("we (confidently) use only the model in this scalability study");
/// pass --sim to add Monte-Carlo spot checks.
///
/// The calibration of the scaling laws (and why the literal text's
/// parameters cannot reproduce the published curves) is in EXPERIMENTS.md;
/// pass --literal to print the literal-text configuration and watch every
/// protocol diverge beyond ~300k nodes.
///
/// Flags: --sim --reps=100 --json[=PATH] --threads=0 (grid-cell
///        parallelism; 0 = hardware concurrency)

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/scaling.hpp"

using namespace abftc;

// The published Figs 8-10 run ABFT at every scale (the text's safeguard
// would collapse the composite onto BiPeriodicCkpt below the crossover --
// see EXPERIMENTS.md), so these benches disable it.
static constexpr core::ModelOptions kNoSafeguard{.safeguard = false};

namespace {

core::ExperimentSpec make_spec(std::string name,
                               const core::WeakScalingConfig& cfg,
                               bool with_sim, std::size_t reps,
                               unsigned threads) {
  core::ExperimentSpec spec;
  spec.name = std::move(name);
  spec.sweep.axes = {core::Axis::custom(
      "nodes", core::default_node_sweep(),
      [cfg](core::ScenarioParams& s, double nodes) {
        s = core::scenario_at(cfg, nodes);
      })};
  std::vector<std::string> evaluators = {"model"};
  if (with_sim) evaluators.push_back("sim");
  core::MonteCarloOptions mc;
  mc.replicates = reps > 0 ? reps : 1;
  spec.series =
      core::cross_series(core::all_protocols(), evaluators, kNoSafeguard, mc);
  spec.threads = threads;
  return spec;
}

void run_sweep(const std::string& name, const core::WeakScalingConfig& cfg,
               bool with_sim, std::size_t reps, core::ResultSink* sink,
               unsigned threads) {
  core::Experiment experiment(make_spec(name, cfg, with_sim, reps, threads));
  if (sink) experiment.add_sink(*sink);
  const auto result = experiment.run();

  std::vector<std::size_t> model_idx, sim_idx;
  for (const auto p : core::all_protocols()) {
    const std::string key(core::protocol_key(p));
    model_idx.push_back(result.series_index("model_" + key));
    if (with_sim) sim_idx.push_back(result.series_index("sim_" + key));
  }

  common::Table table({"nodes", "alpha", "C=R[s]", "MTBF[s]",
                       "waste Pure", "waste Bi", "waste ABFT&", "flt Pure",
                       "flt Bi", "flt ABFT&"});
  for (const auto& cell : result.cells) {
    const auto s = result.sweep.scenario(cell.index);
    std::vector<std::string> row{
        common::fmt(cell.axis_values[0], 6), common::fmt_fixed(s.epoch.alpha, 3),
        common::fmt(s.ckpt.full_cost, 4), common::fmt(s.platform.mtbf, 5)};
    std::vector<std::string> faults;
    for (const std::size_t si : model_idx) {
      const auto& m = cell.series[si];
      row.push_back(m.diverged ? "1.000(div)" : common::fmt_fixed(m.waste, 3));
      faults.push_back(m.diverged ? "inf" : common::fmt_fixed(m.failures, 1));
    }
    for (auto& f : faults) row.push_back(std::move(f));
    table.add_row(std::move(row));

    if (with_sim) {
      std::vector<std::string> sim_row{"  (sim)", "", "", ""};
      for (const std::size_t si : sim_idx) {
        const auto& r = cell.series[si];
        sim_row.push_back(r.valid ? common::fmt_fixed(r.waste, 3) : "n/a");
      }
      for (const std::size_t si : sim_idx) {
        const auto& r = cell.series[si];
        sim_row.push_back(r.valid ? common::fmt_fixed(r.failures, 1) : "n/a");
      }
      table.add_row(std::move(sim_row));
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const bool with_sim = args.get_bool("sim", false);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 100));
  const bool literal = args.get_bool("literal", false);
  const auto json_sink = core::json_sink_from_args(args, "fig8");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::cout << "# Figure 8 — weak scaling, fixed alpha = 0.8 "
               "(1000 epochs, both phases O(n^3))\n\n";
  run_sweep("fig8", core::figure8_config(), with_sim, reps, json_sink.get(),
            threads);

  std::cout << "\nShape checks (paper, Section V-C):\n"
               "  * below ~100k nodes the ABFT fault-free overhead makes the "
               "composite slightly worse;\n"
               "  * the crossover sits near 100k nodes;\n"
               "  * at 1M nodes the composite's waste is well below both "
               "periodic protocols;\n"
               "  * the periodic protocols suffer more failures (their "
               "executions run longer).\n";

  if (literal) {
    std::cout << "\n# Literal Section V-C text parameters (epoch = 1 min at "
                 "10k nodes, C ∝ x, MTBF ∝ 1/x):\n"
                 "# every protocol hits waste = 1 once µ < C + R + D — the "
                 "published curves cannot come from these numbers.\n\n";
    run_sweep("fig8_literal", core::figure8_literal_config(), false, 0,
              nullptr, threads);
  }
  return 0;
}

/// \file fig9_variable_alpha.cpp
/// Reproduces Figure 9: weak scaling with a *variable* α — the LIBRARY phase
/// costs O(n³) (grows as √nodes) while the GENERAL phase costs O(n²)
/// (constant time under weak scaling), so α grows with the machine:
/// 0.55 → 0.8 → 0.92 → 0.975 across 1k → 10k → 100k → 1M nodes, matching
/// the α labels printed under the published figure's x-axis.
///
/// Flags: --json[=PATH]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/scaling.hpp"

using namespace abftc;

// The published Figs 8-10 run ABFT at every scale (the text's safeguard
// would collapse the composite onto BiPeriodicCkpt below the crossover --
// see EXPERIMENTS.md), so these benches disable it.
static constexpr core::ModelOptions kNoSafeguard{.safeguard = false};

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const auto json_sink = core::json_sink_from_args(args, "fig9");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::cout << "# Figure 9 — weak scaling, variable alpha "
               "(LIBRARY O(n^3), GENERAL O(n^2))\n\n";

  const auto cfg = core::figure9_config();

  // The published alpha anchor points.
  common::Table anchors({"nodes", "alpha (this run)", "alpha (paper)"});
  const double paper_alpha[] = {0.55, 0.8, 0.92, 0.975};
  const double paper_nodes[] = {1e3, 1e4, 1e5, 1e6};
  for (int i = 0; i < 4; ++i)
    anchors.add_row({common::fmt(paper_nodes[i], 6),
                     common::fmt_fixed(core::alpha_at(cfg, paper_nodes[i]), 3),
                     common::fmt_fixed(paper_alpha[i], 3)});
  anchors.print(std::cout);
  std::cout << '\n';

  core::ExperimentSpec spec;
  spec.name = "fig9";
  spec.sweep.axes = {core::Axis::custom(
      "nodes", core::default_node_sweep(),
      [cfg](core::ScenarioParams& s, double nodes) {
        s = core::scenario_at(cfg, nodes);
      })};
  spec.series = core::cross_series(core::all_protocols(), {"model"},
                                   kNoSafeguard);
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  std::vector<std::size_t> model_idx;
  for (const auto p : core::all_protocols())
    model_idx.push_back(result.series_index(
        "model_" + std::string(core::protocol_key(p))));

  common::Table table({"nodes", "alpha", "waste Pure", "waste Bi",
                       "waste ABFT&", "flt Pure", "flt Bi", "flt ABFT&"});
  for (const auto& cell : result.cells) {
    const auto s = result.sweep.scenario(cell.index);
    std::vector<std::string> row{common::fmt(cell.axis_values[0], 6),
                                 common::fmt_fixed(s.epoch.alpha, 3)};
    std::vector<std::string> faults;
    for (const std::size_t si : model_idx) {
      const auto& m = cell.series[si];
      row.push_back(m.diverged ? "1.000(div)" : common::fmt_fixed(m.waste, 3));
      faults.push_back(m.diverged ? "inf" : common::fmt_fixed(m.failures, 1));
    }
    for (auto& f : faults) row.push_back(std::move(f));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout
      << "\nShape checks (paper, Section V-C):\n"
         "  * fewer failures than Fig 8 (the GENERAL phase stops growing);\n"
         "  * BiPeriodicCkpt's advantage over Pure grows with alpha (more "
         "of the run checkpoints only rho of the memory);\n"
         "  * the composite gains on both: longer ABFT sections disable "
         "periodic checkpointing for most of the run AND most failures hit "
         "the cheap ABFT recovery path.\n";
  return 0;
}

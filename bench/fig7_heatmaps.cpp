/// \file fig7_heatmaps.cpp
/// Reproduces Figure 7 of the paper: waste of PurePeriodicCkpt,
/// BiPeriodicCkpt and ABFT&PeriodicCkpt as a function of the platform MTBF
/// (x axis, 60–240 min) and the fraction of time α spent in the LIBRARY
/// phase (y axis, 0–1), with the fixed parameters
///   T0 = 1 week, C = R = 10 min, D = 1 min, ρ = 0.8, φ = 1.03,
///   Recons_ABFT = 2 s.
/// Panels (a)(c)(e): model waste. Panels (b)(d)(f): WASTE_simul −
/// WASTE_model, the validation gap (paper: |gap| ≤ 0.12 at the smallest
/// MTBF, < 0.05 elsewhere).
///
/// Flags: --reps=N (default 200), --mtbf-step=20, --alpha-step=0.1,
///        --threads=0 (grid-cell parallelism; 0 = hardware concurrency),
///        --seed=N (Monte-Carlo root seed; same seed = same replicates),
///        --csv (emit CSV blocks after the tables),
///        --json[=PATH] (write the BENCH_fig7.json result sink)

#include <cmath>
#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 200));
  const double mtbf_step = args.get_double("mtbf-step", 20.0);
  const double alpha_step = args.get_double("alpha-step", 0.1);
  const bool csv = args.get_bool("csv", false);
  const unsigned threads = core::threads_from_args(args);
  const std::uint64_t seed = core::seed_from_args(args);
  const auto json_sink = core::json_sink_from_args(args, "fig7");
  args.warn_unknown(std::cerr);

  const auto& protocols = core::all_protocols();

  core::MonteCarloOptions mc;
  mc.replicates = reps;
  mc.seed = seed;

  core::ExperimentSpec spec;
  spec.name = "fig7";
  spec.threads = threads;
  spec.sweep.base = core::figure7_scenario(common::minutes(120), 0.0);
  spec.sweep.axes = {
      core::Axis::step("alpha", core::AxisField::Alpha, 0.0, 1.0, alpha_step),
      core::Axis::custom("mtbf_min", core::step_grid(60.0, 240.0, mtbf_step),
                         [](core::ScenarioParams& s, double m) {
                           s.platform.mtbf = common::minutes(m);
                         })};
  spec.series = core::cross_series(protocols, {"model", "sim"}, {}, mc);

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();
  const std::vector<double>& alphas = result.sweep.axes[0].grid;
  const std::vector<double>& mtbfs_min = result.sweep.axes[1].grid;

  std::cout << "# Figure 7 — waste vs (MTBF, alpha); T0=1w, C=R=10min, "
               "D=1min, rho=0.8, phi=1.03, Recons=2s; "
            << reps << " sim replicates/cell\n\n";

  const char* panel_model[] = {"(a)", "(c)", "(e)"};
  const char* panel_diff[] = {"(b)", "(d)", "(f)"};

  int pi = 0;
  for (const auto protocol : protocols) {
    const std::string key(core::protocol_key(protocol));
    const auto model_grid =
        result.grid(result.series_index("model_" + key), core::Metric::Waste);
    const auto sim_grid =
        result.grid(result.series_index("sim_" + key), core::Metric::Waste);

    std::vector<std::vector<double>> diff_grid(alphas.size());
    double max_abs_diff = 0.0, max_diff_at_min_mtbf = 0.0;
    for (std::size_t yi = 0; yi < alphas.size(); ++yi) {
      diff_grid[yi].resize(mtbfs_min.size());
      for (std::size_t xi = 0; xi < mtbfs_min.size(); ++xi) {
        const double diff = sim_grid[yi][xi] - model_grid[yi][xi];
        diff_grid[yi][xi] = diff;
        max_abs_diff = std::max(max_abs_diff, std::fabs(diff));
        if (xi == 0)
          max_diff_at_min_mtbf =
              std::max(max_diff_at_min_mtbf, std::fabs(diff));
      }
    }

    common::print_grid(std::cout,
                       std::string("Fig 7") + panel_model[pi] + " — waste of " +
                           std::string(core::to_string(protocol)) + ": model",
                       "MTBF[min]", mtbfs_min, "alpha", alphas, model_grid, 3);
    std::cout << '\n';
    common::print_grid(
        std::cout,
        std::string("Fig 7") + panel_diff[pi] + " — " +
            std::string(core::to_string(protocol)) +
            ": WASTE_simul - WASTE_model",
        "MTBF[min]", mtbfs_min, "alpha", alphas, diff_grid, 3);
    std::cout << "max |sim - model| over the grid: "
              << common::fmt_fixed(max_abs_diff, 4)
              << " (at MTBF=60min column: "
              << common::fmt_fixed(max_diff_at_min_mtbf, 4) << ")\n\n";

    if (csv) {
      std::cout << "csv," << core::to_string(protocol)
                << ",alpha,mtbf_min,model_waste,diff\n";
      for (std::size_t yi = 0; yi < alphas.size(); ++yi)
        for (std::size_t xi = 0; xi < mtbfs_min.size(); ++xi)
          std::cout << "csv," << core::to_string(protocol) << ','
                    << alphas[yi] << ',' << mtbfs_min[xi] << ','
                    << model_grid[yi][xi] << ',' << diff_grid[yi][xi] << '\n';
      std::cout << '\n';
    }
    ++pi;
  }

  std::cout
      << "Shape checks (paper, Section V-B):\n"
         "  * PurePeriodicCkpt waste depends on the MTBF only (columns are "
         "constant in alpha).\n"
         "  * BiPeriodicCkpt improves slightly as alpha -> 1 (checkpoints "
         "shrink by rho).\n"
         "  * ABFT&PeriodicCkpt waste falls strongly with alpha and tends "
         "to ~phi-1 = 3% at alpha=1 for large MTBF.\n";
  return 0;
}

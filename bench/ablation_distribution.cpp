/// \file ablation_distribution.cpp
/// Ablation E11 (simulator-only, beyond the paper's model): sensitivity of
/// the three protocols to the failure inter-arrival distribution at equal
/// MTBF. The analytical model (and Young/Daly periods) assume memoryless
/// Exponential arrivals; real clusters show burstier behaviour (Weibull
/// with shape < 1, heavy-tailed Log-normal). Bursts hurt rollback
/// protocols (clustered failures re-hit the same period) while ABFT's
/// constant per-failure cost is distribution-insensitive.
///
/// Flags: --alpha=0.8 --reps=300 --mtbf-min=60,120,240 --json[=PATH]

#include <iostream>
#include <iterator>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double alpha = args.get_double("alpha", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 300));
  const std::vector<double> mtbfs_min =
      args.get_double_list("mtbf-min", {60.0, 120.0, 240.0});
  const auto json_sink =
      core::json_sink_from_args(args, "ablation_distribution");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::cout << "# Ablation: failure-distribution sensitivity (alpha = "
            << alpha << ", equal MTBF, " << reps << " replicates)\n\n";

  struct Dist {
    const char* name;
    const char* key;
    core::FailureDistribution d;
  };
  const Dist dists[] = {
      {"Exponential", "exp", core::FailureDistribution::Exponential},
      {"Weibull(k=0.7)", "weibull", core::FailureDistribution::Weibull},
      {"LogNormal(cv=1.5)", "lognormal", core::FailureDistribution::LogNormal},
  };

  core::ExperimentSpec spec;
  spec.name = "ablation_distribution";
  spec.sweep.base = core::figure7_scenario(common::minutes(120), alpha);
  spec.sweep.axes = {core::Axis::custom(
      "mtbf_min", mtbfs_min, [](core::ScenarioParams& s, double m) {
        s.platform.mtbf = common::minutes(m);
      })};
  for (const auto& dist : dists) {
    core::MonteCarloOptions mc;
    mc.replicates = reps;
    mc.distribution = dist.d;
    for (const auto p : core::all_protocols())
      spec.series.push_back({std::string("sim_") + dist.key + "_" +
                                 std::string(core::protocol_key(p)),
                             p, "sim", {}, mc});
  }
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  std::vector<std::vector<std::size_t>> dist_idx;
  for (const auto& dist : dists) {
    std::vector<std::size_t> idx;
    for (const auto p : core::all_protocols())
      idx.push_back(result.series_index(std::string("sim_") + dist.key + "_" +
                                        std::string(core::protocol_key(p))));
    dist_idx.push_back(std::move(idx));
  }

  for (const auto& cell : result.cells) {
    std::cout << "MTBF = " << cell.axis_values[0] << " min\n";
    common::Table table(
        {"distribution", "Pure", "Bi", "ABFT&", "ABFT& advantage vs Pure"});
    for (std::size_t di = 0; di < std::size(dists); ++di) {
      const Dist& dist = dists[di];
      std::vector<double> w;
      for (const std::size_t si : dist_idx[di])
        w.push_back(cell.series[si].waste);
      table.add_row({dist.name, common::fmt_fixed(w[0], 4),
                     common::fmt_fixed(w[1], 4), common::fmt_fixed(w[2], 4),
                     common::fmt_percent(w[0] - w[2], 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Reading: the composite's advantage persists (and typically "
               "widens) under bursty failure processes the first-order model "
               "cannot describe — only the simulator covers this regime.\n";
  return 0;
}

/// \file ablation_distribution.cpp
/// Ablation E11 (simulator-only, beyond the paper's model): sensitivity of
/// the three protocols to the failure inter-arrival distribution at equal
/// MTBF. The analytical model (and Young/Daly periods) assume memoryless
/// Exponential arrivals; real clusters show burstier behaviour (Weibull
/// with shape < 1, heavy-tailed Log-normal). Bursts hurt rollback
/// protocols (clustered failures re-hit the same period) while ABFT's
/// constant per-failure cost is distribution-insensitive.

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"

using namespace abftc;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const double alpha = args.get_double("alpha", 0.8);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 300));

  std::cout << "# Ablation: failure-distribution sensitivity (alpha = "
            << alpha << ", equal MTBF, " << reps << " replicates)\n\n";

  struct Dist {
    const char* name;
    core::FailureDistribution d;
  };
  const Dist dists[] = {
      {"Exponential", core::FailureDistribution::Exponential},
      {"Weibull(k=0.7)", core::FailureDistribution::Weibull},
      {"LogNormal(cv=1.5)", core::FailureDistribution::LogNormal},
  };

  for (const double mtbf_min : {60.0, 120.0, 240.0}) {
    const auto s = core::figure7_scenario(common::minutes(mtbf_min), alpha);
    std::cout << "MTBF = " << mtbf_min << " min\n";
    common::Table table(
        {"distribution", "Pure", "Bi", "ABFT&", "ABFT& advantage vs Pure"});
    for (const auto& dist : dists) {
      core::MonteCarloOptions mc;
      mc.replicates = reps;
      mc.distribution = dist.d;
      std::vector<double> w;
      for (const auto p :
           {core::Protocol::PurePeriodicCkpt, core::Protocol::BiPeriodicCkpt,
            core::Protocol::AbftPeriodicCkpt})
        w.push_back(core::monte_carlo(p, s, {}, mc).waste.mean());
      table.add_row({dist.name, common::fmt_fixed(w[0], 4),
                     common::fmt_fixed(w[1], 4), common::fmt_fixed(w[2], 4),
                     common::fmt_percent(w[0] - w[2], 2)});
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Reading: the composite's advantage persists (and typically "
               "widens) under bursty failure processes the first-order model "
               "cannot describe — only the simulator covers this regime.\n";
  return 0;
}

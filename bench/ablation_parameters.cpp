/// \file ablation_parameters.cpp
/// E13: the companion technical report (ICL-UT-13-03, cited as [24]:
/// "an exhaustive evaluation of the different parameters independently,
/// comparing the results as predicted by the models, and the simulation").
/// Around the Figure 7 operating point (MTBF = 2 h, α = 0.8) each model
/// parameter is swept one-at-a-time; model and simulated waste are printed
/// for the three protocols so the sensitivity of every term of Section IV
/// is visible.
///
/// Flags: --reps=150 --mtbf-min=120 --alpha=0.8 --json[=PATH] (one artifact
///        per sweep, a `_<param>` suffix inserted before the extension)

#include <functional>
#include <iostream>
#include <optional>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"

using namespace abftc;

namespace {

struct Sweep {
  const char* name;  ///< table column header
  const char* key;   ///< axis / artifact key (json-safe)
  std::vector<double> values;
  std::function<void(core::ScenarioParams&, double)> apply;
  std::function<std::string(double)> show;
};

void run_sweep(const Sweep& sweep, const core::ScenarioParams& base,
               std::size_t reps, const std::string& json_path,
               unsigned threads) {
  core::MonteCarloOptions mc;
  mc.replicates = reps;

  core::ExperimentSpec spec;
  spec.name = std::string("ablation_parameters_") + sweep.key;
  spec.sweep.base = base;
  spec.sweep.axes = {core::Axis::custom(sweep.key, sweep.values, sweep.apply)};
  spec.series =
      core::cross_series(core::all_protocols(), {"model", "sim"}, {}, mc);
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  std::optional<core::JsonSink> json_sink;
  if (!json_path.empty()) {
    std::string path = json_path;
    const std::string suffix = std::string("_") + sweep.key;
    const auto ext = path.rfind(".json");
    if (ext != std::string::npos) path.insert(ext, suffix);
    else path += suffix;
    json_sink.emplace(path);
    experiment.add_sink(*json_sink);
  }
  const auto result = experiment.run();

  std::vector<std::pair<std::size_t, std::size_t>> idx;  // (model, sim)
  for (const auto p : core::all_protocols()) {
    const std::string key(core::protocol_key(p));
    idx.emplace_back(result.series_index("model_" + key),
                     result.series_index("sim_" + key));
  }

  std::cout << "### sweep: " << sweep.name << "\n";
  common::Table table({sweep.name, "Pure model", "Pure sim", "Bi model",
                       "Bi sim", "ABFT& model", "ABFT& sim"});
  for (const auto& cell : result.cells) {
    std::vector<std::string> row{sweep.show(cell.axis_values[0])};
    for (const auto& [mi, si] : idx) {
      const auto& m = cell.series[mi];
      const auto& r = cell.series[si];
      row.push_back(m.diverged ? "1.000" : common::fmt_fixed(m.waste, 4));
      row.push_back(r.valid ? common::fmt_fixed(r.waste, 4) : "n/a");
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t reps = static_cast<std::size_t>(args.get_int("reps", 150));
  const auto base = core::figure7_scenario(
      common::minutes(args.get_double("mtbf-min", 120)),
      args.get_double("alpha", 0.8));
  std::string json_path;
  if (args.has("json")) {
    json_path = args.get_string("json", "");
    if (json_path.empty()) json_path = "BENCH_ablation_parameters.json";
  }
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::cout << "# Per-parameter sensitivity study around the Figure 7 "
               "operating point\n# (T0=1w, MTBF=2h, alpha=0.8 unless "
               "swept)\n\n";

  const auto mins = [](double v) { return common::format_duration(v); };
  const auto plain = [](double v) { return common::fmt(v, 4); };

  run_sweep({"C (=R) ckpt cost", "ckpt_cost",
             {common::minutes(1), common::minutes(5), common::minutes(10),
              common::minutes(20), common::minutes(40)},
             [](core::ScenarioParams& s, double v) {
               s.ckpt.full_cost = v;
               s.ckpt.full_recovery = v;
             },
             mins},
            base, reps, json_path, threads);

  run_sweep({"R only (C fixed)", "recovery",
             {common::minutes(2), common::minutes(10), common::minutes(30)},
             [](core::ScenarioParams& s, double v) { s.ckpt.full_recovery = v; },
             mins},
            base, reps, json_path, threads);

  run_sweep({"D downtime", "downtime",
             {0.0, common::minutes(1), common::minutes(5), common::minutes(15)},
             [](core::ScenarioParams& s, double v) { s.platform.downtime = v; },
             mins},
            base, reps, json_path, threads);

  run_sweep({"rho (library memory share)", "rho",
             {0.1, 0.4, 0.8, 1.0},
             [](core::ScenarioParams& s, double v) { s.ckpt.rho = v; },
             plain},
            base, reps, json_path, threads);

  run_sweep({"phi (ABFT slowdown)", "phi",
             {1.0, 1.03, 1.1, 1.3, 1.6},
             [](core::ScenarioParams& s, double v) { s.abft.phi = v; },
             plain},
            base, reps, json_path, threads);

  run_sweep({"Recons_ABFT", "recons",
             {0.0, 2.0, 60.0, common::minutes(10), common::minutes(30)},
             [](core::ScenarioParams& s, double v) { s.abft.recons = v; },
             mins},
            base, reps, json_path, threads);

  std::cout
      << "Reading: C drives both periodic protocols quadratically (via "
         "P_opt = sqrt(2C(mu-D-R))); the composite reacts to C only through "
         "its GENERAL phases and boundary checkpoints. phi and Recons are "
         "the composite's own levers — even Recons = 30 min (900x the "
         "paper's value) costs less than rolling back half a period per "
         "failure.\n";
  return 0;
}

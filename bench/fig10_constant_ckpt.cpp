/// \file fig10_constant_ckpt.cpp
/// Reproduces Figure 10: the Figure-9 scenario under the optimistic storage
/// hypothesis — buddy/in-memory checkpointing whose cost does NOT grow with
/// the node count (C = R = 60 s at every scale). The paper's headline
/// claims: even at 1M nodes the periodic protocols stay below ~15% waste,
/// the composite's waste is nearly constant in the node count, and matching
/// the composite with checkpointing alone requires cutting C = R to ~6 s
/// (printed here as the extra `C=R=6s` series).

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/monte_carlo.hpp"
#include "core/scaling.hpp"

using namespace abftc;

// The published Figs 8-10 run ABFT at every scale (the text's safeguard
// would collapse the composite onto BiPeriodicCkpt below the crossover --
// see EXPERIMENTS.md), so these benches disable it.
static constexpr core::ModelOptions kNoSafeguard{.safeguard = false};

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  std::cout << "# Figure 10 — weak scaling, variable alpha, constant "
               "checkpoint cost (C = R = 60 s)\n\n";

  auto cfg = core::figure10_config();
  auto fast = cfg;
  fast.base_ckpt = 6.0;  // the paper's "C = R = 6 s" NVRAM remark

  common::Table table({"nodes", "alpha", "waste Pure", "waste Bi",
                       "waste ABFT&", "waste Pure(C=6s)", "flt Pure", "flt Bi",
                       "flt ABFT&"});
  const core::Protocol ps[] = {core::Protocol::PurePeriodicCkpt,
                               core::Protocol::BiPeriodicCkpt,
                               core::Protocol::AbftPeriodicCkpt};
  for (const double nodes : core::default_node_sweep()) {
    const auto s = core::scenario_at(cfg, nodes);
    std::vector<std::string> row{common::fmt(nodes, 6),
                                 common::fmt_fixed(s.epoch.alpha, 3)};
    std::vector<std::string> faults;
    for (const auto p : ps) {
      const auto m = core::evaluate(p, s, kNoSafeguard);
      row.push_back(m.diverged ? "1.000(div)"
                               : common::fmt_fixed(m.waste(), 3));
      faults.push_back(
          m.diverged ? "inf"
                     : common::fmt_fixed(m.expected_failures(s.platform.mtbf),
                                         1));
    }
    const auto m6 = core::evaluate(core::Protocol::PurePeriodicCkpt,
                                   core::scenario_at(fast, nodes), kNoSafeguard);
    row.push_back(m6.diverged ? "1.000(div)" : common::fmt_fixed(m6.waste(), 3));
    for (auto& f : faults) row.push_back(std::move(f));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout
      << "\nShape checks (paper, Section V-C):\n"
         "  * both periodic protocols stay below ~15% waste at 1M nodes;\n"
         "  * the composite's waste is almost flat in the node count (the "
         "ABFT overhead is scale-independent);\n"
         "  * the composite still wins at 1M nodes; only ~6 s checkpoints "
         "would bring pure checkpointing level with it.\n";
  return 0;
}

/// \file fig10_constant_ckpt.cpp
/// Reproduces Figure 10: the Figure-9 scenario under the optimistic storage
/// hypothesis — buddy/in-memory checkpointing whose cost does NOT grow with
/// the node count (C = R = 60 s at every scale). The paper's headline
/// claims: even at 1M nodes the periodic protocols stay below ~15% waste,
/// the composite's waste is nearly constant in the node count, and matching
/// the composite with checkpointing alone requires cutting C = R to ~6 s
/// (printed here as the extra `C=R=6s` series).
///
/// Flags: --json[=PATH]  (the C = R = 6 s counterfactual series lands in a
///        companion artifact with a `_c6` suffix before the extension)
///        --storage=SPEC  checkpoint storage to derive C/R from instead of
///                        the calibrated 60 s constant: analytic
///                        (pfs:GBps / buddy:GBps / nvram:GBps) or *measured*
///                        (memory, file:DIR, mmap:PATH — the backend is
///                        benchmarked and a StorageModel fitted, so the
///                        figure runs on measured checkpoint costs)
///        --bytes-per-node-gb=G  per-node checkpoint image size for
///                        --storage (default 2 GiB)

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/measured_storage.hpp"
#include "core/scaling.hpp"

using namespace abftc;

// The published Figs 8-10 run ABFT at every scale (the text's safeguard
// would collapse the composite onto BiPeriodicCkpt below the crossover --
// see EXPERIMENTS.md), so these benches disable it.
static constexpr core::ModelOptions kNoSafeguard{.safeguard = false};

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  std::unique_ptr<core::JsonSink> json_sink, json_sink_c6;
  if (args.has("json")) {
    std::string path = args.get_string("json", "");
    if (path.empty()) path = "BENCH_fig10.json";
    std::string c6_path = path;
    const auto ext = c6_path.rfind(".json");
    if (ext != std::string::npos) c6_path.insert(ext, "_c6");
    else c6_path += "_c6";
    json_sink = std::make_unique<core::JsonSink>(path);
    json_sink_c6 = std::make_unique<core::JsonSink>(c6_path);
  }
  const unsigned threads = core::threads_from_args(args);
  const auto storage = core::storage_model_from_args(args);
  const double bytes_per_node =
      args.get_double("bytes-per-node-gb", 2.0) * 1024.0 * 1024.0 * 1024.0;
  args.warn_unknown(std::cerr);

  const auto cfg = core::figure10_config();
  std::cout << "# Figure 10 — weak scaling, variable alpha, "
            << (storage ? "C/R from the --storage model\n\n"
                        : "constant checkpoint cost (C = R = 60 s)\n\n");

  if (storage) {
    // C/R derived from the (possibly measured) storage model at every node
    // count instead of the calibrated 60 s constant. A per-node-bandwidth
    // model (buddy/nvram/any calibrated local backend) keeps C constant in
    // the node count — the Fig 10 regime — while an aggregate pfs model
    // reproduces the non-scalable Fig 8–9 growth on the same axis.
    constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;  // spec units (GiB/s)
    std::cout << "storage model '" << storage->name << "': "
              << (storage->node_bandwidth > 0.0
                      ? storage->node_bandwidth / kGiB
                      : storage->aggregate_bandwidth / kGiB)
              << " GiB/s "
              << (storage->node_bandwidth > 0.0 ? "per node" : "aggregate")
              << ", latency " << storage->latency << " s, read speedup "
              << storage->read_speedup << "\n  C(base) = "
              << storage->write_time(
                     bytes_per_node * cfg.base_nodes,
                     static_cast<std::size_t>(cfg.base_nodes))
              << " s, R(base) = "
              << storage->read_time(
                     bytes_per_node * cfg.base_nodes,
                     static_cast<std::size_t>(cfg.base_nodes))
              << " s for " << bytes_per_node / (1024.0 * 1024.0 * 1024.0)
              << " GiB/node\n\n";
  }
  auto fast = cfg;
  fast.base_ckpt = 6.0;  // the paper's "C = R = 6 s" NVRAM remark

  core::ExperimentSpec spec;
  spec.name = "fig10";
  spec.sweep.axes = {core::Axis::custom(
      "nodes", core::default_node_sweep(),
      [cfg, storage, bytes_per_node](core::ScenarioParams& s, double nodes) {
        s = core::scenario_at(cfg, nodes);
        if (storage)
          s.ckpt = core::ckpt_from_storage(
              *storage, bytes_per_node, static_cast<std::size_t>(nodes),
              cfg.rho);
      })};
  spec.series = core::cross_series(core::all_protocols(), {"model"},
                                   kNoSafeguard);
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  // The NVRAM counterfactual re-derives every parameter from the C = R = 6 s
  // config, so it runs as its own one-series experiment on the same axis.
  core::ExperimentSpec fast_spec;
  fast_spec.name = "fig10_c6";
  fast_spec.sweep.axes = {core::Axis::custom(
      "nodes", core::default_node_sweep(),
      [fast](core::ScenarioParams& s, double nodes) {
        s = core::scenario_at(fast, nodes);
      })};
  fast_spec.series = {{"model_pure_c6", core::Protocol::PurePeriodicCkpt,
                       "model", kNoSafeguard, {}}};
  fast_spec.threads = threads;
  core::Experiment experiment_c6(std::move(fast_spec));
  if (json_sink_c6) experiment_c6.add_sink(*json_sink_c6);
  const auto result_c6 = experiment_c6.run();

  std::vector<std::size_t> model_idx;
  for (const auto p : core::all_protocols())
    model_idx.push_back(result.series_index(
        "model_" + std::string(core::protocol_key(p))));

  common::Table table({"nodes", "alpha", "waste Pure", "waste Bi",
                       "waste ABFT&", "waste Pure(C=6s)", "flt Pure", "flt Bi",
                       "flt ABFT&"});
  for (const auto& cell : result.cells) {
    const auto s = result.sweep.scenario(cell.index);
    std::vector<std::string> row{common::fmt(cell.axis_values[0], 6),
                                 common::fmt_fixed(s.epoch.alpha, 3)};
    std::vector<std::string> faults;
    for (const std::size_t si : model_idx) {
      const auto& m = cell.series[si];
      row.push_back(m.diverged ? "1.000(div)" : common::fmt_fixed(m.waste, 3));
      faults.push_back(m.diverged ? "inf" : common::fmt_fixed(m.failures, 1));
    }
    const auto& m6 = result_c6.cells[cell.index].series[0];
    row.push_back(m6.diverged ? "1.000(div)" : common::fmt_fixed(m6.waste, 3));
    for (auto& f : faults) row.push_back(std::move(f));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout
      << "\nShape checks (paper, Section V-C):\n"
         "  * both periodic protocols stay below ~15% waste at 1M nodes;\n"
         "  * the composite's waste is almost flat in the node count (the "
         "ABFT overhead is scale-independent);\n"
         "  * the composite still wins at 1M nodes; only ~6 s checkpoints "
         "would bring pure checkpointing level with it.\n";
  return 0;
}

/// \file weak_scaling_explorer.cpp
/// Interactive companion to Figs 8–10: evaluate the three protocols under a
/// user-defined weak-scaling law, including the paper's literal Section V-C
/// parameters and storage models expressed in hardware terms.
///
/// Flags (defaults reproduce Fig 9):
///   --base-nodes=1e4       anchor scale
///   --epoch-min=20         epoch duration at the anchor (minutes)
///   --alpha=0.8            library fraction at the anchor
///   --epochs=1000
///   --ckpt-s=60            C = R at the anchor (seconds)
///   --mtbf-days=1          platform MTBF at the anchor (days)
///   --lib-growth=sqrt      constant | sqrt | linear
///   --gen-growth=constant
///   --ckpt-growth=sqrt
///   --mtbf-shrink=sqrt
///   --safeguard            enable the §III-B safeguard (off to match figs)
///   --min-nodes=1000 --max-nodes=1e6 --ppd=4 (points per decade)
///   --json[=PATH]          write the BENCH_weak_scaling.json result sink

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/experiment.hpp"
#include "core/phase_model.hpp"
#include "core/scaling.hpp"

using namespace abftc;

namespace {

core::ScalingLaw parse_law(const std::string& s) {
  if (s == "constant") return core::ScalingLaw::Constant;
  if (s == "sqrt") return core::ScalingLaw::Sqrt;
  if (s == "linear") return core::ScalingLaw::Linear;
  ABFTC_REQUIRE(false, "unknown scaling law '" + s +
                           "' (use constant|sqrt|linear)");
  return core::ScalingLaw::Constant;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);

  core::WeakScalingConfig cfg;
  cfg.base_nodes = args.get_double("base-nodes", 1e4);
  const double epoch = common::minutes(args.get_double("epoch-min", 20.0));
  const double alpha = args.get_double("alpha", 0.8);
  cfg.base_library = alpha * epoch;
  cfg.base_general = (1.0 - alpha) * epoch;
  cfg.epochs = static_cast<std::size_t>(args.get_int("epochs", 1000));
  cfg.base_ckpt = args.get_double("ckpt-s", 60.0);
  cfg.base_mtbf = common::days(args.get_double("mtbf-days", 1.0));
  cfg.library_growth = parse_law(args.get_string("lib-growth", "sqrt"));
  cfg.general_growth = parse_law(args.get_string("gen-growth", "constant"));
  cfg.ckpt_growth = parse_law(args.get_string("ckpt-growth", "sqrt"));
  cfg.mtbf_shrink = parse_law(args.get_string("mtbf-shrink", "sqrt"));

  const core::ModelOptions opt{.safeguard = args.get_bool("safeguard", false)};
  const double lo = args.get_double("min-nodes", 1000);
  const double hi = args.get_double("max-nodes", 1e6);
  const int ppd = static_cast<int>(args.get_int("ppd", 4));
  const auto json_sink = core::json_sink_from_args(args, "weak_scaling");
  const unsigned threads = core::threads_from_args(args);
  args.warn_unknown(std::cerr);

  std::vector<double> nodes_grid;
  for (const double nodes : core::default_node_sweep(ppd))
    if (nodes >= lo && nodes <= hi) nodes_grid.push_back(nodes);

  common::Table table({"nodes", "alpha", "epoch", "C=R", "MTBF", "P_opt",
                       "waste Pure", "waste Bi", "waste ABFT&"});
  if (nodes_grid.empty()) {
    // No sweep points inside [--min-nodes, --max-nodes]: empty table, not
    // an error (matches the pre-engine filter-in-the-loop behaviour).
    std::cout << "# Weak-scaling exploration (safeguard "
              << (opt.safeguard ? "on" : "off") << ")\n\n";
    table.print(std::cout);
    return 0;
  }

  core::ExperimentSpec spec;
  spec.name = "weak_scaling";
  spec.sweep.axes = {core::Axis::custom(
      "nodes", nodes_grid, [cfg](core::ScenarioParams& s, double nodes) {
        s = core::scenario_at(cfg, nodes);
      })};
  spec.series = core::cross_series(core::all_protocols(), {"model"}, opt);
  spec.threads = threads;

  core::Experiment experiment(std::move(spec));
  if (json_sink) experiment.add_sink(*json_sink);
  const auto result = experiment.run();

  std::vector<std::size_t> model_idx;
  for (const auto proto : core::all_protocols())
    model_idx.push_back(result.series_index(
        "model_" + std::string(core::protocol_key(proto))));

  std::cout << "# Weak-scaling exploration (safeguard "
            << (opt.safeguard ? "on" : "off") << ")\n\n";
  for (const auto& cell : result.cells) {
    const auto s = result.sweep.scenario(cell.index);
    const auto p = core::optimal_period_first_order(
        s.ckpt.full_cost, s.platform.mtbf, s.platform.downtime,
        s.ckpt.full_recovery);
    std::vector<std::string> row;
    row.push_back(common::fmt(cell.axis_values[0], 6));
    row.push_back(common::fmt_fixed(s.epoch.alpha, 3));
    row.push_back(common::format_duration(s.epoch.duration));
    row.push_back(common::format_duration(s.ckpt.full_cost));
    row.push_back(common::format_duration(s.platform.mtbf));
    row.push_back(p ? common::format_duration(*p) : std::string("none"));
    for (const std::size_t si : model_idx) {
      const auto& m = cell.series[si];
      row.push_back(m.diverged ? "1.000(div)" : common::fmt_fixed(m.waste, 3));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  std::cout << "\nTip: reproduce the paper's literal Section V-C reading "
               "with\n  --epoch-min=1 --gen-growth=sqrt --ckpt-growth=linear "
               "--mtbf-shrink=linear\nand watch every protocol diverge at "
               "scale (see EXPERIMENTS.md).\n";
  return 0;
}

/// \file quickstart.cpp
/// Minimal tour of the abftc public API:
///   1. describe a platform/application scenario (Section IV-A parameters),
///   2. predict the waste of the three protocols with the analytical model,
///   3. validate the prediction with the discrete-event simulator.
///
/// Usage: quickstart [--mtbf-min=120] [--alpha=0.8] [--reps=500]

#include <iostream>

#include "common/cli.hpp"
#include "common/table.hpp"
#include "common/time_units.hpp"
#include "core/monte_carlo.hpp"
#include "core/protocol_models.hpp"

int main(int argc, char** argv) {
  using namespace abftc;
  const common::ArgParser args(argc, argv);

  // The paper's Figure 7 setting: a one-week application, 10-minute
  // checkpoints, 80% of memory touched by the ABFT-capable library.
  const double mtbf = common::minutes(args.get_double("mtbf-min", 120));
  const double alpha = args.get_double("alpha", 0.8);
  const auto scenario = core::figure7_scenario(mtbf, alpha);

  std::cout << "Scenario: T0 = "
            << common::format_duration(scenario.epoch.duration)
            << ", alpha = " << alpha
            << ", MTBF = " << common::format_duration(mtbf)
            << ", C = R = " << common::format_duration(scenario.ckpt.full_cost)
            << ", rho = " << scenario.ckpt.rho
            << ", phi = " << scenario.abft.phi << "\n\n";

  core::MonteCarloOptions mc;
  mc.replicates = static_cast<std::size_t>(args.get_int("reps", 500));

  common::Table table({"protocol", "model waste", "sim waste", "sim 95% CI",
                       "E[failures]", "makespan (model)"});
  for (const auto protocol :
       {core::Protocol::PurePeriodicCkpt, core::Protocol::BiPeriodicCkpt,
        core::Protocol::AbftPeriodicCkpt}) {
    const auto model = core::evaluate(protocol, scenario);
    const auto sim = core::monte_carlo(protocol, scenario, {}, mc);
    table.add_row({std::string(core::to_string(protocol)),
                   common::fmt_fixed(model.waste(), 4),
                   common::fmt_fixed(sim.waste.mean(), 4),
                   "±" + common::fmt_fixed(sim.waste.ci95_halfwidth(), 4),
                   common::fmt_fixed(sim.failures.mean(), 1),
                   common::format_duration(model.t_final)});
  }
  table.print(std::cout);

  std::cout << "\nThe composite protocol checkpoints less (no periodic "
               "checkpoints inside ABFT\nsections) and loses less work per "
               "failure (ABFT recovery instead of rollback).\n";
  return 0;
}

/// \file radar_cross_section.cpp
/// Second motivating application from the paper's introduction: "radar
/// cross-section" — a frequency sweep where each frequency point solves a
/// dense linear system (method-of-moments style). Each frequency is one
/// epoch: the GENERAL phase assembles the frequency-dependent system and
/// excitation vectors, the LIBRARY phase LU-factors it under ABFT and
/// back-solves for several incidence angles.
///
/// Rank failures are injected at different factorization steps of different
/// epochs; the computed monostatic response must match the failure-free
/// reference for every frequency.
///
/// Flags: --n=96 (system size; keep n/8 a multiple of 2 and 3),
///        --freqs=5, --angles=4

#include <cmath>
#include <iostream>
#include <numbers>
#include <vector>

#include "abft/abft_lu.hpp"
#include "abft/blas.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace abftc;
using abft::Matrix;

namespace {

/// Frequency-dependent impedance-like matrix: diagonally dominant with an
/// oscillatory off-diagonal kernel (a real-valued stand-in for the complex
/// MoM operator; the protection arithmetic is identical).
Matrix impedance_matrix(std::size_t n, double k_wave) {
  Matrix z(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double r =
          std::fabs(static_cast<double>(i) - static_cast<double>(j));
      z(i, j) = std::cos(k_wave * r) / (1.0 + r);
      off += std::fabs(z(i, j));
    }
    z(i, i) = off + 2.0;
  }
  return z;
}

std::vector<double> excitation(std::size_t n, double k_wave, double angle) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = std::cos(k_wave * std::cos(angle) * static_cast<double>(i));
  return v;
}

/// One frequency sweep; returns the response magnitude per (freq, angle).
std::vector<std::vector<double>> sweep(std::size_t n, std::size_t freqs,
                                       std::size_t angles, bool with_faults,
                                       std::size_t* recovered_blocks) {
  const std::size_t nb = 8;
  const abft::ProcessGrid grid{2, 3};
  std::vector<std::vector<double>> rcs(freqs);
  if (recovered_blocks) *recovered_blocks = 0;

  for (std::size_t f = 0; f < freqs; ++f) {
    const double k_wave = 0.3 + 0.15 * static_cast<double>(f);

    // GENERAL phase: assemble (cheap to re-execute; under the composite
    // protocol this would be checkpoint-protected).
    const Matrix z = impedance_matrix(n, k_wave);

    // LIBRARY phase: ABFT-protected factorization; kill a different rank at
    // a different step in every other epoch.
    std::vector<abft::AbftLu::Fault> faults;
    if (with_faults && f % 2 == 1)
      faults.push_back({/*at_step=*/(f * 3) % (n / nb),
                        /*dead_rank=*/f % grid.size()});
    abft::AbftLu lu(z, nb, grid);
    lu.factor(faults);
    if (recovered_blocks) *recovered_blocks += lu.recovery().blocks_recovered;

    for (std::size_t a = 0; a < angles; ++a) {
      const double angle = std::numbers::pi * static_cast<double>(a) /
                           static_cast<double>(2 * angles);
      const auto current = abft::lu_solve(lu.lu(), excitation(n, k_wave, angle));
      // Monostatic response ~ |excitationᵀ · current|.
      double resp = 0.0;
      const auto e = excitation(n, k_wave, angle);
      for (std::size_t i = 0; i < n; ++i) resp += e[i] * current[i];
      rcs[f].push_back(std::fabs(resp));
    }
  }
  return rcs;
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 96));
  const std::size_t freqs = static_cast<std::size_t>(args.get_int("freqs", 5));
  const std::size_t angles =
      static_cast<std::size_t>(args.get_int("angles", 4));

  std::cout << "Radar-cross-section style frequency sweep: " << freqs
            << " frequencies x " << angles << " angles, system size " << n
            << "\n\n";

  const auto ref = sweep(n, freqs, angles, false, nullptr);
  std::size_t recovered = 0;
  const auto faulty = sweep(n, freqs, angles, true, &recovered);

  common::Table table({"freq idx", "angle idx", "response (ref)",
                       "response (with failures)", "abs diff"});
  double max_diff = 0.0;
  for (std::size_t f = 0; f < freqs; ++f)
    for (std::size_t a = 0; a < angles; ++a) {
      const double d = std::fabs(ref[f][a] - faulty[f][a]);
      max_diff = std::max(max_diff, d);
      table.add_row({std::to_string(f), std::to_string(a),
                     common::fmt(ref[f][a], 8), common::fmt(faulty[f][a], 8),
                     common::fmt(d, 3)});
    }
  table.print(std::cout);

  std::cout << "\nblocks reconstructed from ABFT checksums: " << recovered
            << "\nmax |response difference| = " << max_diff << "\n";
  if (max_diff < 1e-7) {
    std::cout << "OK: the sweep is failure-transparent under ABFT.\n";
    return 0;
  }
  std::cout << "FAIL: responses diverged.\n";
  return 1;
}

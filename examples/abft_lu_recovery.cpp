/// \file abft_lu_recovery.cpp
/// Anatomy of an ABFT recovery (Section III-A, LIBRARY-phase failure path):
/// factor a dense system on a virtual 2-D process grid, kill a rank halfway
/// through, reconstruct its blocks from the checksum accumulators, finish
/// the factorization and verify the factors — no rollback, no checkpoint.
///
/// Flags: --n=192 --nb=16 --step=-1 (default: halfway) --rank=4
///        --prows=2 --pcols=3

#include <iostream>

#include "abft/abft_lu.hpp"
#include "abft/blas.hpp"
#include "common/cli.hpp"
#include "common/table.hpp"

using namespace abftc;
using abft::Matrix;

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t n = static_cast<std::size_t>(args.get_int("n", 192));
  const std::size_t nb = static_cast<std::size_t>(args.get_int("nb", 16));
  const abft::ProcessGrid grid{
      static_cast<std::size_t>(args.get_int("prows", 2)),
      static_cast<std::size_t>(args.get_int("pcols", 3))};
  const long long step_arg = args.get_int("step", -1);
  const std::size_t at_step =
      step_arg < 0 ? n / nb / 2 : static_cast<std::size_t>(step_arg);
  const std::size_t rank = static_cast<std::size_t>(args.get_int("rank", 4));

  common::Rng rng(2024);
  const Matrix a = Matrix::diag_dominant(n, rng);

  std::cout << "ABFT-LU on a " << n << "x" << n << " diagonally dominant "
            << "system, block " << nb << ", grid " << grid.prows << "x"
            << grid.pcols << "\n";
  std::cout << "killing rank " << rank << " (grid position "
            << grid.grid_row(rank) << "," << grid.grid_col(rank)
            << ") before block step " << at_step << " of " << n / nb << "\n\n";

  abft::AbftLu lu(a, nb, grid);
  lu.factor({{at_step, rank}});

  const Matrix product = lu.reconstruct_product();
  const double rel = abft::relative_error(product, a);

  common::Table table({"quantity", "value"});
  table.add_row({"blocks reconstructed",
                 std::to_string(lu.recovery().blocks_recovered)});
  table.add_row({"doubles reconstructed",
                 std::to_string(lu.recovery().values_recovered)});
  table.add_row({"reconstruction wall time",
                 common::fmt(lu.recovery().seconds, 3) + " s"});
  table.add_row({"checksum residual after factor",
                 common::fmt(lu.checksum_residual(), 3)});
  table.add_row({"||L*U - A||_F / ||A||_F", common::fmt(rel, 3)});
  table.add_row({"checksum arithmetic overhead (1/P)",
                 common::fmt_percent(lu.overhead_fraction(), 1)});
  table.print(std::cout);

  // Contrast with the checkpoint alternative: losing the rank without ABFT
  // would discard *all* factorization progress back to the last checkpoint.
  std::cout << "\nWithout ABFT, this failure would have rolled the whole "
               "factorization back;\nwith ABFT it cost one reconstruction "
               "pass over the rank's blocks.\n";
  if (rel < 1e-9) {
    std::cout << "OK: factors verified.\n";
    return 0;
  }
  std::cout << "FAIL: factorization incorrect.\n";
  return 1;
}

/// \file heat_dissipation.cpp
/// The paper's motivating application class (Section I): "iterative methods
/// applied across an additional dimension such as time ... at the core of
/// such applications, a system of linear equations is factorized".
///
/// This example integrates a 2-D heat equation implicitly. Every time step
/// is one epoch of the composite protocol:
///   GENERAL phase  assemble the right-hand side and the (time-step
///                  dependent) implicit operator — protected by
///                  checkpoint/rollback on the REMAINDER dataset;
///   LIBRARY phase  Cholesky-factor the SPD operator under ABFT protection
///                  and back-solve — process failures are repaired from
///                  checksums (LIBRARY dataset) plus the entry checkpoint
///                  (REMAINDER dataset), exactly as in Figure 2.
///
/// Failures are injected in both phases; the run must end with the same
/// temperature field as a failure-free reference execution.
///
/// Flags: --grid=12 (unknowns = grid², must keep grid² a multiple of 24),
///        --steps=6, --verbose

#include <cmath>
#include <iostream>
#include <vector>

#include "abft/abft_cholesky.hpp"
#include "abft/blas.hpp"
#include "ckpt/image.hpp"
#include "common/cli.hpp"
#include "core/runtime.hpp"

using namespace abftc;
using abft::Matrix;

namespace {

/// Implicit operator M = I + dt·L for the 5-point Laplacian on a g×g grid.
Matrix heat_operator(std::size_t g, double dt) {
  const std::size_t n = g * g;
  Matrix m(n, n, 0.0);
  const auto idx = [g](std::size_t r, std::size_t c) { return r * g + c; };
  for (std::size_t r = 0; r < g; ++r)
    for (std::size_t c = 0; c < g; ++c) {
      const std::size_t i = idx(r, c);
      m(i, i) = 1.0 + 4.0 * dt;
      if (r > 0) m(i, idx(r - 1, c)) = -dt;
      if (r + 1 < g) m(i, idx(r + 1, c)) = -dt;
      if (c > 0) m(i, idx(r, c - 1)) = -dt;
      if (c + 1 < g) m(i, idx(r, c + 1)) = -dt;
    }
  return m;
}

struct SimulationResult {
  std::vector<double> temperature;
  core::CompositeRuntime::Stats stats;
};

/// Run `steps` implicit time steps; `with_faults` injects one GENERAL-phase
/// crash and one LIBRARY-phase rank kill at chosen steps.
SimulationResult run(std::size_t g, std::size_t steps, bool with_faults,
                     bool verbose) {
  const std::size_t n = g * g;
  const std::size_t nb = n / 12;  // 12 block rows on a 2x3 grid
  const abft::ProcessGrid grid{2, 3};

  // Protocol discipline (Section III): during a LIBRARY phase only the
  // LIBRARY dataset may be written. The temperature, RHS and clock are the
  // REMAINDER dataset (checkpoint-protected, updated in GENERAL phases);
  // the factorization output and the fresh solution are the LIBRARY dataset
  // (ABFT-protected, never periodically checkpointed inside the call).
  std::vector<double> u(n, 0.0), rhs(n, 0.0);
  std::vector<double> factor_buffer(n * n, 0.0), solution(n, 0.0);
  double sim_time = 0.0;

  // A hot square in the middle of the plate.
  for (std::size_t r = g / 3; r < 2 * g / 3; ++r)
    for (std::size_t c = g / 3; c < 2 * g / 3; ++c) u[r * g + c] = 100.0;
  solution = u;  // epoch 0's GENERAL phase reads the "previous" solution

  ckpt::MemoryImage image;
  const auto rid_u = image.add_region("temperature", std::span<double>(u),
                                      ckpt::RegionClass::Remainder);
  const auto rid_rhs = image.add_region("rhs", std::span<double>(rhs),
                                        ckpt::RegionClass::Remainder);
  const auto rid_time = image.add_region(
      "sim_time", std::span<double>(&sim_time, 1),
      ckpt::RegionClass::Remainder);
  const auto rid_factor =
      image.add_region("cholesky_factor", std::span<double>(factor_buffer),
                       ckpt::RegionClass::Library);
  const auto rid_sol = image.add_region("solution", std::span<double>(solution),
                                        ckpt::RegionClass::Library);

  core::CompositeRuntime runtime(image);

  for (std::size_t step = 0; step < steps; ++step) {
    const double dt = 0.05 + 0.01 * static_cast<double>(step % 3);

    // GENERAL phase: pull the previous solution into the temperature field
    // and assemble the RHS (+ a source term). Re-runnable after rollback.
    const int general_failures = (with_faults && step == 1) ? 1 : 0;
    runtime.run_general_phase(
        [&] {
          std::copy(solution.begin(), solution.end(), u.begin());
          for (std::size_t i = 0; i < n; ++i) rhs[i] = u[i];
          rhs[(g / 2) * g + g / 2] += 5.0;  // persistent heat source
          sim_time += dt;
          image.mark_dirty(rid_u);
          image.mark_dirty(rid_rhs);
          image.mark_dirty(rid_time);
        },
        general_failures);

    // LIBRARY phase: ABFT-protected factorization + solve; writes only the
    // LIBRARY regions (factor buffer, solution).
    runtime.run_library_phase([&](const std::function<void()>& on_recovery) {
      std::vector<abft::AbftCholesky::Fault> faults;
      if (with_faults && step == 3)
        faults.push_back({/*at_step=*/n / nb / 2, /*dead_rank=*/4});
      abft::AbftCholesky chol(heat_operator(g, dt), nb, grid);
      chol.factor(faults);
      if (!faults.empty()) on_recovery();  // Figure 2's combined recovery

      const auto x = abft::cholesky_solve(chol.factor_matrix(), rhs);
      std::copy(x.begin(), x.end(), solution.begin());
      std::copy(chol.factor_matrix().storage().begin(),
                chol.factor_matrix().storage().end(), factor_buffer.begin());
      image.mark_dirty(rid_factor);
      image.mark_dirty(rid_sol);
    });

    if (verbose) {
      double total = 0.0;
      for (const double t : solution) total += t;
      std::cout << "  step " << step << ": mean temperature "
                << total / static_cast<double>(n) << "\n";
    }
  }
  return {solution, runtime.stats()};
}

}  // namespace

int main(int argc, char** argv) {
  const common::ArgParser args(argc, argv);
  const std::size_t g = static_cast<std::size_t>(args.get_int("grid", 12));
  const std::size_t steps =
      static_cast<std::size_t>(args.get_int("steps", 6));
  const bool verbose = args.get_bool("verbose", false);

  std::cout << "Heat dissipation on a " << g << "x" << g
            << " plate, " << steps
            << " implicit steps under ABFT&PeriodicCkpt\n\n";

  std::cout << "Reference run (no failures)...\n";
  const auto ref = run(g, steps, /*with_faults=*/false, verbose);

  std::cout << "Protected run (1 crash in a GENERAL phase, 1 rank kill "
               "inside the ABFT factorization)...\n";
  const auto faulty = run(g, steps, /*with_faults=*/true, verbose);

  double max_diff = 0.0;
  for (std::size_t i = 0; i < ref.temperature.size(); ++i)
    max_diff = std::max(max_diff, std::fabs(ref.temperature[i] -
                                            faulty.temperature[i]));

  std::cout << "\nmax |T_faulty - T_reference| = " << max_diff << "\n";
  std::cout << "protocol activity: " << faulty.stats.full_checkpoints
            << " full ckpts, " << faulty.stats.entry_checkpoints
            << " entry ckpts, " << faulty.stats.exit_checkpoints
            << " exit ckpts, " << faulty.stats.rollbacks << " rollbacks, "
            << faulty.stats.abft_recoveries << " ABFT recoveries\n";

  if (max_diff < 1e-8) {
    std::cout << "OK: failures were fully masked by the composite protocol.\n";
    return 0;
  }
  std::cout << "FAIL: the protected run diverged from the reference.\n";
  return 1;
}

#include "common/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace abftc::common {

namespace {

/// Hard ceiling on helper threads for any single executor. Requests above it
/// are clamped to kMaxHelpers + 1 participants; the clamp cannot change
/// results (chunk ownership is derived from the index space, not the worker
/// set).
constexpr unsigned kMaxHelpers = 256;

/// Nesting depth of the current thread: incremented while it executes chunks
/// or tasks of any parallel region (pool, spawn, or caller participation).
thread_local unsigned t_nesting_depth = 0;

struct DepthGuard {
  DepthGuard() noexcept { ++t_nesting_depth; }
  ~DepthGuard() { --t_nesting_depth; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;
};

/// Shared state of one parallel loop. Participants (the caller plus any pool
/// workers that picked up a helper job) claim contiguous chunks off `cursor`
/// until it passes `n` or `stop` is raised. `running` counts participants
/// currently inside the claim loop: a participant registers *before* its
/// first claim, so once the caller observes running == 0 after its own
/// chunks drained, no chunk is executing and none can start (the cursor is
/// exhausted or `stop` is permanently set) — late-popped helper jobs touch
/// only the atomics, never `fn`/`ctx`. The shared_ptr in each queued job
/// keeps this state alive past the caller's stack frame.
struct LoopState {
  detail::RawLoopFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> stop{false};

  std::mutex m;
  std::condition_variable done;
  unsigned running = 0;             // guarded by m
  std::exception_ptr first_error;   // guarded by m
};

/// Claim and execute chunks until the loop drains or stops. On the first
/// exception the error is captured, `stop` is raised (relaxed: other
/// participants notice at their next chunk boundary), and the rest of the
/// throwing chunk is abandoned.
void run_chunks(LoopState& loop) {
  for (;;) {
    if (loop.stop.load(std::memory_order_relaxed)) return;
    const std::size_t lo =
        loop.cursor.fetch_add(loop.chunk, std::memory_order_relaxed);
    if (lo >= loop.n) return;
    const std::size_t hi = std::min(lo + loop.chunk, loop.n);
    try {
      for (std::size_t i = lo; i < hi; ++i) loop.fn(loop.ctx, i);
    } catch (...) {
      std::lock_guard lock(loop.m);
      if (!loop.first_error) loop.first_error = std::current_exception();
      loop.stop.store(true, std::memory_order_relaxed);
    }
  }
}

void participate(LoopState& loop) {
  {
    std::lock_guard lock(loop.m);
    ++loop.running;
  }
  {
    DepthGuard depth;
    run_chunks(loop);
  }
  {
    std::lock_guard lock(loop.m);
    if (--loop.running == 0) loop.done.notify_all();
  }
}

/// Same chunking the spawn-per-call pool used: the cursor is touched ~8× per
/// participant, and contiguous ranges keep cache locality for loops walking
/// adjacent rows.
std::size_t chunk_for(std::size_t n, unsigned threads) noexcept {
  return std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(threads) * 8));
}

/// The legacy dispatch: spawn and join fresh threads for this one loop.
/// Retained for dispatch-latency A/B benches and pool-vs-spawn determinism
/// cross-checks.
void spawn_parallel_for(std::size_t n, detail::RawLoopFn fn, void* ctx,
                        unsigned threads) {
  LoopState loop;
  loop.fn = fn;
  loop.ctx = ctx;
  loop.n = n;
  loop.chunk = chunk_for(n, threads);

  std::vector<std::thread> pool;
  const unsigned spawn =
      static_cast<unsigned>(std::min<std::size_t>(threads, n) - 1);
  pool.reserve(spawn);
  for (unsigned t = 0; t < spawn; ++t)
    pool.emplace_back([&loop] { participate(loop); });
  participate(loop);
  for (auto& th : pool) th.join();
  if (loop.first_error) std::rethrow_exception(loop.first_error);
}

}  // namespace

unsigned hardware_workers() noexcept {
  static const unsigned cached = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1u : hc;
  }();
  return cached;
}

unsigned effective_threads(unsigned threads) noexcept {
  return threads == 0 ? hardware_workers() : threads;
}

// --- Executor ---------------------------------------------------------------

/// A unit of pool work: either a helper job for a running loop or a
/// submitted task.
struct ExecutorJob {
  std::shared_ptr<LoopState> loop;
  std::function<void()> task;
};

struct Executor::Impl {
  unsigned cap = 0;

  std::mutex m;
  std::condition_variable work;
  std::deque<ExecutorJob> queue;   // guarded by m
  std::vector<std::thread> workers;  // guarded by m (grow-only)
  bool stopping = false;           // guarded by m

  /// Workers parked in the wait below. Advisory (read without m by the
  /// nested-loop arbitration): a stale value only costs a queued job that
  /// drains without work, never correctness.
  std::atomic<unsigned> idle{0};

  void worker_main() {
    for (;;) {
      ExecutorJob job;
      {
        std::unique_lock lock(m);
        idle.fetch_add(1, std::memory_order_relaxed);
        work.wait(lock, [&] { return stopping || !queue.empty(); });
        idle.fetch_sub(1, std::memory_order_relaxed);
        if (queue.empty()) return;  // stopping, queue drained
        job = std::move(queue.front());
        queue.pop_front();
      }
      if (job.loop) {
        participate(*job.loop);
      } else if (job.task) {
        DepthGuard depth;
        job.task();  // packaged tasks / arena wrappers capture their errors
      }
    }
  }

  /// Grow the worker set to at least `want` threads (within the cap).
  /// Returns the number of helpers actually available.
  unsigned ensure_helpers(unsigned want) {
    want = std::min(want, cap);
    if (want == 0) return 0;
    std::lock_guard lock(m);
    if (stopping) return 0;
    while (workers.size() < want)
      workers.emplace_back([this] { worker_main(); });
    return static_cast<unsigned>(workers.size());
  }
};

Executor::Executor(unsigned max_helpers) : impl_(std::make_unique<Impl>()) {
  impl_->cap = std::min(max_helpers == 0 ? kMaxHelpers : max_helpers,
                        kMaxHelpers);
}

Executor::~Executor() {
  {
    std::lock_guard lock(impl_->m);
    impl_->stopping = true;
  }
  impl_->work.notify_all();
  for (auto& th : impl_->workers) th.join();
}

Executor& Executor::global() {
  static Executor pool;
  return pool;
}

unsigned Executor::spawned_helpers() const noexcept {
  std::lock_guard lock(impl_->m);
  return static_cast<unsigned>(impl_->workers.size());
}

unsigned Executor::max_helpers() const noexcept { return impl_->cap; }

bool Executor::inside_parallel_region() noexcept {
  return t_nesting_depth > 0;
}

unsigned Executor::nesting_depth() noexcept { return t_nesting_depth; }

void Executor::run_loop(std::size_t n, detail::RawLoopFn fn, void* ctx,
                        unsigned threads) {
  if (n == 0) return;
  threads = std::min(effective_threads(threads), impl_->cap + 1);
  // Nesting arbitration — a loop issued from inside a parallel region gets
  // a *bounded share*: only workers idle right now may help, and the pool
  // never grows for it. Busy pool (the common sweep × kernel case) means
  // zero idle workers and the loop runs inline on the calling thread with
  // no dispatch cost; an under-filled pool (a 4-cell grid on a 16-worker
  // pool) lends its parked workers to the inner loop. Either way peak
  // concurrency stays bounded by the pool size + callers, so nested
  // regions can never oversubscribe, and the caller still executes chunks
  // itself, so nesting stays deadlock-free.
  const bool nested = inside_parallel_region();
  const unsigned lendable =
      nested ? impl_->idle.load(std::memory_order_relaxed) : 0;
  // Serial fast path: exceptions propagate directly (which trivially
  // satisfies the first-error/short-circuit contract).
  if (threads <= 1 || n == 1 || (nested && lendable == 0)) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  auto loop = std::make_shared<LoopState>();
  loop->fn = fn;
  loop->ctx = ctx;
  loop->n = n;
  loop->chunk = chunk_for(n, threads);
  const std::size_t chunks = (n + loop->chunk - 1) / loop->chunk;
  unsigned helpers =
      static_cast<unsigned>(std::min<std::size_t>(threads, chunks)) - 1;
  // Top-level loops grow the pool to the full requested budget (threads-1),
  // not just to the helper jobs this loop can use: a 3-cell grid on a
  // 16-thread request parks 13 workers that its cells' nested loops may
  // then borrow. Nested loops never grow the pool (bounded share).
  helpers = nested ? std::min(helpers, lendable)
                   : std::min(helpers, impl_->ensure_helpers(threads - 1));

  if (helpers > 0) {
    {
      std::lock_guard lock(impl_->m);
      for (unsigned h = 0; h < helpers; ++h)
        impl_->queue.push_back(ExecutorJob{loop, {}});
    }
    impl_->work.notify_all();
  }

  participate(*loop);
  // The caller's claim loop only returns once the cursor is exhausted or the
  // loop stopped, so waiting for running == 0 is the full completion
  // condition; helper jobs still queued will find nothing to claim.
  std::unique_lock lock(loop->m);
  loop->done.wait(lock, [&] { return loop->running == 0; });
  if (loop->first_error) {
    std::exception_ptr err = loop->first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Executor::enqueue_task(std::function<void()> task) {
  if (impl_->ensure_helpers(1) == 0) {
    // No workers permitted (or shutting down): run inline, same depth rules.
    DepthGuard depth;
    task();
    return;
  }
  {
    std::lock_guard lock(impl_->m);
    impl_->queue.push_back(ExecutorJob{nullptr, std::move(task)});
  }
  impl_->work.notify_one();
}

// --- ScopedArena ------------------------------------------------------------

struct Executor::ScopedArena::State {
  mutable std::mutex m;
  std::condition_variable idle;
  std::size_t pending = 0;           // guarded by m
  std::exception_ptr first_error;    // guarded by m
};

Executor::ScopedArena::ScopedArena(Executor& ex)
    : ex_(ex), state_(std::make_shared<State>()) {}

Executor::ScopedArena::~ScopedArena() {
  std::unique_lock lock(state_->m);
  state_->idle.wait(lock, [&] { return state_->pending == 0; });
  // Errors not collected through wait() are intentionally swallowed: a
  // destructor must not throw.
}

void Executor::ScopedArena::submit(std::function<void()> task) {
  {
    std::lock_guard lock(state_->m);
    ++state_->pending;
  }
  ex_.enqueue_task([state = state_, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard lock(state->m);
      if (!state->first_error) state->first_error = std::current_exception();
    }
    std::lock_guard lock(state->m);
    if (--state->pending == 0) state->idle.notify_all();
  });
}

void Executor::ScopedArena::wait() {
  std::unique_lock lock(state_->m);
  state_->idle.wait(lock, [&] { return state_->pending == 0; });
  if (state_->first_error) {
    std::exception_ptr err = std::exchange(state_->first_error, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t Executor::ScopedArena::pending() const noexcept {
  std::lock_guard lock(state_->m);
  return state_->pending;
}

// --- parallel_for dispatcher ------------------------------------------------

namespace detail {

void parallel_for_impl(std::size_t n, RawLoopFn fn, void* ctx,
                       unsigned threads, Dispatch dispatch) {
  if (n == 0) return;
  threads = effective_threads(threads);
  if (dispatch == Dispatch::Spawn) {
    if (threads <= 1 || n == 1 || Executor::inside_parallel_region()) {
      for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
      return;
    }
    spawn_parallel_for(n, fn, ctx, threads);
    return;
  }
  Executor::global().run_loop(n, fn, ctx, threads);
}

}  // namespace detail

}  // namespace abftc::common

#include "common/executor.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/deque.hpp"
#include "common/topology.hpp"

namespace abftc::common {

namespace {

/// Hard ceiling on helper threads for any single executor. Requests above it
/// are clamped to kMaxHelpers + 1 participants; the clamp cannot change
/// results (chunk ownership is derived from the index space, not the worker
/// set).
constexpr unsigned kMaxHelpers = 256;

/// Per-worker capacity of the submitted-task deque. Overflow falls back to
/// the shared queue, so the bound is a fast-path size, not a limit.
constexpr std::size_t kTaskDequeCapacity = 1024;

/// Auto-grain for the stealing schedule: enough chunks that every
/// participant's share can be re-split several times by thieves, without
/// making the per-chunk bookkeeping visible next to real loop bodies.
constexpr std::size_t kStealChunksPerParticipant = 32;

/// Nesting depth of the current thread: incremented while it executes chunks
/// or tasks of any parallel region (pool, spawn, or caller participation).
thread_local unsigned t_nesting_depth = 0;

/// The NUMA node (index into Topology::system()->nodes()) the pinning
/// facility placed this thread on; 0 when unpinned.
thread_local unsigned t_numa_node = 0;

struct DepthGuard {
  DepthGuard() noexcept { ++t_nesting_depth; }
  ~DepthGuard() { --t_nesting_depth; }
  DepthGuard(const DepthGuard&) = delete;
  DepthGuard& operator=(const DepthGuard&) = delete;
};

/// Monotonic scheduler counters; relaxed — they order nothing.
struct alignas(64) StatsBlock {
  std::atomic<std::uint64_t> chunks_claimed{0};
  std::atomic<std::uint64_t> tasks_stolen{0};
  std::atomic<std::uint64_t> steal_failures{0};
  std::atomic<std::uint64_t> parks{0};
  std::atomic<std::uint64_t> unparks{0};

  [[nodiscard]] ExecutorCounters snapshot() const noexcept {
    ExecutorCounters c;
    c.chunks_claimed = chunks_claimed.load(std::memory_order_relaxed);
    c.tasks_stolen = tasks_stolen.load(std::memory_order_relaxed);
    c.steal_failures = steal_failures.load(std::memory_order_relaxed);
    c.parks = parks.load(std::memory_order_relaxed);
    c.unparks = unparks.load(std::memory_order_relaxed);
    return c;
  }
};

void accumulate(ExecutorCounters& into, const ExecutorCounters& c) noexcept {
  into.chunks_claimed += c.chunks_claimed;
  into.tasks_stolen += c.tasks_stolen;
  into.steal_failures += c.steal_failures;
  into.parks += c.parks;
  into.unparks += c.unparks;
}

/// Shared state of one static (shared-cursor) parallel loop. Participants
/// (the caller plus any pool workers that picked up a helper job) claim
/// contiguous chunks off `cursor` until it passes `n` or `stop` is raised.
/// `running` counts participants currently inside the claim loop: a
/// participant registers *before* its first claim, so once the caller
/// observes running == 0 after its own chunks drained, no chunk is executing
/// and none can start (the cursor is exhausted or `stop` is permanently
/// set) — late-popped helper jobs touch only the atomics, never `fn`/`ctx`.
/// The shared_ptr in each queued job keeps this state alive past the
/// caller's stack frame.
struct LoopState {
  detail::RawLoopFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> stop{false};

  std::mutex m;
  std::condition_variable done;
  unsigned running = 0;             // guarded by m
  std::exception_ptr first_error;   // guarded by m
};

/// Shared state of one dynamic (work-stealing) parallel loop. Participant
/// slot s owns deque s, seeded by the caller with a contiguous block of
/// chunk ids *before* the helper jobs are published (the queue mutex is the
/// happens-before edge); thieves re-split laggards with steal-half batches.
/// `remaining` counts indices not yet executed — participants leave when it
/// hits zero or `stop` is raised, and the same running/done handshake as
/// LoopState tells the caller when no participant can touch `fn`/`ctx`.
struct DynLoopState {
  detail::RawLoopFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::size_t nchunks = 0;
  unsigned slots = 0;
  std::atomic<unsigned> next_slot{1};  // slot 0 is the caller
  std::vector<std::unique_ptr<WsDeque<std::size_t>>> deques;
  std::atomic<std::size_t> remaining{0};
  std::atomic<bool> stop{false};

  std::mutex m;
  std::condition_variable done;
  unsigned running = 0;             // guarded by m
  std::exception_ptr first_error;   // guarded by m
};

/// Claim and execute chunks until the loop drains or stops. On the first
/// exception the error is captured, `stop` is raised (relaxed: other
/// participants notice at their next chunk boundary), and the rest of the
/// throwing chunk is abandoned.
void run_chunks(LoopState& loop, StatsBlock* stats) {
  for (;;) {
    if (loop.stop.load(std::memory_order_relaxed)) return;
    const std::size_t lo =
        loop.cursor.fetch_add(loop.chunk, std::memory_order_relaxed);
    if (lo >= loop.n) return;
    const std::size_t hi = std::min(lo + loop.chunk, loop.n);
    if (stats) stats->chunks_claimed.fetch_add(1, std::memory_order_relaxed);
    try {
      for (std::size_t i = lo; i < hi; ++i) loop.fn(loop.ctx, i);
    } catch (...) {
      std::lock_guard lock(loop.m);
      if (!loop.first_error) loop.first_error = std::current_exception();
      loop.stop.store(true, std::memory_order_relaxed);
    }
  }
}

void participate(LoopState& loop, StatsBlock* stats) {
  {
    std::lock_guard lock(loop.m);
    ++loop.running;
  }
  {
    DepthGuard depth;
    run_chunks(loop, stats);
  }
  {
    std::lock_guard lock(loop.m);
    if (--loop.running == 0) loop.done.notify_all();
  }
}

/// One participant of a dynamic loop. `slot` indexes the deque this
/// participant owns (>= slots: steal-only, the defensive case of a surplus
/// helper). Work discovery order: own deque bottom (cache-warm, ascending
/// indices), then steal-half from the other slots' deques round-robin.
void dyn_participate(DynLoopState& loop, unsigned slot, StatsBlock* stats) {
  {
    std::lock_guard lock(loop.m);
    ++loop.running;
  }
  {
    DepthGuard depth;
    WsDeque<std::size_t>* own =
        slot < loop.slots ? loop.deques[slot].get() : nullptr;
    // Steal batches that overflow the local deque land here; owner-only, so
    // a plain vector. Entries are not stealable — acceptable for a bounded
    // spill path.
    std::vector<std::size_t> spill;

    const auto run_chunk = [&](std::size_t c) {
      const std::size_t lo = c * loop.chunk;
      const std::size_t hi = std::min(lo + loop.chunk, loop.n);
      if (stats) stats->chunks_claimed.fetch_add(1, std::memory_order_relaxed);
      try {
        for (std::size_t i = lo; i < hi; ++i) loop.fn(loop.ctx, i);
      } catch (...) {
        std::lock_guard lock(loop.m);
        if (!loop.first_error) loop.first_error = std::current_exception();
        loop.stop.store(true, std::memory_order_relaxed);
      }
      loop.remaining.fetch_sub(hi - lo, std::memory_order_acq_rel);
    };

    const auto try_steal = [&]() -> std::optional<std::size_t> {
      const unsigned base = slot % loop.slots;
      for (unsigned off = 1; off < loop.slots + (own ? 0u : 1u); ++off) {
        const unsigned v = (base + off) % loop.slots;
        WsDeque<std::size_t>& victim = *loop.deques[v];
        const std::size_t est = victim.approx_size();
        if (est == 0) continue;
        const auto first = victim.steal();
        if (!first) {
          if (stats)
            stats->steal_failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (stats) stats->tasks_stolen.fetch_add(1, std::memory_order_relaxed);
        // Steal-half: take up to half of what the victim appeared to hold,
        // keeping one to run now and queueing the rest locally so the next
        // thief can re-split them.
        for (std::size_t extra = 1; extra < (est + 1) / 2; ++extra) {
          const auto more = victim.steal();
          if (!more) break;
          if (stats)
            stats->tasks_stolen.fetch_add(1, std::memory_order_relaxed);
          if (!own || !own->push(*more)) {
            spill.push_back(*more);
            break;
          }
        }
        return first;
      }
      return std::nullopt;
    };

    for (;;) {
      if (loop.stop.load(std::memory_order_relaxed)) break;
      std::optional<std::size_t> c;
      if (!spill.empty()) {
        c = spill.back();
        spill.pop_back();
      } else if (own) {
        c = own->pop();
      }
      if (!c) {
        if (loop.remaining.load(std::memory_order_acquire) == 0) break;
        c = try_steal();
        if (!c) {
          // Everything is claimed but the tail chunks are still executing
          // elsewhere (or a racing thief beat us): briefly yield and
          // re-check. Bounded by the runtime of the longest chunk.
          if (loop.remaining.load(std::memory_order_acquire) == 0) break;
          std::this_thread::yield();
          continue;
        }
      }
      run_chunk(*c);
    }
  }
  {
    std::lock_guard lock(loop.m);
    if (--loop.running == 0) loop.done.notify_all();
  }
}

/// Same chunking the spawn-per-call pool used: the cursor is touched ~8× per
/// participant, and contiguous ranges keep cache locality for loops walking
/// adjacent rows.
std::size_t chunk_for(std::size_t n, unsigned threads) noexcept {
  return std::max<std::size_t>(
      1, n / (static_cast<std::size_t>(threads) * 8));
}

/// The legacy dispatch: spawn and join fresh threads for this one loop.
/// Retained for dispatch-latency A/B benches and pool-vs-spawn determinism
/// cross-checks.
void spawn_parallel_for(std::size_t n, detail::RawLoopFn fn, void* ctx,
                        unsigned threads) {
  LoopState loop;
  loop.fn = fn;
  loop.ctx = ctx;
  loop.n = n;
  loop.chunk = chunk_for(n, threads);

  std::vector<std::thread> pool;
  const unsigned spawn =
      static_cast<unsigned>(std::min<std::size_t>(threads, n) - 1);
  pool.reserve(spawn);
  for (unsigned t = 0; t < spawn; ++t)
    pool.emplace_back([&loop] { participate(loop, nullptr); });
  participate(loop, nullptr);
  for (auto& th : pool) th.join();
  if (loop.first_error) std::rethrow_exception(loop.first_error);
}

/// A submitted task parked in a worker's stealing deque (the deque stores
/// trivially copyable values, so tasks go in by pointer).
struct TaskNode {
  std::function<void()> fn;
};

}  // namespace

unsigned hardware_workers() noexcept {
  static const unsigned cached = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1u : hc;
  }();
  return cached;
}

unsigned effective_threads(unsigned threads) noexcept {
  return threads == 0 ? hardware_workers() : threads;
}

// --- Executor ---------------------------------------------------------------

/// A unit of pool work: a helper job for a running loop (static or
/// stealing), or a submitted task from the shared overflow queue.
struct ExecutorJob {
  std::shared_ptr<LoopState> loop;
  std::shared_ptr<DynLoopState> dyn;
  std::function<void()> task;
};

/// Per-worker scheduler state. Lives in a std::deque so addresses stay
/// stable while the worker set grows.
struct WorkerSlot {
  WorkerSlot() : tasks(kTaskDequeCapacity) {}
  WsDeque<TaskNode*> tasks;
  StatsBlock stats;
};

namespace {
/// Identity of the current thread inside a pool (set for worker threads).
/// Holds the owning Impl as void* (the nested type is private to Executor);
/// only compared against / cast back by Impl members, never dereferenced
/// from here.
struct WorkerIdentity {
  void* impl = nullptr;
  unsigned index = 0;
};
thread_local WorkerIdentity t_worker;
}  // namespace

struct Executor::Impl {
  unsigned cap = 0;

  std::mutex m;
  std::condition_variable work;
  std::deque<ExecutorJob> queue;     // guarded by m
  std::vector<std::thread> workers;  // guarded by m (grow-only)
  bool stopping = false;             // guarded by m

  /// Per-worker task deques + counters; grown under m together with
  /// `workers`, entries themselves accessed lock-free. std::deque keeps the
  /// addresses stable across growth.
  std::deque<WorkerSlot> slots;      // structure guarded by m
  std::atomic<unsigned> slot_count{0};  ///< published size of `slots`

  /// Counter row for loop callers and other non-worker participants.
  StatsBlock caller_stats;

  /// Workers parked in the wait below. Advisory (read without m by the
  /// nested-loop arbitration): a stale value only costs a queued job that
  /// drains without work, never correctness.
  std::atomic<unsigned> idle{0};

  /// Bumped on every lock-free publication of work (a push to a worker's
  /// task deque). A worker snapshots it before its last work scan and will
  /// not park if it moved — the eventcount that makes deque pushes and
  /// parking race-free without putting the deques under the mutex.
  std::atomic<std::uint64_t> work_epoch{0};

  /// NUMA placement opt-in. `pin_generation` invalidates every worker's
  /// cached pin state; workers (re-)apply placement at their next scan.
  std::atomic<bool> pin_enabled{false};
  std::atomic<std::uint64_t> pin_generation{0};

  void apply_pinning(unsigned idx, std::uint64_t& seen) {
    const std::uint64_t gen = pin_generation.load(std::memory_order_acquire);
    if (gen == seen) return;
    seen = gen;
    if (pin_enabled.load(std::memory_order_relaxed)) {
      const auto topo = Topology::system();
      const unsigned node_idx = idx % topo->node_count();
      if (pin_current_thread_to_cpus(topo->nodes()[node_idx].cpus)) {
        t_numa_node = node_idx;
        return;
      }
    }
    unpin_current_thread();
    t_numa_node = 0;
  }

  void notify_if_idle() {
    if (idle.load(std::memory_order_relaxed) == 0) return;
    // Taking the mutex closes the race against a worker that passed the
    // predicate but has not committed to the wait yet.
    std::lock_guard lock(m);
    work.notify_all();
  }

  StatsBlock* stats_for_current() noexcept {
    if (t_worker.impl == this) return &slots[t_worker.index].stats;
    return &caller_stats;
  }

  void run_task_node(TaskNode* node) {
    DepthGuard depth;
    node->fn();  // packaged tasks / arena wrappers capture their errors
    delete node;
  }

  void run_job(ExecutorJob& job, unsigned idx) {
    StatsBlock* stats = &slots[idx].stats;
    if (job.loop) {
      participate(*job.loop, stats);
    } else if (job.dyn) {
      const unsigned slot =
          job.dyn->next_slot.fetch_add(1, std::memory_order_relaxed);
      dyn_participate(*job.dyn, slot, stats);
    } else if (job.task) {
      DepthGuard depth;
      job.task();  // packaged tasks / arena wrappers capture their errors
    }
  }

  /// One scheduling round: own task deque, then the shared queue, then a
  /// steal sweep over the other workers' deques. True when any work ran.
  bool run_one(unsigned idx) {
    if (auto own = slots[idx].tasks.pop()) {
      run_task_node(*own);
      return true;
    }
    {
      std::unique_lock lock(m);
      if (!queue.empty()) {
        ExecutorJob job = std::move(queue.front());
        queue.pop_front();
        lock.unlock();
        run_job(job, idx);
        return true;
      }
    }
    return steal_task_and_run(idx);
  }

  /// Steal-half sweep over the other workers' task deques: run the first
  /// stolen task, re-queue the rest of the batch locally.
  bool steal_task_and_run(unsigned idx) {
    StatsBlock& stats = slots[idx].stats;
    const unsigned count = slot_count.load(std::memory_order_acquire);
    for (unsigned off = 1; off < count; ++off) {
      const unsigned v = (idx + off) % count;
      WsDeque<TaskNode*>& victim = slots[v].tasks;
      const std::size_t est = victim.approx_size();
      if (est == 0) continue;
      const auto first = victim.steal();
      if (!first) {
        stats.steal_failures.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      stats.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t extra = 1; extra < (est + 1) / 2; ++extra) {
        const auto more = victim.steal();
        if (!more) break;
        stats.tasks_stolen.fetch_add(1, std::memory_order_relaxed);
        if (!slots[idx].tasks.push(*more)) {
          // No local room: run it after the first one, immediately.
          run_task_node(*first);
          run_task_node(*more);
          return true;
        }
      }
      work_epoch.fetch_add(1, std::memory_order_release);
      notify_if_idle();
      run_task_node(*first);
      return true;
    }
    return false;
  }

  void worker_main(unsigned idx) {
    t_worker = {this, idx};
    std::uint64_t pin_seen = ~std::uint64_t{0};  // force the initial check
    for (;;) {
      apply_pinning(idx, pin_seen);
      const std::uint64_t epoch = work_epoch.load(std::memory_order_acquire);
      if (run_one(idx)) continue;
      std::unique_lock lock(m);
      if (!queue.empty() ||
          work_epoch.load(std::memory_order_relaxed) != epoch)
        continue;  // new work appeared after the scan: rescan, don't park
      if (stopping) return;  // queue drained, own deque drained by run_one
      idle.fetch_add(1, std::memory_order_relaxed);
      slots[idx].stats.parks.fetch_add(1, std::memory_order_relaxed);
      work.wait(lock, [&] {
        return stopping || !queue.empty() ||
               work_epoch.load(std::memory_order_relaxed) != epoch;
      });
      idle.fetch_sub(1, std::memory_order_relaxed);
      slots[idx].stats.unparks.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Grow the worker set to at least `want` threads (within the cap).
  /// Returns the number of helpers actually available.
  unsigned ensure_helpers(unsigned want) {
    want = std::min(want, cap);
    if (want == 0) return 0;
    std::lock_guard lock(m);
    if (stopping) return 0;
    while (workers.size() < want) {
      const unsigned idx = static_cast<unsigned>(workers.size());
      slots.emplace_back();
      slot_count.store(static_cast<unsigned>(slots.size()),
                       std::memory_order_release);
      workers.emplace_back([this, idx] { worker_main(idx); });
    }
    return static_cast<unsigned>(workers.size());
  }
};

Executor::Executor(unsigned max_helpers) : impl_(std::make_unique<Impl>()) {
  impl_->cap = std::min(max_helpers == 0 ? kMaxHelpers : max_helpers,
                        kMaxHelpers);
}

Executor::~Executor() {
  {
    std::lock_guard lock(impl_->m);
    impl_->stopping = true;
  }
  impl_->work.notify_all();
  for (auto& th : impl_->workers) th.join();
}

Executor& Executor::global() {
  static Executor pool;
  return pool;
}

unsigned Executor::spawned_helpers() const noexcept {
  std::lock_guard lock(impl_->m);
  return static_cast<unsigned>(impl_->workers.size());
}

unsigned Executor::max_helpers() const noexcept { return impl_->cap; }

ExecutorStats operator-(const ExecutorStats& after,
                        const ExecutorStats& before) {
  ExecutorStats out;
  out.total = after.total - before.total;
  out.callers = after.callers - before.callers;
  out.per_worker.reserve(after.per_worker.size());
  for (std::size_t i = 0; i < after.per_worker.size(); ++i)
    out.per_worker.push_back(i < before.per_worker.size()
                                 ? after.per_worker[i] - before.per_worker[i]
                                 : after.per_worker[i]);
  return out;
}

ExecutorStats Executor::stats() const {
  ExecutorStats out;
  out.callers = impl_->caller_stats.snapshot();
  accumulate(out.total, out.callers);
  const unsigned count = impl_->slot_count.load(std::memory_order_acquire);
  out.per_worker.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    out.per_worker.push_back(impl_->slots[i].stats.snapshot());
    accumulate(out.total, out.per_worker.back());
  }
  return out;
}

void Executor::set_worker_pinning(bool enabled) noexcept {
  if (impl_->pin_enabled.exchange(enabled, std::memory_order_relaxed) ==
      enabled)
    return;
  impl_->pin_generation.fetch_add(1, std::memory_order_release);
}

bool Executor::worker_pinning() const noexcept {
  return impl_->pin_enabled.load(std::memory_order_relaxed);
}

unsigned Executor::current_numa_node() noexcept { return t_numa_node; }

bool Executor::inside_parallel_region() noexcept {
  return t_nesting_depth > 0;
}

unsigned Executor::nesting_depth() noexcept { return t_nesting_depth; }

void Executor::run_loop(std::size_t n, detail::RawLoopFn fn, void* ctx,
                        unsigned threads) {
  if (n == 0) return;
  threads = std::min(effective_threads(threads), impl_->cap + 1);
  // Nesting arbitration — a loop issued from inside a parallel region gets
  // a *bounded share*: only workers idle right now may help, and the pool
  // never grows for it. Busy pool (the common sweep × kernel case) means
  // zero idle workers and the loop runs inline on the calling thread with
  // no dispatch cost; an under-filled pool (a 4-cell grid on a 16-worker
  // pool) lends its parked workers to the inner loop. Either way peak
  // concurrency stays bounded by the pool size + callers, so nested
  // regions can never oversubscribe, and the caller still executes chunks
  // itself, so nesting stays deadlock-free.
  const bool nested = inside_parallel_region();
  const unsigned lendable =
      nested ? impl_->idle.load(std::memory_order_relaxed) : 0;
  // Serial fast path: exceptions propagate directly (which trivially
  // satisfies the first-error/short-circuit contract).
  if (threads <= 1 || n == 1 || (nested && lendable == 0)) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  auto loop = std::make_shared<LoopState>();
  loop->fn = fn;
  loop->ctx = ctx;
  loop->n = n;
  loop->chunk = chunk_for(n, threads);
  const std::size_t chunks = (n + loop->chunk - 1) / loop->chunk;
  unsigned helpers =
      static_cast<unsigned>(std::min<std::size_t>(threads, chunks)) - 1;
  // Top-level loops grow the pool to the full requested budget (threads-1),
  // not just to the helper jobs this loop can use: a 3-cell grid on a
  // 16-thread request parks 13 workers that its cells' nested loops may
  // then borrow. Nested loops never grow the pool (bounded share).
  helpers = nested ? std::min(helpers, lendable)
                   : std::min(helpers, impl_->ensure_helpers(threads - 1));

  if (helpers > 0) {
    {
      std::lock_guard lock(impl_->m);
      for (unsigned h = 0; h < helpers; ++h)
        impl_->queue.push_back(ExecutorJob{loop, nullptr, {}});
    }
    impl_->work.notify_all();
  }

  participate(*loop, impl_->stats_for_current());
  // The caller's claim loop only returns once the cursor is exhausted or the
  // loop stopped, so waiting for running == 0 is the full completion
  // condition; helper jobs still queued will find nothing to claim.
  std::unique_lock lock(loop->m);
  loop->done.wait(lock, [&] { return loop->running == 0; });
  if (loop->first_error) {
    std::exception_ptr err = loop->first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Executor::run_loop_dynamic(std::size_t n, detail::RawLoopFn fn, void* ctx,
                                unsigned threads, std::size_t grain) {
  if (n == 0) return;
  threads = std::min(effective_threads(threads), impl_->cap + 1);
  const bool nested = inside_parallel_region();
  const unsigned lendable =
      nested ? impl_->idle.load(std::memory_order_relaxed) : 0;
  if (threads <= 1 || n == 1 || (nested && lendable == 0)) {
    // Serial fast path — same arbitration as the static schedule, and
    // exceptions propagate directly.
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  const unsigned avail =
      nested ? lendable : impl_->ensure_helpers(threads - 1);
  unsigned participants = static_cast<unsigned>(std::min<std::size_t>(
      std::min<std::size_t>(threads, std::size_t{avail} + 1), n));
  const std::size_t chunk =
      grain != 0
          ? grain
          : std::max<std::size_t>(
                1, n / (static_cast<std::size_t>(participants) *
                        kStealChunksPerParticipant));
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  participants =
      static_cast<unsigned>(std::min<std::size_t>(participants, nchunks));
  if (participants <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
    return;
  }

  auto loop = std::make_shared<DynLoopState>();
  loop->fn = fn;
  loop->ctx = ctx;
  loop->n = n;
  loop->chunk = chunk;
  loop->nchunks = nchunks;
  loop->slots = participants;
  loop->remaining.store(n, std::memory_order_relaxed);
  loop->deques.reserve(participants);
  // Every chunk id lives in at most one deque at a time (unique ownership
  // moves with steals), so capacity = nchunks makes push infallible in
  // practice; the spill vector in dyn_participate covers the bound anyway.
  const std::size_t per_slot = (nchunks + participants - 1) / participants;
  const std::size_t deque_cap =
      std::min(nchunks, std::max<std::size_t>(per_slot * 4, 64));
  for (unsigned s = 0; s < participants; ++s)
    loop->deques.push_back(
        std::make_unique<WsDeque<std::size_t>>(deque_cap));
  // Seed slot s with the contiguous chunk block [s·per, (s+1)·per), pushed
  // in reverse so the owner pops ascending indices (cache-friendly walk);
  // thieves take from the other end — the chunks the owner reaches last.
  for (unsigned s = 0; s < participants; ++s) {
    const std::size_t lo = static_cast<std::size_t>(s) * per_slot;
    const std::size_t hi = std::min(lo + per_slot, nchunks);
    for (std::size_t c = hi; c-- > lo;) (void)loop->deques[s]->push(c);
  }

  const unsigned helpers = participants - 1;
  if (helpers > 0) {
    {
      std::lock_guard lock(impl_->m);
      for (unsigned h = 0; h < helpers; ++h)
        impl_->queue.push_back(ExecutorJob{nullptr, loop, {}});
    }
    impl_->work.notify_all();
  }

  dyn_participate(*loop, 0, impl_->stats_for_current());
  std::unique_lock lock(loop->m);
  loop->done.wait(lock, [&] { return loop->running == 0; });
  if (loop->first_error) {
    std::exception_ptr err = loop->first_error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void Executor::enqueue_task(std::function<void()> task) {
  Impl* const impl = impl_.get();
  // A task submitted from a pool worker goes to that worker's own stealing
  // deque: LIFO for the producer, steal-half for idle peers — task DAGs
  // that fan out inside the pool never serialize on the shared mutex.
  if (t_worker.impl == impl) {
    auto node = std::make_unique<TaskNode>(TaskNode{std::move(task)});
    if (impl->slots[t_worker.index].tasks.push(node.get())) {
      (void)node.release();
      impl->work_epoch.fetch_add(1, std::memory_order_release);
      impl->notify_if_idle();
      return;
    }
    task = std::move(node->fn);  // deque full: overflow to the shared queue
  }
  if (impl->ensure_helpers(1) == 0) {
    // No workers permitted (or shutting down): run inline, same depth rules.
    DepthGuard depth;
    task();
    return;
  }
  {
    std::lock_guard lock(impl->m);
    impl->queue.push_back(ExecutorJob{nullptr, nullptr, std::move(task)});
  }
  impl->work.notify_one();
}

// --- ScopedArena ------------------------------------------------------------

struct Executor::ScopedArena::State {
  mutable std::mutex m;
  std::condition_variable idle;
  std::size_t pending = 0;           // guarded by m
  std::exception_ptr first_error;    // guarded by m
};

Executor::ScopedArena::ScopedArena(Executor& ex)
    : ex_(ex), state_(std::make_shared<State>()) {}

Executor::ScopedArena::~ScopedArena() {
  if (t_worker.impl == ex_.impl_.get()) {
    // A worker draining its own arena must help execute (its tasks may sit
    // in its own deque, where only it or a thief will find them).
    while (true) {
      {
        std::lock_guard lock(state_->m);
        if (state_->pending == 0) break;
      }
      if (!ex_.impl_->run_one(t_worker.index)) std::this_thread::yield();
    }
    return;
  }
  std::unique_lock lock(state_->m);
  state_->idle.wait(lock, [&] { return state_->pending == 0; });
  // Errors not collected through wait() are intentionally swallowed: a
  // destructor must not throw.
}

void Executor::ScopedArena::submit(std::function<void()> task) {
  {
    std::lock_guard lock(state_->m);
    ++state_->pending;
  }
  ex_.enqueue_task([state = state_, task = std::move(task)] {
    try {
      task();
    } catch (...) {
      std::lock_guard lock(state->m);
      if (!state->first_error) state->first_error = std::current_exception();
    }
    std::lock_guard lock(state->m);
    if (--state->pending == 0) state->idle.notify_all();
  });
}

void Executor::ScopedArena::wait() {
  if (t_worker.impl == ex_.impl_.get()) {
    // Help-first wait on a worker thread: run scheduler rounds (own deque,
    // shared queue, steals) until the arena drains — a worker that blocked
    // here instead could deadlock on tasks parked in its own deque.
    while (true) {
      {
        std::lock_guard lock(state_->m);
        if (state_->pending == 0) break;
      }
      if (!ex_.impl_->run_one(t_worker.index)) std::this_thread::yield();
    }
  } else {
    std::unique_lock lock(state_->m);
    state_->idle.wait(lock, [&] { return state_->pending == 0; });
  }
  std::unique_lock lock(state_->m);
  if (state_->first_error) {
    std::exception_ptr err = std::exchange(state_->first_error, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

std::size_t Executor::ScopedArena::pending() const noexcept {
  std::lock_guard lock(state_->m);
  return state_->pending;
}

// --- parallel_for dispatcher ------------------------------------------------

namespace detail {

void parallel_for_impl(std::size_t n, RawLoopFn fn, void* ctx,
                       unsigned threads, Dispatch dispatch) {
  if (n == 0) return;
  threads = effective_threads(threads);
  if (dispatch == Dispatch::Spawn) {
    if (threads <= 1 || n == 1 || Executor::inside_parallel_region()) {
      for (std::size_t i = 0; i < n; ++i) fn(ctx, i);
      return;
    }
    spawn_parallel_for(n, fn, ctx, threads);
    return;
  }
  Executor::global().run_loop(n, fn, ctx, threads);
}

void parallel_for_dynamic_impl(std::size_t n, RawLoopFn fn, void* ctx,
                               unsigned threads, std::size_t grain) {
  Executor::global().run_loop_dynamic(n, fn, ctx, effective_threads(threads),
                                      grain);
}

}  // namespace detail

}  // namespace abftc::common

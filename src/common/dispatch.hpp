#pragma once
/// \file dispatch.hpp
/// How a parallel loop reaches its workers — split out of executor.hpp so
/// policy structs (abft::KernelPolicy) can name the enum without pulling the
/// full executor (and its <future>/<functional> baggage) into hot headers.

namespace abftc::common {

/// `Pool` (the default) runs on the persistent executor; `Spawn` creates and
/// joins fresh threads per call — kept for dispatch-latency A/B benches and
/// as a determinism cross-check (results are bitwise identical either way).
enum class Dispatch { Pool, Spawn };

}  // namespace abftc::common

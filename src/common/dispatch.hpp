#pragma once
/// \file dispatch.hpp
/// How a parallel loop reaches its workers — split out of executor.hpp so
/// policy structs (abft::KernelPolicy) can name the enum without pulling the
/// full executor (and its <future>/<functional> baggage) into hot headers.

namespace abftc::common {

/// `Pool` (the default) runs on the persistent executor; `Spawn` creates and
/// joins fresh threads per call — kept for dispatch-latency A/B benches and
/// as a determinism cross-check (results are bitwise identical either way).
enum class Dispatch { Pool, Spawn };

/// How a loop's index space reaches its participants.
///
///   * `Static`  — the shared atomic-cursor fast path: contiguous chunks
///                 claimed in index order off one cursor. Lowest dispatch
///                 cost; ideal when per-index cost is uniform (checksums,
///                 packed-GEMM row panels, sweep grids). This is what
///                 `parallel_for` does.
///   * `Stealing` — per-participant Chase–Lev deques with steal-half load
///                 balancing: each participant owns a contiguous share and
///                 thieves re-split the laggard's remainder. Tolerates
///                 wildly non-uniform per-index cost (fault-injection
///                 campaigns, compaction, panel DAGs) at a slightly higher
///                 setup cost. This is what `parallel_for_dynamic` does.
///
/// Decision rule: uniform loop shape -> Static; unknown or heavy-tailed
/// per-index cost -> Stealing. Both execute every index exactly once, so
/// any loop whose output cells are owned by a single index is bitwise
/// deterministic under either schedule; only Static additionally fixes the
/// claim *order*, which no current caller depends on.
enum class Schedule { Static, Stealing };

}  // namespace abftc::common

#include "common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace abftc::common {

unsigned effective_threads(unsigned threads) noexcept {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  return threads;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (n == 0) return;
  threads = effective_threads(threads);
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> pool;
  const unsigned spawn = static_cast<unsigned>(
      std::min<std::size_t>(threads, n) - 1);
  pool.reserve(spawn);
  for (unsigned t = 0; t < spawn; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace abftc::common

#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace abftc::common {

unsigned effective_threads(unsigned threads) noexcept {
  if (threads == 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads = hc == 0 ? 1 : hc;
  }
  return threads;
}

namespace detail {

void parallel_for_impl(std::size_t n, RawLoopFn fn, void* ctx,
                       unsigned threads) {
  if (n == 0) return;
  threads = effective_threads(threads);
  if (threads <= 1 || n == 1) {
    // Same contract as the parallel path: every index is attempted, the
    // first exception is rethrown once the loop drains.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(ctx, i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // Workers grab contiguous ranges so the atomic cursor is touched ~8× per
  // worker, not once per index; ranges keep cache locality for loops that
  // walk adjacent rows.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(threads) * 8));
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) return;
      const std::size_t hi = std::min(lo + chunk, n);
      // Per index (not per chunk) so every index in [0, n) is still
      // attempted when one throws — same contract as the serial path.
      for (std::size_t i = lo; i < hi; ++i) {
        try {
          fn(ctx, i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> pool;
  const unsigned spawn =
      static_cast<unsigned>(std::min<std::size_t>(threads, n) - 1);
  pool.reserve(spawn);
  for (unsigned t = 0; t < spawn; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail

}  // namespace abftc::common

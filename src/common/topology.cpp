#include "common/topology.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <unistd.h>
#endif

namespace abftc::common {

namespace {

/// `nodeN` directory name -> N; false for anything else.
bool node_index_of(const std::string& name, unsigned& out) {
  if (name.rfind("node", 0) != 0 || name.size() == 4) return false;
  unsigned v = 0;
  for (std::size_t i = 4; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<unsigned>(c - '0');
  }
  out = v;
  return true;
}

std::mutex g_override_mutex;
std::shared_ptr<const Topology> g_override;  // guarded by g_override_mutex

}  // namespace

std::vector<unsigned> parse_cpulist(const std::string& s) {
  std::vector<unsigned> cpus;
  std::size_t i = 0;
  const auto read_number = [&](unsigned& out) {
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return false;
    unsigned v = 0;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9')
      v = v * 10 + static_cast<unsigned>(s[i++] - '0');
    out = v;
    return true;
  };
  while (i < s.size()) {
    unsigned lo = 0;
    if (!read_number(lo)) {
      ++i;  // skip separators, whitespace, and malformed fragments
      continue;
    }
    unsigned hi = lo;
    if (i < s.size() && s[i] == '-') {
      ++i;
      if (!read_number(hi)) hi = lo;
    }
    for (unsigned c = lo; c <= hi && hi - lo < 4096; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology Topology::from_nodes(std::vector<NumaNode> nodes) {
  std::sort(nodes.begin(), nodes.end(),
            [](const NumaNode& a, const NumaNode& b) { return a.id < b.id; });
  Topology t;
  t.nodes_ = std::move(nodes);
  if (t.nodes_.empty()) return fallback_single_node();
  return t;
}

Topology Topology::fallback_single_node() {
  const unsigned hc = std::max(1u, std::thread::hardware_concurrency());
  NumaNode n;
  n.id = 0;
  n.cpus.reserve(hc);
  for (unsigned c = 0; c < hc; ++c) n.cpus.push_back(c);
  Topology t;
  t.nodes_.push_back(std::move(n));
  return t;
}

Topology Topology::parse_sysfs(const std::string& node_dir) {
  namespace fs = std::filesystem;
  std::vector<NumaNode> nodes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(node_dir, ec)) {
    if (ec) break;
    unsigned id = 0;
    if (!node_index_of(entry.path().filename().string(), id)) continue;
    std::ifstream cpulist(entry.path() / "cpulist");
    if (!cpulist) continue;
    std::string line;
    std::getline(cpulist, line);
    NumaNode node;
    node.id = id;
    node.cpus = parse_cpulist(line);
    if (!node.cpus.empty()) nodes.push_back(std::move(node));
  }
  if (nodes.empty()) return fallback_single_node();
  return from_nodes(std::move(nodes));
}

std::shared_ptr<const Topology> Topology::system() {
  {
    std::lock_guard lock(g_override_mutex);
    if (g_override) return g_override;
  }
  static const std::shared_ptr<const Topology> detected =
      std::make_shared<const Topology>(
          parse_sysfs("/sys/devices/system/node"));
  return detected;
}

void Topology::set_system_for_testing(std::shared_ptr<const Topology> t) {
  std::lock_guard lock(g_override_mutex);
  g_override = std::move(t);
}

bool pin_current_thread_to_cpus(const std::vector<unsigned>& cpus) noexcept {
#if defined(__linux__)
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (const unsigned c : cpus) {
    if (c >= CPU_SETSIZE) continue;
    CPU_SET(static_cast<int>(c), &set);
    any = true;
  }
  if (!any) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpus;
  return false;
#endif
}

bool unpin_current_thread() noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  const long n = sysconf(_SC_NPROCESSORS_CONF);
  const int limit = std::min<long>(n > 0 ? n : 1, CPU_SETSIZE);
  for (int c = 0; c < limit; ++c) CPU_SET(c, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace abftc::common

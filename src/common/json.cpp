#include "common/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace abftc::common {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  ABFTC_CHECK(res.ec == std::errc(), "double to_chars cannot fail on 64 bytes");
  return std::string(buf, res.ptr);
}

JsonWriter::JsonWriter(std::ostream& os) : os_(os) {}

void JsonWriter::raw(std::string_view text) { os_ << text; }

void JsonWriter::indent() {
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::pre_value() {
  if (after_key_) {
    after_key_ = false;
    return;  // value sits on the key's line
  }
  ABFTC_REQUIRE(stack_.empty() ? !wrote_root_
                               : stack_.back() == Scope::Array,
                "JSON object members need key() before each value");
  if (!stack_.empty()) {
    if (!first_in_scope_) raw(",");
    indent();
  }
  first_in_scope_ = false;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  ABFTC_REQUIRE(!stack_.empty() && stack_.back() == Scope::Object,
                "key() is only valid inside an object");
  ABFTC_REQUIRE(!after_key_, "key() cannot follow another key()");
  if (!first_in_scope_) raw(",");
  indent();
  os_ << '"' << json_escape(k) << "\": ";
  first_in_scope_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  raw("{");
  stack_.push_back(Scope::Object);
  first_in_scope_ = true;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  raw("[");
  stack_.push_back(Scope::Array);
  first_in_scope_ = true;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ABFTC_REQUIRE(!stack_.empty() && stack_.back() == Scope::Object,
                "end_object() without matching begin_object()");
  ABFTC_REQUIRE(!after_key_, "dangling key() before end_object()");
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) indent();
  raw("}");
  first_in_scope_ = false;
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ABFTC_REQUIRE(!stack_.empty() && stack_.back() == Scope::Array,
                "end_array() without matching begin_array()");
  const bool empty = first_in_scope_;
  stack_.pop_back();
  if (!empty) indent();
  raw("]");
  first_in_scope_ = false;
  if (stack_.empty()) os_ << '\n';
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  pre_value();
  os_ << '"' << json_escape(v) << '"';
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  os_ << number(v);
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  raw(v ? "true" : "false");
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::write_int(std::int64_t v) {
  pre_value();
  os_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::write_uint(std::uint64_t v) {
  pre_value();
  os_ << v;
  wrote_root_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  pre_value();
  raw("null");
  wrote_root_ = true;
  return *this;
}

}  // namespace abftc::common

#include "common/time_units.hpp"

#include <cmath>
#include <cstdio>

namespace abftc::common {

std::string format_duration(double seconds_value) {
  const double v = seconds_value;
  const double a = std::fabs(v);
  char buf[64];
  if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3gus", v * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3gms", v * 1e3);
  } else if (a < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.4gs", v);
  } else if (a < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.4gmin", v / 60.0);
  } else if (a < 2.0 * 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.4gh", v / 3600.0);
  } else if (a < 2.0 * 7 * 86400.0) {
    std::snprintf(buf, sizeof(buf), "%.4gd", v / 86400.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4gw", v / (7 * 86400.0));
  }
  return buf;
}

}  // namespace abftc::common

#include "common/cli.hpp"

#include <cstdlib>
#include <ostream>

#include "common/error.hpp"

namespace abftc::common {

std::vector<KeyValue> parse_key_values(std::string_view text, char pair_sep,
                                       char kv_sep) {
  std::vector<KeyValue> items;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(pair_sep, start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view item = text.substr(start, end - start);
    ABFTC_REQUIRE(!item.empty(), "empty item in key-value spec '" +
                                     std::string(text) + "'");
    const std::size_t sep = item.find(kv_sep);
    KeyValue kv;
    if (sep == std::string_view::npos) {
      kv.key = std::string(item);
    } else {
      kv.key = std::string(item.substr(0, sep));
      kv.value = std::string(item.substr(sep + 1));
    }
    ABFTC_REQUIRE(!kv.key.empty(), "empty key in key-value spec '" +
                                       std::string(text) + "'");
    items.push_back(std::move(kv));
    if (end == text.size()) break;
    start = end + 1;
  }
  return items;
}

std::optional<std::string> find_key_value(const std::vector<KeyValue>& items,
                                          std::string_view key) {
  for (const KeyValue& kv : items)
    if (kv.key == key) return kv.value;
  return std::nullopt;
}

ArgParser::ArgParser(int argc, const char* const* argv) {
  ABFTC_REQUIRE(argc >= 1, "argc must include the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // bare switch
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  accessed_.insert(name);
  return options_.count(name) > 0;
}

std::optional<std::string> ArgParser::raw(const std::string& name) const {
  accessed_.insert(name);
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string ArgParser::get_string(const std::string& name,
                                  std::string def) const {
  if (auto v = raw(name)) return *v;
  return def;
}

double ArgParser::get_double(const std::string& name, double def) const {
  if (auto v = raw(name)) {
    char* end = nullptr;
    const double d = std::strtod(v->c_str(), &end);
    ABFTC_REQUIRE(end && *end == '\0' && !v->empty(),
                  "--" + name + " expects a number, got '" + *v + "'");
    return d;
  }
  return def;
}

long long ArgParser::get_int(const std::string& name, long long def) const {
  if (auto v = raw(name)) {
    char* end = nullptr;
    const long long i = std::strtoll(v->c_str(), &end, 10);
    ABFTC_REQUIRE(end && *end == '\0' && !v->empty(),
                  "--" + name + " expects an integer, got '" + *v + "'");
    return i;
  }
  return def;
}

std::vector<std::string> ArgParser::get_list(
    const std::string& name, std::vector<std::string> def) const {
  const auto v = raw(name);
  if (!v) return def;
  ABFTC_REQUIRE(!v->empty(), "--" + name + " expects a comma-separated list");
  std::vector<std::string> items;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = v->find(',', start);
    const std::string item = v->substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    ABFTC_REQUIRE(!item.empty(),
                  "--" + name + " has an empty list item in '" + *v + "'");
    items.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

std::vector<double> ArgParser::get_double_list(const std::string& name,
                                               std::vector<double> def) const {
  if (!raw(name)) return def;
  std::vector<double> out;
  for (const std::string& item : get_list(name)) {
    char* end = nullptr;
    const double d = std::strtod(item.c_str(), &end);
    ABFTC_REQUIRE(end && *end == '\0',
                  "--" + name + " expects numbers, got '" + item + "'");
    out.push_back(d);
  }
  return out;
}

std::vector<KeyValue> ArgParser::get_key_values(const std::string& name,
                                                std::vector<KeyValue> def,
                                                char kv_sep) const {
  const auto v = raw(name);
  if (!v) return def;
  ABFTC_REQUIRE(!v->empty(),
                "--" + name + " expects a key-value spec (k" +
                    std::string(1, kv_sep) + "v,...)");
  return parse_key_values(*v, ',', kv_sep);
}

std::vector<std::string> ArgParser::unknown() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_)
    if (accessed_.count(name) == 0) out.push_back(name);
  return out;
}

std::size_t ArgParser::warn_unknown(std::ostream& os) const {
  const auto names = unknown();
  for (const auto& name : names)
    os << "warning: unknown flag --" << name << " (ignored)\n";
  return names.size();
}

bool ArgParser::get_bool(const std::string& name, bool def) const {
  if (auto v = raw(name)) {
    if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on")
      return true;
    if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
    ABFTC_REQUIRE(false, "--" + name + " expects a boolean, got '" + *v + "'");
  }
  return def;
}

}  // namespace abftc::common

#pragma once
/// \file stats.hpp
/// Streaming statistics for Monte-Carlo aggregation.

#include <cstddef>
#include <vector>

namespace abftc::common {

/// Welford online mean/variance with min/max; mergeable across threads.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double stderr_mean() const noexcept;  ///< stddev / sqrt(n)
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantiles over a stored sample (used by tests on distributions).
class Sample {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }
  [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] const std::vector<double>& values() const noexcept { return xs_; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t i) const;
  [[nodiscard]] double bin_high(std::size_t i) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace abftc::common

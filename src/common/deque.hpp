#pragma once
/// \file deque.hpp
/// A bounded lock-free work-stealing deque (Chase–Lev) — the per-worker
/// queue behind the executor's dynamic scheduler. The owning thread pushes
/// and pops at the *bottom* (LIFO, cache-warm work stays with its producer);
/// any other thread steals from the *top* (FIFO, thieves take the oldest —
/// for loop chunks that is the work farthest from what the owner touches
/// next). The memory-order discipline follows Lê, Pop, Cohen & Zappa
/// Nardelli, "Correct and Efficient Work-Stealing for Weakly Ordered Memory
/// Models" (PPoPP'13), with one deliberate strengthening: the cross-thread
/// orderings that the paper carries on standalone fences are carried here on
/// the `bottom`/`top` operations themselves (seq_cst), because standalone
/// `atomic_thread_fence` is invisible to ThreadSanitizer and this deque is
/// CI-gated under TSan. On x86 the cost is one locked instruction in `pop`,
/// which the scheduler amortizes over a whole chunk of loop body.
///
/// The array is *bounded* by design (no Chase–Lev growth protocol): the
/// executor sizes each deque for the worst case it can enqueue (a loop's
/// chunk count, a task-group burst) and falls back to the shared queue or to
/// inline execution when `push` reports full — simpler to reason about, and
/// the overflow path is the pre-existing, mutex-protected one.
///
/// Ownership contract: exactly one thread may call push()/pop() over the
/// deque's lifetime *at a time* (ownership may migrate between threads only
/// through an external happens-before edge, e.g. the executor's job queue);
/// steal() is safe from any thread concurrently with everything else.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

namespace abftc::common {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque elements are copied through std::atomic slots");

 public:
  /// `capacity` is rounded up to a power of two (index masking). The deque
  /// holds at most that many elements; push() reports overflow, it never
  /// blocks or reallocates.
  explicit WsDeque(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::vector<std::atomic<T>>(cap);
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Elements currently in the deque, as a racy estimate — exact only when
  /// no concurrent operation is in flight. Thieves use it to size a
  /// steal-half batch; staleness only mis-sizes the batch.
  [[nodiscard]] std::size_t approx_size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  /// Owner only. False when the array is full (caller overflows elsewhere).
  bool push(T v) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t > static_cast<std::int64_t>(mask_)) return false;
    slots_[static_cast<std::size_t>(b) & mask_].store(
        v, std::memory_order_relaxed);
    // Publish the slot before the new bottom: a thief that observes b+1
    // must observe the element (release pairs with the thief's acquire).
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. Empty optional when the deque is drained.
  std::optional<T> pop() noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // seq_cst store: the reservation of slot b must be globally ordered
    // before the top_ read below, so a concurrent thief and the owner
    // cannot both claim the last element (this is the fence in the paper).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already empty: undo the reservation.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T v = slots_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race a pending thief for it via top.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // Thief won; the deque is empty.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return v;
  }

  /// Any thread. Empty optional when the deque looks empty *or* the CAS
  /// lost a race (callers treat both as "try the next victim"; use
  /// approx_size() beforehand to count a lost race as a steal failure).
  std::optional<T> steal() noexcept {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return std::nullopt;
    T v = slots_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
      return std::nullopt;
    return v;
  }

 private:
  // top_ only grows (thief side); bottom_ moves both ways (owner side).
  // int64 indices never wrap in practice, so there is no ABA on the CAS.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::vector<std::atomic<T>> slots_;
  std::size_t mask_ = 0;
};

}  // namespace abftc::common

#pragma once
/// \file time_units.hpp
/// Time in this library is a plain `double` measured in **seconds**.
/// These helpers make parameter definitions read like the paper
/// ("C = R = 10 minutes", "T0 = 1 week").

#include <string>

namespace abftc::common {

[[nodiscard]] constexpr double seconds(double s) noexcept { return s; }
[[nodiscard]] constexpr double minutes(double m) noexcept { return m * 60.0; }
[[nodiscard]] constexpr double hours(double h) noexcept { return h * 3600.0; }
[[nodiscard]] constexpr double days(double d) noexcept { return d * 86400.0; }
[[nodiscard]] constexpr double weeks(double w) noexcept { return w * 7.0 * 86400.0; }

/// Render a duration with an adaptive unit ("90s" -> "1.5min", "1.0w", ...).
/// Meant for tables and log lines, not for parsing.
[[nodiscard]] std::string format_duration(double seconds_value);

}  // namespace abftc::common

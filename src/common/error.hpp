#pragma once
/// \file error.hpp
/// Precondition / invariant checking. Following the C++ Core Guidelines
/// (I.6, E.12) we validate public-API preconditions with exceptions that
/// carry a precise message, and keep a cheap assert for internal invariants.

#include <sstream>
#include <stdexcept>
#include <string>

namespace abftc::common {

/// Thrown when a caller violates a documented precondition.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an internal invariant is broken (a library bug or a
/// numerically impossible regime, e.g. a diverging fixed point).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw precondition_error(os.str());
}
[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace abftc::common

/// Validate a public-API precondition; throws abftc::common::precondition_error.
#define ABFTC_REQUIRE(expr, msg)                                             \
  do {                                                                       \
    if (!(expr))                                                             \
      ::abftc::common::detail::throw_precondition(#expr, __FILE__, __LINE__, \
                                                  (msg));                    \
  } while (false)

/// Validate an internal invariant; throws abftc::common::invariant_error.
#define ABFTC_CHECK(expr, msg)                                            \
  do {                                                                    \
    if (!(expr))                                                          \
      ::abftc::common::detail::throw_invariant(#expr, __FILE__, __LINE__, \
                                               (msg));                    \
  } while (false)

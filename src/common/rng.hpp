#pragma once
/// \file rng.hpp
/// Deterministic, splittable pseudo-random generation.
///
/// Simulation results must be reproducible across platforms and across
/// thread counts, so we do not use std::mt19937 / std::*_distribution
/// (whose algorithms are implementation-defined for some distributions).
/// Instead we ship xoshiro256** seeded through splitmix64, plus exact
/// inverse-CDF samplers for the distributions the simulator needs.
///
/// `Rng::split(stream)` derives an independent child generator for a given
/// stream index: Monte-Carlo replicate k always consumes the same random
/// sequence no matter how replicates are scheduled over threads.

#include <cstdint>
#include <limits>

namespace abftc::common {

/// splitmix64: used for seeding and stream derivation.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), a fast high-quality 64-bit PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  /// Derive an independent generator for stream index `stream`.
  /// Children of distinct (seed, stream) pairs are statistically independent.
  [[nodiscard]] Rng split(std::uint64_t stream) const noexcept {
    std::uint64_t mix = s_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    return Rng(mix ^ (s_[1] + stream));
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 significant bits.
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as input to log().
  [[nodiscard]] double uniform01_open_low() noexcept {
    return 1.0 - uniform01();
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t below(std::uint64_t n) noexcept;

  /// Exponential with the given mean (inverse-CDF; exact and portable).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Weibull with shape k and scale lambda.
  [[nodiscard]] double weibull(double shape, double scale) noexcept;

  /// Log-normal: exp(N(mu_log, sigma_log^2)).
  [[nodiscard]] double lognormal(double mu_log, double sigma_log) noexcept;

  /// Standard normal via Box–Muller (stateless variant; one value per call).
  [[nodiscard]] double normal() noexcept;
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace abftc::common

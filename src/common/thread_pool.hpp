#pragma once
/// \file thread_pool.hpp
/// A small work-sharing pool for embarrassingly parallel loops
/// (Monte-Carlo replicates, block-parallel BLAS). Results stay
/// deterministic because work items own their random streams.

#include <cstddef>
#include <functional>

namespace abftc::common {

/// Run `fn(i)` for i in [0, n) across up to `threads` workers.
/// `threads == 0` means std::thread::hardware_concurrency().
/// Exceptions thrown by `fn` are captured and the first one rethrown
/// on the calling thread after the loop drains.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

/// The number of workers parallel_for would actually use for `threads`.
[[nodiscard]] unsigned effective_threads(unsigned threads) noexcept;

}  // namespace abftc::common

#pragma once
/// \file thread_pool.hpp
/// A small work-sharing pool for embarrassingly parallel loops
/// (Monte-Carlo replicates, block-parallel BLAS). Results stay
/// deterministic because work items own their random streams.
///
/// `parallel_for` is a template dispatching through a raw function pointer +
/// context pointer rather than std::function: no type-erasure allocation,
/// and exactly one indirect call per index, so the per-chunk overhead stays
/// negligible even for small Monte-Carlo chunks.

#include <cstddef>
#include <memory>
#include <type_traits>

namespace abftc::common {

namespace detail {

using RawLoopFn = void (*)(void* ctx, std::size_t i);

/// Out-of-line scheduler: workers self-schedule contiguous index ranges off
/// a shared atomic cursor. Exceptions thrown by `fn` are captured and the
/// first one rethrown on the calling thread after the loop drains.
void parallel_for_impl(std::size_t n, RawLoopFn fn, void* ctx,
                       unsigned threads);

}  // namespace detail

/// Run `fn(i)` for i in [0, n) across up to `threads` workers.
/// `threads == 0` means std::thread::hardware_concurrency().
/// Exceptions thrown by `fn` are captured and the first one rethrown
/// on the calling thread after the loop drains.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, unsigned threads = 0) {
  using F = std::remove_reference_t<Fn>;
  if constexpr (std::is_function_v<F>) {
    // Plain functions can't round-trip through void*; wrap in a lambda.
    auto wrapper = [fp = &fn](std::size_t i) { fp(i); };
    parallel_for(n, wrapper, threads);
  } else {
    detail::parallel_for_impl(
        n,
        [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); },
        const_cast<void*>(
            static_cast<const void*>(std::addressof(fn))),
        threads);
  }
}

/// The number of workers parallel_for would actually use for `threads`.
[[nodiscard]] unsigned effective_threads(unsigned threads) noexcept;

}  // namespace abftc::common

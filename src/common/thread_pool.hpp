#pragma once
/// \file thread_pool.hpp
/// Compatibility shim: the spawn-per-call pool grew into the persistent
/// process-lifetime executor in executor.hpp, which keeps the same
/// `common::parallel_for` entry point (plus an opt-in Dispatch::Spawn mode
/// that reproduces the old behaviour for benches). Include executor.hpp in
/// new code; this header stays so existing includes keep compiling.

#include "common/executor.hpp"

#pragma once
/// \file topology.hpp
/// Minimal NUMA topology discovery and thread placement — parsed straight
/// from `/sys/devices/system/node` (no hwloc dependency). The executor uses
/// it to pin workers round-robin across nodes, and the blocked-GEMM packing
/// layer uses it to decide how many node-local copies of the packed B panel
/// to keep. Every consumer must behave identically on a single-node machine
/// (the graceful fallback when the sysfs tree is missing, unreadable, or
/// reports one node): one node owning every hardware CPU, no pinning
/// side effects, no replicated buffers.

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace abftc::common {

/// One NUMA node: its sysfs id and the CPUs it owns, ascending.
struct NumaNode {
  unsigned id = 0;
  std::vector<unsigned> cpus;
};

class Topology {
 public:
  /// Nodes ascending by id; never empty (a fallback Topology has one node).
  [[nodiscard]] const std::vector<NumaNode>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] unsigned node_count() const noexcept {
    return static_cast<unsigned>(nodes_.size());
  }
  [[nodiscard]] const NumaNode& node(std::size_t i) const {
    return nodes_.at(i);
  }
  [[nodiscard]] bool single_node() const noexcept {
    return nodes_.size() <= 1;
  }

  /// Parse a sysfs node directory (`/sys/devices/system/node` layout:
  /// `node<N>/cpulist` files). Returns the single-node fallback when the
  /// directory is missing, holds no node entries, or no cpulist is
  /// readable — never throws on malformed systems.
  [[nodiscard]] static Topology parse_sysfs(const std::string& node_dir);

  /// One node 0 owning CPUs [0, hardware_concurrency).
  [[nodiscard]] static Topology fallback_single_node();

  /// The machine topology: `parse_sysfs("/sys/devices/system/node")`,
  /// detected once and cached — unless a test override is installed.
  /// Returned as a shared_ptr so a concurrently swapped override can never
  /// invalidate a reader's snapshot.
  [[nodiscard]] static std::shared_ptr<const Topology> system();

  /// Test hook: make system() return `t` (nullptr restores detection).
  /// Lets single-node CI exercise the multi-node code paths with a fake
  /// topology whose "nodes" alias real CPUs.
  static void set_system_for_testing(std::shared_ptr<const Topology> t);

  /// Build a topology from explicit nodes (tests, fallback).
  static Topology from_nodes(std::vector<NumaNode> nodes);

 private:
  std::vector<NumaNode> nodes_;
};

/// Parse a sysfs cpulist string ("0-3,8,10-11") into ascending CPU ids.
/// Malformed fragments are skipped (never throws).
[[nodiscard]] std::vector<unsigned> parse_cpulist(const std::string& s);

/// Pin the calling thread to exactly `cpus`. False when unsupported on this
/// platform, the list is empty, or the syscall fails — callers treat a
/// failed pin as "run unpinned", never as an error.
bool pin_current_thread_to_cpus(const std::vector<unsigned>& cpus) noexcept;

/// Undo pinning: allow the calling thread on every CPU the process may use.
bool unpin_current_thread() noexcept;

}  // namespace abftc::common

#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace abftc::common {

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, 100.0 * fraction);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ABFTC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  ABFTC_REQUIRE(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_values(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fmt(v, precision));
  return add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os.width(static_cast<std::streamsize>(widths[c]));
      os << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c) rule += "  ";
    rule.append(widths[c], '-');
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << row[c];
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_grid(std::ostream& os, const std::string& title,
                const std::string& x_label, const std::vector<double>& xs,
                const std::string& y_label, const std::vector<double>& ys,
                const std::vector<std::vector<double>>& values, int decimals) {
  ABFTC_REQUIRE(values.size() == ys.size(), "grid row count must match ys");
  for (const auto& row : values)
    ABFTC_REQUIRE(row.size() == xs.size(), "grid column count must match xs");

  os << "## " << title << '\n';
  os << "rows: " << y_label << " (top = max), cols: " << x_label << '\n';
  std::vector<std::string> headers;
  headers.push_back(y_label + "\\" + x_label);
  for (double x : xs) headers.push_back(fmt(x, 6));
  Table t(std::move(headers));
  for (std::size_t yi = ys.size(); yi-- > 0;) {
    std::vector<std::string> cells;
    cells.push_back(fmt(ys[yi], 6));
    for (double v : values[yi]) cells.push_back(fmt_fixed(v, decimals));
    t.add_row(std::move(cells));
  }
  t.print(os);
}

}  // namespace abftc::common

#pragma once
/// \file cli.hpp
/// Minimal command-line option parsing for the bench/example binaries.
/// Accepts `--key=value`, `--key value` and bare `--flag` switches, plus
/// comma-separated list values (`--alpha=0.0,0.45,0.8`) for sweep axes.

#include <iosfwd>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace abftc::common {

/// One `key<sep>value` item of a structured spec string.
struct KeyValue {
  std::string key;
  std::string value;
};

/// Parse a structured spec string ("steps:0-12,ranks:0-3" or "direct=1")
/// into ordered key/value pairs. `pair_sep` separates items, `kv_sep`
/// separates key from value within an item. Empty items and empty keys are
/// rejected; an item without `kv_sep` becomes {key, ""} (a bare switch).
/// Duplicate keys are kept in order — callers decide whether that is legal.
[[nodiscard]] std::vector<KeyValue> parse_key_values(std::string_view text,
                                                     char pair_sep = ',',
                                                     char kv_sep = ':');

/// First value for `key` in a parsed spec; nullopt when absent.
[[nodiscard]] std::optional<std::string> find_key_value(
    const std::vector<KeyValue>& items, std::string_view key);

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if --name was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] long long get_int(const std::string& name, long long def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// `--key=v1,v2,v3` as strings; `def` when the flag is absent. Empty
  /// items are rejected (`--key=1,,2` is malformed).
  [[nodiscard]] std::vector<std::string> get_list(
      const std::string& name, std::vector<std::string> def = {}) const;
  /// `--key=v1,v2,v3` parsed as doubles (used by sweep axes).
  [[nodiscard]] std::vector<double> get_double_list(
      const std::string& name, std::vector<double> def = {}) const;

  /// Structured spec value: `--key=k1:v1,k2:v2` as ordered key/value pairs
  /// (see parse_key_values). `def` when the flag is absent; a present flag
  /// with an empty value is malformed. Used by `--campaign=` and friends.
  [[nodiscard]] std::vector<KeyValue> get_key_values(
      const std::string& name, std::vector<KeyValue> def = {},
      char kv_sep = ':') const;

  /// Flags that were given but never read by any get_*/has() call — i.e.
  /// flags the binary does not understand. Call after all options have been
  /// read (typically right before the work starts).
  [[nodiscard]] std::vector<std::string> unknown() const;
  /// Print a `warning: unknown flag --x (ignored)` line per unknown flag.
  /// Returns the number of warnings issued.
  std::size_t warn_unknown(std::ostream& os) const;

  /// Positional (non --) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
  mutable std::set<std::string> accessed_;
};

}  // namespace abftc::common

#pragma once
/// \file cli.hpp
/// Minimal command-line option parsing for the bench/example binaries.
/// Accepts `--key=value`, `--key value` and bare `--flag` switches.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace abftc::common {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  /// True if --name was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] long long get_int(const std::string& name, long long def) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool def) const;

  /// Positional (non --) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  [[nodiscard]] std::optional<std::string> raw(const std::string& name) const;
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace abftc::common

#include "common/crc32.hpp"

#include <array>

namespace abftc::common {

namespace {

/// Slice-by-8 tables: t[0] is the classic byte-at-a-time table; t[k][v] is
/// the CRC of byte v followed by k zero bytes, so eight table lookups advance
/// the CRC over eight input bytes at once (Intel's slicing-by-8 scheme).
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
    t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      t[k][i] = t[0][t[k - 1][i] & 0xFFu] ^ (t[k - 1][i] >> 8);
  return t;
}

constexpr auto kT = make_tables();

inline std::uint32_t load_le32(const std::byte* p) noexcept {
  // Byte-compose so the code is endian-independent; compilers fold this to a
  // single 32-bit load on little-endian targets.
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    c ^= load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    c = kT[7][c & 0xFFu] ^ kT[6][(c >> 8) & 0xFFu] ^ kT[5][(c >> 16) & 0xFFu] ^
        kT[4][c >> 24] ^ kT[3][hi & 0xFFu] ^ kT[2][(hi >> 8) & 0xFFu] ^
        kT[1][(hi >> 16) & 0xFFu] ^ kT[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p)
    c = kT[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

namespace {

/// 32x32 GF(2) matrix (one column per register bit) times a register vector.
inline std::uint32_t gf2_times(const std::array<std::uint32_t, 32>& m,
                               std::uint32_t vec) noexcept {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; vec != 0; vec >>= 1, ++i)
    if (vec & 1u) sum ^= m[i];
  return sum;
}

inline void gf2_square(std::array<std::uint32_t, 32>& out,
                       const std::array<std::uint32_t, 32>& m) noexcept {
  for (std::size_t i = 0; i < 32; ++i) out[i] = gf2_times(m, m[i]);
}

}  // namespace

std::uint32_t crc32_combine(std::uint32_t crc_a, std::uint32_t crc_b,
                            std::size_t len_b) {
  if (len_b == 0) return crc_a;

  // `odd` starts as the operator advancing the register by one zero *bit*:
  // column 0 is the polynomial (feedback of the low bit), column i the shift
  // of bit i into bit i-1. Repeated squaring yields the 2^k-zero-bit
  // operators, applied for each set bit of the zero count (8 * len_b bits;
  // the first square inside the loop makes `even` the one-zero-byte
  // operator, so the loop walks the *byte* count).
  std::array<std::uint32_t, 32> odd{}, even{};
  odd[0] = 0xEDB88320u;
  for (std::size_t i = 1; i < 32; ++i) odd[i] = 1u << (i - 1);
  gf2_square(even, odd);  // two zero bits
  gf2_square(odd, even);  // four zero bits

  std::size_t len = len_b;
  do {
    gf2_square(even, odd);
    if (len & 1u) crc_a = gf2_times(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    gf2_square(odd, even);
    if (len & 1u) crc_a = gf2_times(odd, crc_a);
    len >>= 1;
  } while (len != 0);

  return crc_a ^ crc_b;
}

}  // namespace abftc::common

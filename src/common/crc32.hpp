#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3 polynomial) used to verify checkpoint image integrity.
/// Implemented with slicing-by-8 (eight bytes per step); identical results
/// to the classic byte-at-a-time formulation.

#include <cstddef>
#include <cstdint>
#include <span>

namespace abftc::common {

/// CRC-32 of a byte range; `seed` allows incremental computation by passing
/// the previous result.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0);

}  // namespace abftc::common

#pragma once
/// \file crc32.hpp
/// CRC-32 (IEEE 802.3 polynomial) used to verify checkpoint image integrity.
/// Implemented with slicing-by-8 (eight bytes per step); identical results
/// to the classic byte-at-a-time formulation.
///
/// Three ways to compute the same value:
///  * one-shot:   crc32(data)
///  * streaming:  Crc32 acc; acc.update(chunk); ... ; acc.value()
///    (chunks in order — lets the checkpoint writer overlap the CRC pass
///    with I/O instead of hashing the whole buffer after the fact)
///  * parallel:   per-chunk crc32() from seed 0, folded with crc32_combine()
///    (chunks independent — the chunking, not the worker count, defines the
///    result, so parallel CRCs are bitwise reproducible)

#include <cstddef>
#include <cstdint>
#include <span>

namespace abftc::common {

/// CRC-32 of a byte range; `seed` allows incremental computation by passing
/// the previous result.
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0);

/// CRC of the concatenation A||B from crc32(A), crc32(B) and |B| alone, in
/// O(log |B|) GF(2) matrix operations (the zlib crc32_combine construction):
/// extending A by |B| zero bytes is a linear operator on the CRC register.
[[nodiscard]] std::uint32_t crc32_combine(std::uint32_t crc_a,
                                          std::uint32_t crc_b,
                                          std::size_t len_b);

/// Fold of *independently* computed chunk CRCs (each from seed 0): add()
/// them in chunk order and value() equals the one-shot crc32 of the
/// concatenation. This is the one authoritative combine-order/length
/// pairing for parallel CRC users (checkpoint store and writer) — a wrong
/// len pairing yields a stable but wrong CRC, so don't hand-roll the fold.
/// Starting from 0 needs no seeding special case: crc32_combine(0, c, n)
/// == c for every n (the zero register is a fixed point of the operator).
class Crc32Chunks {
 public:
  Crc32Chunks& add(std::uint32_t chunk_crc, std::size_t chunk_len) {
    crc_ = crc32_combine(crc_, chunk_crc, chunk_len);
    return *this;
  }
  [[nodiscard]] std::uint32_t value() const noexcept { return crc_; }

 private:
  std::uint32_t crc_ = 0;
};

/// Streaming accumulator: feed byte ranges in order; value() equals the
/// one-shot crc32 of their concatenation at any point.
class Crc32 {
 public:
  Crc32& update(std::span<const std::byte> chunk) {
    crc_ = crc32(chunk, crc_);
    return *this;
  }
  [[nodiscard]] std::uint32_t value() const noexcept { return crc_; }
  void reset() noexcept { crc_ = 0; }

 private:
  std::uint32_t crc_ = 0;
};

}  // namespace abftc::common

#pragma once
/// \file executor.hpp
/// The process-lifetime parallel substrate: one lazily started work-sharing
/// pool that every parallel region in the repo — blocked GEMM row panels,
/// group checksums, Monte-Carlo replicates, Experiment grid cells — programs
/// against.
///
/// Why a persistent pool: `parallel_for` used to spawn and join fresh
/// std::threads on every call, which dominated dispatch latency for the many
/// small GEMMs inside blocked LU/Cholesky/QR trailing updates. Workers are
/// now created once (on first demand, growing to the largest concurrency
/// ever requested), park on a condition variable between loops, and
/// self-schedule contiguous chunks off a per-loop atomic cursor. The calling
/// thread always participates in its own loop, so a loop makes progress even
/// when every worker is busy elsewhere — which is also what makes nested
/// submission deadlock-free by construction.
///
/// Nested-parallelism arbitration: each worker (and a caller while it runs
/// chunks of its own loop) carries a thread-local nesting depth. A
/// `parallel_for` issued from inside a parallel region gets a *bounded
/// share*: it may borrow workers that are idle at that moment but never
/// grows the pool, and with no idle worker it runs inline on the calling
/// thread at zero dispatch cost. Cell-parallel sweeps × thread-parallel
/// kernels therefore no longer multiply thread counts — peak concurrency is
/// always bounded by the pool size plus the callers — while an under-filled
/// grid still lends its parked workers to the inner loops. Determinism is
/// unaffected: every output element is owned by exactly one index, so
/// results are bitwise identical for any worker count, for pool vs
/// spawn-per-call dispatch, and for serial execution.
///
/// Exception contract (changed from the original spawn-per-call pool): the
/// first exception thrown by a loop body is captured and rethrown on the
/// calling thread, and a relaxed `stop` flag short-circuits the remaining
/// chunks — indices after the first failure are no longer guaranteed to be
/// attempted. (The old implementation kept attempting every index; no caller
/// relied on that, and abandoning doomed work is what you want for loops
/// with per-index side effects guarded by their own invariants.)
///
/// Hybrid scheduling (PR 6): the shared-cursor path above stays the fast
/// path for uniform loops; `parallel_for_dynamic` adds a work-stealing
/// schedule for irregular ones — per-participant Chase–Lev deques
/// (common/deque.hpp) seeded with contiguous shares, idle participants
/// stealing half of a laggard's remainder. Tasks submitted from a pool
/// worker likewise go to that worker's own deque (peers steal), so task
/// DAGs that fan out from inside the pool load-balance without bouncing on
/// the shared-queue mutex. Both scheduling paths share the nesting
/// arbitration, caller participation, and first-exception contracts; only
/// the *claim order* differs — see Schedule in dispatch.hpp for the
/// decision rule and the determinism fine print.
///
/// NUMA (opt-in): `set_worker_pinning(true)` pins workers round-robin
/// across the nodes of common::Topology::system() (sched_setaffinity; a
/// failed pin degrades to unpinned). Pinning changes *where* a worker runs,
/// never *what* it computes — every determinism guarantee above is
/// unaffected — but it gives first-touch allocations inside workers (the
/// GEMM packing buffers) a stable home node. `current_numa_node()` exposes
/// the calling worker's node for placement decisions.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/dispatch.hpp"

namespace abftc::common {

namespace detail {

using RawLoopFn = void (*)(void* ctx, std::size_t i);

/// Out-of-line dispatcher behind the `parallel_for` template: picks serial /
/// pool / spawn execution. Serial (threads <= 1, n <= 1, or called from
/// inside a parallel region) propagates exceptions directly; the parallel
/// paths capture the first exception, stop remaining chunks, and rethrow it
/// on the calling thread.
void parallel_for_impl(std::size_t n, RawLoopFn fn, void* ctx,
                       unsigned threads, Dispatch dispatch = Dispatch::Pool);

/// Dispatcher behind `parallel_for_dynamic`: the work-stealing schedule on
/// the global executor (serial fallback under the same conditions as the
/// static path).
void parallel_for_dynamic_impl(std::size_t n, RawLoopFn fn, void* ctx,
                               unsigned threads, std::size_t grain);

}  // namespace detail

/// Scheduler activity counters, all monotonically increasing over an
/// executor's lifetime (relaxed atomics — totals are exact once the counted
/// activity has quiesced, racy-fresh while it runs).
struct ExecutorCounters {
  std::uint64_t chunks_claimed = 0;  ///< loop chunks executed (both schedules)
  std::uint64_t tasks_stolen = 0;    ///< deque entries taken from a victim
  std::uint64_t steal_failures = 0;  ///< steal attempts that found nothing
  std::uint64_t parks = 0;           ///< worker went to sleep on the condvar
  std::uint64_t unparks = 0;         ///< worker woke from the condvar
};

/// Counter-wise difference of two snapshots: the scheduler activity between
/// them. Counters are monotone, so `after - before` never underflows when
/// the operands are ordered snapshots of the same executor.
[[nodiscard]] constexpr ExecutorCounters operator-(
    const ExecutorCounters& after, const ExecutorCounters& before) noexcept {
  return {after.chunks_claimed - before.chunks_claimed,
          after.tasks_stolen - before.tasks_stolen,
          after.steal_failures - before.steal_failures,
          after.parks - before.parks, after.unparks - before.unparks};
}

/// Snapshot of an executor's per-worker counters (index = worker id, in
/// creation order) plus one row for non-worker participants (loop callers),
/// and the sum of all rows.
struct ExecutorStats {
  ExecutorCounters total;
  ExecutorCounters callers;
  std::vector<ExecutorCounters> per_worker;
};

/// Snapshot delta: per-request / per-phase scheduler accounting in one
/// expression (`(after - before).total.tasks_stolen`) instead of
/// hand-subtracted counter rows. Workers are created lazily and never
/// retire, so `after` may have more per-worker rows than `before`; missing
/// `before` rows count as zero (the worker did not exist yet).
[[nodiscard]] ExecutorStats operator-(const ExecutorStats& after,
                                      const ExecutorStats& before);

/// A handle on a pool of persistent workers. Almost every caller wants the
/// process-wide `Executor::global()` (which `parallel_for` uses); explicit
/// instances exist for callers that need isolation — their own worker set
/// whose load, lifetime, and failure domain are independent of the global
/// pool (and of each other).
class Executor {
 public:
  /// `max_helpers` caps the worker threads this executor may create (the
  /// caller of a loop always participates too, so the peak concurrency of a
  /// loop is max_helpers + 1). 0 means the default cap (kDefaultMaxHelpers).
  /// No thread is created until a loop or task actually needs one.
  explicit Executor(unsigned max_helpers = 0);
  ~Executor();  ///< Drains queued tasks, then stops and joins all workers.
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The process-lifetime pool `parallel_for` runs on. Constructed lazily on
  /// first use; workers are joined at static destruction.
  static Executor& global();

  /// Run `fn(ctx, i)` for i in [0, n) with up to `threads` participants
  /// (callers + helpers); the calling thread always participates. Blocks
  /// until every claimed chunk has finished; rethrows the first exception.
  void run_loop(std::size_t n, detail::RawLoopFn fn, void* ctx,
                unsigned threads);

  /// Type-safe loop on this executor (same contract as free `parallel_for`,
  /// but pinned to this worker set).
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn, unsigned threads = 0);

  /// Run `fn(ctx, i)` for i in [0, n) under the work-stealing schedule
  /// (Schedule::Stealing): participants own contiguous shares in per-worker
  /// deques and idle participants steal half of a victim's remainder. Use
  /// for loops with non-uniform per-index cost; `grain` indices form one
  /// steal unit (0 = automatic). Same caller-participation, nesting, and
  /// first-exception contracts as run_loop; index *claim order* is
  /// scheduling-dependent (see Schedule).
  void run_loop_dynamic(std::size_t n, detail::RawLoopFn fn, void* ctx,
                        unsigned threads, std::size_t grain = 0);

  /// Type-safe irregular loop on this executor (see run_loop_dynamic).
  template <typename Fn>
  void parallel_for_dynamic(std::size_t n, Fn&& fn, unsigned threads = 0,
                            std::size_t grain = 0);

  /// Run `f()` on a pool worker; the returned future carries its result or
  /// exception. Falls back to inline execution when this executor cannot
  /// create workers. Tasks run at nesting depth >= 1, so loops they issue
  /// follow the bounded-share nesting rules.
  template <typename F>
  [[nodiscard]] auto submit(F f) -> std::future<std::invoke_result_t<F>>;

  /// Workers created so far (grows lazily, never shrinks).
  [[nodiscard]] unsigned spawned_helpers() const noexcept;
  /// The cap `max_helpers` resolved to at construction.
  [[nodiscard]] unsigned max_helpers() const noexcept;

  /// Snapshot the scheduler counters (chunks claimed, steals, steal
  /// failures, park/unpark transitions), per worker plus the caller row.
  [[nodiscard]] ExecutorStats stats() const;

  /// Opt in to (or out of) NUMA placement: when enabled, worker i is pinned
  /// to the CPUs of Topology::system() node i % node_count — round-robin
  /// across sockets, applied to existing workers at their next wakeup and
  /// to new workers at creation. A failed pin (unsupported platform,
  /// restricted affinity mask) silently leaves that worker unpinned.
  /// Placement never changes results, only locality.
  void set_worker_pinning(bool enabled) noexcept;
  [[nodiscard]] bool worker_pinning() const noexcept;

  /// The NUMA node the calling thread was pinned to by this facility
  /// (0 for unpinned threads and external callers) — what first-touch
  /// allocations on this thread will be local to, used by the GEMM packing
  /// layer to pick the node-local B-panel copy.
  [[nodiscard]] static unsigned current_numa_node() noexcept;

  /// True on a thread currently executing parallel work (a pool worker
  /// running a chunk or task, a spawned loop worker, or a caller running
  /// chunks of its own loop). `parallel_for` consults this to arbitrate
  /// nesting: inside a worker it only borrows idle workers, or runs inline.
  [[nodiscard]] static bool inside_parallel_region() noexcept;
  /// Current thread's nesting depth (0 outside any parallel region).
  [[nodiscard]] static unsigned nesting_depth() noexcept;

  /// A structured-concurrency task group over an executor: tasks submitted
  /// through the arena are tracked together, `wait()` blocks until all of
  /// them finished and rethrows the first captured exception. The destructor
  /// drains outstanding tasks without throwing, so an arena can never leak
  /// running tasks past its scope.
  class ScopedArena {
   public:
    explicit ScopedArena(Executor& ex);
    ~ScopedArena();  ///< Waits for outstanding tasks; swallows their errors.
    ScopedArena(const ScopedArena&) = delete;
    ScopedArena& operator=(const ScopedArena&) = delete;

    /// Queue `task` on the arena's executor (inline when it has no workers).
    void submit(std::function<void()> task);
    /// Block until every submitted task completed; rethrow the first error.
    void wait();
    /// Tasks submitted and not yet finished.
    [[nodiscard]] std::size_t pending() const noexcept;

   private:
    struct State;
    Executor& ex_;
    std::shared_ptr<State> state_;
  };

 private:
  friend class ScopedArena;
  void enqueue_task(std::function<void()> task);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Run `fn(i)` for i in [0, n) across up to `threads` participants on the
/// global executor. `threads == 0` means the cached hardware concurrency.
/// The first exception thrown by `fn` is rethrown on the calling thread;
/// remaining chunks are abandoned (see the header comment). Called from
/// inside a parallel region, the loop borrows only idle workers (bounded
/// share) and runs inline when there are none.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, unsigned threads = 0,
                  Dispatch dispatch = Dispatch::Pool) {
  using F = std::remove_reference_t<Fn>;
  if constexpr (std::is_function_v<F>) {
    // Plain functions can't round-trip through void*; wrap in a lambda.
    auto wrapper = [fp = &fn](std::size_t i) { fp(i); };
    parallel_for(n, wrapper, threads, dispatch);
  } else {
    detail::parallel_for_impl(
        n, [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        threads, dispatch);
  }
}

/// Run `fn(i)` for i in [0, n) under the work-stealing schedule on the
/// global executor — the entry point for loops whose per-index cost is
/// irregular (see Schedule in dispatch.hpp for the decision rule). Executes
/// every index exactly once with the same exception and nesting contracts
/// as `parallel_for`; only the claim order is scheduling-dependent.
template <typename Fn>
void parallel_for_dynamic(std::size_t n, Fn&& fn, unsigned threads = 0,
                          std::size_t grain = 0) {
  using F = std::remove_reference_t<Fn>;
  if constexpr (std::is_function_v<F>) {
    auto wrapper = [fp = &fn](std::size_t i) { fp(i); };
    parallel_for_dynamic(n, wrapper, threads, grain);
  } else {
    detail::parallel_for_dynamic_impl(
        n, [](void* ctx, std::size_t i) { (*static_cast<F*>(ctx))(i); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
        threads, grain);
  }
}

template <typename Fn>
void Executor::parallel_for(std::size_t n, Fn&& fn, unsigned threads) {
  using F = std::remove_reference_t<Fn>;
  static_assert(!std::is_function_v<F>,
                "wrap plain functions in a lambda for Executor::parallel_for");
  detail::RawLoopFn raw = [](void* ctx, std::size_t i) {
    (*static_cast<F*>(ctx))(i);
  };
  run_loop(n, raw,
           const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
           threads);
}

template <typename Fn>
void Executor::parallel_for_dynamic(std::size_t n, Fn&& fn, unsigned threads,
                                    std::size_t grain) {
  using F = std::remove_reference_t<Fn>;
  static_assert(!std::is_function_v<F>,
                "wrap plain functions in a lambda for parallel_for_dynamic");
  detail::RawLoopFn raw = [](void* ctx, std::size_t i) {
    (*static_cast<F*>(ctx))(i);
  };
  run_loop_dynamic(
      n, raw, const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
      threads, grain);
}

template <typename F>
auto Executor::submit(F f) -> std::future<std::invoke_result_t<F>> {
  using R = std::invoke_result_t<F>;
  auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
  std::future<R> fut = task->get_future();
  enqueue_task([task] { (*task)(); });
  return fut;
}

/// Workers `threads == 0` resolves to: std::thread::hardware_concurrency(),
/// queried once per process and cached (never 0).
[[nodiscard]] unsigned hardware_workers() noexcept;

/// The participant count a loop with this `threads` request actually uses.
[[nodiscard]] unsigned effective_threads(unsigned threads) noexcept;

}  // namespace abftc::common

#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace abftc::common {

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection-free-ish bounded draw with rejection to kill bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold)
      return static_cast<std::uint64_t>(m >> 64);
  }
}

double Rng::exponential(double mean) noexcept {
  // Inverse CDF: -mean * ln(U), U in (0,1].
  return -mean * std::log(uniform01_open_low());
}

double Rng::weibull(double shape, double scale) noexcept {
  // Inverse CDF: scale * (-ln U)^(1/shape).
  return scale * std::pow(-std::log(uniform01_open_low()), 1.0 / shape);
}

double Rng::lognormal(double mu_log, double sigma_log) noexcept {
  return std::exp(mu_log + sigma_log * normal());
}

double Rng::normal() noexcept {
  // Box–Muller; we deliberately discard the second variate to keep the
  // generator stateless (reproducibility across call interleavings).
  const double u1 = uniform01_open_low();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace abftc::common

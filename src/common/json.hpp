#pragma once
/// \file json.hpp
/// Minimal streaming JSON writer for the BENCH_*.json artifacts.
///
/// The writer is a push API over an ostream: begin/end object and array,
/// `key()` inside objects, scalar `value()` overloads. Commas, quoting,
/// string escaping and 2-space indentation are handled internally, so every
/// emitter in the repo (bench probes, result sinks) produces the same
/// machine-readable shape. Doubles are rendered with std::to_chars, the
/// shortest representation that round-trips; non-finite values become
/// `null` (JSON has no NaN/Inf).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace abftc::common {

class JsonWriter {
 public:
  /// Writes to `os`; the stream must outlive the writer.
  explicit JsonWriter(std::ostream& os);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by a value or begin_*().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  /// Any integer type (size_t, unsigned, long, ...) without overload
  /// ambiguity across LP64/LLP64 platforms. bool prefers the exact
  /// non-template overload above.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_signed_v<T>,
                             int> = 0>
  JsonWriter& value(T v) {
    return write_int(static_cast<std::int64_t>(v));
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && std::is_unsigned_v<T> &&
                                 !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    return write_uint(static_cast<std::uint64_t>(v));
  }
  JsonWriter& null();

  /// Convenience: key + scalar value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once all opened scopes are closed again.
  [[nodiscard]] bool complete() const noexcept {
    return stack_.empty() && wrote_root_;
  }

  /// Render a double exactly as `value(double)` would (shortest round-trip).
  [[nodiscard]] static std::string number(double v);

 private:
  enum class Scope : std::uint8_t { Object, Array };
  JsonWriter& write_int(std::int64_t v);
  JsonWriter& write_uint(std::uint64_t v);
  void pre_value();   ///< comma/newline/indent before a value or key
  void raw(std::string_view text);
  void indent();

  std::ostream& os_;
  std::vector<Scope> stack_;
  bool first_in_scope_ = true;
  bool after_key_ = false;
  bool wrote_root_ = false;
};

/// Escape a string for embedding in a JSON document (no surrounding quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace abftc::common

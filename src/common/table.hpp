#pragma once
/// \file table.hpp
/// Column-aligned text tables and heat-map grids for the bench harnesses.
/// Every figure/table of the paper is regenerated as one of these, so the
/// formatting is deliberately plain (terminal + machine-greppable CSV).

#include <iosfwd>
#include <string>
#include <vector>

namespace abftc::common {

/// A simple right-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);
  /// Convenience: formats doubles with %.*g.
  Table& add_row_values(const std::vector<double>& values, int precision = 5);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return headers_.size(); }

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for Table cells).
[[nodiscard]] std::string fmt(double v, int precision = 5);
[[nodiscard]] std::string fmt_fixed(double v, int decimals);
[[nodiscard]] std::string fmt_percent(double fraction, int decimals = 1);

/// Print a 2-D grid (heat map) of `values[yi][xi]` with axis labels,
/// mirroring the paper's Figure 7 panels in text form.
void print_grid(std::ostream& os, const std::string& title,
                const std::string& x_label, const std::vector<double>& xs,
                const std::string& y_label, const std::vector<double>& ys,
                const std::vector<std::vector<double>>& values,
                int decimals = 3);

}  // namespace abftc::common

#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace abftc::common {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStats::ci95_halfwidth() const noexcept {
  return 1.959964 * stderr_mean();
}

double Sample::quantile(double q) const {
  ABFTC_REQUIRE(!xs_.empty(), "quantile of empty sample");
  ABFTC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0,1]");
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

double Sample::mean() const {
  ABFTC_REQUIRE(!xs_.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  ABFTC_REQUIRE(hi > lo, "histogram range must be non-empty");
  ABFTC_REQUIRE(bins > 0, "histogram needs at least one bin");
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<long long>(t * static_cast<double>(counts_.size()));
  idx = std::clamp<long long>(idx, 0,
                              static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t i) const {
  ABFTC_REQUIRE(i < counts_.size(), "bin index out of range");
  return counts_[i];
}

double Histogram::bin_low(std::size_t i) const {
  ABFTC_REQUIRE(i < counts_.size(), "bin index out of range");
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t i) const { return bin_low(i + 1); }

}  // namespace abftc::common

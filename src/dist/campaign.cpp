#include "dist/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <mutex>

#include "ckpt/io/faulting.hpp"
#include "common/error.hpp"
#include "core/experiment.hpp"
#include "core/params.hpp"

namespace abftc::dist {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Per-cell storage spec: "memory" is naturally isolated (fresh store per
/// make_backend call); file/mmap paths get a ".cellN" suffix spliced in
/// before any ?options tail so cells never share an arena or directory.
struct CellStorage {
  std::string spec;
  std::string path;  ///< filesystem path to clean up; empty for memory
};

CellStorage storage_for(const std::string& base, const std::string& tag) {
  CellStorage out;
  if (base.rfind("memory", 0) == 0) {
    out.spec = base;
    return out;
  }
  const auto qmark = base.find('?');
  const std::string body =
      qmark == std::string::npos ? base : base.substr(0, qmark);
  const std::string options =
      qmark == std::string::npos ? std::string{} : base.substr(qmark);
  out.spec = body + "." + tag + options;
  const auto colon = body.find(':');
  out.path = colon == std::string::npos ? body + "." + tag
                                        : body.substr(colon + 1) + "." + tag;
  return out;
}

void cleanup(const CellStorage& storage) {
  if (storage.path.empty()) return;
  std::error_code ec;  // best-effort: a leftover arena is not a failure
  std::filesystem::remove_all(storage.path, ec);
}

/// Sum of step_seconds[c..s] — the steps a restore-to-boundary-c replays.
double replay_time(const Calibration& calib, std::size_t c, std::size_t s) {
  double t = 0.0;
  for (std::size_t k = c; k <= s && k < calib.step_seconds.size(); ++k)
    t += calib.step_seconds[k];
  return t;
}

double predict(const Calibration& calib, const Cell& cell,
               std::size_t ckpt_every, bool blind) {
  // Blind runs pay per-boundary verification in t_clean already; only the
  // legacy mode adds a dedicated detection sweep for corruption cells.
  const double detect = blind ? 0.0 : calib.check_s;
  switch (cell.kind) {
    case FaultKind::Flip:
      // detect → locate → reconstruct → re-verify.
      return calib.t_clean + detect + calib.locate_s + calib.recons_s +
             calib.check_s;
    case FaultKind::Flip2: {
      // detect → locate → escalate straight to the covering checkpoint
      // (two located block rows rule out single-block reconstruction).
      const std::size_t c = (cell.step / ckpt_every) * ckpt_every;
      return calib.t_clean + detect + calib.locate_s + calib.restore_s +
             replay_time(calib, c, cell.step);
    }
    case FaultKind::Hang: {
      // The victim sits out the deadline before SIGKILL + restore + replay.
      const std::size_t c = (cell.step / ckpt_every) * ckpt_every;
      return calib.t_clean + calib.hang_timeout_s + calib.restore_s +
             replay_time(calib, c, cell.step);
    }
    case FaultKind::Kill: {
      const std::size_t c = (cell.step / ckpt_every) * ckpt_every;
      return calib.t_clean + calib.restore_s +
             replay_time(calib, c, cell.step);
    }
    case FaultKind::Torn: {
      // The covering boundary's snapshot is torn: restore falls back one
      // checkpoint period (or to the initial image when none is older).
      const std::size_t torn = (cell.step / ckpt_every) * ckpt_every;
      const std::size_t c = torn >= ckpt_every ? torn - ckpt_every : 0;
      return calib.t_clean + calib.restore_s +
             replay_time(calib, c, cell.step);
    }
  }
  return calib.t_clean;
}

/// Residual of all four checksum invariants over copied-out final state
/// (the calibration clone of Launcher::residual_now; frozen_steps = nbk
/// after a completed run, so the active accumulators must be ~0).
double final_residual(const abft::Matrix& a, const abft::Matrix& active,
                      const abft::Matrix& frozen, const abft::Matrix& wactive,
                      const abft::Matrix& wfrozen, std::size_t nb,
                      std::size_t group) {
  const std::size_t nbk = a.rows() / nb;
  const std::size_t groups = nbk / group;
  double worst = 0.0;
  for (std::size_t g = 0; g < groups; ++g)
    for (std::size_t r = 0; r < nb; ++r)
      for (std::size_t j = 0; j < a.cols(); ++j) {
        double sum = 0.0, wsum = 0.0;
        for (std::size_t m = 0; m < group; ++m) {
          const double v = a((g * group + m) * nb + r, j);
          sum += v;
          wsum += static_cast<double>(m + 1) * v;
        }
        const std::size_t row = g * nb + r;
        worst = std::max(worst, std::abs(sum - frozen(row, j)));
        worst = std::max(worst, std::abs(active(row, j)));
        worst = std::max(worst, std::abs(wsum - wfrozen(row, j)));
        worst = std::max(worst, std::abs(wactive(row, j)));
      }
  return worst;
}

/// Set-equality of injected vs located sites (order-insensitive: the
/// localization sweep reports in (row, column) scan order, the injector in
/// injection order).
bool sites_match(std::vector<FaultSite> a, std::vector<FaultSite> b) {
  const auto by_coords = [](const FaultSite& x, const FaultSite& y) {
    return x.row != y.row ? x.row < y.row : x.col < y.col;
  };
  std::sort(a.begin(), a.end(), by_coords);
  std::sort(b.begin(), b.end(), by_coords);
  return a == b;
}

Calibration calibrate(const DistConfig& cfg, const CampaignOptions& options) {
  const CellStorage storage = storage_for(options.storage, "clean");
  auto backend = ckpt::io::make_backend(storage.spec);
  Launcher clean(cfg, *backend);
  const RunReport rep = clean.run();
  ABFTC_CHECK(rep.completed, "calibration run did not complete");

  Calibration calib;
  calib.t_clean = rep.wall_seconds;
  calib.step_seconds = rep.step_seconds;

  // restore_s: read + verify the newest snapshot, as the death path would.
  auto t0 = Clock::now();
  const auto blob = ckpt::io::latest_restorable(*backend);
  calib.restore_s = seconds_since(t0);
  ABFTC_CHECK(blob.has_value(), "clean run left no restorable snapshot");

  // check_s: one full residual sweep over the final state.
  t0 = Clock::now();
  (void)final_residual(clean.lu(), clean.active_cs(), clean.frozen_cs(),
                       clean.weighted_active_cs(), clean.weighted_frozen_cs(),
                       cfg.nb, cfg.group);
  calib.check_s = seconds_since(t0);

  // locate_s: one weighted/unweighted localization sweep (same state).
  t0 = Clock::now();
  (void)locate_corruption(clean.lu().view(), clean.active_cs().view(),
                          clean.frozen_cs().view(),
                          clean.weighted_active_cs().view(),
                          clean.weighted_frozen_cs().view(), cfg.nb, cfg.group,
                          cfg.n / cfg.nb);
  calib.locate_s = seconds_since(t0);

  // recons_s: reconstruct one (frozen) block on scratch copies.
  abft::Matrix scratch = clean.lu();
  const abft::Matrix& frozen = clean.frozen_cs();
  t0 = Clock::now();
  abft::MatrixView lost = scratch.block(0, 0, cfg.nb, cfg.nb);
  for (std::size_t r = 0; r < cfg.nb; ++r)
    for (std::size_t c = 0; c < cfg.nb; ++c) lost(r, c) = frozen(r, c);
  for (std::size_t mi = 1; mi < cfg.group; ++mi)
    for (std::size_t r = 0; r < cfg.nb; ++r)
      for (std::size_t c = 0; c < cfg.nb; ++c)
        lost(r, c) -= scratch(mi * cfg.nb + r, c);
  calib.recons_s = seconds_since(t0);

  cleanup(storage);
  return calib;
}

}  // namespace

CampaignReport run_campaign(const DistConfig& cfg, const CampaignSpec& spec,
                            const CampaignOptions& options) {
  const DistLayout lay =
      DistLayout::compute(cfg.n, cfg.nb, cfg.group, cfg.ranks);
  ABFTC_REQUIRE(spec.step_hi < lay.nbk,
                "campaign steps exceed the factorization's block steps");
  ABFTC_REQUIRE(spec.rank_hi < cfg.ranks,
                "campaign ranks exceed the configured rank count");

  // Blind campaigns run calibration and every cell with per-boundary
  // verification, so t_clean and the cells pay the same check cadence.
  DistConfig base = cfg;
  base.blind = options.blind;

  CampaignReport report;
  report.config = base;
  report.spec = spec;
  report.options = options;
  report.calib = calibrate(base, options);

  // Hang cells wait out the step deadline before recovery; derive a tight
  // one from the calibrated step times so a campaign doesn't sit out the
  // default 30 s per hang cell.
  double max_step = 0.0;
  for (const double s : report.calib.step_seconds)
    max_step = std::max(max_step, s);
  report.calib.hang_timeout_s = std::max(0.25, 20.0 * max_step);

  // The clean factors every recovered cell must reproduce.
  abft::Matrix clean_lu;
  {
    const CellStorage storage = storage_for(options.storage, "ref");
    auto backend = ckpt::io::make_backend(storage.spec);
    Launcher ref(base, *backend);
    (void)ref.run();
    clean_lu = ref.lu();
    cleanup(storage);
  }

  for (const std::size_t index :
       spec.shard_indices(options.shard, options.nshards)) {
    const Cell cell = spec.cell(index);
    const CellStorage storage =
        storage_for(options.storage, "cell" + std::to_string(index));
    auto backend = ckpt::io::make_backend(storage.spec);

    DistConfig cell_cfg = base;
    cell_cfg.flip_seed = cell_seed(cfg.seed, index);
    if (cell.kind == FaultKind::Hang)
      cell_cfg.step_timeout_s = report.calib.hang_timeout_s;

    std::vector<Injection> faults;
    ckpt::io::StorageBackend* effective = backend.get();
    std::unique_ptr<ckpt::io::FaultingBackend> faulting;
    if (cell.kind == FaultKind::Torn) {
      // Tear the checkpoint write covering this step, then kill the victim
      // at the step: the restore must fall back past the torn snapshot.
      const std::size_t torn_write = cell.step / cfg.ckpt_every;
      faulting = std::make_unique<ckpt::io::FaultingBackend>(
          *backend,
          std::vector<ckpt::io::FaultingBackend::Fault>{
              {torn_write, ckpt::io::WriteFault::TornPayload}});
      effective = faulting.get();
      faults.push_back({FaultKind::Torn, cell.step, cell.rank});
    } else {
      faults.push_back({cell.kind, cell.step, cell.rank});
    }

    Launcher launcher(cell_cfg, *effective);
    const RunReport rep = launcher.run(faults);

    CellOutcome out;
    out.cell = cell;
    out.measured_seconds = rep.wall_seconds;
    out.predicted_seconds =
        predict(report.calib, cell, cfg.ckpt_every, options.blind);
    out.ratio = out.predicted_seconds > 0.0
                    ? rep.wall_seconds / out.predicted_seconds
                    : 0.0;
    out.residual = rep.residual;
    out.restores = rep.restores;
    out.reconstructions = rep.reconstructions;
    out.respawns = rep.respawns;
    out.escalations = rep.escalations;
    out.hangs = rep.hangs;
    out.check_seconds = rep.check_seconds;
    out.locate_seconds = rep.locate_seconds;
    out.recons_seconds = rep.recons_seconds;
    out.restore_seconds = rep.restore_seconds;
    out.hang_wait_seconds = rep.hang_wait_seconds;
    out.injected = rep.injected;
    out.located = rep.located;
    out.site_match = sites_match(rep.injected, rep.located);
    out.factor_error = abft::relative_error(launcher.lu(), clean_lu);
    // Recovered = the run survived AND produced the right answer: the
    // checksum invariants hold and the factors match the uninjected run
    // (bitwise for kill/torn via restore+replay; to reconstruction rounding
    // for flips).
    out.recovered =
        rep.completed && rep.residual < 1e-7 && out.factor_error < 1e-8;
    if (!out.recovered) ++report.unrecovered;
    report.cells.push_back(out);
    cleanup(storage);
  }

  double sum = 0.0;
  for (const CellOutcome& c : report.cells) {
    sum += c.ratio;
    report.max_ratio = std::max(report.max_ratio, c.ratio);
  }
  report.mean_ratio =
      report.cells.empty() ? 0.0 : sum / static_cast<double>(report.cells.size());
  return report;
}

// --- the "dist" evaluator ---------------------------------------------------

DistEvalOptions& dist_eval_options() {
  static DistEvalOptions opts;
  return opts;
}

namespace {

/// Measures waste by running the miniature protected factorization with the
/// scenario's expected failure count injected as real faults. The launcher
/// forks and the options are process-global, so evaluations serialize on a
/// mutex (the Evaluator contract only demands thread-safety, not
/// parallelism).
class DistEvaluator final : public core::Evaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dist";
  }

  [[nodiscard]] core::EvalResult evaluate(
      core::Protocol p, const core::ScenarioParams& s,
      const core::EvalContext& ctx) const override {
    static std::mutex mutex;
    const std::lock_guard<std::mutex> lock(mutex);

    const DistEvalOptions& opts = dist_eval_options();
    DistConfig cfg;
    cfg.n = opts.n;
    cfg.nb = opts.nb;
    cfg.ranks = opts.ranks;
    cfg.group = opts.group;
    cfg.ckpt_every = opts.ckpt_every;
    cfg.seed = ctx.mc.seed;
    const std::size_t nbk = cfg.n / cfg.nb;

    // Scenario → injection schedule: the expected failure count over the
    // run, placed systematically (mid-interval), round-robin over ranks.
    // Under the ABFT protocol the library-phase share α of failures is
    // absorbed by checksum reconstruction (flips); the rest — and every
    // failure under the checkpoint-only protocols — costs a rollback
    // (kills).
    const double expected =
        s.platform.mtbf > 0.0 ? s.total_work() / s.platform.mtbf : 1.0;
    const std::size_t faults = static_cast<std::size_t>(std::clamp<double>(
        std::llround(expected), 1.0, static_cast<double>(nbk)));
    const bool abft = p == core::Protocol::AbftPeriodicCkpt;
    const std::size_t flips =
        abft ? static_cast<std::size_t>(
                   std::llround(s.epoch.alpha * static_cast<double>(faults)))
             : 0;

    std::vector<Injection> plan;
    for (std::size_t i = 0; i < faults; ++i) {
      Injection inj;
      inj.step = static_cast<std::size_t>(
          (static_cast<double>(i) + 0.5) * static_cast<double>(nbk) /
          static_cast<double>(faults));
      inj.rank = i % cfg.ranks;
      inj.kind = i < flips ? FaultKind::Flip : FaultKind::Kill;
      plan.push_back(inj);
    }

    core::EvalResult result;
    try {
      auto clean_backend = ckpt::io::make_backend(opts.storage);
      Launcher clean(cfg, *clean_backend);
      const RunReport clean_rep = clean.run();

      auto faulty_backend = ckpt::io::make_backend(opts.storage);
      Launcher faulty(cfg, *faulty_backend);
      const RunReport faulty_rep = faulty.run(plan);

      result.valid = clean_rep.completed && faulty_rep.completed;
      result.t_final = faulty_rep.wall_seconds;
      result.failures = static_cast<double>(faults);
      result.abft_active = abft;
      result.waste =
          faulty_rep.wall_seconds > clean_rep.wall_seconds
              ? 1.0 - clean_rep.wall_seconds / faulty_rep.wall_seconds
              : 0.0;
    } catch (const std::exception&) {
      result.valid = false;
      result.waste = 1.0;
    }
    return result;
  }
};

}  // namespace

void register_dist_evaluator() {
  if (core::EvaluatorRegistry::instance().find("dist") != nullptr) return;
  core::EvaluatorRegistry::instance().add(std::make_unique<DistEvaluator>());
}

}  // namespace abftc::dist

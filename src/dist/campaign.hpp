#pragma once
/// \file campaign.hpp
/// Campaign execution over the dist runtime, and the "dist" Evaluator that
/// plugs measured survival into the experiment engine.
///
/// `run_campaign` executes every cell of a CampaignSpec shard: one fresh
/// Launcher per cell over a fresh storage backend, with the cell's fault
/// injected for real (SIGKILL / bit flip / torn checkpoint write). Each
/// cell's measured wall time is compared against a model-predicted
/// completion time assembled from a calibration pass:
///
///   kill  t = t_clean + restore + Σ step_s[c..s]   (c = covering boundary)
///   torn  same, with c the boundary *before* the torn one (the restore
///         falls back past the torn snapshot)
///   flip  t = t_clean + locate + recons + check  (+ a detection check when
///         not blind; blind runs already pay per-boundary checks in t_clean)
///   flip2 t = t_clean + locate + restore + Σ step_s[c..s]  (localization
///         names two block rows → reconstruction is skipped, the ladder
///         escalates straight to the covering checkpoint)
///   hang  t = t_clean + deadline + restore + Σ step_s[c..s]  (the victim
///         sits out the hang deadline before SIGKILL + respawn)
///
/// With `blind = true` the cells run with per-boundary verification and the
/// launcher is never told where (or when) a fault landed: detection comes
/// from the invariant, localization from the weighted/unweighted residual
/// ratio. Each cell records the injector's ground-truth sites next to the
/// derived ones so the record proves localization worked (`site_match`).
///
/// — the measured-vs-model ratio is the paper's model-validation move
/// (Section V-A) applied to real process death instead of simulated clocks.
///
/// The "dist" Evaluator miniaturizes a ScenarioParams into a campaign-style
/// run: the scenario's expected failure count is injected as systematically
/// placed faults (flips for the ABFT protocol's library phase share, kills
/// otherwise) and waste = 1 − t_clean/t_faulty is measured, not modeled.

#include <cstdint>
#include <string>
#include <vector>

#include "dist/fault.hpp"
#include "dist/launcher.hpp"

namespace abftc::dist {

/// Constants measured before the cells run, from which per-cell predicted
/// times are assembled.
struct Calibration {
  double t_clean = 0.0;  ///< uninjected wall time (checkpoint writes incl.)
  std::vector<double> step_seconds;  ///< per block step, from the clean run
  double restore_s = 0.0;  ///< newest-restorable read + verify
  double check_s = 0.0;    ///< checksum-residual verification sweep
  double recons_s = 0.0;   ///< one block reconstruction
  double locate_s = 0.0;   ///< one weighted/unweighted localization sweep
  /// Hang cells run with this step deadline (derived from the calibrated
  /// step times so a hang cell doesn't sit out the default 30 s).
  double hang_timeout_s = 0.0;
};

struct CellOutcome {
  Cell cell;
  bool recovered = false;  ///< completed, residual clean, factors match
  double measured_seconds = 0.0;
  double predicted_seconds = 0.0;
  double ratio = 0.0;  ///< measured / predicted
  double residual = 0.0;
  double factor_error = 0.0;  ///< relative error of the factors vs clean
  std::size_t restores = 0, reconstructions = 0, respawns = 0;
  std::size_t escalations = 0, hangs = 0;
  // Per-rung timing breakdown, so measured-vs-model attributes cost to the
  // rung the recovery actually took.
  double check_seconds = 0.0, locate_seconds = 0.0, recons_seconds = 0.0,
         restore_seconds = 0.0, hang_wait_seconds = 0.0;
  std::vector<FaultSite> injected;  ///< ground truth (record only)
  std::vector<FaultSite> located;   ///< derived by locate_fault()
  /// Derived sites == injected sites (as sets). Trivially true for cells
  /// that inject no corruption (kill/torn/hang).
  bool site_match = false;
};

struct CampaignOptions {
  std::string storage = "memory";  ///< make_backend spec; non-memory specs
                                   ///< get a per-cell path suffix
  std::size_t shard = 0;           ///< this invocation's shard index
  std::size_t nshards = 1;         ///< total shards (cells: i % nshards)
  /// Run every cell (and the calibration) blind: per-boundary verification,
  /// localization from residuals only — injection sites never reach the
  /// launcher's recovery paths.
  bool blind = false;
};

struct CampaignReport {
  DistConfig config;
  CampaignSpec spec;
  CampaignOptions options;
  Calibration calib;
  std::vector<CellOutcome> cells;  ///< this shard's cells, ascending index
  std::size_t unrecovered = 0;
  double mean_ratio = 0.0;
  double max_ratio = 0.0;
};

/// Execute one shard of a campaign. `cfg.seed` is the root seed: it fixes
/// the matrix everywhere and derives each cell's flip site via
/// cell_seed(seed, index), so shards merge deterministically and any cell
/// replays in isolation.
[[nodiscard]] CampaignReport run_campaign(const DistConfig& cfg,
                                          const CampaignSpec& spec,
                                          const CampaignOptions& options = {});

/// Shape of the miniature run the "dist" evaluator performs per scenario.
/// Process-global (like the kernel policy): bench drivers configure it once
/// before evaluating.
struct DistEvalOptions {
  std::size_t n = 96, nb = 16, ranks = 2, group = 3, ckpt_every = 2;
  std::string storage = "memory";
};
[[nodiscard]] DistEvalOptions& dist_eval_options();

/// Register the "dist" evaluator in the process-global EvaluatorRegistry
/// (idempotent). Series naming evaluator "dist" then measure waste by
/// running real injected factorizations instead of evaluating formulas.
void register_dist_evaluator();

}  // namespace abftc::dist

#include "dist/fault.hpp"

#include <cerrno>
#include <cstdlib>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace abftc::dist {

std::string_view to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::Kill: return "kill";
    case FaultKind::Flip: return "flip";
    case FaultKind::Torn: return "torn";
    case FaultKind::Hang: return "hang";
    case FaultKind::Flip2: return "flip2";
  }
  return "?";
}

namespace {

FaultKind kind_from(std::string_view name) {
  if (name == "kill") return FaultKind::Kill;
  if (name == "flip") return FaultKind::Flip;
  if (name == "torn") return FaultKind::Torn;
  if (name == "hang") return FaultKind::Hang;
  if (name == "flip2") return FaultKind::Flip2;
  ABFTC_REQUIRE(false, "unknown fault kind '" + std::string(name) +
                           "' (known: kill, flip, torn, hang, flip2)");
}

/// "LO-HI" or a single "N" (both bounds inclusive).
void parse_range(const std::string& text, std::string_view key,
                 std::size_t& lo, std::size_t& hi) {
  const auto parse_one = [&](const std::string& s) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    ABFTC_REQUIRE(!s.empty() && end == s.c_str() + s.size() && errno == 0,
                  "campaign " + std::string(key) + " range has a malformed " +
                      "number in '" + text + "'");
    return static_cast<std::size_t>(v);
  };
  const auto dash = text.find('-');
  if (dash == std::string::npos) {
    lo = hi = parse_one(text);
  } else {
    lo = parse_one(text.substr(0, dash));
    hi = parse_one(text.substr(dash + 1));
  }
  ABFTC_REQUIRE(lo <= hi, "campaign " + std::string(key) + " range '" + text +
                              "' is descending");
}

}  // namespace

CampaignSpec CampaignSpec::parse(std::string_view text) {
  const auto items = common::parse_key_values(text, ',', ':');
  CampaignSpec spec;
  bool have_steps = false, have_ranks = false;
  for (const common::KeyValue& kv : items) {
    if (kv.key == "steps") {
      parse_range(kv.value, "steps", spec.step_lo, spec.step_hi);
      have_steps = true;
    } else if (kv.key == "ranks") {
      parse_range(kv.value, "ranks", spec.rank_lo, spec.rank_hi);
      have_ranks = true;
    } else if (kv.key == "kinds") {
      std::size_t start = 0;
      const std::string& v = kv.value;
      while (start <= v.size()) {
        std::size_t end = v.find('+', start);
        if (end == std::string::npos) end = v.size();
        spec.kinds.push_back(kind_from(v.substr(start, end - start)));
        if (end == v.size()) break;
        start = end + 1;
      }
    } else {
      ABFTC_REQUIRE(false, "unknown campaign key '" + kv.key +
                               "' (known: steps, ranks, kinds)");
    }
  }
  ABFTC_REQUIRE(have_steps, "campaign spec needs steps:LO-HI");
  ABFTC_REQUIRE(have_ranks, "campaign spec needs ranks:LO-HI");
  ABFTC_REQUIRE(!spec.kinds.empty(),
                "campaign spec needs kinds:kill+flip+torn+hang+flip2 "
                "(any subset)");
  return spec;
}

Cell CampaignSpec::cell(std::size_t index) const {
  ABFTC_REQUIRE(index < cell_count(), "campaign cell index out of range");
  const std::size_t nk = kinds.size();
  const std::size_t per_step = ranks() * nk;
  Cell c;
  c.index = index;
  c.step = step_lo + index / per_step;
  c.rank = rank_lo + (index % per_step) / nk;
  c.kind = kinds[index % nk];
  return c;
}

std::vector<std::size_t> CampaignSpec::shard_indices(
    std::size_t shard, std::size_t nshards) const {
  ABFTC_REQUIRE(nshards > 0 && shard < nshards,
                "shard must satisfy shard < nshards");
  std::vector<std::size_t> out;
  for (std::size_t i = shard; i < cell_count(); i += nshards)
    out.push_back(i);
  return out;
}

std::string CampaignSpec::to_spec() const {
  std::string s = "steps:" + std::to_string(step_lo) + "-" +
                  std::to_string(step_hi) + ",ranks:" +
                  std::to_string(rank_lo) + "-" + std::to_string(rank_hi) +
                  ",kinds:";
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    if (i > 0) s += '+';
    s += to_string(kinds[i]);
  }
  return s;
}

std::uint64_t cell_seed(std::uint64_t root_seed,
                        std::size_t cell_index) noexcept {
  std::uint64_t state =
      root_seed ^ (0x9e3779b97f4a7c15ULL * (cell_index + 1));
  return common::splitmix64(state);
}

}  // namespace abftc::dist

#include "dist/launcher.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "abft/checksum.hpp"
#include "abft/kernels.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace abftc::dist {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint32_t payload_crc(const void* data, std::size_t bytes) {
  return common::crc32(std::span<const std::byte>(
      static_cast<const std::byte*>(data), bytes));
}

/// Region ids of a dist snapshot.
constexpr ckpt::RegionId kRegionProgress = 0;
constexpr ckpt::RegionId kRegionMatrix = 1;
constexpr ckpt::RegionId kRegionActive = 2;
constexpr ckpt::RegionId kRegionFrozen = 3;

}  // namespace

struct Launcher::Rank {
  pid_t pid = -1;
  int ready_fd = -1;  ///< read end of the ready pipe (POLLHUP = dead)
  std::uint64_t rsp_seen = 0;
};

Launcher::Launcher(DistConfig cfg, ckpt::io::StorageBackend& backend)
    : cfg_(cfg), backend_(backend) {
  layout_ = DistLayout::compute(cfg_.n, cfg_.nb, cfg_.group, cfg_.ranks);
  nbk_ = layout_.nbk;
  ABFTC_REQUIRE(cfg_.ckpt_every > 0, "ckpt_every must be positive");
  ranks_.resize(cfg_.ranks);
}

Launcher::~Launcher() { reap_all(); }

void Launcher::reap_all() noexcept {
  for (Rank& r : ranks_) {
    if (r.pid > 0) {
      ::kill(r.pid, SIGKILL);
      int status = 0;
      ::waitpid(r.pid, &status, 0);
      r.pid = -1;
    }
    if (r.ready_fd >= 0) {
      ::close(r.ready_fd);
      r.ready_fd = -1;
    }
  }
}

void Launcher::spawn(std::size_t r) {
  int fds[2];
  if (::pipe(fds) != 0) throw dist_error("pipe() for ready handshake failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw dist_error("fork() of worker rank failed");
  }
  if (pid == 0) {
    ::close(fds[0]);
    worker_main(arena_->data(), layout_, r, fds[1]);  // never returns
  }
  ::close(fds[1]);
  // Wait for the one-byte ready handshake; a child that dies before serving
  // shows up as POLLHUP here instead of hanging the launcher.
  pollfd pfd{fds[0], POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 10'000);
  char byte = 0;
  if (rc <= 0 || ::read(fds[0], &byte, 1) != 1) {
    ::close(fds[0]);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw dist_error("worker rank " + std::to_string(r) +
                     " failed the ready handshake");
  }
  ranks_[r].pid = pid;
  ranks_[r].ready_fd = fds[0];
  ranks_[r].rsp_seen = shared_.rsp[r].seq.load(std::memory_order_acquire);
}

bool Launcher::await_done(std::size_t r, std::size_t k, RunReport& report) {
  (void)report;
  Rank& rank = ranks_[r];
  const auto t0 = Clock::now();
  while (true) {
    if (rank.pid > 0) {
      if (auto msg = try_recv(shared_.rsp[r], rank.rsp_seen)) {
        if (msg->type != MsgType::Done || msg->args[0] != k)
          throw dist_error("rank " + std::to_string(r) +
                           " answered out of protocol at step " +
                           std::to_string(k));
        return true;
      }
      int status = 0;
      const pid_t reaped = ::waitpid(rank.pid, &status, WNOHANG);
      if (reaped == rank.pid) {  // rank died mid-step
        rank.pid = -1;
        ::close(rank.ready_fd);
        rank.ready_fd = -1;
        return false;
      }
    } else {
      return false;  // already known dead (killed before this wait)
    }
    if (seconds_since(t0) > cfg_.step_timeout_s) {
      // A hung rank is indistinguishable from a dead one to the protocol:
      // make it dead and let the death path recover.
      ::kill(rank.pid, SIGKILL);
      int status = 0;
      ::waitpid(rank.pid, &status, 0);
      rank.pid = -1;
      ::close(rank.ready_fd);
      rank.ready_fd = -1;
      return false;
    }
    timespec nap{0, 50'000};
    ::nanosleep(&nap, nullptr);
  }
}

ckpt::io::SnapshotBlob Launcher::make_blob(std::size_t step) const {
  ckpt::io::SnapshotBlob blob;
  blob.meta.id = static_cast<ckpt::CkptId>(step + 1);
  blob.meta.kind = ckpt::CkptKind::Full;
  blob.meta.when = static_cast<double>(step);

  const std::uint64_t progress[2] = {step, frozen_steps_};
  const std::size_t mat_bytes = layout_.n * layout_.n * sizeof(double);
  const std::size_t cs_bytes = layout_.csr * layout_.n * sizeof(double);
  const struct {
    ckpt::RegionId id;
    const void* src;
    std::size_t bytes;
  } regions[] = {
      {kRegionProgress, progress, sizeof(progress)},
      {kRegionMatrix, shared_.matrix, mat_bytes},
      {kRegionActive, shared_.active, cs_bytes},
      {kRegionFrozen, shared_.frozen, cs_bytes},
  };
  for (const auto& r : regions) {
    ckpt::io::RegionBlob rb;
    rb.region = r.id;
    rb.payload.resize(r.bytes);
    std::memcpy(rb.payload.data(), r.src, r.bytes);
    rb.crc = payload_crc(rb.payload.data(), r.bytes);
    blob.regions.push_back(std::move(rb));
    blob.meta.bytes += r.bytes;
  }
  return blob;
}

void Launcher::load_blob(const ckpt::io::SnapshotBlob& blob) {
  const std::size_t mat_bytes = layout_.n * layout_.n * sizeof(double);
  const std::size_t cs_bytes = layout_.csr * layout_.n * sizeof(double);
  std::uint64_t progress[2] = {0, 0};
  for (const ckpt::io::RegionBlob& r : blob.regions) {
    switch (r.region) {
      case kRegionProgress:
        ABFTC_CHECK(r.payload.size() == sizeof(progress),
                    "dist snapshot progress region has the wrong size");
        std::memcpy(progress, r.payload.data(), sizeof(progress));
        break;
      case kRegionMatrix:
        ABFTC_CHECK(r.payload.size() == mat_bytes,
                    "dist snapshot matrix region has the wrong size");
        std::memcpy(shared_.matrix, r.payload.data(), mat_bytes);
        break;
      case kRegionActive:
        ABFTC_CHECK(r.payload.size() == cs_bytes,
                    "dist snapshot active-checksum region has the wrong size");
        std::memcpy(shared_.active, r.payload.data(), cs_bytes);
        break;
      case kRegionFrozen:
        ABFTC_CHECK(r.payload.size() == cs_bytes,
                    "dist snapshot frozen-checksum region has the wrong size");
        std::memcpy(shared_.frozen, r.payload.data(), cs_bytes);
        break;
      default:
        ABFTC_CHECK(false, "dist snapshot has an unknown region");
    }
  }
  frozen_steps_ = static_cast<std::size_t>(progress[1]);
}

void Launcher::checkpoint(std::size_t boundary, RunReport& report) {
  // Replay revisits earlier boundaries; their snapshots already exist (or
  // already failed), so only first encounters write.
  if (max_boundary_attempted_ != std::numeric_limits<std::size_t>::max() &&
      boundary <= max_boundary_attempted_)
    return;
  max_boundary_attempted_ = boundary;
  ++report.checkpoints;
  try {
    backend_.write_snapshot(make_blob(boundary));
  } catch (const ckpt::io::io_error&) {
    // An injected (or real) commit failure costs this protection point but
    // not the run: recovery falls back to the previous snapshot.
  }
}

std::size_t Launcher::restore_and_respawn(RunReport& report) {
  const auto t0 = Clock::now();
  const auto blob = ckpt::io::latest_restorable(backend_);
  load_blob(blob ? *blob : initial_);
  const std::size_t resume = frozen_steps_;
  report.restore_seconds += seconds_since(t0);
  ++report.restores;
  report.restored_to_steps.push_back(resume);

  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    if (ranks_[r].pid > 0) continue;
    reset(shared_.cmd[r]);
    reset(shared_.rsp[r]);
    spawn(r);
    ++report.respawns;
  }
  return resume;
}

double Launcher::residual_now() const {
  // Recompute both accumulators from the payload (AbftLu::checksum_residual
  // over the arena): the invariant holds at every step boundary, so any
  // excess residual is silent corruption.
  const abft::ConstMatrixView a(shared_.matrix, layout_.n, layout_.n,
                                layout_.n);
  const abft::ConstMatrixView active(shared_.active, layout_.csr, layout_.n,
                                     layout_.n);
  const abft::ConstMatrixView frozen(shared_.frozen, layout_.csr, layout_.n,
                                     layout_.n);
  double worst = 0.0;
  for (std::size_t g = 0; g < layout_.groups; ++g) {
    for (std::size_t r = 0; r < layout_.nb; ++r) {
      for (std::size_t j = 0; j < layout_.n; ++j) {
        double expect_active = 0.0, expect_frozen = 0.0;
        for (std::size_t m = 0; m < layout_.group; ++m) {
          const std::size_t bi = g * layout_.group + m;
          const double v = a(bi * layout_.nb + r, j);
          (bi < frozen_steps_ ? expect_frozen : expect_active) += v;
        }
        const std::size_t row = g * layout_.nb + r;
        worst = std::max(worst, std::abs(expect_active - active(row, j)));
        worst = std::max(worst, std::abs(expect_frozen - frozen(row, j)));
      }
    }
  }
  return worst;
}

void Launcher::inject_flip(const Injection& inj, std::uint64_t seed,
                           RunReport& report) {
  abft::MatrixView a = shared_.a();
  common::Rng rng(seed);

  // Victim site: an owned column block of the victim rank, any block row,
  // preferring an element large enough that one exponent-bit flip moves the
  // residual far above the clean-run noise floor.
  std::vector<std::size_t> owned;
  for (std::size_t j = inj.rank; j < nbk_; j += cfg_.ranks) owned.push_back(j);
  ABFTC_CHECK(!owned.empty(), "victim rank owns no columns");
  std::size_t bi = 0, bj = 0, er = 0, ec = 0;
  double value = 0.0;
  for (int probe = 0; probe < 1000; ++probe) {
    bj = owned[rng.below(owned.size())];
    bi = rng.below(nbk_);
    er = rng.below(cfg_.nb);
    ec = rng.below(cfg_.nb);
    value = a(bi * cfg_.nb + er, bj * cfg_.nb + ec);
    if (std::abs(value) > 1e-3) break;
  }
  ABFTC_CHECK(value != 0.0, "could not find a nonzero element to corrupt");

  // Flip one exponent bit (52–62 of the IEEE-754 representation): the
  // element changes by at least a factor of 2, the way a DRAM upset in the
  // high bits would corrupt it.
  std::uint64_t bits = 0;
  double& victim = a(bi * cfg_.nb + er, bj * cfg_.nb + ec);
  std::memcpy(&bits, &victim, sizeof(bits));
  bits ^= std::uint64_t{1} << (52 + rng.below(11));
  std::memcpy(&victim, &bits, sizeof(bits));

  // Detection: the checksum invariant no longer holds.
  auto t0 = Clock::now();
  const double res = residual_now();
  report.check_seconds += seconds_since(t0);
  ABFTC_CHECK(res > 1e-8, "injected bit flip was not detected");

  // Localization uses the campaign's ground truth (bi, bj) — standing in
  // for a Huang–Abraham weighted-checksum locate (ROADMAP follow-up) —
  // then reconstruction is the real dual-accumulator algebra: wipe the
  // block, start from the matching accumulator, subtract the surviving
  // group members in the same frozen/active class.
  t0 = Clock::now();
  const bool frozen = bi < frozen_steps_;
  const abft::ConstMatrixView cs =
      frozen ? abft::ConstMatrixView(shared_.frozen, layout_.csr, layout_.n,
                                     layout_.n)
             : abft::ConstMatrixView(shared_.active, layout_.csr, layout_.n,
                                     layout_.n);
  abft::MatrixView lost =
      a.block(bi * cfg_.nb, bj * cfg_.nb, cfg_.nb, cfg_.nb);
  abft::fill(lost, std::numeric_limits<double>::quiet_NaN());
  const std::size_t g = bi / cfg_.group;
  for (std::size_t r = 0; r < cfg_.nb; ++r)
    for (std::size_t c = 0; c < cfg_.nb; ++c)
      lost(r, c) = cs(g * cfg_.nb + r, bj * cfg_.nb + c);
  const std::size_t first = g * cfg_.group;
  for (std::size_t mi = first; mi < first + cfg_.group; ++mi) {
    if (mi == bi) continue;
    if ((mi < frozen_steps_) != frozen) continue;
    const abft::ConstMatrixView other =
        a.block(mi * cfg_.nb, bj * cfg_.nb, cfg_.nb, cfg_.nb);
    if (abft::has_nan(other))
      throw abft::unrecoverable_error(
          "two lost blocks share a checksum group");
    for (std::size_t r = 0; r < cfg_.nb; ++r)
      for (std::size_t c = 0; c < cfg_.nb; ++c) lost(r, c) -= other(r, c);
  }
  report.recons_seconds += seconds_since(t0);
  ++report.reconstructions;
}

RunReport Launcher::run(const std::vector<Injection>& faults) {
  ABFTC_REQUIRE(!ran_, "a Launcher runs once; construct a fresh one");
  ran_ = true;
  for (const Injection& f : faults) {
    ABFTC_REQUIRE(f.step < nbk_, "injection step out of range");
    ABFTC_REQUIRE(f.rank < cfg_.ranks, "injection rank out of range");
  }

  // One inline compute thread for the whole run: the coordinator forks, and
  // a child must never inherit a process whose executor pool is mid-kernel.
  abft::KernelPolicy serial = abft::kernel_policy();
  serial.threads = 1;
  const abft::KernelPolicyGuard guard(serial);

  RunReport report;
  const auto wall0 = Clock::now();

  // --- arena + initial state ------------------------------------------------
  arena_ = std::make_unique<SharedRegion>(layout_.total_bytes);
  shared_ = SharedState::attach(arena_->data(), layout_);
  shared_.ctl->magic = kArenaMagic;
  shared_.ctl->n = cfg_.n;
  shared_.ctl->nb = cfg_.nb;
  shared_.ctl->group = cfg_.group;
  shared_.ctl->nranks = cfg_.ranks;

  common::Rng rng(cfg_.seed);
  const abft::Matrix a0 = abft::Matrix::diag_dominant(cfg_.n, rng);
  std::memcpy(shared_.matrix, a0.storage().data(),
              a0.storage().size() * sizeof(double));
  const abft::Matrix cs0 =
      abft::row_group_checksums(a0, cfg_.nb, cfg_.group);
  std::memcpy(shared_.active, cs0.storage().data(),
              cs0.storage().size() * sizeof(double));
  // frozen starts zero (arena is zero-filled)
  frozen_steps_ = 0;
  initial_ = make_blob(0);

  for (std::size_t r = 0; r < cfg_.ranks; ++r) spawn(r);

  // --- the factorization loop ----------------------------------------------
  std::vector<bool> consumed(faults.size(), false);
  const auto pending_at = [&](std::size_t step) -> const Injection* {
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (!consumed[i] && faults[i].step == step) {
        consumed[i] = true;
        return &faults[i];
      }
    return nullptr;
  };

  std::size_t k = 0;
  while (k < nbk_) {
    if (k % cfg_.ckpt_every == 0) checkpoint(k, report);

    const auto t0 = Clock::now();
    const Injection* inj = pending_at(k);
    const std::size_t owner = owner_of(k, cfg_.ranks);

    post(shared_.cmd[owner], MsgType::Panel, k);
    if (inj != nullptr && inj->kind != FaultKind::Flip) {
      // Kill / torn: SIGKILL the victim mid-step, right after the step's
      // first command went out. (For torn the covering checkpoint write was
      // already torn by the storage decorator.)
      ::kill(ranks_[inj->rank].pid, SIGKILL);
    }
    bool ok = await_done(owner, k, report);

    if (ok) {
      for (std::size_t r = 0; r < cfg_.ranks; ++r)
        post(shared_.cmd[r], MsgType::Update, k);
      // Collect every rank's response before deciding: survivors must
      // finish their writes so the arena is quiescent when we restore.
      for (std::size_t r = 0; r < cfg_.ranks; ++r)
        ok = await_done(r, k, report) && ok;
    }

    if (!ok) {
      k = restore_and_respawn(report);
      continue;
    }

    frozen_steps_ = k + 1;
    if (report.step_seconds.size() == k)  // first execution, not a replay
      report.step_seconds.push_back(seconds_since(t0));

    if (inj != nullptr && inj->kind == FaultKind::Flip) {
      const std::uint64_t base =
          cfg_.flip_seed != 0 ? cfg_.flip_seed : cfg_.seed;
      std::uint64_t mix = base + 0x9e3779b97f4a7c15ULL * (inj->step + 1);
      inject_flip(*inj, common::splitmix64(mix), report);
    }
    ++k;
  }

  // --- final state + teardown ----------------------------------------------
  report.residual = residual_now();
  lu_ = abft::Matrix(layout_.n, layout_.n);
  std::memcpy(lu_.storage().data(), shared_.matrix,
              lu_.storage().size() * sizeof(double));
  active_ = abft::Matrix(layout_.csr, layout_.n);
  std::memcpy(active_.storage().data(), shared_.active,
              active_.storage().size() * sizeof(double));
  frozen_ = abft::Matrix(layout_.csr, layout_.n);
  std::memcpy(frozen_.storage().data(), shared_.frozen,
              frozen_.storage().size() * sizeof(double));

  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    if (ranks_[r].pid <= 0) continue;
    post(shared_.cmd[r], MsgType::Shutdown);
    (void)await_done(r, 0, report);
    if (ranks_[r].pid > 0) {
      int status = 0;
      ::waitpid(ranks_[r].pid, &status, 0);
      ranks_[r].pid = -1;
      ::close(ranks_[r].ready_fd);
      ranks_[r].ready_fd = -1;
    }
  }
  report.wall_seconds = seconds_since(wall0);
  report.completed = true;
  return report;
}

}  // namespace abftc::dist

#include "dist/launcher.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "abft/checksum.hpp"
#include "abft/kernels.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"

namespace abftc::dist {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

std::uint32_t payload_crc(const void* data, std::size_t bytes) {
  return common::crc32(std::span<const std::byte>(
      static_cast<const std::byte*>(data), bytes));
}

/// Region ids of a dist snapshot.
constexpr ckpt::RegionId kRegionProgress = 0;
constexpr ckpt::RegionId kRegionMatrix = 1;
constexpr ckpt::RegionId kRegionActive = 2;
constexpr ckpt::RegionId kRegionFrozen = 3;
constexpr ckpt::RegionId kRegionWActive = 4;
constexpr ckpt::RegionId kRegionWFrozen = 5;

/// A residual above this is corruption (the clean-run noise is orders of
/// magnitude below at the shapes the runtime handles).
constexpr double kDetectFloor = 1e-8;

/// Minimum post-flip |Δ| the injector accepts: 10⁴× the detection floor, so
/// a chosen site *provably* clears it instead of hoping the element was big.
constexpr double kFlipMargin = 1e-4;

/// Maximum post-flip magnitude the injector accepts. A top-exponent-bit flip
/// can land just under DBL_MAX — finite, but the weighted accumulator
/// recomputation multiplies it by the group position, overflowing r2 to Inf
/// and turning a localizable single flip into an unresolvable column. Capped
/// far enough below DBL_MAX that w·Δ plus the surviving addends stays
/// finite for any realistic group size.
constexpr double kFlipMagnitudeCap = 1e300;

}  // namespace

struct Launcher::Rank {
  pid_t pid = -1;
  int ready_fd = -1;  ///< read end of the ready pipe (POLLHUP = dead)
  std::uint64_t rsp_seen = 0;
};

Launcher::Launcher(DistConfig cfg, ckpt::io::StorageBackend& backend)
    : cfg_(cfg), backend_(backend) {
  layout_ = DistLayout::compute(cfg_.n, cfg_.nb, cfg_.group, cfg_.ranks);
  nbk_ = layout_.nbk;
  ABFTC_REQUIRE(cfg_.ckpt_every > 0, "ckpt_every must be positive");
  ranks_.resize(cfg_.ranks);
  // Resolved here, outside the serial KernelPolicyGuard that run() holds:
  // the residual sweep passes this thread count to parallel_for explicitly.
  verify_threads_ =
      cfg_.verify_threads != 0
          ? cfg_.verify_threads
          : std::min(4u, std::max(1u, std::thread::hardware_concurrency()));
}

Launcher::~Launcher() { reap_all(); }

void Launcher::reap_all() noexcept {
  for (Rank& r : ranks_) {
    if (r.pid > 0) {
      ::kill(r.pid, SIGKILL);
      int status = 0;
      ::waitpid(r.pid, &status, 0);
      r.pid = -1;
    }
    if (r.ready_fd >= 0) {
      ::close(r.ready_fd);
      r.ready_fd = -1;
    }
  }
}

void Launcher::spawn(std::size_t r) {
  int fds[2];
  if (::pipe(fds) != 0) throw dist_error("pipe() for ready handshake failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw dist_error("fork() of worker rank failed");
  }
  if (pid == 0) {
    ::close(fds[0]);
    worker_main(arena_->data(), layout_, r, fds[1]);  // never returns
  }
  ::close(fds[1]);
  // Wait for the one-byte ready handshake; a child that dies before serving
  // shows up as POLLHUP here instead of hanging the launcher.
  pollfd pfd{fds[0], POLLIN, 0};
  const int rc = ::poll(&pfd, 1, 10'000);
  char byte = 0;
  if (rc <= 0 || ::read(fds[0], &byte, 1) != 1) {
    ::close(fds[0]);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw dist_error("worker rank " + std::to_string(r) +
                     " failed the ready handshake");
  }
  ranks_[r].pid = pid;
  ranks_[r].ready_fd = fds[0];
  ranks_[r].rsp_seen = shared_.rsp[r].seq.load(std::memory_order_acquire);
}

bool Launcher::await_done(std::size_t r, std::size_t k, RunReport& report) {
  Rank& rank = ranks_[r];
  const auto t0 = Clock::now();
  long nap_ns = 50'000;  // capped exponential backoff, 50 µs → 1 ms
  while (true) {
    if (rank.pid > 0) {
      if (auto msg = try_recv(shared_.rsp[r], rank.rsp_seen)) {
        if (msg->type != MsgType::Done || msg->args[0] != k)
          throw dist_error("rank " + std::to_string(r) +
                           " answered out of protocol at step " +
                           std::to_string(k));
        return true;
      }
      int status = 0;
      const pid_t reaped = ::waitpid(rank.pid, &status, WNOHANG);
      if (reaped == rank.pid) {  // rank died mid-step
        rank.pid = -1;
        ::close(rank.ready_fd);
        rank.ready_fd = -1;
        return false;
      }
    } else {
      return false;  // already known dead (killed before this wait)
    }
    if (seconds_since(t0) > cfg_.step_timeout_s) {
      // Deadline with the rank still alive: waitpid(WNOHANG) above ruled
      // out death, so it is hung — SIGSTOPped, livelocked, or wedged. That
      // distinction (livelock vs death) is worth a separate counter; the
      // remedy is the same: SIGKILL (which stopped processes do honor) and
      // let the death path recover.
      ++report.hangs;
      report.hang_wait_seconds += seconds_since(t0);
      ::kill(rank.pid, SIGKILL);
      int status = 0;
      ::waitpid(rank.pid, &status, 0);
      rank.pid = -1;
      ::close(rank.ready_fd);
      rank.ready_fd = -1;
      return false;
    }
    timespec nap{0, nap_ns};
    ::nanosleep(&nap, nullptr);
    nap_ns = std::min(nap_ns * 2, 1'000'000L);
  }
}

ckpt::io::SnapshotBlob Launcher::make_blob(std::size_t step) const {
  ckpt::io::SnapshotBlob blob;
  blob.meta.id = static_cast<ckpt::CkptId>(step + 1);
  blob.meta.kind = ckpt::CkptKind::Full;
  blob.meta.when = static_cast<double>(step);

  const std::uint64_t progress[2] = {step, frozen_steps_};
  const std::size_t mat_bytes = layout_.n * layout_.n * sizeof(double);
  const std::size_t cs_bytes = layout_.csr * layout_.n * sizeof(double);
  const struct {
    ckpt::RegionId id;
    const void* src;
    std::size_t bytes;
  } regions[] = {
      {kRegionProgress, progress, sizeof(progress)},
      {kRegionMatrix, shared_.matrix, mat_bytes},
      {kRegionActive, shared_.active, cs_bytes},
      {kRegionFrozen, shared_.frozen, cs_bytes},
      {kRegionWActive, shared_.wactive, cs_bytes},
      {kRegionWFrozen, shared_.wfrozen, cs_bytes},
  };
  for (const auto& r : regions) {
    ckpt::io::RegionBlob rb;
    rb.region = r.id;
    rb.payload.resize(r.bytes);
    std::memcpy(rb.payload.data(), r.src, r.bytes);
    rb.crc = payload_crc(rb.payload.data(), r.bytes);
    blob.regions.push_back(std::move(rb));
    blob.meta.bytes += r.bytes;
  }
  return blob;
}

void Launcher::load_blob(const ckpt::io::SnapshotBlob& blob) {
  const std::size_t mat_bytes = layout_.n * layout_.n * sizeof(double);
  const std::size_t cs_bytes = layout_.csr * layout_.n * sizeof(double);
  std::uint64_t progress[2] = {0, 0};
  for (const ckpt::io::RegionBlob& r : blob.regions) {
    switch (r.region) {
      case kRegionProgress:
        ABFTC_CHECK(r.payload.size() == sizeof(progress),
                    "dist snapshot progress region has the wrong size");
        std::memcpy(progress, r.payload.data(), sizeof(progress));
        break;
      case kRegionMatrix:
        ABFTC_CHECK(r.payload.size() == mat_bytes,
                    "dist snapshot matrix region has the wrong size");
        std::memcpy(shared_.matrix, r.payload.data(), mat_bytes);
        break;
      case kRegionActive:
        ABFTC_CHECK(r.payload.size() == cs_bytes,
                    "dist snapshot active-checksum region has the wrong size");
        std::memcpy(shared_.active, r.payload.data(), cs_bytes);
        break;
      case kRegionFrozen:
        ABFTC_CHECK(r.payload.size() == cs_bytes,
                    "dist snapshot frozen-checksum region has the wrong size");
        std::memcpy(shared_.frozen, r.payload.data(), cs_bytes);
        break;
      case kRegionWActive:
        ABFTC_CHECK(r.payload.size() == cs_bytes,
                    "dist snapshot weighted-active region has the wrong size");
        std::memcpy(shared_.wactive, r.payload.data(), cs_bytes);
        break;
      case kRegionWFrozen:
        ABFTC_CHECK(r.payload.size() == cs_bytes,
                    "dist snapshot weighted-frozen region has the wrong size");
        std::memcpy(shared_.wfrozen, r.payload.data(), cs_bytes);
        break;
      default:
        ABFTC_CHECK(false, "dist snapshot has an unknown region");
    }
  }
  frozen_steps_ = static_cast<std::size_t>(progress[1]);
}

void Launcher::checkpoint(std::size_t boundary, RunReport& report) {
  // Replay revisits earlier boundaries; their snapshots already exist (or
  // already failed), so only first encounters write.
  if (max_boundary_attempted_ != std::numeric_limits<std::size_t>::max() &&
      boundary <= max_boundary_attempted_)
    return;
  max_boundary_attempted_ = boundary;
  ++report.checkpoints;
  try {
    backend_.write_snapshot(make_blob(boundary));
  } catch (const ckpt::io::io_error&) {
    // An injected (or real) commit failure costs this protection point but
    // not the run: recovery falls back to the previous snapshot.
  }
}

std::size_t Launcher::restore_and_respawn(RunReport& report) {
  const auto t0 = Clock::now();
  const auto blob = ckpt::io::latest_restorable(backend_);
  load_blob(blob ? *blob : initial_);
  const std::size_t resume = frozen_steps_;
  report.restore_seconds += seconds_since(t0);
  ++report.restores;
  report.restored_to_steps.push_back(resume);

  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    if (ranks_[r].pid > 0) continue;
    reset(shared_.cmd[r]);
    reset(shared_.rsp[r]);
    spawn(r);
    ++report.respawns;
  }
  return resume;
}

double Launcher::residual_now() const {
  // Recompute all four accumulators from the payload (AbftLu's
  // checksum_residual over the arena): the invariants hold at every step
  // boundary, so any excess residual is silent corruption. The sweep is
  // O(n²·group) and sits on the recovery critical path (every detection and
  // every post-reconstruction re-verify), so it runs on parallel_for with
  // one checksum row per index — each worker writes only its own partial
  // slot and the max-fold below runs serially in index order, making the
  // result bitwise-identical for every worker count.
  const abft::ConstMatrixView a(shared_.matrix, layout_.n, layout_.n,
                                layout_.n);
  const abft::ConstMatrixView active(shared_.active, layout_.csr, layout_.n,
                                     layout_.n);
  const abft::ConstMatrixView frozen(shared_.frozen, layout_.csr, layout_.n,
                                     layout_.n);
  const abft::ConstMatrixView wactive(shared_.wactive, layout_.csr, layout_.n,
                                      layout_.n);
  const abft::ConstMatrixView wfrozen(shared_.wfrozen, layout_.csr, layout_.n,
                                      layout_.n);
  std::vector<double> partial(layout_.csr, 0.0);
  // Tiny test shapes stay inline: below ~16k residual columns the dispatch
  // overhead would dominate the sweep itself.
  const unsigned threads =
      layout_.csr * layout_.n >= 16'384 ? verify_threads_ : 1;
  common::parallel_for(
      layout_.csr,
      [&](std::size_t row) {
        const std::size_t g = row / layout_.nb;
        const std::size_t r = row % layout_.nb;
        double worst = 0.0;
        for (std::size_t j = 0; j < layout_.n; ++j) {
          double ea = 0.0, ef = 0.0, wa = 0.0, wf = 0.0;
          for (std::size_t m = 0; m < layout_.group; ++m) {
            const std::size_t bi = g * layout_.group + m;
            const double v = a(bi * layout_.nb + r, j);
            const double w = static_cast<double>(m + 1);
            if (bi < frozen_steps_) {
              ef += v;
              wf += w * v;
            } else {
              ea += v;
              wa += w * v;
            }
          }
          worst = std::max(worst, std::abs(ea - active(row, j)));
          worst = std::max(worst, std::abs(ef - frozen(row, j)));
          worst = std::max(worst, std::abs(wa - wactive(row, j)));
          worst = std::max(worst, std::abs(wf - wfrozen(row, j)));
        }
        partial[row] = worst;
      },
      threads);
  double worst = 0.0;
  for (const double p : partial) worst = std::max(worst, p);
  return worst;
}

Localization locate_corruption(abft::ConstMatrixView a,
                               abft::ConstMatrixView active,
                               abft::ConstMatrixView frozen,
                               abft::ConstMatrixView wactive,
                               abft::ConstMatrixView wfrozen, std::size_t nb,
                               std::size_t group, std::size_t frozen_steps) {
  Localization loc;
  const std::size_t n = a.cols();
  const std::size_t groups = (a.rows() / nb) / group;
  for (std::size_t g = 0; g < groups; ++g) {
    for (std::size_t r = 0; r < nb; ++r) {
      const std::size_t row = g * nb + r;
      for (std::size_t j = 0; j < n; ++j) {
        double ea = 0.0, ef = 0.0, wa = 0.0, wf = 0.0;
        for (std::size_t m = 0; m < group; ++m) {
          const std::size_t bi = g * group + m;
          const double v = a(bi * nb + r, j);
          const double w = static_cast<double>(m + 1);
          if (bi < frozen_steps) {
            ef += v;
            wf += w * v;
          } else {
            ea += v;
            wa += w * v;
          }
        }
        // A single corrupted element with delta d at group position m
        // leaves r1 = d in the sum relation and r2 = (m+1)·d in the
        // weighted one for its class; r2/r1 names the victim exactly.
        const double res1[2] = {ea - active(row, j), ef - frozen(row, j)};
        const double res2[2] = {wa - wactive(row, j), wf - wfrozen(row, j)};
        for (int cls = 0; cls < 2; ++cls) {
          const double r1 = res1[cls], r2 = res2[cls];
          if (std::abs(r1) <= kDetectFloor &&
              std::abs(r2) <= kDetectFloor * static_cast<double>(group + 1))
            continue;  // clean slot (weighted noise scales with the weights)
          if (std::abs(r1) <= kDetectFloor) {
            // Weighted-only residual: cancelling deltas or a corrupted
            // accumulator — no single site explains it.
            loc.ambiguous = true;
            continue;
          }
          const double ratio = r2 / r1;
          const double nearest = std::round(ratio);
          if (nearest < 1.0 || nearest > static_cast<double>(group) ||
              std::abs(ratio - nearest) > 0.05) {
            loc.ambiguous = true;  // not a single-element signature
            continue;
          }
          const std::size_t bi =
              g * group + static_cast<std::size_t>(nearest) - 1;
          if ((bi < frozen_steps) != (cls == 1)) {
            loc.ambiguous = true;  // named row lives in the other class
            continue;
          }
          loc.sites.push_back(FaultSite{bi, j / nb, bi * nb + r, j});
        }
      }
    }
  }
  return loc;
}

Localization Launcher::locate_fault() const {
  return locate_corruption(
      abft::ConstMatrixView(shared_.matrix, layout_.n, layout_.n, layout_.n),
      abft::ConstMatrixView(shared_.active, layout_.csr, layout_.n, layout_.n),
      abft::ConstMatrixView(shared_.frozen, layout_.csr, layout_.n, layout_.n),
      abft::ConstMatrixView(shared_.wactive, layout_.csr, layout_.n,
                            layout_.n),
      abft::ConstMatrixView(shared_.wfrozen, layout_.csr, layout_.n,
                            layout_.n),
      cfg_.nb, cfg_.group, frozen_steps_);
}

void Launcher::reconstruct_block(const FaultSite& site) {
  // Dual-accumulator reconstruction at derived coordinates: wipe the block,
  // start from the matching accumulator, subtract the surviving group
  // members in the same frozen/active class.
  abft::MatrixView a = shared_.a();
  const std::size_t bi = site.block_row, bj = site.block_col;
  const bool frozen = bi < frozen_steps_;
  const abft::ConstMatrixView cs =
      frozen ? abft::ConstMatrixView(shared_.frozen, layout_.csr, layout_.n,
                                     layout_.n)
             : abft::ConstMatrixView(shared_.active, layout_.csr, layout_.n,
                                     layout_.n);
  abft::MatrixView lost = a.block(bi * cfg_.nb, bj * cfg_.nb, cfg_.nb, cfg_.nb);
  const std::size_t g = bi / cfg_.group;
  for (std::size_t r = 0; r < cfg_.nb; ++r)
    for (std::size_t c = 0; c < cfg_.nb; ++c)
      lost(r, c) = cs(g * cfg_.nb + r, bj * cfg_.nb + c);
  const std::size_t first = g * cfg_.group;
  for (std::size_t mi = first; mi < first + cfg_.group; ++mi) {
    if (mi == bi) continue;
    if ((mi < frozen_steps_) != frozen) continue;
    const abft::ConstMatrixView other =
        a.block(mi * cfg_.nb, bj * cfg_.nb, cfg_.nb, cfg_.nb);
    for (std::size_t r = 0; r < cfg_.nb; ++r)
      for (std::size_t c = 0; c < cfg_.nb; ++c) lost(r, c) -= other(r, c);
  }
}

std::size_t Launcher::recover_from_corruption(std::size_t step,
                                              RunReport& report) {
  // Rung 1: localize from the weighted/unweighted residual ratio.
  auto t0 = Clock::now();
  const Localization loc = locate_fault();
  report.locate_seconds += seconds_since(t0);
  ++report.locates;
  for (const FaultSite& s : loc.sites) report.located.push_back(s);

  // Rung 2: clean localization with all damage inside one block →
  // dual-accumulator reconstruction, then re-verify (a wrong or partial
  // repair must not survive into the next step).
  bool one_block = !loc.ambiguous && !loc.sites.empty();
  for (const FaultSite& s : loc.sites)
    one_block = one_block && s.block_row == loc.sites.front().block_row &&
                s.block_col == loc.sites.front().block_col;
  if (one_block) {
    t0 = Clock::now();
    reconstruct_block(loc.sites.front());
    report.recons_seconds += seconds_since(t0);
    ++report.reconstructions;
    t0 = Clock::now();
    const double res = residual_now();
    report.check_seconds += seconds_since(t0);
    if (res <= kDetectFloor) return step + 1;
  }

  // Rung 3+: reconstruction cannot explain (or did not repair) the damage —
  // escalate to the checkpoint ladder. restore_and_respawn itself walks
  // latest_restorable past torn snapshots and bottoms out at the in-memory
  // initial image, so every deeper rung is already inside it.
  ++report.escalations;
  return restore_and_respawn(report);
}

void Launcher::inject_flip(const Injection& inj, std::uint64_t seed,
                           RunReport& report) {
  // Injection ONLY: sites go into report.injected for post-hoc campaign
  // comparison, never into a recovery decision — detection happens at the
  // step-boundary verification and localization is derived from the
  // weighted residuals.
  abft::MatrixView a = shared_.a();
  common::Rng rng(seed);

  std::vector<std::size_t> owned;
  for (std::size_t j = inj.rank; j < nbk_; j += cfg_.ranks) owned.push_back(j);
  ABFTC_CHECK(!owned.empty(), "victim rank owns no columns");

  // Deterministic-retry site selection: flip one exponent bit (52–62 of the
  // IEEE-754 representation — at least a factor-of-2 change, the way a DRAM
  // upset in the high bits corrupts) and accept the site only if the
  // realized |Δ| provably clears the detection floor and the result stays
  // finite (an Inf would break the ratio algebra instead of testing it).
  // Rejected probes re-roll everything, so the choice stays a deterministic
  // function of the seed.
  const auto flip_element = [&](std::size_t fbi, std::size_t fbj,
                                bool any_block,
                                const FaultSite* avoid) -> FaultSite {
    for (int probe = 0; probe < 100'000; ++probe) {
      const std::size_t bj = any_block ? owned[rng.below(owned.size())] : fbj;
      const std::size_t bi = any_block ? rng.below(nbk_) : fbi;
      const std::size_t er = rng.below(cfg_.nb);
      const std::size_t ec = rng.below(cfg_.nb);
      const std::size_t bit = 52 + rng.below(11);
      const std::size_t row = bi * cfg_.nb + er, col = bj * cfg_.nb + ec;
      if (avoid != nullptr && avoid->row == row && avoid->col == col)
        continue;  // flip2 needs two distinct (er, ec) slots
      double& victim = a(row, col);
      const double value = victim;
      if (!std::isfinite(value) || value == 0.0) continue;
      std::uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(bits));
      bits ^= std::uint64_t{1} << bit;
      double flipped = 0.0;
      std::memcpy(&flipped, &bits, sizeof(bits));
      if (!std::isfinite(flipped) || std::abs(flipped) > kFlipMagnitudeCap ||
          std::abs(flipped - value) < kFlipMargin)
        continue;
      victim = flipped;
      return FaultSite{bi, bj, row, col};
    }
    ABFTC_CHECK(false, "no element in the victim blocks cleared the "
                       "detection floor after a bit flip");
    return {};
  };

  if (inj.kind == FaultKind::Flip2) {
    // Two flips in one checksum group, one block column, same frozen/active
    // class, distinct element slots: the located sites land in two distinct
    // block rows, so single-block reconstruction provably cannot repair the
    // damage — the recovery ladder MUST escalate to a restore.
    const std::size_t bj = owned[rng.below(owned.size())];
    const std::size_t g = rng.below(layout_.groups);
    std::vector<std::size_t> frozen_rows, active_rows;
    for (std::size_t m = 0; m < cfg_.group; ++m) {
      const std::size_t bi = g * cfg_.group + m;
      (bi < frozen_steps_ ? frozen_rows : active_rows).push_back(bi);
    }
    // The larger class always has ≥ 2 members for group ≥ 3 (ties, only
    // possible for even groups, go to active).
    std::vector<std::size_t>& rows =
        frozen_rows.size() > active_rows.size() ? frozen_rows : active_rows;
    ABFTC_CHECK(rows.size() >= 2,
                "flip2 needs two same-class rows in one checksum group");
    const std::size_t i1 = rng.below(rows.size());
    std::size_t i2 = rng.below(rows.size());
    while (i2 == i1) i2 = rng.below(rows.size());
    const FaultSite s1 = flip_element(rows[i1], bj, false, nullptr);
    const FaultSite s2 = flip_element(rows[i2], bj, false, &s1);
    report.injected.push_back(s1);
    report.injected.push_back(s2);
  } else {
    report.injected.push_back(flip_element(0, 0, true, nullptr));
  }
}

RunReport Launcher::run(const std::vector<Injection>& faults) {
  ABFTC_REQUIRE(!ran_, "a Launcher runs once; construct a fresh one");
  ran_ = true;
  for (const Injection& f : faults) {
    ABFTC_REQUIRE(f.step < nbk_, "injection step out of range");
    ABFTC_REQUIRE(f.rank < cfg_.ranks, "injection rank out of range");
  }

  // One inline compute thread for the whole run: the coordinator forks, and
  // a child must never inherit a process whose executor pool is mid-kernel.
  abft::KernelPolicy serial = abft::kernel_policy();
  serial.threads = 1;
  const abft::KernelPolicyGuard guard(serial);

  RunReport report;
  const auto wall0 = Clock::now();

  // --- arena + initial state ------------------------------------------------
  arena_ = std::make_unique<SharedRegion>(layout_.total_bytes);
  shared_ = SharedState::attach(arena_->data(), layout_);
  shared_.ctl->magic = kArenaMagic;
  shared_.ctl->n = cfg_.n;
  shared_.ctl->nb = cfg_.nb;
  shared_.ctl->group = cfg_.group;
  shared_.ctl->nranks = cfg_.ranks;

  common::Rng rng(cfg_.seed);
  const abft::Matrix a0 = abft::Matrix::diag_dominant(cfg_.n, rng);
  std::memcpy(shared_.matrix, a0.storage().data(),
              a0.storage().size() * sizeof(double));
  const abft::Matrix cs0 =
      abft::row_group_checksums(a0, cfg_.nb, cfg_.group);
  std::memcpy(shared_.active, cs0.storage().data(),
              cs0.storage().size() * sizeof(double));
  const abft::Matrix wcs0 =
      abft::row_group_weighted_checksums(a0, cfg_.nb, cfg_.group);
  std::memcpy(shared_.wactive, wcs0.storage().data(),
              wcs0.storage().size() * sizeof(double));
  // both frozen accumulators start zero (arena is zero-filled)
  frozen_steps_ = 0;
  initial_ = make_blob(0);

  for (std::size_t r = 0; r < cfg_.ranks; ++r) spawn(r);

  // --- the factorization loop ----------------------------------------------
  std::vector<bool> consumed(faults.size(), false);
  const auto pending_at = [&](std::size_t step) -> const Injection* {
    for (std::size_t i = 0; i < faults.size(); ++i)
      if (!consumed[i] && faults[i].step == step) {
        consumed[i] = true;
        return &faults[i];
      }
    return nullptr;
  };

  std::size_t k = 0;
  while (k < nbk_) {
    if (k % cfg_.ckpt_every == 0) checkpoint(k, report);

    const auto t0 = Clock::now();
    const Injection* inj = pending_at(k);
    const std::size_t owner = owner_of(k, cfg_.ranks);

    post(shared_.cmd[owner], MsgType::Panel, k);
    if (inj != nullptr && inj->kind == FaultKind::Hang) {
      // Hang/livelock: the victim stays alive but stops making progress
      // mid-step. waitpid(WNOHANG) never reaps it — only the response
      // deadline can tell, which is exactly what this cell exercises.
      ::kill(ranks_[inj->rank].pid, SIGSTOP);
    } else if (inj != nullptr && inj->kind != FaultKind::Flip &&
               inj->kind != FaultKind::Flip2) {
      // Kill / torn: SIGKILL the victim mid-step, right after the step's
      // first command went out. (For torn the covering checkpoint write was
      // already torn by the storage decorator.)
      ::kill(ranks_[inj->rank].pid, SIGKILL);
    }
    bool ok = await_done(owner, k, report);

    if (ok) {
      for (std::size_t r = 0; r < cfg_.ranks; ++r)
        post(shared_.cmd[r], MsgType::Update, k);
      // Collect every rank's response before deciding: survivors must
      // finish their writes so the arena is quiescent when we restore.
      for (std::size_t r = 0; r < cfg_.ranks; ++r)
        ok = await_done(r, k, report) && ok;
    }

    if (!ok) {
      k = restore_and_respawn(report);
      continue;
    }

    frozen_steps_ = k + 1;
    if (report.step_seconds.size() == k)  // first execution, not a replay
      report.step_seconds.push_back(seconds_since(t0));

    if (inj != nullptr &&
        (inj->kind == FaultKind::Flip || inj->kind == FaultKind::Flip2)) {
      const std::uint64_t base =
          cfg_.flip_seed != 0 ? cfg_.flip_seed : cfg_.seed;
      std::uint64_t mix = base + 0x9e3779b97f4a7c15ULL * (inj->step + 1);
      inject_flip(*inj, common::splitmix64(mix), report);
    }

    // Verification: a blind run checks the checksum invariant at EVERY
    // boundary — the coordinator knows nothing about injection timing; the
    // legacy mode checks only right after its own injector fired. Either
    // way a residual above the floor enters the escalation ladder, which
    // decides everything from derived localization alone.
    if (cfg_.blind ||
        (inj != nullptr &&
         (inj->kind == FaultKind::Flip || inj->kind == FaultKind::Flip2))) {
      const auto tc = Clock::now();
      const double res = residual_now();
      report.check_seconds += seconds_since(tc);
      if (res > kDetectFloor) {
        k = recover_from_corruption(k, report);
        continue;
      }
    }
    ++k;
  }

  // --- final state + teardown ----------------------------------------------
  report.residual = residual_now();
  lu_ = abft::Matrix(layout_.n, layout_.n);
  std::memcpy(lu_.storage().data(), shared_.matrix,
              lu_.storage().size() * sizeof(double));
  active_ = abft::Matrix(layout_.csr, layout_.n);
  std::memcpy(active_.storage().data(), shared_.active,
              active_.storage().size() * sizeof(double));
  frozen_ = abft::Matrix(layout_.csr, layout_.n);
  std::memcpy(frozen_.storage().data(), shared_.frozen,
              frozen_.storage().size() * sizeof(double));
  wactive_ = abft::Matrix(layout_.csr, layout_.n);
  std::memcpy(wactive_.storage().data(), shared_.wactive,
              wactive_.storage().size() * sizeof(double));
  wfrozen_ = abft::Matrix(layout_.csr, layout_.n);
  std::memcpy(wfrozen_.storage().data(), shared_.wfrozen,
              wfrozen_.storage().size() * sizeof(double));

  for (std::size_t r = 0; r < cfg_.ranks; ++r) {
    if (ranks_[r].pid <= 0) continue;
    post(shared_.cmd[r], MsgType::Shutdown);
    (void)await_done(r, 0, report);
    if (ranks_[r].pid > 0) {
      int status = 0;
      ::waitpid(ranks_[r].pid, &status, 0);
      ranks_[r].pid = -1;
      ::close(ranks_[r].ready_fd);
      ranks_[r].ready_fd = -1;
    }
  }
  report.wall_seconds = seconds_since(wall0);
  report.completed = true;
  return report;
}

}  // namespace abftc::dist

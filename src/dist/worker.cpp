#include "dist/worker.hpp"

#include <unistd.h>

#include <cstring>

#include "abft/blas.hpp"
#include "abft/kernels.hpp"
#include "common/error.hpp"

namespace abftc::dist {

namespace {

constexpr std::size_t align64(std::size_t x) { return (x + 63) & ~std::size_t{63}; }

}  // namespace

DistLayout DistLayout::compute(std::size_t n, std::size_t nb,
                               std::size_t group, std::size_t nranks) {
  ABFTC_REQUIRE(n > 0 && nb > 0 && n % nb == 0,
                "dimension must be a positive multiple of the block size");
  DistLayout lay;
  lay.n = n;
  lay.nb = nb;
  lay.nbk = n / nb;
  ABFTC_REQUIRE(group > 0 && lay.nbk % group == 0,
                "block count must be a multiple of the checksum group size");
  ABFTC_REQUIRE(nranks > 0, "need at least one rank");
  lay.group = group;
  lay.groups = lay.nbk / group;
  lay.csr = lay.groups * nb;
  lay.nranks = nranks;

  std::size_t off = align64(sizeof(ControlBlock));
  lay.cmd_off = off;
  off += nranks * sizeof(Mailbox);
  lay.rsp_off = off;
  off += nranks * sizeof(Mailbox);
  off = align64(off);
  lay.matrix_off = off;
  off += n * n * sizeof(double);
  lay.active_off = off;
  off += lay.csr * n * sizeof(double);
  lay.frozen_off = off;
  off += lay.csr * n * sizeof(double);
  lay.wactive_off = off;
  off += lay.csr * n * sizeof(double);
  lay.wfrozen_off = off;
  off += lay.csr * n * sizeof(double);
  lay.total_bytes = off;
  return lay;
}

SharedState SharedState::attach(void* base, const DistLayout& lay) {
  auto* bytes = static_cast<std::byte*>(base);
  SharedState s;
  s.ctl = reinterpret_cast<ControlBlock*>(bytes);
  s.cmd = reinterpret_cast<Mailbox*>(bytes + lay.cmd_off);
  s.rsp = reinterpret_cast<Mailbox*>(bytes + lay.rsp_off);
  s.matrix = reinterpret_cast<double*>(bytes + lay.matrix_off);
  s.active = reinterpret_cast<double*>(bytes + lay.active_off);
  s.frozen = reinterpret_cast<double*>(bytes + lay.frozen_off);
  s.wactive = reinterpret_cast<double*>(bytes + lay.wactive_off);
  s.wfrozen = reinterpret_cast<double*>(bytes + lay.wfrozen_off);
  s.layout = lay;
  return s;
}

void panel_phase(const SharedState& s, std::size_t k) {
  const DistLayout& lay = s.layout;
  const std::size_t nb = lay.nb;
  const std::size_t off = k * nb;
  const std::size_t rest = lay.n - off - nb;
  const std::size_t g = k / lay.group;
  const double w = static_cast<double>(k % lay.group + 1);
  abft::MatrixView a = s.a();
  abft::MatrixView active = s.active_cs();
  abft::MatrixView wactive = s.wactive_cs();

  // Pre-subtract the pivot block row's column block k from the active
  // accumulators (the other column blocks are pre-subtracted by their owners
  // in the update phase, before anything modifies the pivot row there).
  for (std::size_t r = 0; r < nb; ++r)
    for (std::size_t c = 0; c < nb; ++c) {
      active(g * nb + r, off + c) -= a(off + r, off + c);
      wactive(g * nb + r, off + c) -= w * a(off + r, off + c);
    }

  abft::MatrixView diag = a.block(off, off, nb, nb);
  abft::getf2_nopiv(diag);

  if (rest > 0) abft::trsm_right_upper(diag, a.block(off + nb, off, rest, nb));
  abft::trsm_right_upper(diag, active.block(0, off, lay.csr, nb));
  abft::trsm_right_upper(diag, wactive.block(0, off, lay.csr, nb));
}

void update_phase(const SharedState& s, std::size_t rank, std::size_t k) {
  const DistLayout& lay = s.layout;
  const std::size_t nb = lay.nb;
  const std::size_t off = k * nb;
  const std::size_t g = k / lay.group;
  const double w = static_cast<double>(k % lay.group + 1);
  abft::MatrixView a = s.a();
  abft::MatrixView active = s.active_cs();
  abft::MatrixView frozen = s.frozen_cs();
  abft::MatrixView wactive = s.wactive_cs();
  abft::MatrixView wfrozen = s.wfrozen_cs();
  const abft::ConstMatrixView diag = a.block(off, off, nb, nb);

  for (std::size_t j = rank; j < lay.nbk; j += lay.nranks) {
    const std::size_t jc = j * nb;
    if (j != k) {
      // Pre-subtract the pivot row at this column block (its pre-step
      // values: for j > k the trsm below hasn't touched them yet).
      for (std::size_t r = 0; r < nb; ++r)
        for (std::size_t c = 0; c < nb; ++c) {
          active(g * nb + r, jc + c) -= a(off + r, jc + c);
          wactive(g * nb + r, jc + c) -= w * a(off + r, jc + c);
        }
      if (j > k) {
        abft::MatrixView u = a.block(off, jc, nb, nb);
        abft::trsm_left_lower_unit(diag, u);
        const std::size_t rest = lay.n - off - nb;
        abft::gemm_sub(a.block(off + nb, off, rest, nb), u,
                       a.block(off + nb, jc, rest, nb));
        abft::gemm_sub(active.block(0, off, lay.csr, nb), u,
                       active.block(0, jc, lay.csr, nb));
        abft::gemm_sub(wactive.block(0, off, lay.csr, nb), u,
                       wactive.block(0, jc, lay.csr, nb));
      }
    }
    // Freeze the finalized pivot row values of this column block.
    for (std::size_t r = 0; r < nb; ++r)
      for (std::size_t c = 0; c < nb; ++c) {
        frozen(g * nb + r, jc + c) += a(off + r, jc + c);
        wfrozen(g * nb + r, jc + c) += w * a(off + r, jc + c);
      }
  }
}

void worker_main(void* arena, const DistLayout& lay, std::size_t rank,
                 int ready_fd) {
  // One inline thread, always: the forked child inherits only the calling
  // thread, so the parent's executor pool (and any mutex a pool thread held
  // at fork time) must never be touched. parallel_for with threads <= 1
  // runs inline without consulting the executor.
  abft::KernelPolicy policy = abft::kernel_policy();
  policy.threads = 1;
  abft::set_kernel_policy(policy);

  const SharedState s = SharedState::attach(arena, lay);
  if (s.ctl->magic != kArenaMagic || s.ctl->n != lay.n ||
      s.ctl->nb != lay.nb || s.ctl->group != lay.group ||
      s.ctl->nranks != lay.nranks)
    ::_exit(101);  // attached to the wrong arena; nothing sane to do

  // Snapshot the command cursor BEFORE signalling readiness: the instant
  // the ready byte lands, the coordinator may post the first command, and a
  // snapshot taken after that post would silently swallow it (the worker
  // would then wait on a frame that never comes). The coordinator zeroes
  // the mailboxes before every fork, so this reads 0 for first spawns and
  // respawns alike.
  std::uint64_t last_seen = s.cmd[rank].seq.load(std::memory_order_acquire);

  // Ready handshake: one byte tells the coordinator this rank is serving.
  // The fd stays open for the worker's lifetime — the coordinator sees
  // POLLHUP on it the instant this process dies, however it dies.
  const char ready = 1;
  if (::write(ready_fd, &ready, 1) != 1) ::_exit(102);
  while (true) {
    std::optional<Message> msg;
    try {
      // Effectively blocking: the coordinator decides all timeouts.
      msg = recv(s.cmd[rank], last_seen, 3600.0);
    } catch (const dist_error&) {
      ::_exit(103);  // corrupt frame: die loudly, coordinator recovers
    }
    if (!msg) continue;
    switch (msg->type) {
      case MsgType::Panel:
        panel_phase(s, static_cast<std::size_t>(msg->args[0]));
        post(s.rsp[rank], MsgType::Done, msg->args[0]);
        break;
      case MsgType::Update:
        update_phase(s, rank, static_cast<std::size_t>(msg->args[0]));
        post(s.rsp[rank], MsgType::Done, msg->args[0]);
        break;
      case MsgType::Shutdown:
        post(s.rsp[rank], MsgType::Done, msg->args[0]);
        ::_exit(0);
      default:
        ::_exit(104);
    }
  }
}

}  // namespace abftc::dist

#pragma once
/// \file fault.hpp
/// The fault taxonomy and campaign enumeration of the dist runtime.
///
/// A campaign is a cartesian grid of injection points — {block step} ×
/// {victim rank} × {fault kind} — enumerated in a fixed row-major order
/// (step-major, then rank, then kind) so every cell has a stable index.
/// Sharding is deterministic by that index (cell i belongs to shard
/// i % nshards), so a campaign split across machines covers every cell
/// exactly once and the shards merge by concatenation.
///
/// Kinds:
///   kill — SIGKILL the victim rank right after the step-k command is
///          posted. Recovery: reap, restore the newest restorable snapshot
///          into the shared arena, respawn, replay. Deterministic replay
///          makes the final factors bitwise identical to an uninjected run.
///   flip — after step k completes, flip one mantissa bit (52–62) of a
///          nonzero element in the victim's owned columns. Recovery: the
///          checksum residual detects it; the block is reconstructed from
///          the matching accumulator (frozen for factored block rows,
///          active otherwise) by subtracting the surviving group members.
///   torn — the checkpoint covering step k is torn in storage (committed
///          but corrupt), and the victim is then SIGKILLed at step k, so
///          the restore path must fall back past the torn snapshot.
///   hang — SIGSTOP the victim mid-step: alive but silent, so
///          waitpid(WNOHANG) never fires and only the coordinator's
///          response deadline can tell livelock from death. Recovery:
///          SIGKILL at the deadline, then the death path (restore +
///          respawn + replay).
///   flip2 — two bit flips in one checksum group (same class, same block
///          column, distinct elements). Localization names two block rows,
///          so single-block reconstruction provably cannot repair it — the
///          recovery ladder must escalate to a checkpoint restore.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace abftc::dist {

enum class FaultKind : std::uint8_t { Kill, Flip, Torn, Hang, Flip2 };

[[nodiscard]] std::string_view to_string(FaultKind k) noexcept;

/// One injection point of a campaign.
struct Cell {
  std::size_t index = 0;  ///< position in the campaign's row-major order
  std::size_t step = 0;   ///< block step at which the fault strikes
  std::size_t rank = 0;   ///< victim rank
  FaultKind kind = FaultKind::Kill;
};

/// The campaign grid. Parsed from the `--campaign=` spec syntax:
///
///   steps:LO-HI,ranks:LO-HI,kinds:kill+flip+torn+hang+flip2
///
/// where a range may also be a single value ("steps:3"). Keys may appear
/// in any order; all three are required. Bounds are inclusive.
struct CampaignSpec {
  std::size_t step_lo = 0, step_hi = 0;
  std::size_t rank_lo = 0, rank_hi = 0;
  std::vector<FaultKind> kinds;

  [[nodiscard]] static CampaignSpec parse(std::string_view text);

  [[nodiscard]] std::size_t steps() const noexcept {
    return step_hi - step_lo + 1;
  }
  [[nodiscard]] std::size_t ranks() const noexcept {
    return rank_hi - rank_lo + 1;
  }
  [[nodiscard]] std::size_t cell_count() const noexcept {
    return steps() * ranks() * kinds.size();
  }

  /// Cell i in row-major (step, rank, kind) order; i < cell_count().
  [[nodiscard]] Cell cell(std::size_t index) const;

  /// The cell indices shard `shard` of `nshards` owns (i % nshards ==
  /// shard), ascending. The shards partition [0, cell_count()).
  [[nodiscard]] std::vector<std::size_t> shard_indices(
      std::size_t shard, std::size_t nshards) const;

  /// Canonical spec string (round-trips through parse()).
  [[nodiscard]] std::string to_spec() const;
};

/// The deterministic bit-flip RNG seed for one cell: a splitmix64 mix of
/// the campaign root seed and the cell index, so shards executed on
/// different machines from the same root seed inject identical faults and
/// any single cell can be replayed in isolation with --seed.
[[nodiscard]] std::uint64_t cell_seed(std::uint64_t root_seed,
                                      std::size_t cell_index) noexcept;

}  // namespace abftc::dist

#pragma once
/// \file launcher.hpp
/// The coordinator of the distributed fault-injection runtime.
///
/// `Launcher::run` forks `ranks` worker processes over a shared-memory
/// arena (channel.hpp) and drives the panel-cyclic ABFT LU (worker.hpp)
/// step by step, taking checkpoints through a ckpt::io::StorageBackend at
/// every `ckpt_every`-th block-step boundary and injecting the requested
/// faults. Recovery composes the repo's two protection mechanisms exactly
/// as the paper's composite strategy prescribes:
///
///   process death (kill/torn) → reap via waitpid, restore the newest
///     restorable snapshot (ckpt::io::latest_restorable — skips torn
///     writes) into the arena, respawn the dead rank, replay the lost
///     steps. Workers are stateless between commands, so survivors need no
///     handling at all. If storage holds nothing restorable the run falls
///     back to its in-memory initial image (restart from step 0).
///
///   silent data corruption (flip) → the checksum-invariant residual
///     detects it at the step boundary; the poisoned block is wiped and
///     reconstructed from the matching accumulator by subtracting the
///     surviving group members (the dual-accumulator scheme of AbftLu).
///     Victim-block localization uses the campaign's ground truth — a
///     stand-in for Huang–Abraham weighted checksums, which would locate
///     the block from a second weighted accumulator (see ROADMAP).
///
/// Death detection is a poll loop: each response-wait probe checks the
/// worker's mailbox, then waitpid(WNOHANG), then sleeps ~50 µs — a corpse
/// is noticed within a fraction of a block step. The ready pipe written at
/// spawn doubles as a liveness handle (POLLHUP on death).

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "abft/matrix.hpp"
#include "ckpt/io/backend.hpp"
#include "dist/fault.hpp"
#include "dist/worker.hpp"

namespace abftc::dist {

struct DistConfig {
  std::size_t n = 96;          ///< matrix dimension
  std::size_t nb = 16;         ///< block size (nbk = n / nb block steps)
  std::size_t ranks = 2;       ///< worker processes
  std::size_t group = 3;       ///< block rows per checksum group
  std::size_t ckpt_every = 2;  ///< checkpoint every k-th step boundary
  std::uint64_t seed = 0xABF7C0DEULL;  ///< matrix initialization
  /// Bit-flip site selection; 0 = derive from `seed`. Campaigns set this to
  /// cell_seed(root, index) so every cell flips a distinct, replayable site
  /// while all cells factor the same matrix.
  std::uint64_t flip_seed = 0;
  double step_timeout_s = 30.0;  ///< a rank silent this long is dead
};

/// One injection for a run. Kill and Torn both SIGKILL the victim right
/// after the step's panel command is posted (for Torn the storage decorator
/// has already torn the covering checkpoint); Flip corrupts one element
/// after the step completes.
struct Injection {
  FaultKind kind = FaultKind::Kill;
  std::size_t step = 0;
  std::size_t rank = 0;
};

/// What one run did and what it cost.
struct RunReport {
  bool completed = false;
  double wall_seconds = 0.0;
  /// Per-step wall time of the *first* execution of each step (replayed
  /// executions accrue to wall_seconds and restore/replay accounting only)
  /// — the calibration input for per-cell predicted times.
  std::vector<double> step_seconds;
  std::size_t checkpoints = 0;      ///< snapshot writes attempted
  std::size_t restores = 0;         ///< snapshot restores performed
  std::size_t respawns = 0;         ///< dead ranks re-forked
  std::size_t reconstructions = 0;  ///< checksum block reconstructions
  std::vector<std::size_t> restored_to_steps;  ///< resume step per restore
  double restore_seconds = 0.0;  ///< read + verify + copy-in, summed
  double check_seconds = 0.0;    ///< residual verification, summed
  double recons_seconds = 0.0;   ///< checksum reconstruction, summed
  /// Checksum-invariant residual of the final state.
  double residual = std::numeric_limits<double>::quiet_NaN();
};

class Launcher {
 public:
  /// `backend` is borrowed (campaigns wrap one in a FaultingBackend and
  /// reuse it per cell); it must be open and outlive the launcher.
  Launcher(DistConfig cfg, ckpt::io::StorageBackend& backend);
  ~Launcher();
  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  /// Factor once, injecting `faults` (at most one per step; steps in
  /// [0, nbk)). Callable once per Launcher.
  RunReport run(const std::vector<Injection>& faults = {});

  [[nodiscard]] const DistConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t block_steps() const noexcept { return nbk_; }

  // Final state, copied out of the arena after run() — valid afterwards.
  [[nodiscard]] const abft::Matrix& lu() const noexcept { return lu_; }
  [[nodiscard]] const abft::Matrix& active_cs() const noexcept {
    return active_;
  }
  [[nodiscard]] const abft::Matrix& frozen_cs() const noexcept {
    return frozen_;
  }

 private:
  struct Rank;  // pid + ready fd + mailbox cursors

  void spawn(std::size_t r);
  void reap_all() noexcept;
  [[nodiscard]] bool await_done(std::size_t r, std::size_t k,
                                RunReport& report);
  void checkpoint(std::size_t boundary, RunReport& report);
  [[nodiscard]] std::size_t restore_and_respawn(RunReport& report);
  void inject_flip(const Injection& inj, std::uint64_t seed,
                   RunReport& report);
  [[nodiscard]] double residual_now() const;
  [[nodiscard]] ckpt::io::SnapshotBlob make_blob(std::size_t step) const;
  void load_blob(const ckpt::io::SnapshotBlob& blob);

  DistConfig cfg_;
  ckpt::io::StorageBackend& backend_;
  DistLayout layout_;
  std::size_t nbk_ = 0;
  std::unique_ptr<SharedRegion> arena_;
  SharedState shared_;
  std::vector<Rank> ranks_;
  ckpt::io::SnapshotBlob initial_;  ///< restart-from-scratch fallback
  /// Highest boundary whose checkpoint was already attempted (SIZE_MAX =
  /// none): replay after a restore must not re-write an existing snapshot.
  std::size_t max_boundary_attempted_ = std::numeric_limits<std::size_t>::max();
  std::size_t frozen_steps_ = 0;  ///< block rows frozen in the arena state
  bool ran_ = false;
  abft::Matrix lu_, active_, frozen_;
};

}  // namespace abftc::dist

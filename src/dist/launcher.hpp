#pragma once
/// \file launcher.hpp
/// The coordinator of the distributed fault-injection runtime.
///
/// `Launcher::run` forks `ranks` worker processes over a shared-memory
/// arena (channel.hpp) and drives the panel-cyclic ABFT LU (worker.hpp)
/// step by step, taking checkpoints through a ckpt::io::StorageBackend at
/// every `ckpt_every`-th block-step boundary and injecting the requested
/// faults. Recovery composes the repo's two protection mechanisms exactly
/// as the paper's composite strategy prescribes:
///
///   process death (kill/torn) → reap via waitpid, restore the newest
///     restorable snapshot (ckpt::io::latest_restorable — skips torn
///     writes) into the arena, respawn the dead rank, replay the lost
///     steps. Workers are stateless between commands, so survivors need no
///     handling at all. If storage holds nothing restorable the run falls
///     back to its in-memory initial image (restart from step 0).
///
///   silent data corruption (flip/flip2) → the checksum-invariant residual
///     detects it at a step boundary; the poisoned element is then
///     *localized blind* from the ratio of the weighted and unweighted
///     residual columns (Huang–Abraham: for a single corrupted element the
///     weighted residual is (m+1)× the unweighted one, m = the victim's
///     position inside its checksum group), and recovery climbs an
///     escalating ladder —
///       rung 1  locate_fault(): derive (block-row, block-col, element)
///               from the two residuals; no ground truth is consulted.
///       rung 2  single-block damage, clean localization → wipe + rebuild
///               the block from the matching accumulator, re-verify.
///       rung 3  ambiguous / multi-block / residual persists → restore the
///               newest restorable checkpoint and replay (latest_restorable
///               walks past torn snapshots; the in-memory initial image is
///               the final fallback).
///     Every rung is timed separately in RunReport so measured-vs-model
///     attributes cost to the rung actually taken.
///
///   hang/livelock (hang) → SIGSTOP leaves the victim alive but silent;
///     waitpid(WNOHANG) never reaps it, so only the response deadline
///     fires: the coordinator counts a hang, SIGKILLs the stopped process
///     (which works on stopped processes), and recovers via the death path.
///
/// Death detection is a poll loop: each response-wait probe checks the
/// worker's mailbox, then waitpid(WNOHANG), then naps with capped
/// exponential backoff (50 µs → 1 ms) — a corpse is noticed within a
/// fraction of a block step while hang cells sitting out their deadline
/// don't burn a core. The ready pipe written at spawn doubles as a
/// liveness handle (POLLHUP on death).

#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "abft/matrix.hpp"
#include "ckpt/io/backend.hpp"
#include "dist/fault.hpp"
#include "dist/worker.hpp"

namespace abftc::dist {

struct DistConfig {
  std::size_t n = 96;          ///< matrix dimension
  std::size_t nb = 16;         ///< block size (nbk = n / nb block steps)
  std::size_t ranks = 2;       ///< worker processes
  std::size_t group = 3;       ///< block rows per checksum group
  std::size_t ckpt_every = 2;  ///< checkpoint every k-th step boundary
  std::uint64_t seed = 0xABF7C0DEULL;  ///< matrix initialization
  /// Bit-flip site selection; 0 = derive from `seed`. Campaigns set this to
  /// cell_seed(root, index) so every cell flips a distinct, replayable site
  /// while all cells factor the same matrix.
  std::uint64_t flip_seed = 0;
  double step_timeout_s = 30.0;  ///< a rank silent this long is dead/hung
  /// Blind verification: check the checksum invariant at EVERY step
  /// boundary — the coordinator gets no out-of-band knowledge of when (or
  /// whether) a fault was injected. false keeps the legacy mode that checks
  /// only right after the launcher's own injector fired; localization is
  /// derived from the weighted residuals either way.
  bool blind = false;
  /// Worker threads for the residual sweeps (0 = small hardware-derived
  /// default). The sweep uses fixed per-row output slots + a serial
  /// max-fold, so the result is bitwise-identical for every thread count.
  unsigned verify_threads = 0;
};

/// One injection for a run. Kill and Torn both SIGKILL the victim right
/// after the step's panel command is posted (for Torn the storage decorator
/// has already torn the covering checkpoint); Hang SIGSTOPs it there
/// instead; Flip corrupts one element after the step completes, Flip2
/// corrupts two elements of one checksum group (same class, same block
/// column — single-block reconstruction provably cannot repair it).
struct Injection {
  FaultKind kind = FaultKind::Kill;
  std::size_t step = 0;
  std::size_t rank = 0;
};

/// One corrupted element, as coordinates. Produced by the injector (ground
/// truth, recorded for post-hoc comparison only) and by locate_fault()
/// (derived); a campaign cell is trustworthy when the two agree.
struct FaultSite {
  std::size_t block_row = 0;  ///< bi
  std::size_t block_col = 0;  ///< bj
  std::size_t row = 0;        ///< element row (bi·nb + r)
  std::size_t col = 0;        ///< element column
};
[[nodiscard]] constexpr bool operator==(const FaultSite& a,
                                        const FaultSite& b) noexcept {
  return a.block_row == b.block_row && a.block_col == b.block_col &&
         a.row == b.row && a.col == b.col;
}

/// What the weighted/unweighted residual ratio says about the damage.
struct Localization {
  /// Some residual column did not resolve to a single in-range group
  /// position (non-integral ratio, weighted-only residual, class mismatch)
  /// — no single-site explanation exists; recovery must escalate.
  bool ambiguous = false;
  std::vector<FaultSite> sites;  ///< distinct corrupted elements, derived
};

/// Huang–Abraham localization over an arbitrary state snapshot: recompute
/// all four accumulators from the payload and resolve every residual column
/// to a (block-row, block-col, element) site via the weighted/unweighted
/// ratio. Free function so unit tests and the campaign calibrator can run
/// it on hand-built state; `Launcher` wraps it over the live arena.
[[nodiscard]] Localization locate_corruption(
    abft::ConstMatrixView a, abft::ConstMatrixView active,
    abft::ConstMatrixView frozen, abft::ConstMatrixView wactive,
    abft::ConstMatrixView wfrozen, std::size_t nb, std::size_t group,
    std::size_t frozen_steps);

/// What one run did and what it cost.
struct RunReport {
  bool completed = false;
  double wall_seconds = 0.0;
  /// Per-step wall time of the *first* execution of each step (replayed
  /// executions accrue to wall_seconds and restore/replay accounting only)
  /// — the calibration input for per-cell predicted times.
  std::vector<double> step_seconds;
  std::size_t checkpoints = 0;      ///< snapshot writes attempted
  std::size_t restores = 0;         ///< snapshot restores performed
  std::size_t respawns = 0;         ///< dead ranks re-forked
  std::size_t reconstructions = 0;  ///< checksum block reconstructions
  std::size_t locates = 0;          ///< localization passes run
  /// Corruption recoveries that climbed past reconstruction to a restore
  /// (ambiguous/multi-block localization, or the residual persisted).
  std::size_t escalations = 0;
  std::size_t hangs = 0;  ///< live-but-silent ranks killed at the deadline
  std::vector<std::size_t> restored_to_steps;  ///< resume step per restore
  double restore_seconds = 0.0;    ///< read + verify + copy-in, summed
  double check_seconds = 0.0;      ///< residual verification, summed
  double recons_seconds = 0.0;     ///< checksum reconstruction, summed
  double locate_seconds = 0.0;     ///< residual-ratio localization, summed
  double hang_wait_seconds = 0.0;  ///< deadline waits on silent ranks
  /// Injector ground truth vs localization-derived coordinates. `injected`
  /// is recorded purely for post-hoc comparison in campaign records — it
  /// never feeds a recovery decision.
  std::vector<FaultSite> injected;
  std::vector<FaultSite> located;
  /// Checksum-invariant residual of the final state.
  double residual = std::numeric_limits<double>::quiet_NaN();
};

class Launcher {
 public:
  /// `backend` is borrowed (campaigns wrap one in a FaultingBackend and
  /// reuse it per cell); it must be open and outlive the launcher.
  Launcher(DistConfig cfg, ckpt::io::StorageBackend& backend);
  ~Launcher();
  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  /// Factor once, injecting `faults` (at most one per step; steps in
  /// [0, nbk)). Callable once per Launcher.
  RunReport run(const std::vector<Injection>& faults = {});

  [[nodiscard]] const DistConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t block_steps() const noexcept { return nbk_; }

  // Final state, copied out of the arena after run() — valid afterwards.
  [[nodiscard]] const abft::Matrix& lu() const noexcept { return lu_; }
  [[nodiscard]] const abft::Matrix& active_cs() const noexcept {
    return active_;
  }
  [[nodiscard]] const abft::Matrix& frozen_cs() const noexcept {
    return frozen_;
  }
  [[nodiscard]] const abft::Matrix& weighted_active_cs() const noexcept {
    return wactive_;
  }
  [[nodiscard]] const abft::Matrix& weighted_frozen_cs() const noexcept {
    return wfrozen_;
  }

 private:
  struct Rank;  // pid + ready fd + mailbox cursors

  void spawn(std::size_t r);
  void reap_all() noexcept;
  [[nodiscard]] bool await_done(std::size_t r, std::size_t k,
                                RunReport& report);
  void checkpoint(std::size_t boundary, RunReport& report);
  [[nodiscard]] std::size_t restore_and_respawn(RunReport& report);
  void inject_flip(const Injection& inj, std::uint64_t seed,
                   RunReport& report);
  [[nodiscard]] Localization locate_fault() const;
  void reconstruct_block(const FaultSite& site);
  /// The escalation ladder for a detected corruption at step `step`;
  /// returns the step to resume from.
  [[nodiscard]] std::size_t recover_from_corruption(std::size_t step,
                                                    RunReport& report);
  [[nodiscard]] double residual_now() const;
  [[nodiscard]] ckpt::io::SnapshotBlob make_blob(std::size_t step) const;
  void load_blob(const ckpt::io::SnapshotBlob& blob);

  DistConfig cfg_;
  ckpt::io::StorageBackend& backend_;
  DistLayout layout_;
  std::size_t nbk_ = 0;
  std::unique_ptr<SharedRegion> arena_;
  SharedState shared_;
  std::vector<Rank> ranks_;
  ckpt::io::SnapshotBlob initial_;  ///< restart-from-scratch fallback
  /// Highest boundary whose checkpoint was already attempted (SIZE_MAX =
  /// none): replay after a restore must not re-write an existing snapshot.
  std::size_t max_boundary_attempted_ = std::numeric_limits<std::size_t>::max();
  std::size_t frozen_steps_ = 0;  ///< block rows frozen in the arena state
  unsigned verify_threads_ = 1;   ///< resolved from cfg_.verify_threads
  bool ran_ = false;
  abft::Matrix lu_, active_, frozen_, wactive_, wfrozen_;
};

}  // namespace abftc::dist

#include "dist/channel.hpp"

#include <sys/mman.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include "common/crc32.hpp"
#include "common/error.hpp"

namespace abftc::dist {

SharedRegion::SharedRegion(std::size_t bytes) {
  ABFTC_REQUIRE(bytes > 0, "shared region must not be empty");
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED)
    throw dist_error("mmap of " + std::to_string(bytes) +
                     "-byte shared arena failed: " +
                     std::string(std::strerror(errno)));
  map_ = map;
  len_ = bytes;
  std::memset(map_, 0, len_);
}

SharedRegion::~SharedRegion() {
  if (map_ != nullptr) ::munmap(map_, len_);
}

std::uint32_t frame_crc(MsgType type, const std::uint64_t (&args)[4]) {
  std::byte buf[sizeof(std::uint32_t) + sizeof(args)];
  const auto t = static_cast<std::uint32_t>(type);
  std::memcpy(buf, &t, sizeof(t));
  std::memcpy(buf + sizeof(t), args, sizeof(args));
  return common::crc32(std::span<const std::byte>(buf, sizeof(buf)));
}

void post(Mailbox& mb, MsgType type, std::uint64_t a0, std::uint64_t a1,
          std::uint64_t a2, std::uint64_t a3) {
  mb.type = static_cast<std::uint32_t>(type);
  mb.args[0] = a0;
  mb.args[1] = a1;
  mb.args[2] = a2;
  mb.args[3] = a3;
  mb.crc = frame_crc(type, mb.args);
  // The release bump publishes the payload: a reader that observes the new
  // seq is guaranteed to see the completed frame, and a writer SIGKILLed
  // before this line leaves the old seq — the torn payload stays invisible.
  mb.seq.store(mb.seq.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
}

std::optional<Message> try_recv(Mailbox& mb, std::uint64_t& last_seen) {
  const std::uint64_t seq = mb.seq.load(std::memory_order_acquire);
  if (seq == last_seen) return std::nullopt;
  Message msg;
  msg.type = static_cast<MsgType>(mb.type);
  std::memcpy(msg.args, mb.args, sizeof(msg.args));
  if (frame_crc(msg.type, msg.args) != mb.crc)
    throw dist_error("mailbox frame CRC mismatch (seq " + std::to_string(seq) +
                     ")");
  last_seen = seq;
  return msg;
}

std::optional<Message> recv(Mailbox& mb, std::uint64_t& last_seen,
                            double timeout_s) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_s);
  // Capped exponential backoff: the first probes stay 50 µs apart so a
  // just-posted frame (or a rank death) is noticed far below a block step,
  // but a long wait — checkpoint boundary, a hang cell sitting out its
  // deadline — decays to 1 ms naps instead of burning a core.
  long nap_ns = 50'000;
  constexpr long kNapCapNs = 1'000'000;
  while (true) {
    if (auto msg = try_recv(mb, last_seen)) return msg;
    if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
    timespec nap{0, nap_ns};
    ::nanosleep(&nap, nullptr);
    nap_ns = std::min(nap_ns * 2, kNapCapNs);
  }
}

void reset(Mailbox& mb) {
  mb.seq.store(0, std::memory_order_relaxed);
  mb.type = 0;
  mb.crc = 0;
  std::memset(mb.args, 0, sizeof(mb.args));
  std::atomic_thread_fence(std::memory_order_release);
}

}  // namespace abftc::dist

#pragma once
/// \file channel.hpp
/// Shared-memory transport for the distributed fault-injection runtime.
///
/// The dist launcher forks N worker ranks from a coordinator; all matrix
/// state and all control traffic live in one anonymous MAP_SHARED mapping
/// created before the forks, so a worker that dies and is respawned
/// re-attaches to exactly the bytes its predecessor was mutating.
///
/// Control traffic uses one single-slot SPSC `Mailbox` per direction per
/// rank. The protocol is strict lockstep — the coordinator posts a command
/// and waits for the matching response before posting the next — so one
/// slot suffices and there is no queue to corrupt. Framing:
///
///   sender:   write {type, args, crc}, then release-store seq+1
///   receiver: acquire-poll seq until it advances, read the payload,
///             recompute the CRC over {type, args} and reject mismatches
///
/// A SIGKILLed worker can leave a half-written payload behind, but only
/// with seq un-bumped (the store is last) — the coordinator never reads it;
/// it times out, reaps the corpse via waitpid, and runs recovery instead.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>

namespace abftc::dist {

/// Dead rank, lost handshake, corrupt frame, worker that won't die — the
/// transport-layer failures the launcher turns into recovery actions.
class dist_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An anonymous shared mapping (MAP_SHARED | MAP_ANONYMOUS), created by the
/// coordinator before fork() so every worker inherits the same physical
/// pages. Unmapped on destruction (workers exit with _exit; the kernel
/// drops their reference).
class SharedRegion {
 public:
  explicit SharedRegion(std::size_t bytes);
  ~SharedRegion();
  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;

  [[nodiscard]] void* data() const noexcept { return map_; }
  [[nodiscard]] std::size_t size() const noexcept { return len_; }

 private:
  void* map_ = nullptr;
  std::size_t len_ = 0;
};

/// Command / response vocabulary of the lockstep protocol.
enum class MsgType : std::uint32_t {
  None = 0,
  Panel = 1,     ///< to owner(k): factor panel k         (args[0] = k)
  Update = 2,    ///< to all ranks: update owned columns  (args[0] = k)
  Shutdown = 3,  ///< to a rank: exit cleanly
  Done = 4,      ///< from a rank: command complete       (args[0] echoes k)
};

/// One decoded frame.
struct Message {
  MsgType type = MsgType::None;
  std::uint64_t args[4] = {0, 0, 0, 0};
};

/// Single-slot SPSC mailbox in shared memory. 64-byte aligned so two
/// mailboxes never share a cache line (false sharing across processes).
struct alignas(64) Mailbox {
  std::atomic<std::uint64_t> seq;  ///< frames posted; bumped last (release)
  std::uint32_t type;
  std::uint32_t crc;  ///< crc32 over {type, args}
  std::uint64_t args[4];
};
static_assert(sizeof(Mailbox) == 64, "mailbox must be exactly a cache line");
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "cross-process mailboxes need lock-free 64-bit atomics");

/// CRC over the payload a frame carries (what `post` stores and `recv`
/// recomputes).
[[nodiscard]] std::uint32_t frame_crc(MsgType type,
                                      const std::uint64_t (&args)[4]);

/// Publish one frame: payload first, seq bump (release) last.
void post(Mailbox& mb, MsgType type, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
          std::uint64_t a2 = 0, std::uint64_t a3 = 0);

/// Non-blocking receive: if `mb.seq` has advanced past `last_seen`, decode
/// the frame (throwing dist_error on a CRC mismatch), advance `last_seen`
/// and return it; otherwise nullopt.
[[nodiscard]] std::optional<Message> try_recv(Mailbox& mb,
                                              std::uint64_t& last_seen);

/// Blocking receive with deadline: acquire-poll with capped exponential
/// backoff between probes (50 µs doubling to 1 ms — fresh frames and rank
/// deaths are still noticed far below a block step, while long waits stop
/// burning a core). nullopt on timeout.
[[nodiscard]] std::optional<Message> recv(Mailbox& mb,
                                          std::uint64_t& last_seen,
                                          double timeout_s);

/// Zero a mailbox (coordinator, before respawning a dead rank, so the
/// replacement starts from seq 0 with no stale frame visible).
void reset(Mailbox& mb);

}  // namespace abftc::dist

#pragma once
/// \file worker.hpp
/// The shared-arena layout and the worker side of the distributed
/// ABFT-protected LU factorization.
///
/// Ownership is panel-cyclic over block columns: rank `j % nranks` owns
/// block column j of the matrix AND of both checksum accumulators. Every
/// block step k splits into two commands, mirroring AbftLu::step exactly:
///
///   Panel(k)  — owner(k) only: pre-subtract the pivot block row from the
///               active accumulator (column block k), factor the diagonal
///               block, apply U_kk^{-1} to the L block column and to the
///               active accumulator's column block k.
///
/// Both phases maintain TWO accumulator pairs: the plain sums and their
/// position-weighted twins (weight = 1-based position of the block row
/// inside its checksum group — the Huang–Abraham localization relation).
/// Every step operation is linear in rows, so applying the identical
/// transformation keeps both invariants exact at step boundaries; the
/// coordinator localizes a corrupted element from the ratio of the two
/// residuals without being told where the fault landed.
///   Update(k) — every rank, over each owned block column j: j == k just
///               freezes (its panel values are final); j != k pre-subtracts
///               the pivot row, and for j > k applies L_kk^{-1} to the U
///               block row, the trailing GEMM update to payload and active
///               accumulator, then freezes the finalized pivot row into the
///               frozen accumulator.
///
/// Per matrix column the operation sequence and operand values are
/// identical to the serial AbftLu step (each GEMM dot product runs over the
/// same nb-length inner dimension in the same order), so a clean
/// distributed run produces the same factors the serial code does, and two
/// distributed runs are bitwise identical — which is what lets the launcher
/// assert that restore + replay after a SIGKILL loses nothing.
///
/// No two ranks ever write the same bytes within a phase: Panel writes only
/// column block k (owner's property), Update writes only the executing
/// rank's owned columns, and the active accumulator's column block k is
/// read-only during Update.

#include <cstddef>
#include <cstdint>

#include "abft/matrix.hpp"
#include "dist/channel.hpp"

namespace abftc::dist {

inline constexpr std::uint64_t kArenaMagic = 0xABF7'D157'0000'0002ULL;

/// Byte offsets of everything in the shared arena, derived from the
/// problem shape. Both sides compute it; the control block holds the shape
/// so a respawned worker can cross-check it re-attached to the right run.
struct DistLayout {
  std::size_t n = 0;       ///< matrix dimension
  std::size_t nb = 0;      ///< block size
  std::size_t nbk = 0;     ///< block steps (n / nb)
  std::size_t group = 0;   ///< block rows per checksum group
  std::size_t groups = 0;  ///< nbk / group
  std::size_t csr = 0;     ///< checksum rows = groups * nb
  std::size_t nranks = 0;

  std::size_t cmd_off = 0;     ///< nranks coordinator→worker mailboxes
  std::size_t rsp_off = 0;     ///< nranks worker→coordinator mailboxes
  std::size_t matrix_off = 0;   ///< n × n doubles
  std::size_t active_off = 0;   ///< csr × n doubles
  std::size_t frozen_off = 0;   ///< csr × n doubles
  std::size_t wactive_off = 0;  ///< position-weighted twin of active
  std::size_t wfrozen_off = 0;  ///< position-weighted twin of frozen
  std::size_t total_bytes = 0;

  [[nodiscard]] static DistLayout compute(std::size_t n, std::size_t nb,
                                          std::size_t group,
                                          std::size_t nranks);
};

/// Run identity at arena offset 0, written by the coordinator before any
/// fork; workers (including respawns) validate it on attach.
struct ControlBlock {
  std::uint64_t magic = 0;
  std::uint64_t n = 0, nb = 0, group = 0, nranks = 0;
};

/// Typed windows into the arena for one process.
struct SharedState {
  ControlBlock* ctl = nullptr;
  Mailbox* cmd = nullptr;  ///< [nranks]
  Mailbox* rsp = nullptr;  ///< [nranks]
  double* matrix = nullptr;
  double* active = nullptr;
  double* frozen = nullptr;
  double* wactive = nullptr;
  double* wfrozen = nullptr;
  DistLayout layout;

  [[nodiscard]] static SharedState attach(void* base, const DistLayout& lay);

  [[nodiscard]] abft::MatrixView a() const {
    return abft::MatrixView(matrix, layout.n, layout.n, layout.n);
  }
  [[nodiscard]] abft::MatrixView active_cs() const {
    return abft::MatrixView(active, layout.csr, layout.n, layout.n);
  }
  [[nodiscard]] abft::MatrixView frozen_cs() const {
    return abft::MatrixView(frozen, layout.csr, layout.n, layout.n);
  }
  [[nodiscard]] abft::MatrixView wactive_cs() const {
    return abft::MatrixView(wactive, layout.csr, layout.n, layout.n);
  }
  [[nodiscard]] abft::MatrixView wfrozen_cs() const {
    return abft::MatrixView(wfrozen, layout.csr, layout.n, layout.n);
  }
};

/// Panel-cyclic owner of block column j.
[[nodiscard]] constexpr std::size_t owner_of(std::size_t block_col,
                                             std::size_t nranks) noexcept {
  return block_col % nranks;
}

/// Phase 1 of block step k; call only as owner_of(k).
void panel_phase(const SharedState& s, std::size_t k);

/// Phase 2 of block step k for `rank`'s owned block columns. Requires the
/// panel phase of step k to have completed.
void update_phase(const SharedState& s, std::size_t rank, std::size_t k);

/// Child-process entry point: pins the kernel policy to one inline thread
/// (a forked child must never touch the parent's executor pool), signals
/// readiness with one byte on `ready_fd`, then serves Panel/Update commands
/// from its mailbox until Shutdown. Exits via _exit — never returns, never
/// runs parent-inherited atexit handlers or flushes parent stdio buffers.
[[noreturn]] void worker_main(void* arena, const DistLayout& lay,
                              std::size_t rank, int ready_fd);

}  // namespace abftc::dist

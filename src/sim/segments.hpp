#pragma once
/// \file segments.hpp
/// Restartable-segment primitives: the execution machinery underneath all
/// three protocol simulators. Unlike the analytical model of Section IV,
/// these primitives make no rare-failure approximation — failures can hit
/// checkpoints, recoveries, downtimes and each other (Section V-A), and the
/// work is retried "until each period is successfully completed".
///
/// Time accounting: every simulated second lands in exactly one bucket of
/// TimeBreakdown, so `breakdown.total() == now` is an enforced invariant
/// (tests rely on it).

#include <cstddef>

#include "sim/failures.hpp"

namespace abftc::sim {

/// Where a simulated second of wall-clock went.
struct TimeBreakdown {
  double useful = 0.0;         ///< committed application progress
  double ckpt = 0.0;           ///< completed checkpoint I/O
  double lost = 0.0;           ///< provisional work/ckpt discarded by rollback
  double downtime = 0.0;       ///< D after each failure (incl. restarted ones)
  double recovery = 0.0;       ///< checkpoint reload time (R or R_L̄)
  double abft_overhead = 0.0;  ///< the (φ−1)/φ share of ABFT-protected compute
  double recons = 0.0;         ///< ABFT checksum reconstruction time

  [[nodiscard]] double total() const noexcept {
    return useful + ckpt + lost + downtime + recovery + abft_overhead + recons;
  }
  TimeBreakdown& operator+=(const TimeBreakdown& o) noexcept;
};

/// Mutable simulation state threaded through the primitives.
struct SimState {
  FailureClock* clock = nullptr;  ///< non-owning; must outlive the state
  double now = 0.0;
  TimeBreakdown acc;
  std::size_t failures = 0;  ///< observed failure count

  /// Safety valve: a protocol that cannot make progress (e.g. segment much
  /// longer than the MTBF) would loop forever; beyond this many failures
  /// the primitives throw abftc::common::invariant_error.
  std::size_t max_failures = 50'000'000;
};

/// Outcome of attempting an uninterruptible span of `duration` seconds.
struct Attempt {
  bool completed = false;
  double elapsed = 0.0;  ///< min(duration, time until the failure)
};

/// Advance the clock through `duration` seconds of activity, stopping at the
/// first failure. On failure, `state.now` is the failure instant and
/// `state.failures` is incremented. The elapsed time is *not* accounted —
/// the caller decides which bucket it belongs to.
[[nodiscard]] Attempt attempt(SimState& state, double duration);

/// Downtime D followed by a reload of cost `recovery_cost`; a failure during
/// either restarts the whole sequence (a new downtime, a new reload).
/// `extra_cost` is appended after the reload under the `recons` bucket
/// (ABFT reconstruction); it restarts with the sequence as well.
void recover(SimState& state, double downtime, double recovery_cost,
             double extra_recons = 0.0);

/// Run `work` seconds of useful work in periods of (period − ckpt_cost) work
/// + ckpt_cost checkpoint; the final chunk is closed by `tail_ckpt` instead
/// (pass 0 for "no trailing checkpoint", e.g. end of the application).
/// A failure anywhere in a period discards the in-flight chunk (lost) and
/// triggers recover(D, R).
void run_periodic_stream(SimState& state, double work, double period,
                         double ckpt_cost, double tail_ckpt, double recovery,
                         double downtime);

/// Run `work` seconds as one unprotected chunk closed by `tail_ckpt`;
/// a failure restarts the chunk from its beginning.
void run_segment(SimState& state, double work, double tail_ckpt,
                 double recovery, double downtime);

/// Run `work` seconds of ABFT-protected library computation (stretched by
/// φ), closed by an `exit_ckpt` checkpoint. Failures lose no work: each one
/// costs downtime + remainder reload + checksum reconstruction, after which
/// the computation resumes where it stopped (Section III-A). A failure
/// during the exit checkpoint discards only the partial checkpoint.
void run_abft_phase(SimState& state, double work, double phi, double exit_ckpt,
                    double remainder_recovery, double recons, double downtime);

}  // namespace abftc::sim

#include "sim/event_queue.hpp"

#include "common/error.hpp"

namespace abftc::sim {

EventId EventQueue::schedule(double t, EventFn fn) {
  ABFTC_REQUIRE(fn != nullptr, "cannot schedule a null event");
  const EventId id = next_id_++;
  heap_.push({t, id});
  if (fns_.size() <= id) fns_.resize(id + 1);
  fns_[id] = std::move(fn);
  ++live_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == 0 || id >= fns_.size() || !fns_[id]) return false;
  fns_[id] = nullptr;
  cancelled_.insert(id);
  --live_;
  return true;
}

bool EventQueue::empty() const noexcept { return live_ == 0; }

std::size_t EventQueue::size() const noexcept { return live_; }

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() &&
         cancelled_.find(heap_.top().id) != cancelled_.end()) {
    heap_.pop();
  }
}

double EventQueue::next_time() const {
  drop_cancelled();
  ABFTC_REQUIRE(!heap_.empty(), "next_time on an empty queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled();
  ABFTC_REQUIRE(!heap_.empty(), "pop on an empty queue");
  const Entry e = heap_.top();
  heap_.pop();
  Fired fired{e.time, e.id, std::move(fns_[e.id])};
  fns_[e.id] = nullptr;
  cancelled_.erase(e.id);
  --live_;
  return fired;
}

}  // namespace abftc::sim

#include "sim/engine.hpp"

#include "common/error.hpp"

namespace abftc::sim {

EventId Engine::at(double t, EventFn fn) {
  ABFTC_REQUIRE(t >= now_, "cannot schedule an event in the past");
  return queue_.schedule(t, std::move(fn));
}

EventId Engine::in(double dt, EventFn fn) {
  ABFTC_REQUIRE(dt >= 0.0, "delay must be non-negative");
  return queue_.schedule(now_ + dt, std::move(fn));
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t fired = 0;
  while (!queue_.empty() && !stopped_) {
    auto ev = queue_.pop();
    ABFTC_CHECK(ev.time >= now_, "event queue went backwards in time");
    now_ = ev.time;
    ev.fn();
    ++fired;
  }
  return fired;
}

std::size_t Engine::run_until(double t_end) {
  ABFTC_REQUIRE(t_end >= now_, "cannot run to a time in the past");
  stopped_ = false;
  std::size_t fired = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= t_end) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++fired;
  }
  if (!stopped_) now_ = t_end;
  return fired;
}

}  // namespace abftc::sim

#pragma once
/// \file event_queue.hpp
/// A stable priority queue of timestamped events: ties are broken by
/// insertion order, so simulations are deterministic. Cancellation is
/// O(log n) amortized via tombstones.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace abftc::sim {

using EventId = std::uint64_t;
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t`. Returns a handle for cancellation.
  EventId schedule(double t, EventFn fn);

  /// Cancel a pending event; returns false if it already ran or was
  /// cancelled.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept;

  /// Time of the earliest pending event (requires !empty()).
  [[nodiscard]] double next_time() const;

  /// Pop and return the earliest pending event.
  struct Fired {
    double time;
    EventId id;
    EventFn fn;
  };
  [[nodiscard]] Fired pop();

 private:
  void drop_cancelled() const;

  struct Entry {
    double time;
    EventId id;
    // min-heap on (time, id): later insertions fire later on ties
    bool operator>(const Entry& o) const noexcept {
      return time > o.time || (time == o.time && id > o.id);
    }
  };
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_ = 0;

  // id -> callback storage; ids are dense so a vector indexed by id works.
  std::vector<EventFn> fns_;
};

}  // namespace abftc::sim

#include "sim/des_periodic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace abftc::sim {

namespace {

/// Per-run state machine: each chunk is [work w | checkpoint c]; a failure
/// event cancels the pending completion and schedules the recovery
/// sequence; recovery completion re-schedules the chunk.
class PeriodicProcess {
 public:
  PeriodicProcess(Engine& engine, SimState& state, double work, double period,
                  double ckpt_cost, double tail_ckpt, double recovery,
                  double downtime)
      : engine_(engine),
        state_(state),
        work_(work),
        chunk_(period - ckpt_cost),
        ckpt_(ckpt_cost),
        tail_(tail_ckpt),
        recovery_(recovery),
        downtime_(downtime) {}

  void start() { begin_chunk(); }

 private:
  enum class Mode { Work, Ckpt, Down, Recover };

  double current_chunk() const {
    return std::min(chunk_, work_ - done_);
  }
  double current_ckpt() const {
    return (done_ + current_chunk() >= work_) ? tail_ : ckpt_;
  }

  void begin_chunk() {
    if (done_ >= work_ && !(work_ == 0.0 && tail_ > 0.0 && !tail_done_)) {
      engine_.stop();
      return;
    }
    begin_span(Mode::Work, current_chunk());
  }

  void begin_span(Mode mode, double duration) {
    mode_ = mode;
    span_start_ = engine_.now();
    span_len_ = duration;
    const double fail_at = state_.clock->next_after(engine_.now());
    const double end_at = engine_.now() + duration;
    if (fail_at < end_at) {
      engine_.at(fail_at, [this] { on_failure(); });
    } else {
      engine_.at(end_at, [this] { on_span_done(); });
    }
  }

  void on_failure() {
    const double elapsed = engine_.now() - span_start_;
    ++state_.failures;
    ABFTC_CHECK(state_.failures <= state_.max_failures,
                "failure budget exhausted (diverged configuration)");
    switch (mode_) {
      case Mode::Work:
        state_.acc.lost += elapsed;
        break;
      case Mode::Ckpt:
        // The chunk was never committed: its work is lost too.
        state_.acc.lost += current_chunk() + elapsed;
        break;
      case Mode::Down:
        state_.acc.downtime += elapsed;
        break;
      case Mode::Recover:
        state_.acc.recovery += elapsed;
        break;
    }
    begin_span(Mode::Down, downtime_);
  }

  void on_span_done() {
    switch (mode_) {
      case Mode::Work:
        begin_span(Mode::Ckpt, current_ckpt());
        break;
      case Mode::Ckpt: {
        const double w = current_chunk();
        state_.acc.useful += w;
        state_.acc.ckpt += current_ckpt();
        done_ += w;
        if (work_ == 0.0) tail_done_ = true;
        begin_chunk();
        break;
      }
      case Mode::Down:
        state_.acc.downtime += downtime_;
        begin_span(Mode::Recover, recovery_);
        break;
      case Mode::Recover:
        state_.acc.recovery += recovery_;
        begin_chunk();  // retry the in-flight chunk
        break;
    }
  }

  Engine& engine_;
  SimState& state_;
  const double work_, chunk_, ckpt_, tail_, recovery_, downtime_;
  double done_ = 0.0;
  bool tail_done_ = false;
  Mode mode_ = Mode::Work;
  double span_start_ = 0.0;
  double span_len_ = 0.0;
};

}  // namespace

void des_periodic_stream(Engine& engine, SimState& state, double work,
                         double period, double ckpt_cost, double tail_ckpt,
                         double recovery, double downtime) {
  ABFTC_REQUIRE(state.clock != nullptr, "SimState needs a failure clock");
  ABFTC_REQUIRE(work >= 0.0, "work must be non-negative");
  if (work == 0.0 && tail_ckpt == 0.0) return;
  ABFTC_REQUIRE(period > ckpt_cost, "period must exceed the checkpoint cost");

  PeriodicProcess proc(engine, state, work, period, ckpt_cost, tail_ckpt,
                       recovery, downtime);
  proc.start();
  engine.run();
  state.now = engine.now();
}

}  // namespace abftc::sim

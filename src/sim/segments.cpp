#include "sim/segments.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace abftc::sim {

TimeBreakdown& TimeBreakdown::operator+=(const TimeBreakdown& o) noexcept {
  useful += o.useful;
  ckpt += o.ckpt;
  lost += o.lost;
  downtime += o.downtime;
  recovery += o.recovery;
  abft_overhead += o.abft_overhead;
  recons += o.recons;
  return *this;
}

Attempt attempt(SimState& state, double duration) {
  ABFTC_REQUIRE(state.clock != nullptr, "SimState needs a failure clock");
  ABFTC_REQUIRE(duration >= 0.0, "attempt duration must be non-negative");
  if (duration == 0.0) return {true, 0.0};
  const double fail_at = state.clock->next_after(state.now);
  if (fail_at >= state.now + duration) {
    state.now += duration;
    return {true, duration};
  }
  const double elapsed = fail_at - state.now;
  state.now = fail_at;
  ++state.failures;
  ABFTC_CHECK(state.failures <= state.max_failures,
              "failure budget exhausted: the protocol cannot make progress "
              "at this MTBF (diverged configuration)");
  return {false, elapsed};
}

void recover(SimState& state, double downtime, double recovery_cost,
             double extra_recons) {
  for (;;) {
    const Attempt d = attempt(state, downtime);
    state.acc.downtime += d.elapsed;
    if (!d.completed) continue;  // failure while rebooting: reboot again
    const Attempt r = attempt(state, recovery_cost);
    state.acc.recovery += r.elapsed;
    if (!r.completed) continue;  // failure while reloading: start over
    const Attempt x = attempt(state, extra_recons);
    state.acc.recons += x.elapsed;
    if (x.completed) return;
  }
}

void run_periodic_stream(SimState& state, double work, double period,
                         double ckpt_cost, double tail_ckpt, double recovery,
                         double downtime) {
  ABFTC_REQUIRE(work >= 0.0, "work must be non-negative");
  if (work == 0.0 && tail_ckpt == 0.0) return;
  ABFTC_REQUIRE(period > ckpt_cost, "period must exceed the checkpoint cost");
  const double chunk = period - ckpt_cost;

  double done = 0.0;
  while (done < work || (done == 0.0 && work == 0.0)) {
    const double w = std::min(chunk, work - done);
    const bool last = (done + w >= work);
    const double c = last ? tail_ckpt : ckpt_cost;
    for (;;) {
      const Attempt aw = attempt(state, w);
      if (!aw.completed) {
        state.acc.lost += aw.elapsed;
        recover(state, downtime, recovery);
        continue;
      }
      const Attempt ac = attempt(state, c);
      if (!ac.completed) {
        // The chunk was computed but never committed: all of it is lost,
        // along with the partial checkpoint I/O.
        state.acc.lost += w + ac.elapsed;
        recover(state, downtime, recovery);
        continue;
      }
      state.acc.useful += w;
      state.acc.ckpt += c;
      break;
    }
    done += w;
    if (work == 0.0) break;
  }
}

void run_segment(SimState& state, double work, double tail_ckpt,
                 double recovery, double downtime) {
  ABFTC_REQUIRE(work >= 0.0, "work must be non-negative");
  if (work == 0.0 && tail_ckpt == 0.0) return;
  for (;;) {
    const Attempt aw = attempt(state, work);
    if (!aw.completed) {
      state.acc.lost += aw.elapsed;
      recover(state, downtime, recovery);
      continue;
    }
    const Attempt ac = attempt(state, tail_ckpt);
    if (!ac.completed) {
      state.acc.lost += work + ac.elapsed;
      recover(state, downtime, recovery);
      continue;
    }
    state.acc.useful += work;
    state.acc.ckpt += tail_ckpt;
    return;
  }
}

void run_abft_phase(SimState& state, double work, double phi, double exit_ckpt,
                    double remainder_recovery, double recons, double downtime) {
  ABFTC_REQUIRE(work >= 0.0, "work must be non-negative");
  ABFTC_REQUIRE(phi >= 1.0, "phi must be >= 1");
  double remaining = phi * work;  // protected computation, stretched by φ
  while (remaining > 0.0) {
    const Attempt a = attempt(state, remaining);
    // ABFT progress survives the failure: account the elapsed protected
    // compute as useful (1/φ share) + ABFT overhead ((φ−1)/φ share).
    state.acc.useful += a.elapsed / phi;
    state.acc.abft_overhead += a.elapsed * (1.0 - 1.0 / phi);
    remaining -= a.elapsed;
    if (!a.completed)
      recover(state, downtime, remainder_recovery, recons);
  }
  // Exit checkpoint C_L: a failure discards the partial checkpoint, pays an
  // ABFT recovery (the dataset is still ABFT-protected) and retries.
  for (;;) {
    const Attempt ac = attempt(state, exit_ckpt);
    if (ac.completed) {
      state.acc.ckpt += exit_ckpt;
      return;
    }
    state.acc.lost += ac.elapsed;
    recover(state, downtime, remainder_recovery, recons);
  }
}

}  // namespace abftc::sim

#pragma once
/// \file engine.hpp
/// Minimal discrete-event simulation engine: a clock plus an EventQueue.
/// The composite runtime (src/core/runtime.hpp) runs on this engine; the
/// figure-level simulators use the lighter segment-walk primitives instead.

#include "sim/event_queue.hpp"

namespace abftc::sim {

class Engine {
 public:
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Schedule at absolute simulated time (must be >= now()).
  EventId at(double t, EventFn fn);
  /// Schedule `dt` seconds from now (dt >= 0).
  EventId in(double dt, EventFn fn);
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue drains or stop() is called; returns events fired.
  std::size_t run();
  /// Run events with time <= t_end, then set now() = t_end.
  std::size_t run_until(double t_end);
  void stop() noexcept { stopped_ = true; }

  [[nodiscard]] bool pending() const noexcept { return !queue_.empty(); }

 private:
  EventQueue queue_;
  double now_ = 0.0;
  bool stopped_ = false;
};

}  // namespace abftc::sim

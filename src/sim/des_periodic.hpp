#pragma once
/// \file des_periodic.hpp
/// Event-driven (engine-based) executor for a periodically checkpointed
/// work stream. Functionally identical to run_periodic_stream — it queries
/// the failure clock in the same order, so with the same seed it produces
/// bit-identical results (asserted by tests). It exists to exercise the
/// generic DES engine on the paper's workload and to host extensions that
/// need event semantics (cancellation, concurrent processes).

#include "sim/engine.hpp"
#include "sim/segments.hpp"

namespace abftc::sim {

/// Run `work` seconds under periodic checkpointing on an Engine; mirrors
/// run_periodic_stream(state, work, period, ckpt, tail_ckpt, recovery, D).
/// Returns the breakdown and final time through `state`.
void des_periodic_stream(Engine& engine, SimState& state, double work,
                         double period, double ckpt_cost, double tail_ckpt,
                         double recovery, double downtime);

}  // namespace abftc::sim

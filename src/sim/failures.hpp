#pragma once
/// \file failures.hpp
/// Failure arrival processes for the discrete-event simulator (Section V-A:
/// "failures are generated following an Exponential distribution law
/// parameterized to fix the MTBF to a given value").
///
/// Failures form a renewal process in wall-clock time: the interval between
/// consecutive platform failures is drawn i.i.d. from an InterArrival
/// distribution. For the Exponential case this is exactly a Poisson process
/// and aggregating N nodes is equivalent to one stream with mean µ_ind/N;
/// for Weibull/Log-normal (the ablation of E11) a per-node simulation is
/// provided.

#include <memory>
#include <queue>
#include <vector>

#include "common/rng.hpp"

namespace abftc::sim {

/// Distribution of the time between consecutive failures.
class InterArrival {
 public:
  virtual ~InterArrival() = default;
  [[nodiscard]] virtual double sample(common::Rng& rng) const = 0;
  [[nodiscard]] virtual double mean() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<InterArrival> clone() const = 0;
};

/// Exponential(mean): the memoryless distribution the paper uses.
class ExponentialArrivals final : public InterArrival {
 public:
  explicit ExponentialArrivals(double mean);
  [[nodiscard]] double sample(common::Rng& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return mean_; }
  [[nodiscard]] std::unique_ptr<InterArrival> clone() const override;

 private:
  double mean_;
};

/// Weibull(shape k, scale λ); k < 1 models infant-mortality-heavy clusters.
class WeibullArrivals final : public InterArrival {
 public:
  WeibullArrivals(double shape, double scale);
  /// Build from shape and the desired mean: λ = mean / Γ(1 + 1/k).
  [[nodiscard]] static WeibullArrivals from_mean(double shape, double mean);
  [[nodiscard]] double sample(common::Rng& rng) const override;
  [[nodiscard]] double mean() const noexcept override;
  [[nodiscard]] std::unique_ptr<InterArrival> clone() const override;
  [[nodiscard]] double shape() const noexcept { return shape_; }
  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double shape_, scale_;
};

/// Log-normal parameterized by its mean and coefficient of variation.
class LogNormalArrivals final : public InterArrival {
 public:
  /// mean > 0, cv = stddev/mean > 0.
  LogNormalArrivals(double mean, double cv);
  [[nodiscard]] double sample(common::Rng& rng) const override;
  [[nodiscard]] double mean() const noexcept override { return mean_; }
  [[nodiscard]] std::unique_ptr<InterArrival> clone() const override;

 private:
  double mean_, mu_log_, sigma_log_;
};

/// A monotone stream of platform failure instants.
class FailureClock {
 public:
  virtual ~FailureClock() = default;
  /// First failure instant strictly greater than t. Repeated calls with
  /// non-decreasing t are O(1) amortized.
  [[nodiscard]] virtual double next_after(double t) = 0;
};

/// Single aggregated renewal stream (exact for Exponential platforms).
class AggregateFailureClock final : public FailureClock {
 public:
  AggregateFailureClock(std::unique_ptr<InterArrival> dist, common::Rng rng);
  [[nodiscard]] double next_after(double t) override;

 private:
  std::unique_ptr<InterArrival> dist_;
  common::Rng rng_;
  double next_;
};

/// N independent per-node renewal processes; also reports which node fails.
class NodeFailureClock final : public FailureClock {
 public:
  struct Failure {
    double time;
    std::size_t node;
  };

  NodeFailureClock(std::unique_ptr<InterArrival> per_node_dist,
                   std::size_t nodes, common::Rng rng);
  [[nodiscard]] double next_after(double t) override;
  /// Like next_after but identifies the failing node.
  [[nodiscard]] Failure next_failure_after(double t);

 private:
  void refill_past(double t);
  struct Entry {
    double time;
    std::size_t node;
    bool operator>(const Entry& o) const noexcept { return time > o.time; }
  };
  std::unique_ptr<InterArrival> dist_;
  common::Rng rng_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
};

}  // namespace abftc::sim

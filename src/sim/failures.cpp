#include "sim/failures.hpp"

#include <cmath>

#include "common/error.hpp"

namespace abftc::sim {

ExponentialArrivals::ExponentialArrivals(double mean) : mean_(mean) {
  ABFTC_REQUIRE(mean > 0.0, "exponential mean must be positive");
}

double ExponentialArrivals::sample(common::Rng& rng) const {
  return rng.exponential(mean_);
}

std::unique_ptr<InterArrival> ExponentialArrivals::clone() const {
  return std::make_unique<ExponentialArrivals>(*this);
}

WeibullArrivals::WeibullArrivals(double shape, double scale)
    : shape_(shape), scale_(scale) {
  ABFTC_REQUIRE(shape > 0.0, "weibull shape must be positive");
  ABFTC_REQUIRE(scale > 0.0, "weibull scale must be positive");
}

WeibullArrivals WeibullArrivals::from_mean(double shape, double mean) {
  ABFTC_REQUIRE(shape > 0.0 && mean > 0.0,
                "weibull shape and mean must be positive");
  const double scale = mean / std::tgamma(1.0 + 1.0 / shape);
  return WeibullArrivals(shape, scale);
}

double WeibullArrivals::sample(common::Rng& rng) const {
  return rng.weibull(shape_, scale_);
}

double WeibullArrivals::mean() const noexcept {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

std::unique_ptr<InterArrival> WeibullArrivals::clone() const {
  return std::make_unique<WeibullArrivals>(*this);
}

LogNormalArrivals::LogNormalArrivals(double mean, double cv) : mean_(mean) {
  ABFTC_REQUIRE(mean > 0.0, "log-normal mean must be positive");
  ABFTC_REQUIRE(cv > 0.0, "log-normal cv must be positive");
  // mean = exp(µ + σ²/2), cv² = exp(σ²) − 1.
  sigma_log_ = std::sqrt(std::log1p(cv * cv));
  mu_log_ = std::log(mean) - 0.5 * sigma_log_ * sigma_log_;
}

double LogNormalArrivals::sample(common::Rng& rng) const {
  return rng.lognormal(mu_log_, sigma_log_);
}

std::unique_ptr<InterArrival> LogNormalArrivals::clone() const {
  return std::make_unique<LogNormalArrivals>(*this);
}

AggregateFailureClock::AggregateFailureClock(std::unique_ptr<InterArrival> dist,
                                             common::Rng rng)
    : dist_(std::move(dist)), rng_(rng) {
  ABFTC_REQUIRE(dist_ != nullptr, "failure clock needs a distribution");
  next_ = dist_->sample(rng_);
}

double AggregateFailureClock::next_after(double t) {
  while (next_ <= t) next_ += dist_->sample(rng_);
  return next_;
}

NodeFailureClock::NodeFailureClock(std::unique_ptr<InterArrival> per_node_dist,
                                   std::size_t nodes, common::Rng rng)
    : dist_(std::move(per_node_dist)), rng_(rng) {
  ABFTC_REQUIRE(dist_ != nullptr, "failure clock needs a distribution");
  ABFTC_REQUIRE(nodes > 0, "need at least one node");
  for (std::size_t i = 0; i < nodes; ++i)
    heap_.push({dist_->sample(rng_), i});
}

void NodeFailureClock::refill_past(double t) {
  while (heap_.top().time <= t) {
    Entry e = heap_.top();
    heap_.pop();
    while (e.time <= t) e.time += dist_->sample(rng_);
    heap_.push(e);
  }
}

double NodeFailureClock::next_after(double t) {
  refill_past(t);
  return heap_.top().time;
}

NodeFailureClock::Failure NodeFailureClock::next_failure_after(double t) {
  refill_past(t);
  const Entry& e = heap_.top();
  return {e.time, e.node};
}

}  // namespace abftc::sim

#include "ckpt/version.hpp"

namespace abftc::ckpt {
const char* module_name() noexcept { return "abftc.ckpt"; }
}  // namespace abftc::ckpt

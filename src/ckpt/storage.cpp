#include "ckpt/storage.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace abftc::ckpt {

void StorageModel::validate() const {
  ABFTC_REQUIRE(node_bandwidth >= 0.0, "node bandwidth must be >= 0");
  ABFTC_REQUIRE(aggregate_bandwidth >= 0.0, "aggregate bandwidth must be >= 0");
  ABFTC_REQUIRE(latency >= 0.0, "latency must be >= 0");
  ABFTC_REQUIRE(read_speedup > 0.0, "read speedup must be positive");
  ABFTC_REQUIRE(node_bandwidth > 0.0 || aggregate_bandwidth > 0.0,
                "storage needs at least one finite bandwidth");
}

double StorageModel::write_time(double total_bytes, std::size_t nodes) const {
  validate();
  ABFTC_REQUIRE(total_bytes >= 0.0, "bytes must be non-negative");
  ABFTC_REQUIRE(nodes > 0, "need at least one node");
  double t = latency;
  if (node_bandwidth > 0.0)
    t = std::max(t, latency + total_bytes / static_cast<double>(nodes) /
                                 node_bandwidth);
  if (aggregate_bandwidth > 0.0)
    t = std::max(t, latency + total_bytes / aggregate_bandwidth);
  return t;
}

double StorageModel::read_time(double total_bytes, std::size_t nodes) const {
  return latency +
         (write_time(total_bytes, nodes) - latency) / read_speedup;
}

StorageModel remote_pfs(double aggregate_bytes_per_s, double latency) {
  ABFTC_REQUIRE(aggregate_bytes_per_s > 0.0, "bandwidth must be positive");
  StorageModel m;
  m.name = "remote-pfs";
  m.aggregate_bandwidth = aggregate_bytes_per_s;
  m.latency = latency;
  return m;
}

StorageModel buddy_store(double link_bytes_per_s, double latency) {
  ABFTC_REQUIRE(link_bytes_per_s > 0.0, "bandwidth must be positive");
  StorageModel m;
  m.name = "buddy";
  m.node_bandwidth = link_bytes_per_s;
  m.latency = latency;
  return m;
}

StorageModel local_nvram(double device_bytes_per_s, double latency) {
  ABFTC_REQUIRE(device_bytes_per_s > 0.0, "bandwidth must be positive");
  StorageModel m;
  m.name = "nvram";
  m.node_bandwidth = device_bytes_per_s;
  m.latency = latency;
  return m;
}

}  // namespace abftc::ckpt

#pragma once
/// \file storage.hpp
/// Checkpoint storage timing models (Section V-C hypotheses).
///
/// The paper contrasts two regimes: a *remote* stable store whose aggregate
/// bandwidth is a bottleneck (checkpoint time grows with the total memory,
/// Figs 8–9) and scalable *buddy / in-node* storage whose cost is constant
/// in the node count (Fig 10, citing FTC-Charm++ and SCR-style systems).
/// A StorageModel converts (bytes, nodes) into C/R durations;
/// core::ckpt_from_storage() bridges it to the model-layer CheckpointParams.

#include <cstddef>
#include <string>

namespace abftc::ckpt {

/// Bandwidth/latency description of a checkpoint target.
struct StorageModel {
  std::string name = "custom";
  /// Per-node link bandwidth in bytes/s (0 = unlimited).
  double node_bandwidth = 0.0;
  /// Aggregate backend bandwidth in bytes/s shared by all nodes
  /// (0 = unlimited; this is what makes remote PFS checkpointing non-scalable).
  double aggregate_bandwidth = 0.0;
  /// Fixed protocol latency per operation in seconds (coordination, metadata).
  double latency = 0.0;
  /// Read bandwidth multiplier for recovery (1.0: R behaves like C).
  double read_speedup = 1.0;

  /// Time to write `total_bytes` spread evenly across `nodes`.
  [[nodiscard]] double write_time(double total_bytes, std::size_t nodes) const;
  /// Time to read it back at recovery.
  [[nodiscard]] double read_time(double total_bytes, std::size_t nodes) const;

  void validate() const;
};

/// A remote parallel filesystem: aggregate bandwidth dominates, so the
/// checkpoint cost grows linearly with the total application memory.
[[nodiscard]] StorageModel remote_pfs(double aggregate_bytes_per_s,
                                      double latency = 1.0);

/// Buddy (partner-node) in-memory checkpointing: each node streams to its
/// partner over the interconnect; the cost depends only on bytes/node.
[[nodiscard]] StorageModel buddy_store(double link_bytes_per_s,
                                       double latency = 0.1);

/// Node-local NVRAM: very high per-node bandwidth, negligible latency.
[[nodiscard]] StorageModel local_nvram(double device_bytes_per_s,
                                       double latency = 0.01);

}  // namespace abftc::ckpt

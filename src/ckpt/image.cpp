#include "ckpt/image.hpp"

#include <algorithm>
#include <cstring>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"

namespace abftc::ckpt {

namespace {

/// Fixed chunking for the store's parallel copy/CRC loops. The chunk size —
/// not the worker count — defines the per-chunk CRC boundaries, so the
/// folded region CRC (crc32_combine in chunk order) is bitwise identical
/// across 1/2/4/N workers and equals the one-shot crc32.
constexpr std::size_t kLoopChunk = 256 * 1024;

/// CRC `src` (and, when `dst` is non-null, copy it there) in parallel
/// fixed-size chunks on the executor.
std::uint32_t chunked_crc(std::span<const std::byte> src, std::byte* dst,
                          unsigned threads) {
  const std::size_t chunks = (src.size() + kLoopChunk - 1) / kLoopChunk;
  if (chunks <= 1) {
    if (dst != nullptr) std::memcpy(dst, src.data(), src.size());
    return common::crc32(src);
  }
  std::vector<std::uint32_t> crcs(chunks);
  common::parallel_for(
      chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * kLoopChunk;
        const auto piece =
            src.subspan(lo, std::min(kLoopChunk, src.size() - lo));
        if (dst != nullptr)
          std::memcpy(dst + lo, piece.data(), piece.size());
        crcs[c] = common::crc32(piece);
      },
      threads);
  common::Crc32Chunks fold;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * kLoopChunk;
    fold.add(crcs[c], std::min(kLoopChunk, src.size() - lo));
  }
  return fold.value();
}

/// Parallel chunked memcpy (restore path; CRC already verified).
void chunked_copy(std::span<const std::byte> src, std::byte* dst,
                  unsigned threads) {
  const std::size_t chunks = (src.size() + kLoopChunk - 1) / kLoopChunk;
  if (chunks <= 1) {
    std::memcpy(dst, src.data(), src.size());
    return;
  }
  common::parallel_for(
      chunks,
      [&](std::size_t c) {
        const std::size_t lo = c * kLoopChunk;
        const auto piece =
            src.subspan(lo, std::min(kLoopChunk, src.size() - lo));
        std::memcpy(dst + lo, piece.data(), piece.size());
      },
      threads);
}

}  // namespace

const char* to_string(CkptKind k) noexcept {
  switch (k) {
    case CkptKind::Full:
      return "full";
    case CkptKind::Entry:
      return "entry";
    case CkptKind::Exit:
      return "exit";
    case CkptKind::Incremental:
      return "incremental";
  }
  return "?";
}

RegionId MemoryImage::add_region(std::string name, std::span<std::byte> data,
                                 RegionClass cls) {
  ABFTC_REQUIRE(!name.empty(), "region needs a name");
  ABFTC_REQUIRE(!data.empty(), "region must not be empty");
  for (const Region& r : regions_)
    ABFTC_REQUIRE(r.info.name != name, "duplicate region name: " + name);
  Region region;
  region.info = RegionInfo{std::move(name), cls, data.size(), true};
  region.data = data;
  regions_.push_back(std::move(region));
  return regions_.size() - 1;
}

std::size_t MemoryImage::region_count() const noexcept {
  return regions_.size();
}

const MemoryImage::RegionInfo& MemoryImage::info(RegionId id) const {
  ABFTC_REQUIRE(id < regions_.size(), "region id out of range");
  return regions_[id].info;
}

std::span<const std::byte> MemoryImage::bytes(RegionId id) const {
  ABFTC_REQUIRE(id < regions_.size(), "region id out of range");
  return regions_[id].data;
}

std::span<std::byte> MemoryImage::mutable_bytes(RegionId id) {
  ABFTC_REQUIRE(id < regions_.size(), "region id out of range");
  regions_[id].info.dirty = true;
  return regions_[id].data;
}

void MemoryImage::mark_dirty(RegionId id) {
  ABFTC_REQUIRE(id < regions_.size(), "region id out of range");
  regions_[id].info.dirty = true;
}

void MemoryImage::clear_dirty_all() noexcept {
  for (Region& r : regions_) r.info.dirty = false;
}

std::size_t MemoryImage::dirty_bytes() const noexcept {
  std::size_t n = 0;
  for (const Region& r : regions_)
    if (r.info.dirty) n += r.info.bytes;
  return n;
}

std::size_t MemoryImage::total_bytes() const noexcept {
  std::size_t n = 0;
  for (const Region& r : regions_) n += r.info.bytes;
  return n;
}

std::size_t MemoryImage::class_bytes(RegionClass cls) const noexcept {
  std::size_t n = 0;
  for (const Region& r : regions_)
    if (r.info.cls == cls) n += r.info.bytes;
  return n;
}

double MemoryImage::rho() const noexcept {
  const std::size_t total = total_bytes();
  if (total == 0) return 0.0;
  return static_cast<double>(class_bytes(RegionClass::Library)) /
         static_cast<double>(total);
}

// ---------------------------------------------------------------------------

CheckpointStore::Snapshot CheckpointStore::make_snapshot(
    const MemoryImage& image, CkptKind kind, double when, CkptId entry_link,
    const std::vector<RegionId>& regions) {
  ABFTC_REQUIRE(when >= last_when_,
                "checkpoint timestamps must be non-decreasing");
  last_when_ = when;
  Snapshot snap;
  snap.record = Record{next_id_++, kind, when, 0, entry_link};
  snap.copies.reserve(regions.size());
  for (const RegionId id : regions) {
    const auto src = image.bytes(id);
    RegionCopy copy;
    copy.region = id;
    copy.payload.resize(src.size());
    copy.crc = chunked_crc(src, copy.payload.data(), threads_);
    snap.record.bytes += copy.payload.size();
    snap.copies.push_back(std::move(copy));
  }
  return snap;
}

namespace {

std::vector<RegionId> select_regions(const MemoryImage& image,
                                     std::optional<RegionClass> cls,
                                     bool dirty_only) {
  std::vector<RegionId> out;
  for (RegionId id = 0; id < image.region_count(); ++id) {
    const auto& info = image.info(id);
    if (cls && info.cls != *cls) continue;
    if (dirty_only && !info.dirty) continue;
    out.push_back(id);
  }
  return out;
}

}  // namespace

CkptId CheckpointStore::take_full(MemoryImage& image, double when) {
  ABFTC_REQUIRE(image.region_count() > 0, "image has no regions");
  snapshots_.push_back(make_snapshot(image, CkptKind::Full, when, 0,
                                     select_regions(image, {}, false)));
  image.clear_dirty_all();
  return snapshots_.back().record.id;
}

CkptId CheckpointStore::take_entry(MemoryImage& image, double when) {
  ABFTC_REQUIRE(image.region_count() > 0, "image has no regions");
  snapshots_.push_back(make_snapshot(
      image, CkptKind::Entry, when, 0,
      select_regions(image, RegionClass::Remainder, false)));
  return snapshots_.back().record.id;
}

CkptId CheckpointStore::take_exit(MemoryImage& image, double when,
                                  CkptId entry) {
  const Record& e = record(entry);  // validates existence
  ABFTC_REQUIRE(e.kind == CkptKind::Entry,
                "take_exit must reference an Entry checkpoint");
  Snapshot snap =
      make_snapshot(image, CkptKind::Exit, when, entry,
                    select_regions(image, RegionClass::Library, false));
  // The split pair must cover the whole image ("a split, but complete,
  // coordinated checkpoint", Section III-A).
  std::size_t covered = snap.record.bytes + snapshot(entry).record.bytes;
  ABFTC_REQUIRE(covered == image.total_bytes(),
                "entry+exit checkpoints do not cover the full image");
  snapshots_.push_back(std::move(snap));
  image.clear_dirty_all();
  return snapshots_.back().record.id;
}

CkptId CheckpointStore::take_incremental(MemoryImage& image, double when) {
  bool has_full = false;
  for (const Snapshot& s : snapshots_)
    has_full |= s.record.kind == CkptKind::Full;
  ABFTC_REQUIRE(has_full, "incremental checkpoint requires a Full base");
  snapshots_.push_back(make_snapshot(image, CkptKind::Incremental, when, 0,
                                     select_regions(image, {}, true)));
  image.clear_dirty_all();
  return snapshots_.back().record.id;
}

std::size_t CheckpointStore::count() const noexcept {
  return snapshots_.size();
}

const CheckpointStore::Record& CheckpointStore::record(CkptId id) const {
  return snapshot(id).record;
}

const CheckpointStore::Snapshot& CheckpointStore::snapshot(CkptId id) const {
  for (const Snapshot& s : snapshots_)
    if (s.record.id == id) return s;
  ABFTC_REQUIRE(false, "unknown checkpoint id");
  // unreachable
  return snapshots_.front();
}

std::optional<std::size_t> CheckpointStore::latest_protection_index() const {
  for (std::size_t i = snapshots_.size(); i-- > 0;) {
    const Record& r = snapshots_[i].record;
    if (r.kind == CkptKind::Full) return i;
    if (r.kind == CkptKind::Exit) return i;  // entry_link is validated on take
  }
  return std::nullopt;
}

bool CheckpointStore::has_restore_point() const noexcept {
  return latest_protection_index().has_value();
}

void CheckpointStore::apply(const Snapshot& snap, MemoryImage& image,
                            RestoreReport& report) const {
  for (const RegionCopy& copy : snap.copies) {
    auto dst = image.mutable_bytes(copy.region);
    ABFTC_CHECK(dst.size() == copy.payload.size(),
                "region size changed since the checkpoint was taken");
    ABFTC_CHECK(chunked_crc(std::span<const std::byte>(copy.payload), nullptr,
                            threads_) == copy.crc,
                "checkpoint payload corrupted in the store");
    chunked_copy(std::span<const std::byte>(copy.payload), dst.data(),
                 threads_);
    report.bytes_restored += copy.payload.size();
  }
  report.applied.push_back(snap.record.id);
}

CheckpointStore::RestoreReport CheckpointStore::restore_latest(
    MemoryImage& image) const {
  const auto idx = latest_protection_index();
  ABFTC_REQUIRE(idx.has_value(), "no complete checkpoint to restore from");
  RestoreReport report;
  const Snapshot& point = snapshots_[*idx];
  report.from_when = point.record.when;

  if (point.record.kind == CkptKind::Full) {
    apply(point, image, report);
    // Replay any incrementals taken after the full base.
    for (std::size_t i = *idx + 1; i < snapshots_.size(); ++i) {
      if (snapshots_[i].record.kind == CkptKind::Incremental) {
        apply(snapshots_[i], image, report);
        report.from_when = snapshots_[i].record.when;
      }
    }
  } else {  // Exit: restore the linked Entry (remainder) + the Exit (library)
    apply(snapshot(point.record.entry_link), image, report);
    apply(point, image, report);
  }
  image.clear_dirty_all();
  return report;
}

CheckpointStore::RestoreReport CheckpointStore::restore_remainder(
    MemoryImage& image) const {
  // Newest snapshot that contains the REMAINDER dataset: an Entry or a Full.
  for (std::size_t i = snapshots_.size(); i-- > 0;) {
    const Snapshot& s = snapshots_[i];
    if (s.record.kind != CkptKind::Entry && s.record.kind != CkptKind::Full)
      continue;
    RestoreReport report;
    report.from_when = s.record.when;
    if (s.record.kind == CkptKind::Entry) {
      apply(s, image, report);
    } else {
      for (const RegionCopy& copy : s.copies) {
        if (image.info(copy.region).cls != RegionClass::Remainder) continue;
        auto dst = image.mutable_bytes(copy.region);
        ABFTC_CHECK(dst.size() == copy.payload.size(),
                    "region size changed since the checkpoint was taken");
        chunked_copy(std::span<const std::byte>(copy.payload), dst.data(),
                     threads_);
        report.bytes_restored += copy.payload.size();
      }
      report.applied.push_back(s.record.id);
    }
    return report;
  }
  ABFTC_REQUIRE(false, "no checkpoint containing the REMAINDER dataset");
  return {};
}

void CheckpointStore::compact() {
  const auto idx = latest_protection_index();
  if (!idx) return;
  std::size_t keep_from = *idx;
  // An Exit needs its Entry; keep it too.
  if (snapshots_[*idx].record.kind == CkptKind::Exit) {
    const CkptId entry = snapshots_[*idx].record.entry_link;
    for (std::size_t i = 0; i < *idx; ++i)
      if (snapshots_[i].record.id == entry) keep_from = std::min(keep_from, i);
  }
  snapshots_.erase(snapshots_.begin(),
                   snapshots_.begin() + static_cast<std::ptrdiff_t>(keep_from));
}

std::size_t CheckpointStore::stored_bytes() const noexcept {
  std::size_t n = 0;
  for (const Snapshot& s : snapshots_) n += s.record.bytes;
  return n;
}

}  // namespace abftc::ckpt

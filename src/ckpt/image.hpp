#pragma once
/// \file image.hpp
/// Executable checkpoint mechanics for the composite protocol (Section III).
///
/// A MemoryImage is the application's protected state: named byte regions,
/// each classified as LIBRARY (passed to the ABFT-capable library call;
/// reconstructable from checksums) or REMAINDER (everything else). The
/// CheckpointStore implements the protocol's checkpoint taxonomy:
///
///  * Full        — classic coordinated checkpoint of every region,
///  * Entry       — forced partial checkpoint of the REMAINDER dataset taken
///                  when entering a LIBRARY phase,
///  * Exit        — partial checkpoint of the (modified) LIBRARY dataset at
///                  the end of the call; Entry + Exit form a *split but
///                  complete* coordinated checkpoint,
///  * Incremental — only regions dirtied since the previous snapshot
///                  (BiPeriodicCkpt's enabling mechanism).
///
/// Dirty tracking is at region granularity; every snapshot carries a CRC so
/// restores can verify integrity end-to-end.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace abftc::ckpt {

enum class RegionClass : std::uint8_t { Library, Remainder };

using RegionId = std::size_t;
using CkptId = std::uint64_t;

enum class CkptKind : std::uint8_t { Full, Entry, Exit, Incremental };

[[nodiscard]] const char* to_string(CkptKind k) noexcept;

/// The application's registered state. Regions reference caller-owned
/// memory (std::span): the image never copies or frees application data.
class MemoryImage {
 public:
  struct RegionInfo {
    std::string name;
    RegionClass cls;
    std::size_t bytes;
    bool dirty;
  };

  /// Register a caller-owned byte range. The range must outlive the image.
  RegionId add_region(std::string name, std::span<std::byte> data,
                      RegionClass cls);

  /// Typed convenience for arrays of trivially copyable elements.
  template <typename T>
  RegionId add_region(std::string name, std::span<T> data, RegionClass cls) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "checkpointed regions must be trivially copyable");
    return add_region(std::move(name), std::as_writable_bytes(data), cls);
  }

  [[nodiscard]] std::size_t region_count() const noexcept;
  [[nodiscard]] const RegionInfo& info(RegionId id) const;
  [[nodiscard]] std::span<const std::byte> bytes(RegionId id) const;
  [[nodiscard]] std::span<std::byte> mutable_bytes(RegionId id);

  /// Dirty tracking (region granularity).
  void mark_dirty(RegionId id);
  void clear_dirty_all() noexcept;
  [[nodiscard]] std::size_t dirty_bytes() const noexcept;

  [[nodiscard]] std::size_t total_bytes() const noexcept;
  [[nodiscard]] std::size_t class_bytes(RegionClass cls) const noexcept;
  /// ρ = LIBRARY bytes / total bytes (the paper's memory-split parameter).
  [[nodiscard]] double rho() const noexcept;

 private:
  friend class CheckpointStore;
  struct Region {
    RegionInfo info;
    std::span<std::byte> data;
  };
  std::vector<Region> regions_;
};

/// Versioned snapshot store with split-checkpoint composition.
class CheckpointStore {
 public:
  struct Record {
    CkptId id;
    CkptKind kind;
    double when;        ///< simulated or wall time supplied by the caller
    std::size_t bytes;  ///< payload size of this snapshot
    CkptId entry_link;  ///< for Exit: the Entry it completes (0 otherwise)
  };

  /// Take a snapshot. `when` must be non-decreasing across calls.
  CkptId take_full(MemoryImage& image, double when);
  CkptId take_entry(MemoryImage& image, double when);
  /// Completes the split checkpoint started by `entry`; validates that the
  /// pair covers every region of the image.
  CkptId take_exit(MemoryImage& image, double when, CkptId entry);
  /// Snapshot of the dirty regions only; requires an existing Full base.
  CkptId take_incremental(MemoryImage& image, double when);

  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] const Record& record(CkptId id) const;

  /// True once a complete protection point exists (a Full, or an
  /// Entry+Exit pair).
  [[nodiscard]] bool has_restore_point() const noexcept;

  struct RestoreReport {
    double from_when = 0.0;          ///< timestamp of the protection point
    std::size_t bytes_restored = 0;  ///< bytes copied back
    std::vector<CkptId> applied;     ///< snapshots applied, oldest first
  };

  /// Restore the most recent complete protection point: the latest Full
  /// (plus any later Incrementals) or Entry+Exit pair, whichever is newer.
  /// Clears the image's dirty flags.
  RestoreReport restore_latest(MemoryImage& image) const;

  /// Restore only the REMAINDER dataset from the most recent Entry/Full —
  /// the rollback half of ABFT recovery (Figure 2): the LIBRARY dataset is
  /// left untouched for the ABFT algorithm to reconstruct.
  RestoreReport restore_remainder(MemoryImage& image) const;

  /// Discard snapshots that can no longer participate in a restore
  /// (everything strictly older than the latest protection point).
  void compact();

  /// Total bytes currently held by the store.
  [[nodiscard]] std::size_t stored_bytes() const noexcept;

  /// Worker budget for the store's copy/CRC loops (common::parallel_for);
  /// 0 = hardware concurrency. Snapshots and CRCs are bitwise identical for
  /// any setting: the CRC chunking is fixed, only the workers vary.
  void set_threads(unsigned threads) noexcept { threads_ = threads; }

 private:
  struct RegionCopy {
    RegionId region;
    std::vector<std::byte> payload;
    std::uint32_t crc;
  };
  struct Snapshot {
    Record record;
    std::vector<RegionCopy> copies;
  };

  Snapshot make_snapshot(const MemoryImage& image, CkptKind kind, double when,
                         CkptId entry_link,
                         const std::vector<RegionId>& regions);
  [[nodiscard]] const Snapshot& snapshot(CkptId id) const;
  void apply(const Snapshot& snap, MemoryImage& image,
             RestoreReport& report) const;
  /// Index of the newest complete protection point, or nullopt.
  [[nodiscard]] std::optional<std::size_t> latest_protection_index() const;

  std::vector<Snapshot> snapshots_;  // chronological
  CkptId next_id_ = 1;
  double last_when_ = 0.0;
  unsigned threads_ = 0;  // copy/CRC loop workers; 0 = hardware concurrency
};

}  // namespace abftc::ckpt

#pragma once
namespace abftc::ckpt {
/// Module identification (also keeps the static library non-empty).
const char* module_name() noexcept;
}  // namespace abftc::ckpt

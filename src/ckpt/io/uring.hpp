#pragma once
/// \file uring.hpp
/// UringQueue: a minimal io_uring submission queue for the log backend's
/// append path (raw syscalls, no liburing dependency).
///
/// The log backend's commit is a handful of pwrites (payload chunks, then
/// header + table + trailer) followed by one fdatasync. With io_uring the
/// payload chunks are *submitted* as they arrive and reaped together at
/// commit, so multiple appends are in flight inside the kernel at once
/// instead of each paying a full synchronous syscall round trip.
///
/// Availability is probed at runtime (supported() caches one io_uring_setup
/// attempt): kernels without the syscall, seccomp filters, and locked-down
/// containers all fail the probe, and callers fall back to plain pwrite —
/// the log backend behaves identically either way, only the submission
/// mechanism differs. Short writes and per-op errors are handled at drain():
/// a short completion is finished synchronously, a failed one throws
/// io_error.
///
/// Not thread-safe: one queue belongs to one shard, and the shard lock is
/// held across every submit/drain (the log backend serializes same-shard
/// committers by construction).

#include <cstddef>
#include <cstdint>
#include <memory>

#include "ckpt/io/backend.hpp"

namespace abftc::ckpt::io {

class UringQueue {
 public:
  /// One cached runtime probe: can this process set up an io_uring at all?
  [[nodiscard]] static bool supported() noexcept;

  /// Throws io_error when the ring cannot be created (callers should probe
  /// supported() first; a race against resource limits can still fail).
  explicit UringQueue(unsigned entries = 16);
  ~UringQueue();
  UringQueue(const UringQueue&) = delete;
  UringQueue& operator=(const UringQueue&) = delete;

  /// Queue one positional write. The buffer must stay alive and unchanged
  /// until the next drain() returns. Blocks for a completion slot when the
  /// ring is full.
  void submit_pwrite(int fd, const void* buf, std::size_t len,
                     std::uint64_t off);

  /// Wait for every in-flight write; completes short writes synchronously
  /// and throws io_error (first failure) if any op failed.
  void drain();

  /// Writes submitted and not yet reaped.
  [[nodiscard]] std::size_t in_flight() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace abftc::ckpt::io

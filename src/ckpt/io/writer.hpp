#pragma once
/// \file writer.hpp
/// CkptWriter: the checkpoint commit/restore pipeline over a StorageBackend.
///
/// It implements the protocol's checkpoint taxonomy (Full / Entry / Exit /
/// Incremental, same semantics as ckpt::CheckpointStore) but persists
/// through the backend, and pipelines the commit: each region is streamed in
/// fixed-size chunks through two staging buffers — the caller thread copies
/// chunk i+1 and hands chunk i to the backend while a pool task
/// (common::Executor::submit) runs the slice-by-8 CRC of chunk i
/// concurrently. Commit latency therefore approaches
/// max(copy + write, crc) instead of their sum; per-region CRCs are folded
/// from the chunk CRCs with crc32_combine, so the async path produces
/// bit-identical snapshots to the serial copy→CRC→write reference
/// (options.async = false, the benchmark baseline).
///
/// Restores are verify-then-apply: every region CRC of every snapshot that
/// will be applied is checked first (in parallel, on a ScopedArena) and only
/// then is any byte copied into the image — a torn, truncated, or corrupted
/// snapshot is rejected without touching application state.

#include <cstddef>
#include <vector>

#include "ckpt/io/backend.hpp"

namespace abftc::common {
class Executor;  // defined in common/executor.hpp
}

namespace abftc::ckpt::io {

struct WriterOptions {
  /// Pipeline granularity: staging-buffer / CRC-task size.
  std::size_t chunk_bytes = 1 << 20;
  /// false: serial copy → CRC → write reference path (same bytes on disk).
  bool async = true;
  /// Pool the CRC tasks run on; nullptr = common::Executor::global().
  common::Executor* executor = nullptr;
};

struct RestoreReport {
  double from_when = 0.0;          ///< timestamp of the protection point
  std::size_t bytes_restored = 0;  ///< bytes copied into the image
  std::vector<CkptId> applied;     ///< snapshots applied, oldest first
};

class CkptWriter {
 public:
  /// The backend must outlive the writer. Snapshot ids continue after the
  /// backend's existing content (a reopened store keeps its history).
  explicit CkptWriter(StorageBackend& backend, WriterOptions opts = {});

  /// The taxonomy (Section III): semantics identical to CheckpointStore.
  /// `when` must be non-decreasing across calls.
  CkptId take_full(MemoryImage& image, double when);
  CkptId take_entry(MemoryImage& image, double when);
  CkptId take_exit(MemoryImage& image, double when, CkptId entry);
  CkptId take_incremental(MemoryImage& image, double when);

  /// True once the backend holds a complete protection point (a Full, or an
  /// Entry + Exit pair).
  [[nodiscard]] bool has_restore_point() const;

  /// Restore the most recent complete protection point (latest Full + later
  /// Incrementals, or Entry+Exit pair, whichever is newer). All payload
  /// CRCs are verified before the image is touched; throws io_error on any
  /// integrity failure. Clears the image's dirty flags.
  RestoreReport restore_latest(MemoryImage& image) const;

  [[nodiscard]] const WriterOptions& options() const noexcept {
    return opts_;
  }
  [[nodiscard]] StorageBackend& backend() noexcept { return backend_; }

 private:
  CkptId commit(MemoryImage& image, CkptKind kind, double when,
                CkptId entry_link, const std::vector<RegionId>& regions);
  void apply(const SnapshotBlob& blob, MemoryImage& image,
             RestoreReport& report) const;
  [[nodiscard]] common::Executor& executor() const;

  StorageBackend& backend_;
  WriterOptions opts_;
  CkptId next_id_ = 1;
  double last_when_ = 0.0;
};

}  // namespace abftc::ckpt::io

#pragma once
/// \file detail.hpp
/// Internal helpers shared by the file and mmap backends. Not part of the
/// public ckpt::io surface — both on-disk formats embed the same 24-byte
/// region record, and keeping it (plus the errno/fd plumbing) in one place
/// means the two layouts cannot silently drift apart.

#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "ckpt/io/backend.hpp"

namespace abftc::ckpt::io::detail {

/// One region's record in a snapshot's on-medium table (file backend: after
/// the header; mmap backend: at the slot's data offset).
struct RegionEntry {
  std::uint64_t region = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(RegionEntry) == 24, "on-medium region entry layout");

[[noreturn]] inline void sys_error(const std::string& what) {
  throw io_error(what + ": " + std::strerror(errno));
}

struct FdGuard {
  int fd = -1;
  FdGuard() = default;
  explicit FdGuard(int f) noexcept : fd(f) {}
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
};

inline std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

}  // namespace abftc::ckpt::io::detail

#pragma once
/// \file detail.hpp
/// Internal helpers shared by the file, mmap and log backends. Not part of
/// the public ckpt::io surface — the on-disk formats embed the same 24-byte
/// region record, and keeping it (plus the errno/fd plumbing and the
/// full-length read/write loops) in one place means the layouts and their
/// EINTR handling cannot silently drift apart.

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

#include "ckpt/io/backend.hpp"

namespace abftc::ckpt::io::detail {

/// One region's record in a snapshot's on-medium table (file backend: after
/// the header; mmap backend: at the slot's data offset).
struct RegionEntry {
  std::uint64_t region = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(RegionEntry) == 24, "on-medium region entry layout");

[[noreturn]] inline void sys_error(const std::string& what) {
  throw io_error(what + ": " + std::strerror(errno));
}

struct FdGuard {
  int fd = -1;
  FdGuard() = default;
  explicit FdGuard(int f) noexcept : fd(f) {}
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;
};

inline std::size_t align_up(std::size_t v, std::size_t a) noexcept {
  return (v + a - 1) / a * a;
}

inline void pwrite_all(int fd, const void* buf, std::size_t n,
                       std::uint64_t off, const char* what) {
  const auto* p = static_cast<const std::byte*>(buf);
  while (n > 0) {
    const ssize_t w = ::pwrite(fd, p, n, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      sys_error(std::string("pwrite ") + what);
    }
    p += w;
    off += static_cast<std::uint64_t>(w);
    n -= static_cast<std::size_t>(w);
  }
}

inline void pread_all(int fd, void* buf, std::size_t n, std::uint64_t off,
                      const std::string& path) {
  auto* p = static_cast<std::byte*>(buf);
  while (n > 0) {
    const ssize_t r = ::pread(fd, p, n, static_cast<off_t>(off));
    if (r < 0) {
      if (errno == EINTR) continue;
      sys_error("pread " + path);
    }
    if (r == 0) throw io_error("truncated snapshot file: " + path);
    p += r;
    off += static_cast<std::uint64_t>(r);
    n -= static_cast<std::size_t>(r);
  }
}

inline void fsync_or_throw(int fd, const char* what) {
  if (::fsync(fd) != 0) sys_error(std::string("fsync ") + what);
}

/// Best-effort fsync of a directory so a rename inside it is durable.
/// Never throws: once the rename succeeded, the new file *is* the store's
/// state — failing here only means a crash could roll the rename back,
/// which readers handle as "commit never happened". Throwing would instead
/// desynchronize the in-memory state from the on-disk one.
inline void fsync_dir_best_effort(const std::string& dir) noexcept {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace abftc::ckpt::io::detail

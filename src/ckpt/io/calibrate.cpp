#include "ckpt/io/calibrate.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <mutex>
#include <thread>

#include "ckpt/io/writer.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace abftc::ckpt::io {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One timed round of `committers` concurrent same-size snapshots, ids
/// id0..id0+committers-1, all at timestamp `when`. Returns the round's wall
/// time; the caller drops the ids. Backends that don't support concurrent
/// committers are serialized on a mutex — the contention is then the
/// measurement, not a data race.
double concurrent_round(StorageBackend& backend, std::span<const std::byte> payload,
                        CkptId id0, double when, int committers) {
  SnapshotBlob proto;
  proto.meta.kind = CkptKind::Full;
  proto.meta.when = when;
  proto.meta.bytes = payload.size();
  RegionBlob r;
  r.region = 1;
  r.crc = common::crc32(payload);
  r.payload.assign(payload.begin(), payload.end());
  proto.regions.push_back(std::move(r));

  const bool concurrent = backend.concurrent_committers();
  std::mutex serial;
  std::vector<std::thread> threads;
  threads.reserve(committers);
  const auto t0 = Clock::now();
  for (int t = 0; t < committers; ++t) {
    threads.emplace_back([&, t] {
      SnapshotBlob blob = proto;  // each committer owns its payload copy
      blob.meta.id = id0 + static_cast<CkptId>(t);
      if (concurrent) {
        backend.write_snapshot(blob);
      } else {
        std::lock_guard lock(serial);
        backend.write_snapshot(blob);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  return seconds_since(t0);
}

}  // namespace

Calibration calibrate_backend(StorageBackend& backend,
                              const CalibrationOptions& opts) {
  ABFTC_REQUIRE(!opts.sizes.empty(), "calibration needs at least one size");
  ABFTC_REQUIRE(opts.reps > 0, "calibration needs at least one rep");
  ABFTC_REQUIRE(opts.committers >= 1,
                "calibration needs at least one committer");

  Calibration cal;
  cal.committers = opts.committers;
  const std::size_t largest =
      *std::max_element(opts.sizes.begin(), opts.sizes.end());
  std::vector<std::byte> scratch(largest);
  for (std::size_t i = 0; i < scratch.size(); ++i)
    scratch[i] = static_cast<std::byte>(i * 1315423911u >> 17);

  CkptWriter writer(backend, opts.writer);
  // Start past any existing history: the writer enforces non-decreasing
  // timestamps across the backend's whole lifetime, and the concurrent
  // rounds must not collide with existing snapshot ids.
  double when = 1.0;
  CkptId next_id = 1;
  for (const SnapshotMeta& m : backend.list()) {
    when = std::max(when, m.when + 1.0);
    next_id = std::max(next_id, m.id + 1);
  }
  for (const std::size_t bytes : opts.sizes) {
    ABFTC_REQUIRE(bytes > 0, "calibration sizes must be positive");
    CalibrationPoint pt;
    pt.bytes = bytes;
    pt.write_seconds = std::numeric_limits<double>::infinity();
    pt.read_seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < opts.reps; ++rep) {
      if (opts.committers == 1) {
        MemoryImage image;
        image.add_region("calibration",
                         std::span(scratch.data(), bytes),
                         RegionClass::Remainder);
        auto t0 = Clock::now();
        const CkptId id = writer.take_full(image, when);
        pt.write_seconds = std::min(pt.write_seconds, seconds_since(t0));
        when += 1.0;

        t0 = Clock::now();
        (void)writer.restore_latest(image);
        pt.read_seconds = std::min(pt.read_seconds, seconds_since(t0));
        backend.drop(id);  // leave the backend as we found it
        continue;
      }
      // Contended commit: each round writes `committers` snapshots at once
      // and the round's wall time is the point. Reads stay single-stream —
      // recovery is one rank restoring, commit storms are many.
      const CkptId id0 = next_id;
      next_id += static_cast<CkptId>(opts.committers);
      const double wall = concurrent_round(
          backend, std::span(scratch.data(), bytes), id0, when,
          opts.committers);
      pt.write_seconds = std::min(pt.write_seconds, wall);
      when += 1.0;

      const auto t0 = Clock::now();
      SnapshotBlob back = backend.read_snapshot(id0);
      back.verify();
      pt.read_seconds = std::min(pt.read_seconds, seconds_since(t0));
      for (int t = 0; t < opts.committers; ++t)
        backend.drop(id0 + static_cast<CkptId>(t));
    }
    cal.points.push_back(pt);
  }

  // Least squares of t = latency + bytes / bandwidth over the write points.
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(cal.points.size());
  for (const CalibrationPoint& p : cal.points) {
    const auto x = static_cast<double>(p.bytes);
    sx += x;
    sy += p.write_seconds;
    sxx += x * x;
    sxy += x * p.write_seconds;
  }
  const double var = sxx - sx * sx / n;
  double slope = var > 0.0 ? (sxy - sx * sy / n) / var : 0.0;
  double intercept = (sy - slope * sx) / n;
  if (slope <= 0.0) {
    // Sub-noise regime (or a single point): fall back to the aggregate
    // throughput of the largest measurement and attribute no latency.
    const CalibrationPoint& big =
        *std::max_element(cal.points.begin(), cal.points.end(),
                          [](const auto& a, const auto& b) {
                            return a.bytes < b.bytes;
                          });
    slope = big.write_seconds / static_cast<double>(big.bytes);
    intercept = 0.0;
  }
  cal.write_bandwidth = 1.0 / slope;

  const CalibrationPoint& big =
      *std::max_element(cal.points.begin(), cal.points.end(),
                        [](const auto& a, const auto& b) {
                          return a.bytes < b.bytes;
                        });
  cal.read_bandwidth =
      static_cast<double>(big.bytes) / std::max(big.read_seconds, 1e-9);

  cal.model.name = "measured:" + std::string(backend.name());
  if (opts.committers > 1)
    cal.model.name += "(c" + std::to_string(opts.committers) + ")";
  cal.model.node_bandwidth = cal.write_bandwidth;
  cal.model.aggregate_bandwidth = 0.0;
  cal.model.latency = std::max(intercept, 0.0);
  cal.model.read_speedup =
      std::max(big.write_seconds / std::max(big.read_seconds, 1e-9), 1e-3);
  cal.model.validate();
  return cal;
}

}  // namespace abftc::ckpt::io

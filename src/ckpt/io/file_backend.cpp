/// \file file_backend.cpp
/// One file per snapshot (`snap_<id>.ckpt`) plus a rewritten-atomically
/// MANIFEST, under a caller-chosen directory.
///
/// Snapshot file layout (all integers little-endian, natural alignment):
///
///   FileHeader   72 B   magic, version, committed flag, meta, payload
///                       offset/size, header CRC
///   RegionEntry  24 B × region_count   (region id, bytes, payload CRC)
///   table CRC     8 B   crc32 of the table + pad
///   payload       —     regions concatenated, starting at payload_offset
///
/// Commit discipline: header (committed=0) + placeholder table first, then
/// the payload stream, fsync, then the final table and a committed=1 header,
/// fsync again, and only then the manifest entry (tmp + rename + dir fsync).
/// A crash at any point leaves either no manifest entry or a fully durable
/// snapshot; readers additionally reject committed=0 files and size
/// mismatches, so even a manifest restored from backup cannot resurrect a
/// torn snapshot.
///
/// O_DIRECT (Options::direct) applies to the payload stream only, through a
/// 4 KiB-aligned bounce buffer (metadata goes through a second, buffered fd
/// on the same file). Filesystems without O_DIRECT (tmpfs) fall back to
/// buffered writes; direct_active() reports the outcome.

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/io/backend.hpp"
#include "ckpt/io/detail.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/json.hpp"

namespace abftc::ckpt::io {

namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kMagic = 0x314F494354464241ull;  // "ABFTCIO1"
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kDirectAlign = 4096;
constexpr std::size_t kBounceBytes = 1 << 20;  // O_DIRECT staging buffer

struct FileHeader {
  std::uint64_t magic = kMagic;
  std::uint32_t version = kVersion;
  std::uint32_t committed = 0;
  std::uint64_t id = 0;
  std::uint32_t kind = 0;
  std::uint32_t region_count = 0;
  double when = 0.0;
  std::uint64_t entry_link = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t payload_offset = 0;
  std::uint32_t header_crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(FileHeader) == 72, "on-disk header layout");

using detail::align_up;
using detail::fsync_dir_best_effort;
using detail::fsync_or_throw;
using detail::pread_all;
using detail::pwrite_all;
using detail::RegionEntry;
using detail::sys_error;

std::uint32_t header_crc_of(const FileHeader& h) {
  // CRC of everything before the header_crc field itself.
  return common::crc32(std::span(reinterpret_cast<const std::byte*>(&h),
                                 offsetof(FileHeader, header_crc)));
}

struct FreeDeleter {
  void operator()(void* p) const noexcept { std::free(p); }
};

std::uint64_t payload_offset_for(std::uint32_t region_count, bool direct) {
  const std::size_t meta_bytes =
      sizeof(FileHeader) + region_count * sizeof(RegionEntry) + 8;
  return align_up(meta_bytes, direct ? kDirectAlign : 8);
}

std::vector<std::byte> table_bytes(const std::vector<RegionEntry>& entries) {
  std::vector<std::byte> out(entries.size() * sizeof(RegionEntry) + 8);
  std::memcpy(out.data(), entries.data(),
              entries.size() * sizeof(RegionEntry));
  const std::uint32_t crc = common::crc32(
      std::span(out.data(), entries.size() * sizeof(RegionEntry)));
  std::memcpy(out.data() + entries.size() * sizeof(RegionEntry), &crc, 4);
  return out;
}

}  // namespace

// --- Session ----------------------------------------------------------------

class FileBackend::Session final : public StorageBackend::WriteSession {
 public:
  Session(FileBackend& backend, SnapshotMeta meta,
          std::vector<RegionId> regions, std::vector<std::uint64_t> sizes)
      : backend_(backend),
        meta_(meta),
        regions_(std::move(regions)),
        sizes_(std::move(sizes)),
        path_(backend.snapshot_path(meta.id)) {
    // Metadata fd: always buffered.
    meta_fd_.fd = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (meta_fd_.fd < 0) sys_error("create " + path_);
    // Payload fd: O_DIRECT when requested and the filesystem allows it.
    direct_ = backend.opts_.direct;
    if (direct_) {
      data_fd_.fd = ::open(path_.c_str(), O_WRONLY | O_DIRECT);
      if (data_fd_.fd < 0) direct_ = false;  // tmpfs etc.: fall back
    }
    if (data_fd_.fd < 0) {
      data_fd_.fd = ::open(path_.c_str(), O_WRONLY);
      if (data_fd_.fd < 0) sys_error("open payload fd " + path_);
    }
    backend.direct_active_ = direct_;
    if (direct_) {
      void* p = nullptr;
      if (posix_memalign(&p, kDirectAlign, kBounceBytes) != 0)
        throw io_error("cannot allocate aligned bounce buffer");
      bounce_.reset(static_cast<std::byte*>(p));
    }

    payload_off_ = payload_offset_for(
        static_cast<std::uint32_t>(regions_.size()), direct_);
    // Phase 1: header with committed = 0 + zeroed table placeholder.
    FileHeader h = header(0);
    pwrite_all(meta_fd_.fd, &h, sizeof(h), 0, "header");
    const std::vector<std::byte> zeros(payload_off_ - sizeof(FileHeader));
    pwrite_all(meta_fd_.fd, zeros.data(), zeros.size(), sizeof(FileHeader),
               "table placeholder");
  }

  ~Session() override {
    if (!committed_) ::unlink(path_.c_str());  // abandoned: leave no debris
  }

  void append(std::span<const std::byte> chunk) override {
    ABFTC_REQUIRE(!committed_, "append after commit");
    ABFTC_REQUIRE(received_ + chunk.size() <= meta_.bytes,
                  "payload stream exceeds the declared snapshot size");
    if (!direct_) {
      pwrite_all(data_fd_.fd, chunk.data(), chunk.size(),
                 payload_off_ + received_, "payload");
      received_ += chunk.size();
      return;
    }
    // O_DIRECT: stage through the aligned bounce buffer.
    received_ += chunk.size();
    while (!chunk.empty()) {
      const std::size_t take =
          std::min(chunk.size(), kBounceBytes - bounce_fill_);
      std::memcpy(bounce_.get() + bounce_fill_, chunk.data(), take);
      bounce_fill_ += take;
      chunk = chunk.subspan(take);
      if (bounce_fill_ == kBounceBytes) flush_bounce(kBounceBytes);
    }
  }

  void commit(const std::vector<std::uint32_t>& region_crcs) override {
    ABFTC_REQUIRE(!committed_, "double commit");
    ABFTC_REQUIRE(region_crcs.size() == regions_.size(),
                  "need one CRC per region");
    if (direct_ && bounce_fill_ > 0) {
      // Pad the tail to the block size, write, then trim the file.
      const std::size_t padded = align_up(bounce_fill_, kDirectAlign);
      std::memset(bounce_.get() + bounce_fill_, 0, padded - bounce_fill_);
      flush_bounce(padded);
    }
    ABFTC_REQUIRE(received_ == meta_.bytes,
                  "payload stream shorter than the declared snapshot size");
    if (::ftruncate(meta_fd_.fd,
                    static_cast<off_t>(payload_off_ + meta_.bytes)) != 0)
      sys_error("ftruncate " + path_);
    fsync_or_throw(data_fd_.fd, "payload");

    // Phase 2: final table, then the committed header, then durability.
    std::vector<RegionEntry> entries(regions_.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
      entries[i] = RegionEntry{regions_[i], sizes_[i], region_crcs[i], 0};
    const auto table = table_bytes(entries);
    pwrite_all(meta_fd_.fd, table.data(), table.size(), sizeof(FileHeader),
               "table");
    FileHeader h = header(1);
    pwrite_all(meta_fd_.fd, &h, sizeof(h), 0, "final header");
    fsync_or_throw(meta_fd_.fd, "snapshot");

    backend_.record_commit(meta_);
    committed_ = true;
  }

 private:
  FileHeader header(std::uint32_t committed) const {
    FileHeader h;
    h.committed = committed;
    h.id = meta_.id;
    h.kind = static_cast<std::uint32_t>(meta_.kind);
    h.region_count = static_cast<std::uint32_t>(regions_.size());
    h.when = meta_.when;
    h.entry_link = meta_.entry_link;
    h.payload_bytes = meta_.bytes;
    h.payload_offset = payload_off_;
    h.header_crc = header_crc_of(h);
    return h;
  }

  void flush_bounce(std::size_t bytes) {
    // Writes stay block-aligned because flushes happen only at full buffers
    // (1 MiB) or once, padded, at commit; the padded tail past meta_.bytes
    // is trimmed by the ftruncate in commit().
    pwrite_all(data_fd_.fd, bounce_.get(), bytes, payload_off_ + flushed_,
               "payload (direct)");
    flushed_ += bytes;
    bounce_fill_ = 0;
  }

  FileBackend& backend_;
  SnapshotMeta meta_;
  std::vector<RegionId> regions_;
  std::vector<std::uint64_t> sizes_;
  std::string path_;
  detail::FdGuard meta_fd_, data_fd_;
  bool direct_ = false;
  std::unique_ptr<std::byte, FreeDeleter> bounce_;
  std::size_t bounce_fill_ = 0;
  std::uint64_t flushed_ = 0;   // block-aligned bytes on disk (direct mode)
  std::uint64_t received_ = 0;  // logical payload bytes accepted
  std::uint64_t payload_off_ = 0;
  bool committed_ = false;
};

// --- FileBackend ------------------------------------------------------------

FileBackend::FileBackend(std::string directory)
    : FileBackend(std::move(directory), Options{}) {}

FileBackend::FileBackend(std::string directory, Options opts)
    : dir_(std::move(directory)), opts_(opts) {}

FileBackend::~FileBackend() = default;

std::string FileBackend::snapshot_path(CkptId id) const {
  return dir_ + "/snap_" + std::to_string(id) + ".ckpt";
}

void FileBackend::open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ABFTC_REQUIRE(!ec, "cannot create checkpoint directory " + dir_);
  manifest_.clear();
  std::ifstream in(dir_ + "/MANIFEST");
  if (!in) return;  // fresh store
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream is(line);
    SnapshotMeta m;
    unsigned kind = 0;
    if (!(is >> m.id >> kind >> m.when >> m.entry_link >> m.bytes))
      throw io_error("malformed MANIFEST line: " + line);
    m.kind = static_cast<CkptKind>(kind);
    manifest_.push_back(m);
  }
}

void FileBackend::rewrite_manifest() const {
  const std::string tmp = dir_ + "/MANIFEST.tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw io_error("cannot write " + tmp);
    for (const SnapshotMeta& m : manifest_)
      out << m.id << ' ' << static_cast<unsigned>(m.kind) << ' '
          << common::JsonWriter::number(m.when) << ' ' << m.entry_link << ' '
          << m.bytes << '\n';
    out.flush();
    if (!out) throw io_error("short write to " + tmp);
  }
  {
    detail::FdGuard fd{::open(tmp.c_str(), O_RDONLY)};
    if (fd.fd < 0) sys_error("reopen " + tmp);
    fsync_or_throw(fd.fd, "manifest");
  }
  // Failures up to and including the rename leave the old manifest intact
  // (callers roll their in-memory copy back); past the rename the update is
  // visible, so nothing may throw anymore.
  if (std::rename(tmp.c_str(), (dir_ + "/MANIFEST").c_str()) != 0)
    sys_error("rename manifest");
  fsync_dir_best_effort(dir_);
}

void FileBackend::record_commit(const SnapshotMeta& meta) {
  manifest_.push_back(meta);
  try {
    rewrite_manifest();
  } catch (...) {
    // Failed manifest write: the snapshot never became visible, so the
    // in-memory state must not claim it either (the session's destructor
    // unlinks the data file).
    manifest_.pop_back();
    throw;
  }
}

std::unique_ptr<StorageBackend::WriteSession> FileBackend::begin_snapshot(
    const SnapshotMeta& meta, std::vector<RegionId> regions,
    std::vector<std::uint64_t> region_sizes) {
  for (const SnapshotMeta& m : manifest_)
    ABFTC_REQUIRE(m.id != meta.id, "duplicate snapshot id");
  detail::require_valid_layout(meta, regions, region_sizes);
  return std::make_unique<Session>(*this, meta, std::move(regions),
                                   std::move(region_sizes));
}

SnapshotBlob FileBackend::read_snapshot(CkptId id) const {
  const std::string path = snapshot_path(id);
  bool known = false;
  for (const SnapshotMeta& m : manifest_) known |= m.id == id;
  if (!known) throw io_error("unknown snapshot id " + std::to_string(id));

  detail::FdGuard fd{::open(path.c_str(), O_RDONLY)};
  if (fd.fd < 0) sys_error("open " + path);

  FileHeader h;
  pread_all(fd.fd, &h, sizeof(h), 0, path);
  if (h.magic != kMagic || h.version != kVersion)
    throw io_error("not a snapshot file: " + path);
  if (h.header_crc != header_crc_of(h))
    throw io_error("snapshot header corrupted: " + path);
  if (h.committed != 1)
    throw io_error("torn (uncommitted) snapshot: " + path);
  if (h.id != id) throw io_error("snapshot id mismatch in " + path);

  struct stat st {};
  if (::fstat(fd.fd, &st) != 0) sys_error("stat " + path);
  if (static_cast<std::uint64_t>(st.st_size) !=
      h.payload_offset + h.payload_bytes)
    throw io_error("truncated snapshot file: " + path);

  std::vector<RegionEntry> entries(h.region_count);
  std::vector<std::byte> table(h.region_count * sizeof(RegionEntry) + 8);
  pread_all(fd.fd, table.data(), table.size(), sizeof(FileHeader), path);
  std::uint32_t stored_table_crc = 0;
  std::memcpy(&stored_table_crc,
              table.data() + h.region_count * sizeof(RegionEntry), 4);
  if (stored_table_crc !=
      common::crc32(
          std::span(table.data(), h.region_count * sizeof(RegionEntry))))
    throw io_error("snapshot region table corrupted: " + path);
  std::memcpy(entries.data(), table.data(),
              h.region_count * sizeof(RegionEntry));

  SnapshotBlob blob;
  blob.meta = SnapshotMeta{h.id, static_cast<CkptKind>(h.kind), h.when,
                           h.entry_link, h.payload_bytes};
  blob.regions.reserve(entries.size());
  std::uint64_t off = h.payload_offset;
  for (const RegionEntry& e : entries) {
    RegionBlob r;
    r.region = e.region;
    r.crc = e.crc;
    r.payload.resize(e.bytes);
    pread_all(fd.fd, r.payload.data(), e.bytes, off, path);
    off += e.bytes;
    blob.regions.push_back(std::move(r));
  }
  return blob;
}

std::vector<SnapshotMeta> FileBackend::list() const { return manifest_; }

void FileBackend::drop(CkptId id) {
  const auto it =
      std::find_if(manifest_.begin(), manifest_.end(),
                   [id](const SnapshotMeta& m) { return m.id == id; });
  if (it == manifest_.end())
    throw io_error("unknown snapshot id " + std::to_string(id));
  const SnapshotMeta dropped = *it;
  const auto index = it - manifest_.begin();
  manifest_.erase(it);
  try {
    rewrite_manifest();
  } catch (...) {
    // Keep memory and disk in agreement (mirror of record_commit): the
    // durable manifest still lists the snapshot, so we must too.
    manifest_.insert(manifest_.begin() + index, dropped);
    throw;
  }
  ::unlink(snapshot_path(id).c_str());
}

}  // namespace abftc::ckpt::io

#include "ckpt/io/writer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <future>
#include <optional>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"

namespace abftc::ckpt::io {

namespace {

std::vector<RegionId> select_regions(const MemoryImage& image,
                                     std::optional<RegionClass> cls,
                                     bool dirty_only) {
  std::vector<RegionId> out;
  for (RegionId id = 0; id < image.region_count(); ++id) {
    const auto& info = image.info(id);
    if (cls && info.cls != *cls) continue;
    if (dirty_only && !info.dirty) continue;
    out.push_back(id);
  }
  return out;
}

std::optional<SnapshotMeta> find_meta(const std::vector<SnapshotMeta>& metas,
                                      CkptId id) {
  for (const SnapshotMeta& m : metas)
    if (m.id == id) return m;
  return std::nullopt;
}

}  // namespace

CkptWriter::CkptWriter(StorageBackend& backend, WriterOptions opts)
    : backend_(backend), opts_(opts) {
  ABFTC_REQUIRE(opts_.chunk_bytes > 0, "chunk size must be positive");
  for (const SnapshotMeta& m : backend_.list()) {
    next_id_ = std::max(next_id_, m.id + 1);
    last_when_ = std::max(last_when_, m.when);
  }
}

common::Executor& CkptWriter::executor() const {
  return opts_.executor != nullptr ? *opts_.executor
                                   : common::Executor::global();
}

CkptId CkptWriter::commit(MemoryImage& image, CkptKind kind, double when,
                          CkptId entry_link,
                          const std::vector<RegionId>& regions) {
  // Finite only: the file backend serializes `when` into its manifest, and
  // a non-finite value would render as `null` and poison every later open.
  ABFTC_REQUIRE(std::isfinite(when), "checkpoint timestamp must be finite");
  ABFTC_REQUIRE(when >= last_when_,
                "checkpoint timestamps must be non-decreasing");
  // An empty selection (an Incremental with nothing dirty) still records a
  // snapshot, exactly as CheckpointStore does.

  SnapshotMeta meta;
  meta.id = next_id_;
  meta.kind = kind;
  meta.when = when;
  meta.entry_link = entry_link;
  std::vector<std::uint64_t> sizes;
  sizes.reserve(regions.size());
  for (const RegionId id : regions) {
    sizes.push_back(image.bytes(id).size());
    meta.bytes += sizes.back();
  }
  auto session = backend_.begin_snapshot(meta, regions, sizes);
  std::vector<std::uint32_t> crcs(regions.size());

  // Inside a parallel region the pool may have no free worker to run the
  // CRC tasks, and blocking on futures there can deadlock (unlike
  // parallel_for, submit() has no caller-participates fallback) — commits
  // issued from parallel code run the serial path instead.
  const bool async =
      opts_.async && !common::Executor::inside_parallel_region();
  if (!async) {
    // Reference path: whole-region copy, then the CRC pass, then the write —
    // the costs sum. Bytes and CRCs are identical to the pipeline below.
    std::vector<std::byte> staging;
    for (std::size_t r = 0; r < regions.size(); ++r) {
      const auto src = image.bytes(regions[r]);
      staging.resize(src.size());
      std::memcpy(staging.data(), src.data(), src.size());
      common::Crc32 acc;
      for (std::size_t off = 0; off < staging.size();
           off += opts_.chunk_bytes)
        acc.update(std::span(staging)
                       .subspan(off, std::min(opts_.chunk_bytes,
                                              staging.size() - off)));
      crcs[r] = acc.value();
      session->append(std::span(staging));
    }
    session->commit(crcs);
  } else {
    // The pipeline: regions flattened into fixed chunks, two staging
    // buffers. Per chunk the caller copies then hands the buffer to the
    // backend while a pool task CRCs it concurrently; a buffer is reused
    // only after its CRC task resolved (the append already has: appends are
    // synchronous on this thread).
    struct Chunk {
      std::size_t region;  // index into `regions`
      std::size_t off;
      std::size_t len;
    };
    std::vector<Chunk> chunks;
    for (std::size_t r = 0; r < regions.size(); ++r)
      for (std::size_t off = 0; off < sizes[r]; off += opts_.chunk_bytes)
        chunks.push_back(
            {r, off,
             std::min<std::size_t>(opts_.chunk_bytes, sizes[r] - off)});

    std::vector<std::byte> bufs[2] = {
        std::vector<std::byte>(opts_.chunk_bytes),
        std::vector<std::byte>(opts_.chunk_bytes)};
    std::vector<std::future<std::uint32_t>> futs(chunks.size());
    std::vector<std::uint32_t> chunk_crcs(chunks.size());
    common::Executor& ex = executor();

    // Outstanding CRC tasks read the staging buffers; never unwind past
    // them.
    const auto drain = [&] {
      for (auto& f : futs)
        if (f.valid()) f.wait();
    };
    try {
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        auto& buf = bufs[i % 2];
        if (i >= 2) chunk_crcs[i - 2] = futs[i - 2].get();  // buffer free
        const Chunk& c = chunks[i];
        const auto src = image.bytes(regions[c.region]);
        std::memcpy(buf.data(), src.data() + c.off, c.len);
        futs[i] = ex.submit([p = buf.data(), len = c.len] {
          return common::crc32(std::span(p, len));
        });
        session->append(std::span(buf.data(), c.len));
      }
      for (std::size_t i = chunks.size() >= 2 ? chunks.size() - 2 : 0;
           i < chunks.size(); ++i)
        chunk_crcs[i] = futs[i].get();
    } catch (...) {
      drain();
      throw;
    }

    // Fold the chunk CRCs per region, in chunk order.
    std::vector<common::Crc32Chunks> folds(regions.size());
    for (std::size_t i = 0; i < chunks.size(); ++i)
      folds[chunks[i].region].add(chunk_crcs[i], chunks[i].len);
    for (std::size_t r = 0; r < regions.size(); ++r)
      crcs[r] = folds[r].value();
    session->commit(crcs);
  }

  last_when_ = when;
  return next_id_++;
}

CkptId CkptWriter::take_full(MemoryImage& image, double when) {
  ABFTC_REQUIRE(image.region_count() > 0, "image has no regions");
  const CkptId id =
      commit(image, CkptKind::Full, when, 0, select_regions(image, {}, false));
  image.clear_dirty_all();
  return id;
}

CkptId CkptWriter::take_entry(MemoryImage& image, double when) {
  ABFTC_REQUIRE(image.region_count() > 0, "image has no regions");
  return commit(image, CkptKind::Entry, when, 0,
                select_regions(image, RegionClass::Remainder, false));
}

CkptId CkptWriter::take_exit(MemoryImage& image, double when, CkptId entry) {
  const auto entry_meta = find_meta(backend_.list(), entry);
  ABFTC_REQUIRE(entry_meta.has_value(), "unknown entry checkpoint id");
  ABFTC_REQUIRE(entry_meta->kind == CkptKind::Entry,
                "take_exit must reference an Entry checkpoint");
  const auto regions = select_regions(image, RegionClass::Library, false);
  std::size_t exit_bytes = 0;
  for (const RegionId id : regions) exit_bytes += image.bytes(id).size();
  // "A split, but complete, coordinated checkpoint" (Section III-A).
  ABFTC_REQUIRE(entry_meta->bytes + exit_bytes == image.total_bytes(),
                "entry+exit checkpoints do not cover the full image");
  const CkptId id = commit(image, CkptKind::Exit, when, entry, regions);
  image.clear_dirty_all();
  return id;
}

CkptId CkptWriter::take_incremental(MemoryImage& image, double when) {
  bool has_full = false;
  for (const SnapshotMeta& m : backend_.list())
    has_full |= m.kind == CkptKind::Full;
  ABFTC_REQUIRE(has_full, "incremental checkpoint requires a Full base");
  const CkptId id = commit(image, CkptKind::Incremental, when, 0,
                           select_regions(image, {}, true));
  image.clear_dirty_all();
  return id;
}

bool CkptWriter::has_restore_point() const {
  for (const SnapshotMeta& m : backend_.list())
    if (m.kind == CkptKind::Full || m.kind == CkptKind::Exit) return true;
  return false;
}

void CkptWriter::apply(const SnapshotBlob& blob, MemoryImage& image,
                       RestoreReport& report) const {
  for (const RegionBlob& r : blob.regions) {
    auto dst = image.mutable_bytes(r.region);
    std::memcpy(dst.data(), r.payload.data(), r.payload.size());
    report.bytes_restored += r.payload.size();
  }
  report.applied.push_back(blob.meta.id);
}

RestoreReport CkptWriter::restore_latest(MemoryImage& image) const {
  const auto metas = backend_.list();
  // Newest complete protection point, scanning backwards.
  std::optional<std::size_t> point;
  for (std::size_t i = metas.size(); i-- > 0;) {
    if (metas[i].kind == CkptKind::Full || metas[i].kind == CkptKind::Exit) {
      point = i;
      break;
    }
  }
  ABFTC_REQUIRE(point.has_value(), "no complete checkpoint to restore from");

  RestoreReport report;
  report.from_when = metas[*point].when;
  std::vector<CkptId> plan;
  if (metas[*point].kind == CkptKind::Full) {
    plan.push_back(metas[*point].id);
    for (std::size_t i = *point + 1; i < metas.size(); ++i)
      if (metas[i].kind == CkptKind::Incremental) {
        plan.push_back(metas[i].id);
        report.from_when = metas[i].when;
      }
  } else {  // Exit: its Entry (remainder) first, then the Exit (library)
    plan.push_back(metas[*point].entry_link);
    plan.push_back(metas[*point].id);
  }

  // Read + verify everything before mutating the image: a torn/corrupted
  // snapshot must not leave a half-restored application state behind.
  std::vector<SnapshotBlob> blobs;
  blobs.reserve(plan.size());
  for (const CkptId id : plan) blobs.push_back(backend_.read_snapshot(id));
  for (const SnapshotBlob& blob : blobs) {
    std::uint64_t total = 0;
    for (const RegionBlob& r : blob.regions) {
      ABFTC_REQUIRE(r.region < image.region_count(),
                    "snapshot references a region the image does not have");
      if (image.bytes(r.region).size() != r.payload.size())
        throw io_error("region size changed since the checkpoint was taken");
      total += r.payload.size();
    }
    if (total != blob.meta.bytes)
      throw io_error("snapshot payload does not match its metadata");
  }
  if (common::Executor::inside_parallel_region()) {
    // Arena tasks only run on pool workers; from parallel code, waiting on
    // them can deadlock — verify inline instead.
    for (const SnapshotBlob& blob : blobs) blob.verify();
  } else {
    // End-to-end CRC verification, one pool task per snapshot.
    common::Executor::ScopedArena arena(executor());
    for (const SnapshotBlob& blob : blobs)
      arena.submit([&blob] { blob.verify(); });
    arena.wait();  // rethrows the first io_error
  }

  for (const SnapshotBlob& blob : blobs) apply(blob, image, report);
  image.clear_dirty_all();
  return report;
}

}  // namespace abftc::ckpt::io

#include "ckpt/io/faulting.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace abftc::ckpt::io {

/// Wraps the inner session. TornPayload streams a bit-flipped copy of every
/// chunk (XOR 0xFF — guaranteed to differ from the real payload, so the
/// caller-supplied CRCs cannot match at restore) and commits normally.
/// FailedCommit streams faithfully but throws from commit() without ever
/// committing the inner session; destroying the inner session uncommitted
/// leaves no visible snapshot, exactly like a writer killed pre-commit.
class FaultingBackend::Session final : public StorageBackend::WriteSession {
 public:
  Session(std::unique_ptr<WriteSession> inner, WriteFault fault)
      : inner_(std::move(inner)), fault_(fault) {}

  void append(std::span<const std::byte> chunk) override {
    if (fault_ == WriteFault::TornPayload) {
      std::vector<std::byte> torn(chunk.size());
      std::transform(chunk.begin(), chunk.end(), torn.begin(),
                     [](std::byte b) { return b ^ std::byte{0xFF}; });
      inner_->append(std::span<const std::byte>(torn));
    } else {
      inner_->append(chunk);
    }
  }

  void commit(const std::vector<std::uint32_t>& region_crcs) override {
    if (fault_ == WriteFault::FailedCommit)
      throw io_error("injected commit failure (FaultingBackend)");
    inner_->commit(region_crcs);
  }

 private:
  std::unique_ptr<WriteSession> inner_;
  WriteFault fault_;
};

FaultingBackend::FaultingBackend(StorageBackend& inner,
                                 std::vector<Fault> faults)
    : inner_(inner), faults_(std::move(faults)) {}

void FaultingBackend::open() { inner_.open(); }

SnapshotBlob FaultingBackend::read_snapshot(CkptId id) const {
  return inner_.read_snapshot(id);
}

std::vector<SnapshotMeta> FaultingBackend::list() const {
  return inner_.list();
}

void FaultingBackend::drop(CkptId id) { inner_.drop(id); }

std::unique_ptr<StorageBackend::WriteSession> FaultingBackend::begin_snapshot(
    const SnapshotMeta& meta, std::vector<RegionId> regions,
    std::vector<std::uint64_t> region_sizes) {
  const std::size_t index = writes_started_++;
  auto inner = inner_.begin_snapshot(meta, std::move(regions),
                                     std::move(region_sizes));
  for (const Fault& f : faults_) {
    if (f.write_index == index) {
      ++faults_fired_;
      return std::make_unique<Session>(std::move(inner), f.kind);
    }
  }
  return inner;
}

}  // namespace abftc::ckpt::io

#pragma once
/// \file faulting.hpp
/// A fault-injecting StorageBackend decorator for campaign runs.
///
/// Wraps any real backend and tears selected snapshot writes the way a
/// crashed or misbehaving committer would:
///
///  * TornPayload   — the write "succeeds" (the snapshot commits and is
///    visible in list()) but the payload bytes that reached the medium are
///    garbage, so SnapshotBlob::verify() rejects it at restore time. This
///    is the committed-but-corrupt shape a power loss between payload
///    writeback and commit-record writeback produces.
///  * FailedCommit  — commit() throws io_error after the payload streamed,
///    leaving no visible snapshot (the ENOSPC / killed-before-commit
///    shape). The writer sees the failure and can carry on without that
///    protection point.
///
/// The decorator is how `torn`-kind campaign cells reach the dist runtime:
/// the runtime believes the checkpoint landed, and only a later restore
/// discovers it must fall back past it (latest_restorable does exactly
/// that walk). Faults target writes by index — the Nth begin_snapshot /
/// write_snapshot since construction — so campaign cells stay
/// deterministic and replayable.

#include <cstddef>
#include <vector>

#include "ckpt/io/backend.hpp"

namespace abftc::ckpt::io {

enum class WriteFault {
  TornPayload,   ///< commit succeeds, payload bytes corrupted on medium
  FailedCommit,  ///< commit() throws io_error; no snapshot becomes visible
};

class FaultingBackend final : public StorageBackend {
 public:
  struct Fault {
    std::size_t write_index = 0;  ///< 0-based index of the targeted write
    WriteFault kind = WriteFault::TornPayload;
  };

  /// Decorate `inner` (non-owning; must outlive the decorator).
  FaultingBackend(StorageBackend& inner, std::vector<Fault> faults);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "faulting";
  }
  void open() override;
  [[nodiscard]] SnapshotBlob read_snapshot(CkptId id) const override;
  [[nodiscard]] std::vector<SnapshotMeta> list() const override;
  void drop(CkptId id) override;
  [[nodiscard]] std::unique_ptr<WriteSession> begin_snapshot(
      const SnapshotMeta& meta, std::vector<RegionId> regions,
      std::vector<std::uint64_t> region_sizes) override;

  /// Writes started so far (faulted or not).
  [[nodiscard]] std::size_t writes_started() const noexcept {
    return writes_started_;
  }
  /// Faults that actually fired (a plan entry whose index never arrives
  /// stays pending).
  [[nodiscard]] std::size_t faults_fired() const noexcept {
    return faults_fired_;
  }

 private:
  class Session;
  StorageBackend& inner_;
  std::vector<Fault> faults_;
  std::size_t writes_started_ = 0;
  std::size_t faults_fired_ = 0;
};

}  // namespace abftc::ckpt::io

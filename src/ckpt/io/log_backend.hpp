#pragma once
/// \file log_backend.hpp
/// LogBackend: an append-only, sharded changelog checkpoint store.
///
/// Where FileBackend writes one file per snapshot and serializes every
/// committer on a single MANIFEST rename, the log backend appends
/// self-describing records to N shard segment files (`wal_<shard>_<gen>.log`)
/// and needs no manifest at all: commit = append + flush + sequence
/// advance. A snapshot id hashes to a shard, so concurrent committers on
/// different shards never contend on an inode — this is the backend's
/// reason to exist, and the one deliberate departure from the "backends are
/// not thread-safe" rule in backend.hpp (concurrent_committers() is true;
/// same-shard committers serialize on the shard lock).
///
/// Record framing (all integers little-endian, 8-byte alignment):
///
///   RecordHeader 72 B   magic, type (snapshot/tombstone), meta, seq,
///                       header CRC
///   RegionEntry  24 B × region_count, then table CRC + pad (8 B)
///   payload      —      regions concatenated, zero-padded to 8 B
///   trailer       8 B   record CRC (table ∥ payload), trailer magic
///
/// Recovery is a scan, not a manifest load: open() walks every segment,
/// keeps records whose framing and CRCs hold, and discards exactly the torn
/// suffix of each writable segment (a record whose framing never completed,
/// or a tail record whose payload CRC does not match — the shape an
/// unacknowledged commit leaves). A *mid-file* record with a bad payload is
/// kept: its commit was acknowledged, so the damage is corruption, and
/// readers reject it at verify time (latest_restorable falls back past it).
/// drop() appends a tombstone record; replay applies tombstones in sequence
/// order.
///
/// Compaction (compaction.hpp) periodically freezes the writable segments,
/// folds the live Full + Incremental chain into one equivalent Full in a
/// fresh `frozen_<gen>.log`, and unlinks segments no live record references
/// — so `ckpt_every` campaigns replay a bounded log suffix instead of an
/// unbounded incremental history. Passes run on Executor::submit when
/// Options::compact_every > 0, or on demand via compact_now(). A crash
/// between the frozen segment's rename and the old segments' unlink leaves
/// duplicate records; the scan dedupes by sequence number (highest
/// generation wins), so recovery is unaffected.
///
/// io_uring (Options::uring): payload chunks are submitted through a
/// per-shard UringQueue and reaped at commit, overlapping the appends of
/// one commit inside the kernel. Probed at runtime; everything falls back
/// to pwrite when unavailable (uring_active() tells which happened).

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ckpt/io/backend.hpp"
#include "ckpt/io/compaction.hpp"

namespace abftc::common {
class Executor;  // defined in common/executor.hpp
}

namespace abftc::ckpt::io {

class UringQueue;

class LogBackend final : public StorageBackend {
 public:
  struct Options {
    /// Segment shards; committers map to shards by id hash.
    unsigned shards = 8;
    /// Submit payload appends through io_uring (runtime-probed; pwrite
    /// fallback when the kernel or container refuses).
    bool uring = false;
    /// fdatasync each commit (and tombstone). false trades durability of
    /// the last few records for commit latency: a crash can tear several
    /// tail records instead of at most one.
    bool flush = true;
    /// Run a background compaction pass every N commits (0 = only via
    /// compact_now()).
    unsigned compact_every = 0;
    /// Pool for background passes; nullptr = common::Executor::global().
    common::Executor* executor = nullptr;
  };

  explicit LogBackend(std::string directory);
  LogBackend(std::string directory, Options opts);
  ~LogBackend() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "log";
  }
  void open() override;
  [[nodiscard]] SnapshotBlob read_snapshot(CkptId id) const override;
  [[nodiscard]] std::vector<SnapshotMeta> list() const override;
  void drop(CkptId id) override;
  [[nodiscard]] std::unique_ptr<WriteSession> begin_snapshot(
      const SnapshotMeta& meta, std::vector<RegionId> regions,
      std::vector<std::uint64_t> region_sizes) override;
  [[nodiscard]] bool concurrent_committers() const noexcept override {
    return true;
  }

  /// Run one compaction pass synchronously; returns the cumulative stats.
  /// Safe to call while committers are active (they block only for the
  /// brief segment roll, not for the rewrite).
  CompactionStats compact_now();
  /// Block until a background pass queued by maybe_compact() finished.
  void wait_for_compaction();
  [[nodiscard]] CompactionStats compaction_stats() const;

  /// Framed bytes of live (listed) records — what a full rewrite would keep.
  [[nodiscard]] std::uint64_t live_bytes() const;
  /// Bytes across all segment files on disk (live + superseded + torn).
  [[nodiscard]] std::uint64_t segment_bytes() const;
  [[nodiscard]] bool uring_active() const noexcept { return uring_ok_; }
  [[nodiscard]] unsigned shard_count() const noexcept {
    return opts_.shards;
  }
  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

 private:
  class Session;

  /// Where a committed record lives. `meta` is duplicated here so list()
  /// and the compaction planner never touch the disk.
  struct RecordLoc {
    std::string file;
    std::uint64_t offset = 0;        ///< record (header) start
    std::uint64_t record_bytes = 0;  ///< full framed length
    SnapshotMeta meta;
  };

  struct Shard {
    unsigned index = 0;
    std::mutex m;  ///< held by a Session from begin to commit
    int fd = -1;   ///< writable wal fd; -1 until first append after a roll
    std::string path;
    std::uint64_t gen = 0;
    std::uint64_t tail = 0;  ///< append offset (committed bytes)
    std::unique_ptr<UringQueue> ring;
    bool ring_failed = false;  ///< ring creation failed once; stay on pwrite
  };

  [[nodiscard]] Shard& shard_for(CkptId id) noexcept;
  /// Open (or create, after a roll) the shard's writable segment. Requires
  /// the shard lock.
  void ensure_writable(Shard& shard);
  /// Post-commit hook (no locks held): queue a background pass when
  /// compact_every commits accumulated.
  void maybe_compact();

  /// Read one record back as a blob, validating framing and CRC structure
  /// (payload CRCs are verify()'s job). Opens its own fd; the caller must
  /// guarantee the file outlives the call (hold index_m_, or be the
  /// compaction pass, which is the only deleter).
  [[nodiscard]] SnapshotBlob read_record(const RecordLoc& loc) const;
  /// Serialize a snapshot as one framed record (compaction's fold output).
  [[nodiscard]] static std::vector<std::byte> encode_record(
      const SnapshotBlob& blob, std::uint64_t seq);

  std::string dir_;
  Options opts_;
  bool uring_ok_ = false;

  /// Guards the index (order_/by_id_/in_flight_), the seq/gen counters and
  /// stats_. Lock order: a shard lock may be held when taking index_m_,
  /// never the reverse.
  mutable std::mutex index_m_;
  std::map<std::uint64_t, RecordLoc> order_;  ///< seq → record, commit order
  std::unordered_map<CkptId, std::uint64_t> by_id_;
  std::unordered_set<CkptId> in_flight_;  ///< ids with an open session
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_gen_ = 1;
  CompactionStats stats_;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex compact_m_;  ///< serializes whole passes
  std::atomic<bool> compact_pending_{false};
  std::atomic<std::uint64_t> commits_since_compact_{0};
  std::mutex compact_future_m_;
  std::future<void> compact_future_;
};

}  // namespace abftc::ckpt::io

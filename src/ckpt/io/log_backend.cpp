/// \file log_backend.cpp
/// Sharded append-only changelog store (see log_backend.hpp for the format
/// and the recovery/locking contracts; compaction.cpp holds the rewrite
/// pass).

#include "ckpt/io/log_backend.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <optional>
#include <utility>

#include "ckpt/io/detail.hpp"
#include "ckpt/io/log_format.hpp"
#include "ckpt/io/uring.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"

namespace abftc::ckpt::io {

namespace {

namespace fs = std::filesystem;

using detail::align_up;
using detail::FdGuard;
using detail::fsync_or_throw;
using detail::pread_all;
using detail::pwrite_all;
using detail::RegionEntry;
using detail::sys_error;
using logf::kFrozenShard;
using logf::kLogVersion;
using logf::kRecMagic;
using logf::kSegMagic;
using logf::kTrailerMagic;
using logf::kTypeSnapshot;
using logf::kTypeTombstone;
using logf::RecordHeader;
using logf::SegmentHeader;

/// Same avalanche as the dist runtime's flip-site hashing: snapshot ids are
/// small consecutive integers, so shard = id % N would put one CkptWriter's
/// whole chain on rotating shards but *correlated* writers (rank r writes
/// ids r, r+N, ...) on one; the mix decorrelates both.
std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint32_t header_crc_of(const RecordHeader& h) {
  return common::crc32(std::span(reinterpret_cast<const std::byte*>(&h),
                                 offsetof(RecordHeader, header_crc)));
}

RecordHeader make_header(std::uint32_t type, const SnapshotMeta& meta,
                         std::uint32_t region_count, std::uint64_t seq) {
  RecordHeader h;
  h.type = type;
  h.id = meta.id;
  h.kind = static_cast<std::uint32_t>(meta.kind);
  h.region_count = region_count;
  h.when = meta.when;
  h.entry_link = meta.entry_link;
  h.payload_bytes = meta.bytes;
  h.seq = seq;
  h.header_crc = header_crc_of(h);
  return h;
}

/// Region table as stored: entries, table CRC, 4 B pad.
std::vector<std::byte> table_bytes(const std::vector<RegionEntry>& entries) {
  std::vector<std::byte> out(entries.size() * sizeof(RegionEntry) + 8);
  if (!entries.empty())
    std::memcpy(out.data(), entries.data(),
                entries.size() * sizeof(RegionEntry));
  const std::uint32_t crc = common::crc32(
      std::span(out.data(), entries.size() * sizeof(RegionEntry)));
  std::memcpy(out.data() + entries.size() * sizeof(RegionEntry), &crc, 4);
  return out;
}

std::uint64_t record_length(std::uint32_t region_count,
                            std::uint64_t payload_bytes) {
  return sizeof(RecordHeader) + region_count * sizeof(RegionEntry) + 8 +
         align_up(payload_bytes, 8) + logf::kTrailerBytes;
}

/// record CRC = crc32(table bytes) extended by the payload stream.
std::uint32_t record_crc_of(std::uint32_t table_crc_full,
                            std::uint32_t payload_crc,
                            std::uint64_t payload_bytes) {
  return common::crc32_combine(table_crc_full, payload_crc, payload_bytes);
}

std::array<std::byte, logf::kTrailerBytes> trailer_bytes(
    std::uint32_t record_crc) {
  std::array<std::byte, logf::kTrailerBytes> t{};
  std::memcpy(t.data(), &record_crc, 4);
  std::memcpy(t.data() + 4, &kTrailerMagic, 4);
  return t;
}

/// "wal_<shard>_<gen>.log" / "frozen_<gen>.log" → (shard, gen).
std::optional<std::pair<std::uint32_t, std::uint64_t>> parse_segment_name(
    const std::string& name) {
  const auto parse_u64 = [](const std::string& s,
                            std::uint64_t& out) {
    if (s.empty()) return false;
    out = 0;
    for (const char c : s) {
      if (c < '0' || c > '9') return false;
      out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return true;
  };
  if (!name.ends_with(".log")) return std::nullopt;
  const std::string stem = name.substr(0, name.size() - 4);
  if (stem.starts_with("wal_")) {
    const auto us = stem.find('_', 4);
    if (us == std::string::npos) return std::nullopt;
    std::uint64_t shard = 0, gen = 0;
    if (!parse_u64(stem.substr(4, us - 4), shard) ||
        !parse_u64(stem.substr(us + 1), gen))
      return std::nullopt;
    return std::pair{static_cast<std::uint32_t>(shard), gen};
  }
  if (stem.starts_with("frozen_")) {
    std::uint64_t gen = 0;
    if (!parse_u64(stem.substr(7), gen)) return std::nullopt;
    return std::pair{kFrozenShard, gen};
  }
  return std::nullopt;
}

}  // namespace

// --- Session ----------------------------------------------------------------

/// Holds the shard lock from construction to commit (or destruction): the
/// record occupies a contiguous extent at the shard's tail, so same-shard
/// committers serialize here while other shards proceed. The header area is
/// left unwritten until commit — an aborted or crashed session leaves bytes
/// that fail the magic check, which the recovery scan discards as a torn
/// suffix (the destructor additionally truncates them away).
class LogBackend::Session final : public StorageBackend::WriteSession {
 public:
  Session(LogBackend& backend, SnapshotMeta meta,
          std::vector<RegionId> regions, std::vector<std::uint64_t> sizes)
      : backend_(backend),
        meta_(meta),
        regions_(std::move(regions)),
        sizes_(std::move(sizes)) {
    {
      std::lock_guard idx(backend_.index_m_);
      ABFTC_REQUIRE(backend_.by_id_.find(meta_.id) == backend_.by_id_.end() &&
                        backend_.in_flight_.find(meta_.id) ==
                            backend_.in_flight_.end(),
                    "duplicate snapshot id");
      backend_.in_flight_.insert(meta_.id);
      registered_ = true;
    }
    try {
      shard_ = &backend_.shard_for(meta_.id);
      lock_ = std::unique_lock(shard_->m);
      backend_.ensure_writable(*shard_);
    } catch (...) {
      unregister();
      throw;
    }
    start_ = shard_->tail;
    payload_off_ = start_ + sizeof(RecordHeader) +
                   regions_.size() * sizeof(RegionEntry) + 8;
  }

  ~Session() override {
    if (committed_) return;
    // Abandoned/failed: wait out any in-flight uring ops (they reference
    // our staging buffers), then cut the shard back to its committed tail.
    if (shard_ != nullptr) {
      if (shard_->ring != nullptr) {
        try {
          shard_->ring->drain();
        } catch (const io_error&) {  // NOLINT(bugprone-empty-catch)
          // Already aborting; the truncate below discards the bytes anyway.
        }
      }
      if (shard_->fd >= 0)
        (void)::ftruncate(shard_->fd, static_cast<off_t>(start_));
    }
    unregister();
  }

  void append(std::span<const std::byte> chunk) override {
    ABFTC_REQUIRE(!committed_, "append after commit");
    ABFTC_REQUIRE(received_ + chunk.size() <= meta_.bytes,
                  "payload stream exceeds the declared snapshot size");
    const std::uint64_t off = payload_off_ + received_;
    received_ += chunk.size();
    if (shard_->ring != nullptr) {
      // The chunk span is only valid during this call: stage an owned copy
      // for the kernel to write from, reaped (and freed) at commit or when
      // the staging cap is hit.
      staged_.emplace_back(chunk.begin(), chunk.end());
      staged_bytes_ += chunk.size();
      shard_->ring->submit_pwrite(shard_->fd, staged_.back().data(),
                                  staged_.back().size(), off);
      if (staged_bytes_ >= kStagingCap) {
        shard_->ring->drain();
        staged_.clear();
        staged_bytes_ = 0;
      }
      return;
    }
    pwrite_all(shard_->fd, chunk.data(), chunk.size(), off, "log payload");
  }

  void commit(const std::vector<std::uint32_t>& region_crcs) override {
    ABFTC_REQUIRE(!committed_, "double commit");
    ABFTC_REQUIRE(region_crcs.size() == regions_.size(),
                  "need one CRC per region");
    ABFTC_REQUIRE(received_ == meta_.bytes,
                  "payload stream shorter than the declared snapshot size");
    if (shard_->ring != nullptr) {
      shard_->ring->drain();
      staged_.clear();
      staged_bytes_ = 0;
    }
    const std::uint64_t padded = align_up(meta_.bytes, 8);
    if (padded > meta_.bytes) {
      const std::byte zeros[8] = {};
      pwrite_all(shard_->fd, zeros, padded - meta_.bytes,
                 payload_off_ + meta_.bytes, "log payload pad");
    }

    std::uint64_t seq = 0;
    {
      std::lock_guard idx(backend_.index_m_);
      seq = backend_.next_seq_++;
    }

    std::vector<RegionEntry> entries(regions_.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
      entries[i] = RegionEntry{regions_[i], sizes_[i], region_crcs[i], 0};
    const auto table = table_bytes(entries);
    const RecordHeader h = make_header(
        kTypeSnapshot, meta_, static_cast<std::uint32_t>(regions_.size()),
        seq);
    std::vector<std::byte> head(sizeof(h) + table.size());
    std::memcpy(head.data(), &h, sizeof(h));
    std::memcpy(head.data() + sizeof(h), table.data(), table.size());
    pwrite_all(shard_->fd, head.data(), head.size(), start_, "log header");
    // The payload stream is the regions concatenated in order, so its CRC
    // folds out of the per-region CRCs the caller already computed — no
    // second hash pass over the payload on the commit path.
    common::Crc32Chunks payload_crc;
    for (std::size_t i = 0; i < region_crcs.size(); ++i)
      payload_crc.add(region_crcs[i], sizes_[i]);
    const auto trailer = trailer_bytes(record_crc_of(
        common::crc32(std::span(table)), payload_crc.value(), meta_.bytes));
    pwrite_all(shard_->fd, trailer.data(), trailer.size(),
               payload_off_ + padded, "log trailer");
    if (backend_.opts_.flush && ::fdatasync(shard_->fd) != 0)
      sys_error("fdatasync log segment");

    const std::uint64_t len =
        record_length(static_cast<std::uint32_t>(regions_.size()),
                      meta_.bytes);
    {
      std::lock_guard idx(backend_.index_m_);
      backend_.order_[seq] =
          RecordLoc{shard_->path, start_, len, meta_};
      backend_.by_id_[meta_.id] = seq;
      backend_.in_flight_.erase(meta_.id);
      registered_ = false;
    }
    shard_->tail = start_ + len;
    committed_ = true;
    Shard* shard = std::exchange(shard_, nullptr);
    lock_.unlock();
    (void)shard;
    backend_.maybe_compact();
  }

 private:
  static constexpr std::size_t kStagingCap = 8u << 20;  // uring copies held

  void unregister() noexcept {
    if (!registered_) return;
    std::lock_guard idx(backend_.index_m_);
    backend_.in_flight_.erase(meta_.id);
    registered_ = false;
  }

  LogBackend& backend_;
  SnapshotMeta meta_;
  std::vector<RegionId> regions_;
  std::vector<std::uint64_t> sizes_;
  Shard* shard_ = nullptr;
  std::unique_lock<std::mutex> lock_;
  std::uint64_t start_ = 0;
  std::uint64_t payload_off_ = 0;
  std::uint64_t received_ = 0;
  std::vector<std::vector<std::byte>> staged_;
  std::size_t staged_bytes_ = 0;
  bool registered_ = false;
  bool committed_ = false;
};

// --- LogBackend -------------------------------------------------------------

LogBackend::LogBackend(std::string directory)
    : LogBackend(std::move(directory), Options{}) {}

LogBackend::LogBackend(std::string directory, Options opts)
    : dir_(std::move(directory)), opts_(opts) {
  ABFTC_REQUIRE(opts_.shards >= 1 && opts_.shards <= 256,
                "log backend shard count must be in [1, 256]");
}

LogBackend::~LogBackend() {
  try {
    wait_for_compaction();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
    // A failed background pass left the store intact; nothing to unwind.
  }
  for (const auto& s : shards_)
    if (s->fd >= 0) ::close(s->fd);
}

LogBackend::Shard& LogBackend::shard_for(CkptId id) noexcept {
  return *shards_[splitmix64(id) % shards_.size()];
}

void LogBackend::ensure_writable(Shard& shard) {
  if (shard.fd >= 0) return;
  if (shard.path.empty()) {
    // Fresh shard (or just rolled by compaction): new generation segment.
    {
      std::lock_guard idx(index_m_);
      shard.gen = next_gen_++;
    }
    shard.path = dir_ + "/wal_" + std::to_string(shard.index) + "_" +
                 std::to_string(shard.gen) + ".log";
    shard.fd = ::open(shard.path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (shard.fd < 0) sys_error("create " + shard.path);
    SegmentHeader sh;
    sh.shard = shard.index;
    sh.gen = shard.gen;
    pwrite_all(shard.fd, &sh, sizeof(sh), 0, "log segment header");
    shard.tail = sizeof(SegmentHeader);
  } else {
    // Segment adopted by open(): append past the recovered tail.
    shard.fd = ::open(shard.path.c_str(), O_WRONLY);
    if (shard.fd < 0) sys_error("open " + shard.path);
  }
  if (uring_ok_ && shard.ring == nullptr && !shard.ring_failed) {
    try {
      shard.ring = std::make_unique<UringQueue>();
    } catch (const io_error&) {
      shard.ring_failed = true;  // per-shard fallback to pwrite
    }
  }
}

void LogBackend::open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ABFTC_REQUIRE(!ec, "cannot create checkpoint directory " + dir_);
  uring_ok_ = opts_.uring && UringQueue::supported();

  std::lock_guard idx(index_m_);
  order_.clear();
  by_id_.clear();
  in_flight_.clear();
  next_seq_ = 1;
  next_gen_ = 1;
  for (const auto& s : shards_)
    if (s->fd >= 0) ::close(s->fd);
  shards_.clear();
  for (unsigned i = 0; i < opts_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = i;
  }

  /// A record that survived the scan, pending seq-level dedup.
  struct Candidate {
    RecordLoc loc;
    std::uint64_t gen = 0;
    std::uint32_t type = kTypeSnapshot;
  };
  std::map<std::uint64_t, Candidate> by_seq;

  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".tmp")) {
      // A compaction pass that died before its rename; never referenced.
      fs::remove(entry.path(), ec);
      continue;
    }
    const auto parsed = parse_segment_name(name);
    if (!parsed.has_value()) continue;
    const auto [shard_idx, gen] = *parsed;
    next_gen_ = std::max(next_gen_, gen + 1);
    const std::string path = entry.path().string();
    const bool wal = shard_idx != kFrozenShard;

    FdGuard fd{::open(path.c_str(), O_RDONLY)};
    if (fd.fd < 0) sys_error("open " + path);
    struct stat st {};
    if (::fstat(fd.fd, &st) != 0) sys_error("stat " + path);
    const auto fsize = static_cast<std::uint64_t>(st.st_size);

    SegmentHeader sh;
    if (fsize < sizeof(sh)) continue;  // created but never headed: skip
    pread_all(fd.fd, &sh, sizeof(sh), 0, path);
    if (sh.magic != kSegMagic || sh.version != kLogVersion) continue;

    // Walk the records. good_end trails the last fully framed record so a
    // torn suffix can be cut; a *tail* record whose payload CRC fails is
    // part of that suffix (its commit was never acknowledged), a mid-file
    // one is kept as committed-but-corrupt for readers to reject.
    std::vector<std::pair<std::uint64_t, Candidate>> records;
    std::vector<bool> crc_ok;
    std::uint64_t off = sizeof(SegmentHeader);
    std::uint64_t good_end = off;
    std::vector<std::byte> buf;
    while (off + sizeof(RecordHeader) <= fsize) {
      RecordHeader h;
      pread_all(fd.fd, &h, sizeof(h), off, path);
      if (h.magic != kRecMagic || h.version != kLogVersion ||
          h.header_crc != header_crc_of(h))
        break;
      const std::uint64_t len = record_length(h.region_count,
                                              h.payload_bytes);
      if (off + len > fsize) break;
      const std::uint64_t table_len =
          h.region_count * sizeof(RegionEntry) + 8;
      buf.resize(table_len);
      pread_all(fd.fd, buf.data(), table_len, off + sizeof(h), path);
      std::uint32_t stored_table_crc = 0;
      std::memcpy(&stored_table_crc,
                  buf.data() + h.region_count * sizeof(RegionEntry), 4);
      if (stored_table_crc !=
          common::crc32(std::span(buf.data(),
                                  h.region_count * sizeof(RegionEntry))))
        break;
      const std::uint32_t table_crc_full =
          common::crc32(std::span(buf.data(), table_len));
      std::array<std::byte, logf::kTrailerBytes> trailer{};
      pread_all(fd.fd, trailer.data(), trailer.size(),
                off + len - logf::kTrailerBytes, path);
      std::uint32_t stored_record_crc = 0, stored_trailer_magic = 0;
      std::memcpy(&stored_record_crc, trailer.data(), 4);
      std::memcpy(&stored_trailer_magic, trailer.data() + 4, 4);
      if (stored_trailer_magic != kTrailerMagic) break;

      // Stream the payload CRC in bounded chunks.
      common::Crc32 pc;
      const std::uint64_t payload_at =
          off + sizeof(RecordHeader) + table_len;
      std::uint64_t rest = h.payload_bytes;
      std::uint64_t pos = payload_at;
      buf.resize(std::min<std::uint64_t>(rest, 1u << 20));
      while (rest > 0) {
        const std::size_t take =
            static_cast<std::size_t>(std::min<std::uint64_t>(rest,
                                                             1u << 20));
        pread_all(fd.fd, buf.data(), take, pos, path);
        pc.update(std::span(buf.data(), take));
        rest -= take;
        pos += take;
      }
      const bool ok = stored_record_crc ==
                      record_crc_of(table_crc_full, pc.value(),
                                    h.payload_bytes);
      Candidate c;
      c.type = h.type;
      c.loc = RecordLoc{path, off, len,
                        SnapshotMeta{h.id, static_cast<CkptKind>(h.kind),
                                     h.when, h.entry_link,
                                     h.payload_bytes}};
      c.gen = gen;
      records.emplace_back(h.seq, std::move(c));
      crc_ok.push_back(ok);
      good_end = off + len;
      off = good_end;
    }
    // The tail record of an unacknowledged commit: framed but its bytes
    // never all reached the medium. Discard it with the torn suffix.
    if (!records.empty() && !crc_ok.back()) {
      good_end = records.back().second.loc.offset;
      records.pop_back();
    }
    if (wal && good_end < fsize) {
      if (::truncate(path.c_str(), static_cast<off_t>(good_end)) != 0)
        sys_error("truncate torn log suffix in " + path);
    }
    for (auto& [seq, cand] : records) {
      const auto it = by_seq.find(seq);
      // Duplicate seqs only arise from a crash between a compaction
      // rename and the old segments' unlink; the rewritten (higher-gen)
      // copy wins.
      if (it == by_seq.end() || it->second.gen < cand.gen)
        by_seq[seq] = std::move(cand);
    }
    if (wal && shard_idx < opts_.shards) {
      Shard& s = *shards_[shard_idx];
      if (gen > s.gen || s.path.empty()) {
        s.gen = gen;
        s.path = path;
        s.tail = good_end;
      }
    }
  }

  // Replay in sequence order: snapshots enter the index, tombstones erase
  // their (necessarily older) target.
  for (auto& [seq, cand] : by_seq) {
    next_seq_ = std::max(next_seq_, seq + 1);
    if (cand.type == kTypeTombstone) {
      const auto it = by_id_.find(cand.loc.meta.id);
      if (it != by_id_.end()) {
        order_.erase(it->second);
        by_id_.erase(it);
      }
      continue;
    }
    if (cand.type != kTypeSnapshot) continue;  // future record types
    const auto prev = by_id_.find(cand.loc.meta.id);
    if (prev != by_id_.end()) order_.erase(prev->second);
    by_id_[cand.loc.meta.id] = seq;
    order_[seq] = std::move(cand.loc);
  }
}

std::unique_ptr<StorageBackend::WriteSession> LogBackend::begin_snapshot(
    const SnapshotMeta& meta, std::vector<RegionId> regions,
    std::vector<std::uint64_t> region_sizes) {
  detail::require_valid_layout(meta, regions, region_sizes);
  return std::make_unique<Session>(*this, meta, std::move(regions),
                                   std::move(region_sizes));
}

SnapshotBlob LogBackend::read_record(const RecordLoc& loc) const {
  FdGuard fd{::open(loc.file.c_str(), O_RDONLY)};
  if (fd.fd < 0) sys_error("open " + loc.file);

  RecordHeader h;
  pread_all(fd.fd, &h, sizeof(h), loc.offset, loc.file);
  if (h.magic != kRecMagic || h.version != kLogVersion)
    throw io_error("not a log record: " + loc.file);
  if (h.header_crc != header_crc_of(h))
    throw io_error("log record header corrupted: " + loc.file);
  if (h.type != kTypeSnapshot || h.id != loc.meta.id)
    throw io_error("log record mismatch for snapshot " +
                   std::to_string(loc.meta.id) + " in " + loc.file);

  const std::uint64_t table_len = h.region_count * sizeof(RegionEntry) + 8;
  std::vector<std::byte> table(table_len);
  pread_all(fd.fd, table.data(), table_len, loc.offset + sizeof(h),
            loc.file);
  std::uint32_t stored_table_crc = 0;
  std::memcpy(&stored_table_crc,
              table.data() + h.region_count * sizeof(RegionEntry), 4);
  if (stored_table_crc !=
      common::crc32(
          std::span(table.data(), h.region_count * sizeof(RegionEntry))))
    throw io_error("log record region table corrupted: " + loc.file);
  std::vector<RegionEntry> entries(h.region_count);
  if (h.region_count > 0)
    std::memcpy(entries.data(), table.data(),
                h.region_count * sizeof(RegionEntry));

  SnapshotBlob blob;
  blob.meta = SnapshotMeta{h.id, static_cast<CkptKind>(h.kind), h.when,
                           h.entry_link, h.payload_bytes};
  blob.regions.reserve(entries.size());
  std::uint64_t off = loc.offset + sizeof(h) + table_len;
  for (const RegionEntry& e : entries) {
    RegionBlob r;
    r.region = e.region;
    r.crc = e.crc;
    r.payload.resize(e.bytes);
    pread_all(fd.fd, r.payload.data(), e.bytes, off, loc.file);
    off += e.bytes;
    blob.regions.push_back(std::move(r));
  }
  return blob;
}

SnapshotBlob LogBackend::read_snapshot(CkptId id) const {
  // Held across the whole read: the compaction pass relocates/unlinks
  // segments under this lock, so a record cannot vanish mid-read.
  std::lock_guard idx(index_m_);
  const auto it = by_id_.find(id);
  if (it == by_id_.end())
    throw io_error("unknown snapshot id " + std::to_string(id));
  return read_record(order_.at(it->second));
}

std::vector<SnapshotMeta> LogBackend::list() const {
  std::lock_guard idx(index_m_);
  std::vector<SnapshotMeta> out;
  out.reserve(order_.size());
  for (const auto& [seq, loc] : order_) out.push_back(loc.meta);
  return out;
}

void LogBackend::drop(CkptId id) {
  Shard& shard = shard_for(id);
  std::unique_lock lock(shard.m);
  {
    std::lock_guard idx(index_m_);
    if (by_id_.find(id) == by_id_.end())
      throw io_error("unknown snapshot id " + std::to_string(id));
  }
  ensure_writable(shard);

  std::uint64_t seq = 0;
  {
    std::lock_guard idx(index_m_);
    seq = next_seq_++;
  }
  SnapshotMeta tomb;
  tomb.id = id;
  const RecordHeader h = make_header(kTypeTombstone, tomb, 0, seq);
  const auto table = table_bytes({});
  std::vector<std::byte> rec(record_length(0, 0));
  std::memcpy(rec.data(), &h, sizeof(h));
  std::memcpy(rec.data() + sizeof(h), table.data(), table.size());
  const auto trailer =
      trailer_bytes(record_crc_of(common::crc32(std::span(table)), 0, 0));
  std::memcpy(rec.data() + sizeof(h) + table.size(), trailer.data(),
              trailer.size());
  pwrite_all(shard.fd, rec.data(), rec.size(), shard.tail, "log tombstone");
  if (opts_.flush && ::fdatasync(shard.fd) != 0)
    sys_error("fdatasync log segment");
  shard.tail += rec.size();

  std::lock_guard idx(index_m_);
  const auto it = by_id_.find(id);
  if (it != by_id_.end()) {
    order_.erase(it->second);
    by_id_.erase(it);
  }
}

std::vector<std::byte> LogBackend::encode_record(const SnapshotBlob& blob,
                                                 std::uint64_t seq) {
  const auto rc = static_cast<std::uint32_t>(blob.regions.size());
  std::vector<RegionEntry> entries(rc);
  for (std::size_t i = 0; i < blob.regions.size(); ++i)
    entries[i] = RegionEntry{blob.regions[i].region,
                             blob.regions[i].payload.size(),
                             blob.regions[i].crc, 0};
  const auto table = table_bytes(entries);
  const RecordHeader h = make_header(kTypeSnapshot, blob.meta, rc, seq);
  const std::uint64_t len = record_length(rc, blob.meta.bytes);

  std::vector<std::byte> out(len);  // zero-filled: payload pad comes free
  std::memcpy(out.data(), &h, sizeof(h));
  std::memcpy(out.data() + sizeof(h), table.data(), table.size());
  std::uint64_t off = sizeof(h) + table.size();
  common::Crc32 pc;
  for (const RegionBlob& r : blob.regions) {
    if (!r.payload.empty())
      std::memcpy(out.data() + off, r.payload.data(), r.payload.size());
    pc.update(std::span(r.payload));
    off += r.payload.size();
  }
  const auto trailer = trailer_bytes(record_crc_of(
      common::crc32(std::span(table)), pc.value(), blob.meta.bytes));
  std::memcpy(out.data() + len - logf::kTrailerBytes, trailer.data(),
              trailer.size());
  return out;
}

std::uint64_t LogBackend::live_bytes() const {
  std::lock_guard idx(index_m_);
  std::uint64_t total = 0;
  for (const auto& [seq, loc] : order_) total += loc.record_bytes;
  return total;
}

std::uint64_t LogBackend::segment_bytes() const {
  std::uint64_t total = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!parse_segment_name(entry.path().filename().string()).has_value())
      continue;
    const auto size = fs::file_size(entry.path(), ec);
    if (!ec) total += size;
  }
  return total;
}

CompactionStats LogBackend::compaction_stats() const {
  std::lock_guard idx(index_m_);
  return stats_;
}

void LogBackend::maybe_compact() {
  if (opts_.compact_every == 0) return;
  if (commits_since_compact_.fetch_add(1, std::memory_order_relaxed) + 1 <
      opts_.compact_every)
    return;
  if (compact_pending_.exchange(true)) return;
  commits_since_compact_.store(0, std::memory_order_relaxed);
  common::Executor& ex = opts_.executor != nullptr
                             ? *opts_.executor
                             : common::Executor::global();
  // Best-effort in the background: a failed pass leaves the store exactly
  // as it was (the rewrite publishes nothing until its rename), so there
  // is no one to report to — the next pass simply tries again.
  std::future<void> f = ex.submit([this] {
    try {
      (void)compact_now();
    } catch (const io_error&) {  // NOLINT(bugprone-empty-catch)
    }
  });
  std::lock_guard fl(compact_future_m_);
  compact_future_ = std::move(f);
}

void LogBackend::wait_for_compaction() {
  std::future<void> f;
  {
    std::lock_guard fl(compact_future_m_);
    f = std::move(compact_future_);
  }
  if (f.valid()) f.wait();
}

}  // namespace abftc::ckpt::io

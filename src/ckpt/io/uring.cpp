/// \file uring.cpp
/// Raw-syscall io_uring plumbing (see uring.hpp for the contract). The ring
/// is used in its simplest configuration — no SQPOLL, no registered
/// buffers/files — because the log backend's ops are few and large: the
/// win is overlap inside one commit, not saturating a submission thread.

#include "ckpt/io/uring.hpp"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define ABFTC_HAVE_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "ckpt/io/detail.hpp"
#else
#define ABFTC_HAVE_URING 0
#endif

namespace abftc::ckpt::io {

#if ABFTC_HAVE_URING

namespace {

int sys_io_uring_setup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

unsigned load_acquire(const unsigned* p) {
  return std::atomic_ref(*const_cast<unsigned*>(p))
      .load(std::memory_order_acquire);
}

void store_release(unsigned* p, unsigned v) {
  std::atomic_ref(*p).store(v, std::memory_order_release);
}

void pwrite_rest(int fd, const std::byte* buf, std::size_t len,
                 std::uint64_t off) {
  while (len > 0) {
    const ssize_t w = ::pwrite(fd, buf, len, static_cast<off_t>(off));
    if (w < 0) {
      if (errno == EINTR) continue;
      detail::sys_error("pwrite (uring short-write completion)");
    }
    buf += w;
    off += static_cast<std::uint64_t>(w);
    len -= static_cast<std::size_t>(w);
  }
}

}  // namespace

struct UringQueue::Impl {
  struct Op {
    int fd = -1;
    const std::byte* buf = nullptr;
    std::size_t len = 0;
    std::uint64_t off = 0;
    bool done = false;
  };

  int ring_fd = -1;
  unsigned entries = 0;
  void* sq_map = nullptr;
  std::size_t sq_map_len = 0;
  void* cq_map = nullptr;  // == sq_map under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_map_len = 0;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;

  unsigned* sq_tail = nullptr;
  unsigned* sq_mask = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned* cq_mask = nullptr;
  io_uring_cqe* cqes = nullptr;

  std::vector<Op> ops;  // user_data indexes into this; cleared at drain
  std::size_t pending = 0;
  int first_error = 0;  // first failed op's -res, reported at drain

  ~Impl() {
    if (sqes != nullptr) ::munmap(sqes, sqes_len);
    if (cq_map != nullptr && cq_map != sq_map) ::munmap(cq_map, cq_map_len);
    if (sq_map != nullptr) ::munmap(sq_map, sq_map_len);
    if (ring_fd >= 0) ::close(ring_fd);
  }

  /// Reap every completion currently visible in the CQ ring.
  void reap() {
    unsigned head = load_acquire(cq_head);
    const unsigned tail = load_acquire(cq_tail);
    while (head != tail) {
      const io_uring_cqe& cqe = cqes[head & *cq_mask];
      Op& op = ops[static_cast<std::size_t>(cqe.user_data)];
      if (cqe.res < 0) {
        if (first_error == 0) first_error = -cqe.res;
      } else if (static_cast<std::size_t>(cqe.res) < op.len) {
        pwrite_rest(op.fd, op.buf + cqe.res,
                    op.len - static_cast<std::size_t>(cqe.res),
                    op.off + static_cast<std::uint64_t>(cqe.res));
      }
      op.done = true;
      --pending;
      ++head;
    }
    store_release(cq_head, head);
  }

  void wait(unsigned min_complete) {
    while (true) {
      const int rc = sys_io_uring_enter(ring_fd, 0, min_complete,
                                        IORING_ENTER_GETEVENTS);
      if (rc >= 0) break;
      if (errno == EINTR) continue;
      detail::sys_error("io_uring_enter (wait)");
    }
    reap();
  }
};

bool UringQueue::supported() noexcept {
  static const bool ok = [] {
    io_uring_params p{};
    const int fd = sys_io_uring_setup(2, &p);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return ok;
}

UringQueue::UringQueue(unsigned entries) : impl_(std::make_unique<Impl>()) {
  io_uring_params p{};
  impl_->ring_fd = sys_io_uring_setup(entries == 0 ? 16 : entries, &p);
  if (impl_->ring_fd < 0) detail::sys_error("io_uring_setup");
  impl_->entries = p.sq_entries;

  impl_->sq_map_len = p.sq_off.array + p.sq_entries * sizeof(unsigned);
  impl_->cq_map_len = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
  const bool single = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single)
    impl_->sq_map_len = impl_->cq_map_len =
        std::max(impl_->sq_map_len, impl_->cq_map_len);

  impl_->sq_map =
      ::mmap(nullptr, impl_->sq_map_len, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, impl_->ring_fd, IORING_OFF_SQ_RING);
  if (impl_->sq_map == MAP_FAILED) {
    impl_->sq_map = nullptr;
    detail::sys_error("mmap io_uring SQ ring");
  }
  if (single) {
    impl_->cq_map = impl_->sq_map;
  } else {
    impl_->cq_map =
        ::mmap(nullptr, impl_->cq_map_len, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, impl_->ring_fd, IORING_OFF_CQ_RING);
    if (impl_->cq_map == MAP_FAILED) {
      impl_->cq_map = nullptr;
      detail::sys_error("mmap io_uring CQ ring");
    }
  }
  impl_->sqes_len = p.sq_entries * sizeof(io_uring_sqe);
  impl_->sqes = static_cast<io_uring_sqe*>(
      ::mmap(nullptr, impl_->sqes_len, PROT_READ | PROT_WRITE,
             MAP_SHARED | MAP_POPULATE, impl_->ring_fd, IORING_OFF_SQES));
  if (impl_->sqes == MAP_FAILED) {
    impl_->sqes = nullptr;
    detail::sys_error("mmap io_uring SQEs");
  }

  auto* sq = static_cast<std::byte*>(impl_->sq_map);
  impl_->sq_tail = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
  impl_->sq_mask = reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
  impl_->sq_array = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
  auto* cq = static_cast<std::byte*>(impl_->cq_map);
  impl_->cq_head = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
  impl_->cq_tail = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
  impl_->cq_mask = reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
  impl_->cqes = reinterpret_cast<io_uring_cqe*>(cq + p.cq_off.cqes);
}

UringQueue::~UringQueue() {
  // Ops may still be in flight if a commit threw mid-stream; their buffers
  // are owned by the session being destroyed with us, so wait them out.
  if (impl_ != nullptr && impl_->pending > 0) {
    try {
      drain();
    } catch (const io_error&) {  // NOLINT(bugprone-empty-catch)
      // Destructor path of an already-failed commit: nothing to report to.
    }
  }
}

void UringQueue::submit_pwrite(int fd, const void* buf, std::size_t len,
                               std::uint64_t off) {
  if (impl_->pending == impl_->entries) impl_->wait(1);

  const std::size_t idx = impl_->ops.size();
  impl_->ops.push_back(Impl::Op{fd, static_cast<const std::byte*>(buf), len,
                                off, false});

  const unsigned tail = *impl_->sq_tail;
  const unsigned slot = tail & *impl_->sq_mask;
  io_uring_sqe& sqe = impl_->sqes[slot];
  std::memset(&sqe, 0, sizeof(sqe));
  sqe.opcode = IORING_OP_WRITE;
  sqe.fd = fd;
  sqe.addr = reinterpret_cast<std::uint64_t>(buf);
  sqe.len = static_cast<std::uint32_t>(len);
  sqe.off = off;
  sqe.user_data = idx;
  impl_->sq_array[slot] = slot;
  store_release(impl_->sq_tail, tail + 1);

  while (true) {
    const int rc = sys_io_uring_enter(impl_->ring_fd, 1, 0, 0);
    if (rc >= 0) break;
    if (errno == EINTR) continue;
    detail::sys_error("io_uring_enter (submit)");
  }
  ++impl_->pending;
}

void UringQueue::drain() {
  impl_->reap();
  while (impl_->pending > 0)
    impl_->wait(static_cast<unsigned>(impl_->pending));
  impl_->ops.clear();
  const int err = impl_->first_error;
  impl_->first_error = 0;
  if (err != 0)
    throw io_error(std::string("io_uring write failed: ") +
                   std::strerror(err));
}

std::size_t UringQueue::in_flight() const noexcept { return impl_->pending; }

#else  // !ABFTC_HAVE_URING

struct UringQueue::Impl {};

bool UringQueue::supported() noexcept { return false; }

UringQueue::UringQueue(unsigned) {
  throw io_error("io_uring is not available on this platform");
}

UringQueue::~UringQueue() = default;

void UringQueue::submit_pwrite(int, const void*, std::size_t, std::uint64_t) {
  throw io_error("io_uring is not available on this platform");
}

void UringQueue::drain() {}

std::size_t UringQueue::in_flight() const noexcept { return 0; }

#endif  // ABFTC_HAVE_URING

}  // namespace abftc::ckpt::io

/// \file compaction.cpp
/// The log backend's compaction pass: plan (pure, compaction.hpp), then a
/// four-phase rewrite — roll the shards, verify + plan offline, write the
/// frozen segment, publish and unlink. Committers only block for phase 1;
/// the expensive verification and rewrite run without any backend lock.

#include "ckpt/io/compaction.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "ckpt/io/detail.hpp"
#include "ckpt/io/log_backend.hpp"
#include "ckpt/io/log_format.hpp"
#include "ckpt/io/uring.hpp"
#include "common/crc32.hpp"

namespace abftc::ckpt::io {

namespace fs = std::filesystem;

using detail::FdGuard;
using detail::fsync_dir_best_effort;
using detail::fsync_or_throw;
using detail::pread_all;
using detail::pwrite_all;
using detail::sys_error;

namespace compact {

CompactionPlan plan_compaction(const std::vector<LiveRecord>& live) {
  CompactionPlan plan;

  // The newest verified protection point, mirroring restore_latest: a Full
  // needs itself plus every later Incremental intact; an Exit needs itself
  // plus its linked Entry.
  const auto chain_ok = [&](std::size_t i) {
    const LiveRecord& r = live[i];
    if (!r.verified) return false;
    if (r.meta.kind == CkptKind::Full) {
      for (std::size_t j = i + 1; j < live.size(); ++j)
        if (live[j].meta.kind == CkptKind::Incremental && !live[j].verified)
          return false;
      return true;
    }
    if (r.meta.kind == CkptKind::Exit) {
      for (const LiveRecord& e : live)
        if (e.meta.id == r.meta.entry_link)
          return e.verified;
      return false;
    }
    return false;
  };

  std::size_t base = live.size();
  for (std::size_t i = live.size(); i-- > 0;) {
    const CkptKind k = live[i].meta.kind;
    if ((k == CkptKind::Full || k == CkptKind::Exit) && chain_ok(i)) {
      base = i;
      break;
    }
  }
  if (base == live.size()) {
    // Nothing restorable verified: never discard what latest_restorable()
    // might still salvage.
    for (const LiveRecord& r : live) plan.carry.push_back(r.seq);
    return plan;
  }

  // Keep the base and everything after it, plus the Entry of any kept Exit
  // (restore of an Exit reads its Entry, whatever its age).
  std::set<std::uint64_t> keep;
  std::unordered_map<CkptId, std::uint64_t> seq_of;
  for (const LiveRecord& r : live) seq_of[r.meta.id] = r.seq;
  for (std::size_t i = base; i < live.size(); ++i) {
    keep.insert(live[i].seq);
    if (live[i].meta.kind == CkptKind::Exit) {
      const auto it = seq_of.find(live[i].meta.entry_link);
      if (it != seq_of.end()) keep.insert(it->second);
    }
  }
  for (const LiveRecord& r : live)
    if (!keep.contains(r.seq)) plan.drop.push_back(r.seq);

  // Fold only the clean shape: a Full base whose entire suffix is verified
  // Incrementals. Any interleaved Entry/Exit/Full keeps the records apart —
  // correctness first, the next pass gets another chance.
  bool foldable = live[base].meta.kind == CkptKind::Full &&
                  base + 1 < live.size();
  for (std::size_t i = base + 1; foldable && i < live.size(); ++i)
    if (live[i].meta.kind != CkptKind::Incremental || !live[i].verified)
      foldable = false;
  if (foldable) {
    for (std::size_t i = base; i < live.size(); ++i)
      plan.fold.push_back(live[i].seq);
    for (const std::uint64_t s : keep)
      if (!std::binary_search(plan.fold.begin(), plan.fold.end(), s))
        plan.carry.push_back(s);
  } else {
    plan.carry.assign(keep.begin(), keep.end());
  }
  return plan;
}

}  // namespace compact

namespace {

/// Fold a Full + Incrementals chain (oldest first, as read back) into the
/// equivalent Full: later payloads override by region id, regions keep the
/// base's order, regions first seen in an incremental append in encounter
/// order. This is restore composition run at rest.
SnapshotBlob merge_chain(std::vector<SnapshotBlob> chain) {
  SnapshotBlob out = std::move(chain.front());
  std::unordered_map<RegionId, std::size_t> slot;
  for (std::size_t i = 0; i < out.regions.size(); ++i)
    slot[out.regions[i].region] = i;
  for (std::size_t c = 1; c < chain.size(); ++c) {
    for (RegionBlob& r : chain[c].regions) {
      const auto it = slot.find(r.region);
      if (it != slot.end()) {
        out.regions[it->second] = std::move(r);
      } else {
        slot[r.region] = out.regions.size();
        out.regions.push_back(std::move(r));
      }
    }
  }
  const SnapshotMeta& newest = chain.back().meta;
  out.meta.id = newest.id;
  out.meta.when = newest.when;
  out.meta.kind = CkptKind::Full;
  out.meta.entry_link = 0;
  out.meta.bytes = 0;
  for (const RegionBlob& r : out.regions) out.meta.bytes += r.payload.size();
  return out;
}

/// All segment files currently in `dir` (absolute paths).
std::set<std::string> segment_files(const std::string& dir) {
  std::set<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if ((name.starts_with("wal_") || name.starts_with("frozen_")) &&
        name.ends_with(".log"))
      out.insert(entry.path().string());
  }
  return out;
}

struct ClearOnExit {
  std::atomic<bool>& flag;
  ~ClearOnExit() { flag.store(false); }
};

}  // namespace

CompactionStats LogBackend::compact_now() {
  // One pass at a time; compact_pending_ re-arms maybe_compact() whenever
  // this frame exits, success or throw.
  std::lock_guard pass(compact_m_);
  ClearOnExit rearm{compact_pending_};

  // --- Phase 1: roll every shard and snapshot the live set --------------
  // All shard locks (ascending index — the only multi-shard acquisition in
  // the backend, so unordered Sessions cannot deadlock against it), then
  // the index lock, per the shard→index order.
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const auto& s : shards_) shard_locks.emplace_back(s->m);

  std::vector<std::pair<std::uint64_t, RecordLoc>> live;
  std::uint64_t frozen_gen = 0;
  std::set<std::string> before;
  {
    std::lock_guard idx(index_m_);
    for (const auto& s : shards_) {
      if (s->fd >= 0) ::close(s->fd);
      s->fd = -1;
      s->path.clear();
      s->gen = 0;
      s->tail = 0;
      s->ring.reset();
    }
    live.reserve(order_.size());
    for (const auto& [seq, loc] : order_) live.emplace_back(seq, loc);
    frozen_gen = next_gen_++;
    // Exact while the shard locks pin every writer: no new segment can
    // appear until phase 1 ends, and records only move *into* the frozen
    // segment we are about to write.
    before = segment_files(dir_);
  }
  for (auto& l : shard_locks) l.unlock();

  // --- Phase 2: verify and plan (no locks) ------------------------------
  // The records in `live` sit in rolled (no longer written) or frozen
  // segments; only this pass ever unlinks those, and passes are serialized
  // by compact_m_, so lock-free reads are safe.
  std::vector<compact::LiveRecord> planned;
  planned.reserve(live.size());
  for (const auto& [seq, loc] : live) {
    compact::LiveRecord r;
    r.seq = seq;
    r.meta = loc.meta;
    try {
      read_record(loc).verify();
      r.verified = true;
    } catch (const io_error&) {
      r.verified = false;  // reject at restore, carry as-is here
    }
    planned.push_back(r);
  }
  const compact::CompactionPlan plan = compact::plan_compaction(planned);

  // The plan only sees *live* records, but drop() and torn recoveries also
  // leave dead bytes (superseded records, tombstones) in the segments: the
  // rewrite is worthwhile whenever the on-disk bytes exceed the live framed
  // bytes plus one header per file. After a rewrite the frozen segment is
  // exactly live-sized, so this criterion self-quiesces.
  std::uint64_t before_bytes = 0;
  for (const std::string& path : before) {
    struct stat st {};
    if (::stat(path.c_str(), &st) == 0)
      before_bytes += static_cast<std::uint64_t>(st.st_size);
  }
  std::uint64_t live_framed = 0;
  for (const auto& [seq, loc] : live) live_framed += loc.record_bytes;
  const bool reclaimable =
      before_bytes >
      live_framed + before.size() * sizeof(logf::SegmentHeader);

  if (plan.drop.empty() && plan.fold.empty() && !reclaimable) {
    std::lock_guard idx(index_m_);
    ++stats_.passes;
    return stats_;
  }

  // --- Phase 3: write the frozen segment (no locks) ---------------------
  std::unordered_map<std::uint64_t, const RecordLoc*> loc_of;
  for (const auto& [seq, loc] : live) loc_of[seq] = &loc;

  const std::string frozen_path =
      dir_ + "/frozen_" + std::to_string(frozen_gen) + ".log";
  const std::string tmp_path = frozen_path + ".tmp";
  std::unordered_map<std::uint64_t, std::uint64_t> new_offset;
  std::uint64_t fold_offset = 0;
  std::uint64_t fold_length = 0;
  SnapshotMeta fold_meta;
  {
    FdGuard fd{::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644)};
    if (fd.fd < 0) sys_error("create " + tmp_path);
    logf::SegmentHeader sh;
    sh.shard = logf::kFrozenShard;
    sh.gen = frozen_gen;
    pwrite_all(fd.fd, &sh, sizeof(sh), 0, "frozen segment header");
    std::uint64_t off = sizeof(sh);

    // Interleave carried copies and the folded record in seq order so the
    // frozen segment replays identically to the store it condenses.
    const std::uint64_t fold_seq =
        plan.fold.empty() ? 0 : plan.fold.back();
    std::vector<std::uint64_t> emit = plan.carry;
    if (fold_seq != 0) emit.push_back(fold_seq);
    std::sort(emit.begin(), emit.end());
    std::vector<std::byte> buf;
    for (const std::uint64_t seq : emit) {
      if (seq == fold_seq && !plan.fold.empty()) {
        std::vector<SnapshotBlob> chain;
        chain.reserve(plan.fold.size());
        for (const std::uint64_t m : plan.fold)
          chain.push_back(read_record(*loc_of.at(m)));
        const SnapshotBlob folded = merge_chain(std::move(chain));
        const std::vector<std::byte> rec = encode_record(folded, seq);
        pwrite_all(fd.fd, rec.data(), rec.size(), off, "folded record");
        fold_offset = off;
        fold_length = rec.size();
        fold_meta = folded.meta;
        off += rec.size();
        continue;
      }
      const RecordLoc& loc = *loc_of.at(seq);
      buf.resize(loc.record_bytes);
      FdGuard src{::open(loc.file.c_str(), O_RDONLY)};
      if (src.fd < 0) sys_error("open " + loc.file);
      pread_all(src.fd, buf.data(), buf.size(), loc.offset, loc.file);
      pwrite_all(fd.fd, buf.data(), buf.size(), off, "carried record");
      new_offset[seq] = off;
      off += buf.size();
    }
    fsync_or_throw(fd.fd, "frozen segment");
  }
  if (::rename(tmp_path.c_str(), frozen_path.c_str()) != 0)
    sys_error("rename " + tmp_path);
  fsync_dir_best_effort(dir_);

  // --- Phase 4: publish and unlink (index lock) -------------------------
  CompactionStats snapshot;
  {
    std::lock_guard idx(index_m_);
    for (const auto& [seq, off] : new_offset) {
      const auto it = order_.find(seq);
      if (it == order_.end()) continue;  // dropped concurrently: skip
      it->second.file = frozen_path;
      it->second.offset = off;
    }
    if (!plan.fold.empty()) {
      // Publish the folded Full only if every member is still live — a
      // concurrent drop() of one member means the fold no longer equals
      // the surviving chain, so the members keep their old (still on
      // disk) locations and the next pass re-plans.
      const bool all_present = std::all_of(
          plan.fold.begin(), plan.fold.end(),
          [&](std::uint64_t s) { return order_.contains(s); });
      if (all_present) {
        const std::uint64_t target = plan.fold.back();
        for (const std::uint64_t m : plan.fold) {
          if (m == target) continue;
          by_id_.erase(order_.at(m).meta.id);
          order_.erase(m);
        }
        order_[target] =
            RecordLoc{frozen_path, fold_offset, fold_length, fold_meta};
        stats_.records_folded += plan.fold.size();
      }
    }
    for (const std::uint64_t seq : plan.drop) {
      const auto it = order_.find(seq);
      if (it == order_.end()) continue;
      by_id_.erase(it->second.meta.id);
      order_.erase(it);
      ++stats_.records_dropped;
    }
    ++stats_.passes;

    // Unlink exactly the segments that existed at roll time and are no
    // longer referenced by any live record. Inside the index lock so a
    // reader holding it can never see its file vanish mid-read.
    std::unordered_set<std::string> referenced;
    for (const auto& [seq, loc] : order_) referenced.insert(loc.file);
    for (const std::string& path : before) {
      if (referenced.contains(path)) continue;
      struct stat st {};
      if (::stat(path.c_str(), &st) == 0)
        stats_.bytes_reclaimed += static_cast<std::uint64_t>(st.st_size);
      if (::unlink(path.c_str()) == 0) ++stats_.segments_deleted;
    }
    snapshot = stats_;
  }
  return snapshot;
}

}  // namespace abftc::ckpt::io

#include "ckpt/io/backend.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <sstream>

#include "ckpt/io/log_backend.hpp"
#include "common/cli.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace abftc::ckpt::io {

void SnapshotBlob::verify() const {
  std::uint64_t total = 0;
  for (const RegionBlob& r : regions) {
    const std::uint32_t got = common::crc32(std::span(r.payload));
    if (got != r.crc) {
      std::ostringstream os;
      os << "snapshot " << meta.id << " region " << r.region
         << " payload CRC mismatch (stored " << r.crc << ", computed " << got
         << ")";
      throw io_error(os.str());
    }
    total += r.payload.size();
  }
  if (total != meta.bytes) {
    std::ostringstream os;
    os << "snapshot " << meta.id << " payload size " << total
       << " does not match metadata " << meta.bytes;
    throw io_error(os.str());
  }
}

namespace detail {

void require_valid_layout(const SnapshotMeta& meta,
                          const std::vector<RegionId>& regions,
                          const std::vector<std::uint64_t>& sizes) {
  ABFTC_REQUIRE(meta.id != 0, "snapshot id 0 is reserved");
  // A non-finite timestamp would serialize as `null` in the file backend's
  // manifest and poison every later open of the store.
  ABFTC_REQUIRE(std::isfinite(meta.when),
                "snapshot timestamp must be finite");
  ABFTC_REQUIRE(regions.size() == sizes.size(),
                "region id/size lists must align");
  // An empty region list is legal: an Incremental taken while nothing was
  // dirty records "no change here" (CheckpointStore parity).
  const std::uint64_t total =
      std::accumulate(sizes.begin(), sizes.end(), std::uint64_t{0});
  ABFTC_REQUIRE(total == meta.bytes,
                "snapshot meta.bytes must equal the region size sum");
  for (const std::uint64_t s : sizes)
    ABFTC_REQUIRE(s > 0, "regions must not be empty");
}

void write_via_session(StorageBackend& backend, const SnapshotBlob& blob) {
  std::vector<RegionId> regions;
  std::vector<std::uint64_t> sizes;
  std::vector<std::uint32_t> crcs;
  regions.reserve(blob.regions.size());
  sizes.reserve(blob.regions.size());
  crcs.reserve(blob.regions.size());
  for (const RegionBlob& r : blob.regions) {
    regions.push_back(r.region);
    sizes.push_back(r.payload.size());
    crcs.push_back(r.crc);
  }
  auto session =
      backend.begin_snapshot(blob.meta, std::move(regions), std::move(sizes));
  for (const RegionBlob& r : blob.regions)
    session->append(std::span(r.payload));
  session->commit(crcs);
}

}  // namespace detail

void StorageBackend::write_snapshot(const SnapshotBlob& blob) {
  detail::write_via_session(*this, blob);
}

// --- MemoryBackend ----------------------------------------------------------

/// Builds the stored SnapshotBlob in place: appends land directly in the
/// region payload vectors, commit moves the finished blob into the store.
class MemoryBackend::Session final : public StorageBackend::WriteSession {
 public:
  Session(MemoryBackend& backend, SnapshotMeta meta,
          const std::vector<RegionId>& regions,
          const std::vector<std::uint64_t>& sizes)
      : backend_(backend) {
    blob_.meta = meta;
    blob_.regions.reserve(regions.size());
    for (std::size_t i = 0; i < regions.size(); ++i) {
      RegionBlob r;
      r.region = regions[i];
      r.payload.reserve(sizes[i]);
      blob_.regions.push_back(std::move(r));
    }
    for (const std::uint64_t s : sizes) remaining_.push_back(s);
  }

  void append(std::span<const std::byte> chunk) override {
    ABFTC_REQUIRE(!committed_, "append after commit");
    while (!chunk.empty()) {
      while (region_ < remaining_.size() && remaining_[region_] == 0)
        ++region_;
      ABFTC_REQUIRE(region_ < remaining_.size(),
                    "payload stream exceeds the declared snapshot size");
      const std::size_t take =
          std::min<std::size_t>(chunk.size(), remaining_[region_]);
      auto& payload = blob_.regions[region_].payload;
      payload.insert(payload.end(), chunk.begin(),
                     chunk.begin() + static_cast<std::ptrdiff_t>(take));
      remaining_[region_] -= take;
      chunk = chunk.subspan(take);
    }
  }

  void commit(const std::vector<std::uint32_t>& region_crcs) override {
    ABFTC_REQUIRE(!committed_, "double commit");
    ABFTC_REQUIRE(region_crcs.size() == blob_.regions.size(),
                  "need one CRC per region");
    for (const std::uint64_t r : remaining_)
      ABFTC_REQUIRE(r == 0,
                    "payload stream shorter than the declared snapshot size");
    for (std::size_t i = 0; i < region_crcs.size(); ++i)
      blob_.regions[i].crc = region_crcs[i];
    backend_.snapshots_.push_back(std::move(blob_));
    committed_ = true;
  }

 private:
  MemoryBackend& backend_;
  SnapshotBlob blob_;
  std::vector<std::uint64_t> remaining_;  // per-region bytes still expected
  std::size_t region_ = 0;                // region currently being filled
  bool committed_ = false;
};

std::unique_ptr<StorageBackend::WriteSession> MemoryBackend::begin_snapshot(
    const SnapshotMeta& meta, std::vector<RegionId> regions,
    std::vector<std::uint64_t> region_sizes) {
  detail::require_valid_layout(meta, regions, region_sizes);
  for (const SnapshotBlob& s : snapshots_)
    ABFTC_REQUIRE(s.meta.id != meta.id, "duplicate snapshot id");
  return std::make_unique<Session>(*this, meta, regions, region_sizes);
}

SnapshotBlob MemoryBackend::read_snapshot(CkptId id) const {
  for (const SnapshotBlob& s : snapshots_)
    if (s.meta.id == id) return s;
  throw io_error("unknown snapshot id " + std::to_string(id));
}

std::vector<SnapshotMeta> MemoryBackend::list() const {
  std::vector<SnapshotMeta> out;
  out.reserve(snapshots_.size());
  for (const SnapshotBlob& s : snapshots_) out.push_back(s.meta);
  return out;
}

void MemoryBackend::drop(CkptId id) {
  const auto it =
      std::find_if(snapshots_.begin(), snapshots_.end(),
                   [id](const SnapshotBlob& s) { return s.meta.id == id; });
  if (it == snapshots_.end())
    throw io_error("unknown snapshot id " + std::to_string(id));
  snapshots_.erase(it);
}

std::size_t MemoryBackend::stored_bytes() const noexcept {
  std::size_t n = 0;
  for (const SnapshotBlob& s : snapshots_) n += s.meta.bytes;
  return n;
}

std::optional<SnapshotBlob> latest_restorable(const StorageBackend& backend) {
  const std::vector<SnapshotMeta> metas = backend.list();
  for (auto it = metas.rbegin(); it != metas.rend(); ++it) {
    try {
      SnapshotBlob blob = backend.read_snapshot(it->id);
      blob.verify();
      return blob;
    } catch (const io_error&) {
      // Torn, truncated or corrupt — fall back to the next-older snapshot.
    }
  }
  return std::nullopt;
}

// --- make_backend -----------------------------------------------------------

namespace {

/// Split "scheme:rest?k=v" into (scheme, rest, options-string).
struct SpecParts {
  std::string scheme;
  std::string rest;
  std::string options;
};

SpecParts split_spec(std::string_view spec) {
  SpecParts p;
  std::string_view body = spec;
  const auto qmark = body.find('?');
  if (qmark != std::string_view::npos) {
    p.options = std::string(body.substr(qmark + 1));
    // URL-style '&' and list-style ',' separators are interchangeable, so
    // specs read naturally both quoted ("log:d?shards=4&uring=1") and
    // comma-joined inside larger comma lists.
    std::replace(p.options.begin(), p.options.end(), '&', ',');
    body = body.substr(0, qmark);
  }
  const auto colon = body.find(':');
  if (colon == std::string_view::npos) {
    p.scheme = std::string(body);
  } else {
    p.scheme = std::string(body.substr(0, colon));
    p.rest = std::string(body.substr(colon + 1));
  }
  return p;
}

/// "k1=v1,k2=v2" lookup via the shared structured-spec parser; empty string
/// when the key is absent (or the whole option tail is empty).
std::string spec_option(const std::string& options, std::string_view key) {
  if (options.empty()) return {};
  const auto items = common::parse_key_values(options, ',', '=');
  return common::find_key_value(items, key).value_or(std::string{});
}

/// Strictly parse a positive integer option, with bounds.
long spec_long(const std::string& value, std::string_view what, long lo,
               long hi) {
  char* end = nullptr;
  errno = 0;
  const long val = std::strtol(value.c_str(), &end, 10);
  ABFTC_REQUIRE(end != value.c_str() && *end == '\0' && errno == 0 &&
                    val >= lo && val <= hi,
                "malformed " + std::string(what) + " '" + value + "'");
  return val;
}

}  // namespace

std::unique_ptr<StorageBackend> make_backend(std::string_view spec) {
  const SpecParts p = split_spec(spec);
  std::unique_ptr<StorageBackend> backend;
  if (p.scheme == "memory") {
    ABFTC_REQUIRE(p.rest.empty(), "memory backend takes no path");
    backend = std::make_unique<MemoryBackend>();
  } else if (p.scheme == "file") {
    ABFTC_REQUIRE(!p.rest.empty(), "file backend needs a directory: file:DIR");
    FileBackend::Options opts;
    opts.direct = spec_option(p.options, "direct") == "1";
    backend = std::make_unique<FileBackend>(p.rest, opts);
  } else if (p.scheme == "mmap") {
    ABFTC_REQUIRE(!p.rest.empty(), "mmap backend needs a path: mmap:PATH");
    std::size_t capacity = MmapBackend::kDefaultCapacity;
    if (const std::string mb = spec_option(p.options, "mb"); !mb.empty()) {
      char* end = nullptr;
      errno = 0;
      const long val = std::strtol(mb.c_str(), &end, 10);
      ABFTC_REQUIRE(end != mb.c_str() && *end == '\0' && errno == 0 &&
                        val > 0 && val <= (1l << 40),
                    "malformed mmap arena capacity '?mb=" + mb + "'");
      capacity = static_cast<std::size_t>(val) << 20;
    }
    backend = std::make_unique<MmapBackend>(p.rest, capacity);
  } else if (p.scheme == "log") {
    ABFTC_REQUIRE(!p.rest.empty(), "log backend needs a directory: log:DIR");
    LogBackend::Options opts;
    if (const std::string s = spec_option(p.options, "shards"); !s.empty())
      opts.shards =
          static_cast<unsigned>(spec_long(s, "log shard count", 1, 256));
    opts.uring = spec_option(p.options, "uring") == "1";
    if (const std::string f = spec_option(p.options, "flush"); !f.empty())
      opts.flush = f != "0";
    if (const std::string c = spec_option(p.options, "compact"); !c.empty())
      opts.compact_every = static_cast<unsigned>(
          spec_long(c, "log compaction interval", 1, 1l << 30));
    backend = std::make_unique<LogBackend>(p.rest, opts);
  } else {
    ABFTC_REQUIRE(false, "unknown storage backend scheme '" + p.scheme +
                             "' (known: memory, file:DIR, mmap:PATH, "
                             "log:DIR)");
  }
  backend->open();
  return backend;
}

}  // namespace abftc::ckpt::io

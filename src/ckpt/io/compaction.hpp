#pragma once
/// \file compaction.hpp
/// Compaction planning for the log backend: which live records a pass
/// carries, folds, or drops.
///
/// The plan mirrors the restore composition (CkptWriter::restore_latest):
/// the effective protection point is the newest Full (restored together
/// with every later Incremental) or the newest Exit (restored with its
/// linked Entry). Everything older is unreachable by any restore and can be
/// dropped; a Full-plus-Incrementals chain can further be *folded* into one
/// equivalent Full so restores replay a bounded suffix instead of the whole
/// campaign's incremental history.
///
/// Planning is deliberately conservative around damage: a chain member that
/// fails payload verification disables folding (the fold would have to read
/// those payloads), and when no chain verifies at all the plan carries
/// everything — compaction must never take away a fallback that
/// latest_restorable() could still have used. The planner is a pure
/// function over record metadata + verification flags so these rules are
/// unit-testable without a store.

#include <cstdint>
#include <vector>

#include "ckpt/io/backend.hpp"

namespace abftc::ckpt::io {

/// Totals across one backend's compaction passes (LogBackend::compact_now).
struct CompactionStats {
  std::uint64_t passes = 0;
  std::uint64_t records_folded = 0;   ///< chain members merged into a Full
  std::uint64_t records_dropped = 0;  ///< superseded records discarded
  std::uint64_t segments_deleted = 0; ///< segment files unlinked
  std::uint64_t bytes_reclaimed = 0;  ///< bytes of those files
};

namespace compact {

/// One live record as the planner sees it: position, metadata, and whether
/// its payload verified (read back + per-region CRCs checked).
struct LiveRecord {
  std::uint64_t seq = 0;
  SnapshotMeta meta;
  bool verified = false;
};

/// The pass's decision, in terms of record seqs. `fold` is either empty or
/// a Full followed by one or more Incrementals, oldest first; the folded
/// result replaces all members under the newest member's id/when/seq.
/// carry ∪ fold ∪ drop partitions the input.
struct CompactionPlan {
  std::vector<std::uint64_t> carry;
  std::vector<std::uint64_t> fold;
  std::vector<std::uint64_t> drop;
};

/// `live` must be sorted by seq ascending (the backend's list order).
[[nodiscard]] CompactionPlan plan_compaction(
    const std::vector<LiveRecord>& live);

}  // namespace compact
}  // namespace abftc::ckpt::io

#pragma once
/// \file backend.hpp
/// The checkpoint I/O subsystem: snapshots behind a pluggable StorageBackend.
///
/// ckpt::StorageModel *predicts* C/R from assumed bandwidths; this layer
/// *performs* the I/O so the Section V-C hypotheses (remote-PFS vs scalable
/// in-node storage, Figs 8–10) can be anchored in measured checkpoint costs.
/// Four backends implement the same contract:
///
///  * MemoryBackend — snapshots held in RAM (the CheckpointStore behavior,
///    refactored behind the interface); zero durability, memcpy speed.
///  * FileBackend   — one file per snapshot plus a small manifest; fsync on
///    commit, O_DIRECT optional (falls back to buffered I/O where the
///    filesystem refuses it, e.g. tmpfs).
///  * MmapBackend   — a preallocated mmap'd arena with a slot table; msync
///    on commit. Bump allocation: drop() frees the slot; space is reclaimed
///    when the dropped snapshot was the newest or the arena empties.
///  * LogBackend    — sharded append-only changelog segments with CRC-framed
///    records, background compaction and an optional io_uring submission
///    path (log_backend.hpp). The one backend built for concurrent
///    committers.
///
/// Writes are two-phase everywhere: payload first, then the commit record
/// (manifest entry / committed flag / framed trailer) — a crash mid-write
/// leaves a torn snapshot that readers reject instead of half-restoring.
///
/// Backends are deliberately *not* thread-safe: one CkptWriter drives one
/// backend (coordinated checkpoints serialize commits by construction).
/// Parallelism lives above, in the writer's copy/CRC/write pipeline. The
/// log backend opts out via concurrent_committers() — its commit path is
/// internally locked per shard, so independent writers may share it.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/image.hpp"

namespace abftc::ckpt::io {

/// Thrown when stored data cannot be read back faithfully: unknown id, torn
/// (uncommitted) snapshot, truncated file, CRC mismatch, arena exhausted.
class io_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Everything about a snapshot except its payload.
struct SnapshotMeta {
  CkptId id = 0;
  CkptKind kind = CkptKind::Full;
  double when = 0.0;
  CkptId entry_link = 0;      ///< for Exit: the Entry it completes
  std::uint64_t bytes = 0;    ///< total payload bytes across regions
};

/// One region's payload as stored.
struct RegionBlob {
  RegionId region = 0;
  std::uint32_t crc = 0;  ///< crc32 of `payload`
  std::vector<std::byte> payload;
};

/// A complete snapshot in memory (the unit of write_snapshot/read_snapshot).
struct SnapshotBlob {
  SnapshotMeta meta;
  std::vector<RegionBlob> regions;

  /// Recompute every region CRC and compare with the stored one; throws
  /// io_error naming the first mismatching region.
  void verify() const;
};

/// Pluggable snapshot storage. See the file comment for the three
/// implementations and make_backend() for the `--storage=` spec syntax.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// Backend kind: "memory", "file", "mmap", "log".
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True when independent threads may each drive their own WriteSession
  /// concurrently (commits are internally synchronized). Callers running
  /// multiple committers against a false backend must serialize externally.
  [[nodiscard]] virtual bool concurrent_committers() const noexcept {
    return false;
  }

  /// Attach to the target: create the directory/arena on first use, load
  /// any existing manifest/slot table after a restart. Idempotent (a
  /// re-open rescans persistent state). make_backend() calls this.
  virtual void open() = 0;

  /// Persist a complete snapshot; durable (fsync/msync'd) on return.
  /// Rejects duplicate ids. The default implementation streams the blob
  /// through begin_snapshot() — the one write primitive a backend must
  /// provide — so blob and streaming writes cannot diverge.
  virtual void write_snapshot(const SnapshotBlob& blob);

  /// Read a snapshot back. Structural integrity (magic, committed flag,
  /// sizes) is checked here; payload CRC verification is the reader's job
  /// (SnapshotBlob::verify), so the hash pass isn't paid twice.
  [[nodiscard]] virtual SnapshotBlob read_snapshot(CkptId id) const = 0;

  /// Metadata of every committed snapshot, in commit order.
  [[nodiscard]] virtual std::vector<SnapshotMeta> list() const = 0;

  /// Remove one snapshot. Unknown ids throw io_error.
  virtual void drop(CkptId id) = 0;

  // --- streaming write path -------------------------------------------------

  /// A snapshot being written chunk by chunk. The payload stream is the
  /// regions in the declared order, each region contiguous; per-region CRCs
  /// arrive only at commit() so the producer can overlap hashing with the
  /// backend's writes. A session destroyed without commit() leaves no
  /// visible snapshot (torn data is rejected by readers).
  class WriteSession {
   public:
    virtual ~WriteSession() = default;
    virtual void append(std::span<const std::byte> chunk) = 0;
    /// Seal the snapshot (one CRC per declared region, in order); the
    /// snapshot is durable and visible to list()/read_snapshot() on return.
    virtual void commit(const std::vector<std::uint32_t>& region_crcs) = 0;
  };

  /// Begin a streaming write: region ids and sizes are declared up front,
  /// payload bytes stream through append(). This is the backend's write
  /// primitive (each implementation streams straight to its medium);
  /// `meta.bytes` must equal the size sum. Implementations should validate
  /// arguments with detail::require_valid_layout.
  [[nodiscard]] virtual std::unique_ptr<WriteSession> begin_snapshot(
      const SnapshotMeta& meta, std::vector<RegionId> regions,
      std::vector<std::uint64_t> region_sizes) = 0;
};

namespace detail {
/// Shared argument validation for both write paths (id != 0, aligned
/// region/size lists, meta.bytes == size sum, no zero-byte regions).
void require_valid_layout(const SnapshotMeta& meta,
                          const std::vector<RegionId>& regions,
                          const std::vector<std::uint64_t>& sizes);

/// Implement write_snapshot in terms of begin_snapshot: one session, one
/// append per region, commit with the blob's CRCs. This is the default
/// write_snapshot; it lives in detail so backends overriding
/// write_snapshot can still delegate to it.
void write_via_session(StorageBackend& backend, const SnapshotBlob& blob);
}  // namespace detail

/// Restore-on-respawn entry point: the newest snapshot that reads back
/// fully intact — structural checks *and* payload CRCs (SnapshotBlob::
/// verify) — walking list() from newest to oldest and skipping torn,
/// truncated or corrupt snapshots. nullopt when nothing restorable exists.
/// This is what a recovering process calls after a crash: a snapshot whose
/// committer died mid-write (or whose payload a fault tore) must not stop
/// an older good snapshot from being used.
[[nodiscard]] std::optional<SnapshotBlob> latest_restorable(
    const StorageBackend& backend);

/// Backend factory from a storage spec:
///
///   memory                 in-RAM snapshots
///   file:DIR[?direct=1]    one file per snapshot under DIR (+ MANIFEST)
///   mmap:PATH[?mb=N]       preallocated arena file (default 256 MiB)
///   log:DIR[?shards=N&uring=1&flush=0&compact=K]
///                          sharded append-only changelog under DIR
///                          (default 8 shards; uring=1 opts into io_uring
///                          submission, flush=0 skips per-commit fdatasync,
///                          compact=K runs background compaction every K
///                          commits)
///
/// Option separators may be ',' or '&' interchangeably. The backend is
/// returned open()ed. Unknown schemes / malformed specs throw
/// common::precondition_error.
[[nodiscard]] std::unique_ptr<StorageBackend> make_backend(
    std::string_view spec);

// --- concrete backends (constructible directly; make_backend wraps these) --

class MemoryBackend final : public StorageBackend {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "memory";
  }
  void open() override {}
  [[nodiscard]] SnapshotBlob read_snapshot(CkptId id) const override;
  [[nodiscard]] std::vector<SnapshotMeta> list() const override;
  void drop(CkptId id) override;
  /// Streams straight into the stored blob's region payloads.
  [[nodiscard]] std::unique_ptr<WriteSession> begin_snapshot(
      const SnapshotMeta& meta, std::vector<RegionId> regions,
      std::vector<std::uint64_t> region_sizes) override;

  /// Bytes currently held (payloads only), for store-size accounting.
  [[nodiscard]] std::size_t stored_bytes() const noexcept;

 private:
  class Session;
  std::vector<SnapshotBlob> snapshots_;  // commit order
};

class FileBackend final : public StorageBackend {
 public:
  struct Options {
    /// Open payload files with O_DIRECT (page-cache bypass, 4 KiB-aligned
    /// bounce writes). Falls back to buffered I/O when the filesystem
    /// rejects it (tmpfs does); direct_active() tells which happened.
    bool direct = false;
  };

  explicit FileBackend(std::string directory);
  FileBackend(std::string directory, Options opts);
  ~FileBackend() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "file";
  }
  void open() override;
  [[nodiscard]] SnapshotBlob read_snapshot(CkptId id) const override;
  [[nodiscard]] std::vector<SnapshotMeta> list() const override;
  void drop(CkptId id) override;
  [[nodiscard]] std::unique_ptr<WriteSession> begin_snapshot(
      const SnapshotMeta& meta, std::vector<RegionId> regions,
      std::vector<std::uint64_t> region_sizes) override;

  /// True when the last payload file was actually written with O_DIRECT.
  [[nodiscard]] bool direct_active() const noexcept { return direct_active_; }
  [[nodiscard]] const std::string& directory() const noexcept { return dir_; }

 private:
  class Session;
  [[nodiscard]] std::string snapshot_path(CkptId id) const;
  void rewrite_manifest() const;
  void record_commit(const SnapshotMeta& meta);

  std::string dir_;
  Options opts_;
  bool direct_active_ = false;
  std::vector<SnapshotMeta> manifest_;  // commit order
};

class MmapBackend final : public StorageBackend {
 public:
  static constexpr std::size_t kDefaultCapacity = 256ull << 20;  // 256 MiB

  explicit MmapBackend(std::string path,
                       std::size_t capacity_bytes = kDefaultCapacity);
  ~MmapBackend() override;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "mmap";
  }
  void open() override;
  [[nodiscard]] SnapshotBlob read_snapshot(CkptId id) const override;
  [[nodiscard]] std::vector<SnapshotMeta> list() const override;
  void drop(CkptId id) override;
  [[nodiscard]] std::unique_ptr<WriteSession> begin_snapshot(
      const SnapshotMeta& meta, std::vector<RegionId> regions,
      std::vector<std::uint64_t> region_sizes) override;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Arena bytes past the bump cursor still available for payloads.
  [[nodiscard]] std::size_t free_bytes() const noexcept;

 private:
  class Session;
  struct Arena;  // the mapped layout (header + slots + data)
  void close_map() noexcept;
  [[nodiscard]] Arena* arena() const;

  std::string path_;
  std::size_t capacity_;
  void* map_ = nullptr;
  std::size_t map_len_ = 0;
};

}  // namespace abftc::ckpt::io

/// \file mmap_backend.cpp
/// A preallocated, mmap'd checkpoint arena: one file of fixed capacity
/// holding an ArenaHeader, a fixed slot table (the manifest), and a
/// bump-allocated data area of per-snapshot region tables + payloads.
///
/// Commit discipline mirrors the file backend: payload and region table are
/// memcpy'd into the data area and msync'd first, then the slot record is
/// filled and flagged committed and msync'd — a crash leaves an unused slot
/// and orphaned data bytes, never a half-visible snapshot (open() reclaims
/// such torn reservations). drop() clears the slot; data-area space is
/// bump-allocated and reclaimed when the dropped snapshot was the top of
/// the allocator or the arena empties, which matches the intended use — a
/// rotating window of a few live protection points, not a general store.

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>

#include "ckpt/io/backend.hpp"
#include "ckpt/io/detail.hpp"
#include "common/crc32.hpp"
#include "common/error.hpp"

namespace abftc::ckpt::io {

namespace {

constexpr std::uint64_t kArenaMagic = 0x3152414354464241ull;  // "ABFTCAR1"
constexpr std::uint32_t kArenaVersion = 1;
constexpr std::uint32_t kSlots = 256;

struct ArenaHeader {
  std::uint64_t magic = kArenaMagic;
  std::uint32_t version = kArenaVersion;
  std::uint32_t slot_count = kSlots;
  std::uint64_t capacity = 0;
  std::uint64_t data_cursor = 0;  ///< next free byte in the data area
  std::uint64_t next_seq = 1;     ///< commit-order counter
};
static_assert(sizeof(ArenaHeader) == 40);

struct Slot {
  std::uint32_t used = 0;
  std::uint32_t committed = 0;
  std::uint64_t id = 0;
  std::uint32_t kind = 0;
  std::uint32_t region_count = 0;
  double when = 0.0;
  std::uint64_t entry_link = 0;
  std::uint64_t bytes = 0;   ///< payload bytes
  std::uint64_t offset = 0;  ///< arena offset of the region table
  std::uint64_t seq = 0;     ///< commit order
};
static_assert(sizeof(Slot) == 64);

using detail::RegionEntry;

constexpr std::size_t kDataStart =
    (sizeof(ArenaHeader) + kSlots * sizeof(Slot) + 63) / 64 * 64;

using detail::sys_error;

std::size_t align8(std::size_t v) noexcept { return detail::align_up(v, 8); }

/// msync the byte range [base+off, base+off+len), page-aligned as required.
void sync_range(void* base, std::size_t off, std::size_t len) {
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t lo = off / page * page;
  const std::size_t hi = off + len;
  if (::msync(static_cast<std::byte*>(base) + lo, hi - lo, MS_SYNC) != 0)
    sys_error("msync arena");
}

}  // namespace

struct MmapBackend::Arena {
  ArenaHeader header;
  Slot slots[kSlots];

  [[nodiscard]] std::byte* base() noexcept {
    return reinterpret_cast<std::byte*>(this);
  }
  [[nodiscard]] const std::byte* base() const noexcept {
    return reinterpret_cast<const std::byte*>(this);
  }
  [[nodiscard]] const Slot* find(CkptId id) const noexcept {
    for (const Slot& s : slots)
      if (s.used && s.committed && s.id == id) return &s;
    return nullptr;
  }
};

// --- Session ----------------------------------------------------------------

class MmapBackend::Session final : public StorageBackend::WriteSession {
 public:
  Session(MmapBackend& backend, SnapshotMeta meta,
          std::vector<RegionId> regions, std::vector<std::uint64_t> sizes)
      : backend_(backend),
        meta_(meta),
        regions_(std::move(regions)),
        sizes_(std::move(sizes)) {
    Arena* a = backend.arena();
    slot_ = -1;
    for (std::uint32_t i = 0; i < kSlots; ++i)
      if (!a->slots[i].used) {
        slot_ = static_cast<int>(i);
        break;
      }
    if (slot_ < 0) throw io_error("mmap arena slot table full");

    table_off_ = a->header.data_cursor;
    payload_off_ = table_off_ + align8(regions_.size() * sizeof(RegionEntry));
    const std::uint64_t end = payload_off_ + meta_.bytes;
    if (end > backend.capacity_)
      throw io_error("mmap arena full: need " + std::to_string(end) +
                     " bytes, capacity " + std::to_string(backend.capacity_) +
                     " (drop old snapshots or grow ?mb=)");
    a->header.data_cursor = end;
    a->slots[static_cast<std::size_t>(slot_)].used = 1;  // reserved, torn
  }

  ~Session() override {
    if (committed_) return;
    // Abandoned: sessions are serialized, so the reservation is still the
    // top of the bump allocator and can be rolled back.
    Arena* a = backend_.arena();
    a->header.data_cursor = table_off_;
    a->slots[static_cast<std::size_t>(slot_)] = Slot{};
  }

  void append(std::span<const std::byte> chunk) override {
    ABFTC_REQUIRE(!committed_, "append after commit");
    ABFTC_REQUIRE(written_ + chunk.size() <= meta_.bytes,
                  "payload stream exceeds the declared snapshot size");
    std::memcpy(backend_.arena()->base() + payload_off_ + written_,
                chunk.data(), chunk.size());
    written_ += chunk.size();
  }

  void commit(const std::vector<std::uint32_t>& region_crcs) override {
    ABFTC_REQUIRE(!committed_, "double commit");
    ABFTC_REQUIRE(region_crcs.size() == regions_.size(),
                  "need one CRC per region");
    ABFTC_REQUIRE(written_ == meta_.bytes,
                  "payload stream shorter than the declared snapshot size");
    Arena* a = backend_.arena();

    std::vector<RegionEntry> entries(regions_.size());
    for (std::size_t i = 0; i < entries.size(); ++i)
      entries[i] = RegionEntry{regions_[i], sizes_[i], region_crcs[i], 0};
    std::memcpy(a->base() + table_off_, entries.data(),
                entries.size() * sizeof(RegionEntry));
    // Payload + table durable before the slot becomes visible.
    sync_range(a, table_off_, payload_off_ - table_off_ + meta_.bytes);

    Slot& s = a->slots[static_cast<std::size_t>(slot_)];
    s.id = meta_.id;
    s.kind = static_cast<std::uint32_t>(meta_.kind);
    s.region_count = static_cast<std::uint32_t>(regions_.size());
    s.when = meta_.when;
    s.entry_link = meta_.entry_link;
    s.bytes = meta_.bytes;
    s.offset = table_off_;
    s.seq = a->header.next_seq++;
    // The committed flag is set *last* with release ordering: a committer
    // SIGKILLed mid-commit must never leave a flagged slot whose other
    // fields were not yet stored (plain stores could be compiler-reordered
    // past the flag; the shared mapping makes every executed store durable
    // the instant the process dies).
    std::atomic_ref<std::uint32_t>(s.committed)
        .store(1, std::memory_order_release);
    sync_range(a, 0, kDataStart);  // header + slot table
    committed_ = true;
  }

 private:
  MmapBackend& backend_;
  SnapshotMeta meta_;
  std::vector<RegionId> regions_;
  std::vector<std::uint64_t> sizes_;
  int slot_ = -1;
  std::uint64_t table_off_ = 0;
  std::uint64_t payload_off_ = 0;
  std::uint64_t written_ = 0;
  bool committed_ = false;
};

// --- MmapBackend ------------------------------------------------------------

MmapBackend::MmapBackend(std::string path, std::size_t capacity_bytes)
    : path_(std::move(path)), capacity_(capacity_bytes) {
  ABFTC_REQUIRE(capacity_ > kDataStart + (1 << 12),
                "mmap arena capacity too small");
}

MmapBackend::~MmapBackend() { close_map(); }

void MmapBackend::close_map() noexcept {
  if (map_ != nullptr) {
    ::munmap(map_, map_len_);
    map_ = nullptr;
    map_len_ = 0;
  }
}

MmapBackend::Arena* MmapBackend::arena() const {
  ABFTC_REQUIRE(map_ != nullptr, "mmap backend not open()ed");
  return static_cast<Arena*>(map_);
}

void MmapBackend::open() {
  close_map();
  int fd = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) sys_error("open arena " + path_);
  detail::FdGuard guard{fd};

  struct stat st {};
  if (::fstat(fd, &st) != 0) sys_error("stat arena " + path_);
  const bool fresh = st.st_size == 0;
  if (fresh) {
    if (::ftruncate(fd, static_cast<off_t>(capacity_)) != 0)
      sys_error("preallocate arena " + path_);
  } else {
    if (static_cast<std::size_t>(st.st_size) < sizeof(ArenaHeader))
      throw io_error("truncated arena file: " + path_);
  }

  // An existing arena dictates its own capacity (persisted in the header).
  std::size_t len = fresh ? capacity_ : static_cast<std::size_t>(st.st_size);
  void* p = ::mmap(nullptr, len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) sys_error("mmap arena " + path_);
  map_ = p;
  map_len_ = len;

  Arena* a = arena();
  if (fresh) {
    a->header = ArenaHeader{};
    a->header.capacity = capacity_;
    a->header.data_cursor = kDataStart;
    for (Slot& s : a->slots) s = Slot{};
    sync_range(a, 0, kDataStart);
  } else {
    if (a->header.magic != kArenaMagic || a->header.version != kArenaVersion)
      throw io_error("not a checkpoint arena: " + path_);
    if (a->header.capacity != map_len_)
      throw io_error("truncated arena file: " + path_);
    capacity_ = a->header.capacity;
    // Reclaim torn reservations a crash mid-session may have left behind
    // (used slot never committed, cursor advanced past orphaned bytes):
    // clear the slots and rewind the cursor to the end of the last
    // committed snapshot. A SIGKILLed committer can also leave a slot that
    // *is* flagged committed but whose record is half-written (the flag is
    // stored last, but a crash between page writebacks — or a torn write
    // from a fault injector — can still surface one); a committed slot
    // whose geometry does not describe a snapshot inside the arena is
    // equally torn and must not be treated as live.
    bool torn = false;
    std::uint64_t cursor = kDataStart;
    for (Slot& s : a->slots) {
      const std::uint64_t extent =
          s.offset + align8(s.region_count * sizeof(RegionEntry)) + s.bytes;
      const bool valid = s.id != 0 && s.offset >= kDataStart &&
                         s.offset <= capacity_ && extent >= s.offset &&
                         extent <= capacity_ && s.seq != 0 &&
                         s.seq < a->header.next_seq;
      if (s.used && (!s.committed || !valid)) {
        s = Slot{};
        torn = true;
      } else if (s.used) {
        cursor = std::max(cursor, extent);
      }
    }
    if (torn || a->header.data_cursor < cursor) {
      a->header.data_cursor = cursor;
      sync_range(a, 0, kDataStart);
    }
  }
}

std::size_t MmapBackend::free_bytes() const noexcept {
  if (map_ == nullptr) return 0;
  return capacity_ - static_cast<Arena*>(map_)->header.data_cursor;
}

std::unique_ptr<StorageBackend::WriteSession> MmapBackend::begin_snapshot(
    const SnapshotMeta& meta, std::vector<RegionId> regions,
    std::vector<std::uint64_t> region_sizes) {
  detail::require_valid_layout(meta, regions, region_sizes);
  ABFTC_REQUIRE(arena()->find(meta.id) == nullptr, "duplicate snapshot id");
  return std::make_unique<Session>(*this, meta, std::move(regions),
                                   std::move(region_sizes));
}

SnapshotBlob MmapBackend::read_snapshot(CkptId id) const {
  const Arena* a = arena();
  const Slot* s = a->find(id);
  if (s == nullptr)
    throw io_error("unknown snapshot id " + std::to_string(id));
  if (s->offset + align8(s->region_count * sizeof(RegionEntry)) + s->bytes >
      capacity_)
    throw io_error("corrupt slot record for snapshot " + std::to_string(id));

  SnapshotBlob blob;
  blob.meta = SnapshotMeta{s->id, static_cast<CkptKind>(s->kind), s->when,
                           s->entry_link, s->bytes};
  std::vector<RegionEntry> entries(s->region_count);
  std::memcpy(entries.data(), a->base() + s->offset,
              s->region_count * sizeof(RegionEntry));
  std::uint64_t off = s->offset + align8(s->region_count * sizeof(RegionEntry));
  std::uint64_t total = 0;
  for (const RegionEntry& e : entries) total += e.bytes;
  if (total != s->bytes)
    throw io_error("corrupt region table for snapshot " + std::to_string(id));
  blob.regions.reserve(entries.size());
  for (const RegionEntry& e : entries) {
    RegionBlob r;
    r.region = e.region;
    r.crc = e.crc;
    r.payload.assign(a->base() + off, a->base() + off + e.bytes);
    off += e.bytes;
    blob.regions.push_back(std::move(r));
  }
  return blob;
}

std::vector<SnapshotMeta> MmapBackend::list() const {
  const Arena* a = arena();
  std::vector<const Slot*> live;
  for (const Slot& s : a->slots)
    if (s.used && s.committed) live.push_back(&s);
  std::sort(live.begin(), live.end(),
            [](const Slot* x, const Slot* y) { return x->seq < y->seq; });
  std::vector<SnapshotMeta> out;
  out.reserve(live.size());
  for (const Slot* s : live)
    out.push_back(SnapshotMeta{s->id, static_cast<CkptKind>(s->kind), s->when,
                               s->entry_link, s->bytes});
  return out;
}

void MmapBackend::drop(CkptId id) {
  Arena* a = arena();
  Slot* target = nullptr;
  bool others = false;
  for (Slot& s : a->slots) {
    if (s.used && s.committed && s.id == id) target = &s;
    else if (s.used) others = true;
  }
  if (target == nullptr)
    throw io_error("unknown snapshot id " + std::to_string(id));
  const std::uint64_t begin = target->offset;
  const std::uint64_t end =
      begin + align8(target->region_count * sizeof(RegionEntry)) +
      target->bytes;
  *target = Slot{};
  // Bump allocation: dropping the top of the allocator rewinds the cursor
  // (write/restore/drop cycles — the calibrator, rotating protection
  // points — never grow the arena); dropping the last snapshot resets it.
  if (!others) a->header.data_cursor = kDataStart;
  else if (end == a->header.data_cursor) a->header.data_cursor = begin;
  sync_range(a, 0, kDataStart);
}

}  // namespace abftc::ckpt::io

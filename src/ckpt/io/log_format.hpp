#pragma once
/// \file log_format.hpp
/// On-disk framing of the log backend's segments, shared by the commit path
/// (log_backend.cpp) and the compaction rewrite (compaction.cpp). All
/// integers are little-endian native; every structure is a multiple of 8
/// bytes so records stay 8-aligned without per-field packing.

#include <cstdint>

namespace abftc::ckpt::io::logf {

/// "ABFTCSG1" / "ABFTCLG1" read as little-endian u64.
inline constexpr std::uint64_t kSegMagic = 0x3147534354464241ull;
inline constexpr std::uint64_t kRecMagic = 0x31474C4354464241ull;
inline constexpr std::uint32_t kLogVersion = 1;
inline constexpr std::uint32_t kTrailerMagic = 0x43524354u;  // "TCRC"

inline constexpr std::uint32_t kTypeSnapshot = 1;
inline constexpr std::uint32_t kTypeTombstone = 2;

/// SegmentHeader::shard value marking a compaction-written frozen segment.
inline constexpr std::uint32_t kFrozenShard = 0xFFFFFFFFu;

/// Trailing {record_crc u32, trailer magic u32} of every record.
inline constexpr std::uint64_t kTrailerBytes = 8;

/// First 32 bytes of every segment file.
struct SegmentHeader {
  std::uint64_t magic = kSegMagic;
  std::uint32_t version = kLogVersion;
  std::uint32_t shard = 0;  ///< writing shard, or kFrozenShard
  std::uint64_t gen = 0;    ///< store-wide generation (monotonic)
  std::uint64_t pad = 0;
};
static_assert(sizeof(SegmentHeader) == 32, "segment header layout");

/// Fixed prefix of every record; followed by the region table
/// (region_count × RegionEntry, table CRC, 4 B pad), the payload (regions
/// concatenated, zero-padded to 8 B), and the 8 B trailer. header_crc
/// covers all preceding header bytes so a torn header is detected before
/// its lengths are trusted.
struct RecordHeader {
  std::uint64_t magic = kRecMagic;
  std::uint32_t version = kLogVersion;
  std::uint32_t type = kTypeSnapshot;
  std::uint64_t id = 0;
  std::uint32_t kind = 0;  ///< CkptKind as stored
  std::uint32_t region_count = 0;
  double when = 0.0;
  std::uint64_t entry_link = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t seq = 0;  ///< store-wide commit sequence number
  std::uint32_t header_crc = 0;
  std::uint32_t pad = 0;
};
static_assert(sizeof(RecordHeader) == 72, "record header layout");

}  // namespace abftc::ckpt::io::logf

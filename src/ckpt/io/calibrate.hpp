#pragma once
/// \file calibrate.hpp
/// MeasuredStorage: benchmark a StorageBackend and fit a ckpt::StorageModel
/// from the timings, so the Fig 8–10 protocols can run on *measured* C/R
/// instead of assumed bandwidths (Section V-C anchored in hardware terms).
///
/// The fit is the model the analytic layer already speaks:
///   write_time(bytes) = latency + bytes / bandwidth
/// estimated by least squares over timed commits at a few image sizes
/// (best-of-reps per size, so page-cache warmup and scheduler noise bias
/// every point the same way). Reads are timed the same way and expressed as
/// the model's read_speedup. The fitted bandwidth maps to
/// StorageModel::node_bandwidth: a locally measured device is per-node
/// storage (the scalable Fig 10 regime); scaling it as a shared aggregate
/// pipe is the caller's modelling decision.

#include <cstddef>
#include <vector>

#include "ckpt/io/writer.hpp"
#include "ckpt/storage.hpp"

namespace abftc::ckpt::io {

struct CalibrationOptions {
  /// Image sizes to time (bytes). Spread over ~an order of magnitude so the
  /// latency/bandwidth split is identifiable.
  std::vector<std::size_t> sizes = {1u << 20, 4u << 20, 16u << 20};
  /// Timed repetitions per size; the best (minimum) time is kept.
  int reps = 3;
  /// Writer pipeline options used for the timed commits.
  WriterOptions writer{};
  /// Concurrent committer threads per timed round. 1 keeps the historical
  /// single-stream path (CkptWriter pipeline). Above 1, each rep times a
  /// round of `committers` same-size snapshots written concurrently and the
  /// recorded write_seconds is the round's wall time — the commit latency a
  /// rank sees when its neighbours checkpoint at the same moment. Backends
  /// without concurrent_committers() are serialized on a mutex, so their
  /// fit degrades with committers exactly as a real shared store would.
  int committers = 1;
};

struct CalibrationPoint {
  std::size_t bytes = 0;
  double write_seconds = 0.0;  ///< best-of-reps commit wall time
  double read_seconds = 0.0;   ///< best-of-reps restore wall time
};

struct Calibration {
  ckpt::StorageModel model;  ///< fitted: node_bandwidth, latency, read_speedup
  std::vector<CalibrationPoint> points;
  double write_bandwidth = 0.0;  ///< fitted bytes/s (per committer)
  double read_bandwidth = 0.0;   ///< measured at the largest size
  int committers = 1;            ///< concurrency the fit was taken under
};

/// Time full-checkpoint commits and restores on `backend` and fit the
/// model. The backend is left as it was found (calibration snapshots are
/// dropped). Throws if the backend cannot hold the largest size.
[[nodiscard]] Calibration calibrate_backend(StorageBackend& backend,
                                            const CalibrationOptions& opts = {});

}  // namespace abftc::ckpt::io

#pragma once
/// \file runtime.hpp
/// The executable ABFT&PeriodicCkpt protocol of Section III / Figure 2,
/// driving a *real* application state (a ckpt::MemoryImage) through
/// alternating GENERAL and LIBRARY phases with injected failures:
///
///   GENERAL phase   periodic full checkpoints; on failure, coordinated
///                   rollback to the last restore point and re-execution.
///   entry           forced partial checkpoint of the REMAINDER dataset.
///   LIBRARY phase   periodic checkpointing disabled; on failure, the
///                   REMAINDER dataset is reloaded from the entry
///                   checkpoint and the LIBRARY dataset is reconstructed by
///                   the ABFT kernel (the kernels in src/abft do this
///                   internally); the call then resumes.
///   exit            forced partial checkpoint of the LIBRARY dataset,
///                   completing the split coordinated checkpoint.
///
/// Failures are injected explicitly (deterministic tests/demos); the
/// statistical behaviour is the domain of core/simulate.hpp.

#include <functional>

#include "ckpt/image.hpp"
#include "common/rng.hpp"

namespace abftc::core {

class CompositeRuntime {
 public:
  struct Stats {
    std::size_t full_checkpoints = 0;
    std::size_t entry_checkpoints = 0;
    std::size_t exit_checkpoints = 0;
    std::size_t rollbacks = 0;            ///< GENERAL-phase recoveries
    std::size_t reexecutions = 0;         ///< GENERAL work attempts re-run
    std::size_t abft_recoveries = 0;      ///< LIBRARY-phase recoveries
    std::size_t remainder_restores = 0;   ///< partial reloads during ABFT
  };

  /// The runtime protects `image`; an initial full checkpoint is taken so a
  /// rollback target always exists. The image must outlive the runtime.
  explicit CompositeRuntime(ckpt::MemoryImage& image);

  /// Run a GENERAL-phase work function. The function must be re-runnable
  /// from the restored state (the classic rollback-recovery contract).
  /// `failures_before_success` simulated crashes are injected: each one
  /// scrambles every region (the node's memory is gone), rolls back to the
  /// latest restore point and re-executes.
  void run_general_phase(const std::function<void()>& work,
                         int failures_before_success = 0);

  /// Take a periodic full checkpoint (the GENERAL-phase protection).
  void periodic_checkpoint();

  /// Run a LIBRARY-phase call under ABFT protection. `work` receives a
  /// recovery callback: the ABFT kernel invokes it after each internal
  /// checksum reconstruction so the runtime can restore the REMAINDER
  /// dataset from the entry checkpoint (Figure 2's combined recovery).
  void run_library_phase(
      const std::function<void(const std::function<void()>& on_abft_recovery)>&
          work);

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] ckpt::CheckpointStore& store() noexcept { return store_; }

  /// Advance the runtime's logical clock (checkpoint timestamps).
  void tick(double dt = 1.0);

 private:
  void scramble_image();

  ckpt::MemoryImage& image_;
  ckpt::CheckpointStore store_;
  common::Rng scramble_rng_{0xDEADBEEFULL};
  double now_ = 0.0;
  Stats stats_;
};

}  // namespace abftc::core

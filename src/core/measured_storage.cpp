#include "core/measured_storage.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "ckpt/io/backend.hpp"
#include "ckpt/io/calibrate.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"

namespace abftc::core {

namespace {

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// "scheme:GBps[,latency_s]" → (bandwidth bytes/s, latency).
struct AnalyticArgs {
  double bandwidth = 0.0;
  double latency = 0.0;
  bool has_latency = false;
};

AnalyticArgs parse_analytic(std::string_view spec) {
  const auto colon = spec.find(':');
  ABFTC_REQUIRE(colon != std::string_view::npos && colon + 1 < spec.size(),
                "analytic storage spec needs a bandwidth: scheme:GBps");
  const std::string rest(spec.substr(colon + 1));
  AnalyticArgs out;
  char* end = nullptr;
  out.bandwidth = std::strtod(rest.c_str(), &end) * kGiB;
  ABFTC_REQUIRE(end != rest.c_str() && out.bandwidth > 0.0,
                "malformed storage bandwidth in spec: " + std::string(spec));
  if (*end == ',') {
    const char* lat = end + 1;
    out.latency = std::strtod(lat, &end);
    ABFTC_REQUIRE(end != lat && out.latency >= 0.0,
                  "malformed storage latency in spec: " + std::string(spec));
    out.has_latency = true;
  }
  ABFTC_REQUIRE(*end == '\0',
                "trailing junk in storage spec: " + std::string(spec));
  return out;
}

ckpt::StorageModel measured(std::string_view spec) {
  auto backend = ckpt::io::make_backend(spec);
  ckpt::io::CalibrationOptions opts;
  // A `committers=N` option in the spec tail calibrates under commit
  // contention (N concurrent writers per timed round) — the backend factory
  // ignores the key, so e.g. "log:/tmp/s?shards=4,committers=4" both
  // configures the store and dimensions its fit.
  const auto qmark = spec.find('?');
  if (qmark != std::string_view::npos) {
    std::string tail(spec.substr(qmark + 1));
    std::replace(tail.begin(), tail.end(), '&', ',');
    const auto items = common::parse_key_values(tail, ',', '=');
    if (const auto c = common::find_key_value(items, "committers")) {
      char* end = nullptr;
      const long n = std::strtol(c->c_str(), &end, 10);
      ABFTC_REQUIRE(end != c->c_str() && *end == '\0' && n >= 1 && n <= 256,
                    "malformed committers count in storage spec: " +
                        std::string(spec));
      opts.committers = static_cast<int>(n);
    }
  }
  return ckpt::io::calibrate_backend(*backend, opts).model;
}

}  // namespace

struct StorageResolver::Impl {
  mutable std::mutex m;
  std::map<std::string, Factory> factories;
};

StorageResolver::StorageResolver() : impl_(std::make_shared<Impl>()) {
  add("pfs", [](std::string_view spec) {
    const AnalyticArgs a = parse_analytic(spec);
    return ckpt::remote_pfs(a.bandwidth,
                            a.has_latency ? a.latency : 1.0);
  });
  add("buddy", [](std::string_view spec) {
    const AnalyticArgs a = parse_analytic(spec);
    return ckpt::buddy_store(a.bandwidth,
                             a.has_latency ? a.latency : 0.1);
  });
  add("nvram", [](std::string_view spec) {
    const AnalyticArgs a = parse_analytic(spec);
    return ckpt::local_nvram(a.bandwidth,
                             a.has_latency ? a.latency : 0.01);
  });
  add("memory", measured);
  add("file", measured);
  add("mmap", measured);
  add("log", measured);
}

StorageResolver& StorageResolver::instance() {
  static StorageResolver resolver;
  return resolver;
}

void StorageResolver::add(std::string scheme, Factory factory) {
  ABFTC_REQUIRE(!scheme.empty(), "storage scheme must not be empty");
  ABFTC_REQUIRE(factory != nullptr, "storage factory must not be null");
  std::lock_guard lock(impl_->m);
  impl_->factories[std::move(scheme)] = std::move(factory);
}

ckpt::StorageModel StorageResolver::resolve(std::string_view spec) const {
  const auto colon = spec.find(':');
  const std::string scheme(colon == std::string_view::npos
                               ? spec
                               : spec.substr(0, colon));
  Factory factory;
  {
    std::lock_guard lock(impl_->m);
    const auto it = impl_->factories.find(scheme);
    if (it != impl_->factories.end()) factory = it->second;
  }
  if (!factory) {
    std::ostringstream os;
    os << "unknown storage scheme '" << scheme << "' (registered:";
    for (const std::string& s : schemes()) os << ' ' << s;
    os << ')';
    ABFTC_REQUIRE(false, os.str());
  }
  ckpt::StorageModel model = factory(spec);
  model.validate();
  return model;
}

std::vector<std::string> StorageResolver::schemes() const {
  std::lock_guard lock(impl_->m);
  std::vector<std::string> out;
  out.reserve(impl_->factories.size());
  for (const auto& [scheme, _] : impl_->factories) out.push_back(scheme);
  return out;
}

std::optional<ckpt::StorageModel> storage_model_from_args(
    const common::ArgParser& args) {
  if (!args.has("storage")) return std::nullopt;
  const std::string spec = args.get_string("storage", "");
  ABFTC_REQUIRE(!spec.empty(), "--storage needs a spec (e.g. file:/tmp/ckpt)");
  return StorageResolver::instance().resolve(spec);
}

}  // namespace abftc::core

#pragma once
/// \file params.hpp
/// The parameter vocabulary of Section IV-A of the paper:
///
///   µ (mtbf)       platform mean time between failures; for N identical
///                  nodes of individual MTBF µ_ind, µ = µ_ind / N.
///   D (downtime)   time to reboot / swap in a spare after a failure.
///   C, R           full coordinated checkpoint cost and recovery cost.
///   ρ (rho)        fraction of application memory touched by the LIBRARY
///                  phase: M_L = ρ·M, hence C_L = ρ·C and C_L̄ = (1−ρ)·C.
///   φ (phi)        ABFT slow-down factor: t time-units of library work take
///                  φ·t under ABFT protection (φ ≳ 1, typically 1.03).
///   Recons_ABFT    time to reconstruct the lost LIBRARY dataset from the
///                  ABFT checksums after a failure.
///   T0, α          epoch duration and the fraction of it spent in the
///                  LIBRARY phase: T_L = α·T0, T_G = (1−α)·T0.

#include <cstddef>

#include "common/error.hpp"

namespace abftc::core {

/// Failure characteristics of the machine (Section IV-B2).
struct PlatformParams {
  double mtbf = 0.0;      ///< µ: platform-level MTBF in seconds (> 0)
  double downtime = 0.0;  ///< D: reboot / spare-swap time in seconds (>= 0)
  std::size_t nodes = 1;  ///< informational; µ already aggregates the nodes

  /// Build platform parameters from a per-node MTBF: µ = µ_ind / N.
  [[nodiscard]] static PlatformParams from_individual(double mtbf_individual,
                                                      std::size_t node_count,
                                                      double downtime_s);
  void validate() const;
};

/// Checkpoint cost structure (Section IV-A).
struct CheckpointParams {
  double full_cost = 0.0;      ///< C: coordinated checkpoint of all of M
  double full_recovery = 0.0;  ///< R: reload of a full checkpoint
  double rho = 0.0;            ///< ρ ∈ [0,1]: LIBRARY fraction of memory

  [[nodiscard]] double library_cost() const noexcept {  ///< C_L = ρC
    return rho * full_cost;
  }
  [[nodiscard]] double remainder_cost() const noexcept {  ///< C_L̄ = (1−ρ)C
    return (1.0 - rho) * full_cost;
  }
  /// R_L̄: reload of the REMAINDER dataset only (paper: often = C_L̄).
  [[nodiscard]] double remainder_recovery() const noexcept {
    return (1.0 - rho) * full_recovery;
  }
  void validate() const;
};

/// ABFT protection characteristics (Section IV-B1/2).
struct AbftParams {
  double phi = 1.0;     ///< φ >= 1: per-time-unit ABFT overhead factor
  double recons = 0.0;  ///< Recons_ABFT: checksum reconstruction time
  void validate() const;
};

/// One epoch: a GENERAL phase followed by a LIBRARY phase (Figure 1).
struct EpochParams {
  double duration = 0.0;  ///< T0 = T_G + T_L, in seconds of *useful* work
  double alpha = 0.0;     ///< α ∈ [0,1]: T_L = α·T0

  [[nodiscard]] double library() const noexcept { return alpha * duration; }
  [[nodiscard]] double general() const noexcept {
    return (1.0 - alpha) * duration;
  }
  void validate() const;
};

/// A complete experiment scenario: platform + checkpoint + ABFT + workload.
struct ScenarioParams {
  PlatformParams platform;
  CheckpointParams ckpt;
  AbftParams abft;
  EpochParams epoch;
  std::size_t epochs = 1;  ///< number of identical epochs in the run

  [[nodiscard]] double total_work() const noexcept {
    return static_cast<double>(epochs) * epoch.duration;
  }
  void validate() const;
};

/// The exact configuration of the paper's Figure 7 panels:
/// T0 = 1 week, C = R = 10 min, D = 1 min, ρ = 0.8, φ = 1.03, Recons = 2 s.
[[nodiscard]] ScenarioParams figure7_scenario(double mtbf_seconds,
                                              double alpha);

}  // namespace abftc::core

#pragma once
/// \file phase_model.hpp
/// First-order analytical building blocks of Section IV-B.
///
/// Every protocol model is assembled from three phase primitives:
///  * a periodically checkpointed stream of work (Eq. 1, 4, 7, 10),
///  * a single unprotected segment closed by one checkpoint (Eq. 9), and
///  * an ABFT-protected library phase (Eq. 2, 5, 8).
///
/// Each primitive returns a PhaseOutcome: the fault-free time, the expected
/// time under failures (the fixed point T_final = T_ff / (1 − t_lost/µ)),
/// and an overhead breakdown. When t_lost >= µ the fixed point diverges —
/// the platform cannot make steady progress — and we report waste = 1.

#include <optional>

namespace abftc::core {

/// Result of running `work` seconds of useful computation under a
/// fault-tolerance mechanism on a platform with MTBF µ.
struct PhaseOutcome {
  double work = 0.0;      ///< useful seconds the phase must advance
  double t_ff = 0.0;      ///< fault-free wall-clock time (Eq. 1/2/9)
  double t_final = 0.0;   ///< expected wall-clock time with failures
  double t_lost = 0.0;    ///< expected time lost per failure (Eq. 6/7)
  double period = 0.0;    ///< checkpoint period in effect (0: none)
  bool diverged = false;  ///< t_lost >= µ: no steady progress possible

  /// Fraction of the final time that does not advance the application.
  [[nodiscard]] double waste() const noexcept {
    if (diverged || t_final <= 0.0) return 1.0;
    return 1.0 - work / t_final;
  }
  [[nodiscard]] double expected_failures(double mtbf) const noexcept {
    return diverged ? 0.0 : t_final / mtbf;
  }
  /// Checkpoint (and φ) overhead already present without failures.
  [[nodiscard]] double ff_overhead() const noexcept { return t_ff - work; }

  /// Combine sequential phases (times add; waste recomputed by caller).
  PhaseOutcome& operator+=(const PhaseOutcome& o) noexcept;
};

/// Work executed as periods of (P − C) computation + C checkpoint; a failure
/// loses on average D + R + P/2 (Eq. 7) and the fixed point Eq. (10) gives
/// the final time. Requires period > ckpt_cost.
[[nodiscard]] PhaseOutcome periodic_phase(double work, double period,
                                          double ckpt_cost, double recovery,
                                          double downtime, double mtbf);

/// Work executed as one unprotected segment closed by `trailing_ckpt`;
/// a failure restarts the segment: t_lost = D + R + T_ff/2 (Eq. 6/9).
[[nodiscard]] PhaseOutcome single_segment_phase(double work,
                                                double trailing_ckpt,
                                                double recovery,
                                                double downtime, double mtbf);

/// ABFT-protected library phase: T_ff = φ·T_L + C_L (Eq. 2); a failure
/// loses NO work — only D + R_L̄ + Recons_ABFT (Eq. 8).
[[nodiscard]] PhaseOutcome abft_phase(double library_work, double phi,
                                      double exit_ckpt,
                                      double remainder_recovery,
                                      double recons, double downtime,
                                      double mtbf);

/// Young/Daly first-order optimal period, Eq. (11): √(2C(µ−D−R)).
/// Returns nullopt when µ <= D + R (no period yields steady progress) and
/// clamps the result to be strictly larger than C.
[[nodiscard]] std::optional<double> optimal_period_first_order(
    double ckpt_cost, double mtbf, double downtime, double recovery);

/// Exact numeric optimum of the period: minimizes the Eq. (10) fixed point
/// by golden-section search over (C, 2(µ−D−R)]. Agrees with Eq. (11) to
/// first order (tests assert this); used when µ is small, where the √
/// formula leaves its validity range.
[[nodiscard]] std::optional<double> optimal_period_exact(double ckpt_cost,
                                                         double mtbf,
                                                         double downtime,
                                                         double recovery);

}  // namespace abftc::core

#pragma once
/// \file scaling.hpp
/// Weak-scaling scenario generation for the Section V-C study (Figs 8–10).
///
/// The application follows Gustafson's law: memory per node is fixed, so the
/// total memory M grows linearly with the node count x. For 2-D array
/// kernels, O(n²) = O(x), hence an O(n³) phase has parallel completion time
/// O(√x) and an O(n²) phase stays constant. The platform MTBF shrinks as
/// components are added, and the checkpoint cost grows with the memory that
/// must be saved (unless buddy/NVRAM storage makes it constant — Fig. 10).
///
/// Every quantity's growth is expressed as a ScalingLaw applied to
/// x / base_nodes, so both the paper's literal parameters and the calibrated
/// ones used by the benches (see EXPERIMENTS.md) are instances of the same
/// generator.

#include <vector>

#include "ckpt/storage.hpp"
#include "core/params.hpp"

namespace abftc::core {

/// Bridge: derive the model-layer C/R/ρ from a concrete storage model for an
/// application of `bytes_per_node` on `nodes` (used to anchor Figs 8–10 in
/// hardware terms rather than in arbitrary seconds).
[[nodiscard]] CheckpointParams ckpt_from_storage(
    const ckpt::StorageModel& storage, double bytes_per_node,
    std::size_t nodes, double rho);

/// Growth law as a function of r = nodes / base_nodes.
enum class ScalingLaw {
  Constant,  ///< f(r) = 1
  Sqrt,      ///< f(r) = √r   (e.g. O(n³) work over x nodes)
  Linear,    ///< f(r) = r    (e.g. aggregate memory through a fixed pipe)
};

[[nodiscard]] double scale_factor(ScalingLaw law, double ratio);

/// Parameters anchored at `base_nodes` and scaled outward.
struct WeakScalingConfig {
  double base_nodes = 1e4;

  // Workload anchors at base_nodes.
  double base_library = 0.0;  ///< T_L per epoch at base_nodes (s)
  double base_general = 0.0;  ///< T_G per epoch at base_nodes (s)
  std::size_t epochs = 1000;

  // Platform anchors at base_nodes.
  double base_ckpt = 60.0;      ///< C = R at base_nodes (s)
  double base_mtbf = 86400.0;   ///< µ at base_nodes (s)
  double downtime = 60.0;       ///< D (does not scale)

  // Protection constants (Section V).
  double phi = 1.03;
  double recons = 2.0;
  double rho = 0.8;

  // Growth laws.
  ScalingLaw library_growth = ScalingLaw::Sqrt;    ///< O(n³) phase
  ScalingLaw general_growth = ScalingLaw::Sqrt;    ///< Fig 8: O(n³); Fig 9/10: O(n²)
  ScalingLaw ckpt_growth = ScalingLaw::Sqrt;       ///< storage model
  ScalingLaw mtbf_shrink = ScalingLaw::Sqrt;       ///< µ(x) = base_mtbf / f(r)

  void validate() const;
};

/// Instantiate the scenario at a given node count.
[[nodiscard]] ScenarioParams scenario_at(const WeakScalingConfig& cfg,
                                         double nodes);

/// α at a given node count (useful for axis labels, cf. Fig. 9/10).
[[nodiscard]] double alpha_at(const WeakScalingConfig& cfg, double nodes);

/// Log-spaced node sweep 1k → 1M (the x-axis of Figs 8–10).
[[nodiscard]] std::vector<double> default_node_sweep(int points_per_decade = 4);

/// Calibrated configurations reproducing the published figures' shapes.
/// The deviations from the literal Section V-C text (and why the literal
/// text cannot be reproduced as written) are documented in EXPERIMENTS.md.
[[nodiscard]] WeakScalingConfig figure8_config();   ///< fixed α = 0.8
[[nodiscard]] WeakScalingConfig figure9_config();   ///< variable α (O(n²) GENERAL)
[[nodiscard]] WeakScalingConfig figure10_config();  ///< + constant C = R = 60 s

/// The paper's literal Section V-C reading (epoch = 1 min at 10k nodes,
/// µ ∝ 1/x, C ∝ x). Provided for the record: beyond ~3·10⁵ nodes it drives
/// µ below D + R and *every* protocol diverges (waste = 1), which the
/// published curves do not show. Kept for the ablation bench.
[[nodiscard]] WeakScalingConfig figure8_literal_config();

}  // namespace abftc::core

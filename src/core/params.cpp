#include "core/params.hpp"

#include "common/time_units.hpp"

namespace abftc::core {

PlatformParams PlatformParams::from_individual(double mtbf_individual,
                                               std::size_t node_count,
                                               double downtime_s) {
  ABFTC_REQUIRE(mtbf_individual > 0.0, "individual MTBF must be positive");
  ABFTC_REQUIRE(node_count > 0, "node count must be positive");
  PlatformParams p;
  p.mtbf = mtbf_individual / static_cast<double>(node_count);
  p.downtime = downtime_s;
  p.nodes = node_count;
  p.validate();
  return p;
}

void PlatformParams::validate() const {
  ABFTC_REQUIRE(mtbf > 0.0, "platform MTBF must be positive");
  ABFTC_REQUIRE(downtime >= 0.0, "downtime must be non-negative");
  ABFTC_REQUIRE(nodes > 0, "node count must be positive");
}

void CheckpointParams::validate() const {
  ABFTC_REQUIRE(full_cost >= 0.0, "checkpoint cost must be non-negative");
  ABFTC_REQUIRE(full_recovery >= 0.0, "recovery cost must be non-negative");
  ABFTC_REQUIRE(rho >= 0.0 && rho <= 1.0, "rho must be in [0,1]");
}

void AbftParams::validate() const {
  ABFTC_REQUIRE(phi >= 1.0, "phi must be >= 1 (ABFT adds overhead)");
  ABFTC_REQUIRE(recons >= 0.0, "reconstruction time must be non-negative");
}

void EpochParams::validate() const {
  ABFTC_REQUIRE(duration > 0.0, "epoch duration must be positive");
  ABFTC_REQUIRE(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
}

void ScenarioParams::validate() const {
  platform.validate();
  ckpt.validate();
  abft.validate();
  epoch.validate();
  ABFTC_REQUIRE(epochs > 0, "scenario needs at least one epoch");
}

ScenarioParams figure7_scenario(double mtbf_seconds, double alpha) {
  using namespace abftc::common;
  ScenarioParams s;
  s.platform.mtbf = mtbf_seconds;
  s.platform.downtime = minutes(1);
  s.platform.nodes = 1;  // the figure sweeps platform-level MTBF directly
  s.ckpt.full_cost = minutes(10);
  s.ckpt.full_recovery = minutes(10);
  s.ckpt.rho = 0.8;
  s.abft.phi = 1.03;
  s.abft.recons = seconds(2);
  s.epoch.duration = weeks(1);
  s.epoch.alpha = alpha;
  s.epochs = 1;
  s.validate();
  return s;
}

}  // namespace abftc::core

#include "core/scaling.hpp"

#include <cmath>

#include "common/time_units.hpp"

namespace abftc::core {

using common::days;
using common::minutes;
using common::seconds;

CheckpointParams ckpt_from_storage(const ckpt::StorageModel& storage,
                                   double bytes_per_node, std::size_t nodes,
                                   double rho) {
  ABFTC_REQUIRE(bytes_per_node > 0.0, "bytes per node must be positive");
  const double total = bytes_per_node * static_cast<double>(nodes);
  CheckpointParams p;
  p.full_cost = storage.write_time(total, nodes);
  p.full_recovery = storage.read_time(total, nodes);
  p.rho = rho;
  p.validate();
  return p;
}

double scale_factor(ScalingLaw law, double ratio) {
  ABFTC_REQUIRE(ratio > 0.0, "scaling ratio must be positive");
  switch (law) {
    case ScalingLaw::Constant:
      return 1.0;
    case ScalingLaw::Sqrt:
      return std::sqrt(ratio);
    case ScalingLaw::Linear:
      return ratio;
  }
  ABFTC_CHECK(false, "unknown scaling law");
}

void WeakScalingConfig::validate() const {
  ABFTC_REQUIRE(base_nodes > 0.0, "base node count must be positive");
  ABFTC_REQUIRE(base_library >= 0.0 && base_general >= 0.0,
                "phase durations must be non-negative");
  ABFTC_REQUIRE(base_library + base_general > 0.0,
                "the epoch must contain some work");
  ABFTC_REQUIRE(epochs > 0, "need at least one epoch");
  ABFTC_REQUIRE(base_ckpt >= 0.0, "checkpoint cost must be non-negative");
  ABFTC_REQUIRE(base_mtbf > 0.0, "MTBF must be positive");
  ABFTC_REQUIRE(downtime >= 0.0, "downtime must be non-negative");
  ABFTC_REQUIRE(phi >= 1.0, "phi must be >= 1");
  ABFTC_REQUIRE(recons >= 0.0, "recons must be non-negative");
  ABFTC_REQUIRE(rho >= 0.0 && rho <= 1.0, "rho must be in [0,1]");
}

ScenarioParams scenario_at(const WeakScalingConfig& cfg, double nodes) {
  cfg.validate();
  ABFTC_REQUIRE(nodes > 0.0, "node count must be positive");
  const double r = nodes / cfg.base_nodes;

  const double tl = cfg.base_library * scale_factor(cfg.library_growth, r);
  const double tg = cfg.base_general * scale_factor(cfg.general_growth, r);

  ScenarioParams s;
  s.platform.mtbf = cfg.base_mtbf / scale_factor(cfg.mtbf_shrink, r);
  s.platform.downtime = cfg.downtime;
  s.platform.nodes = static_cast<std::size_t>(nodes);
  s.ckpt.full_cost = cfg.base_ckpt * scale_factor(cfg.ckpt_growth, r);
  s.ckpt.full_recovery = s.ckpt.full_cost;  // paper: C = R in Section V-C
  s.ckpt.rho = cfg.rho;
  s.abft.phi = cfg.phi;
  s.abft.recons = cfg.recons;
  s.epoch.duration = tl + tg;
  s.epoch.alpha = tl / (tl + tg);
  s.epochs = cfg.epochs;
  s.validate();
  return s;
}

double alpha_at(const WeakScalingConfig& cfg, double nodes) {
  const double r = nodes / cfg.base_nodes;
  const double tl = cfg.base_library * scale_factor(cfg.library_growth, r);
  const double tg = cfg.base_general * scale_factor(cfg.general_growth, r);
  return tl / (tl + tg);
}

std::vector<double> default_node_sweep(int points_per_decade) {
  ABFTC_REQUIRE(points_per_decade >= 1, "need at least one point per decade");
  std::vector<double> nodes;
  const double lo = 3.0, hi = 6.0;  // 10^3 .. 10^6
  const int steps = static_cast<int>((hi - lo) * points_per_decade);
  for (int i = 0; i <= steps; ++i) {
    const double expo = lo + (hi - lo) * static_cast<double>(i) /
                                 static_cast<double>(steps);
    nodes.push_back(std::round(std::pow(10.0, expo)));
  }
  return nodes;
}

WeakScalingConfig figure8_config() {
  WeakScalingConfig cfg;
  cfg.base_nodes = 1e4;
  // Calibrated anchors (see EXPERIMENTS.md): epoch = 20 min at 10k nodes,
  // α(10k) = 0.8, both phases O(n³).
  cfg.base_library = minutes(16);
  cfg.base_general = minutes(4);
  cfg.epochs = 1000;
  cfg.base_ckpt = seconds(60);
  cfg.base_mtbf = days(1);
  cfg.downtime = seconds(60);
  cfg.library_growth = ScalingLaw::Sqrt;
  cfg.general_growth = ScalingLaw::Sqrt;
  cfg.ckpt_growth = ScalingLaw::Sqrt;
  cfg.mtbf_shrink = ScalingLaw::Sqrt;
  return cfg;
}

WeakScalingConfig figure9_config() {
  WeakScalingConfig cfg = figure8_config();
  // GENERAL phase is O(n²) = O(x) work over x nodes: constant time.
  // α then grows 0.55 → 0.8 → 0.92 → 0.975 across 1k → 1M nodes, matching
  // the labels printed under the x-axis of the published figure.
  cfg.general_growth = ScalingLaw::Constant;
  return cfg;
}

WeakScalingConfig figure10_config() {
  WeakScalingConfig cfg = figure9_config();
  // Buddy / in-memory checkpointing: cost independent of the node count.
  cfg.ckpt_growth = ScalingLaw::Constant;
  return cfg;
}

WeakScalingConfig figure8_literal_config() {
  WeakScalingConfig cfg = figure8_config();
  cfg.base_library = seconds(48);  // epoch = 1 min at 10k nodes
  cfg.base_general = seconds(12);
  cfg.ckpt_growth = ScalingLaw::Linear;  // "scales with total memory"
  cfg.mtbf_shrink = ScalingLaw::Linear;  // "scales with components"
  return cfg;
}

}  // namespace abftc::core

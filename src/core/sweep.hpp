#pragma once
/// \file sweep.hpp
/// Declarative parameter sweeps over ScenarioParams.
///
/// Every figure and ablation of the paper is "evaluate protocols over a
/// parameter grid". A ScenarioSweep names the grid once — a base scenario
/// plus one Axis per swept parameter — and the experiment engine
/// (experiment.hpp) enumerates it. Axes are *index-based*: cell i of an
/// axis holds an exact value computed from the endpoints, never an
/// accumulated `a += step` (which drifts: ten additions of 0.1 do not reach
/// 1.0 in binary floating point). The last cell of a linspace/step axis is
/// the upper endpoint exactly.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/params.hpp"

namespace abftc::core {

/// ScenarioParams fields an Axis can bind to by name. `Custom` axes carry
/// their own setter and can rewrite the whole scenario (e.g. weak-scaling
/// node sweeps that re-derive every parameter from the node count).
enum class AxisField {
  Mtbf,          ///< platform.mtbf (seconds)
  Downtime,      ///< platform.downtime (seconds)
  Nodes,         ///< platform.nodes
  CkptCost,      ///< ckpt.full_cost AND ckpt.full_recovery (the paper's C = R)
  FullCost,      ///< ckpt.full_cost only
  FullRecovery,  ///< ckpt.full_recovery only
  Rho,           ///< ckpt.rho
  Phi,           ///< abft.phi
  Recons,        ///< abft.recons
  Alpha,         ///< epoch.alpha
  EpochDuration, ///< epoch.duration (seconds)
  Epochs,        ///< epochs (rounded to nearest integer)
  Custom,        ///< user setter
};

/// One named sweep dimension: a label, a field binding and the exact grid
/// values, in index order.
struct Axis {
  std::string name;
  AxisField field = AxisField::Custom;
  std::vector<double> grid;
  /// Required iff field == Custom; may replace the whole scenario.
  std::function<void(ScenarioParams&, double)> setter;

  [[nodiscard]] std::size_t size() const noexcept { return grid.size(); }

  /// Explicit value list (kept verbatim).
  [[nodiscard]] static Axis values(std::string name, AxisField field,
                                   std::vector<double> values);
  /// Explicit value list with a custom setter.
  [[nodiscard]] static Axis custom(std::string name,
                                   std::vector<double> values,
                                   std::function<void(ScenarioParams&, double)>
                                       setter);
  /// `count` points from lo to hi inclusive; both endpoints exact.
  [[nodiscard]] static Axis linspace(std::string name, AxisField field,
                                     double lo, double hi, std::size_t count);
  /// `count` log-spaced points from lo to hi inclusive (lo, hi > 0);
  /// both endpoints exact.
  [[nodiscard]] static Axis logspace(std::string name, AxisField field,
                                     double lo, double hi, std::size_t count);
  /// lo, lo+step, ... up to hi (inclusive when (hi-lo)/step is integral,
  /// within half a step of rounding). Index-based: the replacement for the
  /// drift-prone `for (v = lo; v <= hi + 1e-9; v += step)` bench loops.
  [[nodiscard]] static Axis step(std::string name, AxisField field, double lo,
                                 double hi, double step);

  void validate() const;
};

/// Apply one axis value to a scenario.
void apply_axis(const Axis& axis, ScenarioParams& s, double value);

/// Exact index-based grid generators (the value vectors behind the Axis
/// factories, usable directly for custom axes).
[[nodiscard]] std::vector<double> linspace_grid(double lo, double hi,
                                                std::size_t count);
[[nodiscard]] std::vector<double> logspace_grid(double lo, double hi,
                                                std::size_t count);
[[nodiscard]] std::vector<double> step_grid(double lo, double hi, double step);

/// How multiple axes combine into grid cells.
enum class Combine {
  Cartesian,  ///< all index tuples; last axis fastest (row-major)
  Zip,        ///< axes advance together; all must have equal size
};

/// A declarative scenario grid: base scenario + axes + combination rule.
struct ScenarioSweep {
  ScenarioParams base;
  std::vector<Axis> axes;
  Combine combine = Combine::Cartesian;

  /// Number of grid cells (product of axis sizes, or the common size when
  /// zipped; 1 when there are no axes — the base scenario alone).
  [[nodiscard]] std::size_t cells() const;
  /// Per-axis indices of a cell (row-major for Cartesian).
  [[nodiscard]] std::vector<std::size_t> coords(std::size_t cell) const;
  /// Per-axis values of a cell.
  [[nodiscard]] std::vector<double> values_at(std::size_t cell) const;
  /// Base scenario with every axis value of the cell applied, validated.
  [[nodiscard]] ScenarioParams scenario(std::size_t cell) const;

  void validate() const;
};

}  // namespace abftc::core

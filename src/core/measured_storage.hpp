#pragma once
/// \file measured_storage.hpp
/// The `--storage=` bridge between figure drivers and checkpoint storage:
/// a spec string resolves to a ckpt::StorageModel, either analytically
/// (named Section V-C hypotheses with a given bandwidth) or *measured* (a
/// real ckpt::io backend is constructed, benchmarked by the calibrator, and
/// the fitted model returned).
///
///   pfs:GBps[,latency_s]      remote parallel FS (aggregate-bound, Fig 8–9)
///   buddy:GBps[,latency_s]    partner-node store (per-node link, Fig 10)
///   nvram:GBps[,latency_s]    node-local NVRAM
///   memory                    calibrated MemoryBackend (RAM speed)
///   file:DIR[?direct=1]       calibrated FileBackend on DIR
///   mmap:PATH[?mb=N]          calibrated MmapBackend arena at PATH
///
/// Schemes live in a process-global registry so a new backend (io_uring,
/// sharded manifests, ...) plugs into every driver by registering itself.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "ckpt/storage.hpp"

namespace abftc::common {
class ArgParser;  // defined in common/cli.hpp
}

namespace abftc::core {

/// Process-global scheme → resolver registry. The factory receives the full
/// spec (scheme included) and returns the resolved model.
class StorageResolver {
 public:
  using Factory = std::function<ckpt::StorageModel(std::string_view spec)>;

  static StorageResolver& instance();

  /// Register (or replace) a scheme.
  void add(std::string scheme, Factory factory);
  /// Resolve a spec; throws common::precondition_error for unknown schemes,
  /// naming the registered ones.
  [[nodiscard]] ckpt::StorageModel resolve(std::string_view spec) const;
  [[nodiscard]] std::vector<std::string> schemes() const;

 private:
  StorageResolver();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// Shared driver idiom for the `--storage=SPEC` flag: nullopt when absent,
/// else the resolved (possibly calibrated) model. Reads the flag, so call
/// before ArgParser::unknown()/warn_unknown().
[[nodiscard]] std::optional<ckpt::StorageModel> storage_model_from_args(
    const common::ArgParser& args);

}  // namespace abftc::core

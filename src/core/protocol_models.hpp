#pragma once
/// \file protocol_models.hpp
/// Analytical waste models of the three protocols the paper compares
/// (Sections IV-B and IV-C):
///
///  * PurePeriodicCkpt  — coordinated periodic checkpointing of the whole
///    memory (cost C) with one period across the whole execution (Fig. 5).
///  * BiPeriodicCkpt    — incremental-checkpoint-aware variant: LIBRARY
///    phases checkpoint only the library dataset (cost C_L) with their own
///    optimal period (Eq. 13/14; Fig. 6).
///  * AbftPeriodicCkpt  — the composite protocol: periodic checkpointing in
///    GENERAL phases, ABFT in LIBRARY phases, forced partial checkpoints
///    (entry C_L̄ / exit C_L) at the phase boundaries (Fig. 2/3/4).

#include <string_view>

#include "core/params.hpp"
#include "core/phase_model.hpp"

namespace abftc::core {

enum class Protocol {
  PurePeriodicCkpt,
  BiPeriodicCkpt,
  AbftPeriodicCkpt,
};

[[nodiscard]] std::string_view to_string(Protocol p) noexcept;

/// Model evaluation knobs.
struct ModelOptions {
  /// §III-B safeguard: ABFT is activated only when the projected protected
  /// library duration φ·T_L reaches the optimal checkpoint interval.
  bool safeguard = true;
  /// Use the exact numeric period optimum instead of Eq. (11)/(14).
  bool exact_period = false;
};

/// Waste prediction for a full scenario under one protocol.
struct ProtocolResult {
  Protocol protocol{};
  double work = 0.0;     ///< useful seconds (epochs × T0)
  double t_ff = 0.0;     ///< fault-free wall-clock
  double t_final = 0.0;  ///< expected wall-clock with failures
  bool diverged = false;
  double period_general = 0.0;  ///< period in GENERAL phases (0: none)
  double period_library = 0.0;  ///< period in LIBRARY phases (0: none)
  bool abft_active = false;     ///< composite only: did ABFT engage?
  /// BiPeriodicCkpt only: phases were too short for per-phase periods, so
  /// the protocol ran one periodic stream across epochs with the averaged
  /// checkpoint cost (see evaluate_bi).
  bool bi_stream = false;
  double stream_ckpt = 0.0;  ///< averaged checkpoint cost when bi_stream
  PhaseOutcome general;         ///< per-epoch GENERAL phase outcome
  PhaseOutcome library;         ///< per-epoch LIBRARY phase outcome

  /// WASTE = 1 − T0 / T_final (Eq. 12).
  [[nodiscard]] double waste() const noexcept {
    if (diverged || t_final <= 0.0) return 1.0;
    return 1.0 - work / t_final;
  }
  /// Expected failure count over the run: T_final / µ.
  [[nodiscard]] double expected_failures(double mtbf) const noexcept {
    return diverged ? 0.0 : t_final / mtbf;
  }
};

[[nodiscard]] ProtocolResult evaluate_pure(const ScenarioParams& s,
                                           const ModelOptions& opt = {});
[[nodiscard]] ProtocolResult evaluate_bi(const ScenarioParams& s,
                                         const ModelOptions& opt = {});
[[nodiscard]] ProtocolResult evaluate_composite(const ScenarioParams& s,
                                                const ModelOptions& opt = {});
[[nodiscard]] ProtocolResult evaluate(Protocol p, const ScenarioParams& s,
                                      const ModelOptions& opt = {});

}  // namespace abftc::core

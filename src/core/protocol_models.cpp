#include "core/protocol_models.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace abftc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::optional<double> pick_period(double ckpt_cost, const ScenarioParams& s,
                                  const ModelOptions& opt) {
  if (ckpt_cost <= 0.0) return std::nullopt;  // checkpoints are free: see below
  return opt.exact_period
             ? optimal_period_exact(ckpt_cost, s.platform.mtbf,
                                    s.platform.downtime, s.ckpt.full_recovery)
             : optimal_period_first_order(ckpt_cost, s.platform.mtbf,
                                          s.platform.downtime,
                                          s.ckpt.full_recovery);
}

ProtocolResult make_diverged(Protocol p, double work) {
  ProtocolResult r;
  r.protocol = p;
  r.work = work;
  r.t_ff = kInf;
  r.t_final = kInf;
  r.diverged = true;
  return r;
}

/// A work stream protected by periodic checkpoints of cost `ckpt`, falling
/// back to a single segment (closed by `tail_ckpt`) when the stream is
/// shorter than one period.
PhaseOutcome protected_stream(double work, std::optional<double> period,
                              double ckpt, double tail_ckpt,
                              const ScenarioParams& s) {
  const double mu = s.platform.mtbf;
  const double d = s.platform.downtime;
  const double r = s.ckpt.full_recovery;
  if (period && work >= *period) {
    return periodic_phase(work, *period, ckpt, r, d, mu);
  }
  return single_segment_phase(work, tail_ckpt, r, d, mu);
}

ProtocolResult finalize(ProtocolResult r, const ScenarioParams& s) {
  const double n = static_cast<double>(s.epochs);
  r.diverged = r.general.diverged || r.library.diverged;
  if (r.diverged) {
    r.t_ff = kInf;
    r.t_final = kInf;
  } else {
    r.t_ff = n * (r.general.t_ff + r.library.t_ff);
    r.t_final = n * (r.general.t_final + r.library.t_final);
  }
  return r;
}

}  // namespace

std::string_view to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::PurePeriodicCkpt:
      return "PurePeriodicCkpt";
    case Protocol::BiPeriodicCkpt:
      return "BiPeriodicCkpt";
    case Protocol::AbftPeriodicCkpt:
      return "ABFT&PeriodicCkpt";
  }
  return "?";
}

ProtocolResult evaluate_pure(const ScenarioParams& s, const ModelOptions& opt) {
  s.validate();
  const double work = s.total_work();
  ProtocolResult r;
  r.protocol = Protocol::PurePeriodicCkpt;
  r.work = work;

  // §IV-C: α treated as 0 — one periodic-checkpoint stream over everything,
  // with the epoch structure invisible to the protocol.
  const auto period = pick_period(s.ckpt.full_cost, s, opt);
  if (!period && s.ckpt.full_cost > 0.0)
    return make_diverged(Protocol::PurePeriodicCkpt, work);
  if (s.ckpt.full_cost <= 0.0) {
    // Degenerate free-checkpoint platform: checkpoint continuously, so a
    // failure loses only D + R (used by tests as a limit case).
    PhaseOutcome all;
    all.work = work;
    all.t_ff = work;
    all.t_lost = s.platform.downtime + s.ckpt.full_recovery;
    if (all.t_lost >= s.platform.mtbf) {
      all.diverged = true;
      all.t_final = kInf;
    } else {
      all.t_final = all.t_ff / (1.0 - all.t_lost / s.platform.mtbf);
    }
    r.general = all;
    r.t_ff = all.t_ff;
    r.t_final = all.t_final;
    r.diverged = all.diverged;
    return r;
  }
  r.period_general = r.period_library = *period;
  PhaseOutcome all =
      protected_stream(work, period, s.ckpt.full_cost, 0.0, s);
  r.general = all;  // report the whole stream under "general"
  r.diverged = all.diverged;
  r.t_ff = all.diverged ? kInf : all.t_ff;
  r.t_final = all.diverged ? kInf : all.t_final;
  return r;
}

ProtocolResult evaluate_bi(const ScenarioParams& s, const ModelOptions& opt) {
  s.validate();
  ProtocolResult r;
  r.protocol = Protocol::BiPeriodicCkpt;
  r.work = s.total_work();

  const double tg = s.epoch.general();
  const double tl = s.epoch.library();
  const auto pg = pick_period(s.ckpt.full_cost, s, opt);
  // Eq. (14): the LIBRARY phase uses incremental checkpoints of cost C_L,
  // but recovery still reloads the full dataset (cost R).
  const auto pl = pick_period(s.ckpt.library_cost(), s, opt);

  const bool general_long = tg <= 0.0 || (pg && tg >= *pg);
  const bool library_long = tl <= 0.0 || (pl && tl >= *pl);
  if (general_long && library_long) {
    // Long phases: each phase runs its own optimal period (Eq. 13/14).
    r.period_general = pg.value_or(0.0);
    r.period_library = pl.value_or(0.0);
    if (tg > 0.0)
      r.general = periodic_phase(tg, *pg, s.ckpt.full_cost,
                                 s.ckpt.full_recovery, s.platform.downtime,
                                 s.platform.mtbf);
    if (tl > 0.0)
      r.library = periodic_phase(tl, *pl, s.ckpt.library_cost(),
                                 s.ckpt.full_recovery, s.platform.downtime,
                                 s.platform.mtbf);
    return finalize(r, s);
  }

  // Short phases: the periodic clock runs *across* epochs (Figure 6 shows a
  // continuous execution); a checkpoint falls in a GENERAL phase with
  // probability (1−α) and costs C, in a LIBRARY phase with probability α
  // and costs only C_L — so the stream behaves like PurePeriodicCkpt with
  // the averaged checkpoint cost. Recovery always reloads everything (R).
  const double avg_ckpt = (1.0 - s.epoch.alpha) * s.ckpt.full_cost +
                          s.epoch.alpha * s.ckpt.library_cost();
  const auto pavg = pick_period(avg_ckpt, s, opt);
  if (!pavg && avg_ckpt > 0.0)
    return make_diverged(Protocol::BiPeriodicCkpt, r.work);
  r.bi_stream = true;
  r.stream_ckpt = avg_ckpt;
  r.period_general = r.period_library = pavg.value_or(0.0);
  PhaseOutcome all = protected_stream(r.work, pavg, avg_ckpt, 0.0, s);
  r.general = all;
  r.diverged = all.diverged;
  r.t_ff = all.diverged ? kInf : all.t_ff;
  r.t_final = all.diverged ? kInf : all.t_final;
  return r;
}

ProtocolResult evaluate_composite(const ScenarioParams& s,
                                  const ModelOptions& opt) {
  s.validate();
  ProtocolResult r;
  r.protocol = Protocol::AbftPeriodicCkpt;
  r.work = s.total_work();

  const double tg = s.epoch.general();
  const double tl = s.epoch.library();
  const double mu = s.platform.mtbf;
  const double d = s.platform.downtime;
  const auto pg = pick_period(s.ckpt.full_cost, s, opt);
  r.period_general = pg.value_or(0.0);

  // §III-B safeguard: engage ABFT only when the projected ABFT-protected
  // library duration reaches the optimal checkpointing interval. When the
  // periodic approach cannot progress at all (no valid period), ABFT is
  // always engaged. If the safeguard keeps ABFT off, "the algorithm
  // automatically resorts to the BiPeriodicCkpt protocol" (Section V-C).
  bool abft_on = tl > 0.0;
  if (opt.safeguard && abft_on && pg)
    abft_on = s.abft.phi * tl >= *pg;
  if (tl > 0.0 && !abft_on) {
    r = evaluate_bi(s, opt);
    r.protocol = Protocol::AbftPeriodicCkpt;
    r.abft_active = false;
    return r;
  }
  r.abft_active = abft_on;

  // GENERAL phase (§IV-B1): periodic when T_G >= P_G (the last periodic
  // checkpoint subsumes the entry partial checkpoint); otherwise a single
  // segment closed by the forced entry checkpoint C_L̄.
  if (pg && tg >= *pg) {
    r.general = periodic_phase(tg, *pg, s.ckpt.full_cost,
                               s.ckpt.full_recovery, d, mu);
  } else {
    // When ABFT is off there is no mode switch, so close with a full C
    // (same convention as BiPeriodicCkpt); with ABFT on, C_L̄ suffices.
    const double tail = abft_on ? s.ckpt.remainder_cost() : s.ckpt.full_cost;
    r.general = single_segment_phase(tg, tail, s.ckpt.full_recovery, d, mu);
  }

  if (tl > 0.0) {
    r.library = abft_phase(tl, s.abft.phi, s.ckpt.library_cost(),
                           s.ckpt.remainder_recovery(), s.abft.recons, d, mu);
    r.period_library = 0.0;
  }
  return finalize(r, s);
}

ProtocolResult evaluate(Protocol p, const ScenarioParams& s,
                        const ModelOptions& opt) {
  switch (p) {
    case Protocol::PurePeriodicCkpt:
      return evaluate_pure(s, opt);
    case Protocol::BiPeriodicCkpt:
      return evaluate_bi(s, opt);
    case Protocol::AbftPeriodicCkpt:
      return evaluate_composite(s, opt);
  }
  ABFTC_CHECK(false, "unknown protocol");
}

}  // namespace abftc::core

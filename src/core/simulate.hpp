#pragma once
/// \file simulate.hpp
/// Discrete-event simulation of the three protocols (Section V-A).
///
/// A ProtocolPlan freezes every decision the protocol makes up front
/// (periods, periodic-vs-segment per phase, ABFT engagement), derived from
/// the same logic the analytical model uses — so simulator and model always
/// describe the same protocol instance and Figure 7's
/// WASTE_simul − WASTE_model comparison is meaningful.

#include <cstdint>

#include "core/protocol_models.hpp"
#include "sim/failures.hpp"
#include "sim/segments.hpp"

namespace abftc::core {

/// The concrete execution plan of one protocol on one scenario.
struct ProtocolPlan {
  Protocol protocol{};
  bool valid = true;  ///< false: the protocol has no feasible period (µ too small)

  bool general_periodic = false;  ///< GENERAL phase periodic vs single segment
  double period_general = 0.0;
  double general_tail = 0.0;  ///< checkpoint closing the GENERAL phase

  bool abft_active = false;       ///< LIBRARY phase under ABFT?
  bool library_periodic = false;  ///< (when !abft_active)
  double period_library = 0.0;
  double library_tail = 0.0;  ///< checkpoint closing the LIBRARY phase

  /// BiPeriodicCkpt short-phase mode: one periodic stream across epochs
  /// with the averaged checkpoint cost (see evaluate_bi).
  bool bi_stream = false;
  double stream_ckpt = 0.0;
};

/// Derive the plan for a protocol on a scenario (mirrors the model's
/// decision logic; asserted equivalent by tests).
[[nodiscard]] ProtocolPlan make_plan(Protocol p, const ScenarioParams& s,
                                     const ModelOptions& opt = {});

/// Result of one simulated execution.
struct SimResult {
  double work = 0.0;     ///< useful seconds the application required
  double t_final = 0.0;  ///< simulated makespan
  std::size_t failures = 0;
  sim::TimeBreakdown breakdown;

  [[nodiscard]] double waste() const noexcept {
    return t_final > 0.0 ? 1.0 - work / t_final : 0.0;
  }
};

/// Simulate one execution of the scenario under the plan, drawing failures
/// from `clock`. Throws abftc::common::invariant_error if the plan is
/// invalid or the failure budget is exhausted (diverged regime).
[[nodiscard]] SimResult simulate_run(const ScenarioParams& s,
                                     const ProtocolPlan& plan,
                                     sim::FailureClock& clock);

/// Convenience: simulate with an Exponential(µ) aggregate failure clock
/// seeded deterministically.
[[nodiscard]] SimResult simulate_run(const ScenarioParams& s,
                                     const ProtocolPlan& plan,
                                     std::uint64_t seed);

}  // namespace abftc::core

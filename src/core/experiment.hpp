#pragma once
/// \file experiment.hpp
/// The unified experiment engine: evaluate {analytical model, Monte-Carlo
/// simulator, future evaluators} × {protocols} over a declarative
/// ScenarioSweep, in parallel, streaming rows into pluggable ResultSinks.
///
/// One experiment is a grid of cells (from sweep.hpp) crossed with a list
/// of Series — (protocol, evaluator, options) triples. `Experiment::run()`
/// executes the cells on common::parallel_for and returns every cell's
/// EvalResult in deterministic grid order; results are bitwise identical
/// for any thread count because randomness lives in per-replicate
/// Rng::split streams inside the evaluators, never in the scheduling.
///
/// Evaluators are looked up by name in a process-global registry
/// ("model", "sim" built in), so a new backend — a Weibull-clock variant, a
/// GPU-backed simulator — plugs into every bench binary by registering
/// itself and being named in a Series.

#include <iosfwd>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/monte_carlo.hpp"
#include "core/sweep.hpp"

namespace abftc::common {
class ArgParser;   // defined in common/cli.hpp
class JsonWriter;  // defined in common/json.hpp
}

namespace abftc::core {

/// The uniform outcome of one (cell, series) evaluation. Fields not
/// produced by an evaluator keep their defaults (e.g. waste_stderr is
/// sim-only, periods are model-only).
struct EvalResult {
  bool valid = true;      ///< false: protocol infeasible on this scenario
  bool diverged = false;  ///< model predicts waste = 1 (no feasible period)
  double waste = 1.0;
  double t_final = 0.0;
  double failures = 0.0;  ///< expected (model) / mean (sim) failure count
  double period_general = 0.0;
  double period_library = 0.0;
  bool abft_active = false;
  bool bi_stream = false;
  double waste_stderr = 0.0;  ///< sim: standard error of the waste mean
  double lost = 0.0;          ///< sim: mean lost time per run

  /// Waste quantiles over the Monte-Carlo replicates (sim-only, and only
  /// when the spec opts into quantile emission). NaN = not computed — the
  /// JSON sink renders that as null, which is what the model series show.
  double waste_p50 = std::numeric_limits<double>::quiet_NaN();
  double waste_p95 = std::numeric_limits<double>::quiet_NaN();
  double waste_p99 = std::numeric_limits<double>::quiet_NaN();
  /// Fixed-bin waste histogram over [0, 1], normalized to fractions of the
  /// replicate count; empty when not computed.
  std::vector<double> waste_hist;
};

/// Named metric accessor, for generic renderers and sinks.
enum class Metric {
  Waste,
  TFinal,
  Failures,
  Valid,  ///< 1.0 / 0.0
  PeriodGeneral,
  PeriodLibrary,
  AbftActive,  ///< 1.0 / 0.0
  WasteStderr,
  Lost,
  WasteP50,
  WasteP95,
  WasteP99,
};

[[nodiscard]] double metric_value(const EvalResult& r, Metric m) noexcept;
[[nodiscard]] std::string_view to_string(Metric m) noexcept;

/// Per-evaluation knobs passed to an Evaluator.
struct EvalContext {
  ModelOptions model;
  MonteCarloOptions mc;
  /// Non-zero: compute waste_p50/p95/p99 and a histogram with this many
  /// bins over the replicate sample (sim evaluator; forces
  /// mc.collect_waste_sample). Set by Experiment::run() from
  /// ExperimentSpec::emit_quantiles.
  std::size_t quantile_hist_bins = 0;
};

/// A protocol-evaluation backend. Implementations must be thread-safe:
/// `evaluate` is called concurrently from grid workers.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual EvalResult evaluate(Protocol p,
                                            const ScenarioParams& s,
                                            const EvalContext& ctx) const = 0;
};

/// Process-global evaluator registry. "model" (analytical, Section IV) and
/// "sim" (Monte-Carlo, Section V-A) are pre-registered. Lookups hand out
/// shared ownership so a replaced evaluator stays alive for experiments
/// that already resolved it.
///
/// Concurrency contract (audited for multi-tenant service use): `find`/
/// `at`/`names` may be called from any number of threads at any time — the
/// registry map is mutex-guarded and lookups copy a shared_ptr, so
/// concurrent `Experiment::run` calls (e.g. sweep-service worker threads)
/// never observe a half-registered entry and never race an evaluator's
/// destruction. `add` is *setup-time*: it is itself thread-safe, but an
/// experiment admitted before a replacement keeps evaluating on the
/// evaluator it resolved — two concurrent runs of the same spec across a
/// replacement may therefore use different evaluators. Register every
/// custom evaluator before serving traffic. Evaluator::evaluate must be
/// const-thread-safe (it is called concurrently from grid workers of
/// multiple experiments); the built-ins are stateless.
class EvaluatorRegistry {
 public:
  static EvaluatorRegistry& instance();

  /// Register under e->name(); replaces an existing evaluator of that name.
  void add(std::unique_ptr<Evaluator> e);
  /// nullptr when no evaluator of that name exists.
  [[nodiscard]] std::shared_ptr<const Evaluator> find(
      std::string_view name) const;
  /// find() that throws a precondition_error naming the known evaluators.
  [[nodiscard]] std::shared_ptr<const Evaluator> at(
      std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  EvaluatorRegistry();
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// One result column group: a protocol evaluated by a named evaluator
/// under fixed options. `label` prefixes the sink columns
/// ("model_pure.waste", ...).
struct Series {
  std::string label;
  Protocol protocol{};
  std::string evaluator;  ///< registry name: "model", "sim", ...
  ModelOptions model{};
  MonteCarloOptions mc{};
};

/// Short stable key for a protocol: "pure", "bi", "abft".
[[nodiscard]] std::string_view protocol_key(Protocol p) noexcept;

/// The paper's three protocols in canonical order (Pure, Bi, ABFT&) — the
/// default protocol set of every figure and ablation.
[[nodiscard]] const std::vector<Protocol>& all_protocols() noexcept;

/// The usual cross product: one Series per (evaluator, protocol), labelled
/// "<evaluator>_<protocol_key>", in evaluator-major order.
[[nodiscard]] std::vector<Series> cross_series(
    const std::vector<Protocol>& protocols,
    const std::vector<std::string>& evaluators, const ModelOptions& model = {},
    const MonteCarloOptions& mc = {});

/// A full experiment: grid × series.
struct ExperimentSpec {
  std::string name;  ///< artifact key, e.g. "fig7" -> BENCH_fig7.json
  ScenarioSweep sweep;
  std::vector<Series> series;
  unsigned threads = 0;  ///< grid-cell parallelism; 0 = hardware concurrency
  /// Emit the resolved worker count as a "threads" key in JSON sink
  /// metadata. Off by default so BENCH_*.json artifacts stay byte-identical
  /// across worker counts (and to their pre-executor shape).
  bool emit_thread_meta = false;
  /// Opt-in tail metrics: append waste_p50/p95/p99 and a fixed-bin waste
  /// histogram (quantile_hist_bins columns, fractions of replicates in
  /// [b/bins, (b+1)/bins)) per series to every sink row, computed over the
  /// Monte-Carlo replicate sample. Off by default so existing BENCH_*.json
  /// artifacts stay byte-identical; model series emit null (no sample).
  bool emit_quantiles = false;
  std::size_t quantile_hist_bins = 8;

  void validate() const;
};

/// One evaluated grid cell.
struct CellRecord {
  std::size_t index = 0;             ///< grid order (sweep row-major)
  std::vector<double> axis_values;   ///< aligned with sweep.axes
  std::vector<EvalResult> series;    ///< aligned with spec.series
};

/// Everything a renderer needs: the sweep (axis names/grids, scenarios) and
/// the cells in deterministic grid order.
struct ExperimentResult {
  std::string name;
  ScenarioSweep sweep;
  std::vector<std::string> series_labels;
  std::vector<CellRecord> cells;
  /// Grid workers `spec.threads` resolved to (cached hardware concurrency
  /// for 0). Metadata only — cells are identical for any worker count.
  unsigned resolved_threads = 0;

  [[nodiscard]] std::size_t series_index(std::string_view label) const;
  /// Metric of one series across all cells, in grid order.
  [[nodiscard]] std::vector<double> column(std::size_t series,
                                           Metric m) const;
  /// 2-axis cartesian sweeps: values[axis0_index][axis1_index].
  [[nodiscard]] std::vector<std::vector<double>> grid(std::size_t series,
                                                      Metric m) const;
};

/// Column layout shared by all sinks: axis columns first, then
/// `<series_label>.<metric>` for every series × kSinkMetrics.
struct SinkHeader {
  std::string experiment;
  std::vector<std::string> columns;
  std::size_t axis_count = 0;
  /// Resolved grid worker count; 0 = omit from sink metadata (the default:
  /// set only when ExperimentSpec::emit_thread_meta is on).
  unsigned resolved_threads = 0;
};

/// The metrics every sink row carries per series.
inline constexpr Metric kSinkMetrics[] = {Metric::Waste, Metric::TFinal,
                                          Metric::Failures, Metric::Valid};

/// Resolve every `spec.series[i].evaluator` from the registry, in series
/// order. Shared ownership keeps the evaluators alive even if a registry
/// entry is replaced mid-run. Throws precondition_error on unknown names.
[[nodiscard]] std::vector<std::shared_ptr<const Evaluator>> resolve_evaluators(
    const ExperimentSpec& spec);

/// The per-evaluator thread budget Experiment::run grants each cell: 1 when
/// the grid has at least as many cells as workers, else the leftover
/// workers split across cells. Determinism never depends on it (randomness
/// is per-replicate Rng::split) — it only bounds nested parallelism.
[[nodiscard]] unsigned inner_thread_budget(std::size_t n_cells,
                                           unsigned workers) noexcept;

/// Evaluate one grid cell — the engine's per-cell loop body, exposed so
/// external schedulers (the sweep service batching cells of *several*
/// experiments into one work-stealing loop) produce bitwise-identical
/// records. `evaluators` must be resolve_evaluators(spec);
/// `inner_threads` is the evaluator thread budget (0 = keep the series'
/// own request).
[[nodiscard]] CellRecord evaluate_cell(
    const ExperimentSpec& spec,
    const std::vector<std::shared_ptr<const Evaluator>>& evaluators,
    std::size_t cell, unsigned inner_threads);

/// Flatten one evaluated cell into the sink row for header_for(spec): axis
/// values first, then kSinkMetrics (and quantile/histogram columns when the
/// spec opts in) per series. The single row-assembly used by
/// Experiment::run and the sweep service — identical values by
/// construction.
[[nodiscard]] std::vector<double> sink_row_values(const ExperimentSpec& spec,
                                                  const CellRecord& cell);

/// Streaming consumer of experiment rows. begin/row*/end are called on the
/// driving thread, in grid order, after all cells have been computed.
/// (The sweep service instead calls them *while* cells complete — still
/// serialized per sink and still in grid order, which is all
/// implementations may assume.)
class ResultSink {
 public:
  virtual ~ResultSink() = default;
  virtual void begin(const SinkHeader& header) = 0;
  virtual void row(const SinkHeader& header,
                   const std::vector<double>& values) = 0;
  virtual void end(const SinkHeader& header) = 0;
};

/// Pretty right-aligned table on an ostream (common::Table).
class TableSink : public ResultSink {
 public:
  explicit TableSink(std::ostream& os, int precision = 5);
  void begin(const SinkHeader& header) override;
  void row(const SinkHeader& header,
           const std::vector<double>& values) override;
  void end(const SinkHeader& header) override;

 private:
  std::ostream& os_;
  int precision_;
  std::vector<std::vector<std::string>> rows_;
};

/// RFC-4180-ish CSV with full-precision (round-trip) numbers.
class CsvSink : public ResultSink {
 public:
  explicit CsvSink(std::ostream& os);
  void begin(const SinkHeader& header) override;
  void row(const SinkHeader& header,
           const std::vector<double>& values) override;
  void end(const SinkHeader& header) override;

  /// Opt-in streaming mode: flush the ostream after the header and after
  /// every row() so live consumers (service clients tailing a socket or a
  /// drop-directory file) see each result as it lands. Off by default —
  /// buffered emission and the emitted bytes are unchanged either way.
  void set_row_flush(bool enabled) noexcept { row_flush_ = enabled; }

 private:
  std::ostream& os_;
  bool row_flush_ = false;
};

/// BENCH_*.json-compatible artifact:
///   {"bench": <name>, "axes": [...], "columns": [...],
///    "results": [{"<col>": <num>, ...}, ...]}
/// Non-finite values are emitted as null.
class JsonSink : public ResultSink {
 public:
  explicit JsonSink(std::ostream& os);
  /// Convenience: open `path` for writing (throws precondition_error on
  /// failure) and emit there.
  explicit JsonSink(const std::string& path);
  ~JsonSink() override;

  void begin(const SinkHeader& header) override;
  void row(const SinkHeader& header,
           const std::vector<double>& values) override;
  void end(const SinkHeader& header) override;

  /// Opt-in streaming mode: flush the ostream after begin() and after every
  /// row() (see CsvSink::set_row_flush). The JSON bytes are identical to
  /// the buffered default.
  void set_row_flush(bool enabled) noexcept { row_flush_ = enabled; }

 private:
  struct FileState;
  std::unique_ptr<FileState> file_;  ///< set when constructed from a path
  std::ostream* os_;
  std::unique_ptr<common::JsonWriter> json_;
  bool row_flush_ = false;
};

/// Shared driver idiom for the `--json[=PATH]` flag: nullptr when the flag
/// is absent, else a JsonSink on PATH (or `BENCH_<bench_name>.json` when
/// the flag is bare). Reads the flag, so call before ArgParser::unknown().
[[nodiscard]] std::unique_ptr<JsonSink> json_sink_from_args(
    const common::ArgParser& args, std::string_view bench_name);

/// Shared driver idiom for the `--threads=N` flag: grid-cell parallelism
/// for ExperimentSpec::threads. 0 (the default) = hardware concurrency.
/// Reads the flag, so call before ArgParser::unknown()/warn_unknown().
[[nodiscard]] unsigned threads_from_args(const common::ArgParser& args);

/// Shared driver idiom for the `--seed=N` flag: the root of every random
/// stream a driver touches (Monte-Carlo replicates, campaign fault sites).
/// The default is the MonteCarloOptions default seed, so omitting the flag
/// reproduces the canonical artifacts; re-running with the same --seed
/// replays the identical fault/replicate sequence.
[[nodiscard]] std::uint64_t seed_from_args(
    const common::ArgParser& args, std::uint64_t def = 0xABF7C0DEULL);

/// Run a declarative experiment: every sweep cell × every series, in
/// parallel over cells, then stream rows to the attached sinks.
class Experiment {
 public:
  explicit Experiment(ExperimentSpec spec);

  /// Attach a sink (non-owning; must outlive run()).
  Experiment& add_sink(ResultSink& sink);

  [[nodiscard]] const ExperimentSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] static SinkHeader header_for(const ExperimentSpec& spec);

  /// Execute. Deterministic: the returned cells (and sink rows) are
  /// identical for any `spec.threads`.
  [[nodiscard]] ExperimentResult run() const;

 private:
  ExperimentSpec spec_;
  std::vector<ResultSink*> sinks_;
};

}  // namespace abftc::core

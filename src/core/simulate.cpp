#include "core/simulate.hpp"

#include <memory>

#include "common/error.hpp"

namespace abftc::core {

using sim::run_abft_phase;
using sim::run_periodic_stream;
using sim::run_segment;
using sim::SimState;

ProtocolPlan make_plan(Protocol p, const ScenarioParams& s,
                       const ModelOptions& opt) {
  s.validate();
  // The model already encodes all plan decisions; reuse it verbatim so the
  // simulator can never drift from the model's protocol definition.
  const ProtocolResult m = evaluate(p, s, opt);
  ProtocolPlan plan;
  plan.protocol = p;

  const double tg = s.epoch.general();
  const double tl = s.epoch.library();

  switch (p) {
    case Protocol::PurePeriodicCkpt: {
      plan.valid = !(m.diverged && m.period_general == 0.0);
      plan.general_periodic = m.period_general > 0.0 &&
                              s.total_work() >= m.period_general;
      plan.period_general = m.period_general;
      plan.general_tail = 0.0;  // nothing to save after the last result
      plan.abft_active = false;
      break;
    }
    case Protocol::BiPeriodicCkpt: {
      plan.valid = !m.diverged;
      plan.bi_stream = m.bi_stream;
      plan.stream_ckpt = m.stream_ckpt;
      plan.general_periodic = m.period_general > 0.0 && tg >= m.period_general;
      plan.period_general = m.period_general;
      plan.general_tail = s.ckpt.full_cost;
      plan.abft_active = false;
      plan.library_periodic = m.period_library > 0.0 && tl >= m.period_library;
      plan.period_library = m.period_library;
      plan.library_tail = s.ckpt.library_cost();
      break;
    }
    case Protocol::AbftPeriodicCkpt: {
      if (!m.abft_active && tl > 0.0) {
        // Safeguard fallback: the composite executes as BiPeriodicCkpt.
        plan = make_plan(Protocol::BiPeriodicCkpt, s, opt);
        plan.protocol = Protocol::AbftPeriodicCkpt;
        break;
      }
      plan.valid = !m.diverged || m.abft_active;
      plan.general_periodic = m.period_general > 0.0 && tg >= m.period_general;
      plan.period_general = m.period_general;
      plan.abft_active = m.abft_active;
      plan.general_tail =
          m.abft_active ? s.ckpt.remainder_cost() : s.ckpt.full_cost;
      plan.library_tail = s.ckpt.library_cost();
      break;
    }
  }
  return plan;
}

SimResult simulate_run(const ScenarioParams& s, const ProtocolPlan& plan,
                       sim::FailureClock& clock) {
  s.validate();
  ABFTC_REQUIRE(plan.valid,
                "cannot simulate an infeasible plan (no valid period)");
  const double d = s.platform.downtime;
  const double r_full = s.ckpt.full_recovery;

  SimState st;
  st.clock = &clock;

  if (plan.protocol == Protocol::PurePeriodicCkpt) {
    // One uniform stream; the epoch structure is invisible (§IV-C).
    const double work = s.total_work();
    if (plan.general_periodic) {
      run_periodic_stream(st, work, plan.period_general, s.ckpt.full_cost,
                          plan.general_tail, r_full, d);
    } else {
      run_segment(st, work, plan.general_tail, r_full, d);
    }
  } else if (plan.bi_stream) {
    // Short phases: one periodic stream across epochs with the averaged
    // checkpoint cost (matches evaluate_bi's stream mode).
    run_periodic_stream(st, s.total_work(), plan.period_general,
                        plan.stream_ckpt, 0.0, r_full, d);
  } else {
    const double tg = s.epoch.general();
    const double tl = s.epoch.library();
    for (std::size_t e = 0; e < s.epochs; ++e) {
      // GENERAL phase.
      if (tg > 0.0 || plan.protocol == Protocol::AbftPeriodicCkpt) {
        if (plan.general_periodic) {
          run_periodic_stream(st, tg, plan.period_general, s.ckpt.full_cost,
                              plan.general_tail, r_full, d);
        } else {
          // Includes the forced entry checkpoint (C_L̄ under ABFT, C else);
          // with tg == 0 this degenerates to just the checkpoint.
          run_segment(st, tg, plan.general_tail, r_full, d);
        }
      }
      // LIBRARY phase.
      if (tl > 0.0) {
        if (plan.abft_active) {
          run_abft_phase(st, tl, s.abft.phi, plan.library_tail,
                         s.ckpt.remainder_recovery(), s.abft.recons, d);
        } else if (plan.library_periodic) {
          run_periodic_stream(st, tl, plan.period_library,
                              s.ckpt.library_cost(), plan.library_tail, r_full,
                              d);
        } else {
          run_segment(st, tl, plan.library_tail, r_full, d);
        }
      }
    }
  }

  SimResult out;
  out.work = s.total_work();
  out.t_final = st.now;
  out.failures = st.failures;
  out.breakdown = st.acc;
  return out;
}

SimResult simulate_run(const ScenarioParams& s, const ProtocolPlan& plan,
                       std::uint64_t seed) {
  sim::AggregateFailureClock clock(
      std::make_unique<sim::ExponentialArrivals>(s.platform.mtbf),
      common::Rng(seed));
  return simulate_run(s, plan, clock);
}

}  // namespace abftc::core

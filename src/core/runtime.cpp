#include "core/runtime.hpp"

#include "common/error.hpp"

namespace abftc::core {

CompositeRuntime::CompositeRuntime(ckpt::MemoryImage& image) : image_(image) {
  ABFTC_REQUIRE(image.region_count() > 0,
                "the runtime needs at least one registered region");
  store_.take_full(image_, now_);
  ++stats_.full_checkpoints;
}

void CompositeRuntime::tick(double dt) {
  ABFTC_REQUIRE(dt >= 0.0, "time cannot go backwards");
  now_ += dt;
}

void CompositeRuntime::scramble_image() {
  // A crash loses the node's memory: overwrite every byte with noise so any
  // missing restore would be caught by the verification in tests.
  for (ckpt::RegionId id = 0; id < image_.region_count(); ++id) {
    auto bytes = image_.mutable_bytes(id);
    for (auto& b : bytes)
      b = static_cast<std::byte>(scramble_rng_() & 0xFF);
  }
}

void CompositeRuntime::run_general_phase(const std::function<void()>& work,
                                         int failures_before_success) {
  ABFTC_REQUIRE(work != nullptr, "general phase needs a work function");
  ABFTC_REQUIRE(failures_before_success >= 0, "failure count must be >= 0");
  for (int attempt = 0;; ++attempt) {
    tick();
    if (attempt < failures_before_success) {
      // The failure strikes mid-phase: partial progress is lost with the
      // memory; roll back to the last complete checkpoint and retry.
      work();
      scramble_image();
      store_.restore_latest(image_);
      ++stats_.rollbacks;
      ++stats_.reexecutions;
      continue;
    }
    work();
    return;
  }
}

void CompositeRuntime::periodic_checkpoint() {
  tick();
  store_.take_full(image_, now_);
  ++stats_.full_checkpoints;
}

void CompositeRuntime::run_library_phase(
    const std::function<void(const std::function<void()>&)>& work) {
  ABFTC_REQUIRE(work != nullptr, "library phase needs a work function");
  tick();
  // Forced partial checkpoint of the REMAINDER dataset at the call boundary.
  const ckpt::CkptId entry = store_.take_entry(image_, now_);
  ++stats_.entry_checkpoints;

  // Figure 2's combined recovery: every time the ABFT kernel reconstructs
  // its dataset from checksums, the runtime reloads the REMAINDER dataset
  // (and the process stack, abstracted here) from the entry checkpoint.
  const auto on_abft_recovery = [this] {
    store_.restore_remainder(image_);
    ++stats_.remainder_restores;
    ++stats_.abft_recoveries;
  };
  work(on_abft_recovery);

  tick();
  // Forced partial checkpoint of the (modified) LIBRARY dataset completes
  // the split coordinated checkpoint.
  store_.take_exit(image_, now_, entry);
  ++stats_.exit_checkpoints;
}

}  // namespace abftc::core

#include "core/phase_model.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace abftc::core {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// The Eq. (4)/(5) fixed point: T_final = T_ff + (T_final/µ)·t_lost.
/// Solves to T_ff / (1 − t_lost/µ); diverges when t_lost >= µ.
PhaseOutcome fixed_point(double work, double t_ff, double t_lost,
                         double mtbf) {
  PhaseOutcome out;
  out.work = work;
  out.t_ff = t_ff;
  out.t_lost = t_lost;
  if (t_lost >= mtbf) {
    out.diverged = true;
    out.t_final = kInf;
  } else {
    out.t_final = t_ff / (1.0 - t_lost / mtbf);
  }
  return out;
}

}  // namespace

PhaseOutcome& PhaseOutcome::operator+=(const PhaseOutcome& o) noexcept {
  work += o.work;
  t_ff += o.t_ff;
  t_final += o.t_final;
  diverged = diverged || o.diverged;
  if (diverged) t_final = kInf;
  return *this;
}

PhaseOutcome periodic_phase(double work, double period, double ckpt_cost,
                            double recovery, double downtime, double mtbf) {
  ABFTC_REQUIRE(work >= 0.0, "work must be non-negative");
  ABFTC_REQUIRE(period > ckpt_cost,
                "period must exceed the checkpoint cost (W = P - C > 0)");
  ABFTC_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  // Eq. (1): T_ff = work / (P − C) · P  (work/(P−C) periods of length P).
  const double t_ff = work / (period - ckpt_cost) * period;
  // Eq. (7): on average half a period of work is lost, plus D + R.
  const double t_lost = downtime + recovery + period / 2.0;
  PhaseOutcome out = fixed_point(work, t_ff, t_lost, mtbf);
  out.period = period;
  return out;
}

PhaseOutcome single_segment_phase(double work, double trailing_ckpt,
                                  double recovery, double downtime,
                                  double mtbf) {
  ABFTC_REQUIRE(work >= 0.0, "work must be non-negative");
  ABFTC_REQUIRE(trailing_ckpt >= 0.0, "checkpoint cost must be non-negative");
  ABFTC_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  // Eq. (9): the whole segment restarts on failure; the expected loss is
  // half the fault-free segment length.
  const double t_ff = work + trailing_ckpt;
  const double t_lost = downtime + recovery + t_ff / 2.0;
  return fixed_point(work, t_ff, t_lost, mtbf);
}

PhaseOutcome abft_phase(double library_work, double phi, double exit_ckpt,
                        double remainder_recovery, double recons,
                        double downtime, double mtbf) {
  ABFTC_REQUIRE(library_work >= 0.0, "work must be non-negative");
  ABFTC_REQUIRE(phi >= 1.0, "phi must be >= 1");
  ABFTC_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  // Eq. (2): T_ff = φ·T_L + C_L.  Eq. (8): t_lost = D + R_L̄ + Recons —
  // ABFT recovery loses no computed work.
  const double t_ff = phi * library_work + exit_ckpt;
  const double t_lost = downtime + remainder_recovery + recons;
  return fixed_point(library_work, t_ff, t_lost, mtbf);
}

std::optional<double> optimal_period_first_order(double ckpt_cost, double mtbf,
                                                 double downtime,
                                                 double recovery) {
  ABFTC_REQUIRE(ckpt_cost >= 0.0, "checkpoint cost must be non-negative");
  ABFTC_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  const double slack = mtbf - downtime - recovery;
  if (slack <= 0.0) return std::nullopt;
  // Eq. (11): P_opt = sqrt(2C(µ − D − R)); clamp above C so W > 0.
  const double p = std::sqrt(2.0 * ckpt_cost * slack);
  const double min_p = ckpt_cost * (1.0 + 1e-9) + 1e-12;
  return std::max(p, min_p);
}

std::optional<double> optimal_period_exact(double ckpt_cost, double mtbf,
                                           double downtime, double recovery) {
  ABFTC_REQUIRE(ckpt_cost >= 0.0, "checkpoint cost must be non-negative");
  ABFTC_REQUIRE(mtbf > 0.0, "MTBF must be positive");
  const double slack = mtbf - downtime - recovery;
  if (slack <= 0.0) return std::nullopt;

  // Cost per unit of work, to be minimized over P (from Eq. 10):
  //   f(P) = [P / (P − C)] · [1 / (1 − (D + R + P/2)/µ)]
  // valid for C < P < 2(µ − D − R). f is unimodal on that interval.
  auto cost = [&](double p) {
    const double t_lost = downtime + recovery + p / 2.0;
    if (t_lost >= mtbf) return kInf;
    if (p <= ckpt_cost) return kInf;
    return (p / (p - ckpt_cost)) / (1.0 - t_lost / mtbf);
  };

  double lo = ckpt_cost * (1.0 + 1e-9) + 1e-12;
  double hi = 2.0 * slack * (1.0 - 1e-12);
  if (hi <= lo) return std::nullopt;

  constexpr double golden = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - golden * (b - a);
  double x2 = a + golden * (b - a);
  double f1 = cost(x1), f2 = cost(x2);
  for (int it = 0; it < 200 && (b - a) > 1e-10 * (1.0 + b); ++it) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - golden * (b - a);
      f1 = cost(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + golden * (b - a);
      f2 = cost(x2);
    }
  }
  const double p = 0.5 * (a + b);
  if (!std::isfinite(cost(p))) return std::nullopt;
  return p;
}

}  // namespace abftc::core

#include "core/sweep.hpp"

#include <cmath>

#include "common/error.hpp"

namespace abftc::core {

Axis Axis::values(std::string name, AxisField field,
                  std::vector<double> values) {
  Axis a{std::move(name), field, std::move(values), nullptr};
  a.validate();
  return a;
}

Axis Axis::custom(std::string name, std::vector<double> values,
                  std::function<void(ScenarioParams&, double)> setter) {
  Axis a{std::move(name), AxisField::Custom, std::move(values),
         std::move(setter)};
  a.validate();
  return a;
}

std::vector<double> linspace_grid(double lo, double hi, std::size_t count) {
  ABFTC_REQUIRE(count >= 2, "linspace axis needs at least two points");
  std::vector<double> grid(count);
  // Interpolate on the index so both endpoints are exact: i/(count-1) is
  // exactly 0 at i=0 and exactly 1 at i=count-1.
  const double n = static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    grid[i] = lo + (hi - lo) * (static_cast<double>(i) / n);
  grid.front() = lo;
  grid.back() = hi;
  return grid;
}

std::vector<double> logspace_grid(double lo, double hi, std::size_t count) {
  ABFTC_REQUIRE(lo > 0.0 && hi > 0.0, "logspace endpoints must be positive");
  ABFTC_REQUIRE(count >= 2, "logspace axis needs at least two points");
  std::vector<double> grid(count);
  const double llo = std::log(lo), lhi = std::log(hi);
  const double n = static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    grid[i] = std::exp(llo + (lhi - llo) * (static_cast<double>(i) / n));
  grid.front() = lo;
  grid.back() = hi;
  return grid;
}

std::vector<double> step_grid(double lo, double hi, double step) {
  ABFTC_REQUIRE(step > 0.0, "step axis needs a positive step");
  ABFTC_REQUIRE(hi >= lo, "step axis needs hi >= lo");
  // Number of steps that fit, tolerant of representation error in
  // (hi-lo)/step (e.g. 1.0/0.1 must count as 10, not 9).
  const auto steps = static_cast<std::size_t>(
      std::floor((hi - lo) / step * (1.0 + 1e-12) + 1e-9));
  if (steps == 0) return {lo};
  // The covered endpoint: hi itself when the range divides evenly.
  const double top = std::fabs(lo + static_cast<double>(steps) * step - hi) <=
                             1e-9 * std::max(std::fabs(hi), step)
                         ? hi
                         : lo + static_cast<double>(steps) * step;
  return linspace_grid(lo, top, steps + 1);
}

Axis Axis::linspace(std::string name, AxisField field, double lo, double hi,
                    std::size_t count) {
  return values(std::move(name), field, linspace_grid(lo, hi, count));
}

Axis Axis::logspace(std::string name, AxisField field, double lo, double hi,
                    std::size_t count) {
  return values(std::move(name), field, logspace_grid(lo, hi, count));
}

Axis Axis::step(std::string name, AxisField field, double lo, double hi,
                double step) {
  return values(std::move(name), field, step_grid(lo, hi, step));
}

void Axis::validate() const {
  ABFTC_REQUIRE(!name.empty(), "axis needs a name");
  ABFTC_REQUIRE(!grid.empty(), "axis '" + name + "' has no values");
  ABFTC_REQUIRE(field != AxisField::Custom || setter != nullptr,
                "custom axis '" + name + "' needs a setter");
}

void apply_axis(const Axis& axis, ScenarioParams& s, double value) {
  switch (axis.field) {
    case AxisField::Mtbf: s.platform.mtbf = value; return;
    case AxisField::Downtime: s.platform.downtime = value; return;
    case AxisField::Nodes:
      s.platform.nodes = static_cast<std::size_t>(std::llround(value));
      return;
    case AxisField::CkptCost:
      s.ckpt.full_cost = value;
      s.ckpt.full_recovery = value;
      return;
    case AxisField::FullCost: s.ckpt.full_cost = value; return;
    case AxisField::FullRecovery: s.ckpt.full_recovery = value; return;
    case AxisField::Rho: s.ckpt.rho = value; return;
    case AxisField::Phi: s.abft.phi = value; return;
    case AxisField::Recons: s.abft.recons = value; return;
    case AxisField::Alpha: s.epoch.alpha = value; return;
    case AxisField::EpochDuration: s.epoch.duration = value; return;
    case AxisField::Epochs:
      s.epochs = static_cast<std::size_t>(std::llround(value));
      return;
    case AxisField::Custom:
      ABFTC_REQUIRE(axis.setter != nullptr,
                    "custom axis '" + axis.name + "' needs a setter");
      axis.setter(s, value);
      return;
  }
  ABFTC_CHECK(false, "unknown axis field");
}

void ScenarioSweep::validate() const {
  for (const auto& axis : axes) axis.validate();
  if (combine == Combine::Zip && !axes.empty()) {
    for (const auto& axis : axes)
      ABFTC_REQUIRE(axis.size() == axes.front().size(),
                    "zipped axes must have equal sizes ('" +
                        axes.front().name + "' has " +
                        std::to_string(axes.front().size()) + ", '" +
                        axis.name + "' has " + std::to_string(axis.size()) +
                        ")");
  }
}

std::size_t ScenarioSweep::cells() const {
  validate();
  if (axes.empty()) return 1;
  if (combine == Combine::Zip) return axes.front().size();
  std::size_t n = 1;
  for (const auto& axis : axes) n *= axis.size();
  return n;
}

std::vector<std::size_t> ScenarioSweep::coords(std::size_t cell) const {
  ABFTC_REQUIRE(cell < cells(), "cell index out of range");
  std::vector<std::size_t> idx(axes.size());
  if (combine == Combine::Zip) {
    for (auto& i : idx) i = cell;
    return idx;
  }
  // Row-major: the last axis varies fastest.
  for (std::size_t a = axes.size(); a-- > 0;) {
    idx[a] = cell % axes[a].size();
    cell /= axes[a].size();
  }
  return idx;
}

std::vector<double> ScenarioSweep::values_at(std::size_t cell) const {
  const auto idx = coords(cell);
  std::vector<double> vals(axes.size());
  for (std::size_t a = 0; a < axes.size(); ++a) vals[a] = axes[a].grid[idx[a]];
  return vals;
}

ScenarioParams ScenarioSweep::scenario(std::size_t cell) const {
  const auto idx = coords(cell);
  ScenarioParams s = base;
  for (std::size_t a = 0; a < axes.size(); ++a)
    apply_axis(axes[a], s, axes[a].grid[idx[a]]);
  s.validate();
  return s;
}

}  // namespace abftc::core

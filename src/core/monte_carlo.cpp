#include "core/monte_carlo.hpp"

#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/executor.hpp"
#include "sim/failures.hpp"

namespace abftc::core {

namespace {

std::unique_ptr<sim::InterArrival> make_distribution(
    const MonteCarloOptions& opt, double mean) {
  switch (opt.distribution) {
    case FailureDistribution::Exponential:
      return std::make_unique<sim::ExponentialArrivals>(mean);
    case FailureDistribution::Weibull:
      return std::make_unique<sim::WeibullArrivals>(
          sim::WeibullArrivals::from_mean(opt.weibull_shape, mean));
    case FailureDistribution::LogNormal:
      return std::make_unique<sim::LogNormalArrivals>(mean, opt.lognormal_cv);
  }
  ABFTC_CHECK(false, "unknown failure distribution");
}

std::unique_ptr<sim::FailureClock> make_clock(const ScenarioParams& s,
                                              const MonteCarloOptions& opt,
                                              common::Rng rng) {
  if (opt.per_node && s.platform.nodes > 1) {
    const double per_node_mtbf =
        s.platform.mtbf * static_cast<double>(s.platform.nodes);
    return std::make_unique<sim::NodeFailureClock>(
        make_distribution(opt, per_node_mtbf), s.platform.nodes, rng);
  }
  return std::make_unique<sim::AggregateFailureClock>(
      make_distribution(opt, s.platform.mtbf), rng);
}

}  // namespace

MonteCarloResult monte_carlo(Protocol p, const ScenarioParams& s,
                             const ModelOptions& model_opt,
                             const MonteCarloOptions& opt) {
  ABFTC_REQUIRE(opt.replicates > 0, "need at least one replicate");
  s.validate();

  MonteCarloResult out;
  const ProtocolPlan plan = make_plan(p, s, model_opt);
  if (!plan.valid) {
    out.plan_valid = false;
    return out;
  }

  const common::Rng base(opt.seed);
  std::mutex merge_mutex;
  // Preallocated disjoint slots: replicate `rep` writes waste_sample[rep]
  // and nothing else, so the stored sample is deterministic regardless of
  // how chunks land on workers (no merge order to get wrong).
  if (opt.collect_waste_sample) out.waste_sample.resize(opt.replicates);

  // Chunk replicates so each worker merges locally before taking the lock.
  const unsigned workers = common::effective_threads(opt.threads);
  const std::size_t chunks = std::max<std::size_t>(workers * 4, 1);
  const std::size_t per_chunk = (opt.replicates + chunks - 1) / chunks;

  common::parallel_for(
      chunks,
      [&](std::size_t chunk) {
        const std::size_t lo = chunk * per_chunk;
        const std::size_t hi = std::min(lo + per_chunk, opt.replicates);
        if (lo >= hi) return;
        MonteCarloResult local;
        for (std::size_t rep = lo; rep < hi; ++rep) {
          auto clock = make_clock(s, opt, base.split(rep));
          const SimResult r = simulate_run(s, plan, *clock);
          local.waste.add(r.waste());
          local.t_final.add(r.t_final);
          local.failures.add(static_cast<double>(r.failures));
          local.lost_time.add(r.breakdown.lost);
          if (opt.collect_waste_sample) out.waste_sample[rep] = r.waste();
        }
        std::lock_guard lock(merge_mutex);
        out.waste.merge(local.waste);
        out.t_final.merge(local.t_final);
        out.failures.merge(local.failures);
        out.lost_time.merge(local.lost_time);
      },
      opt.threads);
  return out;
}

}  // namespace abftc::core

#include "core/experiment.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/executor.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace abftc::core {

// ---- Metrics ---------------------------------------------------------------

double metric_value(const EvalResult& r, Metric m) noexcept {
  switch (m) {
    case Metric::Waste: return r.waste;
    case Metric::TFinal: return r.t_final;
    case Metric::Failures: return r.failures;
    case Metric::Valid: return r.valid ? 1.0 : 0.0;
    case Metric::PeriodGeneral: return r.period_general;
    case Metric::PeriodLibrary: return r.period_library;
    case Metric::AbftActive: return r.abft_active ? 1.0 : 0.0;
    case Metric::WasteStderr: return r.waste_stderr;
    case Metric::Lost: return r.lost;
    case Metric::WasteP50: return r.waste_p50;
    case Metric::WasteP95: return r.waste_p95;
    case Metric::WasteP99: return r.waste_p99;
  }
  return 0.0;
}

std::string_view to_string(Metric m) noexcept {
  switch (m) {
    case Metric::Waste: return "waste";
    case Metric::TFinal: return "t_final";
    case Metric::Failures: return "failures";
    case Metric::Valid: return "valid";
    case Metric::PeriodGeneral: return "period_general";
    case Metric::PeriodLibrary: return "period_library";
    case Metric::AbftActive: return "abft_active";
    case Metric::WasteStderr: return "waste_stderr";
    case Metric::Lost: return "lost";
    case Metric::WasteP50: return "waste_p50";
    case Metric::WasteP95: return "waste_p95";
    case Metric::WasteP99: return "waste_p99";
  }
  return "?";
}

// ---- Built-in evaluators ---------------------------------------------------

namespace {

/// Section IV analytical waste model.
class AnalyticalModel final : public Evaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "model";
  }
  [[nodiscard]] EvalResult evaluate(Protocol p, const ScenarioParams& s,
                                    const EvalContext& ctx) const override {
    const ProtocolResult m = core::evaluate(p, s, ctx.model);
    EvalResult out;
    out.valid = !m.diverged;
    out.diverged = m.diverged;
    out.waste = m.waste();
    out.t_final = m.t_final;
    out.failures = m.expected_failures(s.platform.mtbf);
    out.period_general = m.period_general;
    out.period_library = m.period_library;
    out.abft_active = m.abft_active;
    out.bi_stream = m.bi_stream;
    return out;
  }
};

/// Section V-A replicated discrete-event simulation.
class MonteCarloSim final : public Evaluator {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sim";
  }
  [[nodiscard]] EvalResult evaluate(Protocol p, const ScenarioParams& s,
                                    const EvalContext& ctx) const override {
    MonteCarloOptions mc = ctx.mc;
    if (ctx.quantile_hist_bins > 0) mc.collect_waste_sample = true;
    const MonteCarloResult r = monte_carlo(p, s, ctx.model, mc);
    EvalResult out;
    out.valid = r.plan_valid;
    out.diverged = !r.plan_valid;
    if (r.plan_valid) {
      out.waste = r.waste.mean();
      out.t_final = r.t_final.mean();
      out.failures = r.failures.mean();
      out.waste_stderr = r.waste.stderr_mean();
      out.lost = r.lost_time.mean();
      if (ctx.quantile_hist_bins > 0 && !r.waste_sample.empty()) {
        // The stored sample is replicate-ordered (scheduling-independent);
        // sorted quantiles and bin counts are therefore deterministic for
        // any worker count.
        common::Sample sample;
        sample.reserve(r.waste_sample.size());
        common::Histogram hist(0.0, 1.0, ctx.quantile_hist_bins);
        for (const double w : r.waste_sample) {
          sample.add(w);
          hist.add(w);
        }
        out.waste_p50 = sample.quantile(0.50);
        out.waste_p95 = sample.quantile(0.95);
        out.waste_p99 = sample.quantile(0.99);
        out.waste_hist.reserve(hist.bins());
        const double total = static_cast<double>(r.waste_sample.size());
        for (std::size_t b = 0; b < hist.bins(); ++b)
          out.waste_hist.push_back(
              static_cast<double>(hist.bin_count(b)) / total);
      }
    }
    return out;
  }
};

}  // namespace

// ---- Registry --------------------------------------------------------------

struct EvaluatorRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::shared_ptr<const Evaluator>, std::less<>>
      evaluators;
};

EvaluatorRegistry::EvaluatorRegistry() : impl_(std::make_shared<Impl>()) {}

EvaluatorRegistry& EvaluatorRegistry::instance() {
  static EvaluatorRegistry registry = [] {
    EvaluatorRegistry r;
    r.add(std::make_unique<AnalyticalModel>());
    r.add(std::make_unique<MonteCarloSim>());
    return r;
  }();
  return registry;
}

void EvaluatorRegistry::add(std::unique_ptr<Evaluator> e) {
  ABFTC_REQUIRE(e != nullptr, "cannot register a null evaluator");
  ABFTC_REQUIRE(!e->name().empty(), "evaluator needs a non-empty name");
  std::lock_guard lock(impl_->mutex);
  impl_->evaluators[std::string(e->name())] = std::move(e);
}

std::shared_ptr<const Evaluator> EvaluatorRegistry::find(
    std::string_view name) const {
  std::lock_guard lock(impl_->mutex);
  const auto it = impl_->evaluators.find(name);
  return it == impl_->evaluators.end() ? nullptr : it->second;
}

std::shared_ptr<const Evaluator> EvaluatorRegistry::at(
    std::string_view name) const {
  if (auto e = find(name)) return e;
  std::string known;
  for (const auto& n : names()) known += (known.empty() ? "" : ", ") + n;
  ABFTC_REQUIRE(false, "no evaluator named '" + std::string(name) +
                           "' (registered: " + known + ")");
  throw std::logic_error("unreachable");
}

std::vector<std::string> EvaluatorRegistry::names() const {
  std::lock_guard lock(impl_->mutex);
  std::vector<std::string> out;
  out.reserve(impl_->evaluators.size());
  for (const auto& [name, e] : impl_->evaluators) out.push_back(name);
  return out;
}

// ---- Series helpers --------------------------------------------------------

std::string_view protocol_key(Protocol p) noexcept {
  switch (p) {
    case Protocol::PurePeriodicCkpt: return "pure";
    case Protocol::BiPeriodicCkpt: return "bi";
    case Protocol::AbftPeriodicCkpt: return "abft";
  }
  return "?";
}

const std::vector<Protocol>& all_protocols() noexcept {
  static const std::vector<Protocol> protocols = {
      Protocol::PurePeriodicCkpt, Protocol::BiPeriodicCkpt,
      Protocol::AbftPeriodicCkpt};
  return protocols;
}

std::vector<Series> cross_series(const std::vector<Protocol>& protocols,
                                 const std::vector<std::string>& evaluators,
                                 const ModelOptions& model,
                                 const MonteCarloOptions& mc) {
  std::vector<Series> out;
  out.reserve(protocols.size() * evaluators.size());
  for (const auto& evaluator : evaluators)
    for (const Protocol p : protocols)
      out.push_back({evaluator + "_" + std::string(protocol_key(p)), p,
                     evaluator, model, mc});
  return out;
}

// ---- Spec / result ---------------------------------------------------------

void ExperimentSpec::validate() const {
  ABFTC_REQUIRE(!name.empty(), "experiment needs a name");
  ABFTC_REQUIRE(!series.empty(), "experiment needs at least one series");
  ABFTC_REQUIRE(!emit_quantiles || quantile_hist_bins > 0,
                "quantile emission needs at least one histogram bin");
  sweep.validate();
  for (const auto& s : series) {
    ABFTC_REQUIRE(!s.label.empty(), "series needs a label");
    (void)EvaluatorRegistry::instance().at(s.evaluator);
  }
}

std::size_t ExperimentResult::series_index(std::string_view label) const {
  for (std::size_t i = 0; i < series_labels.size(); ++i)
    if (series_labels[i] == label) return i;
  ABFTC_REQUIRE(false, "no series labelled '" + std::string(label) + "'");
  throw std::logic_error("unreachable");
}

std::vector<double> ExperimentResult::column(std::size_t series,
                                             Metric m) const {
  ABFTC_REQUIRE(series < series_labels.size(), "series index out of range");
  std::vector<double> out;
  out.reserve(cells.size());
  for (const auto& cell : cells)
    out.push_back(metric_value(cell.series[series], m));
  return out;
}

std::vector<std::vector<double>> ExperimentResult::grid(std::size_t series,
                                                        Metric m) const {
  ABFTC_REQUIRE(sweep.axes.size() == 2 && sweep.combine == Combine::Cartesian,
                "grid() needs a 2-axis cartesian sweep");
  const std::size_t n0 = sweep.axes[0].size(), n1 = sweep.axes[1].size();
  const auto flat = column(series, m);
  std::vector<std::vector<double>> out(n0, std::vector<double>(n1));
  for (std::size_t i = 0; i < n0; ++i)
    for (std::size_t j = 0; j < n1; ++j) out[i][j] = flat[i * n1 + j];
  return out;
}

// ---- Sinks -----------------------------------------------------------------

TableSink::TableSink(std::ostream& os, int precision)
    : os_(os), precision_(precision) {}

void TableSink::begin(const SinkHeader&) { rows_.clear(); }

void TableSink::row(const SinkHeader&, const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (const double v : values) cells.push_back(common::fmt(v, precision_));
  rows_.push_back(std::move(cells));
}

void TableSink::end(const SinkHeader& header) {
  common::Table table(header.columns);
  for (auto& r : rows_) table.add_row(std::move(r));
  rows_.clear();
  table.print(os_);
}

CsvSink::CsvSink(std::ostream& os) : os_(os) {}

void CsvSink::begin(const SinkHeader& header) {
  for (std::size_t c = 0; c < header.columns.size(); ++c)
    os_ << (c ? "," : "") << header.columns[c];
  os_ << '\n';
  if (row_flush_) os_.flush();
}

void CsvSink::row(const SinkHeader&, const std::vector<double>& values) {
  for (std::size_t c = 0; c < values.size(); ++c)
    os_ << (c ? "," : "") << common::JsonWriter::number(values[c]);
  os_ << '\n';
  if (row_flush_) os_.flush();
}

void CsvSink::end(const SinkHeader&) {}

struct JsonSink::FileState {
  std::ofstream stream;
};

JsonSink::JsonSink(std::ostream& os) : os_(&os) {}

JsonSink::JsonSink(const std::string& path)
    : file_(std::make_unique<FileState>()) {
  file_->stream.open(path);
  ABFTC_REQUIRE(file_->stream.is_open(),
                "cannot open '" + path + "' for writing");
  os_ = &file_->stream;
}

JsonSink::~JsonSink() = default;

void JsonSink::begin(const SinkHeader& header) {
  json_ = std::make_unique<common::JsonWriter>(*os_);
  json_->begin_object();
  json_->kv("bench", header.experiment);
  if (header.resolved_threads > 0)
    json_->kv("threads", header.resolved_threads);
  json_->key("axes").begin_array();
  for (std::size_t c = 0; c < header.axis_count; ++c)
    json_->value(header.columns[c]);
  json_->end_array();
  json_->key("columns").begin_array();
  for (const auto& col : header.columns) json_->value(col);
  json_->end_array();
  json_->key("results").begin_array();
  if (row_flush_) os_->flush();
}

void JsonSink::row(const SinkHeader& header,
                   const std::vector<double>& values) {
  json_->begin_object();
  for (std::size_t c = 0; c < values.size(); ++c)
    json_->kv(header.columns[c], values[c]);
  json_->end_object();
  if (row_flush_) os_->flush();
}

void JsonSink::end(const SinkHeader&) {
  json_->end_array();
  json_->end_object();
  json_.reset();
  os_->flush();
}

std::unique_ptr<JsonSink> json_sink_from_args(const common::ArgParser& args,
                                              std::string_view bench_name) {
  if (!args.has("json")) return nullptr;
  std::string path = args.get_string("json", "");
  if (path.empty()) path = "BENCH_" + std::string(bench_name) + ".json";
  return std::make_unique<JsonSink>(path);
}

unsigned threads_from_args(const common::ArgParser& args) {
  return static_cast<unsigned>(args.get_int("threads", 0));
}

std::uint64_t seed_from_args(const common::ArgParser& args,
                             std::uint64_t def) {
  return static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(def)));
}

// ---- Engine ----------------------------------------------------------------

std::vector<std::shared_ptr<const Evaluator>> resolve_evaluators(
    const ExperimentSpec& spec) {
  std::vector<std::shared_ptr<const Evaluator>> out;
  out.reserve(spec.series.size());
  for (const auto& s : spec.series)
    out.push_back(EvaluatorRegistry::instance().at(s.evaluator));
  return out;
}

unsigned inner_thread_budget(std::size_t n_cells, unsigned workers) noexcept {
  if (n_cells == 0) return 1;
  return n_cells >= workers
             ? 1
             : std::max(1u, workers / static_cast<unsigned>(n_cells));
}

CellRecord evaluate_cell(
    const ExperimentSpec& spec,
    const std::vector<std::shared_ptr<const Evaluator>>& evaluators,
    std::size_t cell, unsigned inner_threads) {
  CellRecord rec;
  rec.index = cell;
  rec.axis_values = spec.sweep.values_at(cell);
  const ScenarioParams scenario = spec.sweep.scenario(cell);
  rec.series.reserve(spec.series.size());
  for (std::size_t si = 0; si < spec.series.size(); ++si) {
    EvalContext ctx{spec.series[si].model, spec.series[si].mc};
    if (spec.emit_quantiles) ctx.quantile_hist_bins = spec.quantile_hist_bins;
    // 0 means "auto": give the evaluator the leftover thread budget. An
    // explicit Series-level thread count is honoured as-is.
    if (ctx.mc.threads == 0) ctx.mc.threads = inner_threads;
    rec.series.push_back(
        evaluators[si]->evaluate(spec.series[si].protocol, scenario, ctx));
  }
  return rec;
}

std::vector<double> sink_row_values(const ExperimentSpec& spec,
                                    const CellRecord& cell) {
  std::vector<double> values;
  values.reserve(cell.axis_values.size() +
                 cell.series.size() *
                     (std::size(kSinkMetrics) +
                      (spec.emit_quantiles ? 3 + spec.quantile_hist_bins : 0)));
  values.insert(values.end(), cell.axis_values.begin(),
                cell.axis_values.end());
  for (const auto& r : cell.series) {
    for (const Metric m : kSinkMetrics) values.push_back(metric_value(r, m));
    if (spec.emit_quantiles) {
      for (const Metric m :
           {Metric::WasteP50, Metric::WasteP95, Metric::WasteP99})
        values.push_back(metric_value(r, m));
      // Histogram bins; series without a sample (model) pad with NaN,
      // which the JSON sink renders as null like the quantiles.
      for (std::size_t b = 0; b < spec.quantile_hist_bins; ++b)
        values.push_back(b < r.waste_hist.size()
                             ? r.waste_hist[b]
                             : std::numeric_limits<double>::quiet_NaN());
    }
  }
  return values;
}

Experiment::Experiment(ExperimentSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

Experiment& Experiment::add_sink(ResultSink& sink) {
  sinks_.push_back(&sink);
  return *this;
}

SinkHeader Experiment::header_for(const ExperimentSpec& spec) {
  SinkHeader h;
  h.experiment = spec.name;
  h.axis_count = spec.sweep.axes.size();
  if (spec.emit_thread_meta)
    h.resolved_threads = common::effective_threads(spec.threads);
  for (const auto& axis : spec.sweep.axes) h.columns.push_back(axis.name);
  for (const auto& s : spec.series) {
    for (const Metric m : kSinkMetrics)
      h.columns.push_back(s.label + "." + std::string(to_string(m)));
    if (spec.emit_quantiles) {
      for (const Metric m :
           {Metric::WasteP50, Metric::WasteP95, Metric::WasteP99})
        h.columns.push_back(s.label + "." + std::string(to_string(m)));
      for (std::size_t b = 0; b < spec.quantile_hist_bins; ++b)
        h.columns.push_back(s.label + ".waste_hist_" + std::to_string(b));
    }
  }
  return h;
}

ExperimentResult Experiment::run() const {
  const std::size_t n_cells = spec_.sweep.cells();

  // Resolve evaluators once, outside the hot loop; shared ownership keeps
  // them alive even if the registry entry is replaced mid-run.
  const std::vector<std::shared_ptr<const Evaluator>> evaluators =
      resolve_evaluators(spec_);

  // Split the thread budget between the two parallel dimensions: the grid
  // gets the workers, and when there are fewer cells than workers each
  // cell's evaluator may use the leftover for its own replicate loop
  // (determinism is per-replicate Rng::split, so the split is free). On the
  // parallel grid path the executor's bounded-share arbitration enforces
  // the same split dynamically — nested evaluator loops borrow only workers
  // the grid left idle — so the inner budget is an upper bound, never an
  // oversubscription.
  const unsigned workers = common::effective_threads(spec_.threads);
  const unsigned inner_threads = inner_thread_budget(n_cells, workers);

  ExperimentResult result;
  result.name = spec_.name;
  result.resolved_threads = workers;
  result.sweep = spec_.sweep;
  for (const auto& s : spec_.series) result.series_labels.push_back(s.label);
  result.cells.resize(n_cells);

  common::parallel_for(
      n_cells,
      [&](std::size_t cell) {
        result.cells[cell] =
            evaluate_cell(spec_, evaluators, cell, inner_threads);
      },
      spec_.threads);

  if (!sinks_.empty()) {
    const SinkHeader header = header_for(spec_);
    for (ResultSink* sink : sinks_) sink->begin(header);
    for (const auto& cell : result.cells) {
      const std::vector<double> values = sink_row_values(spec_, cell);
      for (ResultSink* sink : sinks_) sink->row(header, values);
    }
    for (ResultSink* sink : sinks_) sink->end(header);
  }
  return result;
}

}  // namespace abftc::core

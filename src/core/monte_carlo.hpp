#pragma once
/// \file monte_carlo.hpp
/// Replicated simulation: "for each scenario, and each parameter, the
/// average termination time over a thousand executions is returned by the
/// simulator" (Section V-A). Replicates own independent random streams
/// (Rng::split), so results are reproducible for any thread count.

#include <cstdint>

#include "common/stats.hpp"
#include "core/simulate.hpp"

namespace abftc::core {

/// Which failure process drives the replicates.
enum class FailureDistribution {
  Exponential,  ///< the paper's choice (memoryless)
  Weibull,      ///< ablation E11; `weibull_shape` below
  LogNormal,    ///< ablation E11; `lognormal_cv` below
};

struct MonteCarloOptions {
  std::size_t replicates = 1000;
  std::uint64_t seed = 0xABF7C0DEULL;
  unsigned threads = 0;  ///< 0: hardware concurrency

  FailureDistribution distribution = FailureDistribution::Exponential;
  double weibull_shape = 0.7;  ///< k < 1: failure bursts (young systems)
  double lognormal_cv = 1.5;

  /// Simulate per-node failure sources instead of one aggregate stream
  /// (equivalent for Exponential; differs for the other distributions).
  bool per_node = false;

  /// Keep every replicate's waste (for quantiles/histograms downstream).
  /// Off by default: the sample is replicates × 8 bytes per evaluation.
  bool collect_waste_sample = false;
};

struct MonteCarloResult {
  common::RunningStats waste;
  common::RunningStats t_final;
  common::RunningStats failures;
  common::RunningStats lost_time;  ///< breakdown.lost per run
  bool plan_valid = true;          ///< false: infeasible (diverged) plan
  /// Per-replicate waste in replicate order (so independent of the worker
  /// count and of chunk scheduling); empty unless
  /// MonteCarloOptions::collect_waste_sample.
  std::vector<double> waste_sample;
};

/// Run `opt.replicates` simulations of protocol `p` on scenario `s`.
[[nodiscard]] MonteCarloResult monte_carlo(Protocol p, const ScenarioParams& s,
                                           const ModelOptions& model_opt = {},
                                           const MonteCarloOptions& opt = {});

}  // namespace abftc::core

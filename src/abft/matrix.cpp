#include "abft/matrix.hpp"

#include <cmath>

namespace abftc::abft {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  ABFTC_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::random(std::size_t rows, std::size_t cols, common::Rng& rng) {
  Matrix m(rows, cols);
  for (double& x : m.data_) x = rng.uniform(-1.0, 1.0);
  return m;
}

Matrix Matrix::diag_dominant(std::size_t n, common::Rng& rng) {
  Matrix m = random(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) off += std::fabs(m(i, j));
    m(i, i) = off + 1.0 + rng.uniform01();
  }
  return m;
}

Matrix Matrix::spd(std::size_t n, common::Rng& rng) {
  const Matrix b = random(n, n, rng);
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) {
      const double bik = b(i, k);
      for (std::size_t j = 0; j <= i; ++j) m(i, j) += bik * b(j, k);
    }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) m(i, j) = m(j, i);
  for (std::size_t i = 0; i < n; ++i)
    m(i, i) += static_cast<double>(n);
  return m;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (const double x : data_) s += x * x;
  return std::sqrt(s);
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (const double x : data_) m = std::max(m, std::fabs(x));
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  ABFTC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

double relative_error(const Matrix& a, const Matrix& b) {
  ABFTC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                "shape mismatch");
  double num = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const double d = a(i, j) - b(i, j);
      num += d * d;
    }
  const double den = b.frobenius_norm();
  return std::sqrt(num) / (den + 1e-300);
}

void copy_into(ConstMatrixView src, MatrixView dst) {
  ABFTC_REQUIRE(src.rows() == dst.rows() && src.cols() == dst.cols(),
                "shape mismatch");
  for (std::size_t i = 0; i < src.rows(); ++i)
    for (std::size_t j = 0; j < src.cols(); ++j) dst(i, j) = src(i, j);
}

void fill(MatrixView v, double value) {
  for (std::size_t i = 0; i < v.rows(); ++i)
    for (std::size_t j = 0; j < v.cols(); ++j) v(i, j) = value;
}

}  // namespace abftc::abft

#include "abft/blas.hpp"

#include <cmath>

namespace abftc::abft {

namespace {

constexpr double kPivotTiny = 1e-13;

// Block sizes for the blocked triangular solves and factorizations. The
// diagonal blocks are handled by the reference loops; everything off the
// diagonal is delegated to gemm, which carries the O(n³) work.
constexpr std::size_t kTrsmNb = 64;
constexpr std::size_t kFactorNb = 64;

// Below these sizes the blocked algorithms would degenerate to a single
// diagonal block anyway, so the dispatchers keep the reference loops.
constexpr std::size_t kTrsmCutoff = 2 * kTrsmNb;
constexpr std::size_t kFactorCutoff = 2 * kFactorNb;

bool use_blocked() noexcept {
  return kernel_policy().path == KernelPath::blocked;
}

void small_trsm_right_upper(ConstMatrixView u, MatrixView b) {
  const std::size_t n = u.rows();
  // Solve X·U = B row by row: x_j = (b_j − Σ_{p<j} x_p u_pj) / u_jj.
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = b(i, j);
      for (std::size_t p = 0; p < j; ++p) s -= b(i, p) * u(p, j);
      ABFTC_CHECK(std::fabs(u(j, j)) > kPivotTiny,
                  "singular triangular factor");
      b(i, j) = s / u(j, j);
    }
}

void small_trsm_left_lower_unit(ConstMatrixView l, MatrixView b) {
  const std::size_t n = l.rows();
  // Forward substitution: row i of the solution depends on rows < i.
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t p = 0; p < i; ++p) {
      const double lip = l(i, p);
      if (lip == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) -= lip * b(p, j);
    }
}

void small_trsm_right_lower_trans(ConstMatrixView l, MatrixView b) {
  const std::size_t n = l.rows();
  // Solve X·Lᵀ = B: x_j = (b_j − Σ_{p<j} x_p l_jp) / l_jj.
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = b(i, j);
      for (std::size_t p = 0; p < j; ++p) s -= b(i, p) * l(j, p);
      ABFTC_CHECK(std::fabs(l(j, j)) > kPivotTiny,
                  "singular triangular factor");
      b(i, j) = s / l(j, j);
    }
}

void small_getf2(MatrixView a) {
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k < n; ++k) {
    ABFTC_CHECK(std::fabs(a(k, k)) > kPivotTiny,
                "zero pivot in unpivoted LU (matrix not diagonally dominant?)");
    const double inv = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) *= inv;
      const double lik = a(i, k);
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
}

void small_potf2(MatrixView a) {
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t p = 0; p < j; ++p) d -= a(j, p) * a(j, p);
    ABFTC_CHECK(d > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t p = 0; p < j; ++p) s -= a(i, p) * a(j, p);
      a(i, j) = s / ljj;
    }
  }
}

}  // namespace

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c) {
  const GemmShape s = gemm_shape(a, ta, b, tb, c);
  if (gemm_uses_blocked_path(s.m, s.n, s.k))
    blocked_gemm(alpha, a, ta, b, tb, beta, c, kernel_policy().threads,
                 kernel_policy().dispatch);
  else
    naive_gemm(alpha, a, ta, b, tb, beta, c);
}

void gemm_sub(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  gemm(-1.0, a, Trans::No, b, Trans::No, 1.0, c);
}

void trsm_right_upper(ConstMatrixView u, MatrixView b) {
  const std::size_t n = u.rows();
  ABFTC_REQUIRE(u.cols() == n, "triangular factor must be square");
  ABFTC_REQUIRE(b.cols() == n, "shape mismatch in trsm_right_upper");
  if (!use_blocked() || n < kTrsmCutoff) {
    small_trsm_right_upper(u, b);
    return;
  }
  // Column-block j: X_j = (B_j − X_{<j}·U_{<j,j}) · U_jj⁻¹, the subtraction
  // carried by gemm.
  const std::size_t m = b.rows();
  for (std::size_t j0 = 0; j0 < n; j0 += kTrsmNb) {
    const std::size_t jb = std::min(kTrsmNb, n - j0);
    MatrixView bj = b.block(0, j0, m, jb);
    if (j0 > 0)
      gemm(-1.0, b.block(0, 0, m, j0), Trans::No, u.block(0, j0, j0, jb),
           Trans::No, 1.0, bj);
    small_trsm_right_upper(u.block(j0, j0, jb, jb), bj);
  }
}

void trsm_left_lower_unit(ConstMatrixView l, MatrixView b) {
  const std::size_t n = l.rows();
  ABFTC_REQUIRE(l.cols() == n, "triangular factor must be square");
  ABFTC_REQUIRE(b.rows() == n, "shape mismatch in trsm_left_lower_unit");
  if (!use_blocked() || n < kTrsmCutoff) {
    small_trsm_left_lower_unit(l, b);
    return;
  }
  // Row-block i: X_i = B_i − L_{i,<i}·X_{<i} (unit diagonal block solve).
  for (std::size_t i0 = 0; i0 < n; i0 += kTrsmNb) {
    const std::size_t ib = std::min(kTrsmNb, n - i0);
    MatrixView bi = b.block(i0, 0, ib, b.cols());
    if (i0 > 0)
      gemm(-1.0, l.block(i0, 0, ib, i0), Trans::No, b.block(0, 0, i0, b.cols()),
           Trans::No, 1.0, bi);
    small_trsm_left_lower_unit(l.block(i0, i0, ib, ib), bi);
  }
}

void trsm_right_lower_trans(ConstMatrixView l, MatrixView b) {
  const std::size_t n = l.rows();
  ABFTC_REQUIRE(l.cols() == n, "triangular factor must be square");
  ABFTC_REQUIRE(b.cols() == n, "shape mismatch in trsm_right_lower_trans");
  if (!use_blocked() || n < kTrsmCutoff) {
    small_trsm_right_lower_trans(l, b);
    return;
  }
  // Column-block j: X_j = (B_j − X_{<j}·Lᵀ_{<j,j}) · L_jjᵀ⁻¹ where
  // Lᵀ_{<j,j} = L(j0:,0:j0)ᵀ.
  const std::size_t m = b.rows();
  for (std::size_t j0 = 0; j0 < n; j0 += kTrsmNb) {
    const std::size_t jb = std::min(kTrsmNb, n - j0);
    MatrixView bj = b.block(0, j0, m, jb);
    if (j0 > 0)
      gemm(-1.0, b.block(0, 0, m, j0), Trans::No, l.block(j0, 0, jb, j0),
           Trans::Yes, 1.0, bj);
    small_trsm_right_lower_trans(l.block(j0, j0, jb, jb), bj);
  }
}

void getf2_nopiv(MatrixView a) {
  const std::size_t n = a.rows();
  ABFTC_REQUIRE(a.cols() == n, "getf2_nopiv expects a square block");
  if (!use_blocked() || n < kFactorCutoff) {
    small_getf2(a);
    return;
  }
  // Right-looking blocked LU: factor the diagonal block with the reference
  // loops, solve the block row/column against it, push the trailing update
  // through gemm.
  for (std::size_t off = 0; off < n; off += kFactorNb) {
    const std::size_t nb = std::min(kFactorNb, n - off);
    const std::size_t rest = n - off - nb;
    MatrixView diag = a.block(off, off, nb, nb);
    small_getf2(diag);
    if (rest == 0) break;
    small_trsm_left_lower_unit(diag, a.block(off, off + nb, nb, rest));
    small_trsm_right_upper(diag, a.block(off + nb, off, rest, nb));
    gemm(-1.0, a.block(off + nb, off, rest, nb), Trans::No,
         a.block(off, off + nb, nb, rest), Trans::No, 1.0,
         a.block(off + nb, off + nb, rest, rest));
  }
}

void potf2_lower(MatrixView a) {
  const std::size_t n = a.rows();
  ABFTC_REQUIRE(a.cols() == n, "potf2 expects a square block");
  if (!use_blocked() || n < kFactorCutoff) {
    small_potf2(a);
    return;
  }
  // Right-looking blocked Cholesky restricted to the lower triangle: the
  // strictly-below-diagonal part of each trailing block column goes through
  // gemm; diagonal blocks keep a scalar loop so entries above the diagonal
  // are never written (matching the reference kernel's contract).
  for (std::size_t off = 0; off < n; off += kFactorNb) {
    const std::size_t nb = std::min(kFactorNb, n - off);
    const std::size_t rest = n - off - nb;
    MatrixView diag = a.block(off, off, nb, nb);
    small_potf2(diag);
    if (rest == 0) break;
    MatrixView panel = a.block(off + nb, off, rest, nb);
    small_trsm_right_lower_trans(diag, panel);
    for (std::size_t bj = off + nb; bj < n; bj += kFactorNb) {
      const std::size_t jb = std::min(kFactorNb, n - bj);
      // Diagonal block of the trailing update, lower triangle only.
      for (std::size_t i = bj; i < bj + jb; ++i)
        for (std::size_t j = bj; j <= i; ++j) {
          double s = 0.0;
          for (std::size_t p = off; p < off + nb; ++p) s += a(i, p) * a(j, p);
          a(i, j) -= s;
        }
      if (bj + jb < n)
        gemm(-1.0, a.block(bj + jb, off, n - bj - jb, nb), Trans::No,
             a.block(bj, off, jb, nb), Trans::Yes, 1.0,
             a.block(bj + jb, bj, n - bj - jb, jb));
    }
  }
}

void geqr2(MatrixView a, std::vector<double>& tau) {
  const std::size_t m = a.rows();
  const std::size_t k = std::min(m, a.cols());
  tau.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    // Build the Householder reflector annihilating a(j+1:, j).
    double norm2 = 0.0;
    for (std::size_t i = j; i < m; ++i) norm2 += a(i, j) * a(i, j);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) {
      tau[j] = 0.0;
      continue;
    }
    const double alpha = a(j, j);
    const double beta = (alpha >= 0.0) ? -norm : norm;
    tau[j] = (beta - alpha) / beta;
    const double inv = 1.0 / (alpha - beta);
    for (std::size_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    a(j, j) = beta;
    // Apply (I − τ v vᵀ) to the remaining columns.
    for (std::size_t c = j + 1; c < a.cols(); ++c) {
      double s = a(j, c);
      for (std::size_t i = j + 1; i < m; ++i) s += a(i, j) * a(i, c);
      s *= tau[j];
      a(j, c) -= s;
      for (std::size_t i = j + 1; i < m; ++i) a(i, c) -= s * a(i, j);
    }
  }
}

namespace {

// Flop-count cutover for the compact-WY applicator, in the spirit of the
// gemm dispatcher's kBlockedFlopCutoff: below it the V/T scratch and the
// form_t accumulation cost more than the GEMMs save. A single reflector
// (k = 1) never benefits.
constexpr std::size_t kQrApplyFlopCutoff = 32 * 32 * 32;

void check_apply_shapes(ConstMatrixView v_panel, const std::vector<double>& tau,
                        MatrixView c) {
  ABFTC_REQUIRE(v_panel.rows() == c.rows(),
                "reflector panel and target must share row count");
  ABFTC_REQUIRE(tau.size() <= v_panel.cols(), "too many tau coefficients");
}

// One reflector of the reference loops: C ← (I − τ_j v_j v_jᵀ)·C with
// v_j = [0…0, 1, v_panel(j+1:, j)]. Shared by the forward and reverse
// reference applications so both orders are bitwise-stable.
void apply_one_reflector(ConstMatrixView v_panel, double tau_j, std::size_t j,
                         MatrixView c) {
  const std::size_t m = c.rows();
  for (std::size_t col = 0; col < c.cols(); ++col) {
    double s = c(j, col);
    for (std::size_t i = j + 1; i < m; ++i) s += v_panel(i, j) * c(i, col);
    s *= tau_j;
    c(j, col) -= s;
    for (std::size_t i = j + 1; i < m; ++i) c(i, col) -= s * v_panel(i, j);
  }
}

}  // namespace

CompactWy::CompactWy(ConstMatrixView v_panel, const std::vector<double>& tau)
    : v_(v_panel.rows(), tau.size()), t_(tau.size(), tau.size()) {
  ABFTC_REQUIRE(!tau.empty(), "compact-WY panel needs at least one reflector");
  ABFTC_REQUIRE(tau.size() <= v_panel.cols(), "too many tau coefficients");
  const std::size_t m = v_.rows();
  const std::size_t k = tau.size();
  // Materialize the unit lower-trapezoidal V: the stored panel's upper
  // triangle holds R, which must not leak into the products.
  for (std::size_t j = 0; j < k; ++j) {
    v_(j, j) = 1.0;
    for (std::size_t i = j + 1; i < m; ++i) v_(i, j) = v_panel(i, j);
  }
  form_t(v_panel, tau, t_.view());
}

void CompactWy::apply(MatrixView c, Trans t_trans) const {
  ABFTC_REQUIRE(c.rows() == v_.rows(),
                "reflector panel and target must share row count");
  const std::size_t k = t_.rows();
  const std::size_t n = c.cols();
  if (n == 0) return;
  // W ← Vᵀ·C and C ← C − V·W carry the O(m·n·k) work and dispatch through
  // gemm (blocked above the gemm cutoff); the k×k triangular factor multiply
  // stays on the reference loop — it is O(n·k²) and serial keeps the result
  // worker-count-invariant for free. Forward order applies Tᵀ, reverse T.
  Matrix w(k, n, 0.0);
  gemm(1.0, v_.view(), Trans::Yes, c, Trans::No, 0.0, w.view());
  Matrix tw(k, n, 0.0);
  naive_gemm(1.0, t_.view(), t_trans, w.view(), Trans::No, 0.0, tw.view());
  gemm(-1.0, v_.view(), Trans::No, tw.view(), Trans::No, 1.0, c);
}

void form_t(ConstMatrixView v_panel, const std::vector<double>& tau,
            MatrixView t) {
  const std::size_t k = tau.size();
  const std::size_t m = v_panel.rows();
  ABFTC_REQUIRE(k <= v_panel.cols(), "too many tau coefficients");
  ABFTC_REQUIRE(k <= m, "reflector count exceeds panel rows");
  ABFTC_REQUIRE(t.rows() == k && t.cols() == k, "T must be k×k");
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) t(i, j) = 0.0;
  std::vector<double> w(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    if (tau[j] == 0.0) continue;  // H_j = I: the column stays zero.
    // w ← V(:, 0:j)ᵀ·v_j over the rows where v_j is nonzero (v_j(j) = 1
    // implicit, v_j(i) = v_panel(i, j) below), traversed row-major.
    for (std::size_t i = 0; i < j; ++i) w[i] = v_panel(j, i);
    for (std::size_t r = j + 1; r < m; ++r) {
      const double vrj = v_panel(r, j);
      if (vrj == 0.0) continue;
      for (std::size_t i = 0; i < j; ++i) w[i] += v_panel(r, i) * vrj;
    }
    // T(0:j, j) = −τ_j · T(0:j, 0:j)·w (T upper triangular).
    for (std::size_t i = 0; i < j; ++i) {
      double s = 0.0;
      for (std::size_t p = i; p < j; ++p) s += t(i, p) * w[p];
      t(i, j) = -tau[j] * s;
    }
    t(j, j) = tau[j];
  }
}

void apply_reflectors_blocked_left(ConstMatrixView v_panel,
                                   const std::vector<double>& tau,
                                   MatrixView c) {
  check_apply_shapes(v_panel, tau, c);
  if (tau.empty() || c.cols() == 0) return;
  CompactWy(v_panel, tau).apply_left(c);
}

void apply_reflectors_left_reference(ConstMatrixView v_panel,
                                     const std::vector<double>& tau,
                                     MatrixView c) {
  check_apply_shapes(v_panel, tau, c);
  for (std::size_t j = 0; j < tau.size(); ++j) {
    if (tau[j] == 0.0) continue;
    apply_one_reflector(v_panel, tau[j], j, c);
  }
}

bool qr_apply_uses_blocked_path(std::size_t m, std::size_t n,
                                std::size_t k) noexcept {
  return kernel_policy().path == KernelPath::blocked && k >= 2 &&
         m * n * k >= kQrApplyFlopCutoff;
}

void apply_reflectors_left(ConstMatrixView v_panel,
                           const std::vector<double>& tau, MatrixView c) {
  if (qr_apply_uses_blocked_path(c.rows(), c.cols(), tau.size()))
    apply_reflectors_blocked_left(v_panel, tau, c);
  else
    apply_reflectors_left_reference(v_panel, tau, c);
}

void apply_reflectors_left_reverse(ConstMatrixView v_panel,
                                   const std::vector<double>& tau,
                                   MatrixView c) {
  check_apply_shapes(v_panel, tau, c);
  if (qr_apply_uses_blocked_path(c.rows(), c.cols(), tau.size())) {
    CompactWy(v_panel, tau).apply_left_reverse(c);
    return;
  }
  for (std::size_t j = tau.size(); j-- > 0;) {
    if (tau[j] == 0.0) continue;
    apply_one_reflector(v_panel, tau[j], j, c);
  }
}

void gemv(ConstMatrixView a, const std::vector<double>& x,
          std::vector<double>& y) {
  ABFTC_REQUIRE(x.size() == a.cols(), "gemv dimension mismatch");
  y.assign(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
}

std::vector<double> lu_solve(const Matrix& lu, std::vector<double> b) {
  const std::size_t n = lu.rows();
  ABFTC_REQUIRE(lu.cols() == n && b.size() == n, "lu_solve shape mismatch");
  // Ly = b (unit lower).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t p = 0; p < i; ++p) b[i] -= lu(i, p) * b[p];
  // Ux = y.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t p = ii + 1; p < n; ++p) b[ii] -= lu(ii, p) * b[p];
    ABFTC_CHECK(std::fabs(lu(ii, ii)) > kPivotTiny, "singular U factor");
    b[ii] /= lu(ii, ii);
  }
  return b;
}

std::vector<double> cholesky_solve(const Matrix& l, std::vector<double> b) {
  const std::size_t n = l.rows();
  ABFTC_REQUIRE(l.cols() == n && b.size() == n,
                "cholesky_solve shape mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = 0; p < i; ++p) b[i] -= l(i, p) * b[p];
    ABFTC_CHECK(std::fabs(l(i, i)) > kPivotTiny, "singular Cholesky factor");
    b[i] /= l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t p = ii + 1; p < n; ++p) b[ii] -= l(p, ii) * b[p];
    b[ii] /= l(ii, ii);
  }
  return b;
}

}  // namespace abftc::abft

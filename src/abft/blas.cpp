#include "abft/blas.hpp"

#include <cmath>

namespace abftc::abft {

namespace {
constexpr double kPivotTiny = 1e-13;
}

void gemm(double alpha, ConstMatrixView a, Trans ta, ConstMatrixView b,
          Trans tb, double beta, MatrixView c) {
  const std::size_t m = (ta == Trans::No) ? a.rows() : a.cols();
  const std::size_t k = (ta == Trans::No) ? a.cols() : a.rows();
  const std::size_t kb = (tb == Trans::No) ? b.rows() : b.cols();
  const std::size_t n = (tb == Trans::No) ? b.cols() : b.rows();
  ABFTC_REQUIRE(k == kb, "gemm inner dimensions must match");
  ABFTC_REQUIRE(c.rows() == m && c.cols() == n, "gemm output shape mismatch");

  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) c(i, j) *= beta;

  if (ta == Trans::No && tb == Trans::No) {
    // ikj order: stream through rows of B for row-major locality.
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t p = 0; p < k; ++p) {
        const double aip = alpha * a(i, p);
        if (aip == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) c(i, j) += aip * b(p, j);
      }
  } else if (ta == Trans::No && tb == Trans::Yes) {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += a(i, p) * b(j, p);
        c(i, j) += alpha * s;
      }
  } else if (ta == Trans::Yes && tb == Trans::No) {
    for (std::size_t p = 0; p < k; ++p)
      for (std::size_t i = 0; i < m; ++i) {
        const double api = alpha * a(p, i);
        if (api == 0.0) continue;
        for (std::size_t j = 0; j < n; ++j) c(i, j) += api * b(p, j);
      }
  } else {
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t p = 0; p < k; ++p) s += a(p, i) * b(j, p);
        c(i, j) += alpha * s;
      }
  }
}

void gemm_sub(ConstMatrixView a, ConstMatrixView b, MatrixView c) {
  gemm(-1.0, a, Trans::No, b, Trans::No, 1.0, c);
}

void trsm_right_upper(ConstMatrixView u, MatrixView b) {
  const std::size_t n = u.rows();
  ABFTC_REQUIRE(u.cols() == n, "triangular factor must be square");
  ABFTC_REQUIRE(b.cols() == n, "shape mismatch in trsm_right_upper");
  // Solve X·U = B row by row: x_j = (b_j − Σ_{p<j} x_p u_pj) / u_jj.
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = b(i, j);
      for (std::size_t p = 0; p < j; ++p) s -= b(i, p) * u(p, j);
      ABFTC_CHECK(std::fabs(u(j, j)) > kPivotTiny,
                  "singular triangular factor");
      b(i, j) = s / u(j, j);
    }
}

void trsm_left_lower_unit(ConstMatrixView l, MatrixView b) {
  const std::size_t n = l.rows();
  ABFTC_REQUIRE(l.cols() == n, "triangular factor must be square");
  ABFTC_REQUIRE(b.rows() == n, "shape mismatch in trsm_left_lower_unit");
  // Forward substitution: row i of the solution depends on rows < i.
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t p = 0; p < i; ++p) {
      const double lip = l(i, p);
      if (lip == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) -= lip * b(p, j);
    }
}

void trsm_right_lower_trans(ConstMatrixView l, MatrixView b) {
  const std::size_t n = l.rows();
  ABFTC_REQUIRE(l.cols() == n, "triangular factor must be square");
  ABFTC_REQUIRE(b.cols() == n, "shape mismatch in trsm_right_lower_trans");
  // Solve X·Lᵀ = B: x_j = (b_j − Σ_{p<j} x_p l_jp) / l_jj.
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < n; ++j) {
      double s = b(i, j);
      for (std::size_t p = 0; p < j; ++p) s -= b(i, p) * l(j, p);
      ABFTC_CHECK(std::fabs(l(j, j)) > kPivotTiny,
                  "singular triangular factor");
      b(i, j) = s / l(j, j);
    }
}

void getf2_nopiv(MatrixView a) {
  const std::size_t n = a.rows();
  ABFTC_REQUIRE(a.cols() == n, "getf2_nopiv expects a square block");
  for (std::size_t k = 0; k < n; ++k) {
    ABFTC_CHECK(std::fabs(a(k, k)) > kPivotTiny,
                "zero pivot in unpivoted LU (matrix not diagonally dominant?)");
    const double inv = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) *= inv;
      const double lik = a(i, k);
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
}

void potf2_lower(MatrixView a) {
  const std::size_t n = a.rows();
  ABFTC_REQUIRE(a.cols() == n, "potf2 expects a square block");
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t p = 0; p < j; ++p) d -= a(j, p) * a(j, p);
    ABFTC_CHECK(d > 0.0, "matrix is not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t p = 0; p < j; ++p) s -= a(i, p) * a(j, p);
      a(i, j) = s / ljj;
    }
  }
}

void geqr2(MatrixView a, std::vector<double>& tau) {
  const std::size_t m = a.rows();
  const std::size_t k = std::min(m, a.cols());
  tau.assign(k, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    // Build the Householder reflector annihilating a(j+1:, j).
    double norm2 = 0.0;
    for (std::size_t i = j; i < m; ++i) norm2 += a(i, j) * a(i, j);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) {
      tau[j] = 0.0;
      continue;
    }
    const double alpha = a(j, j);
    const double beta = (alpha >= 0.0) ? -norm : norm;
    tau[j] = (beta - alpha) / beta;
    const double inv = 1.0 / (alpha - beta);
    for (std::size_t i = j + 1; i < m; ++i) a(i, j) *= inv;
    a(j, j) = beta;
    // Apply (I − τ v vᵀ) to the remaining columns.
    for (std::size_t c = j + 1; c < a.cols(); ++c) {
      double s = a(j, c);
      for (std::size_t i = j + 1; i < m; ++i) s += a(i, j) * a(i, c);
      s *= tau[j];
      a(j, c) -= s;
      for (std::size_t i = j + 1; i < m; ++i) a(i, c) -= s * a(i, j);
    }
  }
}

void apply_reflectors_left(ConstMatrixView v_panel,
                           const std::vector<double>& tau, MatrixView c) {
  ABFTC_REQUIRE(v_panel.rows() == c.rows(),
                "reflector panel and target must share row count");
  ABFTC_REQUIRE(tau.size() <= v_panel.cols(), "too many tau coefficients");
  const std::size_t m = c.rows();
  for (std::size_t j = 0; j < tau.size(); ++j) {
    if (tau[j] == 0.0) continue;
    // v = [0…0, 1, v_panel(j+1:, j)]
    for (std::size_t col = 0; col < c.cols(); ++col) {
      double s = c(j, col);
      for (std::size_t i = j + 1; i < m; ++i) s += v_panel(i, j) * c(i, col);
      s *= tau[j];
      c(j, col) -= s;
      for (std::size_t i = j + 1; i < m; ++i)
        c(i, col) -= s * v_panel(i, j);
    }
  }
}

void gemv(ConstMatrixView a, const std::vector<double>& x,
          std::vector<double>& y) {
  ABFTC_REQUIRE(x.size() == a.cols(), "gemv dimension mismatch");
  y.assign(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
}

std::vector<double> lu_solve(const Matrix& lu, std::vector<double> b) {
  const std::size_t n = lu.rows();
  ABFTC_REQUIRE(lu.cols() == n && b.size() == n, "lu_solve shape mismatch");
  // Ly = b (unit lower).
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t p = 0; p < i; ++p) b[i] -= lu(i, p) * b[p];
  // Ux = y.
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t p = ii + 1; p < n; ++p) b[ii] -= lu(ii, p) * b[p];
    ABFTC_CHECK(std::fabs(lu(ii, ii)) > kPivotTiny, "singular U factor");
    b[ii] /= lu(ii, ii);
  }
  return b;
}

std::vector<double> cholesky_solve(const Matrix& l, std::vector<double> b) {
  const std::size_t n = l.rows();
  ABFTC_REQUIRE(l.cols() == n && b.size() == n,
                "cholesky_solve shape mismatch");
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p = 0; p < i; ++p) b[i] -= l(i, p) * b[p];
    ABFTC_CHECK(std::fabs(l(i, i)) > kPivotTiny, "singular Cholesky factor");
    b[i] /= l(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t p = ii + 1; p < n; ++p) b[ii] -= l(p, ii) * b[p];
    b[ii] /= l(ii, ii);
  }
  return b;
}

}  // namespace abftc::abft

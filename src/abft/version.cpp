#include "abft/version.hpp"

namespace abftc::abft {
const char* module_name() noexcept { return "abftc.abft"; }
}  // namespace abftc::abft

#pragma once
/// \file grid.hpp
/// Virtual process grid with 2-D block-cyclic ownership — the failure-unit
/// model of the ABFT kernels. This stands in for the MPI/ScaLAPACK process
/// grid of the paper's references [9][10]: a "rank" owns every nb×nb block
/// (bi, bj) with bi ≡ its grid row (mod P) and bj ≡ its grid column (mod Q),
/// and killing a rank wipes exactly those blocks.
///
/// Checksum blocks live on a virtual *reliable* rank (the standard ABFT
/// assumption that checksum data is duplicated or stored on protected
/// processes), so a single rank failure never destroys a block together
/// with its protecting checksum.

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace abftc::abft {

struct ProcessGrid {
  std::size_t prows = 1;  ///< P: grid rows
  std::size_t pcols = 1;  ///< Q: grid columns

  [[nodiscard]] std::size_t size() const noexcept { return prows * pcols; }

  /// Rank owning block (bi, bj) under 2-D block-cyclic distribution.
  [[nodiscard]] std::size_t rank_of_block(std::size_t bi,
                                          std::size_t bj) const noexcept {
    return (bi % prows) * pcols + (bj % pcols);
  }
  [[nodiscard]] std::size_t grid_row(std::size_t rank) const noexcept {
    return rank / pcols;
  }
  [[nodiscard]] std::size_t grid_col(std::size_t rank) const noexcept {
    return rank % pcols;
  }
  void validate() const {
    ABFTC_REQUIRE(prows > 0 && pcols > 0, "grid dimensions must be positive");
  }
};

/// The block coordinates a rank owns within an nbr × nbc block matrix.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> blocks_of_rank(
    const ProcessGrid& grid, std::size_t rank, std::size_t nbr,
    std::size_t nbc);

}  // namespace abftc::abft
